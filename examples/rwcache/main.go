// RW cache: the read-mostly payoff of reader-writer cohorting. The
// same store, the same 99%-read traffic, three cache locks:
//
//   - C-BO-MCS (exclusive): every Get serializes through the cohort
//     lock — the Table 1 regime, where read-heavy mixes gain nothing.
//   - RW-C-BO-MCS, exclusive read path: the reader-writer lock built,
//     but driven with every Get through exclusive mode — isolating the
//     lock's overhead from the protocol win.
//   - RW-C-BO-MCS, shared read path: Gets run in shared mode. Readers
//     touch only their own cluster's reader counter, so Gets on
//     different clusters proceed together; the rare Sets still
//     serialize through the cohort writer lock, batching same-cluster
//     writers exactly as before.
//
// Run with:
//
//	go run ./examples/rwcache
package main

import (
	"fmt"
	"runtime"

	"repro/internal/kvload"
	"repro/internal/kvstore"
	"repro/internal/locks"
	"repro/internal/numa"
	"repro/internal/registry"
)

func main() {
	workers := runtime.GOMAXPROCS(0) - 1
	if workers < 8 {
		workers = 8
	}
	topo := numa.New(4, workers)
	e := registry.MustLookup("rw-c-bo-mcs")
	const keyspace = 20_000

	type setup struct {
		name string
		lock locks.RWMutex
	}
	for _, s := range []setup{
		{"C-BO-MCS, exclusive Gets", locks.RWFromMutex(registry.MustLookup("c-bo-mcs").NewMutex(topo))},
		{"RW-C-BO-MCS, exclusive Gets", locks.RWFromMutex(e.NewRW(topo))},
		{"RW-C-BO-MCS, shared Gets", e.NewRW(topo)},
	} {
		store := kvstore.New(kvstore.Config{Topo: topo, RWLock: s.lock})
		kvload.Populate(store, topo.Proc(0), keyspace, 128)

		cfg := kvload.DefaultConfig(topo, workers, 99)
		cfg.Keyspace = keyspace
		cfg.ReadFraction = 0.99
		res, err := kvload.Run(cfg, store)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%-30s %9.0f ops/sec  (hits %d, sets %d)\n",
			s.name, res.Throughput(), res.Store.Hits, res.Store.Sets)
	}

	fmt.Println("\nShared-mode Gets scale across clusters — each reader touches only")
	fmt.Println("its own cluster's counter line — while the writers that remain stay")
	fmt.Println("cohort-ordered behind the C-BO-MCS writer lock.")
}
