// Quickstart: protect a shared counter with a cohort lock and compare
// its high-contention throughput against sync.Mutex.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	cohort "repro"
)

// counters lives on two cache lines, like the paper's LBench critical
// section: lock migrations drag these lines across clusters too.
type counters struct {
	a [8]int64
	_ [64]byte
	b [8]int64
}

func (c *counters) bump() {
	for i := range c.a {
		c.a[i]++
	}
	for i := range c.b {
		c.b[i]++
	}
}

func run(name string, workers int, lockFn func(p *cohort.Proc), unlockFn func(p *cohort.Proc), topo *cohort.Topology) {
	var c counters
	var ops atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(p *cohort.Proc) {
			defer wg.Done()
			n := int64(0)
			for {
				select {
				case <-stop:
					ops.Add(n)
					return
				default:
				}
				lockFn(p)
				c.bump()
				unlockFn(p)
				think(p)
				n++
			}
		}(topo.Proc(i))
	}
	const window = 500 * time.Millisecond
	time.Sleep(window)
	close(stop)
	wg.Wait()
	fmt.Printf("%-12s %8.0f ops/sec  (final counter %d)\n",
		name, float64(ops.Load())/window.Seconds(), c.a[0])
}

// think emulates ~1 µs of per-thread work outside the lock, like the
// paper's LBench non-critical section.
func think(p *cohort.Proc) {
	n := 400 + p.RandN(400)
	x := uint64(1)
	for i := int64(0); i < n; i++ {
		x ^= x<<13 ^ x>>7
	}
	if x == 0 {
		fmt.Print()
	}
}

func main() {
	workers := runtime.GOMAXPROCS(0) - 1
	if workers < 2 {
		workers = 2
	}
	// Model a 4-socket machine; worker goroutines are assigned to the
	// four clusters round-robin.
	topo := cohort.NewTopology(4, workers)

	fmt.Printf("quickstart: %d workers on a simulated 4-cluster machine\n\n", workers)

	var mu sync.Mutex
	run("sync.Mutex", workers,
		func(*cohort.Proc) { mu.Lock() },
		func(*cohort.Proc) { mu.Unlock() }, topo)

	lock := cohort.NewCBOMCS(topo)
	run("C-BO-MCS", workers, lock.Lock, lock.Unlock, topo)

	tkt := cohort.NewCTKTTKT(topo)
	run("C-TKT-TKT", workers, tkt.Lock, tkt.Unlock, topo)

	fmt.Println("\nCohort locks batch critical sections by cluster, so the")
	fmt.Println("shared counters' cache lines migrate far less often.")
}
