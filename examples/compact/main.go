// Compact: the index-memory experiment in miniature. The same store
// is populated twice — once with pointer-linked metadata (every item
// an individual GC allocation, hash chains and LRU links as Go
// pointers), once with the compact layout (items resident in
// per-shard pointer-free slabs, every link a uint32 slab index) —
// and a forced collection is timed over each. Both stores use arena
// value memory, so value bytes are off the GC heap in both and the
// only difference the collector sees is the metadata itself: pointer
// mode leaves one traceable object and three pointers per key,
// compact mode a handful of large pointer-free chunks per shard.
// GC mark work collapses from O(keys) to O(shards + chunks).
//
// Run with:
//
//	go run ./examples/compact
package main

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/kvload"
	"repro/internal/kvstore"
	"repro/internal/numa"
	"repro/internal/registry"
)

func main() {
	topo := numa.New(4, 8)
	e := registry.MustLookup("c-bo-mcs")
	const (
		keyspace = 200_000
		valSize  = 64
		gcRounds = 5
	)

	for _, im := range []kvstore.IndexMemory{kvstore.IndexPointer, kvstore.IndexCompact} {
		store := kvstore.New(kvstore.Config{
			Topo:        topo,
			NewLock:     e.MutexFactory(topo),
			Shards:      4,
			Placement:   kvstore.ClusterAffine,
			Capacity:    keyspace * 2,
			Buckets:     keyspace,
			ValueMemory: kvstore.ValueArena,
			ArenaBytes:  keyspace * valSize * 4,
			IndexMemory: im,
		})
		kvload.PopulateClusters(store, topo, keyspace, valSize)
		runtime.GC() // settle population garbage before timing

		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		began := time.Now()
		for i := 0; i < gcRounds; i++ {
			runtime.GC()
		}
		perGC := time.Since(began) / gcRounds

		fmt.Printf("%-8s %9d heap objects   %8.2fms per forced GC\n",
			im, ms.HeapObjects, float64(perGC.Microseconds())/1e3)

		if err := store.CompactCheck(); err != nil {
			fmt.Println("compact check failed:", err)
			return
		}
		if err := store.ArenaCheck(topo.Proc(0)); err != nil {
			fmt.Println("arena check failed:", err)
			return
		}
	}

	fmt.Println("\nPointer mode gives the collector one object to trace per key —")
	fmt.Println("mark work and pause times scale with how much the store HOLDS.")
	fmt.Println("Compact mode packs items into chunked pointer-free slabs linked")
	fmt.Println("by uint32 indices; the collector sees a few hundred large noscan")
	fmt.Println("allocations regardless of key count, so GC cost scales with")
	fmt.Println("traffic, not with residency.")
}
