// Sharded store: the structural fix the cache lock cannot buy. The
// paper's Table 1 shows memcached capped by its single cache lock no
// matter how good that lock is; this example splits the same store
// into N shards — one cohort lock per shard, shards homed on NUMA
// clusters — and drives the 50% get / 50% set mix through one shard
// and through sixteen. ClusterAffine placement routes every worker to
// shards homed on its own cluster, so each shard's cohort lock sees
// only same-cluster traffic: the longest possible local runs.
//
// Run with:
//
//	go run ./examples/sharded
package main

import (
	"fmt"
	"runtime"

	"repro/internal/kvload"
	"repro/internal/kvstore"
	"repro/internal/numa"
	"repro/internal/registry"
)

func main() {
	workers := runtime.GOMAXPROCS(0) - 1
	if workers < 4 {
		workers = 4
	}
	topo := numa.New(4, workers)
	entry := registry.MustLookup("c-bo-mcs")
	const keyspace = 20_000

	type setup struct {
		name      string
		shards    int
		placement kvstore.Placement
	}
	for _, s := range []setup{
		{"1 shard (Table 1 ceiling)", 1, kvstore.HashMod},
		{"16 shards, hash-mod", 16, kvstore.HashMod},
		{"16 shards, cluster-affine", 16, kvstore.ClusterAffine},
	} {
		store := kvstore.New(kvstore.Config{
			Topo:      topo,
			NewLock:   entry.MutexFactory(topo),
			Shards:    s.shards,
			Placement: s.placement,
			Capacity:  keyspace * topo.Clusters() * 2,
		})
		kvload.PopulateClusters(store, topo, keyspace, 128)

		cfg := kvload.DefaultConfig(topo, workers, 50)
		cfg.Keyspace = keyspace
		res, err := kvload.Run(cfg, store)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%-28s %9.0f ops/sec  (hits %d, misses %d, metadata misses %d)\n",
			s.name, res.Throughput(), res.Store.Hits, res.Store.Misses, res.Store.MetaMisses)
		if s.shards > 1 {
			for i := 0; i < store.NumShards(); i++ {
				st := res.PerShard[i]
				fmt.Printf("    shard %2d (home cluster %d): %7d ops\n",
					i, store.ShardHome(i), st.Gets+st.Sets)
			}
		}
	}

	fmt.Println("\nOne cache lock caps throughput at one critical section at a time;")
	fmt.Println("sharding multiplies that capacity, and cluster-affine placement hands")
	fmt.Println("each shard's cohort lock a single-cluster audience.")
}
