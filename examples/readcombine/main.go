// Read-side combining: the flat-combining trick applied to the READ
// path of a reader-writer lock.
//
// Shared mode already lets readers coexist, but every reader still
// pays its own RLock — an atomic RMW on the reader count (or per-
// cluster counter) per read. locks.NewRWCombining interposes a
// per-cluster reader-combiner: readers post their read closures into
// publication slots, one of them elects itself combiner, takes ONE
// shared acquisition of the underlying lock, and runs the whole
// harvested same-cluster batch under it. N overlapping same-cluster
// reads cost one RLock instead of N.
//
// The two regimes to watch:
//
//   - Idle: a lone reader bypasses the machinery — its closure runs
//     under its own RLock, and SharedBatches advances in lockstep with
//     SharedOps (1.0 ops per batch: no amortization, but none of the
//     election cost either).
//   - Contended: same-cluster readers pile up behind a writer; when
//     the writer leaves, the combiner drains them all under one
//     acquisition, and ops per shared acquisition climbs above 1.
//
// Run with:
//
//	go run ./examples/readcombine
package main

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kvload"
	"repro/internal/kvstore"
	"repro/internal/locks"
	"repro/internal/numa"
	"repro/internal/registry"
)

func die(err error) {
	if err != nil {
		// CI smoke-runs this example; a failed run must fail the gate.
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func main() {
	topo := numa.New(2, 16)

	// Exhibit 1: the executor itself, idle vs piled up, with the
	// underlying lock's shared acquisitions counted.
	var excl, shared atomic.Uint64
	inner := locks.NewRWPerCluster(topo, locks.NewMCS(topo))
	x := locks.NewRWCombining(topo, locks.CountRWAcquisitions(inner, &excl, &shared))

	// Idle: one reader, 1000 closures — every one takes the eager
	// single-closure bypass: its own RLock, batches == ops.
	p := topo.Proc(0)
	for i := 0; i < 1000; i++ {
		x.ExecShared(p, func() {})
	}
	fmt.Printf("%-28s %10s %10s %12s %12s\n", "regime", "ops", "batches", "shared acq", "ops/acq")
	fmt.Printf("%-28s %10d %10d %12d %12.2f\n",
		"idle (bypass)", x.SharedOps(), x.SharedBatches(), shared.Load(),
		float64(x.SharedOps())/float64(shared.Load()))

	// Contended: hold the inner lock exclusively so readers pile up,
	// then release — the elected combiner drains the same-cluster batch
	// under one shared acquisition.
	ops0, acq0 := x.SharedOps(), shared.Load()
	const readers = 8
	holder := topo.Proc(15) // cluster 1; the readers land on cluster 0
	inner.Lock(holder)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			x.ExecShared(topo.Proc(2*r), func() {})
		}(r)
	}
	time.Sleep(20 * time.Millisecond) // let every reader post its closure
	inner.Unlock(holder)
	wg.Wait()
	ops, acq := x.SharedOps()-ops0, shared.Load()-acq0
	fmt.Printf("%-28s %10d %10d %12d %12.2f\n",
		"contended (combined)", ops, x.SharedBatches(), acq, float64(ops)/float64(acq))

	// Exhibit 2: the same machinery under the key-value store. A
	// read-mostly batched load over comb-rw wiring posts every MGet
	// chunk as a read closure; concurrent same-cluster chunks fold into
	// one RLock of the base lock. The plain shared store pays one RLock
	// per chunk, always.
	workers := runtime.GOMAXPROCS(0) - 1
	if workers < 4 {
		workers = 4
	}
	ltopo := numa.New(4, workers)
	rw := registry.MustLookup("rw-c-bo-mcs")
	const keyspace = 20_000
	fmt.Printf("\n%-28s %12s %12s %14s\n", "MGet read path (99% gets)", "ops/sec", "shared acq", "shared ops/acq")
	for _, combined := range []bool{false, true} {
		var excl, shard atomic.Uint64
		var execs []*locks.RWCombining
		cfg := kvstore.Config{
			Topo:     ltopo,
			Shards:   4,
			MaxBatch: 16,
			Capacity: keyspace * 2,
		}
		if combined {
			newRW := rw.RWFactory(ltopo)
			cfg.NewExec = func() locks.Executor {
				c := locks.NewRWCombining(ltopo, locks.CountRWAcquisitions(newRW(), &excl, &shard))
				execs = append(execs, c)
				return c
			}
		} else {
			newRW := rw.RWFactory(ltopo)
			cfg.NewRWLock = func() locks.RWMutex {
				return locks.CountRWAcquisitions(newRW(), &excl, &shard)
			}
		}
		store := kvstore.New(cfg)
		kvload.PopulateClusters(store, ltopo, keyspace, 128)
		s0 := shard.Load()
		var ops0 uint64
		for _, c := range execs {
			ops0 += c.SharedOps()
		}
		lcfg := kvload.DefaultConfig(ltopo, workers, 99)
		lcfg.Keyspace = keyspace
		lcfg.ReadFraction = 0.99
		lcfg.BatchSize = 16
		res, err := kvload.Run(lcfg, store)
		die(err)
		acq := shard.Load() - s0
		name, perAcq := "shared chunks (baseline)", "-"
		if combined {
			var ops uint64
			for _, c := range execs {
				ops += c.SharedOps()
			}
			name = "read-combined (comb-rw)"
			perAcq = fmt.Sprintf("%.2f", float64(ops-ops0)/float64(acq))
		}
		fmt.Printf("%-28s %12.0f %12d %14s\n", name, res.Throughput(), acq, perAcq)
	}

	fmt.Println("\nIdle readers bypass straight into their own RLock — the combiner")
	fmt.Println("costs nothing when there is nothing to combine. Piled-up readers")
	fmt.Println("are drained in one shared acquisition, so the read path amortizes")
	fmt.Println("exactly when RLock traffic would otherwise be at its worst.")
}
