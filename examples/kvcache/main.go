// KV cache: the paper's memcached experiment in miniature. A
// memcached-like store (hash table + LRU behind one cache lock) is
// driven with a write-heavy workload under the pthread-style mutex and
// under a cohort lock, reproducing the Table 1(c) effect: on
// write-heavy mixes the NUMA-aware lock wins by keeping the store's
// hot metadata cache-resident per cluster.
//
// Run with:
//
//	go run ./examples/kvcache
package main

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/kvload"
	"repro/internal/kvstore"
	"repro/internal/locks"
	"repro/internal/numa"
)

func main() {
	workers := runtime.GOMAXPROCS(0) - 1
	if workers < 4 {
		workers = 4
	}
	topo := numa.New(4, workers)

	type candidate struct {
		name string
		lock locks.Mutex
	}
	for _, c := range []candidate{
		{"pthread (sync.Mutex)", locks.NewPthread()},
		{"MCS (NUMA-oblivious)", locks.NewMCS(topo)},
		{"C-BO-MCS (cohort)", core.NewCBOMCS(topo)},
	} {
		store := kvstore.New(kvstore.Config{Topo: topo, Lock: c.lock})
		kvload.Populate(store, topo.Proc(0), 50_000, 128)

		cfg := kvload.DefaultConfig(topo, workers, 10) // 10% gets: write-heavy
		cfg.Keyspace = 50_000
		res, err := kvload.Run(cfg, store)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		st := res.Store
		fmt.Printf("%-22s %8.0f ops/sec  (hits %d, evictions %d, metadata misses %d)\n",
			c.name, res.Throughput(), st.Hits, st.Evictions, st.MetaMisses)
	}
	fmt.Println("\nWrite-heavy mixes serialize on the cache lock; the cohort lock")
	fmt.Println("batches same-cluster sets so the LRU/stats lines stay local.")
}
