// Concurrency restriction: the fix for scalability collapse. Past
// saturation, every thread added to a lock's waiting crowd only adds
// hand-off latency and — under the Go runtime — scheduler round-trips.
// This example oversubscribes a lock far beyond GOMAXPROCS and
// measures LBench throughput bare versus wrapped in the GCR admission
// controller (at most K active waiters per cluster, the surplus parked
// FIFO). The wrapped lock should hold its throughput roughly flat as
// the thread count grows; the bare lock decays.
//
// Run with:
//
//	go run ./examples/restrict
package main

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/lbench"
	"repro/internal/locks"
	"repro/internal/numa"
)

func main() {
	threadCounts := []int{4, 16, 64}
	topo := numa.New(4, 64)

	fmt.Printf("GOMAXPROCS=%d — LBench pairs/sec, bare MCS vs GCR(MCS)\n\n",
		runtime.GOMAXPROCS(0))
	fmt.Printf("%8s %12s %12s\n", "threads", "mcs", "gcr-mcs")
	for _, n := range threadCounts {
		bare := run(topo, n, locks.NewMCS(topo))
		restricted := run(topo, n, core.NewRestricted(topo, locks.NewMCS(topo), 0))
		fmt.Printf("%8d %12.0f %12.0f\n", n, bare, restricted)
	}
}

func run(topo *numa.Topology, threads int, l locks.Mutex) float64 {
	cfg := lbench.DefaultConfig(topo, threads)
	cfg.Duration = 200 * time.Millisecond
	res, err := lbench.Run(cfg, l)
	if err != nil {
		panic(err)
	}
	return res.Throughput()
}
