// The adaptive hot path, end to end: both of this repository's
// amortization machines — combining execution and batched operations —
// tuned by observed load instead of fixed constants, and composed with
// the reader-writer read path.
//
//  1. Fixed vs adaptive combining: the fixed combiner always lingers
//     its full patience window and makes two harvest passes, which is
//     wrong at both ends of the load curve. The adaptive combiner
//     reads a per-cluster occupancy estimate (posted requests in
//     flight, the same cheap signal GCR uses for admission) and scales
//     both knobs with it: idle collapses to an eager
//     one-pass bypass, contention grows patience and passes.
//  2. Shared-mode batched reads: under a genuine reader-writer shard
//     lock, MGet answers each chunk of keys under ONE shared
//     acquisition — chunks from different clusters coexist — instead
//     of serializing an exclusive section per chunk.
//  3. An adaptive client: kvload's batch sizer grows and shrinks the
//     issued batch within a ceiling by hill-climbing on observed
//     per-op service time, so the pipeline feeds the store batches
//     sized to what the lock can amortize.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"os"
	"runtime"
	"sync/atomic"

	"repro/internal/kvload"
	"repro/internal/kvstore"
	"repro/internal/locks"
	"repro/internal/numa"
	"repro/internal/registry"
)

func die(err error) {
	if err != nil {
		// CI smoke-runs this example; a failed run must fail the gate.
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func main() {
	workers := runtime.GOMAXPROCS(0) - 1
	if workers < 4 {
		workers = 4
	}
	topo := numa.New(4, workers)
	base := registry.MustLookup("c-bo-mcs")
	const keyspace = 20_000

	// Exhibit 1: fixed vs adaptive combining under a batched 50% mix.
	fmt.Printf("%-30s %12s %14s %10s\n", "combining policy", "ops/sec", "acquisitions", "ops/acq")
	for _, c := range []struct {
		name     string
		adaptive bool
	}{
		{"fixed (comb-c-bo-mcs)", false},
		{"adaptive (comb-a-c-bo-mcs)", true},
	} {
		var acquisitions atomic.Uint64
		newMutex := base.MutexFactory(topo)
		cfg := kvstore.Config{
			Topo:     topo,
			Shards:   4,
			MaxBatch: 16,
			Capacity: keyspace * 2,
		}
		cfg.NewExec = func() locks.Executor {
			counted := locks.CountAcquisitions(newMutex(), &acquisitions)
			if c.adaptive {
				return locks.NewCombiningAdaptive(topo, counted)
			}
			return locks.NewCombining(topo, counted)
		}
		store := kvstore.New(cfg)
		kvload.PopulateClusters(store, topo, keyspace, 128)
		before := acquisitions.Load()
		lcfg := kvload.DefaultConfig(topo, workers, 50)
		lcfg.Keyspace = keyspace
		lcfg.BatchSize = 16
		res, err := kvload.Run(lcfg, store)
		die(err)
		acq := acquisitions.Load() - before
		opsPerAcq := 0.0
		if acq > 0 {
			opsPerAcq = float64(res.Ops) / float64(acq)
		}
		fmt.Printf("%-30s %12.0f %14d %10.1f\n", c.name, res.Throughput(), acq, opsPerAcq)
	}

	// The occupancy estimate is plain introspection: any tool can read
	// it off a running executor.
	x := locks.NewCombiningAdaptive(topo, base.NewMutex(topo))
	if occ, ok := locks.EstimateOccupancy(x); ok {
		fmt.Printf("\nidle adaptive executor occupancy estimate: %d (collapses to eager bypass)\n", occ)
	}

	// Exhibit 2: shared vs exclusive batched reads. Count exclusive and
	// shared acquisitions separately: the shared path answers read
	// chunks with RLocks (writer traffic is the sets plus sampled LRU
	// touches); the exclusive path pays every chunk exclusively.
	fmt.Printf("\n%-30s %12s %12s %12s\n", "MGet read path (90% gets)", "ops/sec", "excl acq", "shared acq")
	rw := registry.MustLookup("rw-c-bo-mcs")
	for _, c := range []struct {
		name   string
		shared bool
	}{
		{"shared (rw-c-bo-mcs)", true},
		{"exclusive (rw-c-bo-mcs/x)", false},
	} {
		var excl, shared atomic.Uint64
		f := rw.RWFactory(topo)
		cfg := kvstore.Config{
			Topo:     topo,
			Shards:   4,
			MaxBatch: 16,
			Capacity: keyspace * 2,
		}
		cfg.NewRWLock = func() locks.RWMutex {
			l := f()
			if !c.shared {
				l = locks.RWFromMutex(l)
			}
			return locks.CountRWAcquisitions(l, &excl, &shared)
		}
		store := kvstore.New(cfg)
		kvload.PopulateClusters(store, topo, keyspace, 128)
		e0, s0 := excl.Load(), shared.Load()
		lcfg := kvload.DefaultConfig(topo, workers, 90)
		lcfg.Keyspace = keyspace
		lcfg.BatchSize = 16
		res, err := kvload.Run(lcfg, store)
		die(err)
		fmt.Printf("%-30s %12.0f %12d %12d\n", c.name, res.Throughput(), excl.Load()-e0, shared.Load()-s0)
	}

	// Exhibit 3: the adaptive client against the same store.
	fmt.Printf("\n%-30s %12s %12s\n", "client batching (ceiling 16)", "ops/sec", "avg batch")
	for _, adaptive := range []bool{false, true} {
		store := kvstore.New(kvstore.Config{
			Topo:      topo,
			NewRWLock: rw.RWFactory(topo),
			Shards:    4,
			MaxBatch:  16,
			Capacity:  keyspace * 2,
		})
		kvload.PopulateClusters(store, topo, keyspace, 128)
		lcfg := kvload.DefaultConfig(topo, workers, 90)
		lcfg.Keyspace = keyspace
		lcfg.BatchSize = 16
		lcfg.BatchAdaptive = adaptive
		res, err := kvload.Run(lcfg, store)
		die(err)
		name := "fixed x16"
		if adaptive {
			name = "adaptive (hill-climbing)"
		}
		fmt.Printf("%-30s %12.0f %12.1f\n", name, res.Throughput(), res.AvgBatch())
	}

	fmt.Println("\nFixed constants are tuned for one point on the load curve; the")
	fmt.Println("occupancy estimate re-tunes patience, passes and batch size to the")
	fmt.Println("point the system is actually at — and shared-mode chunks let the")
	fmt.Println("read-mostly majority skip the exclusive queue entirely.")
}
