// Batched operations + combining execution: the two amortization
// levers this repository adds on top of lock quality. The paper's
// Table 1 shows the cache lock capping memcached no matter which lock
// guards it — every Get/Set still pays one full acquisition. This
// example drives the same 50% get / 50% set mix three ways:
//
//  1. per-op: one lock acquisition per operation (the Table 1 shape);
//  2. batched: MGet/MSet group 16 keys per call, so each shard runs a
//     whole chunk per acquisition;
//  3. batched + combining: the shard's critical sections are
//     additionally delegated to a combining executor, whose
//     per-cluster combiner merges batches from different workers
//     under a single acquisition of the underlying cohort lock.
//
// The printed ops-per-acquisition column is the point: the lock is
// acquired ever more rarely while the store does the same work.
//
// Run with:
//
//	go run ./examples/batch
package main

import (
	"fmt"
	"os"
	"runtime"
	"sync/atomic"

	"repro/internal/kvload"
	"repro/internal/kvstore"
	"repro/internal/locks"
	"repro/internal/numa"
	"repro/internal/registry"
)

func main() {
	workers := runtime.GOMAXPROCS(0) - 1
	if workers < 4 {
		workers = 4
	}
	topo := numa.New(4, workers)
	entry := registry.MustLookup("c-bo-mcs")
	const keyspace = 20_000

	type setup struct {
		name  string
		comb  bool
		batch int
	}
	fmt.Printf("%-26s %12s %14s %10s\n", "pipeline", "ops/sec", "acquisitions", "ops/acq")
	for _, s := range []setup{
		{"per-op (Table 1 shape)", false, 1},
		{"batched x16", false, 16},
		{"batched x16 + combining", true, 16},
	} {
		var acquisitions atomic.Uint64
		cfg := kvstore.Config{
			Topo:     topo,
			Shards:   4,
			MaxBatch: 16,
			Capacity: keyspace * 2,
		}
		newMutex := entry.MutexFactory(topo)
		if s.comb {
			cfg.NewExec = func() locks.Executor {
				return locks.NewCombining(topo, locks.CountAcquisitions(newMutex(), &acquisitions))
			}
		} else {
			cfg.NewLock = func() locks.Mutex {
				return locks.CountAcquisitions(newMutex(), &acquisitions)
			}
		}
		store := kvstore.New(cfg)
		kvload.PopulateClusters(store, topo, keyspace, 128)

		before := acquisitions.Load()
		lcfg := kvload.DefaultConfig(topo, workers, 50)
		lcfg.Keyspace = keyspace
		lcfg.BatchSize = s.batch
		res, err := kvload.Run(lcfg, store)
		if err != nil {
			// CI smoke-runs this example; a failed run must fail the gate.
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		acq := acquisitions.Load() - before
		opsPerAcq := 0.0
		if acq > 0 {
			opsPerAcq = float64(res.Ops) / float64(acq)
		}
		fmt.Printf("%-26s %12.0f %14d %10.1f\n", s.name, res.Throughput(), acq, opsPerAcq)
	}

	fmt.Println("\nBatching amortizes the cache lock within one caller's MGet/MSet;")
	fmt.Println("combining amortizes it across callers, one cluster at a time. Both")
	fmt.Println("cut acquisitions per operation — the lever no better lock can pull.")
}
