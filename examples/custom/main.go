// Custom composition: the point of lock cohorting is that it is a
// transformation, not a fixed lock. This example builds a NUMA-aware
// lock out of a deliberately simple user-written spinlock by adding
// the two properties the transformation needs:
//
//  1. a thread-oblivious global lock (any spinlock qualifies), and
//  2. cohort detection on the local lock (a successor-exists flag,
//     exactly the paper's §3.1 recipe for BO locks).
//
// Run with:
//
//	go run ./examples/custom
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	cohort "repro"
)

// userGlobal is the user's plain test-and-set spinlock. It is
// trivially thread-oblivious: Unlock is a store anyone may perform.
type userGlobal struct {
	held atomic.Int32
}

func (g *userGlobal) Lock(_ *cohort.Proc) {
	for !g.held.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
}

func (g *userGlobal) Unlock(_ *cohort.Proc) { g.held.Store(0) }

// userLocal upgrades the same spinlock with the two cohort hooks: a
// three-state word carrying the release state, and a successor-exists
// flag implementing alone?.
type userLocal struct {
	word atomic.Int32 // 0 global-release, 1 busy, 2 local-release
	succ atomic.Int32
}

func (l *userLocal) Lock(_ *cohort.Proc) cohort.Release {
	for {
		w := l.word.Load()
		if w != 1 {
			l.succ.Store(1) // announce ourselves before competing
			if l.word.CompareAndSwap(w, 1) {
				l.succ.Store(0)
				if w == 2 {
					return cohort.ReleaseLocal
				}
				return cohort.ReleaseGlobal
			}
		} else if l.succ.Load() == 0 {
			l.succ.Store(1) // re-assert after the winner's reset
		}
		runtime.Gosched()
	}
}

func (l *userLocal) Unlock(_ *cohort.Proc, r cohort.Release) {
	if r == cohort.ReleaseLocal {
		l.word.Store(2)
	} else {
		l.word.Store(0)
	}
}

func (l *userLocal) Alone(_ *cohort.Proc) bool { return l.succ.Load() == 0 }

func main() {
	workers := runtime.GOMAXPROCS(0) - 1
	if workers < 4 {
		workers = 4
	}
	topo := cohort.NewTopology(4, workers)

	// The transformation: one global + one local per cluster.
	lock := cohort.New(topo, &userGlobal{}, func(cluster int) cohort.LocalLock {
		return &userLocal{}
	}, cohort.WithHandoffLimit(64))

	var counter int64
	var ops atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(p *cohort.Proc) {
			defer wg.Done()
			n := int64(0)
			for {
				select {
				case <-stop:
					ops.Add(n)
					return
				default:
				}
				lock.Lock(p)
				counter++
				lock.Unlock(p)
				n++
			}
		}(topo.Proc(i))
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	fmt.Printf("custom cohort lock over a user spinlock:\n")
	fmt.Printf("  workers: %d, clusters: 4, hand-off limit: 64\n", workers)
	fmt.Printf("  operations: %d, counter: %d\n", ops.Load(), counter)
	if counter == ops.Load() {
		fmt.Println("  counter matches operations: mutual exclusion held")
	} else {
		fmt.Println("  ERROR: lost updates detected")
	}
}
