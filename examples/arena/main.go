// Arena: the value-memory experiment in miniature. The same
// overwrite-churn workload — write-heavy mix, value sizes varying
// between 64 and 512 bytes, so most overwrites outgrow their buffer —
// runs against two stores under a cohort lock: one with GC-managed
// heap values, one with per-shard explicit-free arenas homed on each
// shard's cluster. The arena takes value churn off the Go heap
// entirely: allocs/op collapses, GC has nothing to trace, and freed
// blocks are recycled cluster-locally (the paper's Table 2 mechanism
// applied to the data plane instead of the allocator benchmark).
//
// Run with:
//
//	go run ./examples/arena
package main

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/kvload"
	"repro/internal/kvstore"
	"repro/internal/numa"
	"repro/internal/registry"
)

func main() {
	workers := runtime.GOMAXPROCS(0) - 1
	if workers < 4 {
		workers = 4
	}
	topo := numa.New(4, workers)
	e := registry.MustLookup("c-bo-mcs")
	const keyspace = 20_000

	for _, mem := range []kvstore.ValueMemory{kvstore.ValueHeap, kvstore.ValueArena} {
		store := kvstore.New(kvstore.Config{
			Topo:        topo,
			NewLock:     e.MutexFactory(topo),
			Shards:      4,
			Placement:   kvstore.ClusterAffine,
			Capacity:    keyspace * topo.Clusters() * 2,
			ValueMemory: mem,
		})
		kvload.PopulateClusters(store, topo, keyspace, 128)
		runtime.GC() // population litters the heap; keep GC out of the window

		cfg := kvload.DefaultConfig(topo, workers, 10) // 90% sets: value churn
		cfg.Duration = 300 * time.Millisecond
		cfg.Keyspace = keyspace
		cfg.ValueSize = 64
		cfg.MaxValueSize = 512
		res, err := kvload.Run(cfg, store)
		if err != nil {
			fmt.Println("error:", err)
			return
		}

		fmt.Printf("%-6s %8.0f ops/s   %7.4f Go allocs/op   GC: %d cycles, %.2fms paused",
			mem, res.Throughput(), res.AllocsPerOp(), res.GCCycles,
			float64(res.GCPauseNs)/1e6)
		if st, ok := store.ArenaSnapshot(); ok {
			fmt.Printf("   arena: %d mallocs / %d frees, %d spills",
				st.Mallocs, st.Frees, res.Store.Spills)
		}
		fmt.Println()
		if err := store.ArenaCheck(topo.Proc(0)); err != nil {
			fmt.Println("arena check failed:", err)
			return
		}
	}

	fmt.Println("\nHeap mode allocates a fresh backing array whenever an overwrite")
	fmt.Println("outgrows a value's buffer — steady GC fodder on churning workloads.")
	fmt.Println("Arena mode carves values from per-shard explicit-free arenas: each")
	fmt.Println("shard frees and reallocates inside its own critical section, blocks")
	fmt.Println("recycle within the shard's home cluster, and the Go GC never sees")
	fmt.Println("the bytes.")
}
