// Server: the wire-protocol front-end end to end, in one process. A
// kvserver-shaped TCP server — sharded store under a cohort lock,
// cluster-pinned accept loops, pipelined memcached text protocol — is
// started on a loopback port, driven by a scripted client whose
// pipelined burst is answered in request order, and drained
// gracefully.
//
// The exhibit to notice: the server's stats report far fewer store
// flushes than operations. Pipelined requests accumulate per
// connection and flush through the batch APIs in MaxBatch-bounded
// critical sections, so a burst of N ops costs ceil(N/MaxBatch) shard
// acquisitions — the same amortization kvbench's -batch tables
// measure, now arriving over a socket.
//
// Run with:
//
//	go run ./examples/server
package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"time"

	"repro/internal/kvstore"
	"repro/internal/numa"
	"repro/internal/server"
)

func main() {
	topo := numa.New(2, 8)
	locking, err := kvstore.FromRegistry(topo, "c-bo-mcs")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	store := kvstore.New(kvstore.Config{
		Topo:      topo,
		Locking:   locking,
		Shards:    4,
		Placement: kvstore.ClusterAffine,
	})
	srv, err := server.New(server.Config{Topo: topo, Store: store})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	c.SetDeadline(time.Now().Add(10 * time.Second))
	rd := bufio.NewReader(c)

	// A scripted session, then one pipelined burst in a single write.
	fmt.Println("scripted session:")
	for _, req := range []string{
		"set lang 0 0 2\r\ngo\r\n",
		"get lang\r\n",
		"delete lang\r\n",
		"get lang\r\n",
	} {
		fmt.Printf("  >> %q\n", req)
		c.Write([]byte(req))
		for {
			line, err := rd.ReadString('\n')
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			fmt.Printf("  << %q\n", line)
			l := strings.TrimRight(line, "\r\n")
			if l == "STORED" || l == "END" || l == "DELETED" || l == "NOT_FOUND" {
				break
			}
		}
	}

	const burst = 256
	var b strings.Builder
	for i := 0; i < burst; i++ {
		fmt.Fprintf(&b, "set key%03d 0 0 5\r\nhello\r\n", i)
	}
	c.Write([]byte(b.String()))
	for i := 0; i < burst; i++ {
		if _, err := rd.ReadString('\n'); err != nil {
			fmt.Println("error:", err)
			return
		}
	}

	c.Write([]byte("quit\r\n"))
	if err := srv.Shutdown(5 * time.Second); err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := <-serveDone; err != nil {
		fmt.Println("error:", err)
		return
	}

	st := srv.Snapshot()
	fmt.Printf("\npipelined burst: %d sets arrived in one write\n", burst)
	fmt.Printf("server stats: %d ops in %d store flushes (%.1f ops per flush; MaxBatch %d)\n",
		st.Gets+st.Sets+st.Deletes, st.Flushes,
		float64(st.Gets+st.Sets+st.Deletes)/float64(st.Flushes), store.MaxBatch())
	fmt.Println("\nThe decode loop batches pipelined requests into MaxBatch-bounded")
	fmt.Println("critical sections, so a same-shard burst of N ops costs")
	fmt.Println("ceil(N/MaxBatch) acquisitions — socket-facing flat combining.")
}
