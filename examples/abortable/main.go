// Abortable cohort locks: a deadline-aware worker pool.
//
// Each worker tries to acquire a shared resource with a patience
// budget; on abort it does useful fallback work instead of blocking —
// the scenario abortable (timeout-capable) locks exist for. The
// example contrasts A-C-BO-CLH (the paper's NUMA-aware abortable
// queue lock, §3.6.2) with per-attempt accounting.
//
// Run with:
//
//	go run ./examples/abortable
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	cohort "repro"
)

func main() {
	workers := runtime.GOMAXPROCS(0) - 1
	if workers < 4 {
		workers = 4
	}
	topo := cohort.NewTopology(4, workers)
	lock := cohort.NewACBOCLH(topo)

	var acquired, aborted, fallback atomic.Int64
	var shared int64 // protected by lock

	const patience = 100 * time.Microsecond
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(p *cohort.Proc) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if lock.TryLockFor(p, patience) {
					shared++ // the contended resource
					busyWork(2000)
					lock.Unlock(p)
					acquired.Add(1)
				} else {
					// Patience exhausted: do local fallback work
					// rather than wait — the point of abortability.
					busyWork(2000)
					aborted.Add(1)
					fallback.Add(1)
				}
			}
		}(topo.Proc(i))
	}
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()

	total := acquired.Load() + aborted.Load()
	fmt.Printf("workers:   %d, patience %v\n", workers, patience)
	fmt.Printf("attempts:  %d\n", total)
	fmt.Printf("acquired:  %d (%.1f%%)\n", acquired.Load(), 100*float64(acquired.Load())/float64(total))
	fmt.Printf("aborted:   %d (%.1f%%) — all productively redirected to fallback work\n",
		aborted.Load(), 100*float64(aborted.Load())/float64(total))
	if shared != acquired.Load() {
		fmt.Printf("ERROR: shared counter %d disagrees with acquisitions %d\n", shared, acquired.Load())
		return
	}
	fmt.Printf("shared counter matches acquisitions exactly: mutual exclusion held\n")
}

// busyWork emulates a few microseconds of computation.
func busyWork(n int) {
	x := uint64(1)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
	}
	if x == 0 {
		fmt.Print()
	}
}
