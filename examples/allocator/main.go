// Allocator: the paper's malloc experiment in miniature. The
// single-lock splay-tree allocator (modelled on Solaris libc malloc)
// is hammered with the mmicro workload — allocate 64 bytes, write the
// first four words, free, ~4 µs delays — under different locks,
// reproducing the Table 2 effect: cohort locks recycle recently freed
// blocks within the allocating cluster, cutting cross-cluster block
// bouncing.
//
// Run with:
//
//	go run ./examples/allocator
package main

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/mmicro"
	"repro/internal/numa"
)

func main() {
	workers := runtime.GOMAXPROCS(0) - 1
	if workers < 4 {
		workers = 4
	}
	topo := numa.New(4, workers)

	type candidate struct {
		name string
		lock locks.Mutex
	}
	for _, c := range []candidate{
		{"pthread (sync.Mutex)", locks.NewPthread()},
		{"MCS (NUMA-oblivious)", locks.NewMCS(topo)},
		{"C-BO-MCS (cohort)", core.NewCBOMCS(topo)},
	} {
		cfg := mmicro.DefaultConfig(topo, workers)
		res, err := mmicro.Run(cfg, c.lock)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%-22s %7.0f malloc-free pairs/ms   cross-cluster reuse %5.1f%%   (tree allocs %d, bin allocs %d, splits %d)\n",
			c.name, res.PairsPerMs(), 100*res.RemoteReuseRate(),
			res.Alloc.TreeAllocs, res.Alloc.BinAllocs, res.Alloc.Splits)
	}
	fmt.Println("\nThe splay tree returns the most recently freed block first; under a")
	fmt.Println("cohort lock that block was freed by the same cluster, so its cache")
	fmt.Println("lines are already resident — the paper's Table 2 mechanism.")
}
