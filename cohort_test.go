package cohort_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	cohort "repro"
)

func TestQuickstartShape(t *testing.T) {
	// The package-documentation example, verified.
	topo := cohort.NewTopology(4, 16)
	lock := cohort.NewCBOMCS(topo)
	var counter int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(p *cohort.Proc) {
			defer wg.Done()
			for k := 0; k < 500; k++ {
				lock.Lock(p)
				counter++
				lock.Unlock(p)
			}
		}(topo.Proc(i))
	}
	wg.Wait()
	if counter != 16*500 {
		t.Fatalf("counter = %d, want %d", counter, 16*500)
	}
}

func TestAllConstructorsUsable(t *testing.T) {
	topo := cohort.NewTopology(2, 8)
	blocking := map[string]cohort.Lock{
		"c-bo-bo":   cohort.NewCBOBO(topo),
		"c-tkt-tkt": cohort.NewCTKTTKT(topo),
		"c-bo-mcs":  cohort.NewCBOMCS(topo),
		"c-tkt-mcs": cohort.NewCTKTMCS(topo),
		"c-mcs-mcs": cohort.NewCMCSMCS(topo),
	}
	for name, l := range blocking {
		p := topo.Proc(0)
		l.Lock(p)
		l.Unlock(p)
		_ = name
	}
	abortable := map[string]cohort.TryLock{
		"a-c-bo-bo":  cohort.NewACBOBO(topo),
		"a-c-bo-clh": cohort.NewACBOCLH(topo),
	}
	for name, l := range abortable {
		p := topo.Proc(0)
		if !l.TryLockFor(p, time.Second) {
			t.Fatalf("%s: TryLockFor failed on free lock", name)
		}
		l.Unlock(p)
	}
}

func TestAdaptiveCombiningAndRWExecutorFacade(t *testing.T) {
	// The public faces of the adaptive hot path: the load-adaptive
	// combining executor with its occupancy introspection, and the
	// shared-mode executor adapter over a reader-writer lock.
	topo := cohort.NewTopology(2, 8)
	p := topo.Proc(0)

	x := cohort.NewCombiningAdaptive(topo, cohort.NewCBOMCS(topo))
	n := 0
	for i := 0; i < 10; i++ {
		x.Exec(p, func() { n++ })
	}
	if n != 10 {
		t.Fatalf("adaptive executor ran %d closures, want 10", n)
	}
	if occ := x.OccupancyEstimate(); occ != 0 {
		t.Fatalf("quiescent occupancy estimate = %d, want 0", occ)
	}

	rx := cohort.ExecFromRWLock(cohort.NewRWPerCluster(topo, cohort.NewCBOMCS(topo)))
	m := 0
	rx.ExecShared(p, func() { m++ })
	rx.Exec(p, func() { m++ })
	if m != 2 {
		t.Fatalf("rw executor ran %d closures, want 2", m)
	}
}

func TestRWCombiningFacade(t *testing.T) {
	// The read-side combining faces: closures run exactly once in both
	// modes, the shared counters track the idle bypass (one batch per
	// lone closure), and the adaptive variant exposes a quiescent
	// occupancy estimate of zero.
	topo := cohort.NewTopology(2, 8)
	p := topo.Proc(0)

	x := cohort.NewRWCombining(topo, cohort.NewRWPerCluster(topo, cohort.NewCBOMCS(topo)))
	n := 0
	for i := 0; i < 10; i++ {
		x.ExecShared(p, func() { n++ })
	}
	x.Exec(p, func() { n++ })
	if n != 11 {
		t.Fatalf("rw combining executor ran %d closures, want 11", n)
	}
	if ops, batches := x.SharedOps(), x.SharedBatches(); ops != 10 || batches != 10 {
		t.Fatalf("idle shared counters = (%d ops, %d batches), want (10, 10): every lone closure bypasses", ops, batches)
	}

	a := cohort.NewRWCombiningAdaptive(topo, cohort.NewRWPerCluster(topo, cohort.NewCBOMCS(topo)))
	m := 0
	a.ExecShared(p, func() { m++ })
	a.Exec(p, func() { m++ })
	if m != 2 {
		t.Fatalf("adaptive rw combining executor ran %d closures, want 2", m)
	}
	if occ := a.OccupancyEstimate(); occ != 0 {
		t.Fatalf("quiescent occupancy estimate = %d, want 0", occ)
	}
}

func TestWithHandoffLimitVisible(t *testing.T) {
	topo := cohort.NewTopology(2, 4)
	l := cohort.NewCTKTTKT(topo, cohort.WithHandoffLimit(5))
	if l.HandoffLimit() != 5 {
		t.Fatalf("HandoffLimit = %d, want 5", l.HandoffLimit())
	}
	d := cohort.NewCBOMCS(topo)
	if d.HandoffLimit() != cohort.DefaultHandoffLimit {
		t.Fatalf("default HandoffLimit = %d", d.HandoffLimit())
	}
}

// userSpinLock is a deliberately simple user-provided lock used to
// exercise the generic transformation through the public API.
type userSpinLock struct {
	held atomic.Int32
	// succ implements cohort detection the same way LocalBO does.
	succ atomic.Int32
}

func (u *userSpinLock) Lock(p *cohort.Proc) cohort.Release {
	for {
		v := u.held.Load()
		if v != 1 { // 0 = free/global-release, 2 = local-release
			u.succ.Store(1)
			if u.held.CompareAndSwap(v, 1) {
				u.succ.Store(0)
				if v == 2 {
					return cohort.ReleaseLocal
				}
				return cohort.ReleaseGlobal
			}
		} else if u.succ.Load() == 0 {
			u.succ.Store(1)
		}
	}
}

func (u *userSpinLock) Unlock(_ *cohort.Proc, r cohort.Release) {
	if r == cohort.ReleaseLocal {
		u.held.Store(2)
	} else {
		u.held.Store(0)
	}
}

func (u *userSpinLock) Alone(_ *cohort.Proc) bool { return u.succ.Load() == 0 }

func TestGenericTransformationWithUserLock(t *testing.T) {
	topo := cohort.NewTopology(2, 8)
	lock := cohort.New(topo, cohort.NewGlobalBO(), func(int) cohort.LocalLock {
		return &userSpinLock{}
	})
	var counter int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(p *cohort.Proc) {
			defer wg.Done()
			for k := 0; k < 300; k++ {
				lock.Lock(p)
				counter++
				lock.Unlock(p)
			}
		}(topo.Proc(i))
	}
	wg.Wait()
	if counter != 8*300 {
		t.Fatalf("counter = %d, want %d", counter, 8*300)
	}
}

func TestProvidedLocalMCSComposes(t *testing.T) {
	topo := cohort.NewTopology(2, 8)
	lock := cohort.New(topo, cohort.NewGlobalBO(), func(int) cohort.LocalLock {
		return cohort.NewLocalMCS(topo)
	}, cohort.WithHandoffLimit(8))
	var wg sync.WaitGroup
	var counter int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(p *cohort.Proc) {
			defer wg.Done()
			for k := 0; k < 300; k++ {
				lock.Lock(p)
				counter++
				lock.Unlock(p)
			}
		}(topo.Proc(i))
	}
	wg.Wait()
	if counter != 8*300 {
		t.Fatalf("counter = %d", counter)
	}
}

func TestAbortableUnderContention(t *testing.T) {
	topo := cohort.NewTopology(4, 16)
	lock := cohort.NewACBOCLH(topo)
	var acquired, aborted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(p *cohort.Proc) {
			defer wg.Done()
			for k := 0; k < 200; k++ {
				if lock.TryLockFor(p, 50*time.Microsecond) {
					acquired.Add(1)
					lock.Unlock(p)
				} else {
					aborted.Add(1)
				}
			}
		}(topo.Proc(i))
	}
	wg.Wait()
	if acquired.Load() == 0 {
		t.Fatal("nothing acquired")
	}
	if acquired.Load()+aborted.Load() != 16*200 {
		t.Fatal("attempts unaccounted")
	}
}
