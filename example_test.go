package cohort_test

import (
	"fmt"
	"sync"
	"time"

	cohort "repro"
)

// The basic pattern: one Proc per worker goroutine, lock operations
// carry the Proc.
func ExampleNewCBOMCS() {
	topo := cohort.NewTopology(4, 8) // 4 clusters, up to 8 workers
	lock := cohort.NewCBOMCS(topo)

	var counter int
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(p *cohort.Proc) {
			defer wg.Done()
			for n := 0; n < 1000; n++ {
				lock.Lock(p)
				counter++
				lock.Unlock(p)
			}
		}(topo.Proc(i))
	}
	wg.Wait()
	fmt.Println(counter)
	// Output: 8000
}

// Abortable cohort locks give up after a patience budget, so workers
// can fall back to other work instead of waiting.
func ExampleNewACBOCLH() {
	topo := cohort.NewTopology(2, 4)
	lock := cohort.NewACBOCLH(topo)

	p0, p1 := topo.Proc(0), topo.Proc(1)
	if !lock.TryLockFor(p0, time.Second) {
		fmt.Println("unexpected: free lock not acquired")
		return
	}
	// A second thread with tiny patience aborts instead of blocking.
	if !lock.TryLockFor(p1, 10*time.Microsecond) {
		fmt.Println("second acquisition aborted")
	}
	lock.Unlock(p0)
	if lock.TryLockFor(p1, time.Second) {
		fmt.Println("acquired after release")
		lock.Unlock(p1)
	}
	// Output:
	// second acquisition aborted
	// acquired after release
}

// The transformation composes user-supplied locks; here the provided
// building blocks are used directly.
func ExampleNew() {
	topo := cohort.NewTopology(2, 4)
	lock := cohort.New(topo, cohort.NewGlobalBO(), func(cluster int) cohort.LocalLock {
		return cohort.NewLocalCLH(topo)
	}, cohort.WithHandoffLimit(16))

	p := topo.Proc(0)
	lock.Lock(p)
	fmt.Println("held with hand-off limit", lock.HandoffLimit())
	lock.Unlock(p)
	// Output: held with hand-off limit 16
}

// Reader-writer cohorting: readers stay cluster-local, writers go
// through a cohort lock.
func ExampleNewRWCBOMCS() {
	topo := cohort.NewTopology(2, 4)
	rw := cohort.NewRWCBOMCS(topo)

	data := 0
	var wg sync.WaitGroup
	// One writer.
	wg.Add(1)
	go func(p *cohort.Proc) {
		defer wg.Done()
		rw.Lock(p)
		data = 42
		rw.Unlock(p)
	}(topo.Proc(0))
	wg.Wait()

	// Concurrent readers.
	results := make(chan int, 3)
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		go func(p *cohort.Proc) {
			defer wg.Done()
			rw.RLock(p)
			results <- data
			rw.RUnlock(p)
		}(topo.Proc(i))
	}
	wg.Wait()
	close(results)
	sum := 0
	for v := range results {
		sum += v
	}
	fmt.Println(sum)
	// Output: 126
}
