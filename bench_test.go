// Benchmarks regenerating every table and figure of the paper's
// evaluation (§4), one benchmark family per exhibit. Each sub-benchmark
// runs fixed-duration trials of the corresponding experiment and
// reports the exhibit's metric via ReportMetric; the cmd/ tools run the
// same experiments over the full parameter sweeps.
//
//	go test -bench=Figure2 .        # LBench throughput
//	go test -bench=Table2 .        # mmicro allocator
//	go test -bench=. .             # everything
package cohort_test

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/kvload"
	"repro/internal/kvstore"
	"repro/internal/lbench"
	"repro/internal/locks"
	"repro/internal/mmicro"
	"repro/internal/numa"
	"repro/internal/registry"
)

// trialWindow keeps each benchmark iteration short; throughput metrics
// stabilize well below this on the micro harnesses.
const trialWindow = 50 * time.Millisecond

// contendedThreads is the high-contention point: all processors but
// one (the paper's curves separate at full machine load; beyond
// GOMAXPROCS the Go scheduler, not the lock, dominates).
func contendedThreads() int {
	n := runtime.GOMAXPROCS(0) - 1
	if n < 4 {
		n = 4
	}
	return n
}

// benchLBench runs one LBench configuration per iteration and reports
// the chosen metric's mean.
func benchLBench(b *testing.B, lockName string, threads int,
	metric func(lbench.Result) float64, unit string) {
	b.Helper()
	e := registry.MustLookup(lockName)
	topo := numa.New(4, threads)
	var sum float64
	for i := 0; i < b.N; i++ {
		cfg := lbench.DefaultConfig(topo, threads)
		cfg.Duration = trialWindow
		res, err := lbench.Run(cfg, e.NewMutex(topo))
		if err != nil {
			b.Fatal(err)
		}
		sum += metric(res)
	}
	b.ReportMetric(sum/float64(b.N), unit)
}

// BenchmarkFigure2Scalability reproduces Figure 2's high-contention
// point: LBench throughput per lock.
func BenchmarkFigure2Scalability(b *testing.B) {
	for _, name := range registry.Figure2Names() {
		b.Run(name, func(b *testing.B) {
			benchLBench(b, name, contendedThreads(), lbench.Result.Throughput, "pairs/s")
		})
	}
}

// BenchmarkFigure3Locality reproduces Figure 3: simulated L2 coherence
// misses per critical section (lower is better).
func BenchmarkFigure3Locality(b *testing.B) {
	for _, name := range registry.Figure2Names() {
		b.Run(name, func(b *testing.B) {
			benchLBench(b, name, contendedThreads(), lbench.Result.MissesPerCS, "misses/CS")
		})
	}
}

// BenchmarkFigure4LowContention reproduces Figure 4: throughput at a
// low thread count, where all locks should be competitive.
func BenchmarkFigure4LowContention(b *testing.B) {
	for _, name := range registry.Figure2Names() {
		b.Run(name, func(b *testing.B) {
			benchLBench(b, name, 2, lbench.Result.Throughput, "pairs/s")
		})
	}
}

// BenchmarkFigure5Fairness reproduces Figure 5: the standard deviation
// of per-thread throughput as a percentage of the mean.
func BenchmarkFigure5Fairness(b *testing.B) {
	threads := contendedThreads() / 4 * 4 // cluster-even, see EXPERIMENTS.md
	if threads < 4 {
		threads = 4
	}
	for _, name := range registry.Figure2Names() {
		b.Run(name, func(b *testing.B) {
			benchLBench(b, name, threads, lbench.Result.FairnessStdDevPct, "stddev%")
		})
	}
}

// BenchmarkFigure6Abortable reproduces Figure 6: abortable lock
// throughput, with the abort rate as a companion metric.
func BenchmarkFigure6Abortable(b *testing.B) {
	for _, name := range registry.Figure6Names() {
		b.Run(name, func(b *testing.B) {
			e := registry.MustLookup(name)
			threads := contendedThreads()
			topo := numa.New(4, threads)
			var tp, ar float64
			for i := 0; i < b.N; i++ {
				cfg := lbench.DefaultConfig(topo, threads)
				cfg.Duration = trialWindow
				res, err := lbench.RunAbortable(cfg, e.NewTry(topo))
				if err != nil {
					b.Fatal(err)
				}
				tp += res.Throughput()
				ar += 100 * res.AbortRate()
			}
			b.ReportMetric(tp/float64(b.N), "pairs/s")
			b.ReportMetric(ar/float64(b.N), "abort%")
		})
	}
}

// benchTable1 runs one memcached-style cell per iteration.
func benchTable1(b *testing.B, getPct int) {
	threads := contendedThreads()
	for _, name := range registry.TableNames() {
		b.Run(name, func(b *testing.B) {
			e := registry.MustLookup(name)
			topo := numa.New(4, threads)
			const keyspace = 20_000
			var sum float64
			for i := 0; i < b.N; i++ {
				store := kvstore.New(kvstore.Config{Topo: topo, Lock: e.NewMutex(topo)})
				kvload.Populate(store, topo.Proc(0), keyspace, 128)
				cfg := kvload.DefaultConfig(topo, threads, getPct)
				cfg.Duration = trialWindow
				cfg.Keyspace = keyspace
				res, err := kvload.Run(cfg, store)
				if err != nil {
					b.Fatal(err)
				}
				sum += res.Throughput()
			}
			b.ReportMetric(sum/float64(b.N), "ops/s")
		})
	}
}

// BenchmarkTable1aReadHeavy reproduces Table 1(a): 90% gets.
func BenchmarkTable1aReadHeavy(b *testing.B) { benchTable1(b, 90) }

// BenchmarkTable1bMixed reproduces Table 1(b): 50% gets.
func BenchmarkTable1bMixed(b *testing.B) { benchTable1(b, 50) }

// BenchmarkTable1cWriteHeavy reproduces Table 1(c): 10% gets.
func BenchmarkTable1cWriteHeavy(b *testing.B) { benchTable1(b, 10) }

// BenchmarkShardScaling measures the sharded store beyond the paper:
// the 50% mix under C-BO-MCS with 1, 4 and 16 shards, cluster-affine
// placement — the structural escape from Table 1's single-lock
// ceiling.
func BenchmarkShardScaling(b *testing.B) {
	threads := contendedThreads()
	e := registry.MustLookup("c-bo-mcs")
	const keyspace = 20_000
	for _, shards := range []int{1, 4, 16} {
		b.Run("shards-"+itoa(int64(shards)), func(b *testing.B) {
			topo := numa.New(4, threads)
			var sum float64
			for i := 0; i < b.N; i++ {
				store := kvstore.New(kvstore.Config{
					Topo:      topo,
					NewLock:   e.MutexFactory(topo),
					Shards:    shards,
					Placement: kvstore.ClusterAffine,
					Capacity:  keyspace * topo.Clusters() * 2,
				})
				kvload.PopulateClusters(store, topo, keyspace, 128)
				cfg := kvload.DefaultConfig(topo, threads, 50)
				cfg.Duration = trialWindow
				cfg.Keyspace = keyspace
				res, err := kvload.Run(cfg, store)
				if err != nil {
					b.Fatal(err)
				}
				sum += res.Throughput()
			}
			b.ReportMetric(sum/float64(b.N), "ops/s")
		})
	}
}

// BenchmarkShardPlacement compares HashMod and ClusterAffine routing
// at a fixed shard count, with the affinity knob biasing HashMod
// workers toward their home shards.
func BenchmarkShardPlacement(b *testing.B) {
	threads := contendedThreads()
	e := registry.MustLookup("c-bo-mcs")
	const keyspace = 20_000
	cases := []struct {
		name      string
		placement kvstore.Placement
		affinity  float64
	}{
		{"hashmod", kvstore.HashMod, 0},
		{"hashmod-affinity", kvstore.HashMod, 0.9},
		{"affine", kvstore.ClusterAffine, 0},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			topo := numa.New(4, threads)
			var sum float64
			for i := 0; i < b.N; i++ {
				store := kvstore.New(kvstore.Config{
					Topo:      topo,
					NewLock:   e.MutexFactory(topo),
					Shards:    16,
					Placement: c.placement,
					Capacity:  keyspace * topo.Clusters() * 2,
				})
				kvload.PopulateClusters(store, topo, keyspace, 128)
				cfg := kvload.DefaultConfig(topo, threads, 50)
				cfg.Duration = trialWindow
				cfg.Keyspace = keyspace
				cfg.Affinity = c.affinity
				res, err := kvload.Run(cfg, store)
				if err != nil {
					b.Fatal(err)
				}
				sum += res.Throughput()
			}
			b.ReportMetric(sum/float64(b.N), "ops/s")
		})
	}
}

// BenchmarkValueMemory races the two value backends on the overwrite
// churn workload (write-heavy mix, value sizes varying 64..512B): heap
// mode allocates a fresh backing array whenever a value outgrows its
// buffer, arena mode recycles explicit-free blocks inside each shard's
// cluster-homed arena. Reports both throughput and Go heap allocs/op —
// the GC-pressure column the arena exists to flatten.
func BenchmarkValueMemory(b *testing.B) {
	threads := contendedThreads()
	e := registry.MustLookup("c-bo-mcs")
	const keyspace = 20_000
	for _, mem := range []kvstore.ValueMemory{kvstore.ValueHeap, kvstore.ValueArena} {
		b.Run(mem.String(), func(b *testing.B) {
			topo := numa.New(4, threads)
			var tp, allocs float64
			for i := 0; i < b.N; i++ {
				store := kvstore.New(kvstore.Config{
					Topo:        topo,
					NewLock:     e.MutexFactory(topo),
					Shards:      4,
					Placement:   kvstore.ClusterAffine,
					Capacity:    keyspace * topo.Clusters() * 2,
					ValueMemory: mem,
				})
				kvload.PopulateClusters(store, topo, keyspace, 128)
				runtime.GC()
				cfg := kvload.DefaultConfig(topo, threads, 10)
				cfg.Duration = trialWindow
				cfg.Keyspace = keyspace
				cfg.ValueSize = 64
				cfg.MaxValueSize = 512
				res, err := kvload.Run(cfg, store)
				if err != nil {
					b.Fatal(err)
				}
				tp += res.Throughput()
				allocs += res.AllocsPerOp()
			}
			b.ReportMetric(tp/float64(b.N), "ops/s")
			// "allocs/op" is a reserved benchmark unit that only prints
			// under -benchmem; a distinct unit keeps the column visible.
			b.ReportMetric(allocs/float64(b.N), "goallocs/op")
		})
	}
}

// BenchmarkCNA measures the compact NUMA-aware extension lock on
// LBench at the Figure 2 high-contention point and the Figure 4
// low-contention point, so its rows land beside the cohort locks'.
func BenchmarkCNA(b *testing.B) {
	b.Run("contended", func(b *testing.B) {
		benchLBench(b, "cna", contendedThreads(), lbench.Result.Throughput, "pairs/s")
	})
	b.Run("low", func(b *testing.B) {
		benchLBench(b, "cna", 2, lbench.Result.Throughput, "pairs/s")
	})
	b.Run("batch", func(b *testing.B) {
		benchLBench(b, "cna", contendedThreads(), lbench.Result.AvgBatch, "CS/batch")
	})
}

// BenchmarkGCR measures the concurrency-restriction wrapper at the
// high-contention point over each registered inner lock — the regime
// where admission control is supposed to pay for itself.
func BenchmarkGCR(b *testing.B) {
	for _, name := range []string{"gcr-mcs", "gcr-cna", "gcr-c-bo-mcs"} {
		b.Run(name, func(b *testing.B) {
			benchLBench(b, name, contendedThreads(), lbench.Result.Throughput, "pairs/s")
		})
	}
}

// execTrialOpsPerSec runs one fixed-window trial against an executor:
// threads workers each loop posting a small critical section (bump a
// shared counter pair) through Exec.
func execTrialOpsPerSec(topo *numa.Topology, x locks.Executor, threads int) float64 {
	var ops atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var a, b int64 // protected by the executor's exclusion
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(p *numa.Proc) {
			defer wg.Done()
			n := uint64(0)
			for {
				select {
				case <-stop:
					ops.Add(n)
					return
				default:
				}
				x.Exec(p, func() { a++; b++ })
				n++
			}
		}(topo.Proc(w))
	}
	time.Sleep(trialWindow)
	close(stop)
	wg.Wait()
	if a != b {
		panic("executor exclusion violated in benchmark")
	}
	return float64(ops.Load()) / trialWindow.Seconds()
}

// BenchmarkCombining races each headline lock's combining executors —
// fixed-constant (comb) and load-adaptive (comb-a) — against the same
// lock driven one-acquisition-per-op (ExecFromMutex), at the
// high-contention point: the delegated-execution analogue of Figure 2.
// Every variant's underlying lock carries an acquisition counter, so
// alongside throughput each sub-benchmark reports measured
// ops-per-acquisition — the amortization the adaptive policy must meet
// or beat (direct is definitionally 1.0).
func BenchmarkCombining(b *testing.B) {
	threads := contendedThreads()
	for _, name := range []string{"mcs", "c-bo-mcs", "cna"} {
		for _, variant := range []string{"direct", "comb", "comb-a"} {
			b.Run(name+"/"+variant, func(b *testing.B) {
				e := registry.MustLookup(name)
				topo := numa.New(4, threads)
				var sum, amort float64
				for i := 0; i < b.N; i++ {
					var acq atomic.Uint64
					inner := locks.CountAcquisitions(e.NewMutex(topo), &acq)
					var x locks.Executor
					switch variant {
					case "comb":
						x = locks.NewCombining(topo, inner)
					case "comb-a":
						x = locks.NewCombiningAdaptive(topo, inner)
					default:
						x = locks.ExecFromMutex(inner)
					}
					rate := execTrialOpsPerSec(topo, x, threads)
					sum += rate
					if n := acq.Load(); n > 0 {
						amort += rate * trialWindow.Seconds() / float64(n)
					}
				}
				b.ReportMetric(sum/float64(b.N), "ops/s")
				b.ReportMetric(amort/float64(b.N), "ops/acq")
			})
		}
	}
}

// BenchmarkSharedBatchedReads measures the read-side amortization
// machines end to end across a 50/90/99% read sweep: a batched
// pipeline (16-key client batches) against a sharded store under the
// reader-writer cohort lock, with MGet chunks answered three ways —
// shared mode (one RLock per chunk), read-combined (chunks posted as
// read closures to locks.NewRWCombining, concurrent same-cluster
// chunks folded under one RLock), and the same construction driven
// through its exclusive path. Shared chunks coexist across clusters;
// combining should close on or beat shared as the read fraction and
// same-cluster overlap rise; exclusive chunks serialize.
func BenchmarkSharedBatchedReads(b *testing.B) {
	threads := contendedThreads()
	e := registry.MustLookup("rw-c-bo-mcs")
	const keyspace = 20_000
	for _, reads := range []float64{0.50, 0.90, 0.99} {
		for _, mode := range []string{"shared", "comb-rw", "exclusive"} {
			mode := mode
			b.Run(fmt.Sprintf("reads%.0f/%s", reads*100, mode), func(b *testing.B) {
				topo := numa.New(4, threads)
				var sum float64
				for i := 0; i < b.N; i++ {
					cfg := kvstore.Config{
						Topo:     topo,
						Shards:   4,
						MaxBatch: 16,
						Capacity: keyspace * 2,
					}
					switch mode {
					case "comb-rw":
						newRW := e.RWFactory(topo)
						cfg.NewExec = func() locks.Executor {
							return locks.NewRWCombining(topo, newRW())
						}
					case "shared":
						cfg.NewRWLock = e.RWFactory(topo)
					default:
						newRW := e.RWFactory(topo)
						cfg.NewRWLock = func() locks.RWMutex { return locks.RWFromMutex(newRW()) }
					}
					store := kvstore.New(cfg)
					kvload.PopulateClusters(store, topo, keyspace, 128)
					lcfg := kvload.DefaultConfig(topo, threads, int(reads*100))
					lcfg.Duration = trialWindow
					lcfg.Keyspace = keyspace
					lcfg.ReadFraction = reads
					lcfg.BatchSize = 16
					res, err := kvload.Run(lcfg, store)
					if err != nil {
						b.Fatal(err)
					}
					sum += res.Throughput()
				}
				b.ReportMetric(sum/float64(b.N), "ops/s")
			})
		}
	}
}

// BenchmarkBatchedStore measures the batched operation pipeline end
// to end: the 50% mix through MGet/MSet batches vs the per-op loop,
// with the store's critical sections either directly locked or
// delegated to combining executors — the amortization exhibit across
// every layer of the refactor.
func BenchmarkBatchedStore(b *testing.B) {
	threads := contendedThreads()
	e := registry.MustLookup("c-bo-mcs")
	const keyspace = 20_000
	cases := []struct {
		name  string
		comb  bool
		batch int
	}{
		{"direct/batch1", false, 1},
		{"direct/batch16", false, 16},
		{"comb/batch1", true, 1},
		{"comb/batch16", true, 16},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			topo := numa.New(4, threads)
			var sum float64
			for i := 0; i < b.N; i++ {
				cfg := kvstore.Config{
					Topo:     topo,
					Shards:   4,
					MaxBatch: 16,
					Capacity: keyspace * 2,
				}
				if c.comb {
					cfg.NewExec = func() locks.Executor {
						return locks.NewCombining(topo, e.NewMutex(topo))
					}
				} else {
					cfg.NewLock = e.MutexFactory(topo)
				}
				store := kvstore.New(cfg)
				kvload.PopulateClusters(store, topo, keyspace, 128)
				lcfg := kvload.DefaultConfig(topo, threads, 50)
				lcfg.Duration = trialWindow
				lcfg.Keyspace = keyspace
				lcfg.BatchSize = c.batch
				res, err := kvload.Run(lcfg, store)
				if err != nil {
					b.Fatal(err)
				}
				sum += res.Throughput()
			}
			b.ReportMetric(sum/float64(b.N), "ops/s")
		})
	}
}

// BenchmarkTable2Malloc reproduces Table 2: mmicro malloc-free pairs
// per millisecond, with the cross-cluster block-reuse rate (the
// paper's explanatory mechanism) as a companion metric.
func BenchmarkTable2Malloc(b *testing.B) {
	threads := contendedThreads()
	for _, name := range registry.TableNames() {
		b.Run(name, func(b *testing.B) {
			e := registry.MustLookup(name)
			topo := numa.New(4, threads)
			var rate, reuse float64
			for i := 0; i < b.N; i++ {
				cfg := mmicro.DefaultConfig(topo, threads)
				cfg.Duration = trialWindow
				cfg.ArenaBytes = 16 << 20
				res, err := mmicro.Run(cfg, e.NewMutex(topo))
				if err != nil {
					b.Fatal(err)
				}
				rate += res.PairsPerMs()
				reuse += 100 * res.RemoteReuseRate()
			}
			b.ReportMetric(rate/float64(b.N), "pairs/ms")
			b.ReportMetric(reuse/float64(b.N), "remote-reuse%")
		})
	}
}

// BenchmarkAblationHandoff measures the §4.1.1 hand-off bound
// trade-off on C-BO-MCS: throughput and fairness per limit.
func BenchmarkAblationHandoff(b *testing.B) {
	threads := contendedThreads()
	for _, limit := range []int64{1, 16, 64, 256, -1} {
		name := "limit-64"
		switch {
		case limit < 0:
			name = "unbounded"
		default:
			name = "limit-" + itoa(limit)
		}
		b.Run(name, func(b *testing.B) {
			topo := numa.New(4, threads)
			var tp, fair float64
			for i := 0; i < b.N; i++ {
				cfg := lbench.DefaultConfig(topo, threads)
				cfg.Duration = trialWindow
				res, err := lbench.Run(cfg, core.NewCBOMCS(topo, core.WithHandoffLimit(limit)))
				if err != nil {
					b.Fatal(err)
				}
				tp += res.Throughput()
				fair += res.FairnessStdDevPct()
			}
			b.ReportMetric(tp/float64(b.N), "pairs/s")
			b.ReportMetric(fair/float64(b.N), "stddev%")
		})
	}
}

// BenchmarkAblationBatch measures §4.1.2's batching statistic: the
// average run of same-cluster critical sections per lock.
func BenchmarkAblationBatch(b *testing.B) {
	for _, name := range []string{"mcs", "hbo", "hclh", "fc-mcs", "c-bo-mcs", "c-tkt-tkt"} {
		b.Run(name, func(b *testing.B) {
			benchLBench(b, name, contendedThreads(), lbench.Result.AvgBatch, "CS/batch")
		})
	}
}

// BenchmarkUncontended measures single-thread lock+unlock latency for
// every blocking lock — the low-contention overhead discussion of
// §4.1.3 (here ns/op is the metric itself).
func BenchmarkUncontended(b *testing.B) {
	for _, e := range registry.Blocking() {
		b.Run(e.Name, func(b *testing.B) {
			topo := numa.New(4, 4)
			l := e.NewMutex(topo)
			p := topo.Proc(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Lock(p)
				l.Unlock(p)
			}
		})
	}
}

// rwTrialOpsPerSec runs one fixed-window trial against a reader-writer
// lock: threads workers draw a readPct read mix; reads go through
// shared mode when shared is set, everything else through exclusive
// mode. Both RW benchmark families share this harness.
func rwTrialOpsPerSec(topo *numa.Topology, l *core.RWCohortLock, threads, readPct int, shared bool) float64 {
	var ops atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(p *numa.Proc) {
			defer wg.Done()
			n := uint64(0)
			for {
				select {
				case <-stop:
					ops.Add(n)
					return
				default:
				}
				if read := int(p.RandN(100)) < readPct; read && shared {
					l.RLock(p)
					l.RUnlock(p)
				} else {
					l.Lock(p)
					l.Unlock(p)
				}
				n++
			}
		}(topo.Proc(w))
	}
	time.Sleep(trialWindow)
	close(stop)
	wg.Wait()
	return float64(ops.Load()) / trialWindow.Seconds()
}

// BenchmarkRWCohort sweeps read fractions (50/90/99%) over the
// reader-writer cohort lock, racing shared-mode reads against the same
// construction with every read through exclusive mode — the read-side
// scaling claim in one exhibit. At 99% reads shared mode should pull
// away; at 50% the writer drain dominates and the gap closes.
func BenchmarkRWCohort(b *testing.B) {
	threads := contendedThreads()
	for _, readPct := range []int{50, 90, 99} {
		for _, shared := range []bool{true, false} {
			name := "read" + itoa(int64(readPct)) + "/exclusive"
			if shared {
				name = "read" + itoa(int64(readPct)) + "/shared"
			}
			b.Run(name, func(b *testing.B) {
				topo := numa.New(4, threads)
				l := core.NewRWCBOMCS(topo)
				var sum float64
				for i := 0; i < b.N; i++ {
					sum += rwTrialOpsPerSec(topo, l, threads, readPct, shared)
				}
				b.ReportMetric(sum/float64(b.N), "ops/s")
			})
		}
	}
}

// BenchmarkKVReadPath measures the store's read path beyond one shard:
// a 99% read mix over 4 cluster-affine shards, shared-mode Gets vs the
// same rw lock driven exclusively — the end-to-end version of
// BenchmarkRWCohort through every store layer.
func BenchmarkKVReadPath(b *testing.B) {
	threads := contendedThreads()
	e := registry.MustLookup("rw-c-bo-mcs")
	const keyspace = 20_000
	for _, shared := range []bool{true, false} {
		name := "exclusive"
		if shared {
			name = "shared"
		}
		b.Run(name, func(b *testing.B) {
			topo := numa.New(4, threads)
			newRW := e.RWFactory(topo)
			if !shared {
				newRW = func() locks.RWMutex { return locks.RWFromMutex(e.NewRW(topo)) }
			}
			var sum float64
			for i := 0; i < b.N; i++ {
				store := kvstore.New(kvstore.Config{
					Topo:      topo,
					NewRWLock: newRW,
					Shards:    4,
					Placement: kvstore.ClusterAffine,
					Capacity:  keyspace * topo.Clusters() * 2,
				})
				kvload.PopulateClusters(store, topo, keyspace, 128)
				cfg := kvload.DefaultConfig(topo, threads, 99)
				cfg.Duration = trialWindow
				cfg.Keyspace = keyspace
				cfg.ReadFraction = 0.99
				res, err := kvload.Run(cfg, store)
				if err != nil {
					b.Fatal(err)
				}
				sum += res.Throughput()
			}
			b.ReportMetric(sum/float64(b.N), "ops/s")
		})
	}
}

// BenchmarkExtensionRWCohort measures the reader-writer extension:
// read-mostly throughput where readers touch only their cluster's
// counter line (shared mode throughout; the write-pct axis complements
// BenchmarkRWCohort's shared-vs-exclusive read sweep).
func BenchmarkExtensionRWCohort(b *testing.B) {
	threads := contendedThreads()
	for _, writePct := range []int{0, 5, 50} {
		b.Run("write"+itoa(int64(writePct)), func(b *testing.B) {
			topo := numa.New(4, threads)
			l := core.NewRWCBOMCS(topo)
			var sum float64
			for i := 0; i < b.N; i++ {
				sum += rwTrialOpsPerSec(topo, l, threads, 100-writePct, true)
			}
			b.ReportMetric(sum/float64(b.N), "ops/s")
		})
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
