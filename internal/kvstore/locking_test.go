package kvstore

import (
	"fmt"
	"testing"

	"sync/atomic"

	"repro/internal/locks"
	"repro/internal/numa"
)

// driveOps runs a fixed, deterministic mixed workload against the
// store from several procs in turn (single-goroutine, so the op order
// is identical across runs) and returns a digest of every observable:
// each get's (len, found), each delete's presence, the final item
// count and the final statistics snapshot.
func driveOps(t *testing.T, topo *numa.Topology, s *Store) string {
	t.Helper()
	out := ""
	dst := make([]byte, 64)
	val := make([]byte, 32)
	for round := 0; round < 4; round++ {
		for id := 0; id < topo.MaxProcs(); id++ {
			p := topo.Proc(id)
			base := uint64(round*100 + id*10)
			for k := uint64(0); k < 8; k++ {
				val[0] = byte(base + k)
				s.Set(p, base+k, val[:8+k])
			}
			for k := uint64(0); k < 12; k++ {
				n, ok := s.Get(p, base+k, dst)
				out += fmt.Sprintf("g%d,%v;", n, ok)
			}
			out += fmt.Sprintf("d%v;", s.Delete(p, base))
			out += fmt.Sprintf("d%v;", s.Delete(p, base+99))
		}
		// Batched path: same keys through MGet/MSet/MDeleteEach.
		p := topo.Proc(round % topo.MaxProcs())
		keys := make([]uint64, 32)
		vals := make([][]byte, 32)
		for i := range keys {
			keys[i] = uint64(round*100 + i)
			vals[i] = val[:4+i%8]
		}
		s.MSet(p, keys, vals)
		lens := make([]int, len(keys))
		found := make([]bool, len(keys))
		s.MGet(p, keys, nil, lens, found)
		for i := range keys {
			out += fmt.Sprintf("m%d,%v;", lens[i], found[i])
		}
		del := s.MDeleteEach(p, keys[:8], found[:8])
		out += fmt.Sprintf("D%d,%v;", del, found[:8])
	}
	st := s.Snapshot()
	out += fmt.Sprintf("len=%d gets=%d sets=%d hits=%d misses=%d evictions=%d",
		s.Len(topo.Proc(0)), st.Gets, st.Sets, st.Hits, st.Misses, st.Evictions)
	return out
}

// TestLockingEquivalence proves the Config.Locking seam reproduces
// every deprecated configuration shape exactly: for each of the five
// legacy fields, a store built through the old field and one built
// through the matching From* constructor observe identical results,
// statistics and lock acquisition counts on an identical op sequence.
func TestLockingEquivalence(t *testing.T) {
	type variant struct {
		name   string
		legacy func(topo *numa.Topology, count *acqCounter) Config
		seam   func(topo *numa.Topology, count *acqCounter) Config
	}
	variants := []variant{
		{
			name: "Lock",
			legacy: func(topo *numa.Topology, c *acqCounter) Config {
				return Config{Topo: topo, Lock: c.mutex(locks.NewPthread())}
			},
			seam: func(topo *numa.Topology, c *acqCounter) Config {
				return Config{Topo: topo, Locking: FromLock(c.mutex(locks.NewPthread()))}
			},
		},
		{
			name: "NewLock",
			legacy: func(topo *numa.Topology, c *acqCounter) Config {
				return Config{Topo: topo, Shards: 4, NewLock: func() locks.Mutex { return c.mutex(locks.NewMCS(topo)) }}
			},
			seam: func(topo *numa.Topology, c *acqCounter) Config {
				return Config{Topo: topo, Shards: 4, Locking: FromMutex(func() locks.Mutex { return c.mutex(locks.NewMCS(topo)) })}
			},
		},
		{
			name: "RWLock",
			legacy: func(topo *numa.Topology, c *acqCounter) Config {
				return Config{Topo: topo, RWLock: c.rw(locks.NewRWPerCluster(topo, locks.NewMCS(topo)))}
			},
			seam: func(topo *numa.Topology, c *acqCounter) Config {
				return Config{Topo: topo, Locking: FromRWLock(c.rw(locks.NewRWPerCluster(topo, locks.NewMCS(topo))))}
			},
		},
		{
			name: "NewRWLock",
			legacy: func(topo *numa.Topology, c *acqCounter) Config {
				return Config{Topo: topo, Shards: 4, NewRWLock: func() locks.RWMutex { return c.rw(locks.NewRWPerCluster(topo, locks.NewMCS(topo))) }}
			},
			seam: func(topo *numa.Topology, c *acqCounter) Config {
				return Config{Topo: topo, Shards: 4, Locking: FromRW(func() locks.RWMutex { return c.rw(locks.NewRWPerCluster(topo, locks.NewMCS(topo))) })}
			},
		},
		{
			name: "NewExec",
			legacy: func(topo *numa.Topology, c *acqCounter) Config {
				return Config{Topo: topo, Shards: 4, NewExec: func() locks.Executor {
					return locks.NewCombining(topo, c.mutex(locks.NewMCS(topo)))
				}}
			},
			seam: func(topo *numa.Topology, c *acqCounter) Config {
				return Config{Topo: topo, Shards: 4, Locking: FromExec(func() locks.Executor {
					return locks.NewCombining(topo, c.mutex(locks.NewMCS(topo)))
				})}
			},
		},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			topo := numa.New(2, 4)
			var cLegacy, cSeam acqCounter
			legacy := New(v.legacy(topo, &cLegacy))
			seam := New(v.seam(topo, &cSeam))
			gotLegacy := driveOps(t, topo, legacy)
			gotSeam := driveOps(t, topo, seam)
			if gotLegacy != gotSeam {
				t.Fatalf("behavior diverged:\nlegacy: %s\nseam:   %s", gotLegacy, gotSeam)
			}
			if a, b := cLegacy.total(), cSeam.total(); a != b {
				t.Fatalf("acquisition counts diverged: legacy %d, seam %d", a, b)
			}
			if a := cLegacy.total(); a == 0 {
				t.Fatalf("acquisition counter never fired — interposition broken")
			}
		})
	}
}

// acqCounter interposes locks.CountAcquisitions /
// locks.CountRWAcquisitions on every lock a config variant builds,
// summing acquisitions across all shards of a store.
type acqCounter struct {
	excl, shared atomic.Uint64
}

func (c *acqCounter) mutex(m locks.Mutex) locks.Mutex {
	return locks.CountAcquisitions(m, &c.excl)
}

func (c *acqCounter) rw(l locks.RWMutex) locks.RWMutex {
	return locks.CountRWAcquisitions(l, &c.excl, &c.shared)
}

func (c *acqCounter) total() uint64 {
	return c.excl.Load() + c.shared.Load()
}

// TestLockingPrecedence pins the documented resolution order: an
// explicit Locking supersedes every deprecated field.
func TestLockingPrecedence(t *testing.T) {
	topo := numa.New(2, 4)
	var viaSeam, viaLegacy atomic.Uint64
	s := New(Config{
		Topo:    topo,
		Locking: FromMutex(func() locks.Mutex { return locks.CountAcquisitions(locks.NewPthread(), &viaSeam) }),
		NewLock: func() locks.Mutex { return locks.CountAcquisitions(locks.NewPthread(), &viaLegacy) },
	})
	p := topo.Proc(0)
	s.Set(p, 1, []byte("x"))
	if viaSeam.Load() == 0 {
		t.Fatalf("Locking source not used")
	}
	if viaLegacy.Load() != 0 {
		t.Fatalf("deprecated NewLock used despite explicit Locking")
	}
}

// TestLockingSingleInstanceGuard pins the multi-shard validation: a
// pre-built single instance cannot back a sharded store.
func TestLockingSingleInstanceGuard(t *testing.T) {
	topo := numa.New(2, 4)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for FromLock with 4 shards")
		}
	}()
	New(Config{Topo: topo, Shards: 4, Locking: FromLock(locks.NewPthread())})
}

// TestFromRegistry pins name resolution: a combining entry resolves to
// an executor source, an unknown name reports suggestions.
func TestFromRegistry(t *testing.T) {
	topo := numa.New(2, 4)
	for _, name := range []string{"pthread", "mcs", "rw-c-bo-mcs", "comb-mcs", "c-bo-mcs"} {
		src, err := FromRegistry(topo, name)
		if err != nil {
			t.Fatalf("FromRegistry(%q): %v", name, err)
		}
		s := New(Config{Topo: topo, Shards: 2, Locking: src})
		p := topo.Proc(0)
		s.Set(p, 7, []byte("v"))
		dst := make([]byte, 8)
		if n, ok := s.Get(p, 7, dst); !ok || n != 1 || dst[0] != 'v' {
			t.Fatalf("FromRegistry(%q) store misbehaves: n=%d ok=%v", name, n, ok)
		}
	}
	if _, err := FromRegistry(topo, "msc"); err == nil {
		t.Fatalf("expected error for unknown lock name")
	}
}
