package kvstore

import (
	"fmt"

	"repro/internal/numa"
	"repro/internal/spin"
)

// Compact index memory (Config.IndexMemory: compact) re-homes a
// shard's entire metadata — items, hash chains, LRU links, free list —
// in chunked pointer-free slabs indexed by uint32. The pointer layout
// makes every item an individual GC allocation holding three *item
// links, so a 10M-key store leaves tens of millions of pointers for
// the collector to trace and GC mark cost scales with key count. Here
// the same structure is a handful of large allocations whose element
// type contains no pointers at all: the runtime allocates such spans
// noscan, so the collector's mark phase skips them entirely and scan
// cost becomes O(shards + chunks), independent of how many keys are
// live. Value bytes stay wherever ValueMemory puts them (arena blocks
// referenced by offset, or a lazily allocated heap side table — the
// one place a GC pointer per item survives, and only for values that
// actually live on the heap).
//
// Index-link invariants:
//
//   - nilIdx (0) is the nil index. Slab slot 0 is reserved at
//     construction — the allocation cursor starts at 1 — so 0 can never
//     name a live item, exactly as arena offset 0 can never name a
//     value block (the 8-byte header precedes every payload). No
//     separate validity flag is needed on any link.
//   - Slab indices are stable for the life of the shard: growth
//     appends a fixed-size chunk and never moves existing chunks, so
//     links never need rewriting. (A flat append-grown []citem would
//     invalidate interior pointers held across an append and copy the
//     whole table under the shard lock at each doubling; chunking
//     bounds the growth step to one chunk allocation.)
//   - Free slots are chained through hnext (the hash link, dead while
//     an item is free), head of list in compactShard.free — the same
//     recycling discipline as the pointer layout's free list, so the
//     two modes pop recycled slots in identical order.
type citem struct {
	key   uint64
	hnext uint32 // hash chain link; free-list link while recycled
	prev  uint32 // LRU toward MRU
	next  uint32 // LRU toward LRU victim
	owner int32  // last-touching cluster (item locality charge)
	off   uint32 // arena block payload offset; 0 = not arena-backed
	vlen  uint32 // stored value length in bytes
}

// Slab growth policy: fixed chunks of slabChunkSize items, appended on
// demand. 1<<13 items × 32 bytes = 256 KiB per chunk — big enough that
// a million-key shard is ~128 mostly-noscan allocations, small enough
// that the growth step inside a critical section is one modest
// allocation, not a multi-megabyte copy.
const (
	slabChunkShift = 13
	slabChunkSize  = 1 << slabChunkShift
	slabChunkMask  = slabChunkSize - 1
)

// nilIdx is the nil slab index; slot 0 is reserved so links, bucket
// heads and list heads can all use 0 as "none".
const nilIdx uint32 = 0

// compactShard is the pointer-free twin of the Shard's index state:
// buckets []uint32 instead of []*item, uint32 list heads instead of
// *item, and the items themselves in chunked slabs.
type compactShard struct {
	buckets []uint32
	head    uint32 // MRU
	tail    uint32 // LRU victim
	free    uint32 // recycled slots (chained via hnext)
	next    uint32 // allocation cursor: first never-used slot (starts at 1)
	chunks  [][]citem
	// heapVals is the heap-value side table, parallel to chunks:
	// heapVals[c][i] is the GC-heap buffer of slab index c<<shift|i, the
	// compact twin of the pointer item's value field for values that
	// live on the heap (all of them under ValueHeap; only spills under
	// ValueArena). Chunks are allocated lazily on first heap store, so
	// an all-arena shard keeps nil entries here and presents zero
	// per-item pointers to the collector.
	heapVals [][][]byte
}

func newCompactShard(buckets int) *compactShard {
	return &compactShard{
		buckets: make([]uint32, buckets),
		next:    1,
	}
}

// at returns the item at slab index i. Index stability (chunks never
// move) makes the returned pointer valid until the next GC-visible
// mutation of the slot, which only the shard's critical sections
// perform.
func (cs *compactShard) at(i uint32) *citem {
	return &cs.chunks[i>>slabChunkShift][i&slabChunkMask]
}

// alloc returns a free slab index, popping the free list or advancing
// the cursor (growing the slab by one chunk when the cursor crosses
// into it). The popped slot's hnext is reset so recycled slots never
// leak a stale free-list link into a hash chain.
func (cs *compactShard) alloc() uint32 {
	if cs.free != nilIdx {
		i := cs.free
		it := cs.at(i)
		cs.free = it.hnext
		it.hnext = nilIdx
		return i
	}
	i := cs.next
	if int(i>>slabChunkShift) == len(cs.chunks) {
		cs.chunks = append(cs.chunks, make([]citem, slabChunkSize))
		cs.heapVals = append(cs.heapVals, nil)
	}
	cs.next++
	return i
}

// heapVal returns slab index i's heap buffer, or nil if none.
func (cs *compactShard) heapVal(i uint32) []byte {
	hv := cs.heapVals[i>>slabChunkShift]
	if hv == nil {
		return nil
	}
	return hv[i&slabChunkMask]
}

// setHeapVal stores slab index i's heap buffer, allocating the side
// chunk on first use.
func (cs *compactShard) setHeapVal(i uint32, v []byte) {
	c := i >> slabChunkShift
	if cs.heapVals[c] == nil {
		cs.heapVals[c] = make([][]byte, slabChunkSize)
	}
	cs.heapVals[c][i&slabChunkMask] = v
}

// clearHeapVal drops slab index i's heap buffer — the compact twin of
// the pointer layout setting it.value = nil.
func (cs *compactShard) clearHeapVal(i uint32) {
	if hv := cs.heapVals[i>>slabChunkShift]; hv != nil {
		hv[i&slabChunkMask] = nil
	}
}

// cfind is find on the compact layout: walk the bucket's index chain.
func (s *Shard) cfind(key uint64) uint32 {
	cs := s.compact
	for i := cs.buckets[s.hash(key)]; i != nilIdx; i = cs.at(i).hnext {
		if cs.at(i).key == key {
			return i
		}
	}
	return nilIdx
}

// ctouchItem is touchItem on a slab-resident item. Must hold the shard
// lock.
func (s *Shard) ctouchItem(p *numa.Proc, it *citem) {
	c := int32(p.Cluster())
	if it.owner != c {
		it.owner = c
		spin.WaitNs(s.itemRemote)
	} else {
		spin.WaitNs(s.itemLocal)
	}
}

// clruFront moves slab index i to the MRU position. Must hold the
// shard lock.
func (s *Shard) clruFront(i uint32) {
	cs := s.compact
	if cs.head == i {
		return
	}
	it := cs.at(i)
	// unlink
	if it.prev != nilIdx {
		cs.at(it.prev).next = it.next
	}
	if it.next != nilIdx {
		cs.at(it.next).prev = it.prev
	}
	if cs.tail == i {
		cs.tail = it.prev
	}
	// push front
	it.prev = nilIdx
	it.next = cs.head
	if cs.head != nilIdx {
		cs.at(cs.head).prev = i
	}
	cs.head = i
	if cs.tail == nilIdx {
		cs.tail = i
	}
}

// cunlink removes slab index i from both the hash chain and the LRU
// list. Must hold the shard lock.
func (s *Shard) cunlink(i uint32) {
	cs := s.compact
	it := cs.at(i)
	b := s.hash(it.key)
	if cs.buckets[b] == i {
		cs.buckets[b] = it.hnext
	} else {
		for cur := cs.buckets[b]; cur != nilIdx; cur = cs.at(cur).hnext {
			if cs.at(cur).hnext == i {
				cs.at(cur).hnext = it.hnext
				break
			}
		}
	}
	if it.prev != nilIdx {
		cs.at(it.prev).next = it.next
	}
	if it.next != nilIdx {
		cs.at(it.next).prev = it.prev
	}
	if cs.head == i {
		cs.head = it.next
	}
	if cs.tail == i {
		cs.tail = it.prev
	}
	it.prev, it.next, it.hnext = nilIdx, nilIdx, nilIdx
}

// cvalue returns slab index i's current value bytes: a view of its
// arena block when arena-backed, its heap side-table buffer otherwise
// (nil for a zero-length value that never took a buffer — copy treats
// nil as empty, exactly like the pointer layout's empty slice).
func (s *Shard) cvalue(i uint32, it *citem) []byte {
	if it.off != 0 {
		return s.arena.Bytes(it.off, int(it.vlen))
	}
	return s.compact.heapVal(i)
}

// capplyGet is applyGet on the compact layout; the critical-section
// semantics (read-only hash walk, item touch, LRU bump, value copy)
// and cachesim charges match the pointer path exactly.
func (s *Shard) capplyGet(p *numa.Proc, key uint64, dst []byte) (int, bool) {
	i := s.cfind(key)
	if i == nilIdx {
		return 0, false
	}
	it := s.compact.at(i)
	s.ctouchItem(p, it)
	s.clruFront(i)
	return copy(dst, s.cvalue(i, it)), true
}

// capplySet is applySet on the compact layout: same structural steps,
// same cachesim charges, same eviction rule, slab indices in place of
// pointers.
func (s *Shard) capplySet(p *numa.Proc, key uint64, val []byte) {
	cs := s.compact
	slot := &s.slots[p.ID()]
	i := s.cfind(key)
	var it *citem
	if i == nilIdx {
		// Structural insert: writes the bucket chain and allocator.
		s.domain.Access(p, lineHash, 1)
		s.domain.Access(p, lineAlloc, 2)
		i = cs.alloc()
		it = cs.at(i)
		it.key = key
		b := s.hash(key)
		it.hnext = cs.buckets[b]
		cs.buckets[b] = i
		s.count++
	} else {
		it = cs.at(i)
		s.ctouchItem(p, it)
	}
	it.owner = int32(p.Cluster())
	s.csetValue(p, i, it, val)
	s.clruFront(i)
	s.domain.Access(p, lineLRU, 2)
	if s.count > s.capacity {
		v := cs.tail
		if v != nilIdx && v != i {
			s.cunlink(v)
			s.count--
			vit := cs.at(v)
			s.cclearValue(p, v, vit)
			vit.hnext = cs.free
			cs.free = v
			s.domain.Access(p, lineHash, 1)
			s.domain.Access(p, lineAlloc, 2)
			slot.evictions++
		}
	}
	s.domain.Access(p, lineStats, 1)
}

// capplyDelete is applyDelete on the compact layout.
func (s *Shard) capplyDelete(p *numa.Proc, key uint64) bool {
	cs := s.compact
	i := s.cfind(key)
	if i == nilIdx {
		return false
	}
	s.domain.Access(p, lineHash, 1)
	s.cunlink(i)
	s.count--
	it := cs.at(i)
	s.cclearValue(p, i, it)
	it.hnext = cs.free
	cs.free = i
	s.domain.Access(p, lineAlloc, 2)
	return true
}

// csetValue is setValue on the compact layout, preserving its exact
// allocation and arena behavior: heap mode grows the slot's side-table
// buffer only when too small; arena mode overwrites the current block
// in place when it fits, else defer-frees it and carves a new block,
// spilling to the heap side table when the arena is exhausted. The
// side-table entry is dropped at exactly the points the pointer layout
// sets it.value = nil (block release, successful carve), so the two
// modes' per-slot buffer reuse — and therefore their Go allocation
// counts — correspond one to one.
func (s *Shard) csetValue(p *numa.Proc, i uint32, it *citem, val []byte) {
	cs := s.compact
	if s.arena == nil {
		v := cs.heapVal(i)
		if cap(v) < len(val) {
			v = make([]byte, len(val))
		}
		v = v[:len(val)]
		copy(v, val)
		cs.setHeapVal(i, v)
		it.vlen = uint32(len(val))
		return
	}
	if it.off != 0 && s.arena.UsableSize(it.off) >= uint32(len(val)) {
		// In-place overwrite: the block's usable size already fits.
		it.vlen = uint32(len(val))
		copy(s.arena.Bytes(it.off, len(val)), val)
		return
	}
	if it.off != 0 {
		s.deferFree(p, it.off)
		it.off = 0
		cs.clearHeapVal(i)
	}
	if len(val) == 0 {
		// Zero-length values carry no bytes; no block, no buffer.
		it.vlen = 0
		return
	}
	s.domain.Access(p, lineAlloc, 2)
	if off, ok := s.arenaMalloc(p, len(val)); ok {
		it.off = off
		it.vlen = uint32(len(val))
		copy(s.arena.Bytes(off, len(val)), val)
		cs.clearHeapVal(i)
		return
	}
	// Graceful spill: the value lives in the heap side table until an
	// overwrite finds arena room again.
	s.slots[p.ID()].spills++
	v := cs.heapVal(i)
	if cap(v) < len(val) {
		v = make([]byte, len(val))
	}
	v = v[:len(val)]
	copy(v, val)
	cs.setHeapVal(i, v)
	it.vlen = uint32(len(val))
}

// cclearValue is clearValue on the compact layout: release the arena
// block (and drop the side-table buffer, as the pointer layout drops
// its value view), or keep a heap buffer for the recycled slot to
// reuse.
func (s *Shard) cclearValue(p *numa.Proc, i uint32, it *citem) {
	if s.arena != nil && it.off != 0 {
		s.deferFree(p, it.off)
		it.off = 0
		it.vlen = 0
		s.compact.clearHeapVal(i)
		return
	}
	it.vlen = 0
	if v := s.compact.heapVal(i); v != nil {
		s.compact.setHeapVal(i, v[:0])
	}
}

// ccheckLRU is checkLRU on the compact layout.
func (s *Shard) ccheckLRU() error {
	cs := s.compact
	seen := 0
	prev := nilIdx
	for i := cs.head; i != nilIdx; i = cs.at(i).next {
		if cs.at(i).prev != prev {
			return fmt.Errorf("kvstore: broken prev link at %d", cs.at(i).key)
		}
		prev = i
		seen++
		if seen > s.count {
			return fmt.Errorf("kvstore: LRU longer than count %d", s.count)
		}
	}
	if cs.tail != prev {
		return fmt.Errorf("kvstore: tail mismatch")
	}
	if seen != s.count {
		return fmt.Errorf("kvstore: LRU has %d items, count %d", seen, s.count)
	}
	return nil
}

// compactCheck verifies the slab's accounting invariants on top of the
// LRU check: every ever-allocated slot is either live (reachable from
// the LRU list) or recycled (reachable from the free list), never
// both, never neither — live + free == slab slots in use — and no
// index chain (LRU, free list, hash buckets) cycles. Quiescent callers
// only (tests, end-of-run checks).
func (s *Shard) compactCheck() error {
	cs := s.compact
	if cs == nil {
		return nil
	}
	used := int(cs.next) - 1 // slot 0 is the reserved sentinel
	if err := s.ccheckLRU(); err != nil {
		return err
	}
	live := s.count
	nfree := 0
	for i := cs.free; i != nilIdx; i = cs.at(i).hnext {
		nfree++
		if nfree > used {
			return fmt.Errorf("kvstore: free list longer than slab (%d slots) — cycle", used)
		}
	}
	if live+nfree != used {
		return fmt.Errorf("kvstore: %d live + %d free != %d slab slots in use", live, nfree, used)
	}
	chained := 0
	for b := range cs.buckets {
		n := 0
		for i := cs.buckets[b]; i != nilIdx; i = cs.at(i).hnext {
			n++
			if n > used {
				return fmt.Errorf("kvstore: hash chain %d longer than slab (%d slots) — cycle", b, used)
			}
		}
		chained += n
	}
	if chained != live {
		return fmt.Errorf("kvstore: hash chains hold %d items, count %d", chained, live)
	}
	return nil
}
