// Package kvstore is the memcached stand-in for the paper's Table 1
// experiment, grown into a sharded, NUMA-affine cache.
//
// Memcached keeps all key-value pairs in one hash table with LRU
// eviction, and mediates every get and set through a single "cache
// lock" — the contention bottleneck the paper targets by interposing
// different lock implementations under the pthread API. A Shard
// reproduces that structure in-process: a chained hash table, an
// intrusive LRU list, and a single pluggable lock. Hot shared
// metadata — the LRU head, hash-table metadata, statistics and the
// item allocator — is charged through a per-shard cachesim domain, so
// lock algorithms that batch critical sections by cluster keep those
// lines local exactly as they would on the paper's machine.
// Expiry/TTL and the network protocol are omitted (DESIGN.md §2): the
// experiment exercises only the lock around table operations.
//
// A Store fronts N such shards and routes each operation by key hash,
// which is the structural fix the single cache lock cannot buy: no
// matter how good the lock, one lock instance caps throughput at one
// critical section at a time. Sharding multiplies that capacity by N,
// and the placement policy decides which threads meet at which lock:
//
//   - HashMod spreads keys over all shards uniformly; every shard sees
//     traffic from every cluster.
//   - ClusterAffine gives each cluster its own group of home shards
//     and routes a requester's keys within its cluster's group, so
//     each shard's lock is only ever contended by one cluster — the
//     longest possible same-cluster runs for a cohort lock, at the
//     cost of per-cluster (non-coherent) views of the keyspace, as in
//     a per-NUMA-node cache partition.
//
// A single-shard Store routes every key to its one shard and behaves
// exactly like the pre-sharding store.
//
// Beyond one-operation-per-acquisition, the store batches: the
// MGet/MSet/MDelete APIs group keys by shard and run each shard's
// group in critical sections of up to Config.MaxBatch operations, so
// N same-shard operations cost ceil(N/MaxBatch) acquisitions instead
// of N. Orthogonally, Config.NewExec replaces each shard's direct
// locking with a delegated-execution seam (locks.Executor): every
// critical section is posted as a closure to a combining executor,
// whose combiner runs same-cluster batches — across requesting procs
// — under a single acquisition of the underlying lock. That is the
// flat-combining amortization the paper credits FC-MCS with (§4.1.3),
// applied to the store's own critical sections rather than to queue
// hand-offs. Configurations without NewExec keep the direct locking
// paths untouched, so Table 1 numbers are unaffected.
//
// The cache lock itself is reader-writer shaped (locks.RWMutex): Sets
// and Deletes take exclusive mode, and when the configured lock's
// shared mode genuinely admits concurrent readers (an rw-* registry
// lock), Gets run in shared mode — the read-mostly scaling lever the
// cohort papers' reader-writer follow-up adds on top of cohorting. The
// LRU bump a hit normally pays moves under a bounded
// touch-every-Nth-hit policy (Config.TouchEvery) so the common-case
// Get mutates nothing. Exclusive locks slot in through
// locks.RWFromMutex and keep the original every-hit-bumps read path
// unchanged. The two amortization machines compose on the read side:
// under a genuine reader-writer lock MGet answers each chunk of up to
// MaxBatch lookups under ONE shared acquisition (LRU touches deferred
// per the TouchEvery policy), so batched read-mostly traffic pays
// ceil(N/MaxBatch) RLocks that other clusters' readers don't even
// serialize against.
//
// Read-side combining closes the remaining read-path gap: when the
// executor behind the delegated-execution seam is a locks.RWExecutor
// whose shared mode is genuine (a comb-rw-* registry entry, or
// locks.NewRWCombining over a native RW lock), the shard posts each
// Get and each MGet chunk as a read closure through ExecShared. A
// per-cluster reader-combiner then folds concurrent same-cluster
// chunks into ONE shared acquisition of the underlying lock, dropping
// the read path below the ceil(N/MaxBatch)-RLocks floor whenever
// same-cluster readers overlap — and an idle-path bypass runs a lone
// closure under its own RLock so uncontended reads pay exactly what
// the direct shared-chunk path pays. Deferred LRU touches ride the
// exclusive combiner as before.
package kvstore

import (
	"fmt"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/cachesim"
	"repro/internal/locks"
	"repro/internal/numa"
)

// Placement selects how shards are homed on clusters and how keys are
// routed to shards.
type Placement int

const (
	// HashMod routes key k to shard hash(k) mod N regardless of the
	// requesting cluster. All clusters contend on all shard locks.
	HashMod Placement = iota
	// ClusterAffine homes shard i on cluster i mod C and routes a
	// requester's keys among the shards homed on its own cluster, so
	// every shard lock sees single-cluster traffic. Clusters without a
	// home shard (N < C) fall back to HashMod routing.
	ClusterAffine
)

// String names the placement for tool output.
func (p Placement) String() string {
	switch p {
	case ClusterAffine:
		return "affine"
	default:
		return "hashmod"
	}
}

// ParsePlacement maps a flag value to a Placement.
func ParsePlacement(s string) (Placement, error) {
	switch s {
	case "hashmod":
		return HashMod, nil
	case "affine":
		return ClusterAffine, nil
	}
	return 0, fmt.Errorf("kvstore: unknown placement %q (want hashmod or affine)", s)
}

// ValueMemory selects where item value bytes live.
type ValueMemory int

const (
	// ValueHeap stores each value as a GC-managed []byte — the
	// pre-arena behavior, byte for byte. A store of N items is N
	// individually scanned heap objects, placed wherever the Go
	// allocator chooses.
	ValueHeap ValueMemory = iota
	// ValueArena backs each shard's value bytes with its own unguarded
	// alloc.Allocator arena: one big GC-opaque block per shard, carved
	// and recycled under the shard's existing single-writer critical
	// sections. Under ClusterAffine placement each cluster's home-shard
	// group — and therefore its arenas and the values they hold — is
	// only ever touched by that cluster, extending the paper's
	// block-recycling locality from lock metadata to the data plane.
	// Overwrite, eviction and delete explicitly free the old block;
	// frees are deferred and flushed in batches so reclamation is
	// amortized like LRU touches. An exhausted arena spills gracefully
	// to the GC heap and counts the spill (Stats.Spills).
	ValueArena
)

// String names the value-memory mode for tool output.
func (v ValueMemory) String() string {
	if v == ValueArena {
		return "arena"
	}
	return "heap"
}

// ParseValueMemory maps a flag value to a ValueMemory.
func ParseValueMemory(s string) (ValueMemory, error) {
	switch s {
	case "heap":
		return ValueHeap, nil
	case "arena":
		return ValueArena, nil
	}
	return 0, fmt.Errorf("kvstore: unknown value memory %q (want heap or arena)", s)
}

// IndexMemory selects where shard index metadata — the items
// themselves and every intra-shard link (hash chains, LRU prev/next,
// free list) — lives. It is the metadata twin of the ValueMemory seam:
// ValueMemory moves value bytes off the GC heap; IndexMemory moves the
// structure that finds them.
type IndexMemory int

const (
	// IndexPointer keeps items as individual GC allocations linked by
	// Go pointers and the hash table as []*item — the original layout,
	// byte for byte. GC mark work scales with the live item count: a
	// 10M-key store is 10M scanned objects holding 30M+ pointers.
	IndexPointer IndexMemory = iota
	// IndexCompact re-homes each shard's items in chunked pointer-free
	// slabs ([]citem, 32 bytes each) and turns every link into a uint32
	// slab index; the hash table becomes []uint32. The element type
	// contains no pointers, so the runtime allocates the slabs noscan
	// and the collector skips the whole index: GC scan cost becomes
	// O(shards + chunks) instead of O(keys). Values follow ValueMemory
	// as before (arena blocks by offset, or a lazily allocated heap
	// side table for heap-resident values). Index 0 is the reserved nil
	// slot, mirroring arena offset 0. See slab.go.
	IndexCompact
)

// String names the index-memory mode for tool output.
func (m IndexMemory) String() string {
	if m == IndexCompact {
		return "compact"
	}
	return "pointer"
}

// ParseIndexMemory maps a flag value to an IndexMemory.
func ParseIndexMemory(s string) (IndexMemory, error) {
	switch s {
	case "pointer":
		return IndexPointer, nil
	case "compact":
		return IndexCompact, nil
	}
	return 0, fmt.Errorf("kvstore: unknown index memory %q (want pointer or compact)", s)
}

// Config parameterizes a Store.
type Config struct {
	// Topo sizes per-proc statistics and the metadata cache domains.
	Topo *numa.Topology
	// Locking is the single seam supplying each shard's exclusion
	// domain; build one with FromMutex, FromRW, FromExec, FromLock,
	// FromRWLock or FromRegistry. When set it supersedes the five
	// deprecated fields below, which remain as aliases: each maps to
	// the From* constructor of the same shape, resolved in the
	// historical precedence order NewExec > NewRWLock > NewLock >
	// RWLock > Lock.
	Locking LockSource
	// Lock is the cache lock guarding a single-shard store (the
	// paper's interposition point). Multi-shard stores need one lock
	// per shard and must use NewLock instead. Exclusive locks are
	// adapted to the store's reader-writer interface via
	// locks.RWFromMutex, which keeps the pre-RW Get path byte for byte.
	//
	// Deprecated: set Locking to FromLock(m) instead.
	Lock locks.Mutex
	// NewLock builds one lock instance per shard; registry entries
	// provide such factories via Entry.MutexFactory. When set it takes
	// precedence over Lock.
	//
	// Deprecated: set Locking to FromMutex(f) instead.
	NewLock func() locks.Mutex
	// RWLock is a reader-writer cache lock for a single-shard store.
	// When its shared mode genuinely admits concurrent readers
	// (locks.SharesReads), Gets run in shared mode with the bounded
	// LRU-touch policy (see TouchEvery); Sets and Deletes always take
	// exclusive mode. Takes precedence over Lock.
	//
	// Deprecated: set Locking to FromRWLock(l) instead.
	RWLock locks.RWMutex
	// NewRWLock builds one reader-writer lock per shard; registry
	// entries provide such factories via Entry.RWFactory. Takes
	// precedence over NewLock, RWLock and Lock.
	//
	// Deprecated: set Locking to FromRW(f) instead.
	NewRWLock func() locks.RWMutex
	// NewExec builds one combining executor per shard (registry comb-*
	// entries provide such factories via Entry.ExecFactory). Highest
	// precedence of all lock fields: every shard operation — Gets
	// included — then runs as a closure delegated to the executor,
	// whose combiner executes same-cluster batches under a single
	// acquisition of its underlying lock. Configurations without
	// NewExec keep the direct locking paths untouched.
	//
	// Deprecated: set Locking to FromExec(f) instead.
	NewExec func() locks.Executor
	// MaxBatch bounds how many operations of a batch API call
	// (MGet/MSet/MDelete) run inside one critical section, capping
	// lock hold times: a shard group of N operations takes
	// ceil(N/MaxBatch) acquisitions instead of N. Default 64.
	// Single-operation calls are unaffected.
	MaxBatch int
	// TouchEvery is the shared read path's LRU sampling stride: each
	// proc refreshes an item's LRU position (under a brief exclusive
	// acquire) only on its TouchEvery-th hit, keeping the common-case
	// Get free of any store mutation. 1 bumps on every hit (maximum
	// recency fidelity, maximum writer traffic); larger values trade
	// recency precision for read-side scalability. Default 8. Ignored
	// on exclusive read paths, which bump on every hit as before.
	TouchEvery int
	// Shards is the shard count. Default 1.
	Shards int
	// Placement picks the shard homing/routing policy.
	Placement Placement
	// Buckets is the total hash table size, split across shards and
	// rounded up to a per-shard power of two. Default 1<<15.
	Buckets int
	// Capacity is the total maximum item count before LRU eviction,
	// split evenly across shards. Default 1<<16.
	Capacity int
	// Cache sets the metadata-line latencies (cachesim semantics).
	Cache cachesim.Config
	// ItemNs are the latencies charged for touching an item whose last
	// toucher was the same / another cluster. Defaults 25/100 ns.
	ItemLocalNs, ItemRemoteNs int64
	// ValueMemory selects where value bytes live: the GC heap
	// (default) or per-shard arenas (ValueArena).
	ValueMemory ValueMemory
	// IndexMemory selects where index metadata lives: pointer-linked
	// GC allocations (default) or pointer-free slabs (IndexCompact).
	IndexMemory IndexMemory
	// ArenaBytes is the total arena capacity under ValueArena, split
	// evenly across shards like Capacity (with a small per-shard
	// floor). Default 64 MiB. Ignored under ValueHeap.
	ArenaBytes int
}

func (c *Config) setDefaults() error {
	if c.Topo == nil {
		return fmt.Errorf("kvstore: nil topology")
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Locking != nil {
		if c.Shards > 1 && !c.Locking.multiShard() {
			return fmt.Errorf("kvstore: %d shards need a factory-backed LockSource, not %s (a single pre-built lock)", c.Shards, c.Locking.describe())
		}
	} else if c.NewExec == nil && c.NewRWLock == nil && c.NewLock == nil {
		if c.RWLock == nil && c.Lock == nil {
			return fmt.Errorf("kvstore: nil lock")
		}
		if c.Shards > 1 {
			return fmt.Errorf("kvstore: %d shards need a NewLock/NewRWLock/NewExec factory, not a single pre-built lock", c.Shards)
		}
	}
	if c.TouchEvery <= 0 {
		c.TouchEvery = DefaultTouchEvery
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.Buckets <= 0 {
		c.Buckets = 1 << 15
	}
	if c.Capacity <= 0 {
		c.Capacity = 1 << 16
	}
	if c.Cache == (cachesim.Config{}) {
		c.Cache = cachesim.DefaultConfig()
	}
	if c.ItemLocalNs == 0 && c.ItemRemoteNs == 0 {
		def := cachesim.DefaultConfig()
		c.ItemLocalNs, c.ItemRemoteNs = def.LocalNs, def.RemoteNs
	}
	if c.ValueMemory == ValueArena && c.ArenaBytes <= 0 {
		c.ArenaBytes = DefaultArenaBytes
	}
	return nil
}

// DefaultArenaBytes is the default total arena capacity of a
// ValueArena store, split across shards.
const DefaultArenaBytes = 64 << 20

// minArenaBytes is the per-shard arena floor; alloc.New rejects
// anything smaller.
const minArenaBytes = 1 << 12

// DefaultTouchEvery is the default LRU sampling stride of the shared
// read path: one in eight hits per proc refreshes the item's recency.
const DefaultTouchEvery = 8

// DefaultMaxBatch is the default bound on operations per batch-API
// critical section — long enough to amortize the acquisition, short
// enough that a batch never monopolizes a shard lock.
const DefaultMaxBatch = 64

// Stats is an aggregated view of store activity.
type Stats struct {
	Gets, Sets, Hits, Misses, Evictions uint64
	// MetaMisses counts simulated coherence misses on store metadata.
	MetaMisses uint64
	// Spills counts values that fell back to the GC heap because the
	// shard's arena was exhausted (ValueArena only; always 0 under
	// ValueHeap).
	Spills uint64
}

// Add accumulates o into s; harnesses use it to aggregate shard and
// store snapshots.
func (s *Stats) Add(o Stats) {
	s.Gets += o.Gets
	s.Sets += o.Sets
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.MetaMisses += o.MetaMisses
	s.Spills += o.Spills
}

// Store is the sharded memcached-like key-value cache.
type Store struct {
	topo      *numa.Topology
	placement Placement
	valueMem  ValueMemory
	indexMem  IndexMemory
	shards    []*Shard
	homes     []int   // shard index -> home cluster
	groups    [][]int // cluster -> indices of shards homed there
	// identity caches 0..n-1 for single-shard batch routing, so the
	// steady-state batched pipeline allocates nothing per call. The
	// published slice is immutable (contents are fixed by position);
	// racing growers just waste one allocation.
	identity atomic.Pointer[[]int]
}

// New builds a store; it panics on invalid configuration (programmer
// error in harness setup).
func New(cfg Config) *Store {
	if err := cfg.setDefaults(); err != nil {
		panic(err)
	}
	// Resolve the locking seam into one per-shard factory. An explicit
	// Config.Locking wins; otherwise the deprecated five-field ladder
	// folds into the equivalent LockSource (legacyLocking preserves the
	// historical precedence). An executor source supersedes direct
	// locking (the executor owns the shard's exclusion domain);
	// exclusive lock sources pass through RWFromMutex so their shards
	// keep the exclusive read path.
	src := cfg.Locking
	if src == nil {
		src = legacyLocking(&cfg)
	}
	newExec, newLock := src.builders()
	perBuckets := ceilDiv(cfg.Buckets, cfg.Shards)
	// Round up to a power of two for mask indexing.
	n := 1
	for n < perBuckets {
		n <<= 1
	}
	perBuckets = n
	perCapacity := ceilDiv(cfg.Capacity, cfg.Shards)
	perArena := 0
	if cfg.ValueMemory == ValueArena {
		perArena = ceilDiv(cfg.ArenaBytes, cfg.Shards)
		if perArena < minArenaBytes {
			perArena = minArenaBytes
		}
	}

	s := &Store{
		topo:      cfg.Topo,
		placement: cfg.Placement,
		valueMem:  cfg.ValueMemory,
		indexMem:  cfg.IndexMemory,
		shards:    make([]*Shard, cfg.Shards),
		homes:     make([]int, cfg.Shards),
		groups:    make([][]int, cfg.Topo.Clusters()),
	}
	for i := range s.shards {
		sc := shardConfig{
			topo:         cfg.Topo,
			maxBatch:     cfg.MaxBatch,
			touchEvery:   uint64(cfg.TouchEvery),
			buckets:      perBuckets,
			capacity:     perCapacity,
			cache:        cfg.Cache,
			itemLocal:    cfg.ItemLocalNs,
			itemRemote:   cfg.ItemRemoteNs,
			arenaBytes:   perArena,
			compactIndex: cfg.IndexMemory == IndexCompact,
		}
		if newExec != nil {
			sc.exec = newExec()
		} else {
			sc.lock = newLock()
		}
		s.shards[i] = newShard(sc)
		home := i % cfg.Topo.Clusters()
		s.homes[i] = home
		s.groups[home] = append(s.groups[home], i)
	}
	return s
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// shardMix decorrelates shard routing from the shards' internal bucket
// hash (64-bit murmur3 finalizer).
func shardMix(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xFF51AFD7ED558CCD
	key ^= key >> 33
	return key
}

// shardIndex routes (requester, key) to a shard index under the
// store's placement.
func (s *Store) shardIndex(p *numa.Proc, key uint64) int {
	if len(s.shards) == 1 {
		return 0
	}
	if s.placement == ClusterAffine {
		if g := s.groups[p.Cluster()]; len(g) > 0 {
			return g[shardMix(key)%uint64(len(g))]
		}
	}
	return int(shardMix(key) % uint64(len(s.shards)))
}

// shardFor returns the shard that (requester, key) routes to.
func (s *Store) shardFor(p *numa.Proc, key uint64) *Shard {
	return s.shards[s.shardIndex(p, key)]
}

// Get looks up key in the requester's shard, copying the value into
// dst (truncating if dst is short). It returns the copied length and
// whether the key was found.
func (s *Store) Get(p *numa.Proc, key uint64, dst []byte) (int, bool) {
	return s.shardFor(p, key).Get(p, key, dst)
}

// Set inserts or updates key with a copy of val in the requester's
// shard, evicting that shard's LRU victim if it is over capacity.
func (s *Store) Set(p *numa.Proc, key uint64, val []byte) {
	s.shardFor(p, key).Set(p, key, val)
}

// Delete removes key from the requester's shard, returning whether it
// was present.
func (s *Store) Delete(p *numa.Proc, key uint64) bool {
	return s.shardFor(p, key).Delete(p, key)
}

// identityIdx returns a shared read-only index slice [0,1,...,n-1].
func (s *Store) identityIdx(n int) []int {
	if p := s.identity.Load(); p != nil && len(*p) >= n {
		return (*p)[:n]
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	s.identity.Store(&idx)
	return idx
}

// groupByShard partitions the indices of keys by target shard under
// the store's placement, preserving caller order within each group.
// Every index lands in exactly one group — the routing-completeness
// the batch APIs rely on. Single-shard stores route through the
// cached identity index (no per-call allocation); the multi-shard
// grouping allocates per call, a cost paid equally by every lock
// configuration.
func (s *Store) groupByShard(p *numa.Proc, keys []uint64) [][]int {
	groups := make([][]int, len(s.shards))
	for i, k := range keys {
		si := s.shardIndex(p, k)
		groups[si] = append(groups[si], i)
	}
	return groups
}

// MGet looks up every key, copying values into the matching dsts
// buffer (dsts may be nil to probe without copying) and reporting
// per-key copy lengths and presence in lens and found. Keys are
// grouped by shard and each shard's group runs in critical sections
// of at most Config.MaxBatch lookups — one lock acquisition (or one
// combined closure, under a comb-* executor) answers a whole chunk,
// instead of one per key as repeated Get calls would pay. Results are
// written at the same index as the key; every key is answered exactly
// once. Per-key semantics match Get under the same lock: on an
// exclusive lock a hit pays the item touch and LRU bump inside the
// critical section; under a genuine reader-writer lock each chunk runs
// in SHARED mode — one RLock answers the whole chunk, concurrent with
// other readers' chunks — and LRU recency follows the TouchEvery
// sampling policy with the sampled bumps deferred to one exclusive
// section per shard group.
func (s *Store) MGet(p *numa.Proc, keys []uint64, dsts [][]byte, lens []int, found []bool) {
	if dsts != nil && len(dsts) != len(keys) {
		panic(fmt.Sprintf("kvstore: MGet with %d dsts for %d keys", len(dsts), len(keys)))
	}
	if len(lens) != len(keys) || len(found) != len(keys) {
		panic(fmt.Sprintf("kvstore: MGet with %d lens / %d found for %d keys", len(lens), len(found), len(keys)))
	}
	if len(s.shards) == 1 {
		s.shards[0].mget(p, keys, dsts, lens, found, s.identityIdx(len(keys)))
		return
	}
	for si, idx := range s.groupByShard(p, keys) {
		if len(idx) > 0 {
			s.shards[si].mget(p, keys, dsts, lens, found, idx)
		}
	}
}

// MSet inserts or updates every key with a copy of the matching vals
// entry, grouping by shard exactly as MGet does: each shard's group
// runs in critical sections of at most Config.MaxBatch sets, so N
// same-shard keys cost ceil(N/MaxBatch) acquisitions instead of N.
// Caller order is preserved within a shard, so duplicate keys resolve
// last-wins like sequential Sets; keys on different shards apply in
// shard order, indistinguishable to readers since cross-shard Sets
// were never atomic to begin with.
func (s *Store) MSet(p *numa.Proc, keys []uint64, vals [][]byte) {
	if len(vals) != len(keys) {
		panic(fmt.Sprintf("kvstore: MSet with %d vals for %d keys", len(vals), len(keys)))
	}
	if len(s.shards) == 1 {
		s.shards[0].mset(p, keys, vals, s.identityIdx(len(keys)))
		return
	}
	for si, idx := range s.groupByShard(p, keys) {
		if len(idx) > 0 {
			s.shards[si].mset(p, keys, vals, idx)
		}
	}
}

// MDelete removes every key, batched like MSet, and reports how many
// were present.
func (s *Store) MDelete(p *numa.Proc, keys []uint64) int {
	return s.mdelete(p, keys, nil)
}

// MDeleteEach removes every key like MDelete and additionally reports
// per-key presence in found (written at the same index as the key) —
// the answer a wire protocol needs to say DELETED or NOT_FOUND per
// operation while still paying ceil(N/MaxBatch) acquisitions.
func (s *Store) MDeleteEach(p *numa.Proc, keys []uint64, found []bool) int {
	if len(found) != len(keys) {
		panic(fmt.Sprintf("kvstore: MDeleteEach with %d found for %d keys", len(found), len(keys)))
	}
	return s.mdelete(p, keys, found)
}

func (s *Store) mdelete(p *numa.Proc, keys []uint64, found []bool) int {
	if len(s.shards) == 1 {
		return s.shards[0].mdelete(p, keys, s.identityIdx(len(keys)), found)
	}
	n := 0
	for si, idx := range s.groupByShard(p, keys) {
		if len(idx) > 0 {
			n += s.shards[si].mdelete(p, keys, idx, found)
		}
	}
	return n
}

// Len reports the item count summed over all shards (takes each shard
// lock in turn).
func (s *Store) Len(p *numa.Proc) int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len(p)
	}
	return n
}

// Capacity reports the total item capacity summed over shards.
func (s *Store) Capacity() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Capacity()
	}
	return n
}

// NumShards reports the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// MaxBatch reports the per-critical-section operation bound the batch
// APIs honor (Config.MaxBatch after defaulting). Front-ends align
// their flush chunks to it so a flush of N ops costs exactly
// ceil(N/MaxBatch) acquisitions.
func (s *Store) MaxBatch() int { return s.shards[0].maxBatch }

// Placement reports the routing policy.
func (s *Store) Placement() Placement { return s.placement }

// ValueMemory reports where value bytes live.
func (s *Store) ValueMemory() ValueMemory { return s.valueMem }

// IndexMemory reports where index metadata lives.
func (s *Store) IndexMemory() IndexMemory { return s.indexMem }

// ShardOccupancy reports shard i's executor in-flight request estimate
// and whether the shard tracks one at all — true only for shards
// guarded by an adaptive combining executor (comb-a-*), whose
// occupancy counters (locks.EstimateOccupancy) are safe to sample
// concurrently with a running load. Harnesses poll it mid-run to see
// which shards are hot.
func (s *Store) ShardOccupancy(i int) (int, bool) {
	if x := s.shards[i].exec; x != nil {
		return locks.EstimateOccupancy(x)
	}
	return 0, false
}

// FlushArenas drains every shard's deferred free list, each flush one
// critical section of its shard. A no-op under ValueHeap. Harnesses
// call it before snapshotting arena statistics so pending frees do not
// read as live blocks.
func (s *Store) FlushArenas(p *numa.Proc) {
	for _, sh := range s.shards {
		sh.flushArena(p)
	}
}

// ArenaSnapshot aggregates the allocator statistics of every shard
// arena; ok is false under ValueHeap. Call while workers are
// quiescent.
func (s *Store) ArenaSnapshot() (st alloc.Stats, ok bool) {
	for _, sh := range s.shards {
		if sh.arena == nil {
			continue
		}
		ok = true
		a := sh.arena.Snapshot()
		st.Mallocs += a.Mallocs
		st.Frees += a.Frees
		st.BinAllocs += a.BinAllocs
		st.TreeAllocs += a.TreeAllocs
		st.Carves += a.Carves
		st.Splits += a.Splits
		st.RemoteTouches += a.RemoteTouches
		st.FreeTreeBlocks += a.FreeTreeBlocks
		if a.WildernessOffset > st.WildernessOffset {
			st.WildernessOffset = a.WildernessOffset
		}
	}
	return st, ok
}

// ArenaCheck flushes every shard's deferred frees, then verifies each
// arena's heap invariants (alloc.Fsck) and that its live block count
// matches the shard's arena-backed item count — i.e. no leaked and no
// double-freed value blocks. A no-op under ValueHeap. Quiescent
// callers only (tests, end-of-run checks).
func (s *Store) ArenaCheck(p *numa.Proc) error {
	for i, sh := range s.shards {
		if err := sh.arenaCheck(p); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// ShardHome reports the home cluster of shard i.
func (s *Store) ShardHome(i int) int { return s.homes[i] }

// IsLocal reports whether key routes p to a shard homed on p's own
// cluster — the affinity predicate load generators bias key choice
// with. Single-shard stores are degenerately local.
func (s *Store) IsLocal(p *numa.Proc, key uint64) bool {
	if len(s.shards) == 1 {
		return true
	}
	return s.homes[s.shardIndex(p, key)] == p.Cluster()
}

// HasLocalShard reports whether any shard is homed on p's cluster —
// i.e. whether IsLocal can ever be true for p. Load generators check
// it once per worker before biasing key choice, since with fewer
// shards than clusters some clusters have no home shard at all.
func (s *Store) HasLocalShard(p *numa.Proc) bool {
	return len(s.shards) == 1 || len(s.groups[p.Cluster()]) > 0
}

// Snapshot aggregates statistics across all shards; call while workers
// are quiescent.
func (s *Store) Snapshot() Stats {
	var st Stats
	for _, sh := range s.shards {
		st.Add(sh.Snapshot())
	}
	return st
}

// ShardSnapshot reports the statistics of shard i alone.
func (s *Store) ShardSnapshot(i int) Stats {
	return s.shards[i].Snapshot()
}

// checkLRU validates every shard's list integrity; tests use it.
func (s *Store) checkLRU() error {
	for i, sh := range s.shards {
		if err := sh.checkLRU(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// CompactCheck validates every compact shard's slab accounting (live
// items + free slots == slab slots in use, no index cycles); a no-op
// under IndexPointer. Quiescent callers only (tests, end-of-run
// checks).
func (s *Store) CompactCheck() error {
	for i, sh := range s.shards {
		if err := sh.compactCheck(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}
