package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/locks"
	"repro/internal/numa"
)

// newArenaStore builds a small ValueArena store for lifecycle tests.
func newArenaStore(topo *numa.Topology, shards, capacity, arenaBytes int) *Store {
	cfg := Config{
		Topo:        topo,
		Buckets:     64 * shards,
		Capacity:    capacity,
		Shards:      shards,
		Cache:       cachesim.Config{LocalNs: 1, RemoteNs: 1},
		ItemLocalNs: 1, ItemRemoteNs: 1,
		ValueMemory: ValueArena,
		ArenaBytes:  arenaBytes,
	}
	if shards > 1 {
		cfg.NewLock = func() locks.Mutex { return locks.NewPthread() }
	} else {
		cfg.Lock = locks.NewPthread()
	}
	return New(cfg)
}

func TestArenaRoundTrip(t *testing.T) {
	topo := numa.New(4, 16)
	s := newArenaStore(topo, 1, 100, 1<<20)
	p := topo.Proc(0)
	val := []byte("arena-backed value")
	s.Set(p, 42, val)
	dst := make([]byte, 64)
	n, ok := s.Get(p, 42, dst)
	if !ok || !bytes.Equal(dst[:n], val) {
		t.Fatalf("Get = %q,%v want %q", dst[:n], ok, val)
	}
	if st, ok := s.ArenaSnapshot(); !ok || st.Mallocs != 1 {
		t.Fatalf("arena snapshot = %+v,%v want 1 malloc", st, ok)
	}
	if err := s.ArenaCheck(p); err != nil {
		t.Fatal(err)
	}
}

// TestArenaChurnProperty is the randomized lifecycle property test:
// a long populate/overwrite/evict/delete churn with varying value
// sizes must end with every shard arena Fsck-clean and zero leaked or
// double-freed blocks, and every surviving value byte-correct.
func TestArenaChurnProperty(t *testing.T) {
	topo := numa.New(4, 16)
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			// Capacity well below the key range so eviction churns, and
			// a small arena so reclamation (and the deferred free list)
			// is genuinely exercised.
			s := newArenaStore(topo, shards, 200, 256<<10)
			p := topo.Proc(0)
			rng := rand.New(rand.NewSource(1))
			ref := map[uint64][]byte{} // may hold evicted keys; values checked only on hit
			for i := 0; i < 20_000; i++ {
				key := uint64(rng.Intn(400))
				switch rng.Intn(10) {
				case 0, 1: // delete
					s.Delete(p, key)
					delete(ref, key)
				case 2, 3, 4: // get, verifying bytes on hit
					dst := make([]byte, 600)
					n, ok := s.Get(p, key, dst)
					if ok {
						want, tracked := ref[key]
						if !tracked {
							t.Fatalf("hit on key %d the model never wrote", key)
						}
						if !bytes.Equal(dst[:n], want) {
							t.Fatalf("key %d = %q, want %q", key, dst[:n], want)
						}
					}
				default: // set with a size that varies by an order of magnitude
					val := make([]byte, 1+rng.Intn(500))
					for j := range val {
						val[j] = byte(rng.Int())
					}
					s.Set(p, key, val)
					ref[key] = val
				}
			}
			if err := s.ArenaCheck(p); err != nil {
				t.Fatal(err)
			}
			if err := s.checkLRU(); err != nil {
				t.Fatal(err)
			}
			// Flush + Fsck passed; additionally prove the allocator's
			// own books balance: blocks out == blocks back + live.
			st, ok := s.ArenaSnapshot()
			if !ok {
				t.Fatal("no arena snapshot from an arena store")
			}
			live := 0
			for _, sh := range s.shards {
				live += sh.arena.LiveBlocks()
			}
			if int(st.Mallocs-st.Frees) != live {
				t.Fatalf("mallocs %d - frees %d != %d live blocks", st.Mallocs, st.Frees, live)
			}
		})
	}
}

// TestArenaHeapEquivalence drives byte-identical operation streams
// through a heap store and an arena store and requires identical
// observable behavior: every Get's bytes, every operation's outcome,
// and the full statistics (arena spills aside). Heap mode's half of
// the pair is exactly the pre-arena store, so this doubles as the
// proof that ValueHeap configs are unchanged.
func TestArenaHeapEquivalence(t *testing.T) {
	topo := numa.New(4, 16)
	heap, _ := newTestStore(150)
	arena := newArenaStore(topo, 1, 150, 4<<20)
	p := topo.Proc(0)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10_000; i++ {
		key := uint64(rng.Intn(300))
		switch rng.Intn(8) {
		case 0:
			hOK := heap.Delete(p, key)
			aOK := arena.Delete(p, key)
			if hOK != aOK {
				t.Fatalf("op %d: Delete(%d) = %v (heap) vs %v (arena)", i, key, hOK, aOK)
			}
		case 1, 2:
			hDst, aDst := make([]byte, 600), make([]byte, 600)
			hN, hOK := heap.Get(p, key, hDst)
			aN, aOK := arena.Get(p, key, aDst)
			if hOK != aOK || hN != aN || !bytes.Equal(hDst[:hN], aDst[:aN]) {
				t.Fatalf("op %d: Get(%d) diverged: %q,%v vs %q,%v", i, key, hDst[:hN], hOK, aDst[:aN], aOK)
			}
		default:
			val := make([]byte, rng.Intn(512))
			for j := range val {
				val[j] = byte(rng.Int())
			}
			heap.Set(p, key, val)
			arena.Set(p, key, val)
		}
	}
	if heap.Len(p) != arena.Len(p) {
		t.Fatalf("Len diverged: %d vs %d", heap.Len(p), arena.Len(p))
	}
	hSt, aSt := heap.Snapshot(), arena.Snapshot()
	hSt.MetaMisses, aSt.MetaMisses = 0, 0 // cachesim noise differs; not a behavior
	aSt.Spills = 0                        // arena-only counter
	if hSt != aSt {
		t.Fatalf("stats diverged:\nheap  %+v\narena %+v", hSt, aSt)
	}
	if err := arena.ArenaCheck(p); err != nil {
		t.Fatal(err)
	}
}

// TestArenaSpill exhausts a deliberately tiny arena and checks the
// graceful heap fallback: operations keep succeeding, spills are
// counted, and the arena still fscks clean.
func TestArenaSpill(t *testing.T) {
	topo := numa.New(4, 16)
	s := newArenaStore(topo, 1, 1000, 1<<12) // 4 KiB: a few values fit
	p := topo.Proc(0)
	val := make([]byte, 256)
	for k := uint64(0); k < 100; k++ {
		s.Set(p, k, val)
	}
	dst := make([]byte, 256)
	for k := uint64(0); k < 100; k++ {
		if n, ok := s.Get(p, k, dst); !ok || n != len(val) {
			t.Fatalf("key %d lost after spill: %d,%v", k, n, ok)
		}
	}
	if st := s.Snapshot(); st.Spills == 0 {
		t.Fatal("no spills counted on a 4 KiB arena holding 100 256-byte values")
	}
	if err := s.ArenaCheck(p); err != nil {
		t.Fatal(err)
	}
}

// TestArenaEmptyValues covers the zero-length edge: a fresh empty
// value takes no arena block, presents as found with length 0, and a
// shrink-to-empty keeps its block in place (an overwrite will reuse
// it) until delete returns it to the arena.
func TestArenaEmptyValues(t *testing.T) {
	topo := numa.New(4, 16)
	s := newArenaStore(topo, 1, 100, 1<<20)
	p := topo.Proc(0)
	s.Set(p, 1, []byte{})
	if n, ok := s.Get(p, 1, make([]byte, 8)); !ok || n != 0 {
		t.Fatalf("empty value Get = %d,%v want 0,true", n, ok)
	}
	if st, _ := s.ArenaSnapshot(); st.Mallocs != 0 {
		t.Fatalf("empty value took an arena block: %d mallocs", st.Mallocs)
	}
	s.Set(p, 1, []byte("grown"))
	s.Set(p, 1, []byte{}) // shrink-to-empty reuses the block in place
	if n, ok := s.Get(p, 1, make([]byte, 8)); !ok || n != 0 {
		t.Fatalf("shrunk value Get = %d,%v want 0,true", n, ok)
	}
	s.Delete(p, 1) // delete returns the retained block
	if err := s.ArenaCheck(p); err != nil {
		t.Fatal(err)
	}
	st, _ := s.ArenaSnapshot()
	if st.Mallocs != 1 || st.Frees != 1 {
		t.Fatalf("arena = %d mallocs / %d frees, want 1/1", st.Mallocs, st.Frees)
	}
}

// TestArenaRace hammers the arena path under the race detector:
// concurrent gets, sets and deletes across procs and shards, on both
// the direct-lock and executor seams, plus a shared-reads rw config.
// The arena inherits the shard's exclusion, so any missing guard shows
// up as a data race on arena bytes or the deferred free list.
func TestArenaRace(t *testing.T) {
	topo := numa.New(2, 8)
	build := map[string]func() *Store{
		"lock": func() *Store {
			return New(Config{
				Topo: topo, NewLock: func() locks.Mutex { return locks.NewPthread() },
				Shards: 2, Buckets: 128, Capacity: 300,
				Cache:       cachesim.Config{LocalNs: 1, RemoteNs: 1},
				ItemLocalNs: 1, ItemRemoteNs: 1,
				ValueMemory: ValueArena, ArenaBytes: 1 << 20,
			})
		},
		"rw": func() *Store {
			return New(Config{
				Topo: topo, NewRWLock: func() locks.RWMutex { return locks.NewRWPerCluster(topo, locks.NewPthread()) },
				Shards: 2, Buckets: 128, Capacity: 300,
				Cache:       cachesim.Config{LocalNs: 1, RemoteNs: 1},
				ItemLocalNs: 1, ItemRemoteNs: 1,
				ValueMemory: ValueArena, ArenaBytes: 1 << 20,
			})
		},
		"exec": func() *Store {
			return New(Config{
				Topo: topo, NewExec: func() locks.Executor { return locks.NewCombining(topo, locks.NewPthread()) },
				Shards: 2, Buckets: 128, Capacity: 300,
				Cache:       cachesim.Config{LocalNs: 1, RemoteNs: 1},
				ItemLocalNs: 1, ItemRemoteNs: 1,
				ValueMemory: ValueArena, ArenaBytes: 1 << 20,
			})
		},
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			s := mk()
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					p := topo.Proc(id)
					rng := rand.New(rand.NewSource(int64(id)))
					val := make([]byte, 512)
					dst := make([]byte, 512)
					for i := 0; i < 3000; i++ {
						key := uint64(rng.Intn(500))
						switch rng.Intn(8) {
						case 0:
							s.Delete(p, key)
						case 1, 2, 3:
							s.Get(p, key, dst)
						default:
							s.Set(p, key, val[:1+rng.Intn(512)])
						}
					}
				}(w)
			}
			wg.Wait()
			p := topo.Proc(0)
			if err := s.ArenaCheck(p); err != nil {
				t.Fatal(err)
			}
			if err := s.checkLRU(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
