package kvstore

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/cachesim"
	"repro/internal/locks"
	"repro/internal/numa"
)

func newTestStore(capacity int) (*Store, *numa.Topology) {
	topo := numa.New(4, 16)
	s := New(Config{
		Topo: topo, Lock: locks.NewPthread(),
		Buckets: 64, Capacity: capacity,
		Cache:       cachesim.Config{LocalNs: 1, RemoteNs: 1},
		ItemLocalNs: 1, ItemRemoteNs: 1,
	})
	return s, topo
}

func TestSetGetRoundTrip(t *testing.T) {
	s, topo := newTestStore(100)
	p := topo.Proc(0)
	val := []byte("hello cohort")
	s.Set(p, 42, val)
	dst := make([]byte, 64)
	n, ok := s.Get(p, 42, dst)
	if !ok {
		t.Fatal("key missing after Set")
	}
	if !bytes.Equal(dst[:n], val) {
		t.Fatalf("Get = %q, want %q", dst[:n], val)
	}
}

func TestGetMiss(t *testing.T) {
	s, topo := newTestStore(100)
	p := topo.Proc(0)
	if _, ok := s.Get(p, 7, make([]byte, 8)); ok {
		t.Fatal("hit on empty store")
	}
	st := s.Snapshot()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSetOverwrites(t *testing.T) {
	s, topo := newTestStore(100)
	p := topo.Proc(0)
	s.Set(p, 1, []byte("aaaa"))
	s.Set(p, 1, []byte("bb"))
	dst := make([]byte, 16)
	n, ok := s.Get(p, 1, dst)
	if !ok || string(dst[:n]) != "bb" {
		t.Fatalf("Get = %q,%v want bb", dst[:n], ok)
	}
	if s.Len(p) != 1 {
		t.Fatalf("Len = %d, want 1", s.Len(p))
	}
}

func TestValueGrowth(t *testing.T) {
	s, topo := newTestStore(100)
	p := topo.Proc(0)
	s.Set(p, 1, []byte("x"))
	long := bytes.Repeat([]byte("y"), 300)
	s.Set(p, 1, long)
	dst := make([]byte, 400)
	n, ok := s.Get(p, 1, dst)
	if !ok || !bytes.Equal(dst[:n], long) {
		t.Fatal("grown value mismatch")
	}
}

func TestTruncatingGet(t *testing.T) {
	s, topo := newTestStore(100)
	p := topo.Proc(0)
	s.Set(p, 1, []byte("0123456789"))
	dst := make([]byte, 4)
	n, ok := s.Get(p, 1, dst)
	if !ok || n != 4 || string(dst) != "0123" {
		t.Fatalf("truncating Get = %q (%d)", dst, n)
	}
}

func TestDelete(t *testing.T) {
	s, topo := newTestStore(100)
	p := topo.Proc(0)
	s.Set(p, 5, []byte("v"))
	if !s.Delete(p, 5) {
		t.Fatal("delete of present key failed")
	}
	if s.Delete(p, 5) {
		t.Fatal("delete of absent key succeeded")
	}
	if _, ok := s.Get(p, 5, make([]byte, 4)); ok {
		t.Fatal("deleted key still readable")
	}
	if s.Len(p) != 0 {
		t.Fatal("Len after delete != 0")
	}
	if err := s.checkLRU(); err != nil {
		t.Fatal(err)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	s, topo := newTestStore(3)
	p := topo.Proc(0)
	s.Set(p, 1, []byte("a"))
	s.Set(p, 2, []byte("b"))
	s.Set(p, 3, []byte("c"))
	// Touch 1 so 2 becomes the LRU victim.
	if _, ok := s.Get(p, 1, make([]byte, 4)); !ok {
		t.Fatal("warm get failed")
	}
	s.Set(p, 4, []byte("d")) // evicts 2
	if _, ok := s.Get(p, 2, make([]byte, 4)); ok {
		t.Fatal("LRU victim 2 still present")
	}
	for _, k := range []uint64{1, 3, 4} {
		if _, ok := s.Get(p, k, make([]byte, 4)); !ok {
			t.Fatalf("key %d wrongly evicted", k)
		}
	}
	st := s.Snapshot()
	if st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
	if err := s.checkLRU(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictedItemsRecycled(t *testing.T) {
	s, topo := newTestStore(2)
	p := topo.Proc(0)
	for k := uint64(0); k < 50; k++ {
		s.Set(p, k, []byte("v"))
	}
	if got := s.Len(p); got != 2 {
		t.Fatalf("Len = %d, want capacity 2", got)
	}
	if s.shards[0].free == nil {
		t.Fatal("evicted items not pooled")
	}
	if err := s.checkLRU(); err != nil {
		t.Fatal(err)
	}
}

func TestHashCollisionChains(t *testing.T) {
	// With 64 buckets, 1000 keys guarantee chains; all must resolve.
	s, topo := newTestStore(2000)
	p := topo.Proc(0)
	for k := uint64(0); k < 1000; k++ {
		s.Set(p, k, []byte{byte(k)})
	}
	dst := make([]byte, 4)
	for k := uint64(0); k < 1000; k++ {
		n, ok := s.Get(p, k, dst)
		if !ok || n != 1 || dst[0] != byte(k) {
			t.Fatalf("key %d: got %v %q", k, ok, dst[:n])
		}
	}
}

// Property: the store agrees with a map reference under random
// single-threaded op sequences, including evictions disabled by a
// large capacity.
func TestMatchesMapModel(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Val  uint8
	}
	f := func(ops []op) bool {
		s, topo := newTestStore(1 << 16)
		p := topo.Proc(0)
		model := map[uint64][]byte{}
		dst := make([]byte, 8)
		for _, o := range ops {
			key := uint64(o.Key % 32)
			switch o.Kind % 3 {
			case 0:
				v := []byte{o.Val}
				s.Set(p, key, v)
				model[key] = v
			case 1:
				n, ok := s.Get(p, key, dst)
				want, wok := model[key]
				if ok != wok {
					return false
				}
				if ok && !bytes.Equal(dst[:n], want) {
					return false
				}
			case 2:
				if s.Delete(p, key) != (model[key] != nil) {
					return false
				}
				delete(model, key)
			}
		}
		return s.checkLRU() == nil && s.Len(p) == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	topo := numa.New(4, 16)
	s := New(Config{
		Topo: topo, Lock: locks.NewMCS(topo),
		Buckets: 256, Capacity: 512,
		Cache:       cachesim.Config{LocalNs: 1, RemoteNs: 1},
		ItemLocalNs: 1, ItemRemoteNs: 1,
	})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := topo.Proc(id)
			dst := make([]byte, 16)
			val := []byte(fmt.Sprintf("worker-%02d", id))
			for k := 0; k < 800; k++ {
				key := uint64(k % 300)
				switch k % 3 {
				case 0:
					s.Set(p, key, val)
				case 1:
					s.Get(p, key, dst)
				case 2:
					if k%30 == 2 {
						s.Delete(p, key)
					} else {
						s.Get(p, key, dst)
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if err := s.checkLRU(); err != nil {
		t.Fatal(err)
	}
	st := s.Snapshot()
	if st.Gets == 0 || st.Sets == 0 {
		t.Fatalf("stats look wrong: %+v", st)
	}
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	topo := numa.New(2, 2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil topology accepted")
			}
		}()
		New(Config{Lock: locks.NewPthread()})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil lock accepted")
			}
		}()
		New(Config{Topo: topo})
	}()
	s := New(Config{Topo: topo, Lock: locks.NewPthread(), Buckets: 100})
	if got := len(s.shards[0].buckets); got != 128 {
		t.Errorf("buckets rounded to %d, want 128", got)
	}
}
