package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/locks"
	"repro/internal/numa"
)

// newIndexStore builds a small store with explicit index- and
// value-memory modes for layout tests.
func newIndexStore(topo *numa.Topology, shards, capacity int, vm ValueMemory, im IndexMemory) *Store {
	cfg := Config{
		Topo:        topo,
		Buckets:     64 * shards,
		Capacity:    capacity,
		Shards:      shards,
		Cache:       cachesim.Config{LocalNs: 1, RemoteNs: 1},
		ItemLocalNs: 1, ItemRemoteNs: 1,
		ValueMemory: vm,
		IndexMemory: im,
	}
	if vm == ValueArena {
		cfg.ArenaBytes = (256 << 10) * shards
	}
	if shards > 1 {
		cfg.NewLock = func() locks.Mutex { return locks.NewPthread() }
	} else {
		cfg.Lock = locks.NewPthread()
	}
	return New(cfg)
}

// TestCompactPointerEquivalence drives byte-identical operation
// streams — singles and batched MGet/MSet/MDelete — through a pointer
// store and a compact store and requires identical observable behavior
// down to the full statistics, MetaMisses included: the compact twins
// issue the same cachesim charges, recycle slots in the same LIFO
// order and evict the same victims, so every counter must match
// exactly. The pointer half is the pre-compact store unchanged, which
// makes this the proof that IndexPointer configs are byte for byte
// the old code and IndexCompact is observationally the same store.
func TestCompactPointerEquivalence(t *testing.T) {
	topo := numa.New(4, 16)
	for _, vm := range []ValueMemory{ValueHeap, ValueArena} {
		t.Run(vm.String(), func(t *testing.T) {
			ptr := newIndexStore(topo, 1, 150, vm, IndexPointer)
			cmp := newIndexStore(topo, 1, 150, vm, IndexCompact)
			p := topo.Proc(0)
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 10_000; i++ {
				key := uint64(rng.Intn(300))
				switch rng.Intn(10) {
				case 0:
					pOK := ptr.Delete(p, key)
					cOK := cmp.Delete(p, key)
					if pOK != cOK {
						t.Fatalf("op %d: Delete(%d) = %v (pointer) vs %v (compact)", i, key, pOK, cOK)
					}
				case 1, 2:
					pDst, cDst := make([]byte, 600), make([]byte, 600)
					pN, pOK := ptr.Get(p, key, pDst)
					cN, cOK := cmp.Get(p, key, cDst)
					if pOK != cOK || pN != cN || !bytes.Equal(pDst[:pN], cDst[:cN]) {
						t.Fatalf("op %d: Get(%d) diverged: %q,%v vs %q,%v", i, key, pDst[:pN], pOK, cDst[:cN], cOK)
					}
				case 3: // batched reads cover the group paths
					keys := []uint64{key, key + 1, key + 2, key}
					pLens, cLens := make([]int, 4), make([]int, 4)
					pFound, cFound := make([]bool, 4), make([]bool, 4)
					pDsts := [][]byte{make([]byte, 600), make([]byte, 600), make([]byte, 600), make([]byte, 600)}
					cDsts := [][]byte{make([]byte, 600), make([]byte, 600), make([]byte, 600), make([]byte, 600)}
					ptr.MGet(p, keys, pDsts, pLens, pFound)
					cmp.MGet(p, keys, cDsts, cLens, cFound)
					for j := range keys {
						if pFound[j] != cFound[j] || pLens[j] != cLens[j] ||
							!bytes.Equal(pDsts[j][:pLens[j]], cDsts[j][:cLens[j]]) {
							t.Fatalf("op %d: MGet[%d](%d) diverged", i, j, keys[j])
						}
					}
				case 4: // batched writes, duplicate key resolves last-wins
					v1 := make([]byte, rng.Intn(256))
					v2 := make([]byte, rng.Intn(256))
					for j := range v1 {
						v1[j] = byte(rng.Int())
					}
					for j := range v2 {
						v2[j] = byte(rng.Int())
					}
					keys := []uint64{key, key + 7, key}
					vals := [][]byte{v1, v2, v2}
					ptr.MSet(p, keys, vals)
					cmp.MSet(p, keys, vals)
				case 5:
					keys := []uint64{key, key + 3}
					if pN, cN := ptr.MDelete(p, keys), cmp.MDelete(p, keys); pN != cN {
						t.Fatalf("op %d: MDelete = %d vs %d", i, pN, cN)
					}
				default:
					val := make([]byte, rng.Intn(512))
					for j := range val {
						val[j] = byte(rng.Int())
					}
					ptr.Set(p, key, val)
					cmp.Set(p, key, val)
				}
			}
			if ptr.Len(p) != cmp.Len(p) {
				t.Fatalf("Len diverged: %d vs %d", ptr.Len(p), cmp.Len(p))
			}
			pSt, cSt := ptr.Snapshot(), cmp.Snapshot()
			if pSt != cSt {
				t.Fatalf("stats diverged:\npointer %+v\ncompact %+v", pSt, cSt)
			}
			if err := cmp.CompactCheck(); err != nil {
				t.Fatal(err)
			}
			if err := cmp.ArenaCheck(p); err != nil {
				t.Fatal(err)
			}
			if err := ptr.ArenaCheck(p); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCompactSharedReadEquivalence repeats the equivalence check under
// a genuine reader-writer lock, so the compact dispatch in the
// shared-mode paths (readValue under RLock, the TouchEvery deferred
// bump, mgetShared chunks) is proven against the pointer layout too.
func TestCompactSharedReadEquivalence(t *testing.T) {
	topo := numa.New(4, 16)
	mk := func(im IndexMemory) *Store {
		return New(Config{
			Topo:      topo,
			NewRWLock: func() locks.RWMutex { return locks.NewRWPerCluster(topo, locks.NewPthread()) },
			Shards:    1, Buckets: 64, Capacity: 150,
			Cache:       cachesim.Config{LocalNs: 1, RemoteNs: 1},
			ItemLocalNs: 1, ItemRemoteNs: 1,
			IndexMemory: im,
		})
	}
	ptr, cmp := mk(IndexPointer), mk(IndexCompact)
	p := topo.Proc(0)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 10_000; i++ {
		key := uint64(rng.Intn(300))
		switch rng.Intn(8) {
		case 0:
			if pOK, cOK := ptr.Delete(p, key), cmp.Delete(p, key); pOK != cOK {
				t.Fatalf("op %d: Delete(%d) diverged", i, key)
			}
		case 1, 2, 3, 4: // read-heavy: the shared path is the one under test
			pDst, cDst := make([]byte, 600), make([]byte, 600)
			pN, pOK := ptr.Get(p, key, pDst)
			cN, cOK := cmp.Get(p, key, cDst)
			if pOK != cOK || pN != cN || !bytes.Equal(pDst[:pN], cDst[:cN]) {
				t.Fatalf("op %d: Get(%d) diverged", i, key)
			}
		case 5:
			keys := []uint64{key, key + 1, key + 2}
			pLens, cLens := make([]int, 3), make([]int, 3)
			pFound, cFound := make([]bool, 3), make([]bool, 3)
			ptr.MGet(p, keys, nil, pLens, pFound)
			cmp.MGet(p, keys, nil, cLens, cFound)
			for j := range keys {
				if pFound[j] != cFound[j] || pLens[j] != cLens[j] {
					t.Fatalf("op %d: MGet[%d] diverged", i, j)
				}
			}
		default:
			val := make([]byte, rng.Intn(256))
			for j := range val {
				val[j] = byte(rng.Int())
			}
			ptr.Set(p, key, val)
			cmp.Set(p, key, val)
		}
	}
	pSt, cSt := ptr.Snapshot(), cmp.Snapshot()
	if pSt != cSt {
		t.Fatalf("stats diverged:\npointer %+v\ncompact %+v", pSt, cSt)
	}
	if err := cmp.CompactCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestCompactProperty is the randomized slab-lifecycle property test:
// 50k mixed operations (set, overwrite, get, delete, batched
// variants, with capacity pressure forcing evictions) against a
// reference map, in compact mode, across shard counts and both
// value-memory modes, ending with the slab accounting check — every
// ever-allocated slot is live or free (live + free == slab slots in
// use), and no LRU, free-list or hash chain cycles.
func TestCompactProperty(t *testing.T) {
	topo := numa.New(4, 16)
	for _, shards := range []int{1, 4} {
		for _, vm := range []ValueMemory{ValueHeap, ValueArena} {
			t.Run(fmt.Sprintf("shards=%d/%s", shards, vm), func(t *testing.T) {
				s := newIndexStore(topo, shards, 200, vm, IndexCompact)
				p := topo.Proc(0)
				rng := rand.New(rand.NewSource(int64(shards)*100 + int64(vm)))
				ref := map[uint64][]byte{} // may hold evicted keys; values checked only on hit
				for i := 0; i < 50_000; i++ {
					key := uint64(rng.Intn(400))
					switch rng.Intn(12) {
					case 0, 1: // delete
						s.Delete(p, key)
						delete(ref, key)
					case 2: // batched delete
						keys := []uint64{key, key + 5, key + 9}
						s.MDelete(p, keys)
						for _, k := range keys {
							delete(ref, k)
						}
					case 3, 4, 5: // get, verifying bytes on hit
						dst := make([]byte, 600)
						n, ok := s.Get(p, key, dst)
						if ok {
							want, tracked := ref[key]
							if !tracked {
								t.Fatalf("hit on key %d the model never wrote", key)
							}
							if !bytes.Equal(dst[:n], want) {
								t.Fatalf("key %d = %q, want %q", key, dst[:n], want)
							}
						}
					case 6: // batched get
						keys := []uint64{key, key + 2, key + 4}
						dsts := [][]byte{make([]byte, 600), make([]byte, 600), make([]byte, 600)}
						lens := make([]int, 3)
						found := make([]bool, 3)
						s.MGet(p, keys, dsts, lens, found)
						for j, k := range keys {
							if found[j] {
								want, tracked := ref[k]
								if !tracked {
									t.Fatalf("MGet hit on key %d the model never wrote", k)
								}
								if !bytes.Equal(dsts[j][:lens[j]], want) {
									t.Fatalf("MGet key %d mismatch", k)
								}
							}
						}
					case 7: // batched set
						keys := make([]uint64, 3)
						vals := make([][]byte, 3)
						for j := range keys {
							keys[j] = uint64(rng.Intn(400))
							vals[j] = make([]byte, rng.Intn(300))
							for b := range vals[j] {
								vals[j][b] = byte(rng.Int())
							}
						}
						s.MSet(p, keys, vals)
						for j, k := range keys {
							ref[k] = vals[j]
						}
					default: // set with sizes spanning empty to ~500B
						val := make([]byte, rng.Intn(500))
						for j := range val {
							val[j] = byte(rng.Int())
						}
						s.Set(p, key, val)
						ref[key] = val
					}
				}
				if err := s.CompactCheck(); err != nil {
					t.Fatal(err)
				}
				if err := s.checkLRU(); err != nil {
					t.Fatal(err)
				}
				if err := s.ArenaCheck(p); err != nil {
					t.Fatal(err)
				}
				// The reference map over-approximates (evictions), so
				// the store can never hold more than the model.
				if n := s.Len(p); n > len(ref) {
					t.Fatalf("store holds %d keys, model only %d", n, len(ref))
				}
			})
		}
	}
}

// TestCompactSlabGrowth pushes a shard past several chunk boundaries
// (slabChunkSize items per chunk) and verifies chunked growth keeps
// every index link valid: all keys remain retrievable and the slab
// accounting balances.
func TestCompactSlabGrowth(t *testing.T) {
	topo := numa.New(4, 16)
	const n = 2*slabChunkSize + 100
	s := newIndexStore(topo, 1, n+10, ValueHeap, IndexCompact)
	p := topo.Proc(0)
	val := make([]byte, 8)
	for k := uint64(0); k < n; k++ {
		val[0] = byte(k)
		s.Set(p, k, val)
	}
	if got := s.Len(p); got != n {
		t.Fatalf("Len = %d want %d", got, n)
	}
	if chunks := len(s.shards[0].compact.chunks); chunks != 3 {
		t.Fatalf("slab has %d chunks, want 3 for %d items", chunks, n)
	}
	dst := make([]byte, 8)
	for k := uint64(0); k < n; k += 997 { // sample across all chunks
		if m, ok := s.Get(p, k, dst); !ok || m != len(val) || dst[0] != byte(k) {
			t.Fatalf("key %d lost after growth: %d,%v,%x", k, m, ok, dst[0])
		}
	}
	if err := s.CompactCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestCompactRace hammers the compact layout under the race detector
// across the three exclusion seams (direct lock, reader-writer with
// shared Gets, combining executor), both value-memory modes riding
// along. Slab growth, free-list recycling and the heap-value side
// table all mutate under the shard's exclusion; any missed guard
// surfaces as a race on a chunk or the side table.
func TestCompactRace(t *testing.T) {
	topo := numa.New(2, 8)
	base := func(vm ValueMemory) Config {
		cfg := Config{
			Topo:   topo,
			Shards: 2, Buckets: 128, Capacity: 300,
			Cache:       cachesim.Config{LocalNs: 1, RemoteNs: 1},
			ItemLocalNs: 1, ItemRemoteNs: 1,
			ValueMemory: vm,
			IndexMemory: IndexCompact,
		}
		if vm == ValueArena {
			cfg.ArenaBytes = 1 << 20
		}
		return cfg
	}
	build := map[string]func() *Store{
		"lock": func() *Store {
			cfg := base(ValueHeap)
			cfg.NewLock = func() locks.Mutex { return locks.NewPthread() }
			return New(cfg)
		},
		"rw": func() *Store {
			cfg := base(ValueHeap)
			cfg.NewRWLock = func() locks.RWMutex { return locks.NewRWPerCluster(topo, locks.NewPthread()) }
			return New(cfg)
		},
		"exec": func() *Store {
			cfg := base(ValueArena)
			cfg.NewExec = func() locks.Executor { return locks.NewCombining(topo, locks.NewPthread()) }
			return New(cfg)
		},
		"rw-arena": func() *Store {
			cfg := base(ValueArena)
			cfg.NewRWLock = func() locks.RWMutex { return locks.NewRWPerCluster(topo, locks.NewPthread()) }
			return New(cfg)
		},
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			s := mk()
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					p := topo.Proc(id)
					rng := rand.New(rand.NewSource(int64(id)))
					val := make([]byte, 512)
					dst := make([]byte, 512)
					for i := 0; i < 3000; i++ {
						key := uint64(rng.Intn(500))
						switch rng.Intn(8) {
						case 0:
							s.Delete(p, key)
						case 1, 2, 3:
							s.Get(p, key, dst)
						default:
							s.Set(p, key, val[:1+rng.Intn(512)])
						}
					}
				}(w)
			}
			wg.Wait()
			p := topo.Proc(0)
			if err := s.CompactCheck(); err != nil {
				t.Fatal(err)
			}
			if err := s.ArenaCheck(p); err != nil {
				t.Fatal(err)
			}
		})
	}
}
