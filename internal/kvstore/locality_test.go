package kvstore

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/locks"
	"repro/internal/numa"
)

// White-box tests of the locality accounting that drives Table 1.

func TestItemOwnershipMigrates(t *testing.T) {
	topo := numa.New(4, 8)
	s := New(Config{
		Topo: topo, Lock: locks.NewPthread(),
		Buckets: 16, Capacity: 100,
		Cache:       cachesim.Config{LocalNs: 1, RemoteNs: 1},
		ItemLocalNs: 1, ItemRemoteNs: 1,
	})
	p0 := topo.Proc(0) // cluster 0
	p1 := topo.Proc(1) // cluster 1
	s.Set(p0, 1, []byte("v"))
	it := s.shards[0].find(1)
	if it.owner != 0 {
		t.Fatalf("owner = %d after cluster-0 set, want 0", it.owner)
	}
	dst := make([]byte, 4)
	s.Get(p1, 1, dst)
	if it.owner != 1 {
		t.Fatalf("owner = %d after cluster-1 get, want 1", it.owner)
	}
}

func TestGetDoesNotChargeMetadataLines(t *testing.T) {
	// Gets only dirty the item's own line; the store's metadata domain
	// must stay untouched (the Table 1a "all spin locks alike" model).
	topo := numa.New(4, 8)
	s := New(Config{
		Topo: topo, Lock: locks.NewPthread(),
		Buckets: 16, Capacity: 100,
		Cache:       cachesim.Config{LocalNs: 1, RemoteNs: 1},
		ItemLocalNs: 1, ItemRemoteNs: 1,
	})
	p := topo.Proc(0)
	s.Set(p, 1, []byte("v"))
	base := s.shards[0].domain.Snapshot().Accesses
	dst := make([]byte, 4)
	for i := 0; i < 10; i++ {
		s.Get(p, 1, dst)
	}
	if got := s.shards[0].domain.Snapshot().Accesses; got != base {
		t.Fatalf("gets touched %d metadata lines, want 0", got-base)
	}
}

func TestSetChargesBatchableLines(t *testing.T) {
	topo := numa.New(4, 8)
	s := New(Config{
		Topo: topo, Lock: locks.NewPthread(),
		Buckets: 16, Capacity: 100,
		Cache:       cachesim.Config{LocalNs: 1, RemoteNs: 1},
		ItemLocalNs: 1, ItemRemoteNs: 1,
	})
	p := topo.Proc(0)
	s.Set(p, 1, []byte("v")) // insert: hash + alloc + LRU + stats
	base := s.shards[0].domain.Snapshot().Accesses
	s.Set(p, 1, []byte("w")) // update: LRU + stats only
	if got := s.shards[0].domain.Snapshot().Accesses - base; got != 2 {
		t.Fatalf("update set charged %d metadata accesses, want 2 (LRU + stats)", got)
	}
}

func TestMetadataMissesTrackClusterAlternation(t *testing.T) {
	// Alternating set clusters migrate the LRU/stats lines every op;
	// same-cluster runs keep them local — the Table 1c mechanism.
	topo := numa.New(4, 8)
	mk := func() *Store {
		return New(Config{
			Topo: topo, Lock: locks.NewPthread(),
			Buckets: 16, Capacity: 100,
			Cache:       cachesim.Config{LocalNs: 1, RemoteNs: 1},
			ItemLocalNs: 1, ItemRemoteNs: 1,
		})
	}
	val := []byte("v")

	alternating := mk()
	alternating.Set(topo.Proc(0), 1, val)
	base := alternating.Snapshot().MetaMisses
	for i := 0; i < 20; i++ {
		alternating.Set(topo.Proc(i%2), 1, val) // clusters 0,1,0,1...
	}
	altMisses := alternating.Snapshot().MetaMisses - base

	batched := mk()
	batched.Set(topo.Proc(0), 1, val)
	base = batched.Snapshot().MetaMisses
	for i := 0; i < 20; i++ {
		batched.Set(topo.Proc(0), 1, val) // all cluster 0
	}
	batchMisses := batched.Snapshot().MetaMisses - base

	if batchMisses != 0 {
		t.Fatalf("same-cluster sets missed %d times, want 0", batchMisses)
	}
	if altMisses < 20 {
		t.Fatalf("alternating sets missed only %d times, want >= 20", altMisses)
	}
}
