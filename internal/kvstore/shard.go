package kvstore

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/cachesim"
	"repro/internal/locks"
	"repro/internal/numa"
	"repro/internal/spin"
)

// Metadata line indices in each shard's cachesim domain.
const (
	lineLRU   = 0 // LRU list head/tail, touched by every operation
	lineHash  = 1 // hash table metadata
	lineStats = 2 // global statistics counters
	lineAlloc = 3 // item allocator free list
	numLines  = 4
)

// item is one cache entry: hash chain link, intrusive LRU links, the
// last-touching cluster (for the locality charge), and the value.
//
// Under ValueArena, value views an explicitly managed block of the
// shard's arena (len = the stored value, cap = the block's usable
// size) and off is that block's payload offset; off == 0 means the
// value lives on the GC heap — the only state ValueHeap items ever
// have, and the state arena items spill back to when their arena is
// exhausted. Arena offsets are always >= the 8-byte block header, so
// 0 is never a valid block and needs no separate flag.
type item struct {
	key   uint64
	hnext *item
	prev  *item
	next  *item
	owner int32
	off   uint32
	value []byte
}

// opSlot is per-proc statistics; each proc writes only its own slot.
// Shared-mode Gets rely on exactly this layout: every counter is
// written only by its owning proc, outside the lock, so concurrent
// readers never contend on statistics.
type opSlot struct {
	gets      uint64
	sets      uint64
	hits      uint64
	misses    uint64
	evictions uint64
	// sinceTouch counts this proc's hits since it last refreshed an
	// item's LRU position (shared read path only; see Shard.Get).
	sinceTouch uint64
	// spills counts sets this proc spilled to the GC heap because the
	// shard's arena was exhausted (ValueArena only).
	spills uint64
	_      numa.Pad
}

// shardConfig carries the per-shard slice of a Store's Config, already
// validated and normalized (buckets a power of two, capacity >= 1,
// maxBatch >= 1). Exactly one of lock and exec is set.
type shardConfig struct {
	topo       *numa.Topology
	lock       locks.RWMutex
	exec       locks.Executor
	maxBatch   int
	touchEvery uint64
	buckets    int
	capacity   int
	cache      cachesim.Config
	itemLocal  int64
	itemRemote int64
	// arenaBytes > 0 selects ValueArena: the shard owns an unguarded
	// arena of this capacity for its value bytes.
	arenaBytes int
	// compactIndex selects IndexCompact: items live in pointer-free
	// slabs and all index links are uint32 slab indices (see slab.go).
	compactIndex bool
}

// Shard is one independently locked slice of the store: a chained hash
// table, an intrusive LRU list, per-proc statistics and a private
// cachesim domain for its hot metadata. It is exactly the memcached
// structure of the paper's Table 1 experiment; the pre-sharding store
// was a single Shard behind one cache lock.
type Shard struct {
	lock locks.RWMutex
	// exec, when non-nil, is the shard's delegated-execution seam:
	// every critical section runs as a closure posted to a combining
	// executor (which batches same-cluster sections under one
	// acquisition of its underlying lock) instead of bracketing the
	// shard lock directly. lock is nil on this path — the executor owns
	// the exclusion domain.
	exec locks.Executor
	// rwexec, when non-nil, is exec's shared mode: the executor is a
	// read-combining RWExecutor (locks.RWCombining or its adaptive
	// twin) whose shared closures genuinely coexist, so the shared read
	// paths post per-chunk read closures through ExecShared — concurrent
	// same-cluster readers fold into ONE RLock of the underlying lock —
	// instead of bracketing RLock directly. Always the same value as
	// exec, pre-asserted to the RW interface; nil when exec is nil or
	// exclusive-only.
	rwexec locks.RWExecutor
	// maxBatch bounds how many batched operations (MGet/MSet/MDelete)
	// run inside one critical section.
	maxBatch int
	// sharedReads is true when the shard's reads genuinely admit
	// concurrency — lock's shared mode does (rwexec nil), or the
	// executor's shared closures do (rwexec set); Get then runs the
	// shared read path. False for exclusive locks adapted via
	// locks.RWFromMutex and for exclusive-only executors, whose Gets
	// keep the pre-RW exclusive path byte for byte.
	sharedReads bool
	touchEvery  uint64
	mask        uint64
	buckets     []*item
	head        *item // MRU
	tail        *item // LRU victim
	count       int
	capacity    int
	free        *item // recycled items (chained via hnext)
	// compact, when non-nil, replaces the pointer-linked index state
	// above (buckets/head/tail/free) with slab-resident items linked by
	// uint32 indices — IndexCompact mode. Every operation's critical
	// section dispatches on it once; the locking discipline is
	// unchanged because mutations already run single-writer and shared
	// readers only follow links.
	compact               *compactShard
	domain                *cachesim.Domain
	slots                 []opSlot
	itemLocal, itemRemote int64
	// arena, when non-nil, owns the shard's value bytes: an unguarded
	// alloc.Allocator whose every operation runs inside the shard's
	// existing critical sections — the shard lock (or executor) IS the
	// arena's exclusion domain, so values cost no second lock. Under
	// ClusterAffine placement the shard, its lock and its arena are all
	// homed on one cluster: value blocks recycle cluster-locally, the
	// paper's Table 2 effect applied to the data plane.
	arena *alloc.Allocator
	// pendingFree batches explicit frees (overwrite, eviction, delete)
	// so splay-tree reinsertion is paid once per maxBatch frees instead
	// of once per mutation — reclamation amortized like LRU touches.
	// Only touched inside critical sections; capacity is fixed at
	// maxBatch so the steady state appends without allocating.
	pendingFree []uint32
}

func newShard(cfg shardConfig) *Shard {
	sharedReads := false
	var rwexec locks.RWExecutor
	if cfg.exec == nil {
		sharedReads = locks.SharesReads(cfg.lock)
	} else if rx, ok := cfg.exec.(locks.RWExecutor); ok && locks.SharesExecReads(rx) {
		// The executor seam has a genuinely shared read mode: route the
		// shared read paths through ExecShared so same-cluster readers
		// fold into one shared acquisition under the reader-combiner.
		rwexec = rx
		sharedReads = true
	}
	s := &Shard{
		lock:        cfg.lock,
		exec:        cfg.exec,
		rwexec:      rwexec,
		maxBatch:    cfg.maxBatch,
		sharedReads: sharedReads,
		touchEvery:  cfg.touchEvery,
		mask:        uint64(cfg.buckets - 1),
		capacity:    cfg.capacity,
		domain:      cachesim.NewDomain(cfg.topo, numLines, cfg.cache),
		slots:       make([]opSlot, cfg.topo.MaxProcs()),
		itemLocal:   cfg.itemLocal,
		itemRemote:  cfg.itemRemote,
	}
	if cfg.compactIndex {
		s.compact = newCompactShard(cfg.buckets)
	} else {
		s.buckets = make([]*item, cfg.buckets)
	}
	if cfg.arenaBytes > 0 {
		a, err := alloc.New(alloc.Config{
			Topo:       cfg.topo,
			Unguarded:  true,
			ArenaBytes: cfg.arenaBytes,
			LocalNs:    cfg.itemLocal,
			RemoteNs:   cfg.itemRemote,
			Cache:      cfg.cache,
		})
		if err != nil {
			panic(err) // sizes validated by Config.setDefaults
		}
		s.arena = a
		s.pendingFree = make([]uint32, 0, cfg.maxBatch)
	}
	return s
}

// hash is Fibonacci hashing; keys are already integers in this model.
func (s *Shard) hash(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> 16 & s.mask
}

func (s *Shard) find(key uint64) *item {
	for it := s.buckets[s.hash(key)]; it != nil; it = it.hnext {
		if it.key == key {
			return it
		}
	}
	return nil
}

// touchItem charges the item-locality latency and migrates ownership,
// the per-item analogue of cachesim. Must hold the shard lock.
func (s *Shard) touchItem(p *numa.Proc, it *item) {
	c := int32(p.Cluster())
	if it.owner != c {
		it.owner = c
		spin.WaitNs(s.itemRemote)
	} else {
		spin.WaitNs(s.itemLocal)
	}
}

// lruFront moves it to the MRU position. Must hold the shard lock.
func (s *Shard) lruFront(it *item) {
	if s.head == it {
		return
	}
	// unlink
	if it.prev != nil {
		it.prev.next = it.next
	}
	if it.next != nil {
		it.next.prev = it.prev
	}
	if s.tail == it {
		s.tail = it.prev
	}
	// push front
	it.prev = nil
	it.next = s.head
	if s.head != nil {
		s.head.prev = it
	}
	s.head = it
	if s.tail == nil {
		s.tail = it
	}
}

// unlink removes it from both the hash chain and the LRU list. Must
// hold the shard lock.
func (s *Shard) unlink(it *item) {
	b := s.hash(it.key)
	if s.buckets[b] == it {
		s.buckets[b] = it.hnext
	} else {
		for cur := s.buckets[b]; cur != nil; cur = cur.hnext {
			if cur.hnext == it {
				cur.hnext = it.hnext
				break
			}
		}
	}
	if it.prev != nil {
		it.prev.next = it.next
	}
	if it.next != nil {
		it.next.prev = it.prev
	}
	if s.head == it {
		s.head = it.next
	}
	if s.tail == it {
		s.tail = it.prev
	}
	it.prev, it.next, it.hnext = nil, nil, nil
}

// Get looks up key, copying the value into dst (truncating if dst is
// short). It returns the copied length and whether the key was found.
//
// Under an exclusive cache lock a hit bumps the item to the MRU
// position on every Get, as memcached does. Under a genuine
// reader-writer lock Get runs in shared mode — concurrent readers on
// different clusters proceed together, touching nothing but their own
// cluster's reader counter and their own statistics slot — and the LRU
// bump follows a bounded touch-every-Nth-hit policy: each proc
// refreshes an item's recency only on every touchEvery-th hit,
// upgrading to exclusive mode just for that bump. Recency becomes
// approximate (a uniformly sampled subset of hits drives the LRU
// order, the same trade memcached makes with its 60-second touch
// rule); hit/miss behavior and returned values are unaffected.
func (s *Shard) Get(p *numa.Proc, key uint64, dst []byte) (int, bool) {
	if !s.sharedReads {
		return s.getExclusive(p, key, dst)
	}
	slot := &s.slots[p.ID()]
	n, hit := s.getSharedCS(p, key, dst)
	slot.gets++
	if !hit {
		slot.misses++
		return 0, false
	}
	slot.hits++
	slot.sinceTouch++
	if slot.sinceTouch >= s.touchEvery {
		slot.sinceTouch = 0
		// Re-find under exclusive mode: the item may have been evicted
		// or deleted between the shared read and this upgrade.
		if s.rwexec != nil {
			s.exec.Exec(p, func() { s.touchKey(p, key) })
		} else {
			s.lock.Lock(p)
			s.touchKey(p, key)
			s.lock.Unlock(p)
		}
	}
	return n, true
}

// getSharedCS runs one get's shared-mode section under the shard's
// read seam. The hash-bucket walk and value copy only read item state;
// writers (Set/Delete and Get's deferred LRU bump) hold exclusive
// mode, so no mutation can overlap shared mode. Like getExclusiveCS,
// the closure-posting branch keeps its captured results local so the
// plain-lock path stays allocation-free.
func (s *Shard) getSharedCS(p *numa.Proc, key uint64, dst []byte) (int, bool) {
	if s.rwexec != nil {
		var n int
		var hit bool
		s.rwexec.ExecShared(p, func() { n, hit = s.readValue(key, dst) })
		return n, hit
	}
	s.lock.RLock(p)
	n, hit := s.readValue(key, dst)
	s.lock.RUnlock(p)
	return n, hit
}

// readValue looks up key and copies its value into dst — the layout
// dispatch shared by the shared-mode read paths (Get and mgetShared).
// Callers hold at least shared mode; nothing here mutates the shard.
func (s *Shard) readValue(key uint64, dst []byte) (int, bool) {
	if s.compact != nil {
		i := s.cfind(key)
		if i == nilIdx {
			return 0, false
		}
		return copy(dst, s.cvalue(i, s.compact.at(i))), true
	}
	it := s.find(key)
	if it == nil {
		return 0, false
	}
	return copy(dst, it.value), true
}

// touchKey re-finds key and refreshes its item's locality charge and
// LRU position — the deferred bump the shared read paths run under a
// brief exclusive upgrade. A vanished key (evicted or deleted since
// the shared read) is a no-op. Callers hold exclusive mode.
func (s *Shard) touchKey(p *numa.Proc, key uint64) {
	if s.compact != nil {
		if i := s.cfind(key); i != nilIdx {
			s.ctouchItem(p, s.compact.at(i))
			s.clruFront(i)
		}
		return
	}
	if it := s.find(key); it != nil {
		s.touchItem(p, it)
		s.lruFront(it)
	}
}

// getExclusive is the pre-RW read path, taken whenever the shard's
// lock serializes readers: every hit pays the item touch and LRU bump
// inside the exclusive critical section, so single-shard exclusive
// configurations reproduce the paper's Table 1 behavior unchanged. On
// the executor seam the same critical section runs as a posted
// closure — batched with other same-cluster operations by the
// combiner — instead of bracketing the lock directly.
func (s *Shard) getExclusive(p *numa.Proc, key uint64, dst []byte) (int, bool) {
	slot := &s.slots[p.ID()]
	n, hit := s.getExclusiveCS(p, key, dst)
	slot.gets++
	if hit {
		slot.hits++
	} else {
		slot.misses++
	}
	return n, hit
}

// getExclusiveCS runs one get's critical section under the shard's
// exclusion seam. The closure-posting exec branch declares its result
// variables inside the branch: hoisted to the top of the function they
// would be captured by an escaping closure and heap-allocated on every
// call, putting two Go allocations on the plain-lock read path that
// the allocs/op columns would misattribute to value memory.
func (s *Shard) getExclusiveCS(p *numa.Proc, key uint64, dst []byte) (int, bool) {
	if s.exec != nil {
		var n int
		var hit bool
		s.exec.Exec(p, func() { n, hit = s.applyGet(p, key, dst) })
		return n, hit
	}
	s.lock.Lock(p)
	n, hit := s.applyGet(p, key, dst)
	s.lock.Unlock(p)
	return n, hit
}

// applyGet is a get's critical section: hash walk, item touch, LRU
// bump and value copy. Callers hold the shard's exclusion (the lock,
// or the executor's combiner); statistics stay outside.
func (s *Shard) applyGet(p *numa.Proc, key uint64, dst []byte) (int, bool) {
	if s.compact != nil {
		return s.capplyGet(p, key, dst)
	}
	// The hash-bucket walk is read-only: read-shared lines replicate
	// across caches without coherence misses, so no charge applies.
	it := s.find(key)
	if it == nil {
		return 0, false
	}
	// The LRU bump writes the item's own links — the one line a get
	// dirties. Which cluster wrote the item last is a property of the
	// key stream, not of the lock, so this cost is lock-independent
	// noise (and is why the paper's Table 1a shows all spin locks
	// performing alike on read-heavy loads).
	s.touchItem(p, it)
	s.lruFront(it)
	return copy(dst, it.value), true
}

// Set inserts or updates key with a copy of val, evicting the LRU
// victim if the shard is over capacity.
func (s *Shard) Set(p *numa.Proc, key uint64, val []byte) {
	slot := &s.slots[p.ID()]
	if s.exec != nil {
		s.exec.Exec(p, func() { s.applySet(p, key, val) })
	} else {
		s.lock.Lock(p)
		s.applySet(p, key, val)
		s.lock.Unlock(p)
	}
	slot.sets++
}

// applySet is a set's critical section; callers hold the shard's
// exclusion. The per-proc sets counter stays outside; evictions are
// charged inside (they are part of the guarded structural change).
func (s *Shard) applySet(p *numa.Proc, key uint64, val []byte) {
	if s.compact != nil {
		s.capplySet(p, key, val)
		return
	}
	slot := &s.slots[p.ID()]
	it := s.find(key)
	if it == nil {
		// Structural insert: writes the bucket chain and allocator.
		s.domain.Access(p, lineHash, 1)
		s.domain.Access(p, lineAlloc, 2)
		if s.free != nil {
			it = s.free
			s.free = it.hnext
			it.hnext = nil
		} else {
			it = &item{}
		}
		it.key = key
		b := s.hash(key)
		it.hnext = s.buckets[b]
		s.buckets[b] = it
		s.count++
	} else {
		s.touchItem(p, it)
	}
	it.owner = int32(p.Cluster())
	s.setValue(p, it, val)
	s.lruFront(it)
	s.domain.Access(p, lineLRU, 2)
	if s.count > s.capacity {
		victim := s.tail
		if victim != nil && victim != it {
			s.unlink(victim)
			s.count--
			s.clearValue(p, victim)
			victim.hnext = s.free
			s.free = victim
			s.domain.Access(p, lineHash, 1)
			s.domain.Access(p, lineAlloc, 2)
			slot.evictions++
		}
	}
	// Sets mutate the global statistics counters under the cache lock
	// (as memcached does) — together with the LRU head line above,
	// this is the batchable portion of a set's critical section: runs
	// of same-cluster sets keep these lines local.
	s.domain.Access(p, lineStats, 1)
}

// Delete removes key, returning whether it was present.
func (s *Shard) Delete(p *numa.Proc, key uint64) bool {
	// Like getExclusiveCS, the exec branch keeps its captured result
	// local so the plain-lock path stays allocation-free.
	if s.exec != nil {
		var ok bool
		s.exec.Exec(p, func() { ok = s.applyDelete(p, key) })
		return ok
	}
	s.lock.Lock(p)
	ok := s.applyDelete(p, key)
	s.lock.Unlock(p)
	return ok
}

// applyDelete is a delete's critical section; callers hold the
// shard's exclusion.
func (s *Shard) applyDelete(p *numa.Proc, key uint64) bool {
	if s.compact != nil {
		return s.capplyDelete(p, key)
	}
	it := s.find(key)
	if it == nil {
		return false
	}
	s.domain.Access(p, lineHash, 1)
	s.unlink(it)
	s.count--
	s.clearValue(p, it)
	it.hnext = s.free
	s.free = it
	s.domain.Access(p, lineAlloc, 2)
	return true
}

// setValue stores a copy of val as it's value. Callers hold the
// shard's exclusion.
//
// Heap mode is the pre-arena logic byte for byte: grow the GC-managed
// buffer when too small, reslice and copy. Arena mode reuses the
// item's current block in place when it fits; otherwise the old block
// is released (deferred — see deferFree) and a new one is carved from
// the shard's arena. An exhausted arena first flushes the deferred
// frees and retries — blocks awaiting reclamation are capacity, not
// garbage — and only then spills the value to the GC heap, counting
// the spill. Spilled items retry the arena on their next overwrite, so
// a post-churn arena with room reabsorbs them.
func (s *Shard) setValue(p *numa.Proc, it *item, val []byte) {
	if s.arena == nil {
		if cap(it.value) < len(val) {
			it.value = make([]byte, len(val))
		}
		it.value = it.value[:len(val)]
		copy(it.value, val)
		return
	}
	if it.off != 0 && cap(it.value) >= len(val) {
		// In-place overwrite: the block's usable size (the view's cap)
		// already fits the new value.
		it.value = it.value[:len(val)]
		copy(it.value, val)
		return
	}
	if it.off != 0 {
		s.deferFree(p, it.off)
		it.off, it.value = 0, nil
	}
	if len(val) == 0 {
		// Zero-length values carry no bytes; an arena block would be
		// all header. Represent them exactly as heap mode does.
		if it.value == nil {
			it.value = []byte{}
		}
		it.value = it.value[:0]
		return
	}
	s.domain.Access(p, lineAlloc, 2)
	if off, ok := s.arenaMalloc(p, len(val)); ok {
		it.off = off
		it.value = s.arena.Bytes(off, int(s.arena.UsableSize(off)))[:len(val)]
		copy(it.value, val)
		return
	}
	// Graceful spill: the arena is exhausted even after reclaiming the
	// deferred frees, so this value lives on the GC heap until an
	// overwrite finds arena room again.
	s.slots[p.ID()].spills++
	if cap(it.value) < len(val) {
		it.value = make([]byte, len(val))
	}
	it.value = it.value[:len(val)]
	copy(it.value, val)
}

// clearValue drops it's value on eviction or delete. Callers hold the
// shard's exclusion. Heap mode keeps the buffer for the recycled item
// to reuse (the pre-arena behavior); arena mode releases the block to
// the shard's arena, where the splay tree hands it — still cache-warm
// — to the next fitting allocation.
func (s *Shard) clearValue(p *numa.Proc, it *item) {
	if s.arena != nil && it.off != 0 {
		s.deferFree(p, it.off)
		it.off, it.value = 0, nil
		return
	}
	it.value = it.value[:0]
}

// arenaMalloc carves a value block from the shard's arena, flushing
// the deferred free list and retrying once when the arena looks
// exhausted. Callers hold the shard's exclusion.
func (s *Shard) arenaMalloc(p *numa.Proc, n int) (uint32, bool) {
	off, err := s.arena.MallocUnguarded(p, n)
	if err == nil {
		return off, true
	}
	if len(s.pendingFree) == 0 {
		return 0, false
	}
	s.flushFrees(p)
	off, err = s.arena.MallocUnguarded(p, n)
	return off, err == nil
}

// deferFree queues an arena block for reclamation and flushes the
// queue once it reaches maxBatch — one amortized batch of splay-tree
// reinsertion per maxBatch mutations, inside a critical section the
// caller already holds, exactly as the batch APIs amortize lock
// acquisitions.
func (s *Shard) deferFree(p *numa.Proc, off uint32) {
	s.pendingFree = append(s.pendingFree, off)
	if len(s.pendingFree) >= s.maxBatch {
		s.flushFrees(p)
	}
}

// flushFrees returns every deferred block to the arena. Callers hold
// the shard's exclusion. A free failing here means the store handed
// the arena a corrupt or double-freed offset — an invariant violation,
// not an operational error.
func (s *Shard) flushFrees(p *numa.Proc) {
	for _, off := range s.pendingFree {
		if err := s.arena.FreeUnguarded(p, off); err != nil {
			panic(fmt.Sprintf("kvstore: arena free of deferred block: %v", err))
		}
	}
	s.pendingFree = s.pendingFree[:0]
}

// flushArena drains the deferred free list as one critical section of
// its own — the combined-closure flush the batch pipeline uses between
// groups. A no-op for heap shards or an empty queue.
func (s *Shard) flushArena(p *numa.Proc) {
	if s.arena == nil {
		return
	}
	s.runBatch(p, func() {
		if len(s.pendingFree) > 0 {
			s.flushFrees(p)
		}
	})
}

// arenaCheck flushes deferred frees, then verifies the arena's heap
// invariants and that live blocks match arena-backed items one for
// one (no leaks, no double frees). Quiescent callers only.
func (s *Shard) arenaCheck(p *numa.Proc) error {
	if s.arena == nil {
		return nil
	}
	s.flushArena(p)
	if err := s.arena.Fsck(); err != nil {
		return err
	}
	backed := 0
	if cs := s.compact; cs != nil {
		for i := cs.head; i != nilIdx; i = cs.at(i).next {
			if cs.at(i).off != 0 {
				backed++
			}
		}
	} else {
		for it := s.head; it != nil; it = it.next {
			if it.off != 0 {
				backed++
			}
		}
	}
	if live := s.arena.LiveBlocks(); live != backed {
		return fmt.Errorf("kvstore: arena holds %d live blocks, %d items are arena-backed", live, backed)
	}
	return nil
}

// runBatch runs fn as one exclusive critical section: one posted
// closure under the executor seam, or one acquisition of the shard
// lock. The batch APIs feed it chunks of up to maxBatch operations.
func (s *Shard) runBatch(p *numa.Proc, fn func()) {
	if s.exec != nil {
		s.exec.Exec(p, fn)
		return
	}
	s.lock.Lock(p)
	fn()
	s.lock.Unlock(p)
}

// mget answers the group's lookups (idx indexes keys) in critical
// sections of at most maxBatch operations each. dsts may be nil to
// probe without copying; lens and found are written at the same
// indices as keys. Shards whose reads genuinely share — a reader-
// writer shard lock, or a read-combining executor seam — route
// through mgetShared, whole chunks answered under one shared
// acquisition (or one posted shared closure); exclusive-lock and
// exclusive-executor shards keep this exclusive path unchanged.
func (s *Shard) mget(p *numa.Proc, keys []uint64, dsts [][]byte, lens []int, found []bool, idx []int) {
	if s.sharedReads {
		s.mgetShared(p, keys, dsts, lens, found, idx)
		return
	}
	slot := &s.slots[p.ID()]
	for start := 0; start < len(idx); start += s.maxBatch {
		chunk := idx[start:min(start+s.maxBatch, len(idx))]
		s.runBatch(p, func() {
			for _, i := range chunk {
				var dst []byte
				if dsts != nil {
					dst = dsts[i]
				}
				lens[i], found[i] = s.applyGet(p, keys[i], dst)
			}
		})
		for _, i := range chunk {
			slot.gets++
			if found[i] {
				slot.hits++
			} else {
				slot.misses++
			}
		}
	}
}

// mgetShared is the shared-mode group read path, composing the RW read
// protocol with the batch APIs: each chunk of up to maxBatch lookups
// runs under ONE shared acquisition — concurrent readers' chunks on
// different clusters proceed together, and a group of N lookups costs
// ceil(N/maxBatch) RLock acquisitions. On the read-combining executor
// seam each chunk is instead a posted shared closure: concurrent
// same-cluster readers' chunks are harvested by one reader-combiner
// and run under a single RLock, pushing shared acquisitions per read
// op below even the ceil(N/maxBatch) floor. Per-key semantics match
// the shared-mode Get: the hash walk and value copy only read item
// state (writers hold exclusive mode, so nothing mutates under the
// chunk), and the LRU bump follows the same touch-every-Nth-hit
// sampling — sampled keys accumulate across the group and are
// refreshed in one deferred exclusive section at the end, so recency
// maintenance costs at most one extra acquisition per group instead of
// one per sampled hit. Statistics stay per-proc, outside the lock,
// counted once per operation exactly as the exclusive path counts
// them.
func (s *Shard) mgetShared(p *numa.Proc, keys []uint64, dsts [][]byte, lens []int, found []bool, idx []int) {
	slot := &s.slots[p.ID()]
	var touch []uint64 // keys sampled for a deferred LRU refresh
	for start := 0; start < len(idx); start += s.maxBatch {
		chunk := idx[start:min(start+s.maxBatch, len(idx))]
		if s.rwexec != nil {
			s.rwexec.ExecShared(p, func() {
				for _, i := range chunk {
					var dst []byte
					if dsts != nil {
						dst = dsts[i]
					}
					lens[i], found[i] = s.readValue(keys[i], dst)
				}
			})
		} else {
			s.lock.RLock(p)
			for _, i := range chunk {
				var dst []byte
				if dsts != nil {
					dst = dsts[i]
				}
				lens[i], found[i] = s.readValue(keys[i], dst)
			}
			s.lock.RUnlock(p)
		}
		for _, i := range chunk {
			slot.gets++
			if found[i] {
				slot.hits++
				slot.sinceTouch++
				if slot.sinceTouch >= s.touchEvery {
					slot.sinceTouch = 0
					touch = append(touch, keys[i])
				}
			} else {
				slot.misses++
			}
		}
	}
	if len(touch) > 0 {
		// Re-find under exclusive mode: an item may have been evicted
		// or deleted between the shared chunk and this upgrade.
		if s.rwexec != nil {
			s.exec.Exec(p, func() {
				for _, k := range touch {
					s.touchKey(p, k)
				}
			})
		} else {
			s.lock.Lock(p)
			for _, k := range touch {
				s.touchKey(p, k)
			}
			s.lock.Unlock(p)
		}
	}
}

// mset applies the group's sets (idx indexes keys/vals) in critical
// sections of at most maxBatch operations each, preserving the
// caller's order within the group — duplicate keys resolve last-wins,
// exactly as the sequential calls would.
func (s *Shard) mset(p *numa.Proc, keys []uint64, vals [][]byte, idx []int) {
	slot := &s.slots[p.ID()]
	for start := 0; start < len(idx); start += s.maxBatch {
		chunk := idx[start:min(start+s.maxBatch, len(idx))]
		s.runBatch(p, func() {
			for _, i := range chunk {
				s.applySet(p, keys[i], vals[i])
			}
		})
		slot.sets += uint64(len(chunk))
	}
}

// mdelete removes the group's keys in critical sections of at most
// maxBatch operations each, returning how many were present. When
// found is non-nil, per-key presence is written at the same index as
// the key (the per-op answer a wire protocol's DELETED/NOT_FOUND
// responses need).
func (s *Shard) mdelete(p *numa.Proc, keys []uint64, idx []int, found []bool) int {
	n := 0
	for start := 0; start < len(idx); start += s.maxBatch {
		chunk := idx[start:min(start+s.maxBatch, len(idx))]
		s.runBatch(p, func() {
			for _, i := range chunk {
				ok := s.applyDelete(p, keys[i])
				if ok {
					n++
				}
				if found != nil {
					found[i] = ok
				}
			}
		})
	}
	return n
}

// Len reports the current item count (one critical section).
func (s *Shard) Len(p *numa.Proc) int {
	var n int
	s.runBatch(p, func() { n = s.count })
	return n
}

// Capacity reports the shard's item capacity.
func (s *Shard) Capacity() int { return s.capacity }

// Snapshot aggregates the shard's statistics; call while workers are
// quiescent.
func (s *Shard) Snapshot() Stats {
	var st Stats
	for i := range s.slots {
		sl := &s.slots[i]
		st.Gets += sl.gets
		st.Sets += sl.sets
		st.Hits += sl.hits
		st.Misses += sl.misses
		st.Evictions += sl.evictions
		st.Spills += sl.spills
	}
	st.MetaMisses = s.domain.Snapshot().Misses
	return st
}

// checkLRU validates list integrity; tests use it.
func (s *Shard) checkLRU() error {
	if s.compact != nil {
		return s.ccheckLRU()
	}
	seen := 0
	var prev *item
	for it := s.head; it != nil; it = it.next {
		if it.prev != prev {
			return fmt.Errorf("kvstore: broken prev link at %d", it.key)
		}
		prev = it
		seen++
		if seen > s.count {
			return fmt.Errorf("kvstore: LRU longer than count %d", s.count)
		}
	}
	if s.tail != prev {
		return fmt.Errorf("kvstore: tail mismatch")
	}
	if seen != s.count {
		return fmt.Errorf("kvstore: LRU has %d items, count %d", seen, s.count)
	}
	return nil
}
