package kvstore

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/locks"
	"repro/internal/numa"
)

// rwStore builds a single-shard store over a genuine reader-writer
// lock (per-cluster readers over MCS writers).
func rwStore(topo *numa.Topology, touchEvery int) *Store {
	return New(Config{
		Topo:       topo,
		RWLock:     locks.NewRWPerCluster(topo, locks.NewMCS(topo)),
		TouchEvery: touchEvery,
		Buckets:    1 << 10,
		Capacity:   1 << 12,
	})
}

// TestRWSharedReadsDetection: RW configs select the shared read path,
// exclusive configs (plain or adapter-wrapped) keep the exclusive one.
func TestRWSharedReadsDetection(t *testing.T) {
	topo := numa.New(2, 4)
	if s := rwStore(topo, 0); !s.shards[0].sharedReads {
		t.Fatal("RWLock store did not select the shared read path")
	}
	excl := New(Config{Topo: topo, Lock: locks.NewMCS(topo)})
	if excl.shards[0].sharedReads {
		t.Fatal("exclusive-lock store selected the shared read path")
	}
	adapted := New(Config{Topo: topo, RWLock: locks.RWFromMutex(locks.NewMCS(topo))})
	if adapted.shards[0].sharedReads {
		t.Fatal("RWFromMutex-adapted store selected the shared read path")
	}
	sharded := New(Config{
		Topo:      topo,
		NewRWLock: func() locks.RWMutex { return locks.NewRWPerCluster(topo, locks.NewMCS(topo)) },
		Shards:    4,
	})
	for i, sh := range sharded.shards {
		if !sh.sharedReads {
			t.Fatalf("shard %d of NewRWLock store is not on the shared read path", i)
		}
	}
}

// TestRWGetSemantics: the shared read path returns the same results as
// the exclusive one for hits, misses, deletes and overwrites.
func TestRWGetSemantics(t *testing.T) {
	topo := numa.New(2, 4)
	s := rwStore(topo, 0)
	p := topo.Proc(0)
	dst := make([]byte, 16)

	if _, ok := s.Get(p, 1, dst); ok {
		t.Fatal("hit on empty store")
	}
	s.Set(p, 1, []byte("hello"))
	n, ok := s.Get(p, 1, dst)
	if !ok || !bytes.Equal(dst[:n], []byte("hello")) {
		t.Fatalf("Get = %q, %v; want hello", dst[:n], ok)
	}
	s.Set(p, 1, []byte("world"))
	n, ok = s.Get(p, 1, dst)
	if !ok || !bytes.Equal(dst[:n], []byte("world")) {
		t.Fatalf("Get after overwrite = %q, %v; want world", dst[:n], ok)
	}
	if !s.Delete(p, 1) {
		t.Fatal("Delete missed")
	}
	if _, ok := s.Get(p, 1, dst); ok {
		t.Fatal("hit after delete")
	}
	st := s.Snapshot()
	if st.Gets != 4 || st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v; want 4 gets, 2 hits, 2 misses", st)
	}
}

// TestRWTouchPolicy pins the LRU-touch semantics of the shared read
// path: with TouchEvery=1 a hit refreshes recency exactly like the
// exclusive path; with a large stride the hit is mutation-free and the
// un-bumped item remains the eviction victim.
func TestRWTouchPolicy(t *testing.T) {
	topo := numa.New(2, 4)
	dst := make([]byte, 4)
	build := func(touchEvery int) *Store {
		return New(Config{
			Topo:       topo,
			RWLock:     locks.NewRWPerCluster(topo, locks.NewMCS(topo)),
			TouchEvery: touchEvery,
			Buckets:    64,
			Capacity:   2,
		})
	}
	p := topo.Proc(0)

	s := build(1) // bump on every hit
	s.Set(p, 1, []byte("a"))
	s.Set(p, 2, []byte("b"))
	s.Get(p, 1, dst) // key 1 becomes MRU
	s.Set(p, 3, []byte("c"))
	if _, ok := s.Get(p, 1, dst); !ok {
		t.Fatal("touched key evicted despite TouchEvery=1")
	}
	if _, ok := s.Get(p, 2, dst); ok {
		t.Fatal("LRU victim survived eviction")
	}

	s = build(1 << 20) // effectively never bump
	s.Set(p, 1, []byte("a"))
	s.Set(p, 2, []byte("b"))
	s.Get(p, 1, dst) // sampled out: no LRU mutation
	s.Set(p, 3, []byte("c"))
	if _, ok := s.Get(p, 1, dst); ok {
		t.Fatal("un-bumped key survived: shared Get mutated the LRU")
	}
	if err := s.checkLRU(); err != nil {
		t.Fatal(err)
	}
}

// TestRWConcurrentReadersWriter hammers the shared read path: readers
// verify values are never torn while writers overwrite and delete
// under exclusive mode. Run under -race this is the kvstore RW-path
// coherence check CI leans on.
func TestRWConcurrentReadersWriter(t *testing.T) {
	topo := numa.New(4, 12)
	s := rwStore(topo, 4)
	const keys = 64
	// Every value of key k is a run of identical bytes; a torn read
	// surfaces as a mixed-byte buffer.
	val := func(b byte) []byte { return bytes.Repeat([]byte{b}, 32) }
	seed := topo.Proc(0)
	for k := uint64(0); k < keys; k++ {
		s.Set(seed, k, val(byte(k)))
	}

	var bad atomic.Int64
	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 8; r++ {
		readers.Add(1)
		go func(p *numa.Proc) {
			defer readers.Done()
			dst := make([]byte, 32)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(p.RandN(keys))
				if n, ok := s.Get(p, k, dst); ok {
					for _, b := range dst[1:n] {
						if b != dst[0] {
							bad.Add(1)
							break
						}
					}
				}
			}
		}(topo.Proc(r))
	}
	for w := 8; w < 12; w++ {
		writers.Add(1)
		go func(p *numa.Proc) {
			defer writers.Done()
			for i := 0; i < 3000; i++ {
				k := uint64(p.RandN(keys))
				switch p.RandN(10) {
				case 0:
					s.Delete(p, k)
				default:
					s.Set(p, k, val(byte(p.RandN(256))))
				}
			}
		}(topo.Proc(w))
	}
	// Writers have a fixed quota; once they retire it, stop the readers.
	writers.Wait()
	close(stop)
	readers.Wait()
	if bad.Load() != 0 {
		t.Fatalf("readers observed %d torn values", bad.Load())
	}
	if err := s.checkLRU(); err != nil {
		t.Fatal(err)
	}
}
