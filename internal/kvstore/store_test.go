package kvstore

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/locks"
	"repro/internal/numa"
)

func newShardedStore(topo *numa.Topology, shards, capacity int, placement Placement) *Store {
	return New(Config{
		Topo:        topo,
		NewLock:     func() locks.Mutex { return locks.NewPthread() },
		Shards:      shards,
		Placement:   placement,
		Buckets:     256,
		Capacity:    capacity,
		Cache:       cachesim.Config{LocalNs: 1, RemoteNs: 1},
		ItemLocalNs: 1, ItemRemoteNs: 1,
	})
}

func TestShardedRoundTrip(t *testing.T) {
	topo := numa.New(4, 8)
	for _, placement := range []Placement{HashMod, ClusterAffine} {
		s := newShardedStore(topo, 8, 1<<14, placement)
		p := topo.Proc(0)
		dst := make([]byte, 16)
		for k := uint64(0); k < 2000; k++ {
			s.Set(p, k, []byte{byte(k), byte(k >> 8)})
		}
		for k := uint64(0); k < 2000; k++ {
			n, ok := s.Get(p, k, dst)
			if !ok || !bytes.Equal(dst[:n], []byte{byte(k), byte(k >> 8)}) {
				t.Fatalf("%v: key %d round-trip failed (%v, %q)", placement, k, ok, dst[:n])
			}
		}
		if err := s.checkLRU(); err != nil {
			t.Fatalf("%v: %v", placement, err)
		}
	}
}

func TestShardedKeysSpread(t *testing.T) {
	topo := numa.New(4, 8)
	s := newShardedStore(topo, 8, 1<<14, HashMod)
	p := topo.Proc(0)
	for k := uint64(0); k < 4000; k++ {
		s.Set(p, k, []byte("v"))
	}
	for i, sh := range s.shards {
		n := sh.Len(p)
		// 4000 keys over 8 shards: expect ~500 per shard; an empty or
		// wildly overloaded shard means routing is broken.
		if n < 200 || n > 1000 {
			t.Errorf("shard %d holds %d of 4000 keys, expected a fair split", i, n)
		}
	}
}

func TestTotalCapacitySplit(t *testing.T) {
	topo := numa.New(4, 8)
	const capacity = 64
	s := newShardedStore(topo, 8, capacity, HashMod)
	if got := s.Capacity(); got != capacity {
		t.Fatalf("Capacity() = %d, want %d", got, capacity)
	}
	p := topo.Proc(0)
	for k := uint64(0); k < 2000; k++ {
		s.Set(p, k, []byte("v"))
	}
	if got := s.Len(p); got > capacity {
		t.Fatalf("Len = %d exceeds total capacity %d", got, capacity)
	}
	for i, sh := range s.shards {
		if n := sh.Len(p); n > sh.Capacity() {
			t.Errorf("shard %d: %d items over per-shard capacity %d", i, n, sh.Capacity())
		}
	}
	if err := s.checkLRU(); err != nil {
		t.Fatal(err)
	}
}

func TestPerShardLRUEviction(t *testing.T) {
	// Overflow exactly one shard: only that shard evicts, and its own
	// LRU order decides the victims.
	topo := numa.New(4, 8)
	s := newShardedStore(topo, 4, 4*3, HashMod) // 3 items per shard
	p := topo.Proc(0)
	target := s.shardIndex(p, 0)
	var keys []uint64
	for k := uint64(0); len(keys) < 4; k++ {
		if s.shardIndex(p, k) == target {
			keys = append(keys, k)
		}
	}
	for _, k := range keys[:3] {
		s.Set(p, k, []byte("v"))
	}
	// Touch keys[0] so keys[1] is the victim when keys[3] arrives.
	if _, ok := s.Get(p, keys[0], make([]byte, 4)); !ok {
		t.Fatal("warm get failed")
	}
	s.Set(p, keys[3], []byte("v"))
	if _, ok := s.Get(p, keys[1], make([]byte, 4)); ok {
		t.Fatal("LRU victim still present in its shard")
	}
	for _, k := range []uint64{keys[0], keys[2], keys[3]} {
		if _, ok := s.Get(p, k, make([]byte, 4)); !ok {
			t.Fatalf("key %d wrongly evicted", k)
		}
	}
	for i := range s.shards {
		st := s.ShardSnapshot(i)
		if i == target && st.Evictions != 1 {
			t.Errorf("target shard evicted %d times, want 1", st.Evictions)
		}
		if i != target && st.Evictions != 0 {
			t.Errorf("uninvolved shard %d evicted %d times", i, st.Evictions)
		}
	}
}

func TestCrossShardStatsAggregation(t *testing.T) {
	topo := numa.New(4, 8)
	s := newShardedStore(topo, 8, 1<<14, HashMod)
	dst := make([]byte, 8)
	for id := 0; id < 8; id++ {
		p := topo.Proc(id)
		for k := uint64(0); k < 300; k++ {
			s.Set(p, k, []byte("v"))
			s.Get(p, k, dst)
			s.Get(p, k+1_000_000, dst) // guaranteed miss
		}
	}
	var want Stats
	for i := 0; i < s.NumShards(); i++ {
		want.Add(s.ShardSnapshot(i))
	}
	got := s.Snapshot()
	if got != want {
		t.Fatalf("Snapshot %+v != shard sum %+v", got, want)
	}
	if got.Gets != 8*300*2 || got.Sets != 8*300 {
		t.Fatalf("op counts wrong: %+v", got)
	}
	if got.Misses != 8*300 {
		t.Fatalf("Misses = %d, want %d", got.Misses, 8*300)
	}
}

func TestClusterAffineRoutesHome(t *testing.T) {
	topo := numa.New(4, 8)
	s := newShardedStore(topo, 8, 1<<14, ClusterAffine)
	for id := 0; id < 8; id++ {
		p := topo.Proc(id)
		for k := uint64(0); k < 500; k++ {
			if idx := s.shardIndex(p, k); s.ShardHome(idx) != p.Cluster() {
				t.Fatalf("proc %d (cluster %d): key %d routed to shard %d homed on %d",
					id, p.Cluster(), k, idx, s.ShardHome(idx))
			}
			if !s.IsLocal(p, k) {
				t.Fatalf("IsLocal false under affine routing")
			}
		}
	}
	// Per-cluster views: a key set from cluster 0 is invisible to
	// cluster 1 (its shard group differs).
	p0, p1 := topo.Proc(0), topo.Proc(1)
	s.Set(p0, 42, []byte("v"))
	if _, ok := s.Get(p1, 42, make([]byte, 4)); ok {
		t.Fatal("cluster 1 read a key homed on cluster 0's shards")
	}
	if _, ok := s.Get(p0, 42, make([]byte, 4)); !ok {
		t.Fatal("cluster 0 lost its own key")
	}
}

func TestClusterAffineFallbackWhenFewShards(t *testing.T) {
	// 2 shards over 4 clusters: clusters 2 and 3 have no home shard
	// and fall back to global hash routing; operations still work.
	topo := numa.New(4, 8)
	s := newShardedStore(topo, 2, 1<<10, ClusterAffine)
	if s.HasLocalShard(topo.Proc(2)) {
		t.Fatal("cluster 2 reported a home shard with only 2 shards")
	}
	if !s.HasLocalShard(topo.Proc(0)) {
		t.Fatal("cluster 0 lost its home shard")
	}
	p2 := topo.Proc(2) // cluster 2
	dst := make([]byte, 8)
	for k := uint64(0); k < 200; k++ {
		s.Set(p2, k, []byte{byte(k)})
	}
	for k := uint64(0); k < 200; k++ {
		if n, ok := s.Get(p2, k, dst); !ok || dst[:n][0] != byte(k) {
			t.Fatalf("fallback routing lost key %d", k)
		}
	}
}

func TestHashModIsRequesterIndependent(t *testing.T) {
	topo := numa.New(4, 8)
	s := newShardedStore(topo, 8, 1<<14, HashMod)
	for k := uint64(0); k < 500; k++ {
		want := s.shardIndex(topo.Proc(0), k)
		for id := 1; id < 8; id++ {
			if got := s.shardIndex(topo.Proc(id), k); got != want {
				t.Fatalf("key %d routes to shard %d for proc 0 but %d for proc %d",
					k, want, got, id)
			}
		}
	}
}

func TestShardedConcurrentOps(t *testing.T) {
	topo := numa.New(4, 16)
	for _, placement := range []Placement{HashMod, ClusterAffine} {
		s := New(Config{
			Topo:      topo,
			NewLock:   func() locks.Mutex { return locks.NewMCS(topo) },
			Shards:    8,
			Placement: placement,
			Buckets:   512, Capacity: 1024,
			Cache:       cachesim.Config{LocalNs: 1, RemoteNs: 1},
			ItemLocalNs: 1, ItemRemoteNs: 1,
		})
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				p := topo.Proc(id)
				dst := make([]byte, 16)
				val := []byte("sharded-value")
				for k := 0; k < 600; k++ {
					key := uint64(k % 250)
					switch k % 3 {
					case 0:
						s.Set(p, key, val)
					case 1:
						s.Get(p, key, dst)
					case 2:
						if k%30 == 2 {
							s.Delete(p, key)
						} else {
							s.Get(p, key, dst)
						}
					}
				}
			}(i)
		}
		wg.Wait()
		if err := s.checkLRU(); err != nil {
			t.Fatalf("%v: %v", placement, err)
		}
		st := s.Snapshot()
		if st.Gets == 0 || st.Sets == 0 {
			t.Fatalf("%v: stats look wrong: %+v", placement, st)
		}
	}
}

func TestShardedConfigValidation(t *testing.T) {
	topo := numa.New(4, 8)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("multi-shard store without NewLock accepted")
			}
		}()
		New(Config{Topo: topo, Lock: locks.NewPthread(), Shards: 4})
	}()
	// NewLock alone suffices, even for one shard.
	s := New(Config{Topo: topo, NewLock: func() locks.Mutex { return locks.NewPthread() }})
	if s.NumShards() != 1 {
		t.Fatalf("default shards = %d, want 1", s.NumShards())
	}
	if !s.IsLocal(topo.Proc(3), 99) {
		t.Error("single-shard store not degenerately local")
	}
}
