package kvstore

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/locks"
	"repro/internal/numa"
)

// countedRWStore builds a single-shard store over a genuine RW lock
// instrumented with separate exclusive/shared acquisition counters.
func countedRWStore(topo *numa.Topology, maxBatch, touchEvery int, excl, shared *atomic.Uint64) *Store {
	return New(Config{
		Topo: topo,
		RWLock: locks.CountRWAcquisitions(
			locks.NewRWPerCluster(topo, locks.NewMCS(topo)), excl, shared),
		MaxBatch:   maxBatch,
		TouchEvery: touchEvery,
		Buckets:    512,
		Capacity:   4096,
	})
}

func TestSharedMGetAcquisitionCount(t *testing.T) {
	// The acceptance criterion: a shard group of N lookups under a
	// genuine reader-writer lock costs exactly ceil(N/MaxBatch) SHARED
	// acquisitions, and — with the touch stride too large to sample —
	// zero exclusive ones.
	topo := numa.New(2, 4)
	p := topo.Proc(0)
	const n, batch = 16, 4
	var excl, shared atomic.Uint64
	s := countedRWStore(topo, batch, 1<<20, &excl, &shared)

	keys := make([]uint64, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = uint64(i)
		vals[i] = val(i)
	}
	s.MSet(p, keys, vals)

	dsts := make([][]byte, n)
	for i := range dsts {
		dsts[i] = make([]byte, 32)
	}
	lens := make([]int, n)
	found := make([]bool, n)
	e0, s0 := excl.Load(), shared.Load()
	s.MGet(p, keys, dsts, lens, found)
	const ceil = (n + batch - 1) / batch
	if got := shared.Load() - s0; got != ceil {
		t.Errorf("shared MGet of %d keys took %d RLock acquisitions, want ceil(%d/%d)=%d", n, got, n, batch, ceil)
	}
	if got := excl.Load() - e0; got != 0 {
		t.Errorf("shared MGet took %d exclusive acquisitions, want 0 (touch stride never samples)", got)
	}
	for i := range keys {
		if !found[i] || !bytes.Equal(dsts[i][:lens[i]], vals[i]) {
			t.Fatalf("key %d: got (%q,%v), want %q", keys[i], dsts[i][:lens[i]], found[i], vals[i])
		}
	}

	// With TouchEvery=1 every hit is sampled; the deferred LRU refresh
	// still costs exactly ONE extra exclusive acquisition per group,
	// not one per sampled hit.
	var excl1, shared1 atomic.Uint64
	s1 := countedRWStore(topo, batch, 1, &excl1, &shared1)
	s1.MSet(p, keys, vals)
	e0, s0 = excl1.Load(), shared1.Load()
	s1.MGet(p, keys, dsts, lens, found)
	if got := shared1.Load() - s0; got != ceil {
		t.Errorf("TouchEvery=1 shared MGet took %d RLock acquisitions, want %d", got, ceil)
	}
	if got := excl1.Load() - e0; got != 1 {
		t.Errorf("TouchEvery=1 shared MGet took %d exclusive acquisitions, want 1 (one deferred touch batch)", got)
	}
}

func TestSharedMGetPerShardGroups(t *testing.T) {
	// Multi-shard stores pay ceil per GROUP: the counters sum across
	// shards, so total shared acquisitions are the sum of each group's
	// ceiling — and never more than shards * ceil(N/batch).
	topo := numa.New(2, 4)
	p := topo.Proc(0)
	const shards, batch = 4, 4
	var excl, shared atomic.Uint64
	s := New(Config{
		Topo: topo,
		NewRWLock: func() locks.RWMutex {
			return locks.CountRWAcquisitions(
				locks.NewRWPerCluster(topo, locks.NewMCS(topo)), &excl, &shared)
		},
		Shards:     shards,
		MaxBatch:   batch,
		TouchEvery: 1 << 20,
		Placement:  HashMod,
		Buckets:    512,
		Capacity:   4096,
	})
	const n = 64
	keys := make([]uint64, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = uint64(i)
		vals[i] = val(i)
	}
	s.MSet(p, keys, vals)

	lens := make([]int, n)
	found := make([]bool, n)
	s0 := shared.Load()
	s.MGet(p, keys, nil, lens, found)
	got := shared.Load() - s0

	// Compute the exact expectation from the store's own routing.
	want := uint64(0)
	groups := s.groupByShard(p, keys)
	for _, g := range groups {
		want += uint64((len(g) + batch - 1) / batch)
	}
	if got != want {
		t.Errorf("sharded shared MGet took %d RLock acquisitions, want %d (sum of per-group ceilings)", got, want)
	}
	for i := range keys {
		if !found[i] {
			t.Fatalf("key %d unanswered", keys[i])
		}
	}
}

func TestSharedMGetMatchesSequentialGets(t *testing.T) {
	// Sequential equivalence, duplicate keys included: a shared-mode
	// MGet must answer exactly what the same store's Gets answer, and
	// count statistics once per operation.
	topo := numa.New(2, 4)
	p := topo.Proc(0)
	var excl, shared atomic.Uint64
	s := countedRWStore(topo, 5, 8, &excl, &shared)

	const present = 40
	for i := 0; i < present; i++ {
		s.Set(p, uint64(i), val(i))
	}
	keys := make([]uint64, 0, 60)
	for i := 0; i < present; i++ {
		keys = append(keys, uint64(i))
	}
	keys = append(keys, keys[:10]...) // duplicates
	for i := 0; i < 10; i++ {         // misses
		keys = append(keys, uint64(10_000+i))
	}

	dsts := make([][]byte, len(keys))
	lens := make([]int, len(keys))
	found := make([]bool, len(keys))
	for i := range dsts {
		dsts[i] = make([]byte, 32)
		lens[i] = -1
	}
	before := s.Snapshot()
	s.MGet(p, keys, dsts, lens, found)
	after := s.Snapshot()

	dst := make([]byte, 32)
	for i, k := range keys {
		if lens[i] == -1 {
			t.Fatalf("key %d (index %d) never answered", k, i)
		}
		n, ok := s.Get(p, k, dst)
		if ok != found[i] || (ok && !bytes.Equal(dst[:n], dsts[i][:lens[i]])) {
			t.Fatalf("key %d: MGet (%q,%v) vs Get (%q,%v)", k, dsts[i][:lens[i]], found[i], dst[:n], ok)
		}
	}
	wantHits, wantMisses := uint64(present+10), uint64(10)
	if g := after.Gets - before.Gets; g != uint64(len(keys)) {
		t.Errorf("Gets counted %d, want %d (once per op)", g, len(keys))
	}
	if h := after.Hits - before.Hits; h != wantHits {
		t.Errorf("Hits counted %d, want %d", h, wantHits)
	}
	if m := after.Misses - before.Misses; m != wantMisses {
		t.Errorf("Misses counted %d, want %d", m, wantMisses)
	}
	if err := s.checkLRU(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedMGetTouchPolicy(t *testing.T) {
	// The deferred LRU refresh must actually refresh: with TouchEvery=1
	// a batched read keeps its keys off the eviction victim spot,
	// exactly as sequential shared Gets would.
	topo := numa.New(2, 4)
	p := topo.Proc(0)
	build := func(touchEvery int) *Store {
		return New(Config{
			Topo:       topo,
			RWLock:     locks.NewRWPerCluster(topo, locks.NewMCS(topo)),
			MaxBatch:   8,
			TouchEvery: touchEvery,
			Buckets:    64,
			Capacity:   2,
		})
	}
	lens := make([]int, 1)
	found := make([]bool, 1)
	dst := make([]byte, 4)

	s := build(1) // every hit sampled: batched read bumps recency
	s.Set(p, 1, []byte("a"))
	s.Set(p, 2, []byte("b"))
	s.MGet(p, []uint64{1}, nil, lens, found)
	s.Set(p, 3, []byte("c"))
	if _, ok := s.Get(p, 1, dst); !ok {
		t.Fatal("batch-touched key evicted despite TouchEvery=1")
	}
	if _, ok := s.Get(p, 2, dst); ok {
		t.Fatal("LRU victim survived eviction")
	}

	s = build(1 << 20) // sampled out: batched read mutates nothing
	s.Set(p, 1, []byte("a"))
	s.Set(p, 2, []byte("b"))
	s.MGet(p, []uint64{1}, nil, lens, found)
	s.Set(p, 3, []byte("c"))
	if _, ok := s.Get(p, 1, dst); ok {
		t.Fatal("un-bumped key survived: shared MGet mutated the LRU")
	}
	if err := s.checkLRU(); err != nil {
		t.Fatal(err)
	}
}

func TestMGetExclusiveFallbackUnchanged(t *testing.T) {
	// When the shard lock is not a genuine RW lock — plain exclusive,
	// RWFromMutex-adapted, or the executor seam — MGet must keep the
	// exclusive batch path: correct answers, every-hit LRU bumps, and
	// ceil(N/MaxBatch) EXCLUSIVE acquisitions (the RLock face of the
	// adapter maps to Lock, so a shared count would be a path change).
	topo := numa.New(2, 4)
	p := topo.Proc(0)
	const n, batch = 12, 4
	var excl, shared atomic.Uint64
	s := New(Config{
		Topo: topo,
		RWLock: locks.CountRWAcquisitions(
			locks.RWFromMutex(locks.NewMCS(topo)), &excl, &shared),
		MaxBatch: batch,
		Buckets:  256,
		Capacity: 1024,
	})
	if s.shards[0].sharedReads {
		t.Fatal("RWFromMutex store selected the shared read path")
	}
	keys := make([]uint64, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = uint64(i)
		vals[i] = val(i)
	}
	s.MSet(p, keys, vals)
	lens := make([]int, n)
	found := make([]bool, n)
	e0, s0 := excl.Load(), shared.Load()
	s.MGet(p, keys, nil, lens, found)
	const ceil = (n + batch - 1) / batch
	if got := excl.Load() - e0; got != ceil {
		t.Errorf("exclusive-fallback MGet took %d exclusive acquisitions, want %d", got, ceil)
	}
	if got := shared.Load() - s0; got != 0 {
		t.Errorf("exclusive-fallback MGet took %d shared acquisitions, want 0", got)
	}
	for i := range keys {
		if !found[i] {
			t.Fatalf("key %d unanswered", keys[i])
		}
	}
	// An eviction-order probe: the exclusive path bumps on every hit.
	tiny := New(Config{
		Topo:     topo,
		Lock:     locks.NewMCS(topo),
		MaxBatch: 8,
		Buckets:  64,
		Capacity: 2,
	})
	dst := make([]byte, 4)
	tiny.Set(p, 1, []byte("a"))
	tiny.Set(p, 2, []byte("b"))
	tiny.MGet(p, []uint64{1}, nil, lens[:1], found[:1])
	tiny.Set(p, 3, []byte("c"))
	if _, ok := tiny.Get(p, 1, dst); !ok {
		t.Fatal("exclusive MGet hit did not bump recency")
	}
}

func TestSharedMGetConcurrentWithWriters(t *testing.T) {
	// Batched shared readers against exclusive writers: values must
	// never tear and shard invariants must hold. Runs under -race in
	// CI, which also checks the RLock chunk's happens-before edges.
	topo := numa.New(4, 12)
	s := New(Config{
		Topo:       topo,
		NewRWLock:  func() locks.RWMutex { return locks.NewRWPerCluster(topo, locks.NewMCS(topo)) },
		Shards:     2,
		MaxBatch:   4,
		TouchEvery: 4,
		Buckets:    256,
		Capacity:   1024,
	})
	const keyspace = 64
	val := func(b byte) []byte { return bytes.Repeat([]byte{b}, 32) }
	seed := topo.Proc(0)
	for k := uint64(0); k < keyspace; k++ {
		s.Set(seed, k, val(byte(k)))
	}

	var bad atomic.Int64
	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 8; r++ {
		readers.Add(1)
		go func(p *numa.Proc) {
			defer readers.Done()
			const b = 8
			keys := make([]uint64, b)
			dsts := make([][]byte, b)
			for i := range dsts {
				dsts[i] = make([]byte, 32)
			}
			lens := make([]int, b)
			found := make([]bool, b)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range keys {
					keys[i] = uint64(p.RandN(keyspace))
				}
				s.MGet(p, keys, dsts, lens, found)
				for i := range keys {
					if !found[i] {
						continue
					}
					for _, c := range dsts[i][1:lens[i]] {
						if c != dsts[i][0] {
							bad.Add(1)
							break
						}
					}
				}
			}
		}(topo.Proc(r))
	}
	for w := 8; w < 12; w++ {
		writers.Add(1)
		go func(p *numa.Proc) {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				k := uint64(p.RandN(keyspace))
				switch p.RandN(10) {
				case 0:
					s.Delete(p, k)
				default:
					s.Set(p, k, val(byte(p.RandN(256))))
				}
			}
		}(topo.Proc(w))
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if bad.Load() != 0 {
		t.Fatalf("batched shared readers observed %d torn values", bad.Load())
	}
	if err := s.checkLRU(); err != nil {
		t.Fatal(err)
	}
}
