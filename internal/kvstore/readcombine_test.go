package kvstore

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/locks"
	"repro/internal/numa"
)

// rwCombStore builds a single-shard store whose exclusion seam is a
// read-combining executor over a genuine RW lock instrumented with
// separate exclusive/shared acquisition counters. The returned
// RWPerCluster is the raw inner lock, so tests can hold it exclusively
// from outside the executor to pile readers up deterministically.
func rwCombStore(topo *numa.Topology, maxBatch, touchEvery int, excl, shared *atomic.Uint64) (*Store, *locks.RWPerCluster) {
	inner := locks.NewRWPerCluster(topo, locks.NewMCS(topo))
	x := locks.NewRWCombining(topo, locks.CountRWAcquisitions(inner, excl, shared))
	s := New(Config{
		Topo:       topo,
		NewExec:    func() locks.Executor { return x },
		MaxBatch:   maxBatch,
		TouchEvery: touchEvery,
		Buckets:    512,
		Capacity:   4096,
	})
	return s, inner
}

func TestReadCombiningShardDetection(t *testing.T) {
	// The shard must route reads through ExecShared exactly when the
	// executor has a genuinely shared read mode: comb-rw-* entries set
	// rwexec, plain comb-* entries (and RWCombining over an adapted
	// exclusive lock) keep the exclusive batch path.
	topo := numa.New(2, 4)
	build := func(name string) *Store {
		src, err := FromRegistry(topo, name)
		if err != nil {
			t.Fatal(err)
		}
		return New(Config{Topo: topo, Locking: src, Buckets: 64, Capacity: 128})
	}
	s := build("comb-rw-mcs")
	if s.shards[0].rwexec == nil || !s.shards[0].sharedReads {
		t.Fatal("comb-rw-mcs store did not select the read-combined shared path")
	}
	s = build("comb-a-rw-mcs")
	if s.shards[0].rwexec == nil || !s.shards[0].sharedReads {
		t.Fatal("comb-a-rw-mcs store did not select the read-combined shared path")
	}
	s = build("comb-mcs")
	if s.shards[0].rwexec != nil || s.shards[0].sharedReads {
		t.Fatal("comb-mcs store left the exclusive executor path")
	}
	over := New(Config{
		Topo: topo,
		NewExec: func() locks.Executor {
			return locks.NewRWCombining(topo, locks.RWFromMutex(locks.NewMCS(topo)))
		},
		Buckets: 64, Capacity: 128,
	})
	if over.shards[0].rwexec != nil || over.shards[0].sharedReads {
		t.Fatal("RWCombining over an exclusive adapter must not select the shared path")
	}
}

func TestReadCombinedMGetUncontendedMatchesSharedChunks(t *testing.T) {
	// With no concurrent readers every posted chunk takes the
	// single-closure bypass: a group of N lookups costs exactly
	// ceil(N/MaxBatch) RLock acquisitions — the PR 5 shared-chunk
	// floor, acquisition for acquisition — and the executor's shared
	// counters advance in lockstep (SharedBatches == SharedOps).
	topo := numa.New(2, 4)
	p := topo.Proc(0)
	const n, batch = 16, 4
	var excl, shared atomic.Uint64
	s, _ := rwCombStore(topo, batch, 1<<20, &excl, &shared)

	keys := make([]uint64, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = uint64(i)
		vals[i] = val(i)
	}
	s.MSet(p, keys, vals)

	dsts := make([][]byte, n)
	for i := range dsts {
		dsts[i] = make([]byte, 32)
	}
	lens := make([]int, n)
	found := make([]bool, n)
	e0, s0 := excl.Load(), shared.Load()
	s.MGet(p, keys, dsts, lens, found)
	const ceil = (n + batch - 1) / batch
	if got := shared.Load() - s0; got != ceil {
		t.Errorf("read-combined MGet of %d keys took %d RLock acquisitions, want ceil(%d/%d)=%d", n, got, n, batch, ceil)
	}
	if got := excl.Load() - e0; got != 0 {
		t.Errorf("read-combined MGet took %d exclusive acquisitions, want 0 (touch stride never samples)", got)
	}
	x := s.shards[0].rwexec.(*locks.RWCombining)
	if ops, b := x.SharedOps(), x.SharedBatches(); ops != b {
		t.Errorf("uncontended shared counters diverged: SharedOps=%d SharedBatches=%d (every closure should bypass)", ops, b)
	}
	for i := range keys {
		if !found[i] || !bytes.Equal(dsts[i][:lens[i]], vals[i]) {
			t.Fatalf("key %d: got (%q,%v), want %q", keys[i], dsts[i][:lens[i]], found[i], vals[i])
		}
	}
}

func TestReadCombinedMGetContention(t *testing.T) {
	// The acceptance criterion: under multi-reader same-cluster
	// contention, shared acquisitions per read op drop strictly below
	// the non-combining baseline (one RLock per chunk). Deterministic
	// pile-up: the inner lock is held exclusively from outside the
	// executor, so the first reader bypasses into a blocked RLock and
	// one elected reader-combiner blocks inside its single shared
	// acquisition while the remaining same-cluster readers publish;
	// releasing the writer drains every piled-up chunk under the
	// combiner's one RLock.
	topo := numa.New(2, 16)
	var excl, shared atomic.Uint64
	s, inner := rwCombStore(topo, 4, 1<<20, &excl, &shared)

	const workers, nkeys = 4, 4
	keys := make([]uint64, nkeys)
	vals := make([][]byte, nkeys)
	for i := range keys {
		keys[i] = uint64(i)
		vals[i] = val(i)
	}
	s.MSet(topo.Proc(1), keys, vals)

	holder := topo.Proc(15)
	inner.Lock(holder)
	e0, s0 := excl.Load(), shared.Load()

	// Four workers, all on cluster 0 (even proc ids), one chunk each.
	var wg sync.WaitGroup
	bad := make([]bool, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := topo.Proc(2 * w)
			dsts := make([][]byte, nkeys)
			for i := range dsts {
				dsts[i] = make([]byte, 32)
			}
			lens := make([]int, nkeys)
			found := make([]bool, nkeys)
			s.MGet(p, keys, dsts, lens, found)
			for i := range keys {
				if !found[i] || !bytes.Equal(dsts[i][:lens[i]], vals[i]) {
					bad[w] = true
				}
			}
		}(w)
	}
	// Let every worker publish its chunk closure against the held lock.
	time.Sleep(50 * time.Millisecond)
	inner.Unlock(holder)
	wg.Wait()

	for w := range bad {
		if bad[w] {
			t.Fatalf("worker %d read wrong bytes through the combined path", w)
		}
	}
	// Baseline cost is one RLock per chunk = workers acquisitions; the
	// reader-combiner must do strictly better.
	if got := shared.Load() - s0; got >= workers {
		t.Errorf("piled-up read-combined MGets took %d shared acquisitions for %d chunks, want < %d", got, workers, workers)
	}
	if got := excl.Load() - e0; got != 0 {
		t.Errorf("piled-up read-combined MGets took %d exclusive acquisitions, want 0", got)
	}
}

func TestReadCombinedMGetSequentialEquivalence(t *testing.T) {
	// Byte-for-byte and stat-for-stat equivalence against the PR 5
	// shared-chunk path: a single-threaded op script must answer
	// identically and leave identical full statistics (coherence
	// charges included) whether chunks bracket RLock directly or are
	// posted through the read-combining executor — the bypass and the
	// eagerly elected touch combine reduce to exactly the same lock
	// script.
	topo := numa.New(2, 4)
	p := topo.Proc(0)
	build := func(combined bool) *Store {
		cfg := Config{
			Topo:       topo,
			MaxBatch:   5,
			TouchEvery: 3,
			Buckets:    256,
			Capacity:   32, // small: the script drives evictions
		}
		if combined {
			cfg.NewExec = func() locks.Executor {
				return locks.NewRWCombining(topo, locks.NewRWPerCluster(topo, locks.NewMCS(topo)))
			}
		} else {
			cfg.NewRWLock = func() locks.RWMutex {
				return locks.NewRWPerCluster(topo, locks.NewMCS(topo))
			}
		}
		return New(cfg)
	}
	base, comb := build(false), build(true)

	script := func(s *Store) ([]byte, Stats) {
		var out []byte
		keys := make([]uint64, 0, 48)
		for i := 0; i < 48; i++ { // overflows capacity: evictions
			keys = append(keys, uint64(i))
		}
		vals := make([][]byte, len(keys))
		for i := range vals {
			vals[i] = val(i)
		}
		s.MSet(p, keys, vals)

		// Reads with duplicates and misses, then single Gets to walk
		// the touch sampling, then overwrites and deletes.
		rk := append(append([]uint64{}, keys[20:]...), keys[30], keys[31], 9999, 10001)
		dsts := make([][]byte, len(rk))
		lens := make([]int, len(rk))
		found := make([]bool, len(rk))
		for i := range dsts {
			dsts[i] = make([]byte, 32)
		}
		s.MGet(p, rk, dsts, lens, found)
		for i := range rk {
			out = append(out, byte(lens[i]))
			if found[i] {
				out = append(out, 1)
				out = append(out, dsts[i][:lens[i]]...)
			} else {
				out = append(out, 0)
			}
		}
		dst := make([]byte, 32)
		for i := 0; i < 24; i++ {
			n, ok := s.Get(p, uint64(24+i), dst)
			out = append(out, byte(n))
			if ok {
				out = append(out, 1)
				out = append(out, dst[:n]...)
			} else {
				out = append(out, 0)
			}
		}
		for i := 40; i < 48; i++ {
			s.Set(p, uint64(i), val(i*7))
		}
		for i := 44; i < 46; i++ {
			if s.Delete(p, uint64(i)) {
				out = append(out, 1)
			} else {
				out = append(out, 0)
			}
		}
		s.MGet(p, rk, dsts, lens, found)
		for i := range rk {
			out = append(out, byte(lens[i]), byte(btoi(found[i])))
		}
		return out, s.Snapshot()
	}

	wantBytes, wantStats := script(base)
	gotBytes, gotStats := script(comb)
	if !bytes.Equal(wantBytes, gotBytes) {
		t.Fatal("read-combined op script answered differently from the shared-chunk path")
	}
	if gotStats != wantStats {
		t.Fatalf("stats diverged:\n shared-chunk:  %+v\n read-combined: %+v", wantStats, gotStats)
	}
	if err := base.checkLRU(); err != nil {
		t.Fatal(err)
	}
	if err := comb.checkLRU(); err != nil {
		t.Fatal(err)
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestReadCombinedConcurrentWithWriters(t *testing.T) {
	// Read-combined batched readers against exclusive writers through
	// one construction: values must never tear and shard invariants
	// must hold. Runs under -race in CI, which also checks the
	// happens-before edges of the publication slots and the harvested
	// closures.
	topo := numa.New(4, 12)
	s := New(Config{
		Topo: topo,
		NewExec: func() locks.Executor {
			return locks.NewRWCombiningAdaptive(topo, locks.NewRWPerCluster(topo, locks.NewMCS(topo)))
		},
		Shards:     2,
		MaxBatch:   4,
		TouchEvery: 4,
		Buckets:    256,
		Capacity:   1024,
	})
	const keyspace = 64
	val := func(b byte) []byte { return bytes.Repeat([]byte{b}, 32) }
	seed := topo.Proc(0)
	for k := uint64(0); k < keyspace; k++ {
		s.Set(seed, k, val(byte(k)))
	}

	var bad atomic.Int64
	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 8; r++ {
		readers.Add(1)
		go func(p *numa.Proc) {
			defer readers.Done()
			const b = 8
			keys := make([]uint64, b)
			dsts := make([][]byte, b)
			for i := range dsts {
				dsts[i] = make([]byte, 32)
			}
			lens := make([]int, b)
			found := make([]bool, b)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range keys {
					keys[i] = uint64(p.RandN(keyspace))
				}
				s.MGet(p, keys, dsts, lens, found)
				for i := range keys {
					if !found[i] {
						continue
					}
					for _, c := range dsts[i][1:lens[i]] {
						if c != dsts[i][0] {
							bad.Add(1)
							break
						}
					}
				}
			}
		}(topo.Proc(r))
	}
	for w := 8; w < 12; w++ {
		writers.Add(1)
		go func(p *numa.Proc) {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				k := uint64(p.RandN(keyspace))
				switch p.RandN(10) {
				case 0:
					s.Delete(p, k)
				default:
					s.Set(p, k, val(byte(p.RandN(256))))
				}
			}
		}(topo.Proc(w))
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if bad.Load() != 0 {
		t.Fatalf("read-combined batched readers observed %d torn values", bad.Load())
	}
	if err := s.checkLRU(); err != nil {
		t.Fatal(err)
	}
}
