package kvstore

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/locks"
	"repro/internal/numa"
	"repro/internal/spin"
)

func val(i int) []byte { return []byte(fmt.Sprintf("value-%d", i)) }

func TestMSetAcquisitionAmortization(t *testing.T) {
	// An acquisition-counting lock is the instrument behind the
	// batching acceptance criterion: MSet of N same-shard keys takes
	// ceil(N/MaxBatch) acquisitions, strictly fewer than N.
	topo := numa.New(2, 4)
	p := topo.Proc(0)
	const n, batch = 16, 4
	var acq atomic.Uint64
	lock := locks.CountAcquisitions(locks.NewPthread(), &acq)
	s := New(Config{Topo: topo, Lock: lock, MaxBatch: batch, Buckets: 64, Capacity: 64})

	keys := make([]uint64, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = uint64(i)
		vals[i] = val(i)
	}
	before := acq.Load()
	s.MSet(p, keys, vals)
	acqN := acq.Load() - before

	ceil := uint64((n + batch - 1) / batch)
	if acqN < ceil || acqN >= n {
		t.Fatalf("MSet of %d same-shard keys took %d acquisitions, want in [%d,%d)", n, acqN, ceil, n)
	}
	if acqN != ceil {
		t.Errorf("MSet took %d acquisitions, want exactly ceil(%d/%d)=%d", acqN, n, batch, ceil)
	}

	// The matching reads amortize identically.
	dsts := make([][]byte, n)
	for i := range dsts {
		dsts[i] = make([]byte, 32)
	}
	lens := make([]int, n)
	found := make([]bool, n)
	before = acq.Load()
	s.MGet(p, keys, dsts, lens, found)
	if got := acq.Load() - before; got != ceil {
		t.Errorf("MGet took %d acquisitions, want %d", got, ceil)
	}
	for i := range keys {
		if !found[i] || !bytes.Equal(dsts[i][:lens[i]], vals[i]) {
			t.Fatalf("key %d: got (%q,%v), want %q", keys[i], dsts[i][:lens[i]], found[i], vals[i])
		}
	}

	// Sequential Sets pay one acquisition per key — the baseline the
	// batch APIs beat.
	before = acq.Load()
	for i := range keys {
		s.Set(p, keys[i], vals[i])
	}
	if got := acq.Load() - before; got != n {
		t.Fatalf("sequential Sets took %d acquisitions, want %d", got, n)
	}
}

// newBatchStore builds a store for batch-semantics tests; pthread
// locks keep the focus on routing and accounting.
func newBatchStore(topo *numa.Topology, shards, maxBatch int) *Store {
	return New(Config{
		Topo:      topo,
		NewLock:   func() locks.Mutex { return locks.NewPthread() },
		Shards:    shards,
		MaxBatch:  maxBatch,
		Placement: HashMod,
		Buckets:   512,
		Capacity:  4096,
	})
}

func TestMGetRoutingComplete(t *testing.T) {
	// Every key must be answered exactly once, at its own index, across
	// a store with many shards — including duplicate keys and misses.
	topo := numa.New(4, 8)
	p := topo.Proc(0)
	s := newBatchStore(topo, 8, 3)

	const present = 200
	keys := make([]uint64, 0, present+50)
	for i := 0; i < present; i++ {
		s.Set(p, uint64(i), val(i))
		keys = append(keys, uint64(i))
	}
	keys = append(keys, keys[:25]...) // duplicates
	for i := 0; i < 25; i++ {         // misses
		keys = append(keys, uint64(10_000+i))
	}

	dsts := make([][]byte, len(keys))
	lens := make([]int, len(keys))
	found := make([]bool, len(keys))
	for i := range dsts {
		dsts[i] = make([]byte, 32)
		lens[i] = -1 // sentinel: unanswered
	}
	s.MGet(p, keys, dsts, lens, found)

	for i, k := range keys {
		if lens[i] == -1 {
			t.Fatalf("key %d (index %d) was never answered", k, i)
		}
		if k < present {
			if !found[i] || !bytes.Equal(dsts[i][:lens[i]], val(int(k))) {
				t.Fatalf("key %d: got (%q,%v), want %q", k, dsts[i][:lens[i]], found[i], val(int(k)))
			}
		} else if found[i] || lens[i] != 0 {
			t.Fatalf("absent key %d reported (%d,%v)", k, lens[i], found[i])
		}
	}
}

func TestBatchStatsCountedOncePerOp(t *testing.T) {
	topo := numa.New(4, 8)
	p := topo.Proc(0)
	for _, shards := range []int{1, 4} {
		s := newBatchStore(topo, shards, 5)
		const n = 64
		keys := make([]uint64, n)
		vals := make([][]byte, n)
		for i := range keys {
			keys[i] = uint64(i)
			vals[i] = val(i)
		}
		s.MSet(p, keys, vals)

		probe := append(append([]uint64{}, keys[:32]...), 9999, 9998) // 32 hits + 2 misses
		lens := make([]int, len(probe))
		found := make([]bool, len(probe))
		s.MGet(p, probe, nil, lens, found)

		st := s.Snapshot()
		if st.Sets != n {
			t.Errorf("%d shards: Sets = %d, want %d", shards, st.Sets, n)
		}
		if st.Gets != uint64(len(probe)) {
			t.Errorf("%d shards: Gets = %d, want %d", shards, st.Gets, len(probe))
		}
		if st.Hits != 32 || st.Misses != 2 {
			t.Errorf("%d shards: hits/misses = %d/%d, want 32/2", shards, st.Hits, st.Misses)
		}
	}
}

func TestBatchedStoreMatchesSequential(t *testing.T) {
	// A single-shard batched run must be indistinguishable from the
	// sequential calls: same contents, same LRU order, same statistics.
	topo := numa.New(2, 4)
	p := topo.Proc(0)
	batched := newBatchStore(topo, 1, 4)
	sequential := newBatchStore(topo, 1, 4)

	const n = 50
	keys := make([]uint64, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = uint64(i % 40) // include duplicate keys: last write wins
		vals[i] = val(i)
	}
	batched.MSet(p, keys, vals)
	for i := range keys {
		sequential.Set(p, keys[i], vals[i])
	}

	if got, want := batched.Len(p), sequential.Len(p); got != want {
		t.Fatalf("Len: batched %d, sequential %d", got, want)
	}
	dst := make([]byte, 32)
	dst2 := make([]byte, 32)
	for k := uint64(0); k < 40; k++ {
		n1, ok1 := batched.Get(p, k, dst)
		n2, ok2 := sequential.Get(p, k, dst2)
		if ok1 != ok2 || n1 != n2 || !bytes.Equal(dst[:n1], dst2[:n2]) {
			t.Fatalf("key %d: batched (%q,%v) vs sequential (%q,%v)", k, dst[:n1], ok1, dst2[:n2], ok2)
		}
	}
	bs, ss := batched.Snapshot(), sequential.Snapshot()
	if bs != ss {
		t.Fatalf("stats diverge: batched %+v, sequential %+v", bs, ss)
	}
	if err := batched.checkLRU(); err != nil {
		t.Fatal(err)
	}

	// Deletes: remove every even key through the batch API on one
	// store, sequentially on the other.
	var evens []uint64
	for k := uint64(0); k < 40; k += 2 {
		evens = append(evens, k)
	}
	deleted := batched.MDelete(p, evens)
	want := 0
	for _, k := range evens {
		if sequential.Delete(p, k) {
			want++
		}
	}
	if deleted != want {
		t.Fatalf("MDelete removed %d keys, sequential removed %d", deleted, want)
	}
	if got, wantLen := batched.Len(p), sequential.Len(p); got != wantLen {
		t.Fatalf("Len after delete: batched %d, sequential %d", got, wantLen)
	}
}

func TestExecStoreMatchesDirect(t *testing.T) {
	// The executor seam must preserve store semantics: a store whose
	// shards run through combining executors answers exactly like a
	// directly locked one.
	topo := numa.New(2, 8)
	p := topo.Proc(0)
	exec := New(Config{
		Topo:     topo,
		NewExec:  func() locks.Executor { return locks.NewCombining(topo, locks.NewMCS(topo)) },
		Shards:   2,
		Buckets:  256,
		Capacity: 1024,
	})
	direct := newBatchStore(topo, 2, DefaultMaxBatch)

	const n = 300
	for i := 0; i < n; i++ {
		exec.Set(p, uint64(i), val(i))
		direct.Set(p, uint64(i), val(i))
	}
	dst := make([]byte, 32)
	dst2 := make([]byte, 32)
	for k := uint64(0); k < n+20; k++ {
		n1, ok1 := exec.Get(p, k, dst)
		n2, ok2 := direct.Get(p, k, dst2)
		if ok1 != ok2 || n1 != n2 || !bytes.Equal(dst[:n1], dst2[:n2]) {
			t.Fatalf("key %d: exec (%q,%v) vs direct (%q,%v)", k, dst[:n1], ok1, dst2[:n2], ok2)
		}
	}
	if got, want := exec.Len(p), direct.Len(p); got != want {
		t.Fatalf("Len: exec %d, direct %d", got, want)
	}
	if !exec.Delete(p, 0) || exec.Delete(p, uint64(n+5)) {
		t.Fatal("Delete through the executor seam misreported presence")
	}
	if err := exec.checkLRU(); err != nil {
		t.Fatal(err)
	}
}

func TestExecStoreConcurrent(t *testing.T) {
	// Concurrent mixed traffic through the combining executor: shard
	// invariants must hold and per-proc statistics must add up. Runs
	// under -race in CI, which also checks the combiner's
	// happens-before edges through the store's own closures.
	topo := numa.New(2, 8)
	s := New(Config{
		Topo:     topo,
		NewExec:  func() locks.Executor { return locks.NewCombining(topo, locks.NewMCS(topo)) },
		Shards:   2,
		MaxBatch: 8,
		Buckets:  256,
		Capacity: 512,
	})
	const procs, iters = 8, 200
	spin.AutoOversubscribe(procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := topo.Proc(id)
			dst := make([]byte, 32)
			keys := make([]uint64, 4)
			vals := make([][]byte, 4)
			lens := make([]int, 4)
			found := make([]bool, 4)
			for k := 0; k < iters; k++ {
				key := uint64((id*iters + k) % 300)
				s.Set(p, key, val(k))
				s.Get(p, key, dst)
				for j := range keys {
					keys[j] = key + uint64(j)
					vals[j] = val(j)
				}
				s.MSet(p, keys, vals)
				s.MGet(p, keys, nil, lens, found)
				if k%17 == 0 {
					s.Delete(p, key)
				}
			}
		}(i)
	}
	wg.Wait()
	if err := s.checkLRU(); err != nil {
		t.Fatal(err)
	}
	st := s.Snapshot()
	wantGets := uint64(procs * iters * 5) // 1 Get + 4 MGet per iteration
	wantSets := uint64(procs * iters * 5) // 1 Set + 4 MSet per iteration
	if st.Gets != wantGets || st.Sets != wantSets {
		t.Fatalf("stats: gets=%d sets=%d, want %d/%d", st.Gets, st.Sets, wantGets, wantSets)
	}
	if st.Hits+st.Misses != st.Gets {
		t.Fatalf("hits %d + misses %d != gets %d", st.Hits, st.Misses, st.Gets)
	}
}
