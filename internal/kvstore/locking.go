package kvstore

import (
	"fmt"

	"repro/internal/locks"
	"repro/internal/numa"
	"repro/internal/registry"
)

// LockSource is the single seam through which a Store receives its
// shards' exclusion domains. It collapses the historical five-field
// precedence ladder (Lock, NewLock, RWLock, NewRWLock, NewExec) into
// one value: a source either supplies a per-shard executor factory
// (the delegated-execution seam) or a per-shard reader-writer lock
// factory (direct locking; exclusive locks are adapted through
// locks.RWFromMutex exactly as the old fields were).
//
// Build one with FromMutex, FromRW, FromExec, FromLock, FromRWLock or
// FromRegistry and set it as Config.Locking. The interface is sealed:
// the two resolution targets (executor vs lock) are an internal
// contract of the shard, so external implementations are not
// meaningful.
type LockSource interface {
	// builders resolves the source into per-shard factories; exactly
	// one of the two returns is non-nil.
	builders() (newExec func() locks.Executor, newLock func() locks.RWMutex)
	// multiShard reports whether the source can back more than one
	// shard (i.e. it is factory-backed, not a single pre-built
	// instance).
	multiShard() bool
	// describe names the source for error messages.
	describe() string
}

// FromMutex sources each shard's lock from a factory of exclusive
// locks (registry Entry.MutexFactory shape). Shards keep the
// exclusive read path: the factory's locks are adapted through
// locks.RWFromMutex, byte for byte the behavior of the deprecated
// Config.NewLock field.
func FromMutex(f func() locks.Mutex) LockSource {
	if f == nil {
		panic("kvstore: FromMutex(nil)")
	}
	return mutexSource{f}
}

// FromRW sources each shard's lock from a factory of reader-writer
// locks (registry Entry.RWFactory shape). When the factory's locks
// genuinely share reads, Gets run in shared mode with the TouchEvery
// LRU sampling policy — the behavior of the deprecated
// Config.NewRWLock field.
func FromRW(f func() locks.RWMutex) LockSource {
	if f == nil {
		panic("kvstore: FromRW(nil)")
	}
	return rwSource{f}
}

// FromExec sources each shard's exclusion from a factory of combining
// executors (registry Entry.ExecFactory shape): every critical
// section is posted as a closure and same-cluster batches run under
// one underlying acquisition — the behavior of the deprecated
// Config.NewExec field.
func FromExec(f func() locks.Executor) LockSource {
	if f == nil {
		panic("kvstore: FromExec(nil)")
	}
	return execSource{f}
}

// FromLock sources a single-shard store's lock from one pre-built
// exclusive instance — the paper's interposition point and the
// behavior of the deprecated Config.Lock field. Multi-shard stores
// need a factory-backed source.
func FromLock(m locks.Mutex) LockSource {
	if m == nil {
		panic("kvstore: FromLock(nil)")
	}
	return singleSource{newLock: func() locks.RWMutex { return locks.RWFromMutex(m) }, name: "FromLock"}
}

// FromRWLock sources a single-shard store's lock from one pre-built
// reader-writer instance — the behavior of the deprecated
// Config.RWLock field.
func FromRWLock(l locks.RWMutex) LockSource {
	if l == nil {
		panic("kvstore: FromRWLock(nil)")
	}
	return singleSource{newLock: func() locks.RWMutex { return l }, name: "FromRWLock"}
}

// FromRegistry resolves a lock name through the registry (with its
// "did you mean" errors) into the source a tool would build for that
// entry: combining entries (comb-*, comb-a-*) become executor
// sources (the comb-rw-* twins' executors carry a genuinely shared
// read mode, which the shard detects and routes its read paths
// through — see Shard.rwexec), genuine reader-writer entries (rw-*)
// become RW sources, and plain exclusive entries become mutex sources
// — the same precedence kvbench applies when wiring a store by name.
func FromRegistry(topo *numa.Topology, name string) (LockSource, error) {
	e, err := registry.Find(name)
	if err != nil {
		return nil, err
	}
	switch {
	case e.NewExec != nil:
		return FromExec(e.ExecFactory(topo)), nil
	case e.NewRW != nil:
		return FromRW(e.RWFactory(topo)), nil
	case e.NewMutex != nil:
		return FromMutex(e.MutexFactory(topo)), nil
	}
	return nil, fmt.Errorf("kvstore: lock %q has no blocking construction (abortable-only locks cannot guard a shard)", e.Name)
}

type mutexSource struct{ f func() locks.Mutex }

func (s mutexSource) builders() (func() locks.Executor, func() locks.RWMutex) {
	return nil, func() locks.RWMutex { return locks.RWFromMutex(s.f()) }
}
func (s mutexSource) multiShard() bool { return true }
func (s mutexSource) describe() string { return "FromMutex" }

type rwSource struct{ f func() locks.RWMutex }

func (s rwSource) builders() (func() locks.Executor, func() locks.RWMutex) {
	return nil, s.f
}
func (s rwSource) multiShard() bool { return true }
func (s rwSource) describe() string { return "FromRW" }

type execSource struct{ f func() locks.Executor }

func (s execSource) builders() (func() locks.Executor, func() locks.RWMutex) {
	return s.f, nil
}
func (s execSource) multiShard() bool { return true }
func (s execSource) describe() string { return "FromExec" }

type singleSource struct {
	newLock func() locks.RWMutex
	name    string
}

func (s singleSource) builders() (func() locks.Executor, func() locks.RWMutex) {
	return nil, s.newLock
}
func (s singleSource) multiShard() bool { return false }
func (s singleSource) describe() string { return s.name }

// legacyLocking folds the deprecated five-field ladder into a
// LockSource, preserving the historical precedence exactly:
// NewExec > NewRWLock > NewLock > RWLock > Lock. setDefaults has
// already verified at least one field is set.
func legacyLocking(cfg *Config) LockSource {
	switch {
	case cfg.NewExec != nil:
		return FromExec(cfg.NewExec)
	case cfg.NewRWLock != nil:
		return FromRW(cfg.NewRWLock)
	case cfg.NewLock != nil:
		return FromMutex(cfg.NewLock)
	case cfg.RWLock != nil:
		return FromRWLock(cfg.RWLock)
	default:
		return FromLock(cfg.Lock)
	}
}
