// Package cli holds the small helpers shared by the experiment tools
// in cmd/: list parsing and output selection.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// ParseIntList parses a comma-separated list of positive integers,
// e.g. "1,4,16,64".
func ParseIntList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty list")
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %v", part, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("non-positive value %d", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseNameList parses a comma-separated list of names, trimming
// whitespace and dropping empties.
func ParseNameList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Emit renders the table as CSV or aligned text.
func Emit(t *stats.Table, csv bool) string {
	if csv {
		return t.CSV()
	}
	return t.Render()
}
