package cli

import (
	"fmt"
	"os"

	"repro/internal/kvstore"
	"repro/internal/registry"
)

// This file is the one place the cmd/ tools turn flag values into
// validated configuration. Lock names go through the registry here, so
// every tool — kvbench, lbench, kvserver, kvsoak — reports an unknown
// lock with the same "did you mean" suggestion instead of each
// open-coding its own (or worse, failing mid-sweep after minutes of
// measurement).

// Die reports a fatal flag or configuration error the way every cmd/
// tool does — "tool: error" on stderr — and exits with the
// conventional usage status 2.
func Die(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(2)
}

// Dief is Die with formatting.
func Dief(tool, format string, args ...any) {
	Die(tool, fmt.Errorf(format, args...))
}

// Locks parses a comma-separated lock list and validates every name
// against the registry, so unknown names fail at startup with the
// registry's suggestions. An empty spec returns nil — the tool's
// default set applies.
func Locks(spec string) ([]string, error) {
	names := ParseNameList(spec)
	for _, n := range names {
		if _, err := registry.Find(n); err != nil {
			return nil, err
		}
	}
	return names, nil
}

// Lock resolves one lock name through the registry.
func Lock(name string) (registry.Entry, error) {
	return registry.Find(name)
}

// Placement maps a -placement flag value.
func Placement(s string) (kvstore.Placement, error) {
	return kvstore.ParsePlacement(s)
}

// ValueMemory maps a -valuemem flag value.
func ValueMemory(s string) (kvstore.ValueMemory, error) {
	return kvstore.ParseValueMemory(s)
}

// IndexMemory maps an -indexmem flag value.
func IndexMemory(s string) (kvstore.IndexMemory, error) {
	return kvstore.ParseIndexMemory(s)
}

// Fraction validates a [0,1] flag such as -affinity or -reads. The
// inverted comparison rejects NaN too.
func Fraction(flagName string, v float64) error {
	if !(v >= 0 && v <= 1) {
		return fmt.Errorf("-%s %v outside [0,1]", flagName, v)
	}
	return nil
}

// Positive validates a flag that must be > 0.
func Positive(flagName string, v int) error {
	if v <= 0 {
		return fmt.Errorf("-%s must be positive, got %d", flagName, v)
	}
	return nil
}
