package cli

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestParseIntList(t *testing.T) {
	got, err := ParseIntList("1, 4,16")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 16 {
		t.Fatalf("got %v", got)
	}
	for _, bad := range []string{"", "a", "1,,2", "0", "-3", "1,x"} {
		if _, err := ParseIntList(bad); err == nil {
			t.Errorf("ParseIntList(%q) accepted", bad)
		}
	}
}

func TestParseNameList(t *testing.T) {
	got := ParseNameList(" mcs, c-bo-mcs ,,hbo ")
	want := []string{"mcs", "c-bo-mcs", "hbo"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestEmit(t *testing.T) {
	tb := stats.NewTable("x", "a")
	tb.AddRow("1")
	if !strings.Contains(Emit(tb, true), "a\n1\n") {
		t.Error("CSV emit wrong")
	}
	if !strings.Contains(Emit(tb, false), "# x") {
		t.Error("text emit wrong")
	}
}
