package cli

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestParseIntList(t *testing.T) {
	got, err := ParseIntList("1, 4,16")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 16 {
		t.Fatalf("got %v", got)
	}
	for _, bad := range []string{"", "a", "1,,2", "0", "-3", "1,x"} {
		if _, err := ParseIntList(bad); err == nil {
			t.Errorf("ParseIntList(%q) accepted", bad)
		}
	}
}

func TestParseNameList(t *testing.T) {
	got := ParseNameList(" mcs, c-bo-mcs ,,hbo ")
	want := []string{"mcs", "c-bo-mcs", "hbo"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestLocks(t *testing.T) {
	got, err := Locks("mcs, c-bo-mcs")
	if err != nil || len(got) != 2 {
		t.Fatalf("got %v, %v", got, err)
	}
	if got, err := Locks(""); err != nil || got != nil {
		t.Fatalf("empty spec: got %v, %v", got, err)
	}
	// Unknown names fail with the registry's suggestion — the shared
	// "did you mean" path every tool now reports from.
	_, err = Locks("mcs,msc")
	if err == nil || !strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("want did-you-mean error, got %v", err)
	}
}

func TestFraction(t *testing.T) {
	if err := Fraction("affinity", 0.5); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{-0.1, 1.1, nan()} {
		if err := Fraction("affinity", bad); err == nil {
			t.Errorf("Fraction(%v) accepted", bad)
		}
	}
}

func nan() float64 {
	var z float64
	return z / z
}

func TestPositive(t *testing.T) {
	if err := Positive("conns", 1); err != nil {
		t.Fatal(err)
	}
	if err := Positive("conns", 0); err == nil {
		t.Error("Positive(0) accepted")
	}
}

func TestEmit(t *testing.T) {
	tb := stats.NewTable("x", "a")
	tb.AddRow("1")
	if !strings.Contains(Emit(tb, true), "a\n1\n") {
		t.Error("CSV emit wrong")
	}
	if !strings.Contains(Emit(tb, false), "# x") {
		t.Error("text emit wrong")
	}
}
