// Package kvload is the memaslap stand-in: a closed-loop load
// generator issuing configurable get/set mixes against a kvstore.Store
// (paper §4.2). Each worker plays one memcached server thread handling
// one outstanding request at a time: pick a key, perform the
// operation, then do the request's non-locked work (parsing, response
// assembly) emulated by a calibrated busy-wait plus a checksum over
// the value bytes.
package kvload

import (
	"fmt"
	"runtime"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kvstore"
	"repro/internal/numa"
	"repro/internal/spin"
)

// Config describes one load run.
type Config struct {
	Topo *numa.Topology
	// Threads is the number of server workers (paper: 1..128).
	Threads int
	// Duration is the measurement window.
	Duration time.Duration
	// GetPct is the percentage of get operations (paper: 90/50/10).
	GetPct int
	// ReadFraction, when positive, overrides GetPct with per-mille
	// precision — the read-mostly knob (0.9, 0.99, 0.999) the
	// reader-writer store path needs, since whole percentages cannot
	// express a 99.9% read mix. Zero keeps the GetPct path bit-exact.
	ReadFraction float64
	// Keyspace is the number of distinct keys (pre-populated).
	Keyspace uint64
	// ValueSize is the value payload in bytes.
	ValueSize int
	// MaxValueSize, when greater than ValueSize, makes each set draw
	// its payload size uniformly from [ValueSize, MaxValueSize] — the
	// overwrite-churn shape that exercises value memory management:
	// a growing overwrite forces a reallocation (GC heap) or a block
	// exchange (arena), where fixed-size overwrites reuse the buffer
	// in place forever. 0 keeps every value exactly ValueSize bytes,
	// byte for byte the pre-knob loop.
	MaxValueSize int
	// ThinkNs is the per-request non-locked work, busy-waited.
	ThinkNs int64
	// Affinity is the probability in [0,1] that a worker biases its
	// key choice toward shards homed on its own cluster (rejection
	// sampling against Store.IsLocal). 0 keeps the uniform key stream.
	// It only shapes traffic on multi-shard stores under HashMod
	// placement: ClusterAffine routing is local by construction where
	// the cluster has home shards, and workers on clusters without
	// any home shard (fewer shards than clusters) skip the bias.
	Affinity float64
	// BatchSize groups each worker's operations into multi-key
	// MGet/MSet calls of this size — the batched pipeline: the store
	// runs each shard's portion of a batch in critical sections of up
	// to its MaxBatch, amortizing lock acquisitions across operations
	// (a pipelining client driving memcached's multi-get). 0 or 1
	// issues one operation per call, keeping the original loop byte
	// for byte. Affinity biasing is a per-operation knob and must be 0
	// when batching.
	BatchSize int
	// BatchAdaptive, with BatchSize > 1, turns BatchSize into a
	// ceiling instead of a fixed size: each worker grows and shrinks
	// its own batch within [1, BatchSize] by hill-climbing on the
	// observed per-operation service time of its store calls — batch
	// size doubles while batching keeps paying (per-op time holds or
	// falls) and halves when it degrades (a batch that outgrew what
	// the store's locks can amortize, or contention behind them).
	// Service time is a throughput signal, not a latency one: a store
	// that goes idle while big batches stay cheap per-op keeps them —
	// optimal for this closed-loop generator, which models no
	// per-request latency target. The think-time budget stays
	// per-operation either way.
	BatchAdaptive bool
}

// DefaultConfig mirrors the paper's memcached setup at benchmark
// scale: 100k keys, 128-byte values, and ~8 µs of request handling
// outside the cache lock (protocol parsing and response assembly in
// real memcached), sized so the non-locked:locked ratio — which fixes
// the scalability plateau — matches the paper's ~4.5-5x.
func DefaultConfig(topo *numa.Topology, threads, getPct int) Config {
	return Config{
		Topo:      topo,
		Threads:   threads,
		Duration:  300 * time.Millisecond,
		GetPct:    getPct,
		Keyspace:  100_000,
		ValueSize: 128,
		ThinkNs:   8000,
	}
}

func (c *Config) validate() error {
	if c.Topo == nil {
		return fmt.Errorf("kvload: nil topology")
	}
	if c.Threads < 1 || c.Threads > c.Topo.MaxProcs() {
		return fmt.Errorf("kvload: %d threads outside [1,%d]", c.Threads, c.Topo.MaxProcs())
	}
	if c.Duration <= 0 {
		return fmt.Errorf("kvload: non-positive duration")
	}
	if c.GetPct < 0 || c.GetPct > 100 {
		return fmt.Errorf("kvload: get percentage %d outside [0,100]", c.GetPct)
	}
	if !(c.ReadFraction >= 0 && c.ReadFraction <= 1) { // inverted to reject NaN
		return fmt.Errorf("kvload: read fraction %v outside [0,1]", c.ReadFraction)
	}
	if c.Keyspace == 0 {
		return fmt.Errorf("kvload: empty keyspace")
	}
	if c.ValueSize <= 0 {
		return fmt.Errorf("kvload: non-positive value size")
	}
	if c.MaxValueSize != 0 && c.MaxValueSize < c.ValueSize {
		return fmt.Errorf("kvload: max value size %d below value size %d", c.MaxValueSize, c.ValueSize)
	}
	if !(c.Affinity >= 0 && c.Affinity <= 1) { // inverted to reject NaN
		return fmt.Errorf("kvload: affinity %v outside [0,1]", c.Affinity)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("kvload: negative batch size %d", c.BatchSize)
	}
	if c.BatchSize > 1 && c.Affinity > 0 {
		return fmt.Errorf("kvload: affinity biasing is per-operation; unsupported with batch size %d", c.BatchSize)
	}
	if c.BatchAdaptive && c.BatchSize <= 1 {
		return fmt.Errorf("kvload: adaptive batching needs a batch ceiling > 1, got %d", c.BatchSize)
	}
	return nil
}

// Result aggregates a run.
type Result struct {
	Ops       uint64
	Gets      uint64
	Sets      uint64
	PerThread []uint64
	Elapsed   time.Duration
	Store     kvstore.Stats
	// PerShard breaks Store down by shard, in shard-index order.
	PerShard []kvstore.Stats
	// LocalOps counts operations whose key routed to a shard homed on
	// the worker's own cluster. Tracked only when Affinity > 0.
	LocalOps uint64
	// Rounds counts batched-worker rounds (one MGet+MSet pair each);
	// zero on the per-op path. Ops/Rounds is the average issued batch
	// size — the observable an adaptive-batch run is judged by.
	Rounds uint64
	// GoAllocs is the number of Go heap objects allocated during the
	// measured window, process-wide (runtime.MemStats.Mallocs delta) —
	// the observable the arena value-memory mode is judged by:
	// GoAllocs/Ops collapses when value churn stops hitting the GC
	// heap.
	GoAllocs uint64
	// GCPauseNs is the total stop-the-world GC pause time accumulated
	// during the window (runtime.MemStats.PauseTotalNs delta), and
	// GCCycles how many collections ran.
	GCPauseNs uint64
	GCCycles  uint32
	// GCAssistNs is the CPU time goroutines spent conscripted into the
	// collector's mark phase during the window (the delta of
	// runtime/metrics /cpu/classes/gc/mark/assist:cpu-seconds). Pauses
	// only count the stop-the-world slices; assist time is the
	// concurrent mark work stolen from the workers themselves, which is
	// where a pointer-heavy index actually taxes throughput — the
	// observable the compact index-memory mode is judged by.
	GCAssistNs uint64
}

// AllocsPerOp reports Go heap allocations per operation over the
// measured window.
func (r Result) AllocsPerOp() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.GoAllocs) / float64(r.Ops)
}

// AvgBatch reports the average issued batch size of a batched run, or
// 0 for per-op runs.
func (r Result) AvgBatch() float64 {
	if r.Rounds == 0 {
		return 0
	}
	return float64(r.Ops) / float64(r.Rounds)
}

// Throughput reports operations per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// Populate pre-fills the store with every key, as seen from p, so the
// measured phase sees memcached's steady state (high hit rate). On a
// ClusterAffine store this fills only p's cluster's shard group; use
// PopulateClusters to warm every cluster's view.
func Populate(s *kvstore.Store, p *numa.Proc, keyspace uint64, valueSize int) {
	val := make([]byte, valueSize)
	for i := range val {
		val[i] = byte(i)
	}
	for k := uint64(0); k < keyspace; k++ {
		s.Set(p, k, val)
	}
}

// PopulateClusters pre-fills the store route-aware: under ClusterAffine
// placement each cluster keeps its own view of the keyspace, so the
// keys are inserted once from a proc of every cluster; otherwise a
// single pass from proc 0 reaches every shard.
func PopulateClusters(s *kvstore.Store, topo *numa.Topology, keyspace uint64, valueSize int) {
	if s.Placement() != kvstore.ClusterAffine || s.NumShards() == 1 {
		Populate(s, topo.Proc(0), keyspace, valueSize)
		return
	}
	for c := 0; c < topo.Clusters(); c++ {
		for id := 0; id < topo.MaxProcs(); id++ {
			if topo.ClusterOf(id) == c {
				Populate(s, topo.Proc(id), keyspace, valueSize)
				break
			}
		}
	}
}

type loadSlot struct {
	ops    uint64
	gets   uint64
	sets   uint64
	local  uint64
	rounds uint64
	_      numa.Pad
}

// adaptEpoch is how many rounds an adaptive batched worker runs at one
// batch size before re-deciding: long enough to average out a stray
// slow call, short enough to track a load shift within a measurement
// window.
const adaptEpoch = 8

// adaptTolerance is the fractional per-op slowdown an adaptive worker
// shrugs off before reversing direction; without it, measurement noise
// alone would bounce the batch size around the walk's every step.
const adaptTolerance = 1.05

// BatchSizer is the adaptive batch policy shared by the load
// generator's batched workers and the server's per-connection flush
// loop: a hill climb over batch size driven by observed per-op
// service time. Grow while per-op time holds or falls (batching is
// paying: each doubling halves the per-op share of lock
// acquisitions), reverse when it degrades past tolerance (the batch
// outgrew MaxBatch's amortization, or contention built up behind the
// store calls). Not safe for concurrent use; each worker or
// connection owns its own sizer.
type BatchSizer struct {
	cur, ceil int
	dir       int // +1 growing, -1 shrinking
	rounds    int
	ops       uint64
	svcNs     int64
	prevPerOp float64
}

// NewBatchSizer builds a sizer walking within [1, ceil], starting at
// 1 — the load generator's shape, where ramping up from single
// operations probes whether batching pays at all.
func NewBatchSizer(ceil int) *BatchSizer {
	return &BatchSizer{cur: 1, ceil: ceil, dir: 1}
}

// NewBatchSizerAt builds a sizer walking within [1, ceil] but seeded
// at start (clamped into range) — the server's shape, where a fresh
// connection's first pipelined burst should flush at the full batch
// bound and only shrink if observed service time degrades.
func NewBatchSizerAt(start, ceil int) *BatchSizer {
	if start > ceil {
		start = ceil
	}
	if start < 1 {
		start = 1
	}
	return &BatchSizer{cur: start, ceil: ceil, dir: 1}
}

// Size reports the current batch size, always within [1, ceil].
func (a *BatchSizer) Size() int { return a.cur }

// Observe records one round's issued ops and service time, and steps
// the batch size at each epoch boundary.
func (a *BatchSizer) Observe(ops int, svc time.Duration) {
	a.rounds++
	a.ops += uint64(ops)
	a.svcNs += svc.Nanoseconds()
	if a.rounds < adaptEpoch {
		return
	}
	perOp := float64(a.svcNs) / float64(a.ops)
	if a.prevPerOp > 0 && perOp > a.prevPerOp*adaptTolerance {
		a.dir = -a.dir
	}
	a.prevPerOp = perOp
	if a.dir > 0 {
		a.cur *= 2
	} else {
		a.cur /= 2
	}
	if a.cur > a.ceil {
		a.cur = a.ceil
	}
	if a.cur < 1 {
		a.cur = 1
	}
	a.rounds, a.ops, a.svcNs = 0, 0, 0
}

// runBatchedWorker is the BatchSize > 1 worker loop: each round draws
// a batch of keys, splits them by the get/set mix, and issues one MGet
// and one MSet — the store amortizes lock acquisitions across each
// shard's group. The per-request non-locked work (think time) is
// still paid once per operation; it is busy-waited in one stretch per
// batch, as a pipelining server would interleave parsing with the
// batched cache pass. Fixed mode issues BatchSize keys every round;
// adaptive mode (Config.BatchAdaptive) sizes each round through a
// BatchSizer hill climb within [1, BatchSize], timing only the store
// calls so think time never pollutes the signal.
func runBatchedWorker(cfg *Config, store *kvstore.Store, p *numa.Proc, sl *loadSlot, getMille int64, stop *atomic.Bool, start chan struct{}) {
	b := cfg.BatchSize
	stride := cfg.ValueSize
	if cfg.MaxValueSize > stride {
		stride = cfg.MaxValueSize
	}
	getKeys := make([]uint64, 0, b)
	setKeys := make([]uint64, 0, b)
	vals := make([][]byte, 0, b)
	valBuf := make([]byte, b*stride)
	dsts := make([][]byte, b)
	dstBuf := make([]byte, b*stride)
	for i := range dsts {
		dsts[i] = dstBuf[i*stride : (i+1)*stride]
	}
	lens := make([]int, b)
	found := make([]bool, b)
	var sizer *BatchSizer
	if cfg.BatchAdaptive {
		sizer = NewBatchSizer(b)
	}
	var sink byte
	<-start
	for !stop.Load() {
		cur := b
		if sizer != nil {
			cur = sizer.Size()
		}
		getKeys, setKeys, vals = getKeys[:0], setKeys[:0], vals[:0]
		var think int64
		for i := 0; i < cur; i++ {
			key := p.Rand() % cfg.Keyspace
			var isGet bool
			if getMille >= 0 {
				isGet = p.RandN(1000) < getMille
			} else {
				isGet = int(p.RandN(100)) < cfg.GetPct
			}
			if isGet {
				getKeys = append(getKeys, key)
			} else {
				vsize := cfg.ValueSize
				if cfg.MaxValueSize > cfg.ValueSize {
					vsize += int(p.RandN(int64(cfg.MaxValueSize - cfg.ValueSize + 1)))
				}
				v := valBuf[len(vals)*stride : len(vals)*stride+vsize]
				v[0] = byte(key)
				v[vsize-1] = sink
				setKeys = append(setKeys, key)
				vals = append(vals, v)
			}
			if cfg.ThinkNs > 0 {
				think += cfg.ThinkNs/2 + p.RandN(cfg.ThinkNs/2+1)
			}
		}
		var began time.Time
		if sizer != nil {
			began = time.Now()
		}
		if len(getKeys) > 0 {
			store.MGet(p, getKeys, dsts[:len(getKeys)], lens[:len(getKeys)], found[:len(getKeys)])
		}
		if len(setKeys) > 0 {
			store.MSet(p, setKeys, vals)
			sl.sets += uint64(len(setKeys))
		}
		if sizer != nil {
			sizer.Observe(cur, time.Since(began))
		}
		if len(getKeys) > 0 {
			for i := range getKeys {
				if found[i] {
					// Response assembly: checksum the payload.
					for _, c := range dsts[i][:lens[i]] {
						sink ^= c
					}
				}
			}
			sl.gets += uint64(len(getKeys))
		}
		spin.WaitNs(think)
		sl.ops += uint64(cur)
		sl.rounds++
	}
}

// Run drives the store with cfg.Threads closed-loop workers.
func Run(cfg Config, store *kvstore.Store) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	spin.Calibrate()
	spin.AutoOversubscribe(cfg.Threads)
	// getMille < 0 selects the original whole-percent draw, keeping
	// GetPct-configured runs identical to the pre-ReadFraction loop.
	getMille := int64(-1)
	if cfg.ReadFraction > 0 {
		getMille = int64(cfg.ReadFraction*1000 + 0.5)
	}
	affinityMille := int64(cfg.Affinity * 1000)
	if store.NumShards() == 1 {
		// Affinity is a documented no-op on single-shard stores; skip
		// its per-op bookkeeping so baselines stay byte-identical to
		// the pre-sharding load path.
		affinityMille = 0
	}
	slots := make([]loadSlot, cfg.Threads)
	var stop atomic.Bool
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < cfg.Threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := cfg.Topo.Proc(id)
			sl := &slots[id]
			if cfg.BatchSize > 1 {
				runBatchedWorker(&cfg, store, p, sl, getMille, &stop, start)
				return
			}
			stride := cfg.ValueSize
			if cfg.MaxValueSize > stride {
				stride = cfg.MaxValueSize
			}
			val := make([]byte, stride)
			dst := make([]byte, stride)
			var sink byte
			// A cluster with no home shard can never satisfy the
			// bias (skip it rather than resample futilely every op),
			// and under ClusterAffine a cluster with home shards is
			// local on every op by construction — neither case needs
			// per-op routing checks in the measured window.
			bias := affinityMille
			alwaysLocal := false
			if !store.HasLocalShard(p) {
				bias = 0
			} else if store.Placement() == kvstore.ClusterAffine {
				alwaysLocal = true
			}
			<-start
			for !stop.Load() {
				key := p.Rand() % cfg.Keyspace
				if affinityMille > 0 && alwaysLocal {
					sl.local++
				} else if bias > 0 {
					local := store.IsLocal(p, key)
					if !local && p.RandN(1000) < bias {
						// Bias toward a shard homed on this worker's
						// cluster; bounded rejection sampling keeps
						// the loop closed even if no key is local.
						for tries := 0; !local && tries < 64; tries++ {
							key = p.Rand() % cfg.Keyspace
							local = store.IsLocal(p, key)
						}
					}
					if local {
						sl.local++
					}
				}
				var isGet bool
				if getMille >= 0 {
					isGet = p.RandN(1000) < getMille
				} else {
					isGet = int(p.RandN(100)) < cfg.GetPct
				}
				if isGet {
					n, ok := store.Get(p, key, dst)
					if ok {
						// Response assembly: checksum the payload.
						for _, b := range dst[:n] {
							sink ^= b
						}
					}
					sl.gets++
				} else {
					v := val
					if cfg.MaxValueSize > cfg.ValueSize {
						v = val[:cfg.ValueSize+int(p.RandN(int64(cfg.MaxValueSize-cfg.ValueSize+1)))]
					}
					v[0] = byte(key)
					v[len(v)-1] = sink
					store.Set(p, key, v)
					sl.sets++
				}
				if cfg.ThinkNs > 0 {
					spin.WaitNs(cfg.ThinkNs/2 + p.RandN(cfg.ThinkNs/2+1))
				}
				sl.ops++
			}
		}(i)
	}
	// Bracket the window with memory statistics so every run reports
	// heap allocations and GC pauses attributable to the measured
	// operations (population noise is excluded; callers GC beforehand).
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	assistBefore := gcAssistNs()
	began := time.Now()
	close(start)
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()
	runtime.ReadMemStats(&msAfter)
	assistAfter := gcAssistNs()

	res := Result{PerThread: make([]uint64, cfg.Threads), Elapsed: time.Since(began)}
	res.GoAllocs = msAfter.Mallocs - msBefore.Mallocs
	res.GCPauseNs = msAfter.PauseTotalNs - msBefore.PauseTotalNs
	res.GCCycles = msAfter.NumGC - msBefore.NumGC
	res.GCAssistNs = assistAfter - assistBefore
	for i := range slots {
		res.PerThread[i] = slots[i].ops
		res.Ops += slots[i].ops
		res.Gets += slots[i].gets
		res.Sets += slots[i].sets
		res.LocalOps += slots[i].local
		res.Rounds += slots[i].rounds
	}
	res.Store = store.Snapshot()
	res.PerShard = make([]kvstore.Stats, store.NumShards())
	for i := range res.PerShard {
		res.PerShard[i] = store.ShardSnapshot(i)
	}
	return res, nil
}

// gcAssistNs reads the cumulative GC mark-assist CPU time in
// nanoseconds. The runtime/metrics name is stable since Go 1.17; an
// unexpected kind (a hypothetical future runtime dropping it) reads as
// zero rather than failing the run.
func gcAssistNs() uint64 {
	sample := []metrics.Sample{{Name: "/cpu/classes/gc/mark/assist:cpu-seconds"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindFloat64 {
		return 0
	}
	return uint64(sample[0].Value.Float64() * 1e9)
}
