package kvload

import (
	"testing"

	"repro/internal/kvstore"
	"repro/internal/locks"
	"repro/internal/numa"
	"repro/internal/spin"
)

// TestHotPathAllocationFree pins the property the allocs/op columns
// rest on: at steady state (caps ratcheted, arena blocks sized) no
// per-operation Go allocation happens anywhere on the measured path —
// not in the store, not in the harness's think/rand helpers. A
// regression here (say, a result variable captured by an escaping
// closure) would inflate every kvbench alloc column and drown the
// heap-vs-arena signal the churn exhibit measures.
func TestHotPathAllocationFree(t *testing.T) {
	topo := numa.New(4, 16)
	p := topo.Proc(0)
	val := make([]byte, 512)
	dst := make([]byte, 512)
	sizes := []int{64, 512, 200, 96, 448}

	stores := map[string]*kvstore.Store{
		"heap": kvstore.New(kvstore.Config{
			Topo: topo, Lock: locks.NewPthread(), Buckets: 1 << 12, Capacity: 1 << 13,
		}),
		"arena": kvstore.New(kvstore.Config{
			Topo: topo, Lock: locks.NewPthread(), Buckets: 1 << 12, Capacity: 1 << 13,
			ValueMemory: kvstore.ValueArena, ArenaBytes: 16 << 20,
		}),
	}
	for name, s := range stores {
		for k := uint64(0); k < 1000; k++ {
			s.Set(p, k, val)
		}
		i := 0
		if n := testing.AllocsPerRun(2000, func() {
			s.Set(p, uint64(i%1000), val[:sizes[i%len(sizes)]])
			i++
		}); n > 0 {
			t.Errorf("%s Set: %.3f allocs/op at steady state, want 0", name, n)
		}
		if n := testing.AllocsPerRun(2000, func() { s.Get(p, 1, dst) }); n > 0 {
			t.Errorf("%s Get: %.3f allocs/op, want 0", name, n)
		}
		if n := testing.AllocsPerRun(2000, func() { s.Delete(p, 999999) }); n > 0 {
			t.Errorf("%s Delete miss: %.3f allocs/op, want 0", name, n)
		}
	}
	if n := testing.AllocsPerRun(2000, func() { spin.WaitNs(1000) }); n > 0 {
		t.Errorf("spin.WaitNs: %.3f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(2000, func() { p.RandN(1000) }); n > 0 {
		t.Errorf("RandN: %.3f allocs/op, want 0", n)
	}
}
