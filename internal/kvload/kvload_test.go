package kvload

import (
	"testing"
	"time"

	"repro/internal/cachesim"
	"repro/internal/kvstore"
	"repro/internal/locks"
	"repro/internal/numa"
)

func fastStore(topo *numa.Topology) *kvstore.Store {
	return kvstore.New(kvstore.Config{
		Topo: topo, Lock: locks.NewPthread(),
		Buckets: 1 << 10, Capacity: 1 << 14,
		Cache:       cachesim.Config{LocalNs: 1, RemoteNs: 1},
		ItemLocalNs: 1, ItemRemoteNs: 1,
	})
}

func fastCfg(topo *numa.Topology, threads, getPct int) Config {
	cfg := DefaultConfig(topo, threads, getPct)
	cfg.Duration = 50 * time.Millisecond
	cfg.Keyspace = 1000
	cfg.ValueSize = 32
	cfg.ThinkNs = 0
	return cfg
}

func TestValidation(t *testing.T) {
	topo := numa.New(4, 8)
	s := fastStore(topo)
	bad := []Config{
		{},
		fastCfgMod(topo, func(c *Config) { c.Threads = 9 }),
		fastCfgMod(topo, func(c *Config) { c.Duration = 0 }),
		fastCfgMod(topo, func(c *Config) { c.GetPct = 101 }),
		fastCfgMod(topo, func(c *Config) { c.GetPct = -1 }),
		fastCfgMod(topo, func(c *Config) { c.Keyspace = 0 }),
		fastCfgMod(topo, func(c *Config) { c.ValueSize = 0 }),
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, s); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func fastCfgMod(topo *numa.Topology, mod func(*Config)) Config {
	cfg := fastCfg(topo, 4, 50)
	mod(&cfg)
	return cfg
}

func TestPopulateFillsKeyspace(t *testing.T) {
	topo := numa.New(4, 8)
	s := fastStore(topo)
	Populate(s, topo.Proc(0), 500, 32)
	if got := s.Len(topo.Proc(0)); got != 500 {
		t.Fatalf("Len = %d, want 500", got)
	}
}

func TestRunMixesOps(t *testing.T) {
	topo := numa.New(4, 8)
	s := fastStore(topo)
	Populate(s, topo.Proc(0), 1000, 32)
	cfg := fastCfg(topo, 8, 90)
	res, err := Run(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no operations")
	}
	if res.Gets+res.Sets != res.Ops {
		t.Fatalf("gets %d + sets %d != ops %d", res.Gets, res.Sets, res.Ops)
	}
	// 90% gets: gets should dominate clearly.
	if res.Gets < res.Sets*3 {
		t.Fatalf("mix off: %d gets vs %d sets at 90%%", res.Gets, res.Sets)
	}
	var sum uint64
	for _, v := range res.PerThread {
		sum += v
	}
	if sum != res.Ops {
		t.Fatal("per-thread sum mismatch")
	}
	if res.Throughput() <= 0 {
		t.Fatal("non-positive throughput")
	}
	// Pre-populated keyspace: gets overwhelmingly hit.
	if res.Store.Hits == 0 {
		t.Fatal("no hits against populated store")
	}
}

func TestRunPureMixes(t *testing.T) {
	topo := numa.New(4, 8)
	for _, pct := range []int{0, 100} {
		s := fastStore(topo)
		Populate(s, topo.Proc(0), 1000, 32)
		res, err := Run(fastCfg(topo, 4, pct), s)
		if err != nil {
			t.Fatal(err)
		}
		if pct == 0 && res.Gets != 0 {
			t.Errorf("0%% gets produced %d gets", res.Gets)
		}
		if pct == 100 && res.Sets != 0 {
			t.Errorf("100%% gets produced %d sets", res.Sets)
		}
	}
}

func TestRunWithCohortLock(t *testing.T) {
	// Integration: KV store under a cohort lock, multi-cluster load.
	topo := numa.New(4, 16)
	s := kvstore.New(kvstore.Config{
		Topo: topo, Lock: lockFromRegistry(topo),
		Buckets: 1 << 10, Capacity: 1 << 14,
		Cache:       cachesim.Config{LocalNs: 1, RemoteNs: 1},
		ItemLocalNs: 1, ItemRemoteNs: 1,
	})
	Populate(s, topo.Proc(0), 1000, 32)
	res, err := Run(fastCfg(topo, 16, 50), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("cohort-locked store made no progress")
	}
}

func lockFromRegistry(topo *numa.Topology) locks.Mutex {
	// Built directly to avoid an import cycle with registry in tests.
	return locks.NewMCS(topo)
}

func shardedStore(topo *numa.Topology, shards int, placement kvstore.Placement) *kvstore.Store {
	return kvstore.New(kvstore.Config{
		Topo:      topo,
		NewLock:   func() locks.Mutex { return locks.NewPthread() },
		Shards:    shards,
		Placement: placement,
		Buckets:   1 << 10, Capacity: 1 << 15,
		Cache:       cachesim.Config{LocalNs: 1, RemoteNs: 1},
		ItemLocalNs: 1, ItemRemoteNs: 1,
	})
}

func TestReadFractionValidationAndMix(t *testing.T) {
	topo := numa.New(4, 8)
	s := fastStore(topo)
	for _, bad := range []float64{-0.1, 1.5} {
		cfg := fastCfg(topo, 4, 50)
		cfg.ReadFraction = bad
		if _, err := Run(cfg, s); err == nil {
			t.Errorf("read fraction %v accepted", bad)
		}
	}
	// ReadFraction overrides GetPct: at 0.99 reads over a GetPct of 0,
	// gets must dominate sets by far more than any whole-percent mix
	// the GetPct field could have produced by accident.
	Populate(s, topo.Proc(0), 1000, 32)
	cfg := fastCfg(topo, 8, 0)
	cfg.ReadFraction = 0.99
	res, err := Run(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Gets == 0 {
		t.Fatal("ReadFraction=0.99 produced no gets")
	}
	if res.Sets*20 > res.Ops {
		t.Fatalf("mix off: %d sets of %d ops at 99%% reads", res.Sets, res.Ops)
	}
	// A genuine RW store under a read-mostly fraction: the shared read
	// path and the load generator compose end-to-end.
	rw := kvstore.New(kvstore.Config{
		Topo:    topo,
		RWLock:  locks.NewRWPerCluster(topo, locks.NewMCS(topo)),
		Buckets: 1 << 10, Capacity: 1 << 14,
		Cache:       cachesim.Config{LocalNs: 1, RemoteNs: 1},
		ItemLocalNs: 1, ItemRemoteNs: 1,
	})
	Populate(rw, topo.Proc(0), 1000, 32)
	res, err = Run(cfg, rw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Store.Hits == 0 {
		t.Fatal("RW store made no progress under read-mostly load")
	}
}

func TestAffinityValidation(t *testing.T) {
	topo := numa.New(4, 8)
	s := fastStore(topo)
	for _, bad := range []float64{-0.1, 1.5} {
		cfg := fastCfg(topo, 4, 50)
		cfg.Affinity = bad
		if _, err := Run(cfg, s); err == nil {
			t.Errorf("affinity %v accepted", bad)
		}
	}
}

func TestPerShardStatsAggregation(t *testing.T) {
	topo := numa.New(4, 8)
	s := shardedStore(topo, 8, kvstore.HashMod)
	PopulateClusters(s, topo, 1000, 32)
	res, err := Run(fastCfg(topo, 8, 50), s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerShard) != 8 {
		t.Fatalf("PerShard has %d entries, want 8", len(res.PerShard))
	}
	var sum kvstore.Stats
	for _, st := range res.PerShard {
		sum.Add(st)
	}
	if sum != res.Store {
		t.Fatalf("shard sum %+v != aggregate %+v", sum, res.Store)
	}
	busy := 0
	for _, st := range res.PerShard {
		if st.Gets+st.Sets > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d shards saw traffic under HashMod", busy)
	}
}

func TestAffinityBiasesKeyChoice(t *testing.T) {
	topo := numa.New(4, 8)
	s := shardedStore(topo, 8, kvstore.HashMod)
	PopulateClusters(s, topo, 1000, 32)
	cfg := fastCfg(topo, 8, 50)
	cfg.Affinity = 1.0
	res, err := Run(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	// With full affinity, rejection sampling should make the large
	// majority of ops land on home shards (~1/4 would be local by
	// chance with 4 clusters).
	if res.LocalOps*2 < res.Ops {
		t.Fatalf("only %d/%d ops local with affinity=1", res.LocalOps, res.Ops)
	}
}

func TestPopulateClustersWarmsAffineViews(t *testing.T) {
	topo := numa.New(4, 8)
	s := shardedStore(topo, 4, kvstore.ClusterAffine)
	PopulateClusters(s, topo, 500, 32)
	dst := make([]byte, 32)
	// Every cluster must hit its own view of the keyspace.
	for id := 0; id < 4; id++ {
		p := topo.Proc(id)
		for k := uint64(0); k < 500; k += 37 {
			if _, ok := s.Get(p, k, dst); !ok {
				t.Fatalf("proc %d (cluster %d) missed key %d after PopulateClusters",
					id, p.Cluster(), k)
			}
		}
	}
}

func TestRunShardedAffine(t *testing.T) {
	topo := numa.New(4, 16)
	s := kvstore.New(kvstore.Config{
		Topo:      topo,
		NewLock:   func() locks.Mutex { return lockFromRegistry(topo) },
		Shards:    8,
		Placement: kvstore.ClusterAffine,
		Buckets:   1 << 10, Capacity: 1 << 15,
		Cache:       cachesim.Config{LocalNs: 1, RemoteNs: 1},
		ItemLocalNs: 1, ItemRemoteNs: 1,
	})
	PopulateClusters(s, topo, 1000, 32)
	res, err := Run(fastCfg(topo, 16, 90), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("sharded affine store made no progress")
	}
	// Warmed views + 90% gets: hits must dominate misses clearly.
	if res.Store.Hits < res.Store.Misses {
		t.Fatalf("hits %d < misses %d against warmed affine store",
			res.Store.Hits, res.Store.Misses)
	}
}

func TestBatchValidation(t *testing.T) {
	topo := numa.New(4, 8)
	s := fastStore(topo)
	for i, cfg := range []Config{
		fastCfgMod(topo, func(c *Config) { c.BatchSize = -1 }),
		fastCfgMod(topo, func(c *Config) { c.BatchSize = 8; c.Affinity = 0.5 }),
	} {
		if _, err := Run(cfg, s); err == nil {
			t.Errorf("bad batch config %d accepted", i)
		}
	}
}

func TestRunBatched(t *testing.T) {
	// The batched pipeline must keep the load generator's accounting
	// exact: worker counters, store statistics and the batch quantum
	// all line up.
	topo := numa.New(4, 8)
	for _, shards := range []int{1, 4} {
		store := kvstore.New(kvstore.Config{
			Topo:    topo,
			NewLock: func() locks.Mutex { return locks.NewPthread() },
			Shards:  shards, MaxBatch: 8,
			Buckets: 1 << 10, Capacity: 1 << 14,
			Cache:       cachesim.Config{LocalNs: 1, RemoteNs: 1},
			ItemLocalNs: 1, ItemRemoteNs: 1,
		})
		Populate(store, topo.Proc(0), 1000, 32)
		cfg := fastCfg(topo, 4, 50)
		cfg.BatchSize = 16
		res, err := Run(cfg, store)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ops == 0 {
			t.Fatalf("%d shards: no batched ops completed", shards)
		}
		if res.Gets+res.Sets != res.Ops {
			t.Fatalf("%d shards: gets %d + sets %d != ops %d", shards, res.Gets, res.Sets, res.Ops)
		}
		if res.Ops%uint64(cfg.BatchSize) != 0 {
			t.Fatalf("%d shards: ops %d is not a multiple of the batch size %d", shards, res.Ops, cfg.BatchSize)
		}
		st := res.Store
		if st.Gets != res.Gets || st.Sets < res.Sets {
			t.Fatalf("%d shards: store saw gets/sets %d/%d, workers issued %d/%d",
				shards, st.Gets, st.Sets, res.Gets, res.Sets)
		}
		if st.Hits+st.Misses != st.Gets {
			t.Fatalf("%d shards: hits %d + misses %d != gets %d", shards, st.Hits, st.Misses, st.Gets)
		}
	}
}

func TestBatchAdaptiveValidation(t *testing.T) {
	topo := numa.New(4, 8)
	s := fastStore(topo)
	for i, cfg := range []Config{
		fastCfgMod(topo, func(c *Config) { c.BatchAdaptive = true }),
		fastCfgMod(topo, func(c *Config) { c.BatchAdaptive = true; c.BatchSize = 1 }),
	} {
		if _, err := Run(cfg, s); err == nil {
			t.Errorf("bad adaptive-batch config %d accepted (adaptive needs a ceiling > 1)", i)
		}
	}
}

func TestBatchSizerWalksWithinBounds(t *testing.T) {
	// The policy in isolation: growth while per-op time falls, reversal
	// when it degrades, and the walk never leaves [1, ceil].
	a := NewBatchSizer(16)
	if a.cur != 1 {
		t.Fatalf("sizer starts at %d, want 1", a.cur)
	}
	// Improving per-op time: 100ns, 90ns, 80ns... must climb to the
	// ceiling and stay there.
	per := 100
	for epoch := 0; epoch < 8; epoch++ {
		for r := 0; r < adaptEpoch; r++ {
			a.Observe(a.cur, time.Duration(per*a.cur))
		}
		if per > 20 {
			per -= 10
		}
		if a.cur < 1 || a.cur > 16 {
			t.Fatalf("epoch %d: batch size %d outside [1,16]", epoch, a.cur)
		}
	}
	if a.cur != 16 {
		t.Fatalf("improving per-op time left the sizer at %d, want ceiling 16", a.cur)
	}
	// A jump to a worse-but-stable per-op time must turn the walk
	// around and keep it shrinking while nothing improves.
	for epoch := 0; epoch < 3; epoch++ {
		for r := 0; r < adaptEpoch; r++ {
			a.Observe(a.cur, time.Duration(1000*per*a.cur))
		}
	}
	if a.cur > 4 {
		t.Fatalf("degraded per-op time never shrank the batch (still %d)", a.cur)
	}
}

func TestRunBatchAdaptive(t *testing.T) {
	// End to end: an adaptive-batch run completes, keeps exact
	// accounting, and reports an average issued batch inside [1, cap].
	topo := numa.New(4, 8)
	store := kvstore.New(kvstore.Config{
		Topo:    topo,
		NewLock: func() locks.Mutex { return locks.NewPthread() },
		Shards:  2, MaxBatch: 8,
		Buckets: 1 << 10, Capacity: 1 << 14,
		Cache:       cachesim.Config{LocalNs: 1, RemoteNs: 1},
		ItemLocalNs: 1, ItemRemoteNs: 1,
	})
	Populate(store, topo.Proc(0), 1000, 32)
	cfg := fastCfg(topo, 4, 50)
	cfg.BatchSize = 16
	cfg.BatchAdaptive = true
	res, err := Run(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Rounds == 0 {
		t.Fatalf("adaptive run did nothing: %d ops over %d rounds", res.Ops, res.Rounds)
	}
	if res.Gets+res.Sets != res.Ops {
		t.Fatalf("gets %d + sets %d != ops %d", res.Gets, res.Sets, res.Ops)
	}
	if avg := res.AvgBatch(); avg < 1 || avg > float64(cfg.BatchSize) {
		t.Fatalf("average issued batch %.2f outside [1,%d]", avg, cfg.BatchSize)
	}
	if st := res.Store; st.Hits+st.Misses != st.Gets {
		t.Fatalf("hits %d + misses %d != gets %d", st.Hits, st.Misses, st.Gets)
	}
	// The fixed path reports its exact quantum as the average.
	cfg.BatchAdaptive = false
	res, err = Run(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	if avg := res.AvgBatch(); avg != float64(cfg.BatchSize) {
		t.Fatalf("fixed-batch average %.2f, want %d", avg, cfg.BatchSize)
	}
}

func TestRunBatchedThroughCombiningExecutor(t *testing.T) {
	// End to end through every new layer: batched load over a store
	// whose shards delegate to combining executors.
	topo := numa.New(4, 8)
	store := kvstore.New(kvstore.Config{
		Topo: topo,
		NewExec: func() locks.Executor {
			return locks.NewCombining(topo, locks.NewMCS(topo))
		},
		Shards: 2, MaxBatch: 8,
		Buckets: 1 << 10, Capacity: 1 << 14,
		Cache:       cachesim.Config{LocalNs: 1, RemoteNs: 1},
		ItemLocalNs: 1, ItemRemoteNs: 1,
	})
	Populate(store, topo.Proc(0), 1000, 32)
	cfg := fastCfg(topo, 6, 90)
	cfg.BatchSize = 8
	res, err := Run(cfg, store)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no ops through the combining executor")
	}
	if res.Store.Gets != res.Gets {
		t.Fatalf("store saw %d gets, workers issued %d", res.Store.Gets, res.Gets)
	}
}

func TestBatchSizerSeededStart(t *testing.T) {
	// The server seeds its per-connection sizer at the ceiling so a
	// fresh connection's first burst flushes at the full batch bound;
	// the walk must still shrink under degradation and stay in range.
	a := NewBatchSizerAt(64, 64)
	if a.Size() != 64 {
		t.Fatalf("seeded sizer starts at %d, want 64", a.Size())
	}
	if got := NewBatchSizerAt(100, 16).Size(); got != 16 {
		t.Fatalf("over-ceiling seed clamped to %d, want 16", got)
	}
	if got := NewBatchSizerAt(0, 16).Size(); got != 1 {
		t.Fatalf("zero seed clamped to %d, want 1", got)
	}
	per := 100
	for epoch := 0; epoch < 4; epoch++ {
		for r := 0; r < adaptEpoch; r++ {
			a.Observe(a.Size(), time.Duration(1000*per*a.Size()))
		}
		per *= 10
		if a.Size() < 1 || a.Size() > 64 {
			t.Fatalf("epoch %d: size %d outside [1,64]", epoch, a.Size())
		}
	}
	if a.Size() >= 64 {
		t.Fatalf("degrading service time never shrank the seeded sizer (still %d)", a.Size())
	}
}
