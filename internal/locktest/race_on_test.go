//go:build race

package locktest

// raceEnabled reports whether the race detector is compiled in. The
// self-tests that hand the harnesses genuinely non-excluding locks
// skip under -race: the exclusion violation they assert on is, by
// design, also a data race, and the detector would fail the run
// before the harness gets to report it.
const raceEnabled = true
