package locktest

// The harnesses are load-bearing CI gates: the registry round-trip
// test pushes every registered lock through them, so a harness that
// silently passes broken locks voids the whole suite. These tests
// feed each harness a deliberately broken implementation and assert
// it fails for exactly the advertised reason — and still passes a
// known-good lock afterwards.

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/locks"
	"repro/internal/numa"
)

// recorder is the TB the self-tests hand to a harness: it records the
// first fatal report and stops the harness goroutine exactly as
// testing.T.Fatalf does.
type recorder struct {
	failed bool
	msg    string
}

func (r *recorder) Helper() {}

func (r *recorder) Fatal(args ...any) { r.fail(fmt.Sprint(args...)) }

func (r *recorder) Fatalf(format string, args ...any) { r.fail(fmt.Sprintf(format, args...)) }

func (r *recorder) fail(msg string) {
	r.failed = true
	r.msg = msg
	runtime.Goexit()
}

// expectFailure runs check against a recorder in its own goroutine
// (so the recorder's Goexit lands somewhere safe) and returns the
// recorded fatal message, failing t if the harness passed.
func expectFailure(t *testing.T, what string, check func(tb TB)) string {
	t.Helper()
	r := &recorder{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		check(r)
	}()
	select {
	case <-done:
	case <-time.After(time.Minute):
		t.Fatalf("%s: harness wedged beyond its own deadline", what)
	}
	if !r.failed {
		t.Fatalf("%s: harness passed a deliberately broken lock", what)
	}
	return r.msg
}

// withDeadline shrinks the harness deadline for tests whose broken
// lock wedges on purpose. Tests in this package run sequentially, so
// swapping the package variable is safe.
func withDeadline(d time.Duration, f func()) {
	old := harnessDeadline
	harnessDeadline = d
	defer func() { harnessDeadline = old }()
	f()
}

// noopLock admits everyone: the canonical exclusion violation.
type noopLock struct{}

func (noopLock) Lock(p *numa.Proc)   {}
func (noopLock) Unlock(p *numa.Proc) {}

// blockLock never grants: the canonical deadlock. Waiters park on a
// channel (rather than spin) so the leaked goroutines cost nothing.
type blockLock struct {
	ch chan struct{}
}

func newBlockLock() blockLock { return blockLock{ch: make(chan struct{})} }

func (l blockLock) Lock(p *numa.Proc)   { <-l.ch }
func (l blockLock) Unlock(p *numa.Proc) {}

// starveLock serves only the aggressor procs (id < 2 on the 2-cluster
// test topology) and wedges everyone else: starvation without an
// exclusion violation.
type starveLock struct {
	mu    sync.Mutex
	never chan struct{}
}

func newStarveLock() *starveLock { return &starveLock{never: make(chan struct{})} }

func (l *starveLock) Lock(p *numa.Proc) {
	if p.ID() >= 2 {
		<-l.never
	}
	l.mu.Lock()
}

func (l *starveLock) Unlock(p *numa.Proc) { l.mu.Unlock() }

// sloppyTry grants every TryLockFor without any exclusion.
type sloppyTry struct{}

func (sloppyTry) TryLockFor(p *numa.Proc, patience time.Duration) bool { return true }
func (sloppyTry) Unlock(p *numa.Proc)                                  {}

// dropExec returns without running the closure: a lost op.
type dropExec struct{}

func (dropExec) Exec(p *numa.Proc, fn func()) {}

// doubleExec runs every closure twice (under a real lock, so the
// failure is double-execution alone, race-detector clean).
type doubleExec struct {
	mu sync.Mutex
}

func (x *doubleExec) Exec(p *numa.Proc, fn func()) {
	x.mu.Lock()
	fn()
	fn()
	x.mu.Unlock()
}

// bareExec runs closures with no exclusion at all.
type bareExec struct{}

func (bareExec) Exec(p *numa.Proc, fn func()) { fn() }

// tornRWExec takes exclusive closures through a real mutex but runs
// shared closures bare: writer exclusion holds, snapshots tear.
type tornRWExec struct {
	mu sync.Mutex
}

func (x *tornRWExec) Exec(p *numa.Proc, fn func()) {
	x.mu.Lock()
	fn()
	x.mu.Unlock()
}

func (x *tornRWExec) ExecShared(p *numa.Proc, fn func()) { fn() }

// serialRWExec serializes shared closures through the same mutex as
// exclusive ones while claiming genuine sharing: correct exclusion,
// broken coexistence.
type serialRWExec struct {
	mu sync.Mutex
}

func (x *serialRWExec) Exec(p *numa.Proc, fn func()) {
	x.mu.Lock()
	fn()
	x.mu.Unlock()
}

func (x *serialRWExec) ExecShared(p *numa.Proc, fn func()) {
	x.mu.Lock()
	fn()
	x.mu.Unlock()
}

func (x *serialRWExec) SharedReads() bool { return true }

// dropSharedExec runs exclusive closures correctly but returns from
// ExecShared without running the closure: lost shared ops.
type dropSharedExec struct {
	mu sync.Mutex
}

func (x *dropSharedExec) Exec(p *numa.Proc, fn func()) {
	x.mu.Lock()
	fn()
	x.mu.Unlock()
}

func (x *dropSharedExec) ExecShared(p *numa.Proc, fn func()) {}

func (x *dropSharedExec) SharedReads() bool { return false }

// brokenReadCombiner is a miniature read-side combiner with a seeded
// defect, shaped like locks.NewRWCombining: readers post closures to a
// queue, one poster elects itself combiner through a gate and drains
// the whole batch, and posters spin until their closure is
// acknowledged. The defect comes in two flavors:
//
//   - drop=false: the combiner runs every harvested read under the
//     EXCLUSIVE mutex while still claiming genuine sharing — shared
//     closures serialize, so the coexistence rendezvous must wedge.
//   - drop=true: the combiner acknowledges every second harvested
//     closure without running it — lost shared ops. (It reports
//     SharedReads false so the rendezvous phase, whose closures it
//     would also drop, is skipped and the failure is attributed to
//     the loss.)
type brokenReadCombiner struct {
	drop   bool
	mu     sync.Mutex // exclusive domain
	gate   sync.Mutex // combiner election
	qmu    sync.Mutex
	q      []postedRead
	parity int
}

type postedRead struct {
	fn   func()
	done chan struct{}
}

func (x *brokenReadCombiner) Exec(p *numa.Proc, fn func()) {
	x.mu.Lock()
	fn()
	x.mu.Unlock()
}

func (x *brokenReadCombiner) ExecShared(p *numa.Proc, fn func()) {
	done := make(chan struct{})
	x.qmu.Lock()
	x.q = append(x.q, postedRead{fn, done})
	x.qmu.Unlock()
	for {
		select {
		case <-done:
			return
		default:
		}
		if x.gate.TryLock() {
			x.combine()
			x.gate.Unlock()
		} else {
			runtime.Gosched()
		}
	}
}

func (x *brokenReadCombiner) combine() {
	x.qmu.Lock()
	batch := x.q
	x.q = nil
	x.qmu.Unlock()
	x.mu.Lock() // the harvest defect: reads run under exclusive mode
	for _, pr := range batch {
		if x.drop {
			x.parity++
			if x.parity%2 == 0 {
				close(pr.done) // acknowledged, never run: a lost op
				continue
			}
		}
		pr.fn()
		close(pr.done)
	}
	x.mu.Unlock()
}

func (x *brokenReadCombiner) SharedReads() bool { return !x.drop }

// tornRW takes writers through a real mutex but lets readers straight
// through: writer exclusion holds, snapshots tear.
type tornRW struct {
	mu sync.Mutex
}

func (l *tornRW) Lock(p *numa.Proc)    { l.mu.Lock() }
func (l *tornRW) Unlock(p *numa.Proc)  { l.mu.Unlock() }
func (l *tornRW) RLock(p *numa.Proc)   {}
func (l *tornRW) RUnlock(p *numa.Proc) {}

func testTopo() *numa.Topology { return numa.New(2, 8) }

// needsViolationObservation skips tests whose broken lock can only be
// caught in the act: under -race the violation is (by design) a data
// race the detector reports first, and without at least two truly
// concurrent processors the tight harness loops never interleave
// mid-critical-section, so even a no-op lock runs cleanly.
func needsViolationObservation(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("a non-excluding lock is a data race by design; the detector fires before the harness")
	}
	if runtime.NumCPU() < 2 || runtime.GOMAXPROCS(0) < 2 {
		t.Skip("observing an exclusion violation needs two truly concurrent processors")
	}
}

func TestCheckMutexCatchesExclusionViolation(t *testing.T) {
	needsViolationObservation(t)
	msg := expectFailure(t, "CheckMutex/noop", func(tb TB) {
		CheckMutex(tb, testTopo(), noopLock{}, 8, 20_000)
	})
	if !strings.Contains(msg, "violated") && !strings.Contains(msg, "lost updates") {
		t.Errorf("unexpected failure message: %q", msg)
	}
}

func TestCheckMutexCatchesDeadlock(t *testing.T) {
	withDeadline(300*time.Millisecond, func() {
		msg := expectFailure(t, "CheckMutex/deadlock", func(tb TB) {
			CheckMutex(tb, testTopo(), newBlockLock(), 4, 10)
		})
		if !strings.Contains(msg, "never finished") {
			t.Errorf("unexpected failure message: %q", msg)
		}
	})
}

func TestCheckTryMutexCatchesViolation(t *testing.T) {
	needsViolationObservation(t)
	expectFailure(t, "CheckTryMutex/sloppy", func(tb TB) {
		CheckTryMutex(tb, testTopo(), sloppyTry{}, 8, 20_000, time.Millisecond)
	})
}

func TestCheckFairnessCatchesStarvation(t *testing.T) {
	withDeadline(300*time.Millisecond, func() {
		msg := expectFailure(t, "CheckFairness/starve", func(tb TB) {
			CheckFairness(tb, testTopo(), newStarveLock(), 6, 10)
		})
		if !strings.Contains(msg, "fairness deadline") {
			t.Errorf("unexpected failure message: %q", msg)
		}
	})
}

func TestCheckRWCatchesTornSnapshots(t *testing.T) {
	needsViolationObservation(t)
	msg := expectFailure(t, "CheckRW/torn", func(tb TB) {
		CheckRW(tb, testTopo(), &tornRW{}, 4, 3, 20_000)
	})
	if !strings.Contains(msg, "torn") && !strings.Contains(msg, "could not hold shared mode") {
		t.Errorf("unexpected failure message: %q", msg)
	}
}

func TestCheckExecCatchesLostOps(t *testing.T) {
	msg := expectFailure(t, "CheckExec/drop", func(tb TB) {
		CheckExec(tb, testTopo(), dropExec{}, 4, 50)
	})
	if !strings.Contains(msg, "lost") {
		t.Errorf("unexpected failure message: %q", msg)
	}
}

func TestCheckExecCatchesDoubleRuns(t *testing.T) {
	msg := expectFailure(t, "CheckExec/double", func(tb TB) {
		CheckExec(tb, testTopo(), &doubleExec{}, 4, 50)
	})
	if !strings.Contains(msg, "more than once") {
		t.Errorf("unexpected failure message: %q", msg)
	}
}

func TestCheckExecCatchesExclusionViolation(t *testing.T) {
	needsViolationObservation(t)
	expectFailure(t, "CheckExec/bare", func(tb TB) {
		CheckExec(tb, testTopo(), bareExec{}, 8, 20_000)
	})
}

func TestCheckRWExecCatchesTornSnapshots(t *testing.T) {
	needsViolationObservation(t)
	msg := expectFailure(t, "CheckRWExec/torn", func(tb TB) {
		CheckRWExec(tb, testTopo(), &tornRWExec{}, 4, 3, 20_000)
	})
	if !strings.Contains(msg, "torn") && !strings.Contains(msg, "could not run together") {
		t.Errorf("unexpected failure message: %q", msg)
	}
}

func TestCheckRWExecCatchesSerializedSharedClosures(t *testing.T) {
	// A claimed-shared executor whose shared closures serialize must
	// wedge the coexistence rendezvous and fail on the deadline. Needs
	// two clusters' closures genuinely in flight at once, which a
	// single-processor scheduler can still provide: the inside closure
	// spins through spin.Poll, which yields.
	withDeadline(300*time.Millisecond, func() {
		msg := expectFailure(t, "CheckRWExec/serialized", func(tb TB) {
			CheckRWExec(tb, testTopo(), &serialRWExec{}, 4, 2, 10)
		})
		if !strings.Contains(msg, "could not run together") && !strings.Contains(msg, "rendezvous") {
			t.Errorf("unexpected failure message: %q", msg)
		}
	})
}

func TestCheckRWExecCatchesLostSharedOps(t *testing.T) {
	msg := expectFailure(t, "CheckRWExec/drop", func(tb TB) {
		CheckRWExec(tb, testTopo(), &dropSharedExec{}, 4, 2, 50)
	})
	if !strings.Contains(msg, "lost") {
		t.Errorf("unexpected failure message: %q", msg)
	}
}

func TestCheckRWExecCatchesExclusiveHarvest(t *testing.T) {
	// A read-combiner that runs its harvested read closures under the
	// exclusive lock serializes shared mode while claiming to share it:
	// the coexistence rendezvous must wedge on the deadline.
	withDeadline(300*time.Millisecond, func() {
		msg := expectFailure(t, "CheckRWExec/exclusive-harvest", func(tb TB) {
			CheckRWExec(tb, testTopo(), &brokenReadCombiner{}, 4, 2, 10)
		})
		if !strings.Contains(msg, "could not run together") && !strings.Contains(msg, "rendezvous") {
			t.Errorf("unexpected failure message: %q", msg)
		}
	})
}

func TestCheckRWExecCatchesDroppedHarvestedClosure(t *testing.T) {
	// A read-combiner that acknowledges a posted read closure without
	// running it must show up as lost ops.
	msg := expectFailure(t, "CheckRWExec/drop-harvested", func(tb TB) {
		CheckRWExec(tb, testTopo(), &brokenReadCombiner{drop: true}, 4, 2, 50)
	})
	if !strings.Contains(msg, "lost") {
		t.Errorf("unexpected failure message: %q", msg)
	}
}

func TestHarnessesPassCorrectImplementations(t *testing.T) {
	// Positive control: the same harnesses must accept known-good
	// implementations, or the failure tests above prove nothing.
	topo := testTopo()
	CheckMutex(t, topo, locks.NewMCS(topo), 8, 100)
	CheckFairness(t, topo, locks.NewMCS(topo), 6, 50)
	CheckRW(t, topo, locks.NewRWPerCluster(topo, locks.NewMCS(topo)), 4, 2, 100)
	CheckExec(t, topo, locks.ExecFromMutex(locks.NewMCS(topo)), 8, 100)
	CheckExec(t, topo, locks.NewCombining(topo, locks.NewMCS(topo)), 8, 100)
	CheckExec(t, topo, locks.NewCombiningAdaptive(topo, locks.NewMCS(topo)), 8, 100)
	CheckRWExec(t, topo, locks.ExecFromRWMutex(locks.NewRWPerCluster(topo, locks.NewMCS(topo))), 4, 2, 100)
	CheckRWExec(t, topo, locks.ExecFromRWMutex(locks.RWFromMutex(locks.NewMCS(topo))), 4, 2, 100)
	CheckRWExec(t, topo, locks.NewRWCombining(topo, locks.NewRWPerCluster(topo, locks.NewMCS(topo))), 4, 2, 100)
	CheckRWExec(t, topo, locks.NewRWCombiningAdaptive(topo, locks.NewRWPerCluster(topo, locks.NewMCS(topo))), 4, 2, 100)
}
