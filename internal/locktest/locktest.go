// Package locktest provides reusable correctness harnesses for the
// lock implementations: mutual-exclusion stress checks for blocking
// and abortable locks, driven through the same Proc handles the real
// harnesses use. Every lock package's tests build on these.
package locktest

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/locks"
	"repro/internal/numa"
	"repro/internal/spin"
)

// TB is the slice of testing.TB the harnesses consume; *testing.T and
// *testing.B satisfy it. Narrowing the dependency to an interface lets
// this package's own tests drive every harness with a recording
// implementation and assert that a deliberately broken lock makes the
// harness fail — the harnesses themselves are load-bearing CI gates,
// so they get the same adversarial coverage as the locks. A TB's
// Fatal/Fatalf must stop the calling goroutine (as testing does via
// runtime.Goexit): harness code does not continue past a fatal report.
type TB interface {
	Helper()
	Fatal(args ...any)
	Fatalf(format string, args ...any)
}

// shared is the critical-section state a harness protects. count is a
// pair of deliberately non-atomic counters: any mutual-exclusion
// violation shows up both as a torn invariant and as a data race under
// the race detector.
type shared struct {
	inCS       atomic.Int32
	violations atomic.Int64
	a, b       int64
}

// enter performs one guarded critical section.
func (s *shared) enter() {
	if s.inCS.Add(1) != 1 {
		s.violations.Add(1)
	}
	s.a++
	if s.a != s.b+1 {
		s.violations.Add(1)
	}
	s.b++
	s.inCS.Add(-1)
}

// harnessDeadline bounds every quota-based harness run: a lock that
// deadlocks or starves a waiter fails within this window instead of
// wedging the suite until the go-test timeout panics. A variable so
// this package's self-tests can shrink the window when exercising
// deliberately wedged locks.
var harnessDeadline = 2 * time.Minute

// awaitWorkers waits for wg within harnessDeadline and fails the test
// with what on expiry.
func awaitWorkers(t TB, wg *sync.WaitGroup, what string) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(harnessDeadline):
		t.Fatal(what)
	}
}

// CheckMutex stress-tests mutual exclusion: procs goroutines each
// acquire m iters times around a shared critical section. It fails the
// test on any exclusion violation or lost update, and on a run that
// outlives the harness deadline (deadlock, lost wakeup, starvation).
func CheckMutex(t TB, topo *numa.Topology, m locks.Mutex, procs, iters int) {
	t.Helper()
	if procs > topo.MaxProcs() {
		t.Fatalf("locktest: %d procs exceeds topology max %d", procs, topo.MaxProcs())
	}
	spin.AutoOversubscribe(procs)
	var s shared
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := topo.Proc(id)
			for k := 0; k < iters; k++ {
				m.Lock(p)
				s.enter()
				m.Unlock(p)
			}
		}(i)
	}
	awaitWorkers(t, &wg, "workers never finished: deadlock, lost wakeup or starvation")
	if v := s.violations.Load(); v != 0 {
		t.Fatalf("mutual exclusion violated %d times", v)
	}
	want := int64(procs * iters)
	if s.a != want || s.b != want {
		t.Fatalf("lost updates: counters (%d,%d), want %d", s.a, s.b, want)
	}
}

// CheckTryMutex stress-tests an abortable lock: procs goroutines each
// attempt iters acquisitions with the given patience; acquired
// sections run the exclusion check, aborted attempts retry nothing. It
// verifies exclusion, that the shared counter equals the number of
// successful acquisitions, and that at least one attempt succeeded.
// It returns (successes, aborts) so callers can assert on abort rates.
func CheckTryMutex(t TB, topo *numa.Topology, m locks.TryMutex, procs, iters int, patience time.Duration) (successes, aborts int64) {
	t.Helper()
	if procs > topo.MaxProcs() {
		t.Fatalf("locktest: %d procs exceeds topology max %d", procs, topo.MaxProcs())
	}
	spin.AutoOversubscribe(procs)
	var s shared
	var okCount, abortCount atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := topo.Proc(id)
			for k := 0; k < iters; k++ {
				if m.TryLockFor(p, patience) {
					s.enter()
					m.Unlock(p)
					okCount.Add(1)
				} else {
					abortCount.Add(1)
				}
			}
		}(i)
	}
	awaitWorkers(t, &wg, "try-lock workers never finished: deadlock, lost wakeup or starvation")
	if v := s.violations.Load(); v != 0 {
		t.Fatalf("mutual exclusion violated %d times", v)
	}
	if got := okCount.Load(); s.a != got || s.b != got {
		t.Fatalf("counters (%d,%d) disagree with %d successful acquisitions", s.a, s.b, got)
	}
	if okCount.Load() == 0 {
		t.Fatal("no acquisition ever succeeded")
	}
	return okCount.Load(), abortCount.Load()
}

// CheckFairness verifies a lock's waits stay bounded under skewed
// load: the first proc of every cluster is an aggressor that
// re-arrives for 10x the quota, and every other worker must still
// complete its iters critical sections within the harness deadline. A
// lock that lets eager re-arrivals starve a waiter (a deferred queue
// node never spliced back, a parked thread never promoted) turns the
// victim's quota into a hang, which the deadline reports as a
// failure. Quotas rather than a wall-clock window keep the check
// independent of scheduler timing (GOMAXPROCS=1 under -race
// legitimately runs workers very unevenly over short windows).
func CheckFairness(t TB, topo *numa.Topology, m locks.Mutex, procs, iters int) {
	t.Helper()
	if procs > topo.MaxProcs() {
		t.Fatalf("locktest: %d procs exceeds topology max %d", procs, topo.MaxProcs())
	}
	spin.AutoOversubscribe(procs)
	var s shared
	var wg sync.WaitGroup
	total := int64(0)
	for i := 0; i < procs; i++ {
		quota := iters
		if i < topo.Clusters() {
			quota = 10 * iters // the cluster's aggressor
		}
		total += int64(quota)
		wg.Add(1)
		go func(id, quota int) {
			defer wg.Done()
			p := topo.Proc(id)
			for k := 0; k < quota; k++ {
				m.Lock(p)
				s.enter()
				m.Unlock(p)
			}
		}(i, quota)
	}
	awaitWorkers(t, &wg, "fairness deadline exceeded: a worker's acquisitions are unbounded-delayed (starvation or lost wakeup)")
	if v := s.violations.Load(); v != 0 {
		t.Fatalf("mutual exclusion violated %d times", v)
	}
	if s.a != total || s.b != total {
		t.Fatalf("lost updates: counters (%d,%d), want %d", s.a, s.b, total)
	}
}

// CheckRW stress-tests a reader-writer lock. Three properties, all
// deadline-guarded like the other harnesses:
//
//   - Writer exclusion: writers hold exclusive mode alone (checked via
//     the same torn-counter shared state as CheckMutex).
//   - Snapshot consistency: readers under shared mode always observe
//     the two counters equal — a writer's mutation is never visible
//     half-done. The counters are deliberately non-atomic, so any
//     reader/writer overlap is also a data race under -race.
//   - Reader concurrency: when the lock genuinely shares reads
//     (locks.SharesReads), one reader per cluster must be able to hold
//     shared mode simultaneously — concurrent readers on distinct
//     clusters make progress instead of serializing. Exclusive
//     adapters (RWFromMutex) skip this phase; serializing readers is
//     their documented behavior.
//
// readers and writers are goroutine counts; procs are assigned
// readers-first so readers land on distinct clusters.
func CheckRW(t TB, topo *numa.Topology, l locks.RWMutex, readers, writers, iters int) {
	t.Helper()
	if readers+writers > topo.MaxProcs() {
		t.Fatalf("locktest: %d workers exceeds topology max %d", readers+writers, topo.MaxProcs())
	}
	spin.AutoOversubscribe(readers + writers)

	// Phase 1: reader concurrency. One reader per cluster enters shared
	// mode and waits until every cluster's reader is inside; a lock
	// that serializes readers wedges here and fails on the deadline.
	if locks.SharesReads(l) {
		want := topo.Clusters()
		if want > readers {
			want = readers
		}
		if want > 1 {
			var inside atomic.Int32
			var stuck atomic.Int32
			var cwg sync.WaitGroup
			deadline := time.Now().Add(harnessDeadline)
			for c := 0; c < want; c++ {
				// Proc c is on cluster c under round-robin placement.
				cwg.Add(1)
				go func(id int) {
					defer cwg.Done()
					p := topo.Proc(id)
					l.RLock(p)
					inside.Add(1)
					for i := 0; inside.Load() < int32(want); i++ {
						if time.Now().After(deadline) {
							stuck.Add(1)
							break
						}
						spin.Poll(i)
					}
					l.RUnlock(p)
				}(c)
			}
			awaitWorkers(t, &cwg, "readers never finished the coexistence rendezvous")
			if stuck.Load() != 0 {
				t.Fatalf("readers on %d clusters could not hold shared mode together", want)
			}
		}
	}

	// Phase 2: writer exclusion and snapshot consistency under churn.
	// Writers mutate the counter pair under exclusive mode; readers
	// under shared mode must always see it consistent.
	var s shared
	var torn atomic.Int64
	var writersDone atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer writersDone.Add(1)
			p := topo.Proc(readers + id)
			for k := 0; k < iters; k++ {
				l.Lock(p)
				s.enter()
				l.Unlock(p)
			}
		}(i)
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := topo.Proc(id)
			// Read until every writer retires its quota, with a floor of
			// iters sections so readers exercise the lock even if the
			// writers finish first.
			for k := 0; k < iters || writersDone.Load() < int32(writers); k++ {
				l.RLock(p)
				if s.a != s.b {
					torn.Add(1)
				}
				l.RUnlock(p)
			}
		}(i)
	}
	awaitWorkers(t, &wg, "rw workers never finished: deadlock, lost wakeup or reader starvation")
	if v := s.violations.Load(); v != 0 {
		t.Fatalf("writer exclusion violated %d times", v)
	}
	if v := torn.Load(); v != 0 {
		t.Fatalf("readers observed %d torn snapshots", v)
	}
	want := int64(writers * iters)
	if s.a != want || s.b != want {
		t.Fatalf("lost updates: counters (%d,%d), want %d", s.a, s.b, want)
	}
}

// CheckExec stress-tests a delegated-execution combiner
// (locks.Executor): procs goroutines each submit iters closures
// through Exec. Deadline-guarded like the other harnesses, it
// verifies:
//
//   - Mutual exclusion of closures: no two posted closures run
//     concurrently, even when a combiner executes other procs'
//     closures on its own thread (the same torn-counter shared state
//     as CheckMutex, so an overlap is also a data race under -race).
//   - No lost or double-run ops: Exec must return only after its own
//     closure ran exactly once. The per-call run counter is written
//     inside the closure and read after Exec returns, so an executor
//     whose completion signal does not happen-after the closure is
//     also a data race.
//   - No lost updates overall: the shared counters equal the total
//     number of submitted closures.
func CheckExec(t TB, topo *numa.Topology, x locks.Executor, procs, iters int) {
	t.Helper()
	if procs > topo.MaxProcs() {
		t.Fatalf("locktest: %d procs exceeds topology max %d", procs, topo.MaxProcs())
	}
	spin.AutoOversubscribe(procs)
	var s shared
	var lost, doubled atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := topo.Proc(id)
			for k := 0; k < iters; k++ {
				runs := 0
				x.Exec(p, func() {
					runs++
					s.enter()
				})
				switch {
				case runs == 0:
					lost.Add(1)
				case runs > 1:
					doubled.Add(1)
				}
			}
		}(i)
	}
	awaitWorkers(t, &wg, "exec workers never finished: combiner deadlock, lost wakeup or starvation")
	if v := lost.Load(); v != 0 {
		t.Fatalf("%d closures were lost (Exec returned before running them)", v)
	}
	if v := doubled.Load(); v != 0 {
		t.Fatalf("%d closures ran more than once", v)
	}
	if v := s.violations.Load(); v != 0 {
		t.Fatalf("closure mutual exclusion violated %d times", v)
	}
	want := int64(procs * iters)
	if s.a != want || s.b != want {
		t.Fatalf("lost updates: counters (%d,%d), want %d", s.a, s.b, want)
	}
}

// CheckRWExec stress-tests a shared-mode executor (locks.RWExecutor):
// delegated execution whose closures come in exclusive and shared
// flavors. Deadline-guarded like the other harnesses, it verifies:
//
//   - Shared coexistence: when the executor genuinely shares reads
//     (locks.SharesExecReads), one shared closure per cluster must be
//     able to run simultaneously — concurrent shared batches make
//     progress instead of serializing. Adapters over exclusive locks
//     skip this phase; serializing shared closures is their documented
//     behavior.
//   - Writer exclusion and snapshot consistency: exclusive closures
//     hold the domain alone (torn-counter state as in CheckMutex), and
//     shared closures always observe the counters equal — an exclusive
//     mutation is never visible half-done. The counters are non-atomic,
//     so any shared/exclusive overlap is also a data race under -race.
//   - No lost or double-run ops in either mode: Exec and ExecShared
//     must return only after their closure ran exactly once, with the
//     closure's effects happening-before the return.
//
// readers and writers are goroutine counts; procs are assigned
// readers-first so shared closures land on distinct clusters.
func CheckRWExec(t TB, topo *numa.Topology, x locks.RWExecutor, readers, writers, iters int) {
	t.Helper()
	if readers+writers > topo.MaxProcs() {
		t.Fatalf("locktest: %d workers exceeds topology max %d", readers+writers, topo.MaxProcs())
	}
	spin.AutoOversubscribe(readers + writers)

	// Phase 1: shared coexistence. One shared closure per cluster
	// rendezvouses inside shared mode; an executor that serializes
	// shared closures wedges here and fails on the deadline.
	if locks.SharesExecReads(x) {
		want := topo.Clusters()
		if want > readers {
			want = readers
		}
		if want > 1 {
			var inside atomic.Int32
			var stuck atomic.Int32
			var cwg sync.WaitGroup
			deadline := time.Now().Add(harnessDeadline)
			for c := 0; c < want; c++ {
				// Proc c is on cluster c under round-robin placement.
				cwg.Add(1)
				go func(id int) {
					defer cwg.Done()
					p := topo.Proc(id)
					x.ExecShared(p, func() {
						inside.Add(1)
						for i := 0; inside.Load() < int32(want); i++ {
							if time.Now().After(deadline) {
								stuck.Add(1)
								break
							}
							spin.Poll(i)
						}
					})
				}(c)
			}
			awaitWorkers(t, &cwg, "shared closures never finished the coexistence rendezvous")
			if stuck.Load() != 0 {
				t.Fatalf("shared closures on %d clusters could not run together", want)
			}
		}
	}

	// Phase 2: exclusive exclusion, snapshot consistency and
	// exactly-once execution under churn.
	var s shared
	var torn, lost, doubled atomic.Int64
	var writersDone atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer writersDone.Add(1)
			p := topo.Proc(readers + id)
			for k := 0; k < iters; k++ {
				runs := 0
				x.Exec(p, func() {
					runs++
					s.enter()
				})
				switch {
				case runs == 0:
					lost.Add(1)
				case runs > 1:
					doubled.Add(1)
				}
			}
		}(i)
	}
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := topo.Proc(id)
			// Read until every writer retires its quota, with a floor of
			// iters closures so shared mode is exercised even if the
			// writers finish first.
			for k := 0; k < iters || writersDone.Load() < int32(writers); k++ {
				runs := 0
				x.ExecShared(p, func() {
					runs++
					if s.a != s.b {
						torn.Add(1)
					}
				})
				switch {
				case runs == 0:
					lost.Add(1)
				case runs > 1:
					doubled.Add(1)
				}
			}
		}(i)
	}
	awaitWorkers(t, &wg, "rw-exec workers never finished: deadlock, lost wakeup or starvation")
	if v := lost.Load(); v != 0 {
		t.Fatalf("%d closures were lost (Exec/ExecShared returned before running them)", v)
	}
	if v := doubled.Load(); v != 0 {
		t.Fatalf("%d closures ran more than once", v)
	}
	if v := s.violations.Load(); v != 0 {
		t.Fatalf("exclusive-closure exclusion violated %d times", v)
	}
	if v := torn.Load(); v != 0 {
		t.Fatalf("shared closures observed %d torn snapshots", v)
	}
	want := int64(writers * iters)
	if s.a != want || s.b != want {
		t.Fatalf("lost updates: counters (%d,%d), want %d", s.a, s.b, want)
	}
}

// CheckHandoff verifies a lock hands over between two specific procs
// repeatedly without losing progress: proc 0 and proc 1 alternate via
// the lock, each completing iters sections within the deadline.
func CheckHandoff(t TB, topo *numa.Topology, m locks.Mutex, iters int) {
	t.Helper()
	spin.AutoOversubscribe(2)
	done := make(chan struct{}, 2)
	var s shared
	for i := 0; i < 2; i++ {
		go func(id int) {
			p := topo.Proc(id)
			for k := 0; k < iters; k++ {
				m.Lock(p)
				s.enter()
				m.Unlock(p)
			}
			done <- struct{}{}
		}(i)
	}
	timeout := time.After(30 * time.Second)
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-timeout:
			t.Fatal("handoff stalled: possible lost wakeup or deadlock")
		}
	}
	if v := s.violations.Load(); v != 0 {
		t.Fatalf("mutual exclusion violated %d times", v)
	}
}
