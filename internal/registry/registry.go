// Package registry maps the paper's lock names to factories, so every
// harness, tool and benchmark selects locks the same way and reports
// them under the paper's nomenclature.
package registry

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/numa"
)

// Entry describes one lock under evaluation.
type Entry struct {
	// Name is the paper's name for the lock (lower-cased).
	Name string
	// Desc is a one-line description for tool output.
	Desc string
	// NewMutex builds a blocking instance; nil for abortable-only locks.
	NewMutex func(topo *numa.Topology) locks.Mutex
	// NewTry builds an abortable instance; nil for non-abortable locks.
	NewTry func(topo *numa.Topology) locks.TryMutex
	// NewRW builds a genuine reader-writer instance (shared mode admits
	// concurrent readers); nil for exclusive-only locks. Exclusive
	// entries still adapt to the RW interface through RWFactory.
	NewRW func(topo *numa.Topology) locks.RWMutex
	// NewExec builds a genuinely combining executor (delegated batches,
	// one underlying acquisition per batch); nil for plain locks, which
	// still adapt to the Executor interface through ExecFactory. Set on
	// the derived comb-* and comb-a-* entries.
	NewExec func(topo *numa.Topology) locks.Executor
	// WrapExec is the derived entry's combining construction with the
	// base lock factored out: WrapExec(topo, m) builds the same
	// executor NewExec would, but over the caller's m. Tools use it to
	// interpose measurement — an acquisition counter — between the
	// combiner and the underlying lock without hardcoding which
	// construction (fixed or adaptive) the entry names. Nil on primary
	// entries.
	WrapExec func(topo *numa.Topology, m locks.Mutex) locks.Executor
	// NewRWExec builds a genuinely combining reader-writer executor
	// (same-cluster shared closures harvested under one RLock per
	// batch, exclusive closures under one Lock); set only on the comb-*
	// twins derived from native RW entries. Entries without it still
	// adapt through RWExecFactory.
	NewRWExec func(topo *numa.Topology) locks.RWExecutor
	// WrapRWExec is NewRWExec with the base lock factored out:
	// WrapRWExec(topo, l) builds the same combining RWExecutor over the
	// caller's l, so tools can interpose measurement — a
	// CountRWAcquisitions wrapper — between the reader-combiner and the
	// underlying lock. Nil wherever NewRWExec is nil.
	WrapRWExec func(topo *numa.Topology, l locks.RWMutex) locks.RWExecutor
	// Base names the entry a derived construction wraps ("" for primary
	// entries); tools use it to build the underlying lock a WrapExec
	// interposition needs.
	Base string
	// Cohort marks the paper's contributed locks.
	Cohort bool
	// Extension marks locks beyond the paper's evaluation set (enabled
	// by the transformation but not part of its figures/tables).
	Extension bool
}

// entries is the master list, in the paper's presentation order.
var entries = []Entry{
	{
		Name: "pthread", Desc: "blocking mutex baseline (sync.Mutex, plays pthread_mutex)",
		NewMutex: func(*numa.Topology) locks.Mutex { return locks.NewPthread() },
	},
	{
		Name: "fib-bo", Desc: "test-and-test-and-set lock with Fibonacci backoff",
		NewMutex: func(*numa.Topology) locks.Mutex { return locks.NewBO(locks.FibBOConfig()) },
	},
	{
		Name: "mcs", Desc: "MCS queue lock (NUMA-oblivious baseline)",
		NewMutex: func(t *numa.Topology) locks.Mutex { return locks.NewMCS(t) },
	},
	{
		Name: "hbo", Desc: "hierarchical backoff lock, microbenchmark-tuned parameters",
		NewMutex: func(*numa.Topology) locks.Mutex { return locks.NewHBO(locks.LBenchHBOConfig()) },
		NewTry:   func(*numa.Topology) locks.TryMutex { return locks.NewHBO(locks.LBenchHBOConfig()) },
	},
	{
		Name: "hbo-tuned", Desc: "hierarchical backoff lock, application-tuned parameters",
		NewMutex: func(*numa.Topology) locks.Mutex { return locks.NewHBO(locks.AppHBOConfig()) },
		NewTry:   func(*numa.Topology) locks.TryMutex { return locks.NewHBO(locks.AppHBOConfig()) },
	},
	{
		Name: "hclh", Desc: "hierarchical CLH lock (Luchangco et al.)",
		NewMutex: func(t *numa.Topology) locks.Mutex { return locks.NewHCLH(t) },
	},
	{
		Name: "fc-mcs", Desc: "flat-combining MCS lock (Dice et al.)",
		NewMutex: func(t *numa.Topology) locks.Mutex { return locks.NewFCMCS(t) },
	},
	{
		Name: "c-bo-bo", Desc: "cohort lock: global BO over local BO (paper §3.1)", Cohort: true,
		NewMutex: func(t *numa.Topology) locks.Mutex { return core.NewCBOBO(t) },
	},
	{
		Name: "c-tkt-tkt", Desc: "cohort lock: global ticket over local ticket (§3.2)", Cohort: true,
		NewMutex: func(t *numa.Topology) locks.Mutex { return core.NewCTKTTKT(t) },
	},
	{
		Name: "c-bo-mcs", Desc: "cohort lock: global BO over local MCS (§3.3)", Cohort: true,
		NewMutex: func(t *numa.Topology) locks.Mutex { return core.NewCBOMCS(t) },
	},
	{
		Name: "c-tkt-mcs", Desc: "cohort lock: global ticket over local MCS (§3.5)", Cohort: true,
		NewMutex: func(t *numa.Topology) locks.Mutex { return core.NewCTKTMCS(t) },
	},
	{
		Name: "c-mcs-mcs", Desc: "cohort lock: global MCS over local MCS (§3.4)", Cohort: true,
		NewMutex: func(t *numa.Topology) locks.Mutex { return core.NewCMCSMCS(t) },
	},
	{
		Name: "c-bo-clh", Desc: "cohort lock: global BO over local CLH (extension, §3's generality claim)", Cohort: true, Extension: true,
		NewMutex: func(t *numa.Topology) locks.Mutex { return core.NewCBOCLH(t) },
	},
	{
		Name: "cna", Desc: "compact NUMA-aware queue lock (Dice & Kogan, EuroSys '19)", Extension: true,
		NewMutex: func(t *numa.Topology) locks.Mutex { return locks.NewCNA(t) },
	},
	{
		Name: "gcr-mcs", Desc: "concurrency restriction (GCR) over the MCS queue lock", Extension: true,
		NewMutex: func(t *numa.Topology) locks.Mutex { return core.NewRestricted(t, locks.NewMCS(t), 0) },
	},
	{
		Name: "gcr-cna", Desc: "concurrency restriction (GCR) over the CNA lock", Extension: true,
		NewMutex: func(t *numa.Topology) locks.Mutex { return core.NewRestricted(t, locks.NewCNA(t), 0) },
	},
	{
		Name: "gcr-c-bo-mcs", Desc: "concurrency restriction (GCR) over the C-BO-MCS cohort lock", Extension: true,
		NewMutex: func(t *numa.Topology) locks.Mutex { return core.NewRestricted(t, core.NewCBOMCS(t), 0) },
	},
	{
		Name: "rw-c-bo-mcs", Desc: "reader-writer cohort lock: per-cluster readers over C-BO-MCS writers", Cohort: true, Extension: true,
		NewMutex: func(t *numa.Topology) locks.Mutex { return core.NewRWCBOMCS(t) },
		NewRW:    func(t *numa.Topology) locks.RWMutex { return core.NewRWCBOMCS(t) },
	},
	{
		Name: "rw-c-tkt-tkt", Desc: "reader-writer cohort lock: per-cluster readers over C-TKT-TKT writers", Cohort: true, Extension: true,
		NewMutex: func(t *numa.Topology) locks.Mutex { return core.NewRWCohort(t, core.NewCTKTTKT(t)) },
		NewRW:    func(t *numa.Topology) locks.RWMutex { return core.NewRWCohort(t, core.NewCTKTTKT(t)) },
	},
	{
		Name: "rw-cna", Desc: "reader-writer lock: per-cluster readers over a CNA writer queue", Extension: true,
		NewMutex: func(t *numa.Topology) locks.Mutex { return locks.NewRWPerCluster(t, locks.NewCNA(t)) },
		NewRW:    func(t *numa.Topology) locks.RWMutex { return locks.NewRWPerCluster(t, locks.NewCNA(t)) },
	},
	{
		Name: "rw-mcs", Desc: "reader-writer lock: per-cluster readers over a plain MCS writer queue", Extension: true,
		NewMutex: func(t *numa.Topology) locks.Mutex { return locks.NewRWPerCluster(t, locks.NewMCS(t)) },
		NewRW:    func(t *numa.Topology) locks.RWMutex { return locks.NewRWPerCluster(t, locks.NewMCS(t)) },
	},
	{
		Name: "a-clh", Desc: "abortable CLH lock (Scott), abortable baseline",
		NewTry: func(t *numa.Topology) locks.TryMutex { return locks.NewACLH(t) },
	},
	{
		Name: "a-hbo", Desc: "abortable hierarchical backoff lock",
		NewTry: func(*numa.Topology) locks.TryMutex { return locks.NewHBO(locks.LBenchHBOConfig()) },
	},
	{
		Name: "a-c-bo-bo", Desc: "abortable cohort lock: global BO over abortable local BO (§3.6.1)", Cohort: true,
		NewTry: func(t *numa.Topology) locks.TryMutex { return core.NewACBOBO(t) },
	},
	{
		Name: "a-c-bo-clh", Desc: "abortable cohort lock: global BO over abortable local CLH (§3.6.2)", Cohort: true,
		NewTry: func(t *numa.Topology) locks.TryMutex { return core.NewACBOCLH(t) },
	},
}

// init derives a comb-<name> and a comb-a-<name> entry for every
// blocking lock: the same construction wrapped in the fixed-policy and
// the load-adaptive combining executor, so every lock in the registry
// — cohort, CNA, GCR, rw-* — is also available as a combining lock in
// both tunings. Derived entries are exec-only (a combining lock cannot
// expose Lock/Unlock: the critical section is delegated, never held by
// the caller) and point back at their base entry, with WrapExec
// exposing the construction itself, for tools that interpose on the
// underlying lock.
//
// Bases with a native RW construction derive the reader-writer twin
// instead: comb-rw-* entries are RWCombining executors whose exclusive
// closures batch exactly as comb-* does, and whose shared closures are
// harvested per cluster under ONE RLock per batch (NewRWExec and
// WrapRWExec expose the shared-aware construction; NewExec returns the
// same executor so exec-shaped consumers get the RW one and can detect
// it). WrapExec stays mutex-shaped for those entries — combining over
// the caller's exclusive lock — so acquisition-counting tools keep one
// interposition seam across the whole comb-* family.
func init() {
	base := make([]Entry, len(entries))
	copy(base, entries)
	for _, e := range base {
		if e.NewMutex == nil {
			continue
		}
		newMutex := e.NewMutex
		comb := Entry{
			Name:      "comb-" + e.Name,
			Desc:      "combining executor over " + e.Name + ": delegated same-cluster batches, one acquisition per batch",
			Base:      e.Name,
			Extension: true,
			WrapExec: func(t *numa.Topology, m locks.Mutex) locks.Executor {
				return locks.NewCombining(t, m)
			},
			NewExec: func(t *numa.Topology) locks.Executor {
				return locks.NewCombining(t, newMutex(t))
			},
		}
		combA := Entry{
			Name:      "comb-a-" + e.Name,
			Desc:      "adaptive combining executor over " + e.Name + ": occupancy-scaled patience and harvest passes",
			Base:      e.Name,
			Extension: true,
			WrapExec: func(t *numa.Topology, m locks.Mutex) locks.Executor {
				return locks.NewCombiningAdaptive(t, m)
			},
			NewExec: func(t *numa.Topology) locks.Executor {
				return locks.NewCombiningAdaptive(t, newMutex(t))
			},
		}
		if e.NewRW != nil {
			newRW := e.NewRW
			comb.Desc = "combining reader-writer executor over " + e.Name + ": batched exclusive closures, same-cluster reads harvested under one RLock"
			comb.NewRWExec = func(t *numa.Topology) locks.RWExecutor {
				return locks.NewRWCombining(t, newRW(t))
			}
			comb.WrapRWExec = func(t *numa.Topology, l locks.RWMutex) locks.RWExecutor {
				return locks.NewRWCombining(t, l)
			}
			comb.NewExec = func(t *numa.Topology) locks.Executor {
				return locks.NewRWCombining(t, newRW(t))
			}
			combA.Desc = "adaptive combining reader-writer executor over " + e.Name + ": occupancy-scaled patience and passes on both modes"
			combA.NewRWExec = func(t *numa.Topology) locks.RWExecutor {
				return locks.NewRWCombiningAdaptive(t, newRW(t))
			}
			combA.WrapRWExec = func(t *numa.Topology, l locks.RWMutex) locks.RWExecutor {
				return locks.NewRWCombiningAdaptive(t, l)
			}
			combA.NewExec = func(t *numa.Topology) locks.Executor {
				return locks.NewRWCombiningAdaptive(t, newRW(t))
			}
		}
		entries = append(entries, comb, combA)
	}
}

// MutexFactory returns a factory that builds independent blocking
// instances of this lock for topo, or nil if the entry is not
// blocking. The factory is safe to call any number of times; every
// call constructs a fresh, unshared lock. Sharded stores use this to
// build one lock per shard from a single registry name.
func (e Entry) MutexFactory(topo *numa.Topology) func() locks.Mutex {
	if e.NewMutex == nil {
		return nil
	}
	return func() locks.Mutex { return e.NewMutex(topo) }
}

// TryFactory is MutexFactory for the abortable interface, or nil if
// the entry is not abortable.
func (e Entry) TryFactory(topo *numa.Topology) func() locks.TryMutex {
	if e.NewTry == nil {
		return nil
	}
	return func() locks.TryMutex { return e.NewTry(topo) }
}

// RWFactory returns a factory building independent reader-writer
// instances of this lock for topo, or nil if the entry cannot lock at
// all. Entries with a native RW construction (NewRW) yield genuinely
// shared readers; exclusive-only entries are adapted through
// locks.RWFromMutex, so every blocking lock in the registry slots into
// an RW-shaped consumer (the kvstore) and keeps its exact exclusive
// behavior (locks.SharesReads reports which case was built).
func (e Entry) RWFactory(topo *numa.Topology) func() locks.RWMutex {
	if e.NewRW != nil {
		return func() locks.RWMutex { return e.NewRW(topo) }
	}
	if e.NewMutex == nil {
		return nil
	}
	return func() locks.RWMutex { return locks.RWFromMutex(e.NewMutex(topo)) }
}

// ExecFactory returns a factory building independent executors of this
// lock for topo, or nil if the entry cannot execute closures at all.
// comb-* entries yield genuinely combining executors (NewExec);
// plain blocking entries adapt through locks.ExecFromMutex — correct,
// one acquisition per closure — so every lock in the registry slots
// into an executor-shaped consumer (locks.Combines reports which case
// was built).
func (e Entry) ExecFactory(topo *numa.Topology) func() locks.Executor {
	if e.NewExec != nil {
		return func() locks.Executor { return e.NewExec(topo) }
	}
	if e.NewMutex == nil {
		return nil
	}
	return func() locks.Executor { return locks.ExecFromMutex(e.NewMutex(topo)) }
}

// RWExecFactory returns a factory building independent shared-mode
// executors of this lock for topo (locks.RWExecutor: exclusive plus
// shared closures), or nil if the entry cannot lock at all. comb-rw-*
// entries yield genuinely combining RW executors (NewRWExec); entries
// with a native RW construction yield one-acquisition-per-closure
// executors whose shared closures genuinely coexist; exclusive-only
// entries serialize them (locks.SharesExecReads reports sharing,
// locks.Combines reports batching).
func (e Entry) RWExecFactory(topo *numa.Topology) func() locks.RWExecutor {
	if e.NewRWExec != nil {
		return func() locks.RWExecutor { return e.NewRWExec(topo) }
	}
	f := e.RWFactory(topo)
	if f == nil {
		return nil
	}
	return func() locks.RWExecutor { return locks.ExecFromRWMutex(f()) }
}

// BuildMutexes constructs n independent blocking instances of this
// lock. It panics if the entry is not blocking; callers select from
// Blocking() or check NewMutex first.
func (e Entry) BuildMutexes(topo *numa.Topology, n int) []locks.Mutex {
	f := e.MutexFactory(topo)
	if f == nil {
		panic(fmt.Sprintf("registry: %s has no blocking factory", e.Name))
	}
	out := make([]locks.Mutex, n)
	for i := range out {
		out[i] = f()
	}
	return out
}

// BuildRWMutexes constructs n independent reader-writer instances of
// this lock (native RW or exclusive-adapted; see RWFactory). It panics
// if the entry cannot lock at all.
func (e Entry) BuildRWMutexes(topo *numa.Topology, n int) []locks.RWMutex {
	f := e.RWFactory(topo)
	if f == nil {
		panic(fmt.Sprintf("registry: %s has no reader-writer factory", e.Name))
	}
	out := make([]locks.RWMutex, n)
	for i := range out {
		out[i] = f()
	}
	return out
}

// All returns every registered entry, in presentation order.
func All() []Entry {
	out := make([]Entry, len(entries))
	copy(out, entries)
	return out
}

// normalize maps user-supplied spellings onto registry names: names
// are registered lower-case, but CLI users type C-BO-MCS as the paper
// prints it.
func normalize(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// Lookup finds an entry by name, case-insensitively.
func Lookup(name string) (Entry, bool) {
	name = normalize(name)
	for _, e := range entries {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// Find is Lookup with a CLI-grade error: unknown names produce a "did
// you mean" suggestion (close or substring matches) plus the full list
// of valid names, so a typo never dead-ends.
func Find(name string) (Entry, error) {
	if e, ok := Lookup(name); ok {
		return e, nil
	}
	var msg strings.Builder
	fmt.Fprintf(&msg, "unknown lock %q", name)
	if s := suggest(normalize(name)); len(s) > 0 {
		fmt.Fprintf(&msg, " — did you mean %s?", strings.Join(s, ", "))
	}
	fmt.Fprintf(&msg, " (valid locks: %s)", strings.Join(Names(), ", "))
	return Entry{}, errors.New(msg.String())
}

// suggest returns registered names within edit distance 2 of name, or
// failing that, names containing (or contained in) it.
func suggest(name string) []string {
	var near, sub []string
	for _, e := range entries {
		if editDistance(name, e.Name) <= 2 {
			near = append(near, e.Name)
		} else if name != "" && (strings.Contains(e.Name, name) || strings.Contains(name, e.Name)) {
			sub = append(sub, e.Name)
		}
	}
	if len(near) > 0 {
		return near
	}
	return sub
}

// editDistance is the Levenshtein distance between a and b, two rows
// at a time; the inputs are short lock names, so no cutoffs needed.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// MustLookup is Lookup that panics on unknown names; tools use it
// after validating flags.
func MustLookup(name string) Entry {
	e, err := Find(name)
	if err != nil {
		panic("registry: " + err.Error())
	}
	return e
}

// Names lists every registered lock name, in presentation order.
func Names() []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Name
	}
	return out
}

// Blocking returns the entries usable as blocking locks, in order.
func Blocking() []Entry {
	var out []Entry
	for _, e := range entries {
		if e.NewMutex != nil {
			out = append(out, e)
		}
	}
	return out
}

// Abortable returns the entries usable as abortable locks, in order.
func Abortable() []Entry {
	var out []Entry
	for _, e := range entries {
		if e.NewTry != nil {
			out = append(out, e)
		}
	}
	return out
}

// RW returns the entries with a native reader-writer construction
// (shared mode admits concurrent readers), in order.
func RW() []Entry {
	var out []Entry
	for _, e := range entries {
		if e.NewRW != nil {
			out = append(out, e)
		}
	}
	return out
}

// RWNames lists the native reader-writer lock names, in presentation
// order — the `rw-*` column set of kvbench's read-path table.
func RWNames() []string {
	var out []string
	for _, e := range RW() {
		out = append(out, e.Name)
	}
	return out
}

// Combining returns the derived comb-* entries (genuinely combining
// executors), in order.
func Combining() []Entry {
	var out []Entry
	for _, e := range entries {
		if e.NewExec != nil {
			out = append(out, e)
		}
	}
	return out
}

// CombiningNames lists the comb-* entry names, in presentation order.
func CombiningNames() []string {
	var out []string
	for _, e := range Combining() {
		out = append(out, e.Name)
	}
	return out
}

// RWCombining returns the derived comb-rw-*/comb-a-rw-* entries
// (genuinely combining reader-writer executors), in order.
func RWCombining() []Entry {
	var out []Entry
	for _, e := range entries {
		if e.NewRWExec != nil {
			out = append(out, e)
		}
	}
	return out
}

// RWCombiningNames lists the comb-rw-*/comb-a-rw-* entry names, in
// presentation order — the read-combining column set of kvbench's
// read-path table.
func RWCombiningNames() []string {
	var out []string
	for _, e := range RWCombining() {
		out = append(out, e.Name)
	}
	return out
}

// Figure2Names lists the locks of the paper's Figures 2-5, in legend
// order.
func Figure2Names() []string {
	return []string{"mcs", "hbo", "hclh", "fc-mcs",
		"c-bo-bo", "c-tkt-tkt", "c-bo-mcs", "c-tkt-mcs", "c-mcs-mcs"}
}

// Figure6Names lists the abortable locks of Figure 6.
func Figure6Names() []string {
	return []string{"a-clh", "a-hbo", "a-c-bo-bo", "a-c-bo-clh"}
}

// TableNames lists the lock columns of Tables 1 and 2, exactly as the
// paper prints them; tools that also want the post-paper locks append
// from ExtensionNames (kvbench does).
func TableNames() []string {
	return []string{"pthread", "fib-bo", "mcs", "hbo", "hbo-tuned", "fc-mcs",
		"c-bo-bo", "c-tkt-tkt", "c-bo-mcs", "c-tkt-mcs", "c-mcs-mcs"}
}

// ExtensionNames lists the blocking locks beyond the paper's
// evaluation set, in presentation order.
func ExtensionNames() []string {
	var out []string
	for _, e := range entries {
		if e.Extension && e.NewMutex != nil {
			out = append(out, e.Name)
		}
	}
	return out
}
