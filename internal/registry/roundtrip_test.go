package registry

import (
	"testing"
	"time"

	"repro/internal/locks"
	"repro/internal/locktest"
	"repro/internal/numa"
)

// TestEveryBlockingEntryPassesLocktest round-trips every registered
// blocking lock through the mutual-exclusion harness at 2 clusters × 8
// procs. Registering a lock is enough to get it exercised here (and
// under -race in CI), so a future entry whose factory builds a broken
// instance fails the suite without any new test code.
func TestEveryBlockingEntryPassesLocktest(t *testing.T) {
	for _, e := range All() {
		if e.NewMutex == nil {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			topo := numa.New(2, 8)
			locktest.CheckMutex(t, topo, e.NewMutex(topo), 8, 150)
		})
	}
}

// TestEveryAbortableEntryPassesLocktest is the same automatic gate for
// the abortable factories.
func TestEveryAbortableEntryPassesLocktest(t *testing.T) {
	for _, e := range All() {
		if e.NewTry == nil {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			topo := numa.New(2, 8)
			locktest.CheckTryMutex(t, topo, e.NewTry(topo), 8, 150, 200*time.Microsecond)
		})
	}
}

// TestEveryRWEntryPassesLocktest round-trips every registered
// reader-writer factory through locktest.CheckRW: writer exclusion,
// torn-snapshot detection, and genuine cross-cluster reader
// concurrency, automatically for any future rw-* registration.
func TestEveryRWEntryPassesLocktest(t *testing.T) {
	for _, e := range All() {
		if e.NewRW == nil {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			topo := numa.New(2, 8)
			locktest.CheckRW(t, topo, e.NewRW(topo), 5, 3, 150)
		})
	}
}

// TestRWFactoryAdaptsExclusiveEntries verifies the degradation path:
// an exclusive-only entry still yields a correct RWMutex through
// RWFactory (readers serialized), and reports itself as such.
func TestRWFactoryAdaptsExclusiveEntries(t *testing.T) {
	for _, name := range []string{"mcs", "c-bo-mcs", "pthread"} {
		e := MustLookup(name)
		t.Run(name, func(t *testing.T) {
			topo := numa.New(2, 8)
			l := e.RWFactory(topo)()
			if locks.SharesReads(l) {
				t.Fatalf("%s has no native RW construction but its adapter claims shared reads", name)
			}
			locktest.CheckRW(t, topo, l, 5, 3, 150)
		})
	}
}

// TestEveryExecEntryPassesLocktest round-trips every derived comb-*
// factory through locktest.CheckExec: closure mutual exclusion, no
// lost or double-run ops, deadline-guarded — automatically for any
// future blocking registration (each gains a comb-* twin).
func TestEveryExecEntryPassesLocktest(t *testing.T) {
	for _, e := range All() {
		if e.NewExec == nil {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			topo := numa.New(2, 8)
			locktest.CheckExec(t, topo, e.NewExec(topo), 8, 150)
		})
	}
}

// TestExecFactoryAdaptsMutexEntries verifies the degradation path: a
// plain blocking entry still yields a correct Executor through
// ExecFactory (one acquisition per closure), and reports itself as
// non-combining.
func TestExecFactoryAdaptsMutexEntries(t *testing.T) {
	for _, name := range []string{"mcs", "c-bo-mcs", "pthread"} {
		e := MustLookup(name)
		t.Run(name, func(t *testing.T) {
			topo := numa.New(2, 8)
			x := e.ExecFactory(topo)()
			if locks.Combines(x) {
				t.Fatalf("%s adapts through ExecFromMutex but claims to combine", name)
			}
			locktest.CheckExec(t, topo, x, 8, 150)
		})
	}
	for _, name := range []string{"comb-mcs", "comb-c-bo-mcs"} {
		if x := MustLookup(name).ExecFactory(numa.New(2, 4))(); !locks.Combines(x) {
			t.Fatalf("%s does not claim to combine", name)
		}
	}
}

// TestEveryRWExecFactoryPassesLocktest round-trips every lockable
// entry's shared-mode executor (RWExecFactory: the combining
// RWCombining construction for comb-rw-* entries, ExecFromRWMutex over
// the entry's RW face otherwise) through locktest.CheckRWExec:
// concurrent shared batches coexist where sharing is genuine,
// exclusive closures exclude them, no lost or double-run ops —
// automatically for any future registration.
func TestEveryRWExecFactoryPassesLocktest(t *testing.T) {
	for _, e := range All() {
		if e.NewRW == nil && e.NewMutex == nil && e.NewRWExec == nil {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			topo := numa.New(2, 8)
			x := e.RWExecFactory(topo)()
			want := e.NewRW != nil || e.NewRWExec != nil
			if got := locks.SharesExecReads(x); got != want {
				t.Fatalf("SharesExecReads = %v, want %v (NewRW %v, NewRWExec %v)",
					got, want, e.NewRW != nil, e.NewRWExec != nil)
			}
			if got, want := locks.Combines(x), e.NewRWExec != nil; got != want {
				t.Fatalf("Combines = %v, want %v (NewRWExec %v)", got, want, e.NewRWExec != nil)
			}
			locktest.CheckRWExec(t, topo, x, 5, 3, 150)
		})
	}
}

// TestNewLocksSatisfyFairnessHarness runs the extension locks through
// the starvation check: every proc must complete its quota despite
// CNA's deferral and GCR's admission throttling.
func TestNewLocksSatisfyFairnessHarness(t *testing.T) {
	for _, name := range []string{"cna", "gcr-mcs", "gcr-cna", "gcr-c-bo-mcs"} {
		e := MustLookup(name)
		t.Run(name, func(t *testing.T) {
			topo := numa.New(2, 8)
			locktest.CheckFairness(t, topo, e.NewMutex(topo), 8, 200)
		})
	}
}
