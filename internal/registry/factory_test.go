package registry

import (
	"testing"
	"time"

	"repro/internal/locktest"
	"repro/internal/numa"
)

// The sharded store builds many lock instances from one registry name,
// so the factories must be repeatable, and every instance they produce
// must be an independent, correct lock.

func TestNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.Name] {
			t.Errorf("duplicate registry name %q", e.Name)
		}
		seen[e.Name] = true
	}
}

func TestMutexFactoriesSmoke(t *testing.T) {
	topo := numa.New(4, 4)
	for _, e := range Blocking() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			f := e.MutexFactory(topo)
			if f == nil {
				t.Fatal("Blocking() entry has nil MutexFactory")
			}
			locktest.CheckMutex(t, topo, f(), 4, 200)
		})
	}
}

func TestTryFactoriesSmoke(t *testing.T) {
	topo := numa.New(4, 4)
	for _, e := range Abortable() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			f := e.TryFactory(topo)
			if f == nil {
				t.Fatal("Abortable() entry has nil TryFactory")
			}
			locktest.CheckTryMutex(t, topo, f(), 4, 200, 50*time.Millisecond)
		})
	}
}

func TestFactoriesRepeatable(t *testing.T) {
	// Per-shard construction calls the factory many times; instances
	// must be distinct and independent: holding one must not block
	// acquiring another.
	topo := numa.New(4, 4)
	for _, e := range Blocking() {
		f := e.MutexFactory(topo)
		a, b := f(), f()
		if a == b {
			t.Errorf("%s: factory returned the same instance twice", e.Name)
			continue
		}
		p := topo.Proc(0)
		a.Lock(p)
		b.Lock(p) // would deadlock if a and b shared state
		b.Unlock(p)
		a.Unlock(p)
	}
}

func TestFactoryNilForMissingInterface(t *testing.T) {
	topo := numa.New(2, 2)
	for _, e := range All() {
		if e.NewMutex == nil && e.MutexFactory(topo) != nil {
			t.Errorf("%s: MutexFactory non-nil without NewMutex", e.Name)
		}
		if e.NewTry == nil && e.TryFactory(topo) != nil {
			t.Errorf("%s: TryFactory non-nil without NewTry", e.Name)
		}
		if e.NewMutex == nil && e.NewExec == nil && e.ExecFactory(topo) != nil {
			t.Errorf("%s: ExecFactory non-nil without NewMutex or NewExec", e.Name)
		}
	}
}

func TestExecFactoriesRepeatable(t *testing.T) {
	// The batched kvstore builds one executor per shard; instances must
	// be distinct and independent, combining and adapted alike.
	topo := numa.New(4, 4)
	p := topo.Proc(0)
	for _, name := range []string{"comb-c-bo-mcs", "comb-mcs", "mcs"} {
		e := MustLookup(name)
		f := e.ExecFactory(topo)
		if f == nil {
			t.Errorf("%s: nil ExecFactory", name)
			continue
		}
		a, b := f(), f()
		if a == b {
			t.Errorf("%s: exec factory returned the same instance twice", name)
			continue
		}
		// Nested Exec across *distinct* instances must not deadlock —
		// shared state between them would.
		ran := false
		a.Exec(p, func() {
			b.Exec(p, func() { ran = true })
		})
		if !ran {
			t.Errorf("%s: closure through two independent executors never ran", name)
		}
	}
}

func TestRWFactoriesRepeatable(t *testing.T) {
	// The RW kvstore path builds one RW lock per shard; instances must
	// be distinct and independent, native and adapted alike.
	topo := numa.New(4, 4)
	for _, e := range Blocking() {
		f := e.RWFactory(topo)
		if f == nil {
			t.Errorf("%s: blocking entry has nil RWFactory", e.Name)
			continue
		}
		a, b := f(), f()
		if a == b {
			t.Errorf("%s: RW factory returned the same instance twice", e.Name)
			continue
		}
		p := topo.Proc(0)
		a.Lock(p)
		b.RLock(p) // would deadlock if a and b shared state
		b.RUnlock(p)
		a.Unlock(p)
	}
}

func TestBuildRWMutexes(t *testing.T) {
	topo := numa.New(4, 4)
	for _, name := range []string{"rw-cna", "mcs"} { // native and adapted
		ms := MustLookup(name).BuildRWMutexes(topo, 4)
		if len(ms) != 4 {
			t.Fatalf("%s: BuildRWMutexes returned %d locks, want 4", name, len(ms))
		}
		for i, m := range ms {
			if m == nil {
				t.Fatalf("%s: instance %d is nil", name, i)
			}
			for j := i + 1; j < len(ms); j++ {
				if m == ms[j] {
					t.Fatalf("%s: instances %d and %d are the same lock", name, i, j)
				}
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("BuildRWMutexes on a try-only entry did not panic")
		}
	}()
	MustLookup("a-clh").BuildRWMutexes(topo, 1)
}

func TestBuildMutexes(t *testing.T) {
	topo := numa.New(4, 4)
	e := MustLookup("c-bo-mcs")
	ms := e.BuildMutexes(topo, 8)
	if len(ms) != 8 {
		t.Fatalf("BuildMutexes returned %d locks, want 8", len(ms))
	}
	for i, m := range ms {
		if m == nil {
			t.Fatalf("instance %d is nil", i)
		}
		for j := i + 1; j < len(ms); j++ {
			if m == ms[j] {
				t.Fatalf("instances %d and %d are the same lock", i, j)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("BuildMutexes on a try-only entry did not panic")
		}
	}()
	MustLookup("a-clh").BuildMutexes(topo, 1)
}
