package registry

import (
	"testing"

	"repro/internal/numa"
)

func TestAllEntriesBuildable(t *testing.T) {
	topo := numa.New(4, 8)
	for _, e := range All() {
		if e.NewMutex == nil && e.NewTry == nil {
			t.Errorf("%s: no factory at all", e.Name)
		}
		if e.NewMutex != nil {
			if m := e.NewMutex(topo); m == nil {
				t.Errorf("%s: NewMutex returned nil", e.Name)
			}
		}
		if e.NewTry != nil {
			if m := e.NewTry(topo); m == nil {
				t.Errorf("%s: NewTry returned nil", e.Name)
			}
		}
		if e.Desc == "" {
			t.Errorf("%s: missing description", e.Name)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("c-bo-mcs"); !ok {
		t.Error("c-bo-mcs not found")
	}
	if _, ok := Lookup("nonsense"); ok {
		t.Error("nonsense lock found")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustLookup on unknown name did not panic")
		}
	}()
	MustLookup("nonsense")
}

func TestFigureAndTableNamesResolve(t *testing.T) {
	for _, name := range Figure2Names() {
		e := MustLookup(name)
		if e.NewMutex == nil {
			t.Errorf("Figure 2 lock %s is not blocking", name)
		}
	}
	for _, name := range Figure6Names() {
		e := MustLookup(name)
		if e.NewTry == nil {
			t.Errorf("Figure 6 lock %s is not abortable", name)
		}
	}
	for _, name := range TableNames() {
		e := MustLookup(name)
		if e.NewMutex == nil {
			t.Errorf("Table lock %s is not blocking", name)
		}
	}
}

func TestFigure2IncludesAllCohortBlockingLocks(t *testing.T) {
	want := map[string]bool{}
	for _, e := range Blocking() {
		if e.Cohort && !e.Extension {
			want[e.Name] = false
		}
	}
	for _, n := range Figure2Names() {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("cohort lock %s missing from Figure 2 set", name)
		}
	}
}

func TestBlockingAbortablePartition(t *testing.T) {
	blocking := Blocking()
	abortable := Abortable()
	if len(blocking) == 0 || len(abortable) == 0 {
		t.Fatal("expected both blocking and abortable entries")
	}
	// Exactly the five cohort blocking locks are marked Cohort among
	// blocking entries.
	n := 0
	for _, e := range blocking {
		if e.Cohort {
			n++
		}
	}
	if n != 6 {
		t.Errorf("blocking cohort locks = %d, want 6", n)
	}
	n = 0
	for _, e := range abortable {
		if e.Cohort {
			n++
		}
	}
	if n != 2 {
		t.Errorf("abortable cohort locks = %d, want 2", n)
	}
}

func TestAllReturnsCopy(t *testing.T) {
	a := All()
	a[0].Name = "mutated"
	if entries[0].Name == "mutated" {
		t.Error("All() exposes internal slice")
	}
}
