package registry

import (
	"strings"
	"testing"

	"repro/internal/locks"
	"repro/internal/numa"
)

func TestAllEntriesBuildable(t *testing.T) {
	topo := numa.New(4, 8)
	for _, e := range All() {
		if e.NewMutex == nil && e.NewTry == nil && e.NewExec == nil {
			t.Errorf("%s: no factory at all", e.Name)
		}
		if e.NewMutex != nil {
			if m := e.NewMutex(topo); m == nil {
				t.Errorf("%s: NewMutex returned nil", e.Name)
			}
		}
		if e.NewTry != nil {
			if m := e.NewTry(topo); m == nil {
				t.Errorf("%s: NewTry returned nil", e.Name)
			}
		}
		if e.NewExec != nil {
			if x := e.NewExec(topo); x == nil {
				t.Errorf("%s: NewExec returned nil", e.Name)
			}
		}
		if e.Desc == "" {
			t.Errorf("%s: missing description", e.Name)
		}
	}
}

func TestCombiningEntriesDerived(t *testing.T) {
	// Every blocking lock must have a comb-* twin, and every comb-*
	// entry must point back at a blocking base.
	byName := map[string]Entry{}
	for _, e := range All() {
		byName[e.Name] = e
	}
	for _, e := range All() {
		if e.NewMutex == nil {
			continue
		}
		for _, prefix := range []string{"comb-", "comb-a-"} {
			comb, ok := byName[prefix+e.Name]
			if !ok {
				t.Errorf("blocking lock %s has no %s%s entry", e.Name, prefix, e.Name)
				continue
			}
			if comb.NewExec == nil || comb.WrapExec == nil || comb.Base != e.Name || !comb.Extension {
				t.Errorf("%s%s: want NewExec+WrapExec set, Base=%q, Extension", prefix, e.Name, e.Name)
			}
			if comb.NewMutex != nil || comb.NewTry != nil || comb.NewRW != nil {
				t.Errorf("%s%s: derived entries are exec-only", prefix, e.Name)
			}
			// Native RW bases derive the reader-writer twin: the shared
			// side (NewRWExec + the WrapRWExec interposition seam) must
			// be present exactly there.
			if rw := e.NewRW != nil; (comb.NewRWExec != nil) != rw || (comb.WrapRWExec != nil) != rw {
				t.Errorf("%s%s: NewRWExec/WrapRWExec presence should match the base's NewRW (%v)", prefix, e.Name, rw)
			}
		}
	}
	// The two derivations differ in policy: comb-a-* executors expose
	// an occupancy estimate, comb-* executors do not.
	topo := numa.New(2, 4)
	if _, ok := locks.EstimateOccupancy(byName["comb-a-mcs"].NewExec(topo)); !ok {
		t.Error("comb-a-mcs executor has no occupancy estimate")
	}
	if _, ok := locks.EstimateOccupancy(byName["comb-mcs"].NewExec(topo)); ok {
		t.Error("comb-mcs executor claims an occupancy estimate")
	}
	// The RW twins carry both policies too, and their NewExec returns
	// the same shared-aware executor NewRWExec does, so exec-shaped
	// consumers (the kvstore seam) can detect the shared mode.
	if _, ok := locks.EstimateOccupancy(byName["comb-a-rw-mcs"].NewExec(topo)); !ok {
		t.Error("comb-a-rw-mcs executor has no occupancy estimate")
	}
	if x, ok := byName["comb-rw-mcs"].NewExec(topo).(locks.RWExecutor); !ok {
		t.Error("comb-rw-mcs NewExec does not build an RWExecutor")
	} else if !locks.SharesExecReads(x) {
		t.Error("comb-rw-mcs executor does not claim shared reads")
	}
	if names := RWCombiningNames(); len(names) != 2*len(RW()) {
		t.Errorf("RWCombiningNames lists %d entries, want %d (two twins per native RW base)", len(names), 2*len(RW()))
	}
	for _, e := range Combining() {
		base, ok := byName[e.Base]
		if !ok || base.NewMutex == nil {
			t.Errorf("%s: Base %q is not a blocking entry", e.Name, e.Base)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("c-bo-mcs"); !ok {
		t.Error("c-bo-mcs not found")
	}
	if _, ok := Lookup("nonsense"); ok {
		t.Error("nonsense lock found")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustLookup on unknown name did not panic")
		}
	}()
	MustLookup("nonsense")
}

func TestLookupNormalizesCase(t *testing.T) {
	// CLI users type names as the paper prints them.
	for _, name := range []string{"C-BO-MCS", "c-bo-mcs", " c-bo-mcs ", "CNA", "GCR-MCS"} {
		if _, ok := Lookup(name); !ok {
			t.Errorf("Lookup(%q) failed; names should be case- and space-insensitive", name)
		}
	}
}

func TestFindErrors(t *testing.T) {
	if _, err := Find("c-bo-mcs"); err != nil {
		t.Fatalf("Find on a valid name errored: %v", err)
	}
	if _, err := Find("C-BO-MCS"); err != nil {
		t.Fatalf("Find should normalize case: %v", err)
	}
	_, err := Find("c-bo-mc") // one edit away
	if err == nil {
		t.Fatal("Find on a typo did not error")
	}
	msg := err.Error()
	for _, want := range []string{"did you mean", "c-bo-mcs", "valid locks"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
	// A hopeless name still lists the valid set, without suggestions.
	_, err = Find("zzzzzzzzzz")
	if err == nil {
		t.Fatal("Find on garbage did not error")
	}
	if strings.Contains(err.Error(), "did you mean") {
		t.Errorf("garbage name produced a suggestion: %v", err)
	}
	if !strings.Contains(err.Error(), "valid locks") {
		t.Errorf("error %q does not list valid locks", err)
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"mcs", "mcs", 0},
		{"mcs", "mc", 1},
		{"cna", "clh", 2},
		{"c-bo-mcs", "c-bo-bo", 3},
	}
	for _, c := range cases {
		if got := editDistance(c.a, c.b); got != c.want {
			t.Errorf("editDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestExtensionNames(t *testing.T) {
	names := ExtensionNames()
	want := map[string]bool{"cna": false, "gcr-mcs": false, "gcr-cna": false, "gcr-c-bo-mcs": false}
	for _, n := range names {
		e := MustLookup(n)
		if !e.Extension || e.NewMutex == nil {
			t.Errorf("%s listed as blocking extension but is not", n)
		}
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("extension lock %s missing from ExtensionNames", n)
		}
	}
}

func TestFigureAndTableNamesResolve(t *testing.T) {
	for _, name := range Figure2Names() {
		e := MustLookup(name)
		if e.NewMutex == nil {
			t.Errorf("Figure 2 lock %s is not blocking", name)
		}
	}
	for _, name := range Figure6Names() {
		e := MustLookup(name)
		if e.NewTry == nil {
			t.Errorf("Figure 6 lock %s is not abortable", name)
		}
	}
	for _, name := range TableNames() {
		e := MustLookup(name)
		if e.NewMutex == nil {
			t.Errorf("Table lock %s is not blocking", name)
		}
	}
}

func TestFigure2IncludesAllCohortBlockingLocks(t *testing.T) {
	want := map[string]bool{}
	for _, e := range Blocking() {
		if e.Cohort && !e.Extension {
			want[e.Name] = false
		}
	}
	for _, n := range Figure2Names() {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("cohort lock %s missing from Figure 2 set", name)
		}
	}
}

func TestBlockingAbortablePartition(t *testing.T) {
	blocking := Blocking()
	abortable := Abortable()
	if len(blocking) == 0 || len(abortable) == 0 {
		t.Fatal("expected both blocking and abortable entries")
	}
	// The paper's five blocking cohort locks, the C-BO-CLH extension,
	// and the two reader-writer cohort locks are marked Cohort among
	// blocking entries.
	n := 0
	for _, e := range blocking {
		if e.Cohort {
			n++
		}
	}
	if n != 8 {
		t.Errorf("blocking cohort locks = %d, want 8", n)
	}
	n = 0
	for _, e := range abortable {
		if e.Cohort {
			n++
		}
	}
	if n != 2 {
		t.Errorf("abortable cohort locks = %d, want 2", n)
	}
}

func TestAllReturnsCopy(t *testing.T) {
	a := All()
	a[0].Name = "mutated"
	if entries[0].Name == "mutated" {
		t.Error("All() exposes internal slice")
	}
}
