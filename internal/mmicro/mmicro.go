// Package mmicro is the paper's malloc stress benchmark (§4.3, citing
// Dice & Garthwaite's mmicro): each thread repeatedly allocates a
// 64-byte block, initializes its first four words, and frees it, with
// an artificial ~4 µs delay after each of the two calls so waiting
// threads can overlap with the critical sections. It reports
// malloc-free pairs per millisecond, Table 2's unit.
package mmicro

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/locks"
	"repro/internal/numa"
	"repro/internal/spin"
)

// Config describes one mmicro run.
type Config struct {
	Topo *numa.Topology
	// Threads is the worker count (paper: 1..255).
	Threads int
	// Duration is the measurement window (paper: 10 s).
	Duration time.Duration
	// BlockSize is the allocation size (paper: 64 bytes).
	BlockSize int
	// InitWords is how many 8-byte words each thread writes into a
	// fresh block (paper: "the first 4 words").
	InitWords int
	// DelayNs is the artificial delay after each malloc and each free
	// (paper: about 4 µs).
	DelayNs int64
	// ArenaBytes sizes the allocator arena.
	ArenaBytes int
}

// DefaultConfig mirrors the paper's parameters with a short window.
func DefaultConfig(topo *numa.Topology, threads int) Config {
	return Config{
		Topo:       topo,
		Threads:    threads,
		Duration:   300 * time.Millisecond,
		BlockSize:  64,
		InitWords:  4,
		DelayNs:    4000,
		ArenaBytes: 64 << 20,
	}
}

func (c *Config) validate() error {
	if c.Topo == nil {
		return fmt.Errorf("mmicro: nil topology")
	}
	if c.Threads < 1 || c.Threads > c.Topo.MaxProcs() {
		return fmt.Errorf("mmicro: %d threads outside [1,%d]", c.Threads, c.Topo.MaxProcs())
	}
	if c.Duration <= 0 {
		return fmt.Errorf("mmicro: non-positive duration")
	}
	if c.BlockSize <= 0 {
		return fmt.Errorf("mmicro: non-positive block size")
	}
	if c.InitWords*8 > c.BlockSize {
		return fmt.Errorf("mmicro: %d init words exceed %d-byte block", c.InitWords, c.BlockSize)
	}
	return nil
}

// Result aggregates one run.
type Result struct {
	Pairs     uint64
	PerThread []uint64
	Elapsed   time.Duration
	Alloc     alloc.Stats
}

// PairsPerMs reports malloc-free pairs per millisecond (Table 2's
// metric).
func (r Result) PairsPerMs() float64 {
	ms := float64(r.Elapsed.Milliseconds())
	if ms <= 0 {
		return 0
	}
	return float64(r.Pairs) / ms
}

// RemoteReuseRate reports the fraction of block touches that crossed
// clusters — the locality effect Table 2's analysis attributes the
// cohort speedup to.
func (r Result) RemoteReuseRate() float64 {
	total := r.Alloc.Mallocs + r.Alloc.Frees
	if total == 0 {
		return 0
	}
	return float64(r.Alloc.RemoteTouches) / float64(total)
}

type pairSlot struct {
	pairs uint64
	err   error
	_     numa.Pad
}

// Run measures the allocator under the given lock.
func Run(cfg Config, lock locks.Mutex) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	spin.Calibrate()
	spin.AutoOversubscribe(cfg.Threads)
	a, err := alloc.New(alloc.Config{
		Topo:       cfg.Topo,
		Lock:       lock,
		ArenaBytes: cfg.ArenaBytes,
	})
	if err != nil {
		return Result{}, err
	}
	slots := make([]pairSlot, cfg.Threads)
	var stop atomic.Bool
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < cfg.Threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := cfg.Topo.Proc(id)
			sl := &slots[id]
			<-start
			for !stop.Load() {
				off, err := a.Malloc(p, cfg.BlockSize)
				if err != nil {
					sl.err = err
					return
				}
				buf := a.Bytes(off, cfg.InitWords*8)
				for w := 0; w < cfg.InitWords; w++ {
					binary.LittleEndian.PutUint64(buf[w*8:], uint64(id)<<32|sl.pairs)
				}
				spin.WaitNs(cfg.DelayNs)
				if err := a.Free(p, off); err != nil {
					sl.err = err
					return
				}
				spin.WaitNs(cfg.DelayNs)
				sl.pairs++
			}
		}(i)
	}
	began := time.Now()
	close(start)
	time.Sleep(cfg.Duration)
	stop.Store(true)
	wg.Wait()

	res := Result{PerThread: make([]uint64, cfg.Threads), Elapsed: time.Since(began)}
	for i := range slots {
		if slots[i].err != nil {
			return Result{}, fmt.Errorf("mmicro worker %d: %w", i, slots[i].err)
		}
		res.PerThread[i] = slots[i].pairs
		res.Pairs += slots[i].pairs
	}
	res.Alloc = a.Snapshot()
	return res, nil
}
