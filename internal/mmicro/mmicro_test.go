package mmicro

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/numa"
)

func fastCfg(topo *numa.Topology, threads int) Config {
	cfg := DefaultConfig(topo, threads)
	cfg.Duration = 50 * time.Millisecond
	cfg.DelayNs = 200
	cfg.ArenaBytes = 4 << 20
	return cfg
}

func TestValidation(t *testing.T) {
	topo := numa.New(4, 8)
	if _, err := Run(Config{}, locks.NewPthread()); err == nil {
		t.Error("nil topo accepted")
	}
	cfg := fastCfg(topo, 4)
	cfg.Threads = 9
	if _, err := Run(cfg, locks.NewPthread()); err == nil {
		t.Error("thread overflow accepted")
	}
	cfg = fastCfg(topo, 4)
	cfg.InitWords = 100
	if _, err := Run(cfg, locks.NewPthread()); err == nil {
		t.Error("init words exceeding block accepted")
	}
	cfg = fastCfg(topo, 4)
	cfg.Duration = 0
	if _, err := Run(cfg, locks.NewPthread()); err == nil {
		t.Error("zero duration accepted")
	}
	cfg = fastCfg(topo, 4)
	cfg.BlockSize = 0
	if _, err := Run(cfg, locks.NewPthread()); err == nil {
		t.Error("zero block size accepted")
	}
}

func TestRunCompletesPairs(t *testing.T) {
	topo := numa.New(4, 8)
	res, err := Run(fastCfg(topo, 4), locks.NewPthread())
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs == 0 {
		t.Fatal("no pairs completed")
	}
	if res.Alloc.Mallocs != res.Alloc.Frees {
		t.Fatalf("mallocs %d != frees %d (each pair frees its block)",
			res.Alloc.Mallocs, res.Alloc.Frees)
	}
	if res.Alloc.Mallocs != res.Pairs {
		t.Fatalf("mallocs %d != pairs %d", res.Alloc.Mallocs, res.Pairs)
	}
	if res.PairsPerMs() <= 0 {
		t.Fatal("non-positive rate")
	}
	var sum uint64
	for _, v := range res.PerThread {
		sum += v
	}
	if sum != res.Pairs {
		t.Fatal("per-thread sum mismatch")
	}
}

func TestRunSteadyStateRecycles(t *testing.T) {
	// After warmup, every malloc should be served by recycling, not
	// the wilderness: carves stay near the thread count.
	topo := numa.New(4, 8)
	res, err := Run(fastCfg(topo, 8), locks.NewMCS(topo))
	if err != nil {
		t.Fatal(err)
	}
	if res.Alloc.Carves > res.Pairs/2+16 {
		t.Fatalf("carves %d vs pairs %d: recycling not working", res.Alloc.Carves, res.Pairs)
	}
}

func TestRunUnderCohortLock(t *testing.T) {
	topo := numa.New(4, 16)
	res, err := Run(fastCfg(topo, 16), core.NewCBOMCS(topo))
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs == 0 {
		t.Fatal("no progress under cohort lock")
	}
	if rate := res.RemoteReuseRate(); rate < 0 || rate > 1 {
		t.Fatalf("remote reuse rate %v out of range", rate)
	}
}

func TestCohortReusesLocallyMoreThanMCS(t *testing.T) {
	// The Table 2 mechanism: cohort batching keeps recycled blocks in
	// the allocating cluster, so its remote-reuse rate must be lower.
	topo := numa.New(4, 16)
	cfg := fastCfg(topo, 16)
	cfg.Duration = 150 * time.Millisecond
	mcs, err := Run(cfg, locks.NewMCS(topo))
	if err != nil {
		t.Fatal(err)
	}
	cbm, err := Run(cfg, core.NewCBOMCS(topo))
	if err != nil {
		t.Fatal(err)
	}
	if cbm.RemoteReuseRate() >= mcs.RemoteReuseRate() {
		t.Errorf("cohort remote reuse %.3f not below MCS %.3f",
			cbm.RemoteReuseRate(), mcs.RemoteReuseRate())
	}
}

func TestResultEdgeCases(t *testing.T) {
	var r Result
	if r.PairsPerMs() != 0 || r.RemoteReuseRate() != 0 {
		t.Fatal("zero-value Result should yield zero metrics")
	}
}
