package soak

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"repro/internal/faultnet"
)

// Storm is a chaos fault schedule (see faultnet.Faults); FaultCounters
// aggregates what a run actually injected. Aliased so soak callers
// configure chaos without importing faultnet themselves.
type (
	Storm         = faultnet.Faults
	FaultCounters = faultnet.Counters
)

// DefaultStorm is the stock chaos schedule: enough latency, short
// reads/writes, probabilistic mid-frame resets, and brief stalls to
// exercise every fault path the verification model covers, while
// leaving most operations able to complete (a storm that kills every
// burst proves only that nothing works).
func DefaultStorm(seed int64) Storm {
	return Storm{
		Seed:        seed,
		Latency:     2 * time.Millisecond,
		ShortReads:  0.2,
		ShortWrites: 0.15,
		FragmentGap: 2 * time.Millisecond,
		ResetProb:   0.02,
		StallProb:   0.01,
		StallFor:    150 * time.Millisecond,
	}
}

// arrange sets up the run's data path. Plain runs dial Addr directly
// and the cleanup just polls stats. Chaos runs interpose a faultnet
// proxy running the storm schedule, arm a timer that clears the
// faults at the storm/recovery boundary, and clean up by tearing the
// proxy down, waiting the quiet tail, and polling the server's stats
// DIRECTLY (not through the dead proxy) — the window in which an
// adaptive admission cap demonstrably recovers off its low-water mark.
func (o *Options) arrange() (addr string, cleanup func(*Result), err error) {
	if !o.Chaos {
		return o.Addr, func(res *Result) { o.pollStats(res) }, nil
	}
	storm := DefaultStorm(o.Seed)
	if o.Storm != nil {
		storm = *o.Storm
	}
	inj := faultnet.NewInjector(storm)
	proxy, err := faultnet.NewProxy("127.0.0.1:0", o.Addr, inj)
	if err != nil {
		return "", nil, fmt.Errorf("soak: chaos proxy: %w", err)
	}
	stormFor := time.Duration(float64(o.Duration) * o.StormFraction)
	o.logf("chaos: storm phase %v through proxy %s (then faults clear for %v)",
		stormFor.Round(time.Millisecond), proxy.Addr(), (o.Duration - stormFor).Round(time.Millisecond))
	clear := time.AfterFunc(stormFor, func() {
		inj.Set(faultnet.Faults{})
		o.logf("chaos: faults cleared — recovery phase")
	})
	return proxy.Addr(), func(res *Result) {
		clear.Stop()
		res.Faults = inj.Counters()
		proxy.Close()
		time.Sleep(o.QuietTail)
		o.pollStats(res)
	}, nil
}

func (o *Options) pollStats(res *Result) {
	st, err := FetchStats(o.Addr)
	if err != nil {
		o.logf("soak: stats poll failed (server may not speak the stats verb): %v", err)
		return
	}
	res.Server = st
}

// ServerStats is the server's own post-run accounting, parsed from the
// wire stats verb. HasAdmission reports whether the dump carried the
// admission-cap fields at all (a stock memcached's won't), gating the
// hysteresis assertions in Problems.
type ServerStats struct {
	HasAdmission     bool   `json:"-"`
	AdmissionCap     int    `json:"admission_cap"`
	AdmissionCapFull int    `json:"admission_cap_full"`
	AdmissionCapLow  int    `json:"admission_cap_low"`
	SheddedOps       uint64 `json:"shedded_ops"`
	EvictedConns     uint64 `json:"evicted_conns"`
	ClientGone       uint64 `json:"client_gone"`
	MaxOccupancy     int    `json:"max_occupancy"`
}

// FetchStats issues the stats command on a fresh connection to addr
// and parses the fields this harness understands, ignoring the rest.
func FetchStats(addr string) (*ServerStats, error) {
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Write([]byte("stats\r\n")); err != nil {
		return nil, err
	}
	rd := bufio.NewReader(c)
	st := &ServerStats{}
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("reading stats: %w", err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "END" {
			return st, nil
		}
		f := strings.Fields(line)
		if len(f) != 3 || f[0] != "STAT" {
			return nil, fmt.Errorf("unexpected stats line %q", line)
		}
		v, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			continue // non-numeric stat from a foreign server: skip
		}
		switch f[1] {
		case "admission_cap":
			st.AdmissionCap = int(v)
			st.HasAdmission = true
		case "admission_cap_full":
			st.AdmissionCapFull = int(v)
		case "admission_cap_low":
			st.AdmissionCapLow = int(v)
		case "shedded_ops":
			st.SheddedOps = uint64(v)
		case "evicted_conns":
			st.EvictedConns = uint64(v)
		case "client_gone":
			st.ClientGone = uint64(v)
		case "max_occupancy":
			st.MaxOccupancy = int(v)
		}
	}
}
