package soak

import (
	"net"
	"testing"
	"time"

	"repro/internal/kvstore"
	"repro/internal/locks"
	"repro/internal/numa"
	"repro/internal/server"
)

// startServer runs an in-process kvserver on a loopback listener and
// returns its address plus a shutdown func that asserts a clean drain.
func startServer(t *testing.T, broken server.BrokenMode) (addr string, shutdown func() server.Stats) {
	t.Helper()
	topo := numa.New(1, 4)
	store := kvstore.New(kvstore.Config{
		Topo:    topo,
		Shards:  2,
		Locking: kvstore.FromMutex(func() locks.Mutex { return locks.NewPthread() }),
	})
	srv, err := server.New(server.Config{Topo: topo, Store: store, Broken: broken})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	return ln.Addr().String(), func() server.Stats {
		if err := srv.Shutdown(10 * time.Second); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
		return srv.Snapshot()
	}
}

// TestCleanRun is the false-positive guard: an undisturbed run against
// a correct server must report nothing at all.
func TestCleanRun(t *testing.T) {
	addr, shutdown := startServer(t, server.BrokenNone)
	res, err := Run(Options{
		Addr: addr, Conns: 2, Duration: 400 * time.Millisecond,
		Mix: 60, Keys: 16, ValSize: 64, Pipeline: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ps := res.Problems(false); len(ps) != 0 {
		t.Fatalf("clean run reported problems: %v (result %+v)", ps, res)
	}
	if res.Ops == 0 || res.Hits == 0 {
		t.Fatalf("run did no observable work: %+v", res)
	}
	if res.Reconnects != 0 || res.Retries != 0 || res.IndeterminateOps != 0 {
		t.Fatalf("fault counters moved without faults: %+v", res)
	}
	if res.Server == nil || res.Server.HasAdmission == false {
		t.Fatalf("stats poll missed the server's admission fields: %+v", res.Server)
	}
	shutdown()
}

// TestChaosCleanRun drives the full chaos path — faultnet proxy, storm
// then recovery, reconnect/backoff, idempotent-only retries — against
// a CORRECT server and asserts the headline contract: faults injected
// (the schedule demonstrably fired, connections demonstrably died and
// came back), yet zero acked writes lost, zero verification errors,
// and the server drains clean with no leaked connections.
func TestChaosCleanRun(t *testing.T) {
	addr, shutdown := startServer(t, server.BrokenNone)
	storm := Storm{
		Seed:        7,
		Latency:     time.Millisecond,
		ShortReads:  0.3,
		ShortWrites: 0.3,
		FragmentGap: time.Millisecond,
		ResetProb:   0.05,
	}
	res, err := Run(Options{
		Addr: addr, Conns: 4, Duration: 1500 * time.Millisecond,
		Mix: 60, Keys: 16, ValSize: 64, Pipeline: 4, Seed: 7,
		Chaos: true, Storm: &storm, QuietTail: 50 * time.Millisecond,
		Log: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ps := res.Problems(false); len(ps) != 0 {
		t.Fatalf("chaos run against a correct server reported: %v (result %+v)", ps, res)
	}
	if res.Faults.Resets == 0 {
		t.Fatalf("storm never cut a connection — chaos proved nothing: %+v", res.Faults)
	}
	if res.Reconnects == 0 {
		t.Fatalf("no reconnects despite %d injected resets: %+v", res.Faults.Resets, res)
	}
	if res.LostAckedWrites != 0 {
		t.Fatalf("lost acked writes on a correct server: %+v", res)
	}
	st := shutdown()
	if st.Active != 0 {
		t.Fatalf("connections leaked through the chaos run: %+v", st)
	}
}

// TestHarnessFlagsBrokenServer is the self-test discipline (the same
// locktest applies to broken locks): feed the harness a server that
// VIOLATES the shedding contract — it acknowledges every fourth set
// without applying it — and require the run to be flagged. A harness
// that passes a broken server is not testing anything.
func TestHarnessFlagsBrokenServer(t *testing.T) {
	addr, shutdown := startServer(t, server.BrokenDropAckedWrite)
	res, err := Run(Options{
		Addr: addr, Conns: 2, Duration: 600 * time.Millisecond,
		Mix: 50, Keys: 8, ValSize: 64, Pipeline: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LostAckedWrites == 0 {
		t.Fatalf("harness failed to flag a server that drops acked writes: %+v", res)
	}
	if ps := res.Problems(false); len(ps) == 0 {
		t.Fatal("Problems() empty against a broken server")
	}
	shutdown()
}
