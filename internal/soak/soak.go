// Package soak is the load-and-verify engine behind cmd/kvsoak: a
// mixed get/set load over real TCP sockets against any memcached text
// server, with a verification model strong enough to survive — and a
// chaos mode built to cause — connection faults.
//
// The consistency model each worker enforces on its own keys (key
// names embed the worker id, so workers never share):
//
//   - every value read must render-compare to a value this worker
//     actually issued for that key (payloads embed worker, key, seq);
//   - a read must never observe a seq OLDER than the newest set the
//     server ACKNOWLEDGED for that key — that is a lost acked write,
//     the one violation nothing (drain, shed, eviction, fault) may
//     cause. Misses stay legal: the store's LRU may evict.
//
// Connection cuts are expected, not errors: the worker reconnects with
// capped exponential backoff plus jitter and retries only idempotent
// operations (gets). A set whose ack never arrived is recorded as
// indeterminate — it MAY have been applied — so its seq is accepted on
// later reads but never required, and it is never retried (retrying a
// set would double-apply it if the first copy landed). "SERVER_ERROR
// busy" answers (the server's load-shedding refusal) are counted, and
// a shed set is treated as definitively not applied — which is exactly
// the shedding contract this harness exists to check.
package soak

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"
)

// Options parameterizes a run. Addr, Conns, Duration, Keys, ValSize
// and Pipeline are required (Run validates); the chaos fields are
// described in chaos.go.
type Options struct {
	Addr     string
	Conns    int
	RPS      int // target ops/sec across all conns, 0 = unthrottled
	Duration time.Duration
	Mix      int // get percentage of the op mix
	Keys     int // distinct keys per connection
	ValSize  int
	Pipeline int // ops per socket write
	Seed     int64

	// Chaos interposes a faultnet proxy between the workers and Addr:
	// the storm phase (StormFraction of Duration, default 0.6) runs
	// the Storm fault schedule, then faults clear for the recovery
	// tail. After the load ends, QuietTail elapses before the server's
	// stats are polled — the window in which an adaptive admission cap
	// demonstrably recovers.
	Chaos         bool
	Storm         *Storm        // nil = DefaultStorm(Seed)
	StormFraction float64       // (0,1); default 0.6
	SettleDelay   time.Duration // pause after a reconnect; default 150ms
	QuietTail     time.Duration // load-end → stats-poll gap; default 750ms

	// Log, when non-nil, narrates phase transitions.
	Log func(format string, args ...any)
}

func (o *Options) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

func (o *Options) validate() error {
	if o.Addr == "" {
		return fmt.Errorf("soak: Addr required")
	}
	for name, v := range map[string]int{
		"Conns": o.Conns, "Keys": o.Keys, "ValSize": o.ValSize, "Pipeline": o.Pipeline,
	} {
		if v <= 0 {
			return fmt.Errorf("soak: %s must be positive, got %d", name, v)
		}
	}
	if o.Mix < 0 || o.Mix > 100 {
		return fmt.Errorf("soak: Mix %d outside [0,100]", o.Mix)
	}
	// Payloads embed "w<id>-k<key>-s<seq>-" and verification parses it
	// back out; values too small to hold the header would truncate it
	// and read as corruption.
	if o.ValSize < 48 {
		return fmt.Errorf("soak: ValSize %d below the 48-byte payload-header minimum", o.ValSize)
	}
	if o.Duration <= 0 {
		return fmt.Errorf("soak: Duration must be positive")
	}
	if o.StormFraction == 0 {
		o.StormFraction = 0.6
	}
	if o.StormFraction < 0 || o.StormFraction >= 1 {
		return fmt.Errorf("soak: StormFraction %v outside (0,1)", o.StormFraction)
	}
	if o.SettleDelay == 0 {
		o.SettleDelay = 150 * time.Millisecond
	}
	if o.QuietTail == 0 {
		o.QuietTail = 750 * time.Millisecond
	}
	return nil
}

// Result is a run's summary (also cmd/kvsoak's -json core).
type Result struct {
	Ops     uint64 `json:"ops"`
	Gets    uint64 `json:"gets"`
	Hits    uint64 `json:"hits"`
	Sets    uint64 `json:"sets"`
	Errors  uint64 `json:"errors"`
	Dropped uint64 `json:"dropped"`
	// Retries counts idempotent operations (gets) re-issued after a
	// connection cut. Sets are never retried — see IndeterminateOps.
	Retries uint64 `json:"retries"`
	// IndeterminateOps counts sets whose acknowledgment never arrived
	// because the connection died first: they may or may not have been
	// applied, so their seqs are accepted but never required, and they
	// are never counted as lost OR as durable.
	IndeterminateOps uint64 `json:"indeterminate_ops"`
	// ShedResponses counts "SERVER_ERROR busy" answers — the server
	// refusing load instead of queueing it.
	ShedResponses uint64 `json:"shed_responses"`
	// LostAckedWrites counts reads that observed a value OLDER than an
	// acknowledged set for the key — the contract violation. Any
	// nonzero value fails the run.
	LostAckedWrites uint64 `json:"lost_acked_writes"`
	// Reconnects counts successful re-dials after a connection cut.
	Reconnects uint64 `json:"reconnects"`

	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`

	// Faults aggregates what the chaos proxy actually injected (zero
	// when Chaos is off); Server is the server's own post-run stats
	// dump (nil when the stats verb is unreachable).
	Faults FaultCounters `json:"faults"`
	Server *ServerStats  `json:"server,omitempty"`
}

func (r *Result) add(w *Result) {
	r.Ops += w.Ops
	r.Gets += w.Gets
	r.Hits += w.Hits
	r.Sets += w.Sets
	r.Errors += w.Errors
	r.Dropped += w.Dropped
	r.Retries += w.Retries
	r.IndeterminateOps += w.IndeterminateOps
	r.ShedResponses += w.ShedResponses
	r.LostAckedWrites += w.LostAckedWrites
	r.Reconnects += w.Reconnects
}

// Problems returns the run's contract violations, empty on a clean
// run. With expectShed (chaos runs that deliberately overload an
// adaptive server) it additionally requires the overload defenses to
// have demonstrably ENGAGED and RECOVERED: shedding observed, the
// admission cap shrunk below its configured value, and — after the
// quiet tail — grown back off its low-water mark.
func (r *Result) Problems(expectShed bool) []string {
	var ps []string
	if r.LostAckedWrites > 0 {
		ps = append(ps, fmt.Sprintf("%d acknowledged writes lost (read observed an older value than a STORED-acked set)", r.LostAckedWrites))
	}
	if r.Errors > 0 {
		ps = append(ps, fmt.Sprintf("%d verification errors (corrupt or never-issued values, malformed responses)", r.Errors))
	}
	if expectShed {
		if r.ShedResponses == 0 && (r.Server == nil || r.Server.SheddedOps == 0) {
			ps = append(ps, "shedding never engaged: no SERVER_ERROR busy observed and server shedded_ops is 0")
		}
		if r.Server != nil && r.Server.HasAdmission {
			switch {
			case r.Server.AdmissionCapLow >= r.Server.AdmissionCapFull:
				ps = append(ps, fmt.Sprintf("admission cap never shrank (low-water %d, configured %d)",
					r.Server.AdmissionCapLow, r.Server.AdmissionCapFull))
			case r.Server.AdmissionCap <= r.Server.AdmissionCapLow:
				ps = append(ps, fmt.Sprintf("admission cap did not recover after faults cleared (still %d, low-water %d)",
					r.Server.AdmissionCap, r.Server.AdmissionCapLow))
			}
		}
	}
	return ps
}

// Run executes the load and returns its aggregated result. The error
// is operational (bad options, proxy failure) — verification failures
// live in the Result, judged by Problems.
func Run(opt Options) (Result, error) {
	if err := opt.validate(); err != nil {
		return Result{}, err
	}
	addr, cleanup, err := opt.arrange()
	if err != nil {
		return Result{}, err
	}

	began := time.Now()
	stop := began.Add(opt.Duration)
	results := make([]Result, opt.Conns)
	var wg sync.WaitGroup
	for i := 0; i < opt.Conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := newWorker(&opt, i, addr)
			w.run(stop)
			results[i] = w.res
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(began).Seconds()

	var res Result
	for i := range results {
		res.add(&results[i])
	}
	res.Seconds = elapsed
	if elapsed > 0 {
		res.OpsPerSec = float64(res.Ops) / elapsed
	}
	cleanup(&res)
	return res, nil
}

// worker owns one connection's load, state, and verification. Key
// names embed the worker id, so key spaces are disjoint by
// construction and all ordering reasoning is per-worker.
type worker struct {
	opt  *Options
	id   int
	addr string
	res  Result

	rng uint64
	seq uint64 // per-worker set sequence, unique across its keys

	// acked[k] is the newest seq the server acknowledged with STORED
	// for key k; issuedMax[k] the newest seq ever SENT for it. A read
	// of key k must land in [acked[k], issuedMax[k]] — below acked is
	// a lost acked write, above issuedMax a fabricated value.
	acked     []uint64
	issuedMax []uint64

	retry []int // keys whose gets were cut mid-flight, to re-issue

	conns   int
	backoff time.Duration

	reqBuf, valBuf, wantBuf []byte
}

func newWorker(opt *Options, id int, addr string) *worker {
	return &worker{
		opt:       opt,
		id:        id,
		addr:      addr,
		rng:       uint64(opt.Seed)*0x9E3779B97F4A7C15 + uint64(id)*2654435761 + 1,
		acked:     make([]uint64, opt.Keys),
		issuedMax: make([]uint64, opt.Keys),
		valBuf:    make([]byte, 0, opt.ValSize),
		wantBuf:   make([]byte, 0, opt.ValSize),
	}
}

func (w *worker) next() uint64 {
	w.rng = w.rng*6364136223846793005 + 1442695040888963407
	return w.rng >> 33
}

// run is the worker's whole life: sessions separated by reconnects
// until the stop time. Whatever is still queued for retry at the end
// was dropped, not lost.
func (w *worker) run(stop time.Time) {
	for time.Now().Before(stop) {
		c := w.connect(stop)
		if c == nil {
			break
		}
		w.session(c, stop)
		c.Close()
	}
	w.res.Dropped += uint64(len(w.retry))
}

// connect dials with capped exponential backoff plus jitter, returning
// nil once the stop time passes. After a RECONNECT it also waits the
// settle delay: the server may still be applying the dead connection's
// buffered run, and new writes must order after those for the
// seq-monotonicity verification to be sound.
func (w *worker) connect(stop time.Time) net.Conn {
	const (
		backoffBase = 10 * time.Millisecond
		backoffCap  = 500 * time.Millisecond
	)
	for time.Now().Before(stop) {
		c, err := net.DialTimeout("tcp", w.addr, time.Second)
		if err == nil {
			w.backoff = 0
			if w.conns > 0 {
				w.res.Reconnects++
				time.Sleep(w.opt.SettleDelay)
			}
			w.conns++
			return c
		}
		if w.backoff == 0 {
			w.backoff = backoffBase
		} else if w.backoff < backoffCap {
			w.backoff *= 2
		}
		// Jitter in [backoff/2, backoff): reconnect storms from many
		// workers decorrelate instead of hammering in lockstep.
		d := w.backoff/2 + time.Duration(w.next()%uint64(w.backoff/2+1))
		time.Sleep(d)
	}
	return nil
}

// op is one in-flight operation of a pipelined burst.
type op struct {
	key     int
	get     bool
	seq     uint64
	retried bool
}

// session drives bursts over one connection until it dies or the run
// ends. On a cut, the burst's unanswered tail is classified: gets are
// queued for re-issue (idempotent), sets become indeterminate.
func (w *worker) session(c net.Conn, stop time.Time) {
	rd := bufio.NewReaderSize(c, 64<<10)
	burst := make([]op, 0, w.opt.Pipeline)

	var interval time.Duration
	if w.opt.RPS > 0 {
		perWorker := float64(w.opt.RPS) / float64(w.opt.Conns)
		interval = time.Duration(float64(w.opt.Pipeline) / perWorker * float64(time.Second))
	}
	due := time.Now()

	for time.Now().Before(stop) {
		if interval > 0 {
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
			due = due.Add(interval)
		}
		burst = w.buildBurst(burst[:0])
		c.SetWriteDeadline(time.Now().Add(5 * time.Second))
		if _, err := c.Write(w.reqBuf); err != nil {
			w.cut(burst, 0)
			return
		}
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		for i := range burst {
			if err := w.readOne(rd, &burst[i]); err != nil {
				w.cut(burst, i)
				return
			}
		}
	}
}

// buildBurst assembles the next pipelined burst into w.reqBuf: queued
// get retries first, then fresh ops from the deterministic stream.
func (w *worker) buildBurst(burst []op) []op {
	w.reqBuf = w.reqBuf[:0]
	for len(burst) < w.opt.Pipeline && len(w.retry) > 0 {
		key := w.retry[0]
		w.retry = w.retry[1:]
		w.res.Retries++
		burst = w.appendGet(burst, key, true)
	}
	for len(burst) < w.opt.Pipeline {
		key := int(w.next()) % w.opt.Keys
		if int(w.next())%100 < w.opt.Mix && w.issuedMax[key] > 0 {
			burst = w.appendGet(burst, key, false)
		} else {
			w.seq++
			w.issuedMax[key] = w.seq
			burst = append(burst, op{key: key, seq: w.seq})
			w.valBuf = renderValue(w.valBuf, w.id, key, w.seq, w.opt.ValSize)
			w.reqBuf = append(w.reqBuf, fmt.Sprintf("set w%dk%d 0 0 %d\r\n", w.id, key, w.opt.ValSize)...)
			w.reqBuf = append(w.reqBuf, w.valBuf...)
			w.reqBuf = append(w.reqBuf, "\r\n"...)
		}
	}
	return burst
}

func (w *worker) appendGet(burst []op, key int, retried bool) []op {
	w.reqBuf = append(w.reqBuf, fmt.Sprintf("get w%dk%d\r\n", w.id, key)...)
	return append(burst, op{key: key, get: true, retried: retried})
}

// cut classifies a dying burst from index i on: unanswered gets are
// idempotent and re-queue; unanswered sets are indeterminate — maybe
// applied, maybe not — so they are neither retried (a double apply
// would be a new write) nor counted durable (acked stays put).
func (w *worker) cut(burst []op, i int) {
	for _, o := range burst[i:] {
		if o.get {
			w.retry = append(w.retry, o.key)
		} else {
			w.res.IndeterminateOps++
		}
	}
}

// readOne consumes one op's response and applies the verification
// model. A transport error returns non-nil (the caller cuts the
// burst); everything else — including contract violations, which are
// counted, not fatal — returns nil.
func (w *worker) readOne(rd *bufio.Reader, o *op) error {
	line, err := rd.ReadString('\n')
	if err != nil {
		return err
	}
	line = strings.TrimRight(line, "\r\n")
	switch {
	case line == "STORED":
		w.res.Ops++
		w.res.Sets++
		if o.get {
			w.res.Errors++ // a get answered STORED: stream out of frame
			return nil
		}
		// Acknowledged: from here on, reading anything older than
		// o.seq for this key is a lost acked write.
		if o.seq > w.acked[o.key] {
			w.acked[o.key] = o.seq
		}
		return nil
	case line == "SERVER_ERROR busy":
		// The shed valve: refused, never applied, frame intact. A shed
		// set does NOT advance acked — and must not, since the server
		// promises it was not applied.
		w.res.Ops++
		w.res.ShedResponses++
		return nil
	case line == "END": // miss — legal under LRU eviction
		w.res.Ops++
		w.res.Gets++
		return nil
	case strings.HasPrefix(line, "VALUE "):
		var k string
		var flags, size uint64
		if _, err := fmt.Sscanf(line, "VALUE %s %d %d", &k, &flags, &size); err != nil || size > uint64(w.opt.ValSize) {
			w.res.Errors++
			return fmt.Errorf("bad VALUE line %q", line)
		}
		data := make([]byte, size+2)
		if _, err := io.ReadFull(rd, data); err != nil {
			return err
		}
		end, err := rd.ReadString('\n')
		if err != nil {
			return err
		}
		if strings.TrimRight(end, "\r\n") != "END" {
			w.res.Errors++
			return fmt.Errorf("missing END after VALUE, got %q", end)
		}
		w.res.Ops++
		w.res.Gets++
		w.res.Hits++
		w.verify(o.key, data[:size])
		return nil
	default:
		w.res.Errors++
		return fmt.Errorf("unexpected response %q", line)
	}
}

// verify checks a hit's payload against the worker's issue history:
// it must be byte-identical to a value this worker rendered for this
// key, with a seq no older than the newest ACKED set (older = lost
// acked write) and no newer than the newest ISSUED one (newer = the
// server fabricated data).
func (w *worker) verify(key int, data []byte) {
	prefix := fmt.Sprintf("w%d-k%d-s", w.id, key)
	if !bytes.HasPrefix(data, []byte(prefix)) {
		w.res.Errors++
		return
	}
	rest := data[len(prefix):]
	dash := bytes.IndexByte(rest, '-')
	if dash <= 0 {
		w.res.Errors++
		return
	}
	var seq uint64
	for _, c := range rest[:dash] {
		if c < '0' || c > '9' {
			w.res.Errors++
			return
		}
		seq = seq*10 + uint64(c-'0')
	}
	w.wantBuf = renderValue(w.wantBuf, w.id, key, seq, w.opt.ValSize)
	if !bytes.Equal(data, w.wantBuf) {
		w.res.Errors++
		return
	}
	switch {
	case seq < w.acked[key]:
		w.res.LostAckedWrites++
	case seq > w.issuedMax[key]:
		w.res.Errors++
	}
}

// renderValue is the deterministic payload for (worker, key, seq);
// verification re-renders and compares bytes.
func renderValue(buf []byte, w, key int, seq uint64, size int) []byte {
	buf = buf[:0]
	buf = append(buf, fmt.Sprintf("w%d-k%d-s%d-", w, key, seq)...)
	for len(buf) < size {
		buf = append(buf, 'x')
	}
	return buf[:size]
}
