package alloc

// Splay tree of free blocks, keyed by (size, offset). This mirrors the
// Solaris libc allocator the paper instruments: free blocks above the
// small-block threshold live in a self-adjusting binary search tree.
// Two properties matter for Table 2's analysis and are preserved
// exactly: insertion splays the new node to the root, so the most
// recently freed block of a size is the first one a matching malloc
// returns (LIFO recycling), and allocation takes the first fitting
// block via a ceiling search.

// bkey orders free blocks by size, then offset (offsets are unique, so
// keys are unique).
type bkey struct {
	size uint32
	off  uint32
}

func (a bkey) less(b bkey) bool {
	return a.size < b.size || (a.size == b.size && a.off < b.off)
}

type splayNode struct {
	k           bkey
	left, right *splayNode
}

// splayTree is a classic top-down splay tree. Not safe for concurrent
// use: the allocator guards it with the interposed lock, exactly like
// libc malloc.
type splayTree struct {
	root *splayNode
	free *splayNode // node recycle list, chained via right
	slab []splayNode
	n    int
}

// nodeSlab is how many splayNodes are carved from one Go allocation.
// While the free-block population grows (a store draining its arena,
// the first overwrite sweep of a fresh workload) every insert needs a
// node the recycle list can't supply yet; node-at-a-time allocation
// would put ~1 Go allocation on that free path, which is precisely
// the traffic an arena-backed caller adopted this allocator to avoid.
const nodeSlab = 512

// splay moves the node closest to k (k itself if present) to the root.
func (t *splayTree) splay(k bkey) {
	if t.root == nil {
		return
	}
	var header splayNode
	l, r := &header, &header
	cur := t.root
	for {
		if k.less(cur.k) {
			if cur.left == nil {
				break
			}
			if k.less(cur.left.k) {
				y := cur.left // rotate right
				cur.left = y.right
				y.right = cur
				cur = y
				if cur.left == nil {
					break
				}
			}
			r.left = cur // link right
			r = cur
			cur = cur.left
		} else if cur.k.less(k) {
			if cur.right == nil {
				break
			}
			if cur.right.k.less(k) {
				y := cur.right // rotate left
				cur.right = y.left
				y.left = cur
				cur = y
				if cur.right == nil {
					break
				}
			}
			l.right = cur // link left
			l = cur
			cur = cur.right
		} else {
			break
		}
	}
	l.right = cur.left
	r.left = cur.right
	cur.left = header.right
	cur.right = header.left
	t.root = cur
}

func (t *splayTree) newNode(k bkey) *splayNode {
	if n := t.free; n != nil {
		t.free = n.right
		n.k = k
		n.left, n.right = nil, nil
		return n
	}
	if len(t.slab) == 0 {
		t.slab = make([]splayNode, nodeSlab)
	}
	n := &t.slab[0]
	t.slab = t.slab[1:]
	n.k = k
	return n
}

func (t *splayTree) putNode(n *splayNode) {
	n.left = nil
	n.right = t.free
	t.free = n
}

// insert adds k; the new node becomes the root (the property the
// paper's recycling analysis hinges on). Duplicate keys are impossible
// because offsets are unique; inserting one panics.
func (t *splayTree) insert(k bkey) {
	n := t.newNode(k)
	if t.root == nil {
		t.root = n
		t.n++
		return
	}
	t.splay(k)
	switch {
	case k.less(t.root.k):
		n.left = t.root.left
		n.right = t.root
		t.root.left = nil
	case t.root.k.less(k):
		n.right = t.root.right
		n.left = t.root
		t.root.right = nil
	default:
		panic("alloc: duplicate free block")
	}
	t.root = n
	t.n++
}

// deleteRoot removes the root and joins its subtrees.
func (t *splayTree) deleteRoot() {
	old := t.root
	if old.left == nil {
		t.root = old.right
	} else {
		// Splaying the left subtree with old's key (greater than all
		// of its keys) brings its maximum to the root, which then has
		// no right child.
		sub := splayTree{root: old.left}
		sub.splay(old.k)
		sub.root.right = old.right
		t.root = sub.root
	}
	t.putNode(old)
	t.n--
}

// takeFit removes and returns the first matching block for a request
// of `want` bytes, or ok=false when none fits. "First matching" is the
// libc behaviour the paper describes: the search descends from the
// root and stops at the first exact-size match it meets — which, right
// after a free of that size, is the newly splayed root, so the most
// recently deallocated block is reallocated first (LIFO recycling).
// When no exact size exists, the smallest fitting size is returned
// (best fit), as a BST search naturally yields.
func (t *splayTree) takeFit(want uint32) (bkey, bool) {
	cur := t.root
	var best *splayNode
	for cur != nil {
		if cur.k.size >= want {
			best = cur
			if cur.k.size == want {
				break // first exact match: nearest the root = most recent
			}
			cur = cur.left
		} else {
			cur = cur.right
		}
	}
	if best == nil {
		return bkey{}, false
	}
	k := best.k
	t.splay(k) // exact key: comes to the root
	t.deleteRoot()
	return k, true
}

// remove deletes an exact key, reporting whether it was present.
func (t *splayTree) remove(k bkey) bool {
	if t.root == nil {
		return false
	}
	t.splay(k)
	if t.root.k != k {
		return false
	}
	t.deleteRoot()
	return true
}

// len reports the number of free blocks in the tree.
func (t *splayTree) len() int { return t.n }

// walk visits keys in order; tests use it to validate BST invariants.
func (t *splayTree) walk(visit func(bkey)) {
	var rec func(n *splayNode)
	rec = func(n *splayNode) {
		if n == nil {
			return
		}
		rec(n.left)
		visit(n.k)
		rec(n.right)
	}
	rec(t.root)
}
