package alloc

import (
	"sort"
	"testing"
	"testing/quick"
)

func collect(t *splayTree) []bkey {
	var out []bkey
	t.walk(func(k bkey) { out = append(out, k) })
	return out
}

func TestSplayInsertGoesToRoot(t *testing.T) {
	var tr splayTree
	keys := []bkey{{100, 8}, {50, 200}, {300, 400}, {50, 600}}
	for _, k := range keys {
		tr.insert(k)
		if tr.root.k != k {
			t.Fatalf("after insert(%v), root = %v (paper requires newly freed block at root)", k, tr.root.k)
		}
	}
	if tr.len() != len(keys) {
		t.Fatalf("len = %d, want %d", tr.len(), len(keys))
	}
}

func TestSplayOrderMaintained(t *testing.T) {
	var tr splayTree
	keys := []bkey{{5, 1}, {3, 2}, {8, 3}, {3, 9}, {1, 4}, {9, 5}, {5, 0}}
	for _, k := range keys {
		tr.insert(k)
	}
	got := collect(&tr)
	want := append([]bkey(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i].less(want[j]) })
	if len(got) != len(want) {
		t.Fatalf("walk returned %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("in-order[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTakeFitExactAndAbove(t *testing.T) {
	var tr splayTree
	for _, k := range []bkey{{64, 8}, {128, 80}, {256, 300}} {
		tr.insert(k)
	}
	k, ok := tr.takeFit(100)
	if !ok || k.size != 128 {
		t.Fatalf("takeFit(100) = %v,%v, want size 128", k, ok)
	}
	k, ok = tr.takeFit(64)
	if !ok || k.size != 64 {
		t.Fatalf("takeFit(64) = %v,%v, want size 64", k, ok)
	}
	k, ok = tr.takeFit(300)
	if ok {
		t.Fatalf("takeFit(300) = %v, want miss", k)
	}
	if _, ok := tr.takeFit(1); !ok {
		t.Fatal("remaining block not found")
	}
	if tr.len() != 0 {
		t.Fatalf("tree not empty: %d", tr.len())
	}
}

func TestTakeFitPrefersMostRecentlyFreed(t *testing.T) {
	// The paper's recycling property: the last inserted (most recently
	// freed) block sits at the root after the insert splay, so the
	// first-match search returns it before older equal-size blocks.
	var tr splayTree
	tr.insert(bkey{64, 500})
	tr.insert(bkey{64, 100}) // most recent, now at root
	k, ok := tr.takeFit(64)
	if !ok || k != (bkey{64, 100}) {
		t.Fatalf("takeFit = %v, want most recent {64,100}", k)
	}
	// And again with insertion order reversed, to show it is recency,
	// not offset, that decides.
	var tr2 splayTree
	tr2.insert(bkey{64, 100})
	tr2.insert(bkey{64, 500}) // most recent
	k, ok = tr2.takeFit(64)
	if !ok || k != (bkey{64, 500}) {
		t.Fatalf("takeFit = %v, want most recent {64,500}", k)
	}
}

func TestRemoveExact(t *testing.T) {
	var tr splayTree
	tr.insert(bkey{64, 8})
	tr.insert(bkey{64, 80})
	if !tr.remove(bkey{64, 80}) {
		t.Fatal("remove of present key failed")
	}
	if tr.remove(bkey{64, 80}) {
		t.Fatal("remove of absent key succeeded")
	}
	if tr.len() != 1 {
		t.Fatalf("len = %d, want 1", tr.len())
	}
}

func TestEmptyTreeOperations(t *testing.T) {
	var tr splayTree
	if _, ok := tr.takeFit(8); ok {
		t.Fatal("takeFit on empty tree")
	}
	if tr.remove(bkey{1, 1}) {
		t.Fatal("remove on empty tree")
	}
	tr.splay(bkey{5, 5}) // must not panic
}

func TestNodeRecycling(t *testing.T) {
	var tr splayTree
	tr.insert(bkey{64, 8})
	tr.remove(bkey{64, 8})
	if tr.free == nil {
		t.Fatal("removed node not recycled")
	}
	tr.insert(bkey{128, 16})
	if tr.free != nil {
		t.Fatal("recycled node not reused")
	}
}

// Model-based property test: a sequence of random inserts, removes and
// ceiling-takes behaves identically to a sorted-slice reference.
func TestSplayMatchesReferenceModel(t *testing.T) {
	type op struct {
		Kind uint8
		Size uint16
		Off  uint16
	}
	f := func(ops []op) bool {
		var tr splayTree
		model := map[bkey]bool{}
		nextOff := uint32(1)
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0: // insert a unique key
				k := bkey{uint32(o.Size%512) + 1, nextOff}
				nextOff++
				tr.insert(k)
				model[k] = true
			case 1: // takeFit
				want := uint32(o.Size%600) + 1
				// Reference semantics: the returned block must exist,
				// and its size must be the minimal fitting size (which
				// offset wins among equal sizes depends on tree shape
				// — recency — and is checked by the dedicated test).
				var bestSize uint32
				found := false
				for k := range model {
					if k.size >= want && (!found || k.size < bestSize) {
						bestSize, found = k.size, true
					}
				}
				got, ok := tr.takeFit(want)
				if ok != found {
					return false
				}
				if ok {
					if !model[got] || got.size != bestSize {
						return false
					}
					delete(model, got)
				}
			case 2: // remove arbitrary (maybe absent) key
				k := bkey{uint32(o.Size%512) + 1, uint32(o.Off)}
				if tr.remove(k) != model[k] {
					return false
				}
				delete(model, k)
			}
			if tr.len() != len(model) {
				return false
			}
		}
		// Final structural check: in-order walk sorted and complete.
		keys := collect(&tr)
		if len(keys) != len(model) {
			return false
		}
		for i := 1; i < len(keys); i++ {
			if !keys[i-1].less(keys[i]) {
				return false
			}
		}
		for _, k := range keys {
			if !model[k] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
