// Package alloc is the single-lock memory allocator of the paper's
// Table 2 experiment, modelled on the default Solaris libc malloc: one
// global lock serializes every operation; free blocks of 40 bytes or
// less sit on size-segregated lists; larger free blocks live in a
// splay tree keyed by size, where a newly freed block is splayed to
// the root and therefore reallocated first. The lock is pluggable —
// the paper's LD_PRELOAD interposition — so the mmicro harness can
// measure every lock from the registry under allocator load.
//
// Blocks are carved from one contiguous arena with 8-byte inline
// headers holding the payload size, an allocated/free state, and the
// last-touching cluster. The cluster tag drives the paper's block-
// recycling locality effect: reusing a block last touched by another
// cluster charges the remote-access latency, so lock algorithms that
// batch malloc/free by cluster recycle blocks locally and run faster.
//
// Deviation (DESIGN.md §2): like the Solaris allocator the paper
// describes, freeing does not eagerly coalesce neighbours; block
// splitting is supported. The mmicro workload (uniform 64-byte
// requests) never needs coalescing.
package alloc

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cachesim"
	"repro/internal/locks"
	"repro/internal/numa"
	"repro/internal/spin"
)

// Metadata line indices in the allocator's cachesim domain. The
// allocator's critical section is dominated by writes to these
// structures (tree rotations splay nodes on every insert and take,
// bin heads are pushed/popped, the wilderness pointer advances); they
// are exactly the lines that stay cluster-resident when a lock batches
// malloc/free by cluster — the paper's "accesses by the allocator to
// allocation metadata" locality (§4.3).
const (
	lineTree = 0 // splay-tree root and rotation path
	lineBins = 1 // small-block list heads
	lineWild = 2 // wilderness pointer
	numLines = 3
)

const (
	headerSize = 8
	alignment  = 8
	// SmallMax is the largest payload served from the small-block
	// lists (the paper: "lists of small — 40 bytes or less — memory
	// blocks").
	SmallMax = 40
	numBins  = SmallMax / alignment
	// block states stored in the header
	stateFree  = 0
	stateAlloc = 1
)

// Config parameterizes an Allocator.
type Config struct {
	// Topo sizes per-proc statistics.
	Topo *numa.Topology
	// Lock is the allocator's single global lock (the interposition
	// point). Nil only under Unguarded.
	Lock locks.Mutex
	// Unguarded builds an allocator with no lock of its own: every
	// operation must go through MallocUnguarded/FreeUnguarded under
	// caller-supplied mutual exclusion (a kvstore shard's single-writer
	// critical section, say). This is the seam that lets an arena run
	// under an enclosing lock instead of double-locking its own; Lock
	// must be nil.
	Unguarded bool
	// ArenaBytes is the arena capacity. Default 64 MiB.
	ArenaBytes int
	// LocalNs/RemoteNs are the latencies charged when a block's last
	// toucher was the same / another cluster. Defaults per
	// cachesim.DefaultConfig.
	LocalNs, RemoteNs int64
	// Cache sets the metadata-line latencies (cachesim semantics);
	// zero selects cachesim.DefaultConfig.
	Cache cachesim.Config
}

// Stats aggregates allocator activity.
type Stats struct {
	Mallocs, Frees   uint64
	BinAllocs        uint64 // served from small-block lists
	TreeAllocs       uint64 // served from the splay tree
	Carves           uint64 // served from the wilderness
	Splits           uint64 // tree blocks split
	RemoteTouches    uint64 // block reuses that crossed clusters
	FreeTreeBlocks   int    // current tree population
	WildernessOffset uint32 // high-water mark
}

type allocSlot struct {
	mallocs, frees, binAllocs, treeAllocs uint64
	carves, splits, remoteTouches         uint64
	_                                     numa.Pad
}

// Allocator is the single-lock malloc/free arena.
type Allocator struct {
	cfg    Config
	lock   locks.Mutex
	arena  []byte
	brk    uint32
	bins   [numBins]uint32 // head payload offsets; 0 = empty
	tree   splayTree
	domain *cachesim.Domain
	slots  []allocSlot
}

// New builds an allocator or reports a configuration error.
func New(cfg Config) (*Allocator, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("alloc: nil topology")
	}
	if cfg.Unguarded && cfg.Lock != nil {
		return nil, fmt.Errorf("alloc: unguarded allocator cannot also have a lock")
	}
	if !cfg.Unguarded && cfg.Lock == nil {
		return nil, fmt.Errorf("alloc: nil lock")
	}
	if cfg.ArenaBytes <= 0 {
		cfg.ArenaBytes = 64 << 20
	}
	if cfg.ArenaBytes < 1<<12 {
		return nil, fmt.Errorf("alloc: arena %d bytes too small", cfg.ArenaBytes)
	}
	if cfg.LocalNs == 0 && cfg.RemoteNs == 0 {
		def := cachesim.DefaultConfig()
		cfg.LocalNs, cfg.RemoteNs = def.LocalNs, def.RemoteNs
	}
	if cfg.Cache == (cachesim.Config{}) {
		cfg.Cache = cachesim.DefaultConfig()
	}
	return &Allocator{
		cfg:    cfg,
		lock:   cfg.Lock,
		arena:  make([]byte, cfg.ArenaBytes),
		domain: cachesim.NewDomain(cfg.Topo, numLines, cfg.Cache),
		slots:  make([]allocSlot, cfg.Topo.MaxProcs()),
	}, nil
}

// header encoding: size (32 bits) | owner cluster (8) | state (8).
func (a *Allocator) writeHeader(off, size uint32, owner int32, state uint8) {
	word := uint64(size) | uint64(uint8(owner))<<32 | uint64(state)<<40
	binary.LittleEndian.PutUint64(a.arena[off-headerSize:off], word)
}

func (a *Allocator) readHeader(off uint32) (size uint32, owner int32, state uint8) {
	word := binary.LittleEndian.Uint64(a.arena[off-headerSize : off])
	return uint32(word), int32(uint8(word >> 32)), uint8(word >> 40)
}

// bin free-list links live in the first 8 payload bytes of freed
// small blocks, as in a real allocator.
func (a *Allocator) readLink(off uint32) uint32 {
	return uint32(binary.LittleEndian.Uint64(a.arena[off : off+8]))
}

func (a *Allocator) writeLink(off, next uint32) {
	binary.LittleEndian.PutUint64(a.arena[off:off+8], uint64(next))
}

func roundSize(n int) uint32 {
	s := (n + alignment - 1) &^ (alignment - 1)
	if s < alignment {
		s = alignment
	}
	return uint32(s)
}

// touch charges the cluster-locality latency for reusing the block at
// off whose previous owner is prevOwner. Must hold the lock.
func (a *Allocator) touch(p *numa.Proc, sl *allocSlot, prevOwner int32) {
	if prevOwner != int32(p.Cluster()) {
		sl.remoteTouches++
		spin.WaitNs(a.cfg.RemoteNs)
	} else {
		spin.WaitNs(a.cfg.LocalNs)
	}
}

// Malloc allocates n bytes and returns the payload offset. The offset
// is stable for the allocator's lifetime; use Bytes to access it.
func (a *Allocator) Malloc(p *numa.Proc, n int) (uint32, error) {
	if a.lock == nil {
		return 0, fmt.Errorf("alloc: Malloc on an unguarded allocator; use MallocUnguarded under external exclusion")
	}
	if n <= 0 {
		return 0, fmt.Errorf("alloc: malloc of %d bytes", n)
	}
	size := roundSize(n)
	sl := &a.slots[p.ID()]
	a.lock.Lock(p)
	off, err := a.mallocLocked(p, sl, size)
	a.lock.Unlock(p)
	if err != nil {
		return 0, err
	}
	sl.mallocs++
	return off, nil
}

// MallocUnguarded is Malloc for an Unguarded allocator: the identical
// allocation protocol with no lock acquisition. The caller must hold
// whatever mutual exclusion guards this arena — every structure the
// call touches (bins, tree, wilderness, headers) is written assuming a
// single writer.
func (a *Allocator) MallocUnguarded(p *numa.Proc, n int) (uint32, error) {
	if n <= 0 {
		return 0, fmt.Errorf("alloc: malloc of %d bytes", n)
	}
	sl := &a.slots[p.ID()]
	off, err := a.mallocLocked(p, sl, roundSize(n))
	if err != nil {
		return 0, err
	}
	sl.mallocs++
	return off, nil
}

func (a *Allocator) mallocLocked(p *numa.Proc, sl *allocSlot, size uint32) (uint32, error) {
	// 1. Small-block lists.
	if size <= SmallMax {
		idx := size/alignment - 1
		if off := a.bins[idx]; off != 0 {
			a.domain.Access(p, lineBins, 2)
			a.bins[idx] = a.readLink(off)
			_, owner, _ := a.readHeader(off)
			a.touch(p, sl, owner)
			a.writeHeader(off, size, int32(p.Cluster()), stateAlloc)
			sl.binAllocs++
			return off, nil
		}
	}
	// 2. Splay tree: first matching block, splitting any excess back
	// into the free structures.
	if k, ok := a.tree.takeFit(size); ok {
		a.domain.Access(p, lineTree, 2)
		off := k.off
		blockSize := k.size
		if blockSize >= size+headerSize+alignment {
			remOff := off + size + headerSize
			remSize := blockSize - size - headerSize
			a.writeHeader(remOff, remSize, int32(p.Cluster()), stateFree)
			a.freeBlockLocked(nil, remOff, remSize)
			blockSize = size
			sl.splits++
		}
		_, owner, _ := a.readHeader(off)
		a.touch(p, sl, owner)
		a.writeHeader(off, blockSize, int32(p.Cluster()), stateAlloc)
		sl.treeAllocs++
		return off, nil
	}
	// 3. Wilderness.
	need := headerSize + size
	if int(a.brk)+int(need) > len(a.arena) {
		return 0, fmt.Errorf("alloc: arena exhausted (%d bytes in use, want %d)", a.brk, need)
	}
	a.domain.Access(p, lineWild, 1)
	off := a.brk + headerSize
	a.brk += need
	a.writeHeader(off, size, int32(p.Cluster()), stateAlloc)
	sl.carves++
	return off, nil
}

// freeBlockLocked inserts a free block into the bin or tree, charging
// the metadata line it writes. p may be nil for internal splits whose
// charge is carried by the enclosing operation.
func (a *Allocator) freeBlockLocked(p *numa.Proc, off, size uint32) {
	if size <= SmallMax {
		if p != nil {
			a.domain.Access(p, lineBins, 2)
		}
		idx := size/alignment - 1
		a.writeLink(off, a.bins[idx])
		a.bins[idx] = off
		return
	}
	if p != nil {
		a.domain.Access(p, lineTree, 2)
	}
	a.tree.insert(bkey{size: size, off: off})
}

// Free returns the block at payload offset off to the allocator. A
// newly freed tree block is splayed to the root, making it the first
// candidate for the next fitting malloc (the recycling behaviour the
// paper's Table 2 analysis rests on). Freeing a non-allocated offset
// returns an error and leaves the allocator unchanged.
func (a *Allocator) Free(p *numa.Proc, off uint32) error {
	if a.lock == nil {
		return fmt.Errorf("alloc: Free on an unguarded allocator; use FreeUnguarded under external exclusion")
	}
	if off < headerSize {
		return fmt.Errorf("alloc: free of invalid offset %d", off)
	}
	sl := &a.slots[p.ID()]
	a.lock.Lock(p)
	err := a.freeLocked(p, sl, off)
	a.lock.Unlock(p)
	if err != nil {
		return err
	}
	sl.frees++
	return nil
}

// FreeUnguarded is Free for an Unguarded allocator: the identical free
// protocol with no lock acquisition; the caller must hold the arena's
// external exclusion.
func (a *Allocator) FreeUnguarded(p *numa.Proc, off uint32) error {
	if off < headerSize {
		return fmt.Errorf("alloc: free of invalid offset %d", off)
	}
	sl := &a.slots[p.ID()]
	if err := a.freeLocked(p, sl, off); err != nil {
		return err
	}
	sl.frees++
	return nil
}

// freeLocked is a free's critical section: header validation, the
// locality charge, and insertion into the bin or tree. Callers hold
// the allocator's exclusion (its own lock, or the external one of an
// unguarded arena).
func (a *Allocator) freeLocked(p *numa.Proc, sl *allocSlot, off uint32) error {
	if int(off) > int(a.brk) { // brk is exclusion-protected
		return fmt.Errorf("alloc: free of invalid offset %d", off)
	}
	size, owner, state := a.readHeader(off)
	if state != stateAlloc {
		return fmt.Errorf("alloc: double free or corruption at %d", off)
	}
	a.touch(p, sl, owner)
	a.writeHeader(off, size, int32(p.Cluster()), stateFree)
	a.freeBlockLocked(p, off, size)
	return nil
}

// UsableSize reports the payload size of an allocated block.
func (a *Allocator) UsableSize(off uint32) uint32 {
	size, _, _ := a.readHeader(off)
	return size
}

// Bytes returns the payload bytes [off, off+n). n must not exceed the
// block's usable size; exceeding it corrupts neighbouring blocks just
// like real malloc, so tests guard it with Fsck. The capacity is
// clamped to n so an append through the returned slice reallocates
// instead of silently overrunning the neighbouring block's header.
func (a *Allocator) Bytes(off uint32, n int) []byte {
	return a.arena[off : off+uint32(n) : off+uint32(n)]
}

// LiveBlocks walks the arena and counts currently allocated blocks —
// the leak probe explicit-free owners (the kvstore arena lifecycle
// tests) compare against their own live-object count. Like Fsck it is
// intended for quiescent callers and is not thread-safe.
func (a *Allocator) LiveBlocks() int {
	live := 0
	for pos := uint32(0); pos < a.brk; {
		off := pos + headerSize
		size, _, state := a.readHeader(off)
		if size == 0 || size%alignment != 0 {
			return live // corrupt heap; Fsck reports the details
		}
		if state == stateAlloc {
			live++
		}
		pos += headerSize + size
	}
	return live
}

// Snapshot aggregates statistics; call while callers are quiescent.
func (a *Allocator) Snapshot() Stats {
	var st Stats
	for i := range a.slots {
		sl := &a.slots[i]
		st.Mallocs += sl.mallocs
		st.Frees += sl.frees
		st.BinAllocs += sl.binAllocs
		st.TreeAllocs += sl.treeAllocs
		st.Carves += sl.carves
		st.Splits += sl.splits
		st.RemoteTouches += sl.remoteTouches
	}
	st.FreeTreeBlocks = a.tree.len()
	st.WildernessOffset = a.brk
	return st
}

// Fsck walks the whole arena verifying heap invariants: headers chain
// exactly to the wilderness edge, every state is valid, and every free
// block is represented exactly once in the bins or the tree. Intended
// for tests; not thread-safe.
func (a *Allocator) Fsck() error {
	freeBlocks := map[uint32]uint32{} // payload offset -> size
	pos := uint32(0)
	for pos < a.brk {
		off := pos + headerSize
		size, _, state := a.readHeader(off)
		if size == 0 || size%alignment != 0 {
			return fmt.Errorf("alloc: bad size %d at %d", size, off)
		}
		switch state {
		case stateAlloc:
		case stateFree:
			freeBlocks[off] = size
		default:
			return fmt.Errorf("alloc: bad state %d at %d", state, off)
		}
		pos += headerSize + size
	}
	if pos != a.brk {
		return fmt.Errorf("alloc: heap walk ended at %d, wilderness at %d", pos, a.brk)
	}
	// Every bin entry must be a free block of the bin's size.
	seen := map[uint32]bool{}
	for i, head := range a.bins {
		want := uint32(i+1) * alignment
		for off := head; off != 0; off = a.readLink(off) {
			size, ok := freeBlocks[off]
			if !ok {
				return fmt.Errorf("alloc: bin %d holds non-free block %d", i, off)
			}
			if size != want {
				return fmt.Errorf("alloc: bin %d holds block of size %d", i, size)
			}
			if seen[off] {
				return fmt.Errorf("alloc: block %d on multiple free lists", off)
			}
			seen[off] = true
		}
	}
	// Every tree entry must be a free block of matching size, in order.
	var err error
	prev := bkey{}
	first := true
	a.tree.walk(func(k bkey) {
		if err != nil {
			return
		}
		if !first && !prev.less(k) {
			err = fmt.Errorf("alloc: tree keys out of order at %v", k)
			return
		}
		prev, first = k, false
		size, ok := freeBlocks[k.off]
		if !ok {
			err = fmt.Errorf("alloc: tree holds non-free block %d", k.off)
			return
		}
		if size != k.size {
			err = fmt.Errorf("alloc: tree key size %d, header says %d", k.size, size)
			return
		}
		if seen[k.off] {
			err = fmt.Errorf("alloc: block %d on list and tree", k.off)
			return
		}
		seen[k.off] = true
	})
	if err != nil {
		return err
	}
	if len(seen) != len(freeBlocks) {
		return fmt.Errorf("alloc: %d free blocks reachable, %d in heap", len(seen), len(freeBlocks))
	}
	return nil
}
