package alloc

import (
	"encoding/binary"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/locks"
	"repro/internal/numa"
)

// Failure injection: Fsck must detect the corruption classes a real
// heap checker guards against.

func corruptibleAlloc(t *testing.T) (*Allocator, *numa.Proc) {
	t.Helper()
	topo := numa.New(2, 2)
	a, err := New(Config{Topo: topo, Lock: locks.NewPthread(), ArenaBytes: 1 << 16, LocalNs: 1, RemoteNs: 1, Cache: cachesim.Config{LocalNs: 1, RemoteNs: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return a, topo.Proc(0)
}

func TestFsckCleanHeap(t *testing.T) {
	a, p := corruptibleAlloc(t)
	offs := make([]uint32, 0, 8)
	for i := 0; i < 8; i++ {
		off, err := a.Malloc(p, 64)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	for _, off := range offs[:4] {
		if err := a.Free(p, off); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Fsck(); err != nil {
		t.Fatalf("clean heap failed fsck: %v", err)
	}
}

func TestFsckDetectsHeaderSmash(t *testing.T) {
	a, p := corruptibleAlloc(t)
	off, _ := a.Malloc(p, 64)
	next, _ := a.Malloc(p, 64)
	_ = next
	// Overflow the first block by 8 bytes: smashes next block's header.
	buf := a.Bytes(off, 64+8)
	for i := range buf {
		buf[i] = 0xFF
	}
	if err := a.Fsck(); err == nil {
		t.Fatal("fsck missed a smashed header")
	}
}

func TestFsckDetectsBadState(t *testing.T) {
	a, p := corruptibleAlloc(t)
	off, _ := a.Malloc(p, 64)
	// Corrupt the state byte directly.
	word := binary.LittleEndian.Uint64(a.arena[off-headerSize : off])
	word |= uint64(7) << 40
	binary.LittleEndian.PutUint64(a.arena[off-headerSize:off], word)
	if err := a.Fsck(); err == nil {
		t.Fatal("fsck missed an invalid block state")
	}
}

func TestFsckDetectsFreeBlockNotOnLists(t *testing.T) {
	a, p := corruptibleAlloc(t)
	off, _ := a.Malloc(p, 64)
	// Mark the block free behind the allocator's back: it is on no
	// free list, which fsck must flag as unreachable.
	a.writeHeader(off, 64, 0, stateFree)
	if err := a.Fsck(); err == nil {
		t.Fatal("fsck missed an orphaned free block")
	}
}

func TestFsckDetectsBinCorruption(t *testing.T) {
	a, p := corruptibleAlloc(t)
	off, _ := a.Malloc(p, 32) // small block: bin class
	if err := a.Free(p, off); err != nil {
		t.Fatal(err)
	}
	// Corrupt the bin link to point at an allocated block.
	victim, _ := a.Malloc(p, 40)
	a.writeLink(off, victim)
	if err := a.Fsck(); err == nil {
		t.Fatal("fsck missed a bin link to a non-free block")
	}
}

func TestUsableSizeAndBytesRoundTrip(t *testing.T) {
	a, p := corruptibleAlloc(t)
	off, _ := a.Malloc(p, 100) // rounds to 104
	if got := a.UsableSize(off); got != 104 {
		t.Fatalf("UsableSize = %d, want 104", got)
	}
	b := a.Bytes(off, 104)
	if len(b) != 104 {
		t.Fatalf("Bytes len = %d", len(b))
	}
	for i := range b {
		b[i] = byte(i)
	}
	b2 := a.Bytes(off, 104)
	for i := range b2 {
		if b2[i] != byte(i) {
			t.Fatal("Bytes does not alias the block")
		}
	}
}

func TestSnapshotCounters(t *testing.T) {
	a, p := corruptibleAlloc(t)
	off1, _ := a.Malloc(p, 64) // carve
	a.Free(p, off1)            // tree insert
	off2, _ := a.Malloc(p, 64) // tree hit
	off3, _ := a.Malloc(p, 24) // carve (bin class, empty bin)
	a.Free(p, off3)            // bin insert
	off4, _ := a.Malloc(p, 24) // bin hit
	st := a.Snapshot()
	if st.Mallocs != 4 || st.Frees != 2 {
		t.Fatalf("counters: %+v", st)
	}
	if st.TreeAllocs != 1 || st.BinAllocs != 1 || st.Carves != 2 {
		t.Fatalf("path counters: %+v", st)
	}
	_ = off2
	_ = off4
}
