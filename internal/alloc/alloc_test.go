package alloc

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/cachesim"
	"repro/internal/locks"
	"repro/internal/numa"
)

func newTestAlloc(t *testing.T) (*Allocator, *numa.Topology) {
	t.Helper()
	topo := numa.New(4, 16)
	a, err := New(Config{
		Topo: topo, Lock: locks.NewPthread(),
		ArenaBytes: 1 << 20,
		// zero-cost locality charges keep tests fast but still counted
		LocalNs: 1, RemoteNs: 1, Cache: cachesim.Config{LocalNs: 1, RemoteNs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a, topo
}

func TestNewValidation(t *testing.T) {
	topo := numa.New(2, 2)
	if _, err := New(Config{Lock: locks.NewPthread()}); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := New(Config{Topo: topo}); err == nil {
		t.Error("nil lock accepted")
	}
	if _, err := New(Config{Topo: topo, Lock: locks.NewPthread(), ArenaBytes: 16}); err == nil {
		t.Error("tiny arena accepted")
	}
}

func TestMallocWriteFree(t *testing.T) {
	a, topo := newTestAlloc(t)
	p := topo.Proc(0)
	off, err := a.Malloc(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a.UsableSize(off) != 64 {
		t.Fatalf("UsableSize = %d, want 64", a.UsableSize(off))
	}
	buf := a.Bytes(off, 64)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := a.Free(p, off); err != nil {
		t.Fatal(err)
	}
	if err := a.Fsck(); err != nil {
		t.Fatal(err)
	}
}

func TestMallocRoundsAndAligns(t *testing.T) {
	a, topo := newTestAlloc(t)
	p := topo.Proc(0)
	for _, n := range []int{1, 7, 8, 9, 63, 64, 65} {
		off, err := a.Malloc(p, n)
		if err != nil {
			t.Fatal(err)
		}
		if off%alignment != 0 {
			t.Errorf("Malloc(%d) offset %d not aligned", n, off)
		}
		if got := a.UsableSize(off); int(got) < n || got%alignment != 0 {
			t.Errorf("Malloc(%d) usable %d", n, got)
		}
	}
	if err := a.Fsck(); err != nil {
		t.Fatal(err)
	}
}

func TestMallocInvalidSizes(t *testing.T) {
	a, topo := newTestAlloc(t)
	p := topo.Proc(0)
	if _, err := a.Malloc(p, 0); err == nil {
		t.Error("Malloc(0) succeeded")
	}
	if _, err := a.Malloc(p, -1); err == nil {
		t.Error("Malloc(-1) succeeded")
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	a, topo := newTestAlloc(t)
	p := topo.Proc(0)
	off, _ := a.Malloc(p, 64)
	if err := a.Free(p, off); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p, off); err == nil {
		t.Fatal("double free not detected")
	}
	if err := a.Free(p, 4); err == nil {
		t.Fatal("bogus offset free not detected")
	}
	if err := a.Free(p, 1<<30); err == nil {
		t.Fatal("out-of-range free not detected")
	}
}

func TestRecyclingReturnsMostRecentlyFreed(t *testing.T) {
	// The splay-to-root property at allocator level: free two 64-byte
	// blocks; the next 64-byte malloc must return the most recently
	// freed one (LIFO), the behaviour the paper's Table 2 discussion
	// attributes the cross-cluster block bouncing to.
	a, topo := newTestAlloc(t)
	p := topo.Proc(0)
	off1, _ := a.Malloc(p, 64)
	off2, _ := a.Malloc(p, 64)
	a.Free(p, off1)
	a.Free(p, off2) // most recent
	got, _ := a.Malloc(p, 64)
	if got != off2 {
		t.Fatalf("Malloc reused %d, want most recently freed %d", got, off2)
	}
}

func TestSmallBlocksUseBins(t *testing.T) {
	a, topo := newTestAlloc(t)
	p := topo.Proc(0)
	off, _ := a.Malloc(p, 40)
	a.Free(p, off)
	got, _ := a.Malloc(p, 40)
	if got != off {
		t.Fatalf("small block not recycled from bin: got %d, want %d", got, off)
	}
	st := a.Snapshot()
	if st.BinAllocs != 1 {
		t.Fatalf("BinAllocs = %d, want 1", st.BinAllocs)
	}
	if st.FreeTreeBlocks != 0 {
		t.Fatalf("small block leaked into tree")
	}
}

func TestSplitProducesRemainder(t *testing.T) {
	a, topo := newTestAlloc(t)
	p := topo.Proc(0)
	big, _ := a.Malloc(p, 256)
	a.Free(p, big)
	small, err := a.Malloc(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	if small != big {
		t.Fatalf("split alloc at %d, want start of freed block %d", small, big)
	}
	st := a.Snapshot()
	if st.Splits != 1 {
		t.Fatalf("Splits = %d, want 1", st.Splits)
	}
	// Remainder: 256 - 64 - 8 = 184 bytes, must be findable.
	rem, err := a.Malloc(p, 184)
	if err != nil {
		t.Fatalf("remainder not allocatable: %v", err)
	}
	if rem != big+64+headerSize {
		t.Fatalf("remainder at %d, want %d", rem, big+64+headerSize)
	}
	if err := a.Fsck(); err != nil {
		t.Fatal(err)
	}
}

func TestArenaExhaustion(t *testing.T) {
	topo := numa.New(2, 2)
	a, err := New(Config{Topo: topo, Lock: locks.NewPthread(), ArenaBytes: 1 << 12, LocalNs: 1, RemoteNs: 1, Cache: cachesim.Config{LocalNs: 1, RemoteNs: 1}})
	if err != nil {
		t.Fatal(err)
	}
	p := topo.Proc(0)
	var offs []uint32
	for {
		off, err := a.Malloc(p, 128)
		if err != nil {
			break
		}
		offs = append(offs, off)
	}
	if len(offs) == 0 {
		t.Fatal("no allocation succeeded")
	}
	// Everything frees cleanly and becomes reusable.
	for _, off := range offs {
		if err := a.Free(p, off); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Malloc(p, 128); err != nil {
		t.Fatalf("allocation after full free failed: %v", err)
	}
	if err := a.Fsck(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteTouchAccounting(t *testing.T) {
	a, topo := newTestAlloc(t)
	p0 := topo.Proc(0) // cluster 0
	p1 := topo.Proc(1) // cluster 1
	off, _ := a.Malloc(p0, 64)
	a.Free(p0, off) // same cluster: local
	st := a.Snapshot()
	base := st.RemoteTouches
	off2, _ := a.Malloc(p1, 64) // reuses p0's block: remote
	if off2 != off {
		t.Fatalf("expected recycling, got %d want %d", off2, off)
	}
	st = a.Snapshot()
	if st.RemoteTouches != base+1 {
		t.Fatalf("RemoteTouches = %d, want %d", st.RemoteTouches, base+1)
	}
	a.Free(p1, off2) // p1 touched it last: local again
	st2 := a.Snapshot()
	if st2.RemoteTouches != st.RemoteTouches {
		t.Fatalf("same-cluster free counted remote")
	}
}

// Property test: random malloc/free sequences never hand out
// overlapping blocks and always pass Fsck.
func TestRandomMallocFreeProperty(t *testing.T) {
	f := func(sizes []uint8, frees []uint8) bool {
		a, topo := newTestAlloc(t)
		p := topo.Proc(0)
		type blk struct{ off, size uint32 }
		var live []blk
		overlap := func(x blk) bool {
			for _, y := range live {
				if x.off < y.off+y.size && y.off < x.off+x.size {
					return true
				}
			}
			return false
		}
		for i, s := range sizes {
			n := int(s)%200 + 1
			off, err := a.Malloc(p, n)
			if err != nil {
				return false
			}
			b := blk{off, a.UsableSize(off)}
			if overlap(b) {
				return false
			}
			live = append(live, b)
			// Occasionally free a pseudo-random live block.
			if len(frees) > 0 && frees[i%len(frees)]%3 == 0 && len(live) > 0 {
				j := int(frees[i%len(frees)]) % len(live)
				if a.Free(p, live[j].off) != nil {
					return false
				}
				live = append(live[:j], live[j+1:]...)
			}
		}
		return a.Fsck() == nil
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMallocFree(t *testing.T) {
	topo := numa.New(4, 16)
	a, err := New(Config{Topo: topo, Lock: locks.NewMCS(topo), ArenaBytes: 8 << 20, LocalNs: 1, RemoteNs: 1, Cache: cachesim.Config{LocalNs: 1, RemoteNs: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := topo.Proc(id)
			var held []uint32
			for k := 0; k < 500; k++ {
				off, err := a.Malloc(p, 64)
				if err != nil {
					t.Errorf("worker %d: %v", id, err)
					return
				}
				buf := a.Bytes(off, 64)
				for j := range buf {
					buf[j] = byte(id)
				}
				held = append(held, off)
				if len(held) > 8 {
					victim := held[0]
					held = held[1:]
					// Verify our writes survived (no block sharing).
					vb := a.Bytes(victim, 64)
					for j := range vb {
						if vb[j] != byte(id) {
							t.Errorf("worker %d: block %d corrupted", id, victim)
							return
						}
					}
					if err := a.Free(p, victim); err != nil {
						t.Errorf("worker %d: %v", id, err)
						return
					}
				}
			}
			for _, off := range held {
				a.Free(p, off)
			}
		}(i)
	}
	wg.Wait()
	if err := a.Fsck(); err != nil {
		t.Fatal(err)
	}
	st := a.Snapshot()
	if st.Mallocs != st.Frees {
		t.Fatalf("mallocs %d != frees %d after full drain", st.Mallocs, st.Frees)
	}
}

func newUnguardedAlloc(t *testing.T) (*Allocator, *numa.Topology) {
	t.Helper()
	topo := numa.New(4, 16)
	a, err := New(Config{
		Topo: topo, Unguarded: true,
		ArenaBytes: 1 << 20,
		LocalNs:    1, RemoteNs: 1, Cache: cachesim.Config{LocalNs: 1, RemoteNs: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a, topo
}

func TestUnguardedValidation(t *testing.T) {
	topo := numa.New(2, 2)
	if _, err := New(Config{Topo: topo, Unguarded: true, Lock: locks.NewPthread(), ArenaBytes: 1 << 12, LocalNs: 1, RemoteNs: 1, Cache: cachesim.Config{LocalNs: 1, RemoteNs: 1}}); err == nil {
		t.Error("unguarded allocator with a lock accepted")
	}
}

// TestUnguardedRoundTrip exercises the external-exclusion seam: the
// same malloc/write/free protocol as the guarded path, ending
// Fsck-clean, with the guarded entry points refusing to run.
func TestUnguardedRoundTrip(t *testing.T) {
	a, topo := newUnguardedAlloc(t)
	p := topo.Proc(0)
	if _, err := a.Malloc(p, 64); err == nil {
		t.Error("guarded Malloc ran on an unguarded allocator")
	}
	off, err := a.MallocUnguarded(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	buf := a.Bytes(off, 64)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := a.Free(p, off); err == nil {
		t.Error("guarded Free ran on an unguarded allocator")
	}
	if err := a.FreeUnguarded(p, off); err != nil {
		t.Fatal(err)
	}
	if err := a.FreeUnguarded(p, off); err == nil {
		t.Error("unguarded double free undetected")
	}
	if err := a.Fsck(); err != nil {
		t.Fatal(err)
	}
}

// TestBytesCapClamped guards the three-index slice in Bytes: the view
// must not be appendable or re-sliceable past the requested length, or
// a caller growing it in place would scribble over the next block's
// header.
func TestBytesCapClamped(t *testing.T) {
	a, topo := newTestAlloc(t)
	p := topo.Proc(0)
	off, err := a.Malloc(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	if buf := a.Bytes(off, 64); cap(buf) != 64 {
		t.Fatalf("Bytes cap = %d, want exactly 64", cap(buf))
	}
}

func TestLiveBlocks(t *testing.T) {
	a, topo := newUnguardedAlloc(t)
	p := topo.Proc(0)
	var offs []uint32
	for i := 0; i < 10; i++ {
		off, err := a.MallocUnguarded(p, 48)
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	if n := a.LiveBlocks(); n != 10 {
		t.Fatalf("LiveBlocks = %d after 10 mallocs, want 10", n)
	}
	for _, off := range offs[:4] {
		if err := a.FreeUnguarded(p, off); err != nil {
			t.Fatal(err)
		}
	}
	if n := a.LiveBlocks(); n != 6 {
		t.Fatalf("LiveBlocks = %d after 4 frees, want 6", n)
	}
	for _, off := range offs[4:] {
		if err := a.FreeUnguarded(p, off); err != nil {
			t.Fatal(err)
		}
	}
	if n := a.LiveBlocks(); n != 0 {
		t.Fatalf("LiveBlocks = %d after freeing all, want 0", n)
	}
}
