// Package numa models the NUMA topology that lock cohorting targets.
//
// The paper's testbed exposes hardware NUMA clusters (one Niagara T2+
// socket each) and binds threads to them. The Go runtime deliberately
// hides OS threads, so this package substitutes an explicit software
// topology: a Topology declares the number of clusters, and every
// worker goroutine carries a *Proc handle that pins it to a logical
// cluster for its lifetime. Cohort locks, the cache-coherence
// simulator, and all harnesses consult only the Proc's cluster id and
// dense proc id, which is the full extent of hardware knowledge the
// paper's algorithms require.
package numa

import (
	"fmt"

	"repro/internal/spin"
)

// CacheLineBytes is the assumed coherence granularity. Padding uses
// twice this to defeat adjacent-line prefetchers.
const CacheLineBytes = 64

// Pad is inserted between logically independent hot fields to prevent
// false sharing.
type Pad [2 * CacheLineBytes]byte

// Placement controls how proc ids map to clusters.
type Placement int

const (
	// RoundRobin spreads consecutive procs across clusters
	// (proc i -> cluster i mod C). This matches how the paper's
	// experiments load all four sockets at every thread count.
	RoundRobin Placement = iota
	// Packed fills one cluster before starting the next.
	Packed
)

// Topology describes a machine as a set of symmetric clusters and a
// bounded set of logical processors (worker threads). All lock
// implementations size their per-thread state from MaxProcs, so the
// topology fixes the maximum concurrency up front, mirroring the
// paper's fixed 256-context machine.
type Topology struct {
	clusters  int
	maxProcs  int
	placement Placement
	procs     []*Proc
}

// New returns a topology with the given cluster count and maximum
// number of logical processors, using RoundRobin placement. It panics
// on non-positive arguments, which indicate programmer error.
func New(clusters, maxProcs int) *Topology {
	return NewWithPlacement(clusters, maxProcs, RoundRobin)
}

// NewWithPlacement is New with an explicit placement policy.
func NewWithPlacement(clusters, maxProcs int, placement Placement) *Topology {
	if clusters <= 0 {
		panic(fmt.Sprintf("numa: clusters = %d, must be positive", clusters))
	}
	if maxProcs <= 0 {
		panic(fmt.Sprintf("numa: maxProcs = %d, must be positive", maxProcs))
	}
	t := &Topology{clusters: clusters, maxProcs: maxProcs, placement: placement}
	t.procs = make([]*Proc, maxProcs)
	for i := 0; i < maxProcs; i++ {
		t.procs[i] = &Proc{
			id:      i,
			cluster: t.clusterOf(i),
			rng:     spin.NewXorShift(uint64(i) + 1),
		}
	}
	// The topology's processor count is the best available estimate of
	// worker concurrency, so it selects the spin discipline (pure
	// spinning with dedicated processors, spin-then-park beyond
	// GOMAXPROCS). Harnesses refine this per run with the actual
	// thread count.
	spin.AutoOversubscribe(maxProcs)
	return t
}

func (t *Topology) clusterOf(id int) int {
	switch t.placement {
	case Packed:
		per := (t.maxProcs + t.clusters - 1) / t.clusters
		c := id / per
		if c >= t.clusters {
			c = t.clusters - 1
		}
		return c
	default:
		return id % t.clusters
	}
}

// Clusters reports the number of NUMA clusters.
func (t *Topology) Clusters() int { return t.clusters }

// MaxProcs reports the maximum number of logical processors; proc ids
// are dense in [0, MaxProcs).
func (t *Topology) MaxProcs() int { return t.maxProcs }

// Proc returns the handle for logical processor id. Handles are
// preallocated and stable; the same id always yields the same *Proc.
// It panics if id is out of range.
func (t *Topology) Proc(id int) *Proc {
	if id < 0 || id >= t.maxProcs {
		panic(fmt.Sprintf("numa: proc id %d out of range [0,%d)", id, t.maxProcs))
	}
	return t.procs[id]
}

// ClusterOf reports the cluster that proc id maps to under this
// topology's placement.
func (t *Topology) ClusterOf(id int) int {
	if id < 0 || id >= t.maxProcs {
		panic(fmt.Sprintf("numa: proc id %d out of range [0,%d)", id, t.maxProcs))
	}
	return t.procs[id].cluster
}

// Proc identifies one logical processor (worker thread). Exactly one
// goroutine may use a given Proc at a time; handles carry per-thread
// scratch state (an RNG) that is deliberately unsynchronized.
type Proc struct {
	id      int
	cluster int
	rng     spin.XorShift
	_       Pad
}

// ID reports the dense processor id in [0, MaxProcs).
func (p *Proc) ID() int { return p.id }

// Cluster reports the NUMA cluster this processor belongs to.
func (p *Proc) Cluster() int { return p.cluster }

// Rand returns the next value of the processor-local RNG.
func (p *Proc) Rand() uint64 { return p.rng.Next() }

// RandN returns a processor-local pseudo-random value in [0, n).
func (p *Proc) RandN(n int64) int64 { return p.rng.IntN(n) }
