package numa

import (
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadArgs(t *testing.T) {
	for _, tc := range []struct{ c, p int }{{0, 4}, {4, 0}, {-1, 4}, {4, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", tc.c, tc.p)
				}
			}()
			New(tc.c, tc.p)
		}()
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	topo := New(4, 16)
	for i := 0; i < 16; i++ {
		if got, want := topo.ClusterOf(i), i%4; got != want {
			t.Errorf("ClusterOf(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestPackedPlacement(t *testing.T) {
	topo := NewWithPlacement(4, 16, Packed)
	// 16 procs over 4 clusters, 4 per cluster, filled in order.
	for i := 0; i < 16; i++ {
		if got, want := topo.ClusterOf(i), i/4; got != want {
			t.Errorf("ClusterOf(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestPackedPlacementUnevenStaysInRange(t *testing.T) {
	topo := NewWithPlacement(3, 10, Packed)
	for i := 0; i < 10; i++ {
		c := topo.ClusterOf(i)
		if c < 0 || c >= 3 {
			t.Fatalf("ClusterOf(%d) = %d out of range", i, c)
		}
	}
	// Last proc lands in the last cluster even when division rounds.
	if topo.ClusterOf(9) != 2 {
		t.Errorf("ClusterOf(9) = %d, want 2", topo.ClusterOf(9))
	}
}

func TestProcHandlesStable(t *testing.T) {
	topo := New(2, 8)
	for i := 0; i < 8; i++ {
		a, b := topo.Proc(i), topo.Proc(i)
		if a != b {
			t.Fatalf("Proc(%d) returned distinct handles", i)
		}
		if a.ID() != i {
			t.Fatalf("Proc(%d).ID() = %d", i, a.ID())
		}
		if a.Cluster() != topo.ClusterOf(i) {
			t.Fatalf("Proc(%d).Cluster() = %d, want %d", i, a.Cluster(), topo.ClusterOf(i))
		}
	}
}

func TestProcOutOfRangePanics(t *testing.T) {
	topo := New(2, 4)
	for _, id := range []int{-1, 4, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Proc(%d) did not panic", id)
				}
			}()
			topo.Proc(id)
		}()
	}
}

func TestPlacementCoverage(t *testing.T) {
	check := func(clusters, procs uint8, packed bool) bool {
		c := int(clusters%8) + 1
		p := int(procs%32) + c // at least one proc per cluster
		pl := RoundRobin
		if packed {
			pl = Packed
		}
		topo := NewWithPlacement(c, p, pl)
		seen := make([]bool, c)
		for i := 0; i < p; i++ {
			cl := topo.ClusterOf(i)
			if cl < 0 || cl >= c {
				return false
			}
			seen[cl] = true
		}
		if !packed {
			// RoundRobin with p >= c populates every cluster.
			for _, s := range seen {
				if !s {
					return false
				}
			}
			return true
		}
		// Packed populates a gap-free prefix of clusters.
		gapSeen := false
		for _, s := range seen {
			if !s {
				gapSeen = true
			} else if gapSeen {
				return false // populated cluster after a gap
			}
		}
		return seen[0]
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProcRandVaries(t *testing.T) {
	topo := New(2, 4)
	p0, p1 := topo.Proc(0), topo.Proc(1)
	if p0.Rand() == p1.Rand() {
		t.Fatal("distinct procs produced identical first random values")
	}
	v := p0.RandN(10)
	if v < 0 || v >= 10 {
		t.Fatalf("RandN(10) = %d out of range", v)
	}
}
