package server

import (
	"sync"

	"repro/internal/numa"
)

// This file is the adaptive half of the front door. PR 7 made
// admission structural — a per-cluster pool of Proc handles whose
// exhaustion stops the accept loop — but the cap was static. Here the
// cap tracks the sampled combining occupancy (locks.EstimateOccupancy,
// the GCR lineage's admission signal) with hysteresis, and a second,
// higher threshold arms op shedding for the overload the cap cannot
// absorb. The escalation ladder, in order (see DESIGN.md §8):
//
//  1. admission shrinks — new clients wait in the listen backlog, the
//     clients already inside keep their full service;
//  2. ops shed — flushes answer "SERVER_ERROR busy" (frame-preserving,
//     never acknowledged-then-dropped) instead of queueing unboundedly;
//  3. deadlines escalate — while shedding, blocked reads and writes get
//     the busy timeout, so a stalled client cannot pin a Proc for the
//     full idle timeout during an overload.
//
// Every transition is driven by noteOccupancy, one call per sampler
// tick, which is also the test seam: unit tests replay occupancy
// sequences and assert the cap and shed-flag trajectory.

const (
	// overTicksToShrink consecutive samples at or above BusyThreshold
	// halve the admission cap: 4 ticks = 100ms of sustained overload at
	// the 25ms sampling interval, long enough to ignore a single burst.
	overTicksToShrink = 4
	// shedTicksToEngage accumulated acute samples arm op shedding. A
	// sample is acute at or above shedMultiplier*BusyThreshold — or at
	// plain BusyThreshold once the cap has already shrunk to its floor,
	// the overload admission cannot absorb. The counter decays by one
	// on a calm sample instead of resetting, so a high-duty-cycle
	// overload still accumulates; at 8 ticks the window is twice the
	// shrink window, so admission has demonstrably shrunk before any op
	// is refused — the cap is the gentle valve, shedding the acute one.
	shedTicksToEngage = 8
	// underTicksToGrow consecutive samples below BusyThreshold/2 (the
	// clear watermark) grow the cap by one. Shrink is multiplicative,
	// recovery additive and slower by design: re-admitting too eagerly
	// re-creates the collapse the shrink just stopped. Samples between
	// the watermarks hold the cap where it is — the hysteresis band.
	underTicksToGrow = 8
	// shedMultiplier scales BusyThreshold into the shedding threshold.
	shedMultiplier = 2
)

// admission is one cluster's adaptive cap state. The Proc handles a
// shrink withholds are parked in held, outside the pool the accept
// loop blocks on — withheld procs mean fewer concurrent admissions,
// the same structural back-pressure as the static cap. Only idle
// procs are ever withheld: connections in flight keep theirs until
// they close, at which point releaseProc routes the handle to held if
// the cluster is still over cap.
type admission struct {
	mu   sync.Mutex
	full int // configured cap (procs dealt to the pool at startup)
	cap  int // current effective cap, in [1, full]
	held []*numa.Proc
}

// noteOccupancy consumes one occupancy sample: it advances the peak
// gauge and, under AdaptiveAdmission, the hysteresis counters that
// shrink/grow the cap and arm/clear shedding. Called only from the
// sampler goroutine (or a test standing in for it).
func (s *Server) noteOccupancy(occ int) {
	if int64(occ) > s.occMax.Load() {
		s.occMax.Store(int64(occ))
	}
	if !s.cfg.AdaptiveAdmission {
		return
	}
	busy := s.cfg.BusyThreshold
	switch {
	case occ >= busy:
		s.overTicks++
		s.underTicks = 0
	case occ*2 < busy:
		s.underTicks++
		s.overTicks = 0
	default:
		// Between the watermarks: neither sustained overload nor
		// sustained clearance. Hold the cap.
		s.overTicks, s.underTicks = 0, 0
	}
	cur, _ := s.admissionCaps()
	acute := occ >= busy*shedMultiplier || (cur == 1 && occ >= busy)
	if acute {
		s.shedTicks++
	} else if s.shedTicks > 0 {
		s.shedTicks--
	}
	// Shedding clears the moment pressure drops below the busy line —
	// refusing ops is expensive for clients, so the acute valve closes
	// fast while the admission cap recovers slowly.
	if occ < busy && s.shedFlag.Load() {
		s.shedFlag.Store(false)
	}
	if s.overTicks >= overTicksToShrink {
		s.overTicks = 0
		s.shrinkAdmission()
	}
	if s.shedTicks >= shedTicksToEngage && !s.shedFlag.Load() {
		s.shedFlag.Store(true)
	}
	if s.underTicks >= underTicksToGrow {
		s.underTicks = 0
		s.growAdmission()
	}
}

// shrinkAdmission halves every cluster's effective cap (floor 1) and
// withholds as many idle procs as the new cap demands. Procs serving
// live connections are untouched; releaseProc catches them on close.
func (s *Server) shrinkAdmission() {
	low := int64(1 << 30)
	for c := range s.adm {
		a := &s.adm[c]
		a.mu.Lock()
		a.cap = max(1, a.cap/2)
		idle := true
		for idle && len(a.held) < a.full-a.cap {
			select {
			case p := <-s.pools[c]:
				a.held = append(a.held, p)
			default:
				// Pool drained: the remaining over-cap procs are busy;
				// they park in held as their connections end.
				idle = false
			}
		}
		if int64(a.cap) < low {
			low = int64(a.cap)
		}
		a.mu.Unlock()
	}
	if low < s.capLow.Load() {
		s.capLow.Store(low)
	}
}

// growAdmission raises every cluster's cap by one (ceiling full) and
// returns the freed procs to the pool, where the accept loop picks
// them up immediately.
func (s *Server) growAdmission() {
	for c := range s.adm {
		a := &s.adm[c]
		a.mu.Lock()
		a.cap = min(a.full, a.cap+1)
		for len(a.held) > a.full-a.cap {
			p := a.held[len(a.held)-1]
			a.held = a.held[:len(a.held)-1]
			s.pools[c] <- p
		}
		a.mu.Unlock()
	}
}

// releaseProc returns a connection's Proc when it ends: to the held
// set if the cluster is over its current cap (completing a pending
// shrink), otherwise back to the pool for the next admission.
func (s *Server) releaseProc(cluster int, p *numa.Proc) {
	a := &s.adm[cluster]
	a.mu.Lock()
	if len(a.held) < a.full-a.cap {
		a.held = append(a.held, p)
		a.mu.Unlock()
		return
	}
	a.mu.Unlock()
	s.pools[cluster] <- p
}

// admissionCaps reports the current and configured per-cluster caps
// (minimum across clusters — the binding constraint).
func (s *Server) admissionCaps() (cur, full int) {
	cur, full = 1<<30, 1<<30
	for c := range s.adm {
		a := &s.adm[c]
		a.mu.Lock()
		cur = min(cur, a.cap)
		full = min(full, a.full)
		a.mu.Unlock()
	}
	return cur, full
}

// OccupancyTracked reports whether any shard lock exposes an occupancy
// estimate — the signal both the MaxOccupancy gauge and adaptive
// admission need. False means AdaptiveAdmission is inert (the store's
// lock family has no estimator; use a comb-a-* lock).
func (s *Server) OccupancyTracked() bool { return s.occTracked }
