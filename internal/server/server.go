package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kvload"
	"repro/internal/kvstore"
	"repro/internal/numa"
)

// Config parameterizes a Server. Topo and Store are required; every
// other field defaults.
type Config struct {
	// Topo is the software NUMA topology connections are pinned
	// against: each accept loop serves one cluster and every admitted
	// connection owns one of that cluster's *numa.Proc handles for its
	// lifetime (Procs carry unsynchronized per-thread state, so the
	// exclusive ownership is load-bearing, not cosmetic).
	Topo *numa.Topology
	// Store is the batched store requests flush into. Under
	// ClusterAffine placement the connection→cluster pinning keeps
	// each connection's traffic on its cluster's home shards.
	Store *kvstore.Store
	// ConnsPerCluster caps concurrently admitted connections per
	// cluster — the store-front application of restricting concurrency
	// (see DESIGN.md §5): when a cluster's Proc pool is empty its
	// accept loop simply stops accepting, queueing excess clients in
	// the listen backlog instead of adding them to the contention mix.
	// Capped by the topology's procs per cluster, which is also the
	// default.
	ConnsPerCluster int
	// MaxBatch is the flush bound of a connection's pipelined run,
	// aligned to the store's MaxBatch (the default) so a burst of N
	// ops costs ceil(N/MaxBatch) shard acquisitions. The hill-climbing
	// sizer walks below it when observed service time degrades.
	MaxBatch int
	// MaxValueBytes caps accepted set values (DoS bound; also sizes
	// the per-connection response buffers). Default 64 KiB.
	MaxValueBytes int
	// ReadTimeout bounds how long a connection may sit idle or
	// mid-request before being cut; each request read refreshes the
	// deadline. Default 2m.
	ReadTimeout time.Duration
	// WriteTimeout bounds each response flush. Default 30s.
	WriteTimeout time.Duration
	// Version is the string answered to the version command.
	Version string

	// AdaptiveAdmission makes the per-cluster admission cap track the
	// sampled combining occupancy with hysteresis: sustained overload
	// halves the effective cap (idle procs are withheld, new clients
	// wait in the listen backlog), sustained clearance restores it one
	// step at a time, and acute overload past shedMultiplier×
	// BusyThreshold sheds flushes with "SERVER_ERROR busy" (see
	// admission.go and DESIGN.md §8). Requires a lock family with an
	// occupancy estimator (comb-a-*); inert otherwise — check
	// OccupancyTracked.
	AdaptiveAdmission bool
	// BusyThreshold is the sampled per-shard occupancy at which the
	// server counts a tick as overloaded. Default: half the topology's
	// proc count (at least 2) — half the machine piling on one shard's
	// combiner is congestion by any measure.
	BusyThreshold int
	// BusyReadTimeout replaces ReadTimeout and bounds WriteTimeout
	// while shedding is engaged — the escalated per-op deadline that
	// evicts slow or stalled clients during overload instead of letting
	// them pin a Proc for the full idle timeout. Acknowledged writes
	// are never dropped by an eviction: the flush before close still
	// runs. Default 1s.
	BusyReadTimeout time.Duration
	// ConnMemoryBytes is the hard per-connection decode-memory bound:
	// a pipelined set run flushes early once its buffered values reach
	// it, and get responses chunk so response staging stays under it.
	// Raised to MaxValueBytes+4 if set lower (one op must fit).
	// Default 8 MiB.
	ConnMemoryBytes int
	// Broken selects a deliberately defective server behavior for
	// harness validation — the chaos twin of locktest's broken locks.
	// Production configs leave it BrokenNone.
	Broken BrokenMode
}

// BrokenMode enumerates deliberate contract violations used to prove
// the chaos harness catches them (internal/soak's self-tests feed a
// Broken server to the soak verifier and assert it objects), mirroring
// locktest's broken-lock self-test discipline.
type BrokenMode int

const (
	// BrokenNone is the production behavior.
	BrokenNone BrokenMode = iota
	// BrokenDropAckedWrite answers STORED for every fourth set without
	// applying it — the exact violation the shedding contract forbids
	// (a shed must never be acknowledged). A soak harness that fails to
	// flag a run against this server is not testing anything.
	BrokenDropAckedWrite
)

const (
	// DefaultMaxValueBytes caps set values unless configured.
	DefaultMaxValueBytes = 64 << 10
	// DefaultBusyReadTimeout is the escalated per-op deadline while
	// shedding is engaged.
	DefaultBusyReadTimeout = time.Second
	// DefaultConnMemoryBytes bounds one connection's decode staging:
	// generous enough that the default MaxBatch×MaxValueBytes response
	// window fits (so batching amortization is untouched), small enough
	// that a thousand hostile connections cannot balloon the heap.
	DefaultConnMemoryBytes = 8 << 20
	defaultReadTimeout     = 2 * time.Minute
	defaultWriteTimeout    = 30 * time.Second
	// DefaultVersion is the version string served by default.
	DefaultVersion = "repro-kvserver 1.0"
	// readerBufBytes is the per-connection decode buffer, which is
	// also the request-line length bound (a ~250-byte key times a
	// long multi-key get fits comfortably).
	readerBufBytes = 16 << 10
	writerBufBytes = 16 << 10
)

func (c *Config) setDefaults() error {
	if c.Topo == nil || c.Store == nil {
		return errors.New("server: Config needs Topo and Store")
	}
	perCluster := c.Topo.MaxProcs() / c.Topo.Clusters()
	if perCluster < 1 {
		perCluster = 1
	}
	if c.ConnsPerCluster <= 0 || c.ConnsPerCluster > perCluster {
		c.ConnsPerCluster = perCluster
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = c.Store.MaxBatch()
	}
	if c.MaxValueBytes <= 0 {
		c.MaxValueBytes = DefaultMaxValueBytes
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = defaultReadTimeout
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = defaultWriteTimeout
	}
	if c.Version == "" {
		c.Version = DefaultVersion
	}
	if c.BusyThreshold <= 0 {
		c.BusyThreshold = max(2, c.Topo.MaxProcs()/2)
	}
	if c.BusyReadTimeout <= 0 {
		c.BusyReadTimeout = DefaultBusyReadTimeout
	}
	if c.ConnMemoryBytes <= 0 {
		c.ConnMemoryBytes = DefaultConnMemoryBytes
	}
	if c.ConnMemoryBytes < c.MaxValueBytes+4 {
		c.ConnMemoryBytes = c.MaxValueBytes + 4
	}
	return nil
}

// Stats is a point-in-time snapshot of server activity.
type Stats struct {
	// Accepted counts admitted connections; Active is how many are
	// being served right now.
	Accepted, Active uint64
	// Gets/Sets/Deletes count operations applied to the store (a
	// multi-key get counts one per key).
	Gets, Sets, Deletes uint64
	// Hits counts get operations that found their key.
	Hits uint64
	// Flushes counts store batch calls — Gets+Sets+Deletes over
	// Flushes is the realized pipelining amortization.
	Flushes uint64
	// BadRequests counts protocol errors answered with an error line.
	BadRequests uint64
	// MaxOccupancy is the peak per-shard combining-executor occupancy
	// estimate (locks.EstimateOccupancy behind Store.ShardOccupancy)
	// sampled while the server ran: how many procs were crowding one
	// shard's combiner at the worst moment — under AdaptiveAdmission
	// this is the signal the admission cap and the shed valve react
	// to. -1 when no shard's lock exposes an estimator (everything but
	// the adaptive-combining comb-a-* family).
	MaxOccupancy int
	// SheddedOps counts operations refused with "SERVER_ERROR busy"
	// while the shed valve was engaged (never acknowledged, never
	// applied — a multi-key get counts one per key).
	SheddedOps uint64
	// EvictedConns counts connections cut by a per-op deadline outside
	// a drain — idle clients at ReadTimeout, stalled or slow clients at
	// the escalated BusyReadTimeout while shedding.
	EvictedConns uint64
	// ClientGone counts connections the CLIENT broke mid-frame (a
	// disconnect inside a set payload, a reset mid-request) — a
	// network/client fault, distinct from BadRequests (malformed but
	// complete frames, a protocol fault). Chaos runs use the split to
	// tell injected faults from server bugs.
	ClientGone uint64
	// AdmissionCap is the current effective per-cluster admission cap
	// (minimum across clusters); AdmissionCapFull is the configured
	// cap it recovers toward; AdmissionCapLow is the low-water mark —
	// the deepest shrink the overload forced. Cap == Full everywhere
	// and Low == Full means admission never shrank.
	AdmissionCap, AdmissionCapFull, AdmissionCapLow int
	// PerClusterAccepted is Accepted split by the accepting cluster.
	PerClusterAccepted []uint64
}

// Server is the TCP front-end. Build with New, run with Serve or
// ListenAndServe, stop with Shutdown.
type Server struct {
	cfg   Config
	store *kvstore.Store

	// pools[c] holds cluster c's admissible Proc handles; an accept
	// loop takes one before accepting and returns it when the
	// connection ends, so pool exhaustion IS the admission cap.
	pools []chan *numa.Proc

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	done     chan struct{}
	// drainFlag mirrors draining for lock-free reads on the decode
	// loop's blocking path. Shutdown sets it BEFORE nudging read
	// deadlines, and the loop re-checks it AFTER arming its own
	// deadline, so a connection either sees the flag or its blocked
	// read is woken by the nudge — never a missed drain.
	drainFlag atomic.Bool

	acceptWG sync.WaitGroup
	connWG   sync.WaitGroup

	accepted     atomic.Uint64
	active       atomic.Int64
	occMax       atomic.Int64
	samplerWG    sync.WaitGroup
	gets         atomic.Uint64
	sets         atomic.Uint64
	deletes      atomic.Uint64
	hits         atomic.Uint64
	flushes      atomic.Uint64
	badRequests  atomic.Uint64
	sheddedOps   atomic.Uint64
	evictedConns atomic.Uint64
	clientGone   atomic.Uint64
	perCluster   []atomic.Uint64

	// Adaptive admission state (see admission.go). adm and capLow are
	// shared; the tick counters belong to the sampler goroutine alone.
	adm        []admission
	capLow     atomic.Int64
	shedFlag   atomic.Bool
	occTracked bool
	overTicks  int
	underTicks int
	shedTicks  int
}

// New validates cfg and builds a Server (not yet listening).
func New(cfg Config) (*Server, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:        cfg,
		store:      cfg.Store,
		pools:      make([]chan *numa.Proc, cfg.Topo.Clusters()),
		conns:      make(map[net.Conn]struct{}),
		done:       make(chan struct{}),
		perCluster: make([]atomic.Uint64, cfg.Topo.Clusters()),
	}
	for c := range s.pools {
		s.pools[c] = make(chan *numa.Proc, cfg.ConnsPerCluster)
	}
	// Deal Proc handles to their cluster's pool, up to the admission
	// cap. Proc i belongs to cluster i mod C (numa.New's round-robin).
	for id := 0; id < cfg.Topo.MaxProcs(); id++ {
		p := cfg.Topo.Proc(id)
		pool := s.pools[p.Cluster()]
		if len(pool) < cap(pool) {
			pool <- p
		}
	}
	s.adm = make([]admission, len(s.pools))
	low := 1 << 30
	for c, pool := range s.pools {
		if len(pool) == 0 {
			return nil, fmt.Errorf("server: cluster %d has no procs to serve connections", c)
		}
		s.adm[c].full = len(pool)
		s.adm[c].cap = len(pool)
		low = min(low, len(pool))
	}
	s.capLow.Store(int64(low))
	s.occMax.Store(-1)
	for i := 0; i < cfg.Store.NumShards(); i++ {
		if _, ok := cfg.Store.ShardOccupancy(i); ok {
			s.occTracked = true
			break
		}
	}
	return s, nil
}

// occupancySampleInterval paces the background occupancy gauge: fine
// enough to catch contention bursts a few tens of milliseconds long,
// coarse enough that the sampler is invisible next to request work.
const occupancySampleInterval = 25 * time.Millisecond

// startOccupancySampler begins the background occupancy gauge when at
// least one shard's lock exposes an estimate (the adaptive combining
// executors); stores without one keep the gauge at -1, pay nothing,
// and leave AdaptiveAdmission inert. Each tick feeds the max per-shard
// estimate to noteOccupancy, which keeps the lifetime peak and — under
// AdaptiveAdmission — drives the cap and shed hysteresis. The sampler
// stops when the server begins draining.
func (s *Server) startOccupancySampler() {
	if !s.occTracked {
		return
	}
	n := s.store.NumShards()
	s.samplerWG.Add(1)
	go func() {
		defer s.samplerWG.Done()
		t := time.NewTicker(occupancySampleInterval)
		defer t.Stop()
		for {
			select {
			case <-s.done:
				return
			case <-t.C:
				peak := 0
				for i := 0; i < n; i++ {
					if occ, ok := s.store.ShardOccupancy(i); ok && occ > peak {
						peak = occ
					}
				}
				s.noteOccupancy(peak)
			}
		}
	}()
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve runs one accept loop per cluster on ln and blocks until the
// server is shut down (returning nil once every connection has
// drained) or the listener fails (returning the accept error; open
// connections keep being served and still require Shutdown).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	if s.ln != nil {
		s.mu.Unlock()
		return errors.New("server: already serving")
	}
	s.ln = ln
	s.mu.Unlock()

	s.startOccupancySampler()
	errCh := make(chan error, len(s.pools))
	for c := range s.pools {
		s.acceptWG.Add(1)
		go s.acceptLoop(ln, c, errCh)
	}
	s.acceptWG.Wait()
	s.connWG.Wait()
	select {
	case err := <-errCh:
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if !draining {
			return err
		}
	default:
	}
	return nil
}

// acceptLoop is cluster's admission gate: it blocks until a Proc
// handle is free in the cluster's pool, then accepts one connection
// and hands both to a serving goroutine. No free Proc means no
// Accept call — admission control by back-pressuring the listen
// backlog rather than by accept-then-reject.
func (s *Server) acceptLoop(ln net.Listener, cluster int, errCh chan<- error) {
	defer s.acceptWG.Done()
	pool := s.pools[cluster]
	for {
		var p *numa.Proc
		select {
		case p = <-pool:
		case <-s.done:
			return
		}
		c, err := ln.Accept()
		if err != nil {
			s.releaseProc(cluster, p)
			select {
			case <-s.done: // Shutdown closed the listener
			default:
				errCh <- err
			}
			return
		}
		s.accepted.Add(1)
		s.perCluster[cluster].Add(1)
		s.active.Add(1)
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			c.Close()
			s.releaseProc(cluster, p)
			s.active.Add(-1)
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, c)
				s.mu.Unlock()
				c.Close()
				s.releaseProc(cluster, p)
				s.active.Add(-1)
				s.connWG.Done()
			}()
			s.serveConn(c, p)
		}()
	}
}

// Shutdown gracefully drains the server: stop accepting, nudge every
// connection's blocked read, let each connection finish the pipelined
// requests it has already read (flushing in-flight batches and
// writing their responses), then close. Connections still open after
// timeout are force-closed and counted in the returned error. Because
// responses are only ever written after the store call returns, no
// acknowledged write is lost by draining at any moment.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.draining = true
	s.drainFlag.Store(true)
	ln := s.ln
	close(s.done)
	// Wake reads blocked on idle connections; serveConn treats a
	// deadline error during drain as a clean goodbye.
	now := time.Now()
	for c := range s.conns {
		c.SetReadDeadline(now)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.samplerWG.Wait() // exits promptly once done is closed

	drained := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-time.After(timeout):
	}
	s.mu.Lock()
	forced := len(s.conns)
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	<-drained
	if forced > 0 {
		return fmt.Errorf("server: drain timeout, force-closed %d connections", forced)
	}
	return nil
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Snapshot returns current statistics.
func (s *Server) Snapshot() Stats {
	cur, full := s.admissionCaps()
	st := Stats{
		Accepted:           s.accepted.Load(),
		Active:             uint64(max(s.active.Load(), 0)),
		Gets:               s.gets.Load(),
		Sets:               s.sets.Load(),
		Deletes:            s.deletes.Load(),
		Hits:               s.hits.Load(),
		Flushes:            s.flushes.Load(),
		BadRequests:        s.badRequests.Load(),
		SheddedOps:         s.sheddedOps.Load(),
		EvictedConns:       s.evictedConns.Load(),
		ClientGone:         s.clientGone.Load(),
		AdmissionCap:       cur,
		AdmissionCapFull:   full,
		AdmissionCapLow:    int(s.capLow.Load()),
		MaxOccupancy:       int(s.occMax.Load()),
		PerClusterAccepted: make([]uint64, len(s.perCluster)),
	}
	for i := range s.perCluster {
		st.PerClusterAccepted[i] = s.perCluster[i].Load()
	}
	return st
}

// getReq records one get/gets request's slice of the accumulated key
// run, so responses reconstruct per-request END framing even though
// the keys flush as one batch.
type getReq struct {
	n   int
	cas bool
}

// conn is the per-connection decode/flush state. All buffers are
// owned by exactly one goroutine; the Proc handle likewise.
type conn struct {
	srv *Server
	c   net.Conn
	p   *numa.Proc
	par *Parser
	w   *bufio.Writer

	sizer *kvload.BatchSizer

	// Pending same-verb run. kind is only meaningful when pending>0.
	kind    Kind
	pending int

	getKeys    []uint64
	getNames   []string
	getReqs    []getReq
	setKeys    []uint64
	setVals    [][]byte
	setSlots   [][]byte
	setNoReply []bool
	delKeys    []uint64
	delNoReply []bool

	dsts  [][]byte
	lens  []int
	found []bool

	// pendingBytes tracks the buffered value bytes of the pending set
	// run against Config.ConnMemoryBytes — the hard decode-memory
	// bound; crossing it flushes early.
	pendingBytes int

	// Local op counters, folded into the server's atomics on close.
	gets, sets, deletes, hits, flushes, badRequests, shedded uint64

	// brokenCount sequences BrokenDropAckedWrite's every-fourth-set
	// violation (harness validation only).
	brokenCount uint64

	numBuf []byte
}

var crlf = []byte("\r\n")

// serveConn runs one connection's decode loop: parse, accumulate
// same-verb runs, flush a run when the verb changes, the run reaches
// the sizer's batch bound, or the reader has no more pipelined bytes.
// Responses for a run are written only after its store call returns.
func (s *Server) serveConn(nc net.Conn, p *numa.Proc) {
	mb := s.cfg.MaxBatch
	c := &conn{
		srv:        s,
		c:          nc,
		p:          p,
		par:        NewParser(bufio.NewReaderSize(nc, readerBufBytes), Limits{MaxValueBytes: s.cfg.MaxValueBytes}),
		w:          bufio.NewWriterSize(nc, writerBufBytes),
		sizer:      kvload.NewBatchSizerAt(mb, mb),
		getKeys:    make([]uint64, 0, mb),
		getNames:   make([]string, 0, mb),
		getReqs:    make([]getReq, 0, mb),
		setKeys:    make([]uint64, 0, mb),
		setVals:    make([][]byte, 0, mb),
		setSlots:   make([][]byte, mb),
		setNoReply: make([]bool, 0, mb),
		delKeys:    make([]uint64, 0, mb),
		delNoReply: make([]bool, 0, mb),
		dsts:       make([][]byte, mb),
		lens:       make([]int, mb),
		found:      make([]bool, mb),
		numBuf:     make([]byte, 0, 24),
	}
	defer c.fold()
	c.loop()
}

// fold drains the connection's local counters into the server totals.
// Called after every flush (so Snapshot tracks live traffic at batch
// granularity, not per-op atomics) and once more on close.
func (c *conn) fold() {
	s := c.srv
	s.gets.Add(c.gets)
	s.sets.Add(c.sets)
	s.deletes.Add(c.deletes)
	s.hits.Add(c.hits)
	s.flushes.Add(c.flushes)
	s.badRequests.Add(c.badRequests)
	s.sheddedOps.Add(c.shedded)
	c.gets, c.sets, c.deletes, c.hits, c.flushes, c.badRequests, c.shedded = 0, 0, 0, 0, 0, 0, 0
}

func (c *conn) loop() {
	var req Request
	for {
		// Block for the next request, with a fresh per-request read
		// deadline — the escalated busy deadline while shedding, so a
		// stalled client cannot pin a Proc through an overload.
		// Anything already pipelined into the buffer parses without
		// touching the deadline. The drain check comes after arming
		// the deadline (see drainFlag's ordering contract): a draining
		// server answers everything already read, then says goodbye
		// instead of blocking for more.
		if c.par.Buffered() == 0 {
			rt := c.srv.cfg.ReadTimeout
			if c.srv.shedFlag.Load() {
				rt = c.srv.cfg.BusyReadTimeout
			}
			c.c.SetReadDeadline(time.Now().Add(rt))
			if c.srv.drainFlag.Load() {
				c.flushOps()
				c.finish()
				return
			}
		}
		err := c.par.ParseRequest(&req)
		if err != nil {
			var pe *ProtoError
			if errors.As(err, &pe) {
				// The stream is still framed (or we are about to cut
				// it); earlier pipelined ops must answer first, in
				// order, then the owed error line.
				c.badRequests++
				c.flushOps()
				c.writeLine(pe.Line)
				if pe.Close {
					c.finish()
					return
				}
				c.maybeFlushWriter()
				continue
			}
			// Transport error or timeout. During drain a deadline
			// nudge is the expected wake-up: finish what was read,
			// answer it, close cleanly. Anything else closes too
			// (flushing what we owe, best-effort) and is classified:
			// deadline expiry is an eviction, a client breaking the
			// connection mid-frame is client-gone — a network/client
			// fault, not a protocol one.
			c.flushOps()
			c.finish()
			c.classifyDisconnect(err)
			return
		}
		switch req.Kind {
		case KindGet:
			c.accumulate(KindGet)
			for _, k := range req.Keys {
				c.getKeys = append(c.getKeys, HashKey(k))
				c.getNames = append(c.getNames, k)
			}
			c.getReqs = append(c.getReqs, getReq{n: len(req.Keys), cas: req.CAS})
			c.pending += len(req.Keys)
		case KindSet:
			c.accumulate(KindSet)
			i := len(c.setKeys)
			c.setSlots[i] = encodeValue(c.setSlots[i], req.Flags, req.Value)
			c.setKeys = append(c.setKeys, HashKey(req.Keys[0]))
			c.setVals = append(c.setVals, c.setSlots[i])
			c.setNoReply = append(c.setNoReply, req.NoReply)
			c.pending++
			c.pendingBytes += 4 + len(req.Value)
		case KindDelete:
			c.accumulate(KindDelete)
			c.delKeys = append(c.delKeys, HashKey(req.Keys[0]))
			c.delNoReply = append(c.delNoReply, req.NoReply)
			c.pending++
		case KindVersion:
			c.flushOps()
			c.writeLine("VERSION " + c.srv.cfg.Version)
		case KindStats:
			c.flushOps()
			c.writeStats()
		case KindQuit:
			c.flushOps()
			c.finish()
			return
		}
		if c.pending >= c.sizer.Size() || c.pendingBytes >= c.srv.cfg.ConnMemoryBytes {
			c.flushOps()
		}
		if c.par.Buffered() == 0 {
			c.flushOps()
			c.maybeFlushWriter()
		}
	}
}

// accumulate starts or continues a same-verb run: a verb change
// flushes the previous run first, preserving the connection's
// response order (a set pipelined before a get is applied — and
// answered — before the get reads).
func (c *conn) accumulate(k Kind) {
	if c.pending > 0 && c.kind != k {
		c.flushOps()
	}
	c.kind = k
}

// finish flushes the response buffer and lets the caller close.
func (c *conn) finish() {
	c.c.SetWriteDeadline(time.Now().Add(c.writeTimeout()))
	c.w.Flush()
}

// writeTimeout is the per-flush write bound: the configured timeout,
// escalated down to the busy timeout while shedding — a client not
// draining its responses during an overload is evicted, not waited on.
func (c *conn) writeTimeout() time.Duration {
	wt := c.srv.cfg.WriteTimeout
	if c.srv.shedFlag.Load() && c.srv.cfg.BusyReadTimeout < wt {
		return c.srv.cfg.BusyReadTimeout
	}
	return wt
}

// classifyDisconnect attributes an abnormal connection end (outside a
// drain): a deadline expiry is an eviction the server chose, anything
// else — a reset, a disconnect mid-payload — is the client or network
// going away. Both are invisible in BadRequests, which counts only
// well-delivered, malformed frames.
func (c *conn) classifyDisconnect(err error) {
	if c.srv.drainFlag.Load() {
		return // the drain nudge: a goodbye, not a fault
	}
	var ne net.Error
	switch {
	case err == io.EOF:
		// Clean close at a request boundary: a normal goodbye.
	case errors.As(err, &ne) && ne.Timeout():
		c.srv.evictedConns.Add(1)
	default:
		c.srv.clientGone.Add(1)
	}
}

// maybeFlushWriter pushes buffered responses before the loop blocks
// on the socket again — the client is waiting on them to send more.
func (c *conn) maybeFlushWriter() {
	if c.w.Buffered() == 0 {
		return
	}
	c.c.SetWriteDeadline(time.Now().Add(c.writeTimeout()))
	if err := c.w.Flush(); err != nil {
		// A dead write side will surface on the next read too; no
		// separate handling needed.
		return
	}
}

// flushOps applies the pending run through the store's batch APIs and
// writes its responses. The store call is timed for the sizer: if
// per-op service time degrades (shards contended, batches outgrowing
// amortization), subsequent flushes shrink.
func (c *conn) flushOps() {
	if c.pending == 0 {
		return
	}
	if c.srv.shedFlag.Load() {
		c.shedOps()
		return
	}
	began := time.Now()
	switch c.kind {
	case KindGet:
		c.flushGets()
	case KindSet:
		setKeys, setVals := c.setKeys, c.setVals
		if c.srv.cfg.Broken == BrokenDropAckedWrite {
			setKeys, setVals = c.brokenFilterSets()
		}
		c.srv.store.MSet(c.p, setKeys, setVals)
		c.sets += uint64(len(c.setKeys))
		c.flushes++
		for _, noreply := range c.setNoReply {
			if !noreply {
				c.writeLine("STORED")
			}
		}
		c.setKeys = c.setKeys[:0]
		c.setVals = c.setVals[:0]
		c.setNoReply = c.setNoReply[:0]
	case KindDelete:
		found := c.found[:len(c.delKeys)]
		c.srv.store.MDeleteEach(c.p, c.delKeys, found)
		c.deletes += uint64(len(c.delKeys))
		c.flushes++
		for i, noreply := range c.delNoReply {
			if noreply {
				continue
			}
			if found[i] {
				c.writeLine("DELETED")
			} else {
				c.writeLine("NOT_FOUND")
			}
		}
		c.delKeys = c.delKeys[:0]
		c.delNoReply = c.delNoReply[:0]
	}
	c.sizer.Observe(c.pending, time.Since(began))
	c.pending = 0
	c.pendingBytes = 0
	c.fold()
}

// shedOps refuses the pending run: every op that owes a response is
// answered "SERVER_ERROR busy" — a legal, frame-preserving error line
// the client can parse, retry, or back off on — and NOTHING touches
// the store. The two halves of the contract: a shed op is never
// applied (so no acknowledged-then-dropped write can exist — STORED is
// only ever written after MSet returns), and the frame stays intact
// (every non-noreply request still gets exactly one answer line, so
// the client's pipeline bookkeeping survives the refusal).
func (c *conn) shedOps() {
	switch c.kind {
	case KindGet:
		for range c.getReqs {
			c.writeLine("SERVER_ERROR busy")
		}
		c.shedded += uint64(len(c.getKeys))
		c.getKeys = c.getKeys[:0]
		c.getNames = c.getNames[:0]
		c.getReqs = c.getReqs[:0]
	case KindSet:
		for _, noreply := range c.setNoReply {
			if !noreply {
				c.writeLine("SERVER_ERROR busy")
			}
		}
		c.shedded += uint64(len(c.setKeys))
		c.setKeys = c.setKeys[:0]
		c.setVals = c.setVals[:0]
		c.setNoReply = c.setNoReply[:0]
	case KindDelete:
		for _, noreply := range c.delNoReply {
			if !noreply {
				c.writeLine("SERVER_ERROR busy")
			}
		}
		c.shedded += uint64(len(c.delKeys))
		c.delKeys = c.delKeys[:0]
		c.delNoReply = c.delNoReply[:0]
	}
	// Deliberately no sizer.Observe: a refusal says nothing about
	// store service time.
	c.pending = 0
	c.pendingBytes = 0
	c.fold()
}

// brokenFilterSets implements BrokenDropAckedWrite: every fourth set
// on the connection is silently removed from the batch about to be
// applied, while the response path (which iterates setNoReply,
// untouched) still answers STORED for it. Exists solely so
// internal/soak's self-test can prove the chaos verifier catches a
// lost acknowledged write; never reachable in production configs.
func (c *conn) brokenFilterSets() (keys []uint64, vals [][]byte) {
	keys, vals = c.setKeys[:0:len(c.setKeys)], c.setVals[:0:len(c.setVals)]
	for i := range c.setKeys {
		c.brokenCount++
		if c.brokenCount%4 == 0 {
			continue
		}
		keys = append(keys, c.setKeys[i])
		vals = append(vals, c.setVals[i])
	}
	return keys, vals
}

// flushGets answers the accumulated get run. Keys flush through MGet
// in chunks of at most MaxBatch — matching the store's own per-
// critical-section bound, so a single-shard run of N keys costs
// exactly ceil(N/MaxBatch) acquisitions — and VALUE lines stream out
// as each chunk returns, with END framing reconstructed per original
// request. Destination buffers are lazily grown slots reused across
// chunks and flushes.
func (c *conn) flushGets() {
	mb := c.srv.cfg.MaxBatch
	valCap := 4 + c.srv.cfg.MaxValueBytes
	// The response staging for one chunk is chunk×valCap of lazily
	// grown destination slots; keep that under the connection's decode
	// memory bound too (the default 8 MiB bound leaves the default
	// MaxBatch×64KiB window untouched).
	if byChunk := c.srv.cfg.ConnMemoryBytes / valCap; byChunk < mb {
		mb = max(1, byChunk)
	}
	reqIdx, left := 0, 0
	if len(c.getReqs) > 0 {
		left = c.getReqs[0].n
	}
	for start := 0; start < len(c.getKeys); start += mb {
		end := min(start+mb, len(c.getKeys))
		n := end - start
		dsts, lens, found := c.dsts[:n], c.lens[:n], c.found[:n]
		for i := range dsts {
			if cap(dsts[i]) < valCap {
				dsts[i] = make([]byte, valCap)
			}
			dsts[i] = dsts[i][:valCap]
		}
		c.srv.store.MGet(c.p, c.getKeys[start:end], dsts, lens, found)
		c.flushes++
		for i := 0; i < n; i++ {
			for left == 0 {
				// Zero-key requests cannot exist (parser enforces
				// >= 1), so this only closes out finished requests.
				c.writeLine("END")
				reqIdx++
				left = c.getReqs[reqIdx].n
			}
			if found[i] {
				c.hits++
				flags, val := decodeValue(dsts[i][:lens[i]])
				c.writeValue(c.getNames[start+i], flags, val, c.getReqs[reqIdx].cas)
			}
			left--
		}
	}
	c.gets += uint64(len(c.getKeys))
	// Close out the trailing finished request(s).
	for reqIdx < len(c.getReqs) {
		if left == 0 {
			c.writeLine("END")
			reqIdx++
			if reqIdx < len(c.getReqs) {
				left = c.getReqs[reqIdx].n
			}
			continue
		}
		left = 0
	}
	c.getKeys = c.getKeys[:0]
	c.getNames = c.getNames[:0]
	c.getReqs = c.getReqs[:0]
}

// writeValue emits one VALUE response block:
// "VALUE <key> <flags> <bytes>[ <cas>]\r\n<data>\r\n".
func (c *conn) writeValue(key string, flags uint32, val []byte, cas bool) {
	c.w.WriteString("VALUE ")
	c.w.WriteString(key)
	c.w.WriteByte(' ')
	c.writeUint(uint64(flags))
	c.w.WriteByte(' ')
	c.writeUint(uint64(len(val)))
	if cas {
		c.w.WriteByte(' ')
		c.writeUint(PseudoCAS(val))
	}
	c.w.Write(crlf)
	c.w.Write(val)
	c.w.Write(crlf)
}

func (c *conn) writeUint(v uint64) {
	c.numBuf = strconv.AppendUint(c.numBuf[:0], v, 10)
	c.w.Write(c.numBuf)
}

func (c *conn) writeLine(s string) {
	c.w.WriteString(s)
	c.w.Write(crlf)
}

// writeStats answers the stats command: "STAT <name> <value>" lines
// then END, the memcached shape. This is the wire-visible face of
// Snapshot — it exists so an external observer (kvsoak's chaos mode)
// can watch the admission cap shrink and recover without a side
// channel into the process. Counters folded so far plus this
// connection's unfolded locals, so a single-connection observer sees
// its own traffic.
func (c *conn) writeStats() {
	c.fold() // fold locals first so the snapshot includes them
	st := c.srv.Snapshot()
	stat := func(name string, v uint64) {
		c.w.WriteString("STAT ")
		c.w.WriteString(name)
		c.w.WriteByte(' ')
		c.writeUint(v)
		c.w.Write(crlf)
	}
	stati := func(name string, v int) {
		c.w.WriteString("STAT ")
		c.w.WriteString(name)
		c.w.WriteByte(' ')
		c.numBuf = strconv.AppendInt(c.numBuf[:0], int64(v), 10)
		c.w.Write(c.numBuf)
		c.w.Write(crlf)
	}
	stat("accepted", st.Accepted)
	stat("active", st.Active)
	stat("gets", st.Gets)
	stat("sets", st.Sets)
	stat("deletes", st.Deletes)
	stat("hits", st.Hits)
	stat("flushes", st.Flushes)
	stat("bad_requests", st.BadRequests)
	stat("client_gone", st.ClientGone)
	stat("evicted_conns", st.EvictedConns)
	stat("shedded_ops", st.SheddedOps)
	stati("admission_cap", st.AdmissionCap)
	stati("admission_cap_full", st.AdmissionCapFull)
	stati("admission_cap_low", st.AdmissionCapLow)
	stati("max_occupancy", st.MaxOccupancy)
	c.writeLine("END")
}
