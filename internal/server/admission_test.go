package server

import (
	"bufio"
	"io"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/numa"
)

// feed replays an occupancy sequence through noteOccupancy — the
// sampler's test seam — driving the hysteresis deterministically.
func feed(s *Server, occ, ticks int) {
	for i := 0; i < ticks; i++ {
		s.noteOccupancy(occ)
	}
}

// TestAdmissionHysteresis replays occupancy sequences against a
// non-serving server and pins the whole escalation ladder: shrink
// needs sustained overload (a burst interrupted by one in-band sample
// does nothing), shrinks are multiplicative and withhold idle procs
// from the pool, shedding arms only after its longer window at the
// higher threshold, clears the moment pressure drops below busy, and
// recovery is additive on the slower under-watermark window.
func TestAdmissionHysteresis(t *testing.T) {
	topo := numa.New(1, 4)
	srv, err := New(Config{
		Topo:              topo,
		Store:             newTestStore(topo, 1, 0),
		AdaptiveAdmission: true,
		BusyThreshold:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	pool := srv.pools[0]
	capNow := func() int { cur, _ := srv.admissionCaps(); return cur }

	// Three over-ticks then one in-band sample: the burst was not
	// sustained, nothing shrinks.
	feed(srv, 4, overTicksToShrink-1)
	feed(srv, 3, 1) // between busy/2 and busy: resets both counters
	if got := capNow(); got != 4 {
		t.Fatalf("cap = %d after interrupted burst, want 4", got)
	}

	// A full over window halves the cap and withholds idle procs.
	feed(srv, 4, overTicksToShrink)
	if got := capNow(); got != 2 {
		t.Fatalf("cap = %d after sustained overload, want 2", got)
	}
	if len(pool) != 2 {
		t.Fatalf("pool holds %d procs at cap 2, want 2 withheld", len(pool))
	}

	// Acute overload: the first shrink window fires before the shed
	// window (4 < 8 ticks) — admission demonstrably shrinks first.
	feed(srv, 2*4, shedTicksToEngage/2)
	if srv.shedFlag.Load() {
		t.Fatal("shed valve engaged before its full window")
	}
	if got := capNow(); got != 1 {
		t.Fatalf("cap = %d mid-acute-overload, want floor 1", got)
	}
	feed(srv, 2*4, shedTicksToEngage/2)
	if !srv.shedFlag.Load() {
		t.Fatal("shed valve not engaged after its full window")
	}

	// One sample below busy closes the shed valve immediately...
	feed(srv, 3, 1)
	if srv.shedFlag.Load() {
		t.Fatal("shed valve still engaged below BusyThreshold")
	}
	// ...but the cap recovers only through the slow additive path.
	if got := capNow(); got != 1 {
		t.Fatalf("cap = %d right after clearance, want still 1", got)
	}
	feed(srv, 1, underTicksToGrow)
	if got := capNow(); got != 2 {
		t.Fatalf("cap = %d after one grow window, want 2", got)
	}
	feed(srv, 1, 2*underTicksToGrow)
	if got := capNow(); got != 4 {
		t.Fatalf("cap = %d after full recovery, want 4", got)
	}
	if len(pool) != 4 {
		t.Fatalf("pool holds %d procs after recovery, want all 4 returned", len(pool))
	}

	st := srv.Snapshot()
	if st.AdmissionCap != 4 || st.AdmissionCapFull != 4 || st.AdmissionCapLow != 1 {
		t.Fatalf("cap stats = %d/%d/low %d, want 4/4/low 1",
			st.AdmissionCap, st.AdmissionCapFull, st.AdmissionCapLow)
	}
}

// TestAdmissionShrinkBlocksNewClients is the structural half end to
// end: after a shrink, a closing connection's proc parks in the held
// set instead of re-arming the accept loop, so the next client waits
// in the listen backlog until recovery returns the proc. (One unit of
// slack is inherent: the accept loop holds a proc in hand while
// blocked in Accept, so the first post-shrink dial still lands.)
func TestAdmissionShrinkBlocksNewClients(t *testing.T) {
	topo := numa.New(1, 2)
	srv, err := New(Config{
		Topo:              topo,
		Store:             newTestStore(topo, 1, 0),
		AdaptiveAdmission: true,
		BusyThreshold:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, serveErr := startServer(t, srv)

	c1, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	exchange(t, c1, "version\r\n", "VERSION "+DefaultVersion+"\r\n")

	feed(srv, 2, overTicksToShrink) // cap 2 -> 1
	if cur, _ := srv.admissionCaps(); cur != 1 {
		t.Fatalf("cap = %d, want 1", cur)
	}

	// The accept loop's in-hand proc admits one more connection; when
	// it closes, the proc must park (cluster over cap), not recycle.
	c2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	exchange(t, c2, "version\r\n", "VERSION "+DefaultVersion+"\r\n")
	c2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Snapshot().Active > 1 {
		if time.Now().After(deadline) {
			t.Fatal("second connection never released")
		}
		time.Sleep(time.Millisecond)
	}

	c3, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if _, err := c3.Write([]byte("version\r\n")); err != nil {
		t.Fatal(err)
	}
	c3.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if n, err := c3.Read(make([]byte, 1)); err == nil {
		t.Fatalf("third connection served (%d bytes) while shrunk to cap 1", n)
	}

	// Recovery returns the held proc and the waiting client is served.
	feed(srv, 0, underTicksToGrow)
	c3.SetReadDeadline(time.Now().Add(5 * time.Second))
	want := "VERSION " + DefaultVersion + "\r\n"
	got := make([]byte, len(want))
	if _, err := io.ReadFull(c3, got); err != nil || string(got) != want {
		t.Fatalf("after recovery: %q, %v", got, err)
	}

	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if st := srv.Snapshot(); st.AdmissionCapLow != 1 || st.AdmissionCap != 2 {
		t.Fatalf("cap stats after recovery: %+v", st)
	}
}

// TestSheddingEndToEnd drives the shed valve over a live connection
// and pins the contract: a shed op answers "SERVER_ERROR busy" (frame
// intact, responses keep lining up with requests), is NEVER applied to
// the store (refused means refused — no acknowledged-then-dropped
// write can exist), and service resumes as soon as pressure clears.
func TestSheddingEndToEnd(t *testing.T) {
	topo := numa.New(1, 2)
	store := newTestStore(topo, 1, 0)
	srv, err := New(Config{
		Topo:              topo,
		Store:             store,
		AdaptiveAdmission: true,
		BusyThreshold:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, serveErr := startServer(t, srv)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	exchange(t, c, "set a 0 0 2\r\nok\r\n", "STORED\r\n")

	feed(srv, 2*2, shedTicksToEngage)
	if !srv.shedFlag.Load() {
		t.Fatal("shed valve not engaged")
	}
	exchange(t, c, "set b 0 0 2\r\nhi\r\n", "SERVER_ERROR busy\r\n")
	exchange(t, c, "get a\r\n", "SERVER_ERROR busy\r\n")
	exchange(t, c, "delete a\r\n", "SERVER_ERROR busy\r\n")
	if _, ok := store.Get(topo.Proc(0), HashKey("b"), make([]byte, 64)); ok {
		t.Fatal("shed set was applied to the store")
	}

	feed(srv, 1, 1) // below busy: valve closes immediately
	exchange(t, c, "set b 0 0 2\r\nhi\r\n", "STORED\r\n")
	exchange(t, c, "get a\r\n", "VALUE a 0 2\r\nok\r\nEND\r\n")

	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	st := srv.Snapshot()
	if st.SheddedOps != 3 {
		t.Fatalf("SheddedOps = %d, want 3", st.SheddedOps)
	}
	// The delete was shed, so "a" must still be present — refused ops
	// leave no trace of any kind.
	if _, ok := store.Get(topo.Proc(0), HashKey("a"), make([]byte, 64)); !ok {
		t.Fatal("shed delete was applied to the store")
	}
}

// TestShedAtCapFloor pins the floor rule: once the cap has shrunk to
// its floor, occupancy can never reach shedMultiplier*BusyThreshold —
// the shrink itself bounds how many clients can crowd the combiner —
// so plain BusyThreshold pressure at the floor counts as acute (the
// overload admission cannot absorb). Without this the gentle valve
// would starve the acute one and shedding could never engage.
func TestShedAtCapFloor(t *testing.T) {
	topo := numa.New(1, 4)
	srv, err := New(Config{
		Topo:              topo,
		Store:             newTestStore(topo, 1, 0),
		AdaptiveAdmission: true,
		BusyThreshold:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	capNow := func() int { cur, _ := srv.admissionCaps(); return cur }

	// Sustained busy (never acute) walks the cap down to its floor.
	feed(srv, 4, 2*overTicksToShrink)
	if got := capNow(); got != 1 {
		t.Fatalf("cap = %d after two shrink windows, want floor 1", got)
	}
	if srv.shedFlag.Load() {
		t.Fatal("shed valve engaged by plain busy pressure above the floor")
	}

	// At the floor the same pressure becomes acute: the shed window
	// starts counting even though occ never reaches 2*BusyThreshold.
	feed(srv, 4, shedTicksToEngage-1)
	if srv.shedFlag.Load() {
		t.Fatal("shed valve engaged before its full window at the floor")
	}
	feed(srv, 4, 1)
	if !srv.shedFlag.Load() {
		t.Fatal("shed valve not engaged by sustained floor-level overload")
	}
	feed(srv, 3, 1)
	if srv.shedFlag.Load() {
		t.Fatal("shed valve still engaged below BusyThreshold")
	}
}

// TestShedCounterDecays pins the decay: calm samples decay the shed
// counter by one instead of resetting it, so an acute overload with a
// high duty cycle still accumulates to the window. A reset-to-zero
// counter would let a single in-band sample erase the whole history
// and shedding would never engage against bursty pressure.
func TestShedCounterDecays(t *testing.T) {
	topo := numa.New(1, 4)
	srv, err := New(Config{
		Topo:              topo,
		Store:             newTestStore(topo, 1, 0),
		AdaptiveAdmission: true,
		BusyThreshold:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two acute ticks then one calm: net +1 per round. Six rounds keep
	// the counter under the window (peak 7 mid-round)...
	for i := 0; i < 6; i++ {
		feed(srv, 2*4, 2)
		feed(srv, 3, 1)
	}
	if srv.shedFlag.Load() {
		t.Fatal("shed valve engaged before the decayed counter reached its window")
	}
	// ...and the next burst pushes it over.
	feed(srv, 2*4, 2)
	if !srv.shedFlag.Load() {
		t.Fatal("bursty acute overload never accumulated to the shed window")
	}
}

// readStats issues the stats command and parses the STAT dump.
func readStats(t *testing.T, c net.Conn) map[string]int64 {
	t.Helper()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Write([]byte("stats\r\n")); err != nil {
		t.Fatal(err)
	}
	rd := bufio.NewReader(c)
	out := make(map[string]int64)
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			t.Fatalf("reading stats: %v", err)
		}
		line = strings.TrimSuffix(line, "\r\n")
		if line == "END" {
			return out
		}
		f := strings.Fields(line)
		if len(f) != 3 || f[0] != "STAT" {
			t.Fatalf("malformed stats line %q", line)
		}
		v, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			t.Fatalf("stats line %q: %v", line, err)
		}
		out[f[1]] = v
	}
}

// TestStatsCommand pins the wire-visible stats dump — the face of
// Snapshot a chaos client watches for hysteresis — including that the
// issuing connection's own unfolded traffic is in the numbers.
func TestStatsCommand(t *testing.T) {
	topo := numa.New(1, 2)
	srv, err := New(Config{Topo: topo, Store: newTestStore(topo, 1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	addr, serveErr := startServer(t, srv)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	exchange(t, c, "set s 0 0 2\r\nok\r\n", "STORED\r\n")
	st := readStats(t, c)
	want := map[string]int64{
		"accepted":           1,
		"active":             1,
		"sets":               1,
		"shedded_ops":        0,
		"evicted_conns":      0,
		"client_gone":        0,
		"admission_cap":      2,
		"admission_cap_full": 2,
		"admission_cap_low":  2,
		"max_occupancy":      -1, // pthread store: no estimator
	}
	for k, v := range want {
		got, ok := st[k]
		if !ok {
			t.Fatalf("stats dump missing %q: %v", k, st)
		}
		if got != v {
			t.Fatalf("stats[%q] = %d, want %d (dump %v)", k, got, v, st)
		}
	}

	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestDisconnectClassification pins the fault taxonomy: a client
// vanishing mid-payload is ClientGone (network/client fault), an idle
// client cut by the read deadline is EvictedConns (the server's
// choice), a clean close is neither, and none of them are
// BadRequests (reserved for well-delivered, malformed frames).
func TestDisconnectClassification(t *testing.T) {
	topo := numa.New(1, 4)
	srv, err := New(Config{
		Topo:        topo,
		Store:       newTestStore(topo, 1, 0),
		ReadTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, serveErr := startServer(t, srv)

	waitFor := func(what string, pred func(Stats) bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !pred(srv.Snapshot()) {
			if time.Now().After(deadline) {
				t.Fatalf("%s never observed: %+v", what, srv.Snapshot())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Mid-payload disconnect: 3 of a declared 10 bytes, then gone.
	gone, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gone.Write([]byte("set k 0 0 10\r\nabc")); err != nil {
		t.Fatal(err)
	}
	gone.Close()
	waitFor("ClientGone", func(st Stats) bool { return st.ClientGone == 1 })

	// Idle past the read deadline: evicted.
	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	waitFor("EvictedConns", func(st Stats) bool { return st.EvictedConns == 1 })

	// Clean close after a served request: no fault of any kind.
	clean, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	exchange(t, clean, "version\r\n", "VERSION "+DefaultVersion+"\r\n")
	clean.Close()
	waitFor("clean close", func(st Stats) bool { return st.Active == 0 })

	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	st := srv.Snapshot()
	if st.ClientGone != 1 || st.EvictedConns != 1 || st.BadRequests != 0 {
		t.Fatalf("classification: %+v", st)
	}
}
