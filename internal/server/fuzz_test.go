package server

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzParseRequest drives the parser with arbitrary byte streams —
// torn pipelined frames, oversized declarations, corrupt magic — and
// enforces its two contracts: it never panics, and every failure is
// either a *ProtoError owed to the client (whose line must be a legal
// error response) or a transport error. `go test` runs the seed
// corpus; `go test -fuzz=FuzzParseRequest` explores.
func FuzzParseRequest(f *testing.F) {
	seeds := []string{
		"get foo\r\n",
		"gets a b c\r\nget x\r\n",
		"set k 7 0 5\r\nhello\r\nget k\r\n",
		"set k 7 0 5 noreply\r\nhello\r\n",
		"delete k\r\ndelete k noreply\r\nversion\r\nquit\r\n",
		"set k 0 0 65\r\n" + strings.Repeat("v", 65) + "\r\n",
		"set k 0 0 99999999999\r\n",
		"set k 0 0 5\r\nhelloXX",
		"set k 0 0 -1\r\nx\r\n",
		"cas k 0 0 5 123\r\nhello\r\n",
		"add k 0 0 3\r\nabc\r\n",
		"get " + strings.Repeat("k", 300) + "\r\n",
		"get\r\n\r\nfrobnicate\r\n",
		"set k 0 0 5\r\nhel",
		"get a\x01b\r\nget \xff\xfe\r\n",
		"\r\n\n\r\n",
		"delete k 0 noreply\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p := NewParser(bufio.NewReaderSize(bytes.NewReader(data), 512), Limits{MaxValueBytes: 64})
		var req Request
		for i := 0; i < 1000; i++ {
			err := p.ParseRequest(&req)
			if err == nil {
				// A successful parse must uphold the Request
				// invariants the connection layer relies on.
				switch req.Kind {
				case KindGet:
					if len(req.Keys) == 0 {
						t.Fatal("get with no keys")
					}
				case KindSet:
					if len(req.Keys) != 1 || len(req.Value) > 64 {
						t.Fatalf("set invariants violated: %d keys, %d bytes", len(req.Keys), len(req.Value))
					}
				case KindDelete:
					if len(req.Keys) != 1 {
						t.Fatalf("delete with %d keys", len(req.Keys))
					}
				}
				continue
			}
			var pe *ProtoError
			if errors.As(err, &pe) {
				if !strings.HasPrefix(pe.Line, "CLIENT_ERROR ") &&
					!strings.HasPrefix(pe.Line, "SERVER_ERROR ") &&
					pe.Line != "ERROR" {
					t.Fatalf("illegal error response line %q", pe.Line)
				}
				if pe.Close {
					return
				}
				continue
			}
			if err != io.EOF && err != io.ErrUnexpectedEOF {
				t.Fatalf("unexpected transport error type: %v", err)
			}
			return
		}
	})
}
