package server

import (
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/numa"
)

// TestDrainWithHalfWrittenFrame extends the PR 7 drain tests with an
// injected fault: a client frozen holding HALF a written frame when
// Shutdown begins. The deadline nudge must wake the server's blocked
// mid-frame read so the drain completes promptly and cleanly — a
// stalled client must not hold the drain to its timeout.
func TestDrainWithHalfWrittenFrame(t *testing.T) {
	topo := numa.New(1, 2)
	store := newTestStore(topo, 1, 0)
	srv, err := New(Config{Topo: topo, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	addr, serveErr := startServer(t, srv)

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Every write fragments: half goes out, then a minute-long gap —
	// the frame is torn exactly mid-payload and stays torn.
	fc := faultnet.Wrap(raw, faultnet.Faults{ShortWrites: 1, FragmentGap: time.Minute})
	defer fc.Close()
	wrote := make(chan struct{})
	go func() {
		defer close(wrote)
		fc.Write([]byte("set stuck 0 0 8\r\npayload!\r\n"))
	}()

	// Wait until the server is demonstrably blocked inside the frame.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Snapshot().Accepted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("half-frame client never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)

	start := time.Now()
	if err := srv.Shutdown(10 * time.Second); err != nil {
		t.Fatalf("Shutdown with half-written frame pending: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain took %v against a stalled client, want prompt", elapsed)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}

	// The torn set was never completed, so it must not be in the store
	// — and it must not be classified as a client fault either (the
	// cut happened because WE drained).
	if _, ok := store.Get(topo.Proc(0), HashKey("stuck"), make([]byte, 64)); ok {
		t.Fatal("half-written set appeared in the store")
	}
	if st := srv.Snapshot(); st.ClientGone != 0 || st.EvictedConns != 0 {
		t.Fatalf("drain cut misclassified as a fault: %+v", st)
	}
	fc.Close() // wake the fragmented writer
	<-wrote
}

// TestAckedWritePreservedAcrossResponseReset lands a reset at the
// exact window the shedding contract worries about: AFTER the store
// call returns, DURING the response write (the server-side schedule
// cuts the connection one byte into "STORED\r\n"). The write must be
// durable — the ack order "store first, answer second" is what makes
// a torn ack safe: the client sees an indeterminate op, never a lie.
func TestAckedWritePreservedAcrossResponseReset(t *testing.T) {
	topo := numa.New(1, 2)
	store := newTestStore(topo, 1, 0)
	srv, err := New(Config{Topo: topo, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Server-side injection: the accepted connection dies after its
	// first response byte leaves.
	in := faultnet.NewInjector(faultnet.Faults{ResetAfterWriteBytes: 1})
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(in.Listen(ln)) }()

	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Write([]byte("set durable 0 0 5\r\nhello\r\n")); err != nil {
		t.Fatal(err)
	}
	// The client sees at most one byte of the ack, then the cut.
	got, _ := io.ReadAll(c)
	if len(got) > 1 {
		t.Fatalf("read %q through a 1-byte write bound", got)
	}

	// The acknowledged-order guarantee: the value IS in the store.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := store.Get(topo.Proc(0), HashKey("durable"), make([]byte, 64)); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("write applied before its response was never stored")
		}
		time.Sleep(time.Millisecond)
	}
	if in.Counters().Resets == 0 {
		t.Fatal("injected reset never fired — test proved nothing")
	}
	// The server observed its conn die outside a drain: client-gone,
	// not a protocol error.
	for srv.Snapshot().ClientGone == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("reset not classified: %+v", srv.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}

	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

// TestBrokenDropAckedWrite pins the deliberate defect internal/soak's
// self-test relies on: every fourth set answers STORED but is not
// applied. If this stopped dropping writes, the chaos harness's
// lost-acked-write detector would be validated against nothing.
func TestBrokenDropAckedWrite(t *testing.T) {
	topo := numa.New(1, 2)
	store := newTestStore(topo, 1, 0)
	srv, err := New(Config{Topo: topo, Store: store, Broken: BrokenDropAckedWrite})
	if err != nil {
		t.Fatal(err)
	}
	addr, serveErr := startServer(t, srv)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	keys := []string{"b1", "b2", "b3", "b4"}
	for _, k := range keys {
		exchange(t, c, "set "+k+" 0 0 2\r\nvv\r\n", "STORED\r\n")
	}
	dropped := 0
	for _, k := range keys {
		if _, ok := store.Get(topo.Proc(0), HashKey(k), make([]byte, 64)); !ok {
			dropped++
		}
	}
	if dropped != 1 {
		t.Fatalf("broken server dropped %d of 4 acked sets, want exactly 1", dropped)
	}

	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}
