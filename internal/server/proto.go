// Package server is the store's wire-protocol front-end: a TCP server
// speaking the pipelined memcached text protocol (get/gets multi-key,
// set, delete, version, quit) over the sharded, batched kvstore.
//
// The design premise is the same amortization the batch APIs give
// in-process callers, carried across the socket: a connection's decode
// loop accumulates consecutive same-verb requests and flushes each run
// through MGet/MSet/MDeleteEach, so a pipelined burst of N same-shard
// operations costs ceil(N/MaxBatch) lock acquisitions instead of N.
// Responses are written only after the store call returns — an
// acknowledged write is in the store by construction, which is what
// makes graceful drain lossless (see Server.Shutdown).
//
// Protocol deviations from stock memcached, recorded here because the
// wire format is public API (see also DESIGN.md §5):
//
//   - Keys are hashed to the store's uint64 keyspace with FNV-1a; two
//     distinct keys colliding in 64 bits would alias. Flags round-trip
//     by storing a 4-byte big-endian header ahead of the value bytes.
//   - exptime is parsed and ignored — the store has no TTL (DESIGN.md
//     §2); cas unique values are served as an FNV-1a checksum of the
//     stored value ("gets" works, "cas" is not implemented).
//   - Storage verbs beyond set (add/replace/append/prepend/cas) have
//     their bodies consumed and answer "SERVER_ERROR not implemented",
//     keeping the stream in sync for stock clients that probe them.
package server

import (
	"bufio"
	"encoding/binary"
	"io"
)

// Kind discriminates parsed requests.
type Kind uint8

const (
	// KindGet covers get and gets (Request.CAS tells them apart).
	KindGet Kind = iota
	// KindSet is a storage request with a parsed data block.
	KindSet
	// KindDelete removes one key.
	KindDelete
	// KindVersion answers the server version string.
	KindVersion
	// KindStats answers a "STAT <name> <value>" dump then END — the
	// wire-visible Stats snapshot (admission cap, shed counters, …).
	KindStats
	// KindQuit closes the connection.
	KindQuit
)

// Limits bounds what the parser accepts; the zero value is unusable —
// callers fill it from Config defaults.
type Limits struct {
	// MaxValueBytes caps a set's declared data-block size. Larger
	// declarations are answered with SERVER_ERROR and the body is
	// consumed (or, beyond maxSwallowBytes, the connection is cut).
	MaxValueBytes int
}

// maxKeyBytes is the protocol's key length bound.
const maxKeyBytes = 250

// maxSwallowBytes bounds how much of an oversized data block the
// server reads and discards to keep the stream in sync before it
// gives up and cuts the connection instead.
const maxSwallowBytes = 8 << 20

// Request is one parsed client request. Keys and Value alias the
// parser's internal buffers and are valid only until the next
// ParseRequest call on the same Parser; the connection layer copies
// what it accumulates.
type Request struct {
	Kind    Kind
	Keys    []string // get/gets: 1..n keys; set/delete: exactly one
	CAS     bool     // gets: responses carry a cas unique value
	Flags   uint32   // set: opaque client flags, round-tripped
	NoReply bool     // set/delete: suppress the response
	Value   []byte   // set: the data block (without the CRLF)
}

// ProtoError is a protocol-level failure with the exact response line
// owed to the client. Close reports that the stream can no longer be
// trusted to be in frame sync and must be cut after the response.
type ProtoError struct {
	Line  string
	Close bool
}

func (e *ProtoError) Error() string { return e.Line }

var (
	errLineTooLong = &ProtoError{Line: "CLIENT_ERROR line too long", Close: true}
	errBadFormat   = &ProtoError{Line: "CLIENT_ERROR bad command line format"}
	errBadChunk    = &ProtoError{Line: "CLIENT_ERROR bad data chunk", Close: true}
	errTooLarge    = &ProtoError{Line: "SERVER_ERROR object too large for cache"}
	errUnknownCmd  = &ProtoError{Line: "ERROR"}
	errNotImpl     = &ProtoError{Line: "SERVER_ERROR command not implemented"}
)

// Parser decodes requests from a buffered stream, reusing its field
// and body buffers across calls so a steady pipelined decode loop
// allocates only the key strings it hands upward.
type Parser struct {
	r      *bufio.Reader
	lim    Limits
	keys   []string
	body   []byte
	fields [][]byte
}

// NewParser wraps r. The bufio buffer bounds the accepted line length
// (requests whose command line overflows it are answered with
// CLIENT_ERROR and cut), so the caller sizes r as its request-line
// DoS bound.
func NewParser(r *bufio.Reader, lim Limits) *Parser {
	return &Parser{r: r, lim: lim}
}

// Buffered reports how many decoded-but-unparsed bytes sit in the
// underlying reader — the connection layer's "more pipelined input is
// already here" signal that defers flushing.
func (p *Parser) Buffered() int { return p.r.Buffered() }

// ParseRequest decodes one request into req. It returns nil and a
// filled req; or a *ProtoError carrying the response line the client
// is owed (req is invalid); or a transport error (io.EOF at a clean
// request boundary). It never panics on any input.
func (p *Parser) ParseRequest(req *Request) error {
	line, err := p.readLine()
	if err != nil {
		return err
	}
	*req = Request{}
	p.splitFields(line)
	if len(p.fields) == 0 {
		return errUnknownCmd
	}
	cmd := string(p.fields[0])
	args := p.fields[1:]
	switch cmd {
	case "get", "gets":
		if len(args) == 0 {
			return errBadFormat
		}
		p.keys = p.keys[:0]
		for _, f := range args {
			if !validKey(f) {
				return errBadFormat
			}
			p.keys = append(p.keys, string(f))
		}
		req.Kind = KindGet
		req.Keys = p.keys
		req.CAS = cmd == "gets"
		return nil
	case "set":
		return p.parseStorage(req, args, true)
	case "add", "replace", "append", "prepend":
		// Parse and consume like set to stay in frame sync, then
		// report the verb unimplemented.
		if err := p.parseStorage(req, args, false); err != nil {
			return err
		}
		return errNotImpl
	case "cas":
		// cas has an extra unique-id field between bytes and noreply.
		if len(args) == 5 || (len(args) == 6 && string(args[5]) == "noreply") {
			if err := p.parseStorage(req, args[:4], false); err != nil {
				return err
			}
			return errNotImpl
		}
		return errBadFormat
	case "delete":
		// Accept the historical "delete <key> 0 [noreply]" form too.
		if len(args) >= 2 && string(args[1]) == "0" {
			args = append(args[:1], args[2:]...)
		}
		if len(args) == 0 || len(args) > 2 || !validKey(args[0]) {
			return errBadFormat
		}
		if len(args) == 2 {
			if string(args[1]) != "noreply" {
				return errBadFormat
			}
			req.NoReply = true
		}
		p.keys = append(p.keys[:0], string(args[0]))
		req.Kind = KindDelete
		req.Keys = p.keys
		return nil
	case "version":
		req.Kind = KindVersion
		return nil
	case "stats":
		// Sub-arguments (stats items, stats slabs, …) are accepted and
		// ignored: one unified dump.
		req.Kind = KindStats
		return nil
	case "quit":
		req.Kind = KindQuit
		return nil
	}
	return errUnknownCmd
}

// parseStorage parses "<key> <flags> <exptime> <bytes> [noreply]" and
// the following data block. When keep is false the block is still
// consumed (frame sync) but not retained. A malformed header whose
// bytes field IS readable still has its data block consumed before
// the error is reported, so the next pipelined request parses clean;
// an unreadable bytes field leaves the stream unframeable and the
// error demands a close.
func (p *Parser) parseStorage(req *Request, args [][]byte, keep bool) error {
	var size uint64
	sizeOK := false
	if len(args) >= 4 {
		size, sizeOK = parseUint(args[3], maxSwallowBytes)
	}
	badFormat := func() error {
		if !sizeOK {
			return &ProtoError{Line: errBadFormat.Line, Close: true}
		}
		if err := p.discard(int(size) + 2); err != nil {
			return err
		}
		return errBadFormat
	}
	if len(args) < 4 {
		// Too few fields to have declared a data block: nothing to
		// swallow, the next line is a fresh command.
		return errBadFormat
	}
	if len(args) > 5 {
		return badFormat()
	}
	if !validKey(args[0]) {
		return badFormat()
	}
	flags, ok := parseUint(args[1], 1<<32-1)
	if !ok {
		return badFormat()
	}
	// exptime: accepted and ignored (no TTL in the store); a leading
	// '-' is tolerated like memcached's "expire immediately".
	exp := args[2]
	if len(exp) > 0 && exp[0] == '-' {
		exp = exp[1:]
	}
	if _, ok := parseUint(exp, 1<<62); !ok {
		return badFormat()
	}
	if !sizeOK {
		// A parseable-but-huge size still has a data block behind it
		// that we refuse to stream: cut the connection.
		if _, huge := parseUint(args[3], 1<<62); huge {
			return &ProtoError{Line: errTooLarge.Line, Close: true}
		}
		return &ProtoError{Line: errBadFormat.Line, Close: true}
	}
	if len(args) == 5 {
		if string(args[4]) != "noreply" {
			return badFormat()
		}
		req.NoReply = true
	}
	if int(size) > p.lim.MaxValueBytes {
		// Swallow the declared block so the next request parses clean.
		if err := p.discard(int(size) + 2); err != nil {
			return err
		}
		return errTooLarge
	}
	if cap(p.body) < int(size)+2 {
		p.body = make([]byte, size+2)
	}
	body := p.body[:size+2]
	if _, err := io.ReadFull(p.r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	if body[size] != '\r' || body[size+1] != '\n' {
		return errBadChunk
	}
	if keep {
		p.keys = append(p.keys[:0], string(args[0]))
		req.Kind = KindSet
		req.Keys = p.keys
		req.Flags = uint32(flags)
		req.Value = body[:size]
	}
	return nil
}

// readLine reads one CRLF- (or bare LF-) terminated line, without the
// terminator. A line overflowing the bufio buffer is a protocol
// violation (the buffer is the configured line-length bound).
func (p *Parser) readLine() ([]byte, error) {
	line, err := p.r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		return nil, errLineTooLong
	}
	if err != nil {
		if err == io.EOF && len(line) > 0 {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// discard consumes n bytes (an oversized data block) so the stream
// stays in frame sync after an error response.
func (p *Parser) discard(n int) error {
	if _, err := p.r.Discard(n); err != nil {
		if err == io.EOF {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	return nil
}

// splitFields splits line on single spaces into p.fields, reusing the
// backing array. Empty fields (doubled spaces) are dropped, matching
// the tolerance of a Fields-style split.
func (p *Parser) splitFields(line []byte) {
	p.fields = p.fields[:0]
	start := -1
	for i := 0; i <= len(line); i++ {
		if i == len(line) || line[i] == ' ' {
			if start >= 0 {
				p.fields = append(p.fields, line[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
}

// validKey enforces the protocol's key rules: 1..250 bytes, no
// whitespace or control characters.
func validKey(k []byte) bool {
	if len(k) == 0 || len(k) > maxKeyBytes {
		return false
	}
	for _, c := range k {
		if c <= ' ' || c == 0x7f {
			return false
		}
	}
	return true
}

// parseUint parses a decimal unsigned integer with an inclusive bound,
// rejecting empty input, non-digits and overflow.
func parseUint(b []byte, max uint64) (uint64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		d := uint64(c - '0')
		if v > (max-d)/10 {
			return 0, false
		}
		v = v*10 + d
	}
	return v, true
}

// HashKey maps a wire key to the store's uint64 keyspace (FNV-1a).
// Distinct keys colliding in 64 bits would alias — acceptable for a
// cache (a collision reads as a different value having been set), and
// vanishingly unlikely below ~2^32 keys.
func HashKey(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// PseudoCAS derives the cas unique value served by gets: an FNV-1a
// checksum of the stored value bytes. It changes whenever the value
// does, which is the monotonicity "gets" consumers rely on for
// read-your-writes checks; the cas storage verb itself is not
// implemented.
func PseudoCAS(value []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range value {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// encodeValue prepends the 4-byte big-endian flags header under which
// values are stored, writing into dst (grown as needed) and returning
// the stored block.
func encodeValue(dst []byte, flags uint32, value []byte) []byte {
	need := 4 + len(value)
	if cap(dst) < need {
		dst = make([]byte, need)
	}
	dst = dst[:need]
	binary.BigEndian.PutUint32(dst, flags)
	copy(dst[4:], value)
	return dst
}

// decodeValue splits a stored block back into flags and value bytes.
// Blocks shorter than the header were not written by this server
// (another in-process writer shares the store); they answer as flags 0
// with the raw bytes.
func decodeValue(block []byte) (uint32, []byte) {
	if len(block) < 4 {
		return 0, block
	}
	return binary.BigEndian.Uint32(block), block[4:]
}
