package server

import (
	"bufio"
	"io"
	"strings"
	"testing"
)

func newTestParser(input string) *Parser {
	return NewParser(bufio.NewReaderSize(strings.NewReader(input), 1024), Limits{MaxValueBytes: 64})
}

// TestParseWellFormed pins the accepted grammar.
func TestParseWellFormed(t *testing.T) {
	p := newTestParser("get foo\r\n" +
		"gets a b c\r\n" +
		"set k 7 0 5\r\nhello\r\n" +
		"set k 7 0 5 noreply\r\nhello\r\n" +
		"set k 0 -1 0\r\n\r\n" +
		"delete k\r\n" +
		"delete k noreply\r\n" +
		"delete k 0 noreply\r\n" +
		"version\r\n" +
		"stats\r\n" +
		"stats items\r\n" +
		"quit\r\n")
	var r Request
	expect := func(step string, check func() bool) {
		t.Helper()
		if err := p.ParseRequest(&r); err != nil {
			t.Fatalf("%s: %v", step, err)
		}
		if !check() {
			t.Fatalf("%s: parsed %+v", step, r)
		}
	}
	expect("get", func() bool { return r.Kind == KindGet && !r.CAS && len(r.Keys) == 1 && r.Keys[0] == "foo" })
	expect("gets", func() bool { return r.Kind == KindGet && r.CAS && len(r.Keys) == 3 && r.Keys[2] == "c" })
	expect("set", func() bool {
		return r.Kind == KindSet && r.Flags == 7 && !r.NoReply && string(r.Value) == "hello" && r.Keys[0] == "k"
	})
	expect("set noreply", func() bool { return r.Kind == KindSet && r.NoReply })
	expect("set empty", func() bool { return r.Kind == KindSet && len(r.Value) == 0 })
	expect("delete", func() bool { return r.Kind == KindDelete && !r.NoReply && r.Keys[0] == "k" })
	expect("delete noreply", func() bool { return r.Kind == KindDelete && r.NoReply })
	expect("delete historical", func() bool { return r.Kind == KindDelete && r.NoReply })
	expect("version", func() bool { return r.Kind == KindVersion })
	expect("stats", func() bool { return r.Kind == KindStats })
	expect("stats with ignored args", func() bool { return r.Kind == KindStats })
	expect("quit", func() bool { return r.Kind == KindQuit })
	if err := p.ParseRequest(&r); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

// TestParseMalformed is the table of protocol violations: each input
// must answer the documented error line, must not panic, and must
// leave the stream in frame sync unless the error demands a close.
func TestParseMalformed(t *testing.T) {
	cases := []struct {
		name  string
		input string
		line  string // expected ProtoError line
		close bool   // expected ProtoError.Close
	}{
		{"empty line", "\r\n", "ERROR", false},
		{"unknown command", "frobnicate x\r\n", "ERROR", false},
		{"get without keys", "get\r\n", "CLIENT_ERROR bad command line format", false},
		{"get key too long", "get " + strings.Repeat("k", 251) + "\r\n", "CLIENT_ERROR bad command line format", false},
		{"get key control char", "get a\x01b\r\n", "CLIENT_ERROR bad command line format", false},
		{"set missing fields", "set k 0 0\r\n", "CLIENT_ERROR bad command line format", false},
		{"set extra fields", "set k 0 0 1 noreply extra\r\nx\r\n", "CLIENT_ERROR bad command line format", false},
		{"set bad flags", "set k x 0 1\r\nx\r\n", "CLIENT_ERROR bad command line format", false},
		{"set bad exptime", "set k 0 y 1\r\nx\r\n", "CLIENT_ERROR bad command line format", false},
		{"set bad bytes", "set k 0 0 -1\r\nx\r\n", "CLIENT_ERROR bad command line format", true},
		{"set bad noreply magic", "set k 0 0 1 norply\r\nx\r\n", "CLIENT_ERROR bad command line format", false},
		{"delete bad noreply magic", "delete k norply\r\n", "CLIENT_ERROR bad command line format", false},
		{"delete without key", "delete\r\n", "CLIENT_ERROR bad command line format", false},
		{"oversized value", "set k 0 0 65\r\n" + strings.Repeat("v", 65) + "\r\n", "SERVER_ERROR object too large for cache", false},
		{"absurd value size", "set k 0 0 99999999999\r\n", "SERVER_ERROR object too large for cache", true},
		{"bad data chunk", "set k 0 0 5\r\nhelloXX", "CLIENT_ERROR bad data chunk", true},
		{"line too long", "get " + strings.Repeat("k", 2000) + "\r\n", "CLIENT_ERROR line too long", true},
		{"cas unimplemented", "cas k 0 0 5 123\r\nhello\r\n", "SERVER_ERROR command not implemented", false},
		{"add unimplemented", "add k 0 0 5\r\nhello\r\n", "SERVER_ERROR command not implemented", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := newTestParser(tc.input + "version\r\n")
			var r Request
			err := p.ParseRequest(&r)
			pe, ok := err.(*ProtoError)
			if !ok {
				t.Fatalf("want *ProtoError, got %v", err)
			}
			if pe.Line != tc.line {
				t.Fatalf("error line = %q, want %q", pe.Line, tc.line)
			}
			if pe.Close != tc.close {
				t.Fatalf("Close = %v, want %v", pe.Close, tc.close)
			}
			if !tc.close {
				// Frame sync: the appended version request must parse.
				if err := p.ParseRequest(&r); err != nil || r.Kind != KindVersion {
					t.Fatalf("stream out of sync after error: %v %+v", err, r)
				}
			}
		})
	}
}

// TestParseTornFrames pins transport-error behavior for frames cut
// mid-request: a clean boundary reports io.EOF, a torn one reports
// ErrUnexpectedEOF — never a panic, never a fabricated request.
func TestParseTornFrames(t *testing.T) {
	cases := []struct {
		name  string
		input string
		err   error
	}{
		{"empty stream", "", io.EOF},
		{"torn command line", "get fo", io.ErrUnexpectedEOF},
		{"torn header", "set k 0 0 5", io.ErrUnexpectedEOF},
		{"torn body", "set k 0 0 5\r\nhel", io.ErrUnexpectedEOF},
		{"missing body terminator", "set k 0 0 5\r\nhello", io.ErrUnexpectedEOF},
		{"torn oversized discard", "set k 0 0 65\r\nshort", io.ErrUnexpectedEOF},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := newTestParser(tc.input)
			var r Request
			if err := p.ParseRequest(&r); err != tc.err {
				t.Fatalf("err = %v, want %v", err, tc.err)
			}
		})
	}
}

// TestValueCodec round-trips the flags header encoding.
func TestValueCodec(t *testing.T) {
	block := encodeValue(nil, 0xDEADBEEF, []byte("payload"))
	flags, val := decodeValue(block)
	if flags != 0xDEADBEEF || string(val) != "payload" {
		t.Fatalf("round-trip gave flags=%#x val=%q", flags, val)
	}
	// Foreign short blocks (written by an in-process sharer of the
	// store) degrade to flags 0, raw bytes.
	flags, val = decodeValue([]byte("ab"))
	if flags != 0 || string(val) != "ab" {
		t.Fatalf("short block gave flags=%d val=%q", flags, val)
	}
}

// TestHashKeyDistinct sanity-checks the wire-key hash.
func TestHashKeyDistinct(t *testing.T) {
	if HashKey("foo") == HashKey("bar") || HashKey("") == HashKey("foo") {
		t.Fatal("suspicious hash collisions on trivial keys")
	}
	if HashKey("foo") != HashKey("foo") {
		t.Fatal("hash not deterministic")
	}
}

// TestParserReuseDoesNotAlias pins the documented buffer ownership:
// a request's Value is only valid until the next ParseRequest, and
// the connection layer copies — so the parser may reuse it.
func TestParserReuseDoesNotAlias(t *testing.T) {
	p := newTestParser("set a 0 0 3\r\nAAA\r\nset b 0 0 3\r\nBBB\r\n")
	var r Request
	if err := p.ParseRequest(&r); err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), r.Value...)
	if err := p.ParseRequest(&r); err != nil {
		t.Fatal(err)
	}
	if string(saved) != "AAA" || string(r.Value) != "BBB" {
		t.Fatalf("copied value %q, second value %q", saved, r.Value)
	}
}
