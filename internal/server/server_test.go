package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/kvstore"
	"repro/internal/locks"
	"repro/internal/numa"
)

func newTestStore(topo *numa.Topology, shards, maxBatch int) *kvstore.Store {
	return kvstore.New(kvstore.Config{
		Topo:     topo,
		Shards:   shards,
		MaxBatch: maxBatch,
		Locking:  kvstore.FromMutex(func() locks.Mutex { return locks.NewPthread() }),
	})
}

// startServer runs srv on a loopback listener and returns the dial
// address plus a channel carrying Serve's return value.
func startServer(t *testing.T, srv *Server) (string, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	return ln.Addr().String(), serveErr
}

// exchange writes send and requires the next len(want) response bytes
// to equal want exactly — the byte-exactness bar for the protocol.
func exchange(t *testing.T, c net.Conn, send, want string) {
	t.Helper()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Write([]byte(send)); err != nil {
		t.Fatalf("write %q: %v", send, err)
	}
	got := make([]byte, len(want))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("reading response to %q: %v (got %q so far)", send, err, got)
	}
	if string(got) != want {
		t.Fatalf("response to %q:\n got  %q\n want %q", send, got, want)
	}
}

// TestServerRoundTrip scripts a client session over a real TCP socket
// and requires byte-exact responses, including a multi-key pipelined
// burst answered in order with one write.
func TestServerRoundTrip(t *testing.T) {
	topo := numa.New(2, 4)
	srv, err := New(Config{Topo: topo, Store: newTestStore(topo, 4, 0)})
	if err != nil {
		t.Fatal(err)
	}
	addr, serveErr := startServer(t, srv)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	exchange(t, c, "set foo 7 0 5\r\nhello\r\n", "STORED\r\n")
	exchange(t, c, "get foo\r\n", "VALUE foo 7 5\r\nhello\r\nEND\r\n")
	cas := PseudoCAS([]byte("hello"))
	exchange(t, c, "gets foo bar\r\n",
		fmt.Sprintf("VALUE foo 7 5 %d\r\nhello\r\nEND\r\n", cas))
	exchange(t, c, "get miss1 miss2\r\n", "END\r\n")
	// noreply suppresses the ack but not the effect.
	exchange(t, c, "set q 1 0 2 noreply\r\nqq\r\nget q\r\n",
		"VALUE q 1 2\r\nqq\r\nEND\r\n")

	// One pipelined write crossing verbs: responses must come back in
	// request order with per-request END framing.
	exchange(t, c,
		"set x 0 0 1\r\n1\r\nget x\r\nget x foo\r\ndelete x\r\nget x\r\n",
		"STORED\r\n"+
			"VALUE x 0 1\r\n1\r\nEND\r\n"+
			"VALUE x 0 1\r\n1\r\nVALUE foo 7 5\r\nhello\r\nEND\r\n"+
			"DELETED\r\n"+
			"END\r\n")

	exchange(t, c, "delete foo\r\n", "DELETED\r\n")
	exchange(t, c, "delete foo\r\n", "NOT_FOUND\r\n")
	exchange(t, c, "version\r\n", "VERSION "+DefaultVersion+"\r\n")

	// Protocol errors answer their line and keep the stream in frame
	// sync (the oversized value is swallowed, not left in the pipe).
	exchange(t, c, "frobnicate\r\n", "ERROR\r\n")
	big := strings.Repeat("v", DefaultMaxValueBytes+1)
	exchange(t, c, "set big 0 0 "+fmt.Sprint(len(big))+"\r\n"+big+"\r\n",
		"SERVER_ERROR object too large for cache\r\n")
	exchange(t, c, "get q\r\n", "VALUE q 1 2\r\nqq\r\nEND\r\n")

	// quit drains the connection: EOF, not an error line.
	if _, err := c.Write([]byte("quit\r\n")); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("after quit: read %d bytes, err %v; want EOF", n, err)
	}

	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}

	st := srv.Snapshot()
	if st.Accepted != 1 || st.Sets != 3 || st.BadRequests != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Gets == 0 || st.Hits == 0 || st.Deletes != 3 || st.Flushes == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestPipelinedBatchAcquisitions is the amortization proof: a
// pipelined burst of N operations on a single-shard store with
// MaxBatch B costs exactly ceil(N/B) lock acquisitions — not N — for
// both a multi-key get and a run of pipelined sets. net.Pipe plus a
// direct serveConn call keeps the burst deterministic: one client
// Write lands in the connection's 16 KiB decode buffer whole, so the
// server sees all N operations before it ever blocks for input.
func TestPipelinedBatchAcquisitions(t *testing.T) {
	const (
		maxBatch = 16
		n        = 64
	)
	topo := numa.New(1, 2)
	var acq atomic.Uint64
	store := kvstore.New(kvstore.Config{
		Topo:     topo,
		Shards:   1,
		MaxBatch: maxBatch,
		Locking: kvstore.FromMutex(func() locks.Mutex {
			return locks.CountAcquisitions(locks.NewPthread(), &acq)
		}),
	})
	srv, err := New(Config{Topo: topo, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if srv.cfg.MaxBatch != maxBatch {
		t.Fatalf("server MaxBatch = %d, want store's %d", srv.cfg.MaxBatch, maxBatch)
	}

	// Populate through the store so the get burst is all hits.
	p := topo.Proc(0)
	for i := 0; i < n; i++ {
		store.Set(p, HashKey(fmt.Sprintf("k%02d", i)), encodeValue(nil, 0, []byte("val")))
	}

	client, serverSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.serveConn(serverSide, topo.Proc(1))
	}()
	client.SetDeadline(time.Now().Add(10 * time.Second))
	rd := bufio.NewReader(client)

	// Burst 1: one multi-key get naming all n keys.
	var get strings.Builder
	get.WriteString("get")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&get, " k%02d", i)
	}
	get.WriteString("\r\n")
	before := acq.Load()
	if _, err := client.Write([]byte(get.String())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		line, err := rd.ReadString('\n')
		if err != nil || !strings.HasPrefix(line, "VALUE k") {
			t.Fatalf("line %d: %q, %v", i, line, err)
		}
		if _, err := rd.ReadString('\n'); err != nil { // data line
			t.Fatal(err)
		}
	}
	if line, err := rd.ReadString('\n'); err != nil || line != "END\r\n" {
		t.Fatalf("terminator: %q, %v", line, err)
	}
	if got := acq.Load() - before; got != n/maxBatch {
		t.Fatalf("get burst of %d keys cost %d acquisitions, want ceil(%d/%d) = %d",
			n, got, n, maxBatch, n/maxBatch)
	}

	// Burst 2: n pipelined sets in a single write.
	var sets strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sets, "set s%02d 0 0 3\r\nv%02d\r\n", i, i)
	}
	before = acq.Load()
	if _, err := client.Write([]byte(sets.String())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if line, err := rd.ReadString('\n'); err != nil || line != "STORED\r\n" {
			t.Fatalf("set ack %d: %q, %v", i, line, err)
		}
	}
	if got := acq.Load() - before; got != n/maxBatch {
		t.Fatalf("set burst of %d ops cost %d acquisitions, want %d",
			n, got, n/maxBatch)
	}

	client.Close()
	<-done
}

// TestGracefulShutdown drives concurrent writers through a drain and
// proves the headline guarantee: every write the server acknowledged
// with STORED is in the store afterwards, and the drain itself is
// clean (no forced closes, Serve returns nil).
func TestGracefulShutdown(t *testing.T) {
	topo := numa.New(2, 4)
	store := newTestStore(topo, 4, 0)
	srv, err := New(Config{Topo: topo, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	addr, serveErr := startServer(t, srv)

	const writers = 3
	lastAcked := make([]atomic.Int64, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return
			}
			defer c.Close()
			c.SetDeadline(time.Now().Add(10 * time.Second))
			ack := make([]byte, len("STORED\r\n"))
			for seq := int64(1); ; seq++ {
				req := fmt.Sprintf("set drain%d 0 0 8\r\n%08d\r\n", w, seq)
				if _, err := c.Write([]byte(req)); err != nil {
					return
				}
				if _, err := io.ReadFull(c, ack); err != nil || string(ack) != "STORED\r\n" {
					return
				}
				lastAcked[w].Store(seq)
			}
		}(w)
	}

	// Let the writers get going, then drain mid-flight.
	for srv.Snapshot().Sets < 10 {
		time.Sleep(time.Millisecond)
	}
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	wg.Wait()

	// Every acknowledged write must be durable. The stored value may be
	// NEWER than the last acked one (a response can be lost in flight
	// after the store applied the write) but never older.
	p := topo.Proc(0)
	dst := make([]byte, 64)
	for w := 0; w < writers; w++ {
		want := lastAcked[w].Load()
		if want == 0 {
			t.Fatalf("writer %d never got an ack — test proved nothing", w)
		}
		nb, ok := store.Get(p, HashKey(fmt.Sprintf("drain%d", w)), dst)
		if !ok {
			t.Fatalf("writer %d: acked key missing after drain", w)
		}
		_, val := decodeValue(dst[:nb])
		var got int64
		fmt.Sscanf(string(val), "%d", &got)
		if got < want {
			t.Fatalf("writer %d: store holds seq %d, but seq %d was acknowledged", w, got, want)
		}
	}
	if srv.Snapshot().Active != 0 {
		t.Fatalf("connections still active after drain: %+v", srv.Snapshot())
	}
}

// TestAdmissionCap pins the Proc-pool admission gate: with a
// one-connection cap the second client is not served until the first
// releases its Proc — back-pressure via the listen backlog, not
// accept-then-reject.
func TestAdmissionCap(t *testing.T) {
	topo := numa.New(1, 2)
	srv, err := New(Config{Topo: topo, Store: newTestStore(topo, 1, 0), ConnsPerCluster: 1})
	if err != nil {
		t.Fatal(err)
	}
	addr, serveErr := startServer(t, srv)

	c1, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	exchange(t, c1, "version\r\n", "VERSION "+DefaultVersion+"\r\n")

	c2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Write([]byte("version\r\n")); err != nil {
		t.Fatal(err)
	}
	c2.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if n, err := c2.Read(make([]byte, 1)); err == nil {
		t.Fatalf("second connection served (%d bytes) despite full admission pool", n)
	}

	// Releasing the first connection's Proc admits the second.
	c1.Close()
	c2.SetReadDeadline(time.Now().Add(5 * time.Second))
	want := "VERSION " + DefaultVersion + "\r\n"
	got := make([]byte, len(want))
	if _, err := io.ReadFull(c2, got); err != nil || string(got) != want {
		t.Fatalf("after release: %q, %v", got, err)
	}

	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	st := srv.Snapshot()
	if st.Accepted != 2 {
		t.Fatalf("Accepted = %d, want 2", st.Accepted)
	}
}

// TestOccupancyGauge exercises the sampled occupancy gauge end to
// end: a store guarded by the adaptive combining executor (the one
// lock family with an occupancy estimator) must move the gauge off
// its -1 sentinel while the server runs, and a store with no
// estimator must leave it there for the server's whole life.
func TestOccupancyGauge(t *testing.T) {
	topo := numa.New(2, 4)
	locking, err := kvstore.FromRegistry(topo, "comb-a-mcs")
	if err != nil {
		t.Fatal(err)
	}
	store := kvstore.New(kvstore.Config{Topo: topo, Shards: 2, Locking: locking})
	srv, err := New(Config{Topo: topo, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	addr, serveErr := startServer(t, srv)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	exchange(t, c, "set occ 0 0 2\r\nok\r\n", "STORED\r\n")
	exchange(t, c, "get occ\r\n", "VALUE occ 0 2\r\nok\r\nEND\r\n")

	// The sampler ticks on its own clock; wait for the first sample
	// rather than racing it.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Snapshot().MaxOccupancy < 0 {
		if time.Now().After(deadline) {
			t.Fatalf("occupancy gauge never sampled: %+v", srv.Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if st := srv.Snapshot(); st.MaxOccupancy < 0 {
		t.Fatalf("MaxOccupancy = %d after sampled run, want >= 0", st.MaxOccupancy)
	}

	// No estimator (plain mutex store): the gauge must stay -1.
	srv2, err := New(Config{Topo: topo, Store: newTestStore(topo, 2, 0)})
	if err != nil {
		t.Fatal(err)
	}
	addr2, serveErr2 := startServer(t, srv2)
	c2, err := net.Dial("tcp", addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	exchange(t, c2, "set occ 0 0 2\r\nok\r\n", "STORED\r\n")
	time.Sleep(3 * occupancySampleInterval)
	if err := srv2.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr2; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if st := srv2.Snapshot(); st.MaxOccupancy != -1 {
		t.Fatalf("MaxOccupancy = %d without an estimator, want -1", st.MaxOccupancy)
	}
}
