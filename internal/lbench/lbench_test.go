package lbench

import (
	"testing"
	"time"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/numa"
)

// quickCfg is a fast configuration for unit tests: tiny duration, no
// injected latency, no idle spin.
func quickCfg(topo *numa.Topology, threads int) Config {
	cfg := DefaultConfig(topo, threads)
	cfg.Duration = 50 * time.Millisecond
	cfg.Cache = cachesim.Config{}
	cfg.NonCSMaxNs = 0
	return cfg
}

func TestValidation(t *testing.T) {
	topo := numa.New(4, 8)
	if _, err := Run(Config{}, locks.NewPthread()); err == nil {
		t.Error("nil topology accepted")
	}
	bad := quickCfg(topo, 9) // more threads than procs
	if _, err := Run(bad, locks.NewPthread()); err == nil {
		t.Error("thread overflow accepted")
	}
	bad = quickCfg(topo, 4)
	bad.Duration = 0
	if _, err := Run(bad, locks.NewPthread()); err == nil {
		t.Error("zero duration accepted")
	}
	bad = quickCfg(topo, 4)
	bad.CSLines = 0
	if _, err := Run(bad, locks.NewPthread()); err == nil {
		t.Error("zero CS lines accepted")
	}
	abad := quickCfg(topo, 4)
	abad.Patience = 0
	if _, err := RunAbortable(abad, locks.NewACLH(topo)); err == nil {
		t.Error("zero patience accepted for abortable run")
	}
}

func TestRunProducesConsistentCounts(t *testing.T) {
	topo := numa.New(4, 16)
	cfg := quickCfg(topo, 8)
	res, err := Run(cfg, locks.NewMCS(topo))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	var sum uint64
	for _, v := range res.PerThread {
		sum += v
	}
	if sum != res.Ops {
		t.Fatalf("per-thread sum %d != total %d", sum, res.Ops)
	}
	// Every op touches CSLines lines.
	if res.Cache.Accesses != res.Ops*uint64(cfg.CSLines) {
		t.Fatalf("cache accesses %d, want %d", res.Cache.Accesses, res.Ops*uint64(cfg.CSLines))
	}
	if res.Throughput() <= 0 {
		t.Fatal("non-positive throughput")
	}
	if res.Elapsed < cfg.Duration {
		t.Fatalf("elapsed %v shorter than configured %v", res.Elapsed, cfg.Duration)
	}
}

func TestSingleThreadNoMigrationsAfterFirst(t *testing.T) {
	topo := numa.New(4, 4)
	cfg := quickCfg(topo, 1)
	res, err := Run(cfg, locks.NewBO(locks.DefaultBOConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 1 {
		t.Fatalf("single thread migrations = %d, want exactly 1 (the cold entry)", res.Migrations)
	}
	if res.FairnessStdDevPct() != 0 {
		t.Fatal("single thread should have zero fairness deviation")
	}
}

func TestCohortLockMigratesLessThanMCS(t *testing.T) {
	// The load-bearing behavioural claim: under multi-cluster
	// contention a cohort lock migrates far less than fair MCS.
	topo := numa.New(4, 16)
	cfg := quickCfg(topo, 16)
	cfg.Duration = 150 * time.Millisecond

	mcs, err := Run(cfg, locks.NewMCS(topo))
	if err != nil {
		t.Fatal(err)
	}
	cbm, err := Run(cfg, core.NewCBOMCS(topo))
	if err != nil {
		t.Fatal(err)
	}
	mcsRate := float64(mcs.Migrations) / float64(mcs.Ops)
	cbmRate := float64(cbm.Migrations) / float64(cbm.Ops)
	if cbmRate > mcsRate/2 {
		t.Errorf("cohort migration rate %.4f not well below MCS %.4f", cbmRate, mcsRate)
	}
	if cbm.AvgBatch() < mcs.AvgBatch() {
		t.Errorf("cohort batch %.1f smaller than MCS batch %.1f", cbm.AvgBatch(), mcs.AvgBatch())
	}
}

func TestMissesTrackMigrations(t *testing.T) {
	topo := numa.New(4, 16)
	cfg := quickCfg(topo, 16)
	cfg.Duration = 150 * time.Millisecond
	mcs, err := Run(cfg, locks.NewMCS(topo))
	if err != nil {
		t.Fatal(err)
	}
	cbm, err := Run(cfg, core.NewCBOMCS(topo))
	if err != nil {
		t.Fatal(err)
	}
	if cbm.MissesPerCS() >= mcs.MissesPerCS() {
		t.Errorf("cohort misses/CS %.3f not below MCS %.3f",
			cbm.MissesPerCS(), mcs.MissesPerCS())
	}
}

func TestRunAbortableAccountsAborts(t *testing.T) {
	topo := numa.New(4, 16)
	cfg := quickCfg(topo, 16)
	cfg.Patience = 20 * time.Microsecond
	res, err := RunAbortable(cfg, locks.NewACLH(topo))
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts < res.Ops {
		t.Fatalf("attempts %d < ops %d", res.Attempts, res.Ops)
	}
	if res.Attempts != res.Ops+res.Aborts {
		t.Fatalf("attempts %d != ops %d + aborts %d", res.Attempts, res.Ops, res.Aborts)
	}
	if res.Ops == 0 {
		t.Fatal("no successful acquisitions")
	}
	if r := res.AbortRate(); r < 0 || r > 1 {
		t.Fatalf("abort rate %v out of range", r)
	}
}

func TestAbortableCohortRuns(t *testing.T) {
	topo := numa.New(4, 16)
	cfg := quickCfg(topo, 12)
	cfg.Patience = 100 * time.Microsecond
	res, err := RunAbortable(cfg, core.NewACBOCLH(topo))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("A-C-BO-CLH made no progress under LBench")
	}
}

func TestResultMetricsEdgeCases(t *testing.T) {
	var r Result
	if r.Throughput() != 0 || r.MissesPerCS() != 0 || r.AbortRate() != 0 ||
		r.FairnessStdDevPct() != 0 {
		t.Fatal("zero-value Result should yield zero metrics")
	}
	r.Ops = 10
	if r.AvgBatch() != 10 {
		t.Fatal("AvgBatch with zero migrations should be Ops")
	}
}
