// Package lbench is the paper's LBench microbenchmark (§4.1): a
// configurable number of identical threads loop acquiring one central
// lock, touching shared data inside the critical section (two cache
// blocks, four counter increments each, by default), releasing, and
// idling a random non-critical interval of up to 4 µs. It measures
// everything Figures 2-6 report: aggregate throughput, per-thread
// throughput distribution (fairness), lock migrations between NUMA
// clusters, simulated L2 coherence misses per critical section, and —
// for abortable locks — abort rates.
package lbench

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cachesim"
	"repro/internal/locks"
	"repro/internal/numa"
	"repro/internal/spin"
)

// Config describes one LBench run.
type Config struct {
	// Topo supplies cluster placement; Threads of its procs are used.
	Topo *numa.Topology
	// Threads is the number of worker goroutines (paper: 1..256).
	Threads int
	// Duration is the measurement interval (paper: 60 s; the harness
	// default is much shorter, the shape is insensitive).
	Duration time.Duration
	// CSLines and WritesPerLine shape the critical section: the paper
	// touches 2 distinct cache blocks, incrementing 4 counters each.
	CSLines       int
	WritesPerLine int
	// NonCSMaxNs bounds the random idle spin after each critical
	// section (paper: up to 4 µs).
	NonCSMaxNs int64
	// Cache configures the simulated coherence latencies.
	Cache cachesim.Config
	// Patience, for abortable runs, is the acquisition timeout.
	Patience time.Duration
}

// DefaultNonCSMaxNs bounds the random non-critical idle. The paper
// uses 4 µs against a ~150 ns saturated critical-section cost (ratio
// ~13x half-window:CS). This reproduction's critical section costs
// ~1.3 µs (commodity cross-core hand-offs plus the simulated NUMA
// charges), so the window is scaled to 16 µs to preserve the paper's
// non-critical:critical ratio — the dimensionless quantity that fixes
// where the scalability curves saturate. See EXPERIMENTS.md.
const DefaultNonCSMaxNs = 16000

// DefaultPatience is the default acquisition timeout of abortable
// runs: comfortably above the saturated queue wait (~60 µs at full
// machine load), so aborts stay the exception — the paper reports
// abort rates under 1%% for its Figure 6 runs.
const DefaultPatience = 500 * time.Microsecond

// DefaultConfig mirrors the paper's parameters (with the idle window
// ratio-rescaled per DefaultNonCSMaxNs) and a short default
// measurement window.
func DefaultConfig(topo *numa.Topology, threads int) Config {
	return Config{
		Topo:          topo,
		Threads:       threads,
		Duration:      300 * time.Millisecond,
		CSLines:       2,
		WritesPerLine: 4,
		NonCSMaxNs:    DefaultNonCSMaxNs,
		Cache:         cachesim.DefaultConfig(),
		Patience:      DefaultPatience,
	}
}

func (c *Config) validate() error {
	if c.Topo == nil {
		return fmt.Errorf("lbench: nil topology")
	}
	if c.Threads < 1 || c.Threads > c.Topo.MaxProcs() {
		return fmt.Errorf("lbench: %d threads outside [1,%d]", c.Threads, c.Topo.MaxProcs())
	}
	if c.Duration <= 0 {
		return fmt.Errorf("lbench: non-positive duration")
	}
	if c.CSLines < 1 {
		return fmt.Errorf("lbench: need at least one critical-section line")
	}
	return nil
}

// Result aggregates one run's measurements.
type Result struct {
	// Ops is the total number of completed critical+non-critical
	// section pairs (the paper's throughput unit).
	Ops uint64
	// PerThread is each worker's completed pairs, for fairness.
	PerThread []uint64
	// Migrations counts critical-section entries whose cluster
	// differed from the previous entry's (lock migrations).
	Migrations uint64
	// Aborts and Attempts are populated by abortable runs.
	Aborts   uint64
	Attempts uint64
	// Cache is the simulated coherence-miss accounting.
	Cache cachesim.Stats
	// Elapsed is the measured wall time.
	Elapsed time.Duration
}

// Throughput reports completed pairs per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// MissesPerCS reports simulated coherence misses per critical section
// (Figure 3's metric).
func (r Result) MissesPerCS() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.Cache.Misses) / float64(r.Ops)
}

// FairnessStdDevPct reports the standard deviation of per-thread
// throughput as a percentage of the mean (Figure 5's metric).
func (r Result) FairnessStdDevPct() float64 {
	if len(r.PerThread) == 0 {
		return 0
	}
	m := float64(r.Ops) / float64(len(r.PerThread))
	if m == 0 {
		return 0
	}
	var ss float64
	for _, v := range r.PerThread {
		d := float64(v) - m
		ss += d * d
	}
	return 100 * math.Sqrt(ss/float64(len(r.PerThread))) / m
}

// AbortRate reports aborts per attempt for abortable runs.
func (r Result) AbortRate() float64 {
	if r.Attempts == 0 {
		return 0
	}
	return float64(r.Aborts) / float64(r.Attempts)
}

// AvgBatch reports the mean run of consecutive same-cluster critical
// sections (ops per migration), the paper's batching statistic.
func (r Result) AvgBatch() float64 {
	if r.Migrations == 0 {
		return float64(r.Ops)
	}
	return float64(r.Ops) / float64(r.Migrations)
}

// slot is per-worker accounting, padded against false sharing.
type slot struct {
	ops        uint64
	migrations uint64
	aborts     uint64
	attempts   uint64
	_          numa.Pad
}

// runner holds one run's shared state.
type runner struct {
	cfg    Config
	domain *cachesim.Domain
	slots  []slot
	stop   atomic.Bool
	start  chan struct{}
	// lastCluster is written under the measured lock: migration
	// detection is itself part of the critical section's shared data,
	// exactly like the paper's counters.
	lastCluster int64
	_           numa.Pad
}

func newRunner(cfg Config) *runner {
	return &runner{
		cfg:         cfg,
		domain:      cachesim.NewDomain(cfg.Topo, cfg.CSLines, cfg.Cache),
		slots:       make([]slot, cfg.Threads),
		start:       make(chan struct{}),
		lastCluster: -1,
	}
}

// body is one critical section: migration bookkeeping plus the
// simulated cache-line accesses.
func (r *runner) body(p *numa.Proc, s *slot) {
	c := int64(p.Cluster())
	if r.lastCluster != c {
		r.lastCluster = c
		s.migrations++
	}
	for line := 0; line < r.cfg.CSLines; line++ {
		r.domain.Access(p, line, r.cfg.WritesPerLine)
	}
}

func (r *runner) nonCS(p *numa.Proc) {
	if r.cfg.NonCSMaxNs > 0 {
		spin.WaitNs(p.RandN(r.cfg.NonCSMaxNs + 1))
	}
}

func (r *runner) collect(elapsed time.Duration) Result {
	res := Result{
		PerThread: make([]uint64, len(r.slots)),
		Cache:     r.domain.Snapshot(),
		Elapsed:   elapsed,
	}
	for i := range r.slots {
		s := &r.slots[i]
		res.PerThread[i] = s.ops
		res.Ops += s.ops
		res.Migrations += s.migrations
		res.Aborts += s.aborts
		res.Attempts += s.attempts
	}
	return res
}

// Run measures a blocking lock under the configured workload.
func Run(cfg Config, lock locks.Mutex) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	spin.Calibrate()
	spin.AutoOversubscribe(cfg.Threads)
	r := newRunner(cfg)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := cfg.Topo.Proc(id)
			s := &r.slots[id]
			<-r.start
			for !r.stop.Load() {
				lock.Lock(p)
				r.body(p, s)
				lock.Unlock(p)
				r.nonCS(p)
				s.ops++
			}
		}(i)
	}
	began := time.Now()
	close(r.start)
	time.Sleep(cfg.Duration)
	r.stop.Store(true)
	wg.Wait()
	return r.collect(time.Since(began)), nil
}

// RunAbortable measures an abortable lock: workers attempt with
// cfg.Patience; aborted attempts perform the non-critical idle and
// retry, and are accounted in Aborts/Attempts.
func RunAbortable(cfg Config, lock locks.TryMutex) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if cfg.Patience <= 0 {
		return Result{}, fmt.Errorf("lbench: abortable run needs positive patience")
	}
	spin.Calibrate()
	spin.AutoOversubscribe(cfg.Threads)
	r := newRunner(cfg)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Threads; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := cfg.Topo.Proc(id)
			s := &r.slots[id]
			<-r.start
			for !r.stop.Load() {
				s.attempts++
				if !lock.TryLockFor(p, cfg.Patience) {
					s.aborts++
					r.nonCS(p)
					continue
				}
				r.body(p, s)
				lock.Unlock(p)
				r.nonCS(p)
				s.ops++
			}
		}(i)
	}
	began := time.Now()
	close(r.start)
	time.Sleep(cfg.Duration)
	r.stop.Store(true)
	wg.Wait()
	return r.collect(time.Since(began)), nil
}
