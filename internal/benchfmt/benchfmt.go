// Package benchfmt is the single place benchmark JSON leaves the
// repository. Every CLI that emits measurement records (kvbench's
// table cells, lbench's sweep points) writes them through Write, so
// downstream trajectory tooling — the CI artifact upload and anything
// plotting across PRs — sees one stable encoding instead of each tool
// hand-rolling its own encoder.
package benchfmt

import (
	"encoding/json"
	"io"
)

// Write encodes records — any slice of per-cell record structs — as
// an indented JSON array with a trailing newline, the repository's
// benchmark interchange format. Field names and shapes stay with the
// callers' record types; this fixes only the envelope.
func Write(w io.Writer, records any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}
