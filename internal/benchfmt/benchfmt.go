// Package benchfmt is the single place benchmark JSON leaves — and
// re-enters — the repository. Every CLI that emits measurement records
// (kvbench's table cells, lbench's sweep points) writes them through
// Write, so downstream trajectory tooling — the CI artifact upload and
// anything plotting across PRs — sees one stable encoding instead of
// each tool hand-rolling its own encoder. Diff closes the loop: it
// compares two such envelopes cell by cell and flags throughput
// regressions, which is what turns the CI artifact from a plot input
// into a perf-trajectory gate.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Write encodes records — any slice of per-cell record structs — as
// an indented JSON array with a trailing newline, the repository's
// benchmark interchange format. Field names and shapes stay with the
// callers' record types; this fixes only the envelope.
func Write(w io.Writer, records any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// DefaultRegressionThreshold is the fractional throughput drop Diff
// flags by default: new below 85% of old is a regression. Noise on a
// shared CI runner sits well inside 15% for the smoke windows the
// artifact is built from; real perf work should compare longer runs
// with a tighter threshold.
const DefaultRegressionThreshold = 0.15

// metricFields are the measured values of a record — everything else
// identifies the cell. Kept as a deny-list so new knobs added to a
// tool's record type extend cell identity automatically instead of
// silently merging cells that differ in the new knob.
var metricFields = map[string]bool{
	"ops_per_sec":         true,
	"speedup_vs_pthread1": true,
	"ops_per_acq":         true,
	"avg_batch":           true,
	// value-memory and index-memory metrics (kvbench churn cells).
	"allocs_per_op": true,
	"gc_pause_ms":   true,
	"gc_assist_ms":  true,
	"arena_spills":  true,
	// lbench's sweep metrics.
	"pairs_per_sec":       true,
	"misses_per_cs":       true,
	"fairness_stddev_pct": true,
	"abort_pct":           true,
}

// Regression is one flagged cell metric: the cell's identity, which
// metric regressed (ops_per_sec dropping or allocs_per_op rising),
// both readings, and the fractional change ((new-old)/old; negative =
// slower for throughput, positive = more allocating for allocs).
type Regression struct {
	Cell     string
	Metric   string
	Old, New float64
	Delta    float64
}

func (r Regression) String() string {
	switch r.Metric {
	case "allocs_per_op":
		return fmt.Sprintf("%s: %.2f -> %.2f allocs/op (%+.1f%%)", r.Cell, r.Old, r.New, r.Delta*100)
	case "gc_pause_ms":
		return fmt.Sprintf("%s: %.2f -> %.2f ms GC pause (%+.1f%%)", r.Cell, r.Old, r.New, r.Delta*100)
	}
	return fmt.Sprintf("%s: %.0f -> %.0f ops/s (%+.1f%%)", r.Cell, r.Old, r.New, r.Delta*100)
}

// cellKey canonicalizes a record's identity fields into a stable
// string key.
func cellKey(rec map[string]any) string {
	keys := make([]string, 0, len(rec))
	for k := range rec {
		if !metricFields[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%v", k, rec[k])
	}
	return b.String()
}

// cellMetrics are one cell's gated readings; has* record whether the
// record carried the metric at all (other tools' record shapes omit
// them).
type cellMetrics struct {
	ops, allocs, pause          float64
	hasOps, hasAllocs, hasPause bool
}

// parseCells decodes one envelope into cell -> gated metrics. Cells
// without any gated metric are skipped; duplicate cells keep the last
// reading, matching how a re-measured cell would supersede an earlier
// one in the same run.
func parseCells(data []byte) (map[string]cellMetrics, error) {
	var recs []map[string]any
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("benchfmt: parsing envelope: %w", err)
	}
	cells := make(map[string]cellMetrics, len(recs))
	for _, rec := range recs {
		var m cellMetrics
		m.ops, m.hasOps = rec["ops_per_sec"].(float64)
		m.allocs, m.hasAllocs = rec["allocs_per_op"].(float64)
		m.pause, m.hasPause = rec["gc_pause_ms"].(float64)
		if m.hasOps || m.hasAllocs || m.hasPause {
			cells[cellKey(rec)] = m
		}
	}
	return cells, nil
}

// minAllocRegression is the absolute allocs/op increase a flagged
// alloc regression must also clear: near-zero cells (an arena mode
// column at 0.001 allocs/op, say) double on background noise alone,
// and a purely fractional threshold would gate on that noise.
const minAllocRegression = 0.5

// minPauseRegression is the absolute GC-pause increase (ms) a flagged
// pause regression must also clear, for the same reason: a compact/
// arena cell whose pauses round to fractions of a millisecond can
// triple on a single background collection, and only the fractional
// test would flag that noise as a regression.
const minPauseRegression = 2.0

// Diff compares two benchmark envelopes (the JSON arrays Write emits)
// cell by cell and returns the cells that regressed by more than
// threshold (fractional; <= 0 selects DefaultRegressionThreshold),
// sorted worst first, plus how many cells the two envelopes had in
// common. Three metrics gate: ops_per_sec dropping, and — for cells
// that carry them — allocs_per_op and gc_pause_ms rising (each by
// more than the threshold AND by an absolute floor,
// minAllocRegression / minPauseRegression, so near-zero readings
// don't flag on noise). Cells present in only one envelope are
// ignored: a trajectory gate must tolerate tables gaining and losing
// columns across PRs.
func Diff(oldJSON, newJSON []byte, threshold float64) (regs []Regression, compared int, err error) {
	if threshold <= 0 {
		threshold = DefaultRegressionThreshold
	}
	oldCells, err := parseCells(oldJSON)
	if err != nil {
		return nil, 0, err
	}
	newCells, err := parseCells(newJSON)
	if err != nil {
		return nil, 0, err
	}
	for cell, o := range oldCells {
		n, ok := newCells[cell]
		if !ok {
			continue
		}
		matched := false
		if o.hasOps && n.hasOps && o.ops > 0 {
			matched = true
			delta := (n.ops - o.ops) / o.ops
			if delta < -threshold {
				regs = append(regs, Regression{Cell: cell, Metric: "ops_per_sec", Old: o.ops, New: n.ops, Delta: delta})
			}
		}
		if o.hasAllocs && n.hasAllocs && o.allocs > 0 {
			matched = true
			delta := (n.allocs - o.allocs) / o.allocs
			if delta > threshold && n.allocs-o.allocs >= minAllocRegression {
				regs = append(regs, Regression{Cell: cell, Metric: "allocs_per_op", Old: o.allocs, New: n.allocs, Delta: delta})
			}
		}
		if o.hasPause && n.hasPause && o.pause > 0 {
			matched = true
			delta := (n.pause - o.pause) / o.pause
			if delta > threshold && n.pause-o.pause >= minPauseRegression {
				regs = append(regs, Regression{Cell: cell, Metric: "gc_pause_ms", Old: o.pause, New: n.pause, Delta: delta})
			}
		}
		if matched {
			compared++
		}
	}
	// Worst first across both metrics: largest fractional change in
	// either direction.
	sort.Slice(regs, func(i, j int) bool { return abs(regs[i].Delta) > abs(regs[j].Delta) })
	return regs, compared, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
