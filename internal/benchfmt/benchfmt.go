// Package benchfmt is the single place benchmark JSON leaves — and
// re-enters — the repository. Every CLI that emits measurement records
// (kvbench's table cells, lbench's sweep points) writes them through
// Write, so downstream trajectory tooling — the CI artifact upload and
// anything plotting across PRs — sees one stable encoding instead of
// each tool hand-rolling its own encoder. Diff closes the loop: it
// compares two such envelopes cell by cell and flags throughput
// regressions, which is what turns the CI artifact from a plot input
// into a perf-trajectory gate.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Write encodes records — any slice of per-cell record structs — as
// an indented JSON array with a trailing newline, the repository's
// benchmark interchange format. Field names and shapes stay with the
// callers' record types; this fixes only the envelope.
func Write(w io.Writer, records any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// DefaultRegressionThreshold is the fractional throughput drop Diff
// flags by default: new below 85% of old is a regression. Noise on a
// shared CI runner sits well inside 15% for the smoke windows the
// artifact is built from; real perf work should compare longer runs
// with a tighter threshold.
const DefaultRegressionThreshold = 0.15

// metricFields are the measured values of a record — everything else
// identifies the cell. Kept as a deny-list so new knobs added to a
// tool's record type extend cell identity automatically instead of
// silently merging cells that differ in the new knob.
var metricFields = map[string]bool{
	"ops_per_sec":         true,
	"speedup_vs_pthread1": true,
	"ops_per_acq":         true,
	"avg_batch":           true,
	// lbench's sweep metrics.
	"pairs_per_sec":       true,
	"misses_per_cs":       true,
	"fairness_stddev_pct": true,
	"abort_pct":           true,
}

// Regression is one flagged cell: its identity, both throughput
// readings, and the fractional change ((new-old)/old, negative =
// slower).
type Regression struct {
	Cell     string
	Old, New float64
	Delta    float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.0f -> %.0f ops/s (%+.1f%%)", r.Cell, r.Old, r.New, r.Delta*100)
}

// cellKey canonicalizes a record's identity fields into a stable
// string key.
func cellKey(rec map[string]any) string {
	keys := make([]string, 0, len(rec))
	for k := range rec {
		if !metricFields[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%v", k, rec[k])
	}
	return b.String()
}

// parseCells decodes one envelope into cell -> ops_per_sec. Cells
// without an ops_per_sec metric (other tools' record shapes) are
// skipped; duplicate cells keep the last reading, matching how a
// re-measured cell would supersede an earlier one in the same run.
func parseCells(data []byte) (map[string]float64, error) {
	var recs []map[string]any
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("benchfmt: parsing envelope: %w", err)
	}
	cells := make(map[string]float64, len(recs))
	for _, rec := range recs {
		ops, ok := rec["ops_per_sec"].(float64)
		if !ok {
			continue
		}
		cells[cellKey(rec)] = ops
	}
	return cells, nil
}

// Diff compares two benchmark envelopes (the JSON arrays Write emits)
// cell by cell and returns the cells whose ops_per_sec dropped by more
// than threshold (fractional; <= 0 selects
// DefaultRegressionThreshold), sorted worst first, plus how many cells
// the two envelopes had in common. Cells present in only one envelope
// are ignored: a trajectory gate must tolerate tables gaining and
// losing columns across PRs.
func Diff(oldJSON, newJSON []byte, threshold float64) (regs []Regression, compared int, err error) {
	if threshold <= 0 {
		threshold = DefaultRegressionThreshold
	}
	oldCells, err := parseCells(oldJSON)
	if err != nil {
		return nil, 0, err
	}
	newCells, err := parseCells(newJSON)
	if err != nil {
		return nil, 0, err
	}
	for cell, oldOps := range oldCells {
		newOps, ok := newCells[cell]
		if !ok || oldOps <= 0 {
			continue
		}
		compared++
		delta := (newOps - oldOps) / oldOps
		if delta < -threshold {
			regs = append(regs, Regression{Cell: cell, Old: oldOps, New: newOps, Delta: delta})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Delta < regs[j].Delta })
	return regs, compared, nil
}
