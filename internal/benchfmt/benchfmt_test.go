package benchfmt

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestWriteEnvelope(t *testing.T) {
	type rec struct {
		Lock    string  `json:"lock"`
		Threads int     `json:"threads"`
		Ops     float64 `json:"ops_per_sec"`
	}
	var buf bytes.Buffer
	if err := Write(&buf, []rec{{"mcs", 4, 1000.5}, {"c-bo-mcs", 8, 2000}}); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `[
  {
    "lock": "mcs",
    "threads": 4,
    "ops_per_sec": 1000.5
  },
  {
    "lock": "c-bo-mcs",
    "threads": 8,
    "ops_per_sec": 2000
  }
]
`
	if got != want {
		t.Fatalf("envelope drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if !strings.HasSuffix(got, "\n") {
		t.Fatal("missing trailing newline")
	}
}

func TestWriteEmptySlice(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []struct{}{}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "[]\n" {
		t.Fatalf("empty slice encoded as %q, want %q", buf.String(), "[]\n")
	}
}

// env builds a tiny envelope from (lock, threads, ops) triples via
// Write, so Diff tests exercise the exact encoding the tools emit.
func env(t *testing.T, cells ...[3]any) []byte {
	t.Helper()
	type rec struct {
		Lock    string  `json:"lock"`
		Threads int     `json:"threads"`
		Ops     float64 `json:"ops_per_sec"`
	}
	recs := make([]rec, len(cells))
	for i, c := range cells {
		recs[i] = rec{c[0].(string), c[1].(int), c[2].(float64)}
	}
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDiffFlagsRegressions(t *testing.T) {
	oldJSON := env(t,
		[3]any{"mcs", 4, 1000.0},
		[3]any{"mcs", 8, 2000.0},
		[3]any{"c-bo-mcs", 4, 3000.0},
	)
	newJSON := env(t,
		[3]any{"mcs", 4, 500.0},       // -50%: regression
		[3]any{"mcs", 8, 1900.0},      // -5%: inside threshold
		[3]any{"c-bo-mcs", 4, 3600.0}, // +20%: improvement
	)
	regs, compared, err := Diff(oldJSON, newJSON, 0)
	if err != nil {
		t.Fatal(err)
	}
	if compared != 3 {
		t.Errorf("compared %d cells, want 3", compared)
	}
	if len(regs) != 1 {
		t.Fatalf("flagged %d regressions, want 1: %v", len(regs), regs)
	}
	r := regs[0]
	if !strings.Contains(r.Cell, "lock=mcs") || !strings.Contains(r.Cell, "threads=4") {
		t.Errorf("wrong cell flagged: %q", r.Cell)
	}
	if r.Old != 1000 || r.New != 500 || r.Delta != -0.5 {
		t.Errorf("regression = %+v, want old 1000 new 500 delta -0.5", r)
	}
	if s := r.String(); !strings.Contains(s, "-50.0%") {
		t.Errorf("String() = %q, want a -50.0%% mention", s)
	}
}

func TestDiffThresholdAndSorting(t *testing.T) {
	oldJSON := env(t, [3]any{"a", 1, 1000.0}, [3]any{"b", 1, 1000.0})
	newJSON := env(t, [3]any{"a", 1, 700.0}, [3]any{"b", 1, 400.0})
	// 40% threshold: only b (-60%) trips.
	regs, _, err := Diff(oldJSON, newJSON, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0].Cell, "lock=b") {
		t.Fatalf("threshold 0.4 flagged %v, want only lock=b", regs)
	}
	// Default threshold: both trip, worst first.
	regs, _, err = Diff(oldJSON, newJSON, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 || regs[0].Delta > regs[1].Delta {
		t.Fatalf("default threshold flagged %v, want both sorted worst first", regs)
	}
}

func TestDiffIgnoresUnmatchedCells(t *testing.T) {
	// Columns come and go across PRs; only the intersection gates.
	oldJSON := env(t, [3]any{"mcs", 4, 1000.0}, [3]any{"retired-lock", 4, 9999.0})
	newJSON := env(t, [3]any{"mcs", 4, 950.0}, [3]any{"new-lock", 4, 1.0})
	regs, compared, err := Diff(oldJSON, newJSON, 0)
	if err != nil {
		t.Fatal(err)
	}
	if compared != 1 || len(regs) != 0 {
		t.Fatalf("compared %d / flagged %v, want 1 compared, none flagged", compared, regs)
	}
}

func TestDiffIdentityIncludesUnknownKnobs(t *testing.T) {
	// A knob Diff has never heard of (say a future "batch_mode") must
	// split cells, not merge them: same lock+threads, different knob,
	// different readings — no comparison should happen across them.
	oldJSON := []byte(`[
	  {"lock":"mcs","threads":4,"batch_mode":"fixed","ops_per_sec":1000},
	  {"lock":"mcs","threads":4,"batch_mode":"adaptive","ops_per_sec":2000}
	]`)
	newJSON := []byte(`[
	  {"lock":"mcs","threads":4,"batch_mode":"fixed","ops_per_sec":1000},
	  {"lock":"mcs","threads":4,"batch_mode":"adaptive","ops_per_sec":2000}
	]`)
	regs, compared, err := Diff(oldJSON, newJSON, 0)
	if err != nil {
		t.Fatal(err)
	}
	if compared != 2 || len(regs) != 0 {
		t.Fatalf("compared %d / flagged %v, want 2 compared, none flagged", compared, regs)
	}
}

func TestDiffRejectsMalformedEnvelopes(t *testing.T) {
	good := env(t, [3]any{"mcs", 4, 1000.0})
	if _, _, err := Diff([]byte("not json"), good, 0); err == nil {
		t.Error("malformed old envelope accepted")
	}
	if _, _, err := Diff(good, []byte("{"), 0); err == nil {
		t.Error("malformed new envelope accepted")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestWritePropagatesErrors(t *testing.T) {
	if err := Write(failWriter{}, []int{1}); err == nil {
		t.Fatal("writer error swallowed")
	}
}
