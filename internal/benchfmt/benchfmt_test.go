package benchfmt

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestWriteEnvelope(t *testing.T) {
	type rec struct {
		Lock    string  `json:"lock"`
		Threads int     `json:"threads"`
		Ops     float64 `json:"ops_per_sec"`
	}
	var buf bytes.Buffer
	if err := Write(&buf, []rec{{"mcs", 4, 1000.5}, {"c-bo-mcs", 8, 2000}}); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `[
  {
    "lock": "mcs",
    "threads": 4,
    "ops_per_sec": 1000.5
  },
  {
    "lock": "c-bo-mcs",
    "threads": 8,
    "ops_per_sec": 2000
  }
]
`
	if got != want {
		t.Fatalf("envelope drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if !strings.HasSuffix(got, "\n") {
		t.Fatal("missing trailing newline")
	}
}

func TestWriteEmptySlice(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []struct{}{}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "[]\n" {
		t.Fatalf("empty slice encoded as %q, want %q", buf.String(), "[]\n")
	}
}

// env builds a tiny envelope from (lock, threads, ops) triples via
// Write, so Diff tests exercise the exact encoding the tools emit.
func env(t *testing.T, cells ...[3]any) []byte {
	t.Helper()
	type rec struct {
		Lock    string  `json:"lock"`
		Threads int     `json:"threads"`
		Ops     float64 `json:"ops_per_sec"`
	}
	recs := make([]rec, len(cells))
	for i, c := range cells {
		recs[i] = rec{c[0].(string), c[1].(int), c[2].(float64)}
	}
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDiffFlagsRegressions(t *testing.T) {
	oldJSON := env(t,
		[3]any{"mcs", 4, 1000.0},
		[3]any{"mcs", 8, 2000.0},
		[3]any{"c-bo-mcs", 4, 3000.0},
	)
	newJSON := env(t,
		[3]any{"mcs", 4, 500.0},       // -50%: regression
		[3]any{"mcs", 8, 1900.0},      // -5%: inside threshold
		[3]any{"c-bo-mcs", 4, 3600.0}, // +20%: improvement
	)
	regs, compared, err := Diff(oldJSON, newJSON, 0)
	if err != nil {
		t.Fatal(err)
	}
	if compared != 3 {
		t.Errorf("compared %d cells, want 3", compared)
	}
	if len(regs) != 1 {
		t.Fatalf("flagged %d regressions, want 1: %v", len(regs), regs)
	}
	r := regs[0]
	if !strings.Contains(r.Cell, "lock=mcs") || !strings.Contains(r.Cell, "threads=4") {
		t.Errorf("wrong cell flagged: %q", r.Cell)
	}
	if r.Old != 1000 || r.New != 500 || r.Delta != -0.5 {
		t.Errorf("regression = %+v, want old 1000 new 500 delta -0.5", r)
	}
	if s := r.String(); !strings.Contains(s, "-50.0%") {
		t.Errorf("String() = %q, want a -50.0%% mention", s)
	}
}

func TestDiffThresholdAndSorting(t *testing.T) {
	oldJSON := env(t, [3]any{"a", 1, 1000.0}, [3]any{"b", 1, 1000.0})
	newJSON := env(t, [3]any{"a", 1, 700.0}, [3]any{"b", 1, 400.0})
	// 40% threshold: only b (-60%) trips.
	regs, _, err := Diff(oldJSON, newJSON, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0].Cell, "lock=b") {
		t.Fatalf("threshold 0.4 flagged %v, want only lock=b", regs)
	}
	// Default threshold: both trip, worst first.
	regs, _, err = Diff(oldJSON, newJSON, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 || regs[0].Delta > regs[1].Delta {
		t.Fatalf("default threshold flagged %v, want both sorted worst first", regs)
	}
}

func TestDiffIgnoresUnmatchedCells(t *testing.T) {
	// Columns come and go across PRs; only the intersection gates.
	oldJSON := env(t, [3]any{"mcs", 4, 1000.0}, [3]any{"retired-lock", 4, 9999.0})
	newJSON := env(t, [3]any{"mcs", 4, 950.0}, [3]any{"new-lock", 4, 1.0})
	regs, compared, err := Diff(oldJSON, newJSON, 0)
	if err != nil {
		t.Fatal(err)
	}
	if compared != 1 || len(regs) != 0 {
		t.Fatalf("compared %d / flagged %v, want 1 compared, none flagged", compared, regs)
	}
}

func TestDiffIdentityIncludesUnknownKnobs(t *testing.T) {
	// A knob Diff has never heard of (say a future "batch_mode") must
	// split cells, not merge them: same lock+threads, different knob,
	// different readings — no comparison should happen across them.
	oldJSON := []byte(`[
	  {"lock":"mcs","threads":4,"batch_mode":"fixed","ops_per_sec":1000},
	  {"lock":"mcs","threads":4,"batch_mode":"adaptive","ops_per_sec":2000}
	]`)
	newJSON := []byte(`[
	  {"lock":"mcs","threads":4,"batch_mode":"fixed","ops_per_sec":1000},
	  {"lock":"mcs","threads":4,"batch_mode":"adaptive","ops_per_sec":2000}
	]`)
	regs, compared, err := Diff(oldJSON, newJSON, 0)
	if err != nil {
		t.Fatal(err)
	}
	if compared != 2 || len(regs) != 0 {
		t.Fatalf("compared %d / flagged %v, want 2 compared, none flagged", compared, regs)
	}
}

func TestDiffFlagsAllocRegressions(t *testing.T) {
	oldJSON := []byte(`[
	  {"lock":"mcs","value_memory":"arena","ops_per_sec":1000,"allocs_per_op":2.0},
	  {"lock":"cna","value_memory":"arena","ops_per_sec":1000,"allocs_per_op":2.0}
	]`)
	newJSON := []byte(`[
	  {"lock":"mcs","value_memory":"arena","ops_per_sec":1000,"allocs_per_op":5.0},
	  {"lock":"cna","value_memory":"arena","ops_per_sec":1000,"allocs_per_op":2.1}
	]`)
	regs, compared, err := Diff(oldJSON, newJSON, 0)
	if err != nil {
		t.Fatal(err)
	}
	if compared != 2 {
		t.Errorf("compared %d cells, want 2", compared)
	}
	if len(regs) != 1 {
		t.Fatalf("flagged %d regressions, want 1 (only mcs's allocs rose past threshold): %v", len(regs), regs)
	}
	r := regs[0]
	if r.Metric != "allocs_per_op" || !strings.Contains(r.Cell, "lock=mcs") {
		t.Errorf("wrong regression flagged: %+v", r)
	}
	if r.Old != 2.0 || r.New != 5.0 || r.Delta != 1.5 {
		t.Errorf("regression = %+v, want old 2 new 5 delta 1.5", r)
	}
	if s := r.String(); !strings.Contains(s, "allocs/op") {
		t.Errorf("String() = %q, want an allocs/op mention", s)
	}
}

func TestDiffAllocNoiseFloor(t *testing.T) {
	// Near-zero alloc counts double on background noise alone; the
	// absolute floor keeps them from gating. 0.01 -> 0.05 is +400%
	// but only 0.04 allocs/op — not a regression.
	oldJSON := []byte(`[{"lock":"mcs","ops_per_sec":1000,"allocs_per_op":0.01}]`)
	newJSON := []byte(`[{"lock":"mcs","ops_per_sec":1000,"allocs_per_op":0.05}]`)
	regs, compared, err := Diff(oldJSON, newJSON, 0)
	if err != nil {
		t.Fatal(err)
	}
	if compared != 1 || len(regs) != 0 {
		t.Fatalf("compared %d / flagged %v, want 1 compared, none flagged", compared, regs)
	}
}

func TestDiffWorstFirstAcrossMetrics(t *testing.T) {
	// A -30% throughput drop and a +200% alloc rise on different
	// cells: the alloc regression is fractionally worse and sorts
	// first.
	oldJSON := []byte(`[
	  {"lock":"a","ops_per_sec":1000},
	  {"lock":"b","ops_per_sec":1000,"allocs_per_op":1.0}
	]`)
	newJSON := []byte(`[
	  {"lock":"a","ops_per_sec":700},
	  {"lock":"b","ops_per_sec":1000,"allocs_per_op":3.0}
	]`)
	regs, _, err := Diff(oldJSON, newJSON, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("flagged %d regressions, want 2: %v", len(regs), regs)
	}
	if regs[0].Metric != "allocs_per_op" || regs[1].Metric != "ops_per_sec" {
		t.Fatalf("order = [%s, %s], want allocs first (worse fractional change)", regs[0].Metric, regs[1].Metric)
	}
}

func TestDiffRejectsMalformedEnvelopes(t *testing.T) {
	good := env(t, [3]any{"mcs", 4, 1000.0})
	if _, _, err := Diff([]byte("not json"), good, 0); err == nil {
		t.Error("malformed old envelope accepted")
	}
	if _, _, err := Diff(good, []byte("{"), 0); err == nil {
		t.Error("malformed new envelope accepted")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestWritePropagatesErrors(t *testing.T) {
	if err := Write(failWriter{}, []int{1}); err == nil {
		t.Fatal("writer error swallowed")
	}
}

func TestDiffFlagsGCPauseRegressions(t *testing.T) {
	oldJSON := []byte(`[
	  {"lock":"mcs","index_memory":"compact","ops_per_sec":1000,"gc_pause_ms":4.0},
	  {"lock":"cna","index_memory":"compact","ops_per_sec":1000,"gc_pause_ms":4.0}
	]`)
	newJSON := []byte(`[
	  {"lock":"mcs","index_memory":"compact","ops_per_sec":1000,"gc_pause_ms":12.0},
	  {"lock":"cna","index_memory":"compact","ops_per_sec":1000,"gc_pause_ms":4.2}
	]`)
	regs, compared, err := Diff(oldJSON, newJSON, 0)
	if err != nil {
		t.Fatal(err)
	}
	if compared != 2 {
		t.Errorf("compared %d cells, want 2", compared)
	}
	if len(regs) != 1 {
		t.Fatalf("flagged %d regressions, want 1 (only mcs's pauses rose past threshold): %v", len(regs), regs)
	}
	r := regs[0]
	if r.Metric != "gc_pause_ms" || !strings.Contains(r.Cell, "lock=mcs") {
		t.Errorf("wrong regression flagged: %+v", r)
	}
	if r.Old != 4.0 || r.New != 12.0 || r.Delta != 2.0 {
		t.Errorf("regression = %+v, want old 4 new 12 delta 2", r)
	}
	if s := r.String(); !strings.Contains(s, "GC pause") {
		t.Errorf("String() = %q, want a GC pause mention", s)
	}
}

func TestDiffGCPauseNoiseFloor(t *testing.T) {
	// Sub-millisecond pauses triple on one background collection; the
	// absolute floor (minPauseRegression ms) keeps them from gating.
	oldJSON := []byte(`[{"lock":"mcs","ops_per_sec":1000,"gc_pause_ms":0.3}]`)
	newJSON := []byte(`[{"lock":"mcs","ops_per_sec":1000,"gc_pause_ms":1.2}]`)
	regs, compared, err := Diff(oldJSON, newJSON, 0)
	if err != nil {
		t.Fatal(err)
	}
	if compared != 1 || len(regs) != 0 {
		t.Fatalf("compared %d / flagged %v, want 1 compared, none flagged", compared, regs)
	}
}
