package benchfmt

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestWriteEnvelope(t *testing.T) {
	type rec struct {
		Lock    string  `json:"lock"`
		Threads int     `json:"threads"`
		Ops     float64 `json:"ops_per_sec"`
	}
	var buf bytes.Buffer
	if err := Write(&buf, []rec{{"mcs", 4, 1000.5}, {"c-bo-mcs", 8, 2000}}); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `[
  {
    "lock": "mcs",
    "threads": 4,
    "ops_per_sec": 1000.5
  },
  {
    "lock": "c-bo-mcs",
    "threads": 8,
    "ops_per_sec": 2000
  }
]
`
	if got != want {
		t.Fatalf("envelope drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if !strings.HasSuffix(got, "\n") {
		t.Fatal("missing trailing newline")
	}
}

func TestWriteEmptySlice(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []struct{}{}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "[]\n" {
		t.Fatalf("empty slice encoded as %q, want %q", buf.String(), "[]\n")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestWritePropagatesErrors(t *testing.T) {
	if err := Write(failWriter{}, []int{1}); err == nil {
		t.Fatal("writer error swallowed")
	}
}
