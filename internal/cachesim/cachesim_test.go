package cachesim

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/numa"
)

func newTestDomain(nLines int) (*numa.Topology, *Domain) {
	topo := numa.New(4, 8)
	// Zero latencies keep tests fast; counting is what we verify.
	return topo, NewDomain(topo, nLines, Config{})
}

func TestFirstAccessIsMiss(t *testing.T) {
	topo, d := newTestDomain(4)
	p := topo.Proc(0)
	if !d.Access(p, 0, 1) {
		t.Fatal("cold line access should be a miss")
	}
	if d.Access(p, 0, 1) {
		t.Fatal("second same-cluster access should hit")
	}
}

func TestCrossClusterAccessMissesAndMigrates(t *testing.T) {
	topo, d := newTestDomain(1)
	p0 := topo.Proc(0) // cluster 0
	p1 := topo.Proc(1) // cluster 1 under round-robin
	if p0.Cluster() == p1.Cluster() {
		t.Fatal("test requires procs on distinct clusters")
	}
	d.Access(p0, 0, 1)
	if !d.Access(p1, 0, 1) {
		t.Fatal("cross-cluster access should miss")
	}
	if d.Access(p1, 0, 1) {
		t.Fatal("line should now be owned by cluster 1")
	}
	if !d.Access(p0, 0, 1) {
		t.Fatal("ownership should have migrated away from cluster 0")
	}
}

func TestSameClusterDifferentProcsHit(t *testing.T) {
	topo, d := newTestDomain(1)
	p0 := topo.Proc(0) // cluster 0
	p4 := topo.Proc(4) // also cluster 0 (4 mod 4)
	if p0.Cluster() != p4.Cluster() {
		t.Fatal("expected procs 0 and 4 to share a cluster")
	}
	d.Access(p0, 0, 1)
	if d.Access(p4, 0, 1) {
		t.Fatal("same-cluster access from a different proc should hit")
	}
}

func TestSnapshotCounts(t *testing.T) {
	topo, d := newTestDomain(2)
	p0, p1 := topo.Proc(0), topo.Proc(1)
	d.Access(p0, 0, 1) // miss (cold)
	d.Access(p0, 0, 1) // hit
	d.Access(p1, 0, 1) // miss (migrate)
	d.Access(p1, 1, 1) // miss (cold)
	s := d.Snapshot()
	if s.Accesses != 4 {
		t.Errorf("Accesses = %d, want 4", s.Accesses)
	}
	if s.Misses != 3 {
		t.Errorf("Misses = %d, want 3", s.Misses)
	}
	if got, want := s.MissRate(), 0.75; got != want {
		t.Errorf("MissRate = %v, want %v", got, want)
	}
}

func TestMissRateEmptyDomain(t *testing.T) {
	if (Stats{}).MissRate() != 0 {
		t.Fatal("empty stats should report 0 miss rate")
	}
}

func TestPayloadSumCountsEveryWrite(t *testing.T) {
	topo, d := newTestDomain(3)
	p := topo.Proc(0)
	total := 0
	for i := 0; i < 10; i++ {
		d.Access(p, i%3, 4)
		total += 4
	}
	if got := d.PayloadSum(); got != int64(total) {
		t.Fatalf("PayloadSum = %d, want %d", got, total)
	}
}

func TestReset(t *testing.T) {
	topo, d := newTestDomain(1)
	p := topo.Proc(0)
	d.Access(p, 0, 2)
	d.Reset()
	s := d.Snapshot()
	if s.Accesses != 0 || s.Misses != 0 {
		t.Fatalf("after Reset, stats = %+v, want zero", s)
	}
	if d.PayloadSum() != 0 {
		t.Fatal("after Reset, payload should be zero")
	}
	if !d.Access(p, 0, 1) {
		t.Fatal("after Reset, lines should be cold again")
	}
}

func TestNewDomainValidation(t *testing.T) {
	topo := numa.New(2, 2)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDomain with %d lines did not panic", n)
				}
			}()
			NewDomain(topo, n, Config{})
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewDomain with negative latency did not panic")
			}
		}()
		NewDomain(topo, 1, Config{LocalNs: -1})
	}()
}

// Property: for a single-cluster topology, only cold misses occur, so
// misses == number of distinct lines touched.
func TestSingleClusterOnlyColdMisses(t *testing.T) {
	f := func(seq []uint8) bool {
		topo := numa.New(1, 2)
		d := NewDomain(topo, 8, Config{})
		p := topo.Proc(0)
		touched := map[int]bool{}
		for _, b := range seq {
			idx := int(b) % 8
			touched[idx] = true
			d.Access(p, idx, 1)
		}
		return d.Snapshot().Misses == uint64(len(touched))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving accesses from two clusters on one line yields
// a miss exactly at every cluster alternation (plus the cold miss).
func TestAlternationMissCount(t *testing.T) {
	f := func(pattern []bool) bool {
		if len(pattern) == 0 {
			return true
		}
		topo := numa.New(2, 2)
		d := NewDomain(topo, 1, Config{})
		procs := []*numa.Proc{topo.Proc(0), topo.Proc(1)}
		wantMisses := uint64(1) // cold
		prev := pattern[0]
		d.Access(procs[b2i(prev)], 0, 1)
		for _, cur := range pattern[1:] {
			if cur != prev {
				wantMisses++
			}
			d.Access(procs[b2i(cur)], 0, 1)
			prev = cur
		}
		return d.Snapshot().Misses == wantMisses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Under an external lock, concurrent goroutines' counters must sum
// exactly (the domain itself relies on the caller's mutual exclusion).
func TestConcurrentUnderExternalLock(t *testing.T) {
	topo := numa.New(4, 8)
	d := NewDomain(topo, 2, Config{})
	var mu sync.Mutex
	var wg sync.WaitGroup
	const perProc = 200
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := topo.Proc(id)
			for k := 0; k < perProc; k++ {
				mu.Lock()
				d.Access(p, k&1, 2)
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	s := d.Snapshot()
	if s.Accesses != 8*perProc {
		t.Fatalf("Accesses = %d, want %d", s.Accesses, 8*perProc)
	}
	if d.PayloadSum() != 8*perProc*2 {
		t.Fatalf("PayloadSum = %d, want %d", d.PayloadSum(), 8*perProc*2)
	}
}
