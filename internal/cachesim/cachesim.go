// Package cachesim is a software stand-in for the hardware cache-
// coherence behaviour the paper measures. The real experiments ran on a
// 4-socket machine where a cache line last written on a remote socket
// costs ~4x a local L2 hit, and Figure 3 reports remote-L2 coherence
// misses per critical section.
//
// A Domain models a set of cache lines. Each line remembers the cluster
// that last accessed it. An access from a different cluster counts as a
// coherence miss, migrates ownership, and injects a calibrated remote
// latency; a same-cluster access injects the (smaller) local latency.
// Because lock algorithms that batch critical sections by cluster keep
// line ownership stable, the simulator reproduces both the paper's miss
// counts (Figure 3) and their throughput consequences (Figure 2): the
// feedback from lock migration to critical-section cost is structural,
// not calibrated per lock.
//
// Accesses also increment real shared counters in the line payload, so
// genuine hardware coherence traffic on the host accompanies the
// simulated traffic.
package cachesim

import (
	"fmt"

	"repro/internal/numa"
	"repro/internal/spin"
)

// Config sets the injected access latencies in nanoseconds. The paper
// reports remote L2 access costing roughly 4x local under light load.
type Config struct {
	// LocalNs is the injected latency of an access that hits in the
	// owning cluster's cache.
	LocalNs int64
	// RemoteNs is the injected latency when the line was last owned by
	// another cluster (a coherence miss).
	RemoteNs int64
}

// DefaultConfig encodes the paper's memory system under load. The
// T5440's remote:local L2 ratio is ~4x when the interconnect is idle,
// but the paper stresses that "remote L2 accesses ... can also induce
// interconnect channel contention if the system is under heavy load",
// which is the regime every contended experiment runs in. The host
// executing this reproduction has a flat cache hierarchy whose real
// core-to-core transfers are fast and cluster-blind, so the simulated
// latencies must carry the NUMA signal: 50 ns local vs 600 ns remote
// (4x light-load ratio x ~3x load factor) keeps a migrated critical
// section in the microsecond regime the paper's high-contention points
// exhibit, while same-cluster batches stay in the ~100 ns regime.
func DefaultConfig() Config {
	return Config{LocalNs: 50, RemoteNs: 600}
}

// line is one simulated cache line: an owner-cluster tag plus a payload
// of real counters that critical sections mutate.
type line struct {
	owner payloadWord // owner cluster id; -1 until first touched
	words [8]payloadWord
	_     numa.Pad
}

// payloadWord is a padded cell updated with plain loads/stores under
// the caller's mutual exclusion; see Access for the memory-model
// argument.
type payloadWord struct {
	v int64
}

// statSlot accumulates per-proc counters. Each proc writes only its own
// slot, so no synchronization is needed beyond the harness join.
type statSlot struct {
	accesses uint64
	misses   uint64
	_        numa.Pad
}

// Domain is a set of simulated cache lines shared by the threads of one
// experiment. Accesses must be performed under mutual exclusion (they
// model data touched inside a critical section); the owner tags are
// plain fields for exactly that reason.
type Domain struct {
	cfg   Config
	lines []line
	slots []statSlot
}

// NewDomain creates a domain of nLines lines for a machine described by
// topo. Lines start un-owned: the first access from any cluster is
// counted as a miss, matching a cold cache.
func NewDomain(topo *numa.Topology, nLines int, cfg Config) *Domain {
	if nLines <= 0 {
		panic(fmt.Sprintf("cachesim: nLines = %d, must be positive", nLines))
	}
	if cfg.LocalNs < 0 || cfg.RemoteNs < 0 {
		panic("cachesim: negative latency")
	}
	d := &Domain{
		cfg:   cfg,
		lines: make([]line, nLines),
		slots: make([]statSlot, topo.MaxProcs()),
	}
	for i := range d.lines {
		d.lines[i].owner.v = -1
	}
	return d
}

// Lines reports the number of simulated lines.
func (d *Domain) Lines() int { return len(d.lines) }

// Access models a critical section touching line idx with the given
// number of read-modify-write operations. It must be called with mutual
// exclusion over the line (i.e. while holding the experiment's lock):
// the owner tag and payload are plain memory whose happens-before edges
// come from the caller's lock. It returns whether the access was a
// coherence miss.
func (d *Domain) Access(p *numa.Proc, idx int, writes int) bool {
	l := &d.lines[idx]
	cluster := int64(p.Cluster())
	miss := l.owner.v != cluster
	if miss {
		l.owner.v = cluster
		spin.WaitNs(d.cfg.RemoteNs)
	} else {
		spin.WaitNs(d.cfg.LocalNs)
	}
	for i := 0; i < writes; i++ {
		l.words[i&7].v++
	}
	slot := &d.slots[p.ID()]
	slot.accesses++
	if miss {
		slot.misses++
	}
	return miss
}

// Touch is Access with a single write, for callers modelling one
// counter update.
func (d *Domain) Touch(p *numa.Proc, idx int) bool { return d.Access(p, idx, 1) }

// Stats is an aggregated view of domain activity.
type Stats struct {
	Accesses uint64 // total line accesses
	Misses   uint64 // accesses that migrated the line across clusters
}

// MissRate reports misses per access, or 0 for an idle domain.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Snapshot sums the per-proc counters. Call only after the worker
// goroutines have been joined (or while they are quiescent); the slots
// are intentionally unsynchronized.
func (d *Domain) Snapshot() Stats {
	var s Stats
	for i := range d.slots {
		s.Accesses += d.slots[i].accesses
		s.Misses += d.slots[i].misses
	}
	return s
}

// Reset clears the counters and ownership tags, returning the domain to
// a cold state. Not safe to call concurrently with Access.
func (d *Domain) Reset() {
	for i := range d.lines {
		d.lines[i].owner.v = -1
		for j := range d.lines[i].words {
			d.lines[i].words[j].v = 0
		}
	}
	for i := range d.slots {
		d.slots[i] = statSlot{}
	}
}

// PayloadSum returns the sum of all payload counters, used by tests to
// verify that every critical-section write landed exactly once.
func (d *Domain) PayloadSum() int64 {
	var sum int64
	for i := range d.lines {
		for j := range d.lines[i].words {
			sum += d.lines[i].words[j].v
		}
	}
	return sum
}
