// Package faultnet injects deterministic network faults under any
// net.Conn or net.Listener: added latency, short (partial) reads and
// writes, mid-frame connection resets, and full read stalls, all on a
// seedable per-connection schedule.
//
// The package exists so the repo can PROVE its failure behavior
// instead of asserting it — the same discipline locktest applies to
// lock implementations (feed deliberately broken ones, check the
// harness objects). It is used two ways:
//
//   - in-process: unit tests wrap one side of a net.Pipe (or a real
//     loopback conn) with Wrap and a hand-written Faults schedule, so a
//     specific fault — a reset landing between store-return and
//     response-write, a client freezing with half a frame written —
//     lands at an exact, reproducible point;
//   - as a TCP proxy (NewProxy): cmd/kvsoak's -chaos mode drives its
//     whole load through one, with the Injector's live-swappable
//     schedule turning faults on for the storm phase and off for the
//     recovery phase.
//
// Determinism: every probabilistic decision draws from a per-connection
// xorshift stream seeded from Faults.Seed and the connection's admission
// index, never from time or the global rand. Two runs with the same
// seed, schedule, and connection order inject the same faults.
package faultnet

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error returned by a wrapped connection when the
// schedule cuts it: an injected reset, or an operation interrupted by
// Close. Peers see an ordinary transport error (EOF or a reset),
// exactly as they would from a real network failure.
var ErrInjected = errors.New("faultnet: injected connection reset")

// Faults is one connection-fault schedule. The zero value is fully
// transparent (no faults); each field arms one fault class
// independently. Probabilities are in [0,1] and evaluated per I/O
// operation on the connection's deterministic stream.
type Faults struct {
	// Seed roots the per-connection random streams. Connections derive
	// their own stream from Seed and their admission index, so a fixed
	// Seed reproduces the same fault placement run to run.
	Seed int64

	// Latency delays each Read and Write by a uniform duration in
	// [0, Latency). Models a slow or congested path.
	Latency time.Duration

	// ShortReads is the per-read probability of truncating the
	// transfer to roughly half the requested length (minimum 1 byte) —
	// legal at the io.Reader contract level, so it stresses every
	// read-loop's partial-read handling without erroring.
	ShortReads float64

	// ShortWrites is the per-write probability of fragmenting the
	// write: half the buffer goes out, then FragmentGap elapses, then
	// the rest. The peer observes a torn frame boundary mid-payload
	// (and, with a long FragmentGap, a client frozen holding a
	// half-written frame). The write still reports full success, so
	// writers that cannot handle partial counts survive.
	ShortWrites float64
	// FragmentGap is the pause inside a fragmented write (default 1ms).
	FragmentGap time.Duration

	// ResetProb is the per-write probability of a mid-frame reset: half
	// the buffer is written, then the connection is closed and the
	// write returns ErrInjected. The peer sees a truncated frame.
	ResetProb float64

	// ResetAfterReadBytes / ResetAfterWriteBytes cut the connection
	// deterministically once its cumulative read (resp. written) byte
	// count reaches the bound: the operation transfers up to the bound,
	// closes the connection, and returns ErrInjected. 0 disables. These
	// are the scheduling knobs unit tests use to land a reset at an
	// exact byte offset (e.g. after the first byte of a response).
	ResetAfterReadBytes, ResetAfterWriteBytes int64

	// StallProb is the per-read probability of a full stall: the read
	// sleeps StallFor before proceeding (waking early only if the
	// connection is closed). Models a frozen client or a blackholed
	// path; the peer's own deadlines are its only defense.
	StallProb float64
	// StallFor is the stall duration (default 1s when StallProb > 0).
	StallFor time.Duration
}

// active reports whether any fault class is armed.
func (f Faults) active() bool {
	return f.Latency > 0 || f.ShortReads > 0 || f.ShortWrites > 0 ||
		f.ResetProb > 0 || f.ResetAfterReadBytes > 0 || f.ResetAfterWriteBytes > 0 ||
		f.StallProb > 0
}

// Counters aggregates the faults an Injector actually injected —
// chaos runs report them so "the schedule never fired" is
// distinguishable from "the system shrugged everything off".
type Counters struct {
	Conns       uint64 // connections wrapped
	Delays      uint64 // operations delayed by Latency
	ShortReads  uint64 // reads truncated
	ShortWrites uint64 // writes truncated
	Resets      uint64 // injected connection resets
	Stalls      uint64 // reads stalled
}

// Injector wraps connections with a shared, live-swappable fault
// schedule and aggregates fault counters across them. Swapping the
// schedule with Set takes effect immediately on every wrapped
// connection (each operation re-reads it), which is how a chaos run
// flips from its storm phase to its recovery phase without churning
// connections.
type Injector struct {
	faults atomic.Pointer[Faults]
	connID atomic.Int64

	conns       atomic.Uint64
	delays      atomic.Uint64
	shortReads  atomic.Uint64
	shortWrites atomic.Uint64
	resets      atomic.Uint64
	stalls      atomic.Uint64
}

// NewInjector returns an Injector applying f to every connection it
// wraps until Set replaces the schedule.
func NewInjector(f Faults) *Injector {
	in := &Injector{}
	in.faults.Store(&f)
	return in
}

// Set replaces the schedule; in-flight connections observe the new one
// on their next operation. Set(Faults{}) clears all faults.
func (in *Injector) Set(f Faults) { in.faults.Store(&f) }

// Faults returns the current schedule.
func (in *Injector) Faults() Faults { return *in.faults.Load() }

// Counters snapshots the injected-fault totals.
func (in *Injector) Counters() Counters {
	return Counters{
		Conns:       in.conns.Load(),
		Delays:      in.delays.Load(),
		ShortReads:  in.shortReads.Load(),
		ShortWrites: in.shortWrites.Load(),
		Resets:      in.resets.Load(),
		Stalls:      in.stalls.Load(),
	}
}

// Wrap returns c with the injector's schedule applied. The wrapped
// connection derives its deterministic stream from the schedule seed
// and its wrap order.
func (in *Injector) Wrap(c net.Conn) net.Conn {
	in.conns.Add(1)
	id := in.connID.Add(1)
	fc := &Conn{Conn: c, in: in, closed: make(chan struct{})}
	// Independent read- and write-side streams: Read and Write may run
	// concurrently (a proxy pumps each direction from its own
	// goroutine), and sharing one stream would make fault placement
	// depend on goroutine interleaving — the opposite of deterministic.
	seed := uint64(in.Faults().Seed) ^ (uint64(id) * 0x9E3779B97F4A7C15)
	fc.readRNG = splitmix(seed)
	fc.writeRNG = splitmix(seed ^ 0xD1B54A32D192ED03)
	return fc
}

// Wrap applies a fixed schedule to a single connection — the one-off
// form unit tests use. Counters are still kept (on a private
// injector); retrieve them by wrapping through NewInjector instead if
// they matter.
func Wrap(c net.Conn, f Faults) net.Conn {
	return NewInjector(f).Wrap(c)
}

// Listen returns ln with every accepted connection wrapped by the
// injector — the in-process server-side form: a server under test
// accepts through it and its clients' traffic is faulted without the
// clients cooperating.
func (in *Injector) Listen(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Wrap(c), nil
}

// Conn is a net.Conn with the injector's schedule applied to every
// Read and Write. Deadline and address methods delegate untouched.
type Conn struct {
	net.Conn
	in *Injector

	readRNG, writeRNG xorshift

	readBytes, writeBytes atomic.Int64

	closeOnce sync.Once
	closed    chan struct{}
}

// Read applies, in order: stall, latency, deterministic byte-bound
// reset, then short-read truncation of the buffer handed down.
func (c *Conn) Read(b []byte) (int, error) {
	f := c.in.faults.Load()
	if f.StallProb > 0 && c.readRNG.chance(f.StallProb) {
		c.in.stalls.Add(1)
		if !c.sleep(f.stallFor()) {
			return 0, ErrInjected
		}
	}
	if !c.delay(f, &c.readRNG) {
		return 0, ErrInjected
	}
	if f.ResetAfterReadBytes > 0 {
		left := f.ResetAfterReadBytes - c.readBytes.Load()
		if left <= 0 {
			c.reset()
			return 0, ErrInjected
		}
		if int64(len(b)) > left {
			// Transfer up to the bound so the cut is mid-frame at an
			// exact offset, then fail on the next call.
			b = b[:left]
		}
	}
	if f.ShortReads > 0 && len(b) > 1 && c.readRNG.chance(f.ShortReads) {
		c.in.shortReads.Add(1)
		b = b[:(len(b)+1)/2]
	}
	n, err := c.Conn.Read(b)
	c.readBytes.Add(int64(n))
	return n, err
}

// Write applies latency, then either a probabilistic mid-frame reset,
// a deterministic byte-bound reset, or a short-write truncation. A
// reset transfers a prefix first — the peer sees a torn frame, not a
// clean boundary.
func (c *Conn) Write(b []byte) (int, error) {
	f := c.in.faults.Load()
	if !c.delay(f, &c.writeRNG) {
		return 0, ErrInjected
	}
	if f.ResetProb > 0 && c.writeRNG.chance(f.ResetProb) {
		n, _ := c.Conn.Write(b[:len(b)/2])
		c.writeBytes.Add(int64(n))
		c.reset()
		return n, ErrInjected
	}
	if f.ResetAfterWriteBytes > 0 {
		left := f.ResetAfterWriteBytes - c.writeBytes.Load()
		if left <= 0 {
			c.reset()
			return 0, ErrInjected
		}
		if int64(len(b)) > left {
			n, _ := c.Conn.Write(b[:left])
			c.writeBytes.Add(int64(n))
			c.reset()
			return n, ErrInjected
		}
	}
	if f.ShortWrites > 0 && len(b) > 1 && c.writeRNG.chance(f.ShortWrites) {
		c.in.shortWrites.Add(1)
		half := (len(b) + 1) / 2
		n, err := c.Conn.Write(b[:half])
		c.writeBytes.Add(int64(n))
		if err != nil {
			return n, err
		}
		if !c.sleep(f.fragmentGap()) {
			return n, ErrInjected
		}
		m, err := c.Conn.Write(b[half:])
		c.writeBytes.Add(int64(m))
		return n + m, err
	}
	n, err := c.Conn.Write(b)
	c.writeBytes.Add(int64(n))
	return n, err
}

// Close closes the underlying connection and wakes any in-flight
// injected sleep.
func (c *Conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.closed)
		err = c.Conn.Close()
	})
	return err
}

// reset is an injected connection failure: counted, then closed so the
// peer observes it too.
func (c *Conn) reset() {
	c.in.resets.Add(1)
	c.Close()
}

// delay sleeps the schedule's latency draw; false means the connection
// closed mid-sleep.
func (c *Conn) delay(f *Faults, rng *xorshift) bool {
	if f.Latency <= 0 {
		return true
	}
	c.in.delays.Add(1)
	return c.sleep(time.Duration(rng.next() % uint64(f.Latency)))
}

// sleep waits d, returning early (false) when the connection closes.
func (c *Conn) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.closed:
		return false
	}
}

func (f *Faults) stallFor() time.Duration {
	if f.StallFor > 0 {
		return f.StallFor
	}
	return time.Second
}

func (f *Faults) fragmentGap() time.Duration {
	if f.FragmentGap > 0 {
		return f.FragmentGap
	}
	return time.Millisecond
}

// xorshift is the per-side deterministic stream. Each side of a Conn
// owns one and is driven by a single goroutine, so no synchronization.
type xorshift uint64

func splitmix(seed uint64) xorshift {
	// One splitmix64 step decorrelates consecutive connection ids into
	// well-spread xorshift states.
	z := seed + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return xorshift(z)
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// chance draws one event with probability p.
func (x *xorshift) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(x.next()>>11)/float64(1<<53) < p
}
