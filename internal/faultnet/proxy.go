package faultnet

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Proxy is a TCP forwarder with the injector's fault schedule applied
// on the client side: every byte between a client and the target
// passes through a wrapped connection, so latency, truncation, resets
// and stalls land on the client path while the target sees ordinary
// (if abruptly ending) TCP. cmd/kvsoak's -chaos mode runs its whole
// load through one.
type Proxy struct {
	ln     net.Listener
	target string
	in     *Injector

	mu     sync.Mutex
	conns  map[net.Conn]struct{} // both sides of every live pair
	closed bool

	wg     sync.WaitGroup
	active atomic.Int64
}

// NewProxy listens on listenAddr (use "127.0.0.1:0" for an ephemeral
// port) and forwards every connection to target through in's fault
// schedule. The proxy serves in the background until Close.
func NewProxy(listenAddr, target string, in *Injector) (*Proxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, in: in, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// Addr is the proxy's dial address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Injector returns the schedule the proxy applies (swap it with Set).
func (p *Proxy) Injector() *Injector { return p.in }

// Active reports the number of live proxied connection pairs.
func (p *Proxy) Active() int { return int(p.active.Load()) }

// Close stops accepting, cuts every proxied connection, and waits for
// the pump goroutines to drain.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) serve() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		upstream, err := net.Dial("tcp", p.target)
		if err != nil {
			client.Close()
			continue
		}
		faulty := p.in.Wrap(client)
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			faulty.Close()
			upstream.Close()
			return
		}
		p.conns[faulty] = struct{}{}
		p.conns[upstream] = struct{}{}
		p.mu.Unlock()
		p.active.Add(1)
		var pumps sync.WaitGroup
		pumps.Add(2)
		pump := func(dst, src net.Conn) {
			defer pumps.Done()
			buf := make([]byte, 16<<10)
			io.CopyBuffer(dst, src, buf)
			// Either side dying cuts the pair: the peer's pump wakes on
			// its own read/write error.
			faulty.Close()
			upstream.Close()
		}
		go pump(upstream, faulty) // client -> server, faulted reads
		go pump(faulty, upstream) // server -> client, faulted writes
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			pumps.Wait()
			p.active.Add(-1)
			p.mu.Lock()
			delete(p.conns, faulty)
			delete(p.conns, upstream)
			p.mu.Unlock()
		}()
	}
}
