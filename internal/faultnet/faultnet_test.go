package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// TestTransparentWhenZero pins the zero-value contract: no faults
// means byte-for-byte pass-through in both directions.
func TestTransparentWhenZero(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := Wrap(a, Faults{})
	defer fc.Close()

	msg := []byte("hello across the pipe")
	go func() {
		b.Write(msg)
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(fc, got); err != nil || !bytes.Equal(got, msg) {
		t.Fatalf("read through transparent wrap: %q, %v", got, err)
	}
	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, len(msg))
		io.ReadFull(b, buf)
		done <- buf
	}()
	if _, err := fc.Write(msg); err != nil {
		t.Fatalf("write through transparent wrap: %v", err)
	}
	if got := <-done; !bytes.Equal(got, msg) {
		t.Fatalf("peer read %q, want %q", got, msg)
	}
}

// TestResetAfterWriteBytes pins the deterministic mid-frame cut: the
// write transfers exactly the bound, returns ErrInjected, and the peer
// sees the prefix then EOF — a torn frame, not a clean boundary.
func TestResetAfterWriteBytes(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := Wrap(a, Faults{ResetAfterWriteBytes: 5})

	peer := make(chan []byte, 1)
	go func() {
		buf, _ := io.ReadAll(b)
		peer <- buf
	}()
	n, err := fc.Write([]byte("0123456789"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("Write = (%d, %v), want (5, ErrInjected)", n, err)
	}
	if got := <-peer; string(got) != "01234" {
		t.Fatalf("peer saw %q, want the 5-byte prefix", got)
	}
	// The connection is dead: further writes fail too.
	if _, err := fc.Write([]byte("x")); err == nil {
		t.Fatal("write after injected reset succeeded")
	}
}

// TestResetAfterReadBytes cuts the read side at an exact offset.
func TestResetAfterReadBytes(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := Wrap(a, Faults{ResetAfterReadBytes: 4})
	go b.Write([]byte("0123456789"))

	buf := make([]byte, 10)
	got := 0
	for got < 4 {
		n, err := fc.Read(buf[got:])
		if err != nil {
			t.Fatalf("read before the bound: %v (got %d bytes)", err, got+n)
		}
		got += n
	}
	if string(buf[:4]) != "0123" {
		t.Fatalf("read %q before the cut", buf[:got])
	}
	if _, err := fc.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read past the bound: %v, want ErrInjected", err)
	}
}

// TestShortReadsDeterministic: with probability 1 every read is
// truncated, and the same seed yields the same transfer sizes.
func TestShortReadsDeterministic(t *testing.T) {
	run := func() []int {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		fc := Wrap(a, Faults{Seed: 42, ShortReads: 1})
		go func() {
			b.Write(bytes.Repeat([]byte("x"), 64))
		}()
		var sizes []int
		buf := make([]byte, 16)
		total := 0
		for total < 64 {
			n, err := fc.Read(buf)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if n > 8 {
				t.Fatalf("short read transferred %d of 16 requested", n)
			}
			sizes = append(sizes, n)
			total += n
		}
		return sizes
	}
	first, second := run(), second2(run)
	if len(first) == 0 {
		t.Fatal("no reads recorded")
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("run 1 sizes %v, run 2 sizes %v: not deterministic", first, second)
		}
	}
}

func second2(f func() []int) []int { return f() }

// TestStallWakesOnClose: a stalled read does not outlive the
// connection — Close interrupts the sleep.
func TestStallWakesOnClose(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := Wrap(a, Faults{StallProb: 1, StallFor: time.Minute})

	errc := make(chan error, 1)
	go func() {
		_, err := fc.Read(make([]byte, 1))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	fc.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("stalled read returned %v, want ErrInjected", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled read did not wake on Close")
	}
}

// TestInjectorLiveSwap: clearing the schedule mid-connection stops
// injecting immediately — the recovery-phase contract chaos mode
// relies on.
func TestInjectorLiveSwap(t *testing.T) {
	in := NewInjector(Faults{ResetProb: 1})
	a, b := net.Pipe()
	defer b.Close()
	fc := in.Wrap(a)
	go io.Copy(io.Discard, b)
	if _, err := fc.Write(make([]byte, 8)); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed injector did not reset: %v", err)
	}
	if got := in.Counters().Resets; got != 1 {
		t.Fatalf("Resets = %d, want 1", got)
	}

	in.Set(Faults{})
	a2, b2 := net.Pipe()
	defer b2.Close()
	fc2 := in.Wrap(a2)
	defer fc2.Close()
	go io.Copy(io.Discard, b2)
	if _, err := fc2.Write(make([]byte, 8)); err != nil {
		t.Fatalf("cleared injector still faulting: %v", err)
	}
	if got := in.Counters().Conns; got != 2 {
		t.Fatalf("Conns = %d, want 2", got)
	}
}

// TestProxyRoundTrip runs a trivial echo server behind a faulted
// proxy: with latency-only faults every byte still arrives intact,
// and with an armed reset schedule connections die with transport
// errors (never hangs, never corruption).
func TestProxyRoundTrip(t *testing.T) {
	echo, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer echo.Close()
	go func() {
		for {
			c, err := echo.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()

	in := NewInjector(Faults{Seed: 7, Latency: time.Millisecond, ShortReads: 0.5, ShortWrites: 0.5})
	p, err := NewProxy("127.0.0.1:0", echo.Addr().String(), in)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(10 * time.Second))
	msg := bytes.Repeat([]byte("abcdefgh"), 32)
	go func() {
		rest := msg
		for len(rest) > 0 {
			n, err := c.Write(rest)
			if err != nil {
				return
			}
			rest = rest[n:]
		}
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(bufioReader(c), got); err != nil {
		t.Fatalf("echo through faulty proxy: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("bytes corrupted through latency/short-IO proxy")
	}
	cs := in.Counters()
	if cs.ShortReads+cs.ShortWrites == 0 {
		t.Fatalf("schedule never fired: %+v", cs)
	}

	// Storm phase: resets cut connections but dials keep succeeding.
	in.Set(Faults{Seed: 7, ResetProb: 1})
	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.SetDeadline(time.Now().Add(10 * time.Second))
	c2.Write([]byte("doomed..."))
	if _, err := io.ReadAll(c2); err == nil && in.Counters().Resets == 0 {
		t.Fatal("reset schedule never fired through the proxy")
	}
}

// bufioReader avoids importing bufio just for one helper: short reads
// from the faulty path mean ReadFull needs a plain reader anyway.
func bufioReader(c net.Conn) io.Reader { return c }
