package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); got != c.want {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev(nil); got != 0 {
		t.Errorf("StdDev(nil) = %v", got)
	}
	if got := StdDev([]float64{7}); got != 0 {
		t.Errorf("StdDev(single) = %v", got)
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestStdDevPct(t *testing.T) {
	if got := StdDevPct([]float64{5, 5, 5}); got != 0 {
		t.Errorf("uniform data StdDevPct = %v, want 0", got)
	}
	if got := StdDevPct([]float64{0, 0}); got != 0 {
		t.Errorf("zero-mean StdDevPct = %v, want 0", got)
	}
	got := StdDevPct([]float64{50, 150}) // mean 100, stddev 50
	if math.Abs(got-50) > 1e-9 {
		t.Errorf("StdDevPct = %v, want 50", got)
	}
}

func TestStdDevPctScaleInvariant(t *testing.T) {
	f := func(raw []uint16, scale uint8) bool {
		if len(raw) < 2 {
			return true
		}
		k := float64(scale%9) + 1
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		allZero := true
		for i, v := range raw {
			a[i] = float64(v) + 1 // keep mean positive
			b[i] = a[i] * k
			if v != 0 {
				allZero = false
			}
		}
		_ = allZero
		return math.Abs(StdDevPct(a)-StdDevPct(b)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(0, 10); got != 0 {
		t.Errorf("Speedup with zero base = %v", got)
	}
	if got := Speedup(2, 9); got != 4.5 {
		t.Errorf("Speedup = %v, want 4.5", got)
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tb := NewTable("demo", "threads", "lock", "value")
	tb.AddRow("1", "c-bo-mcs", "1.23")
	tb.AddRow("128", "mcs", "0.5")
	out := tb.Render()
	if !strings.Contains(out, "# demo") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4", len(lines))
	}
	// Columns must start at the same offset in every row.
	idx := strings.Index(lines[1], "lock")
	for _, ln := range lines[2:] {
		if len(ln) < idx {
			t.Fatalf("row shorter than header indent: %q", ln)
		}
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows() = %d, want 2", tb.Rows())
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("1")
	tb.AddRow("1", "2", "3") // wider than headers
	out := tb.Render()
	if !strings.Contains(out, "3") {
		t.Error("extra cell dropped")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "x", "y")
	tb.AddRow("1", "2")
	want := "x,y\n1,2\n"
	if got := tb.CSV(); got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestF(t *testing.T) {
	if got := F(1.23456, 2); got != "1.23" {
		t.Errorf("F = %q", got)
	}
	if got := F(3, 0); got != "3" {
		t.Errorf("F = %q", got)
	}
}
