// Package stats provides the small statistics and table-formatting kit
// shared by the experiment harnesses: mean/standard deviation for the
// fairness figures, speedup normalization for the application tables,
// and aligned-text / CSV rendering.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or 0 for
// fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// StdDevPct returns the standard deviation as a percentage of the mean
// — the fairness metric of the paper's Figure 5. It returns 0 when the
// mean is 0.
func StdDevPct(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return 100 * StdDev(xs) / m
}

// Speedup normalizes value against base, returning 0 if base is 0 —
// the Table 1/2 "speedup over single-threaded pthread" convention.
func Speedup(base, value float64) float64 {
	if base == 0 {
		return 0
	}
	return value / base
}

// Table accumulates rows for one experiment and renders them as
// aligned text (for terminals / EXPERIMENTS.md) or CSV.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header width are kept, short
// rows are padded when rendered.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Rows reports how many data rows have been added.
func (t *Table) Rows() int { return len(t.rows) }

// Render returns the table as aligned text.
func (t *Table) Render() string {
	ncol := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	cell := func(r []string, i int) string {
		if i < len(r) {
			return r[i]
		}
		return ""
	}
	for i := 0; i < ncol; i++ {
		w := len(cell(t.Headers, i))
		for _, r := range t.rows {
			if l := len(cell(r, i)); l > w {
				w = l
			}
		}
		widths[i] = w
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	writeRow := func(r []string) {
		for i := 0; i < ncol; i++ {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell(r, i))
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV returns the table in comma-separated form (naive quoting: cells
// are produced by the harnesses and never contain commas).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteString("\n")
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteString("\n")
	}
	return b.String()
}

// F formats a float with the given decimals — the harnesses' cell
// formatter.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}
