package locks

import (
	"sync/atomic"
	"time"

	"repro/internal/numa"
	"repro/internal/spin"
)

// HBOConfig holds the four backoff parameters of the hierarchical
// backoff lock. The paper stresses that HBO's performance is highly
// sensitive to these and that no single setting works across
// workloads; the registry therefore exposes two named presets.
type HBOConfig struct {
	// LocalMin/LocalMax bound the backoff window when the observed
	// owner is in the waiter's own cluster (short: stay aggressive to
	// keep the lock local).
	LocalMin, LocalMax int64
	// RemoteMin/RemoteMax bound the window when the owner is remote
	// (long: concede to the owning cluster).
	RemoteMin, RemoteMax int64
}

// LBenchHBOConfig is the preset tuned for the LBench microbenchmark
// (long remote backoff strongly favouring lock locality). The paper's
// Figures 2-5 use the microbenchmark-tuned HBO.
func LBenchHBOConfig() HBOConfig {
	return HBOConfig{LocalMin: 32, LocalMax: 512, RemoteMin: 1024, RemoteMax: 32768}
}

// AppHBOConfig is the preset re-tuned for memcached ("HBO (tuned)" in
// Tables 1 and 2): much shorter windows that behave well at moderate
// contention but melt down when contention is extreme.
func AppHBOConfig() HBOConfig {
	return HBOConfig{LocalMin: 8, LocalMax: 128, RemoteMin: 32, RemoteMax: 512}
}

// HBO is the hierarchical backoff lock of Radović and Hagersten: a
// test-and-test-and-set lock whose word records the owner's cluster,
// letting same-cluster waiters back off briefly and remote waiters
// back off long, biasing handoffs toward the owning cluster. Simple
// but unfair and tuning-sensitive — the traits the paper contrasts
// cohort locks against. It implements both Mutex and TryMutex (the
// paper's A-HBO aborts by "simply returning a failure flag").
type HBO struct {
	word atomic.Int32 // -1 free, otherwise owner cluster id
	_    numa.Pad
	cfg  HBOConfig
}

// NewHBO returns an HBO lock with the given tuning.
func NewHBO(cfg HBOConfig) *HBO {
	l := &HBO{cfg: cfg}
	l.word.Store(-1)
	return l
}

// Lock acquires the lock, backing off per the hierarchical policy.
func (l *HBO) Lock(p *numa.Proc) {
	l.lock(p, 0, false)
}

// TryLockFor attempts acquisition until patience expires.
func (l *HBO) TryLockFor(p *numa.Proc, patience time.Duration) bool {
	return l.lock(p, spin.Deadline(patience), true)
}

func (l *HBO) lock(p *numa.Proc, deadline int64, abortable bool) bool {
	me := int32(p.Cluster())
	local := spin.NewBackoff(spin.PolicyExponential, l.cfg.LocalMin, l.cfg.LocalMax, p.Rand())
	remote := spin.NewBackoff(spin.PolicyExponential, l.cfg.RemoteMin, l.cfg.RemoteMax, p.Rand())
	for {
		w := l.word.Load()
		if w == -1 {
			if l.word.CompareAndSwap(-1, me) {
				return true
			}
			continue
		}
		if abortable && spin.Expired(deadline) {
			return false
		}
		if w == me {
			local.Wait()
		} else {
			remote.Wait()
		}
	}
}

// Unlock releases the lock.
func (l *HBO) Unlock(_ *numa.Proc) {
	l.word.Store(-1)
}

// OwnerCluster reports the current owner cluster (-1 if free); tests
// and the fairness harness use it.
func (l *HBO) OwnerCluster() int32 { return l.word.Load() }
