package locks_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/locks"
	"repro/internal/locktest"
	"repro/internal/numa"
)

func TestAdaptiveOverMCS(t *testing.T) {
	topo := testTopo()
	x := locks.NewCombiningAdaptive(topo, locks.NewMCS(topo))
	locktest.CheckExec(t, topo, x, 16, 300)
}

func TestAdaptiveOverCohort(t *testing.T) {
	// Adaptivity over a lock that itself batches hand-offs by cluster:
	// the two policies must compose without losing wakeups.
	topo := testTopo()
	x := locks.NewCombiningAdaptive(topo, locks.NewFCMCS(topo))
	locktest.CheckExec(t, topo, x, 12, 200)
}

func TestAdaptiveSingleProcEagerPath(t *testing.T) {
	// The idle end of the load curve: a lone poster must elect eagerly
	// and pay exactly one acquisition per closure with a single harvest
	// pass — no patience spin, no inter-pass pause. One acquisition per
	// op is observable as Batches() == Ops().
	topo := numa.New(2, 4)
	x := locks.NewCombiningAdaptive(topo, locks.NewMCS(topo))
	p := topo.Proc(0)
	n := 0
	for i := 0; i < 100; i++ {
		x.Exec(p, func() { n++ })
	}
	if n != 100 {
		t.Fatalf("ran %d closures, want 100", n)
	}
	if ops, batches := x.Ops(), x.Batches(); ops != 100 || batches != 100 {
		t.Fatalf("idle executor: %d ops over %d batches, want 100 over 100 (eager bypass, batch of one)", ops, batches)
	}
	if occ := x.OccupancyEstimate(); occ != 0 {
		t.Fatalf("quiescent occupancy estimate = %d, want 0", occ)
	}
}

func TestAdaptiveOccupancyIntrospection(t *testing.T) {
	topo := numa.New(2, 16)
	inner := locks.NewMCS(topo)
	x := locks.NewCombiningAdaptive(topo, inner)

	if occ, ok := locks.EstimateOccupancy(x); !ok || occ != 0 {
		t.Fatalf("EstimateOccupancy(adaptive) = (%d,%v), want (0,true)", occ, ok)
	}
	if _, ok := locks.EstimateOccupancy(locks.NewCombining(topo, locks.NewMCS(topo))); ok {
		t.Fatal("fixed combining executor claims an occupancy estimate")
	}
	if _, ok := locks.EstimateOccupancy(locks.ExecFromMutex(locks.NewMCS(topo))); ok {
		t.Fatal("ExecFromMutex adapter claims an occupancy estimate")
	}

	// Pile up posters behind a held inner lock: the estimate must see
	// them, cluster by cluster.
	holder := topo.Proc(15)
	inner.Lock(holder)
	const workers = 6
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := topo.Proc(2 * w) // all on cluster 0
			x.Exec(p, func() {})
		}(i)
	}
	deadline := time.Now().Add(30 * time.Second)
	for x.Occupancy(0) < workers {
		if time.Now().After(deadline) {
			inner.Unlock(holder)
			t.Fatalf("occupancy estimate stuck at %d, want %d", x.Occupancy(0), workers)
		}
		runtime.Gosched()
	}
	if got := x.Occupancy(1); got != 0 {
		t.Errorf("cluster 1 occupancy = %d, want 0 (no cluster-1 posters)", got)
	}
	inner.Unlock(holder)
	wg.Wait()
	if occ := x.OccupancyEstimate(); occ != 0 {
		t.Fatalf("post-drain occupancy estimate = %d, want 0", occ)
	}
}

func TestAdaptiveBatchesPileUp(t *testing.T) {
	// Deterministic amortization at the contended end, independent of
	// CPU count: hold the inner lock so the elected combiner parks
	// inside its one acquisition while every same-cluster peer
	// publishes; releasing the lock must drain the pile in far fewer
	// acquisitions than ops.
	topo := numa.New(2, 16)
	inner := locks.NewMCS(topo)
	x := locks.NewCombiningAdaptive(topo, inner)

	holder := topo.Proc(15)
	inner.Lock(holder)
	const workers = 8
	ran := make([]int, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := topo.Proc(2 * w) // all on cluster 0
			x.Exec(p, func() { ran[w]++ })
		}(i)
	}
	time.Sleep(50 * time.Millisecond)
	inner.Unlock(holder)
	wg.Wait()

	for w, n := range ran {
		if n != 1 {
			t.Fatalf("worker %d ran %d times, want 1", w, n)
		}
	}
	if ops := x.Ops(); ops != workers {
		t.Fatalf("Ops() = %d, want %d", ops, workers)
	}
	if b := x.Batches(); b >= workers/2 {
		t.Fatalf("no amortization: %d acquisitions for %d piled-up ops", b, workers)
	}
}

// opsBatches is the amortization introspection both combining
// executors share.
type opsBatches interface {
	locks.Executor
	Ops() uint64
	Batches() uint64
}

// measureOpsPerAcq drives procs concurrent posters through x and
// reports the measured ops-per-acquisition amortization.
func measureOpsPerAcq(t *testing.T, topo *numa.Topology, x opsBatches, procs, iters int) float64 {
	t.Helper()
	var wg sync.WaitGroup
	var total atomic.Int64
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := topo.Proc(id)
			for k := 0; k < iters; k++ {
				x.Exec(p, func() { total.Add(1) })
			}
		}(i)
	}
	wg.Wait()
	if got := total.Load(); got != int64(procs*iters) {
		t.Fatalf("ran %d closures, want %d", got, procs*iters)
	}
	return float64(x.Ops()) / float64(x.Batches())
}

func TestAdaptiveOpsPerAcqAtLeastFixed(t *testing.T) {
	// The acceptance criterion behind the adaptive policy: under high
	// contention the occupancy-scaled patience window and pass count
	// must amortize at least as many ops per acquisition as the fixed
	// constants. Scheduling makes any single trial noisy, so the
	// property is asserted over the best of a few attempts
	// (BenchmarkCombining carries the steady-state comparison).
	if runtime.NumCPU() < 2 || runtime.GOMAXPROCS(0) < 2 {
		t.Skip("batch formation needs two truly concurrent processors")
	}
	topo := numa.New(2, 16)
	const procs, iters, attempts = 16, 300, 5
	for a := 0; a < attempts; a++ {
		fixed := measureOpsPerAcq(t, topo,
			locks.NewCombining(topo, locks.NewMCS(topo)), procs, iters)
		adaptive := measureOpsPerAcq(t, topo,
			locks.NewCombiningAdaptive(topo, locks.NewMCS(topo)), procs, iters)
		t.Logf("attempt %d: fixed %.1f ops/acq, adaptive %.1f ops/acq", a, fixed, adaptive)
		if adaptive >= fixed {
			return
		}
	}
	t.Fatalf("adaptive combining never reached the fixed combiner's amortization in %d attempts", attempts)
}
