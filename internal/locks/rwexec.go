package locks

import (
	"sync/atomic"

	"repro/internal/numa"
)

// RWExecutor is delegated execution with a shared mode, the executor
// analogue of RWMutex: Exec runs fn in exclusive mode under the
// Executor contract (at most one exclusive closure at a time, run
// exactly once, effects happen-before return), and ExecShared runs fn
// in shared mode — shared closures may run concurrently with one
// another, but never with an exclusive closure, and the exactly-once
// and happens-before guarantees hold for them too. It is the seam that
// lets a read-mostly data structure hand whole batches of read-only
// critical sections to the lock in one shared acquisition.
type RWExecutor interface {
	Executor
	ExecShared(p *numa.Proc, fn func())
}

// SharesExecReads reports whether x's shared mode can genuinely run
// closures concurrently. Adapters over exclusive locks report false
// through ReadSharer; executors that do not implement ReadSharer are
// assumed to share.
func SharesExecReads(x RWExecutor) bool {
	if s, ok := x.(ReadSharer); ok {
		return s.SharedReads()
	}
	return true
}

// execRWMutex adapts an RWMutex to the RWExecutor interface: exclusive
// closures bracket Lock/Unlock, shared closures bracket RLock/RUnlock
// — one acquisition per closure, the non-combining baseline. Whether
// shared closures genuinely coexist is the underlying lock's property,
// passed through SharedReads.
type execRWMutex struct {
	l RWMutex
}

func (e execRWMutex) Exec(p *numa.Proc, fn func()) {
	e.l.Lock(p)
	fn()
	e.l.Unlock(p)
}

func (e execRWMutex) ExecShared(p *numa.Proc, fn func()) {
	e.l.RLock(p)
	fn()
	e.l.RUnlock(p)
}

// CombinesExec reports false: the adapter pays one acquisition per op.
func (e execRWMutex) CombinesExec() bool { return false }

// SharedReads passes the underlying lock's sharing property through,
// so consumers of the executor see exactly what a direct user of the
// lock would.
func (e execRWMutex) SharedReads() bool { return SharesReads(e.l) }

// ExecFromRWMutex adapts any reader-writer lock to the RWExecutor
// interface by bracketing each closure with the matching mode's
// acquire/release. Correct, not amortized; an exclusive lock adapted
// through RWFromMutex composes (shared closures then serialize, and
// SharesExecReads reports so).
func ExecFromRWMutex(l RWMutex) RWExecutor {
	return execRWMutex{l: l}
}

// countingRWMutex is the CountRWAcquisitions wrapper.
type countingRWMutex struct {
	inner  RWMutex
	excl   *atomic.Uint64
	shared *atomic.Uint64
}

func (c *countingRWMutex) Lock(p *numa.Proc) {
	c.excl.Add(1)
	c.inner.Lock(p)
}

func (c *countingRWMutex) Unlock(p *numa.Proc) { c.inner.Unlock(p) }

func (c *countingRWMutex) RLock(p *numa.Proc) {
	c.shared.Add(1)
	c.inner.RLock(p)
}

func (c *countingRWMutex) RUnlock(p *numa.Proc) { c.inner.RUnlock(p) }

// SharedReads passes the wrapped lock's sharing property through, so
// an instrumented genuine reader-writer lock still selects shared read
// paths in its consumers.
func (c *countingRWMutex) SharedReads() bool { return SharesReads(c.inner) }

// CountRWAcquisitions returns l instrumented to add one to excl on
// every Lock and one to shared on every RLock — the measurement seam
// behind the shared-batch amortization exhibits. The two counters may
// alias (one total-acquisitions counter) and may be shared across
// instances; the wrapper preserves SharedReads introspection so
// counted locks keep their consumers' read paths.
func CountRWAcquisitions(l RWMutex, excl, shared *atomic.Uint64) RWMutex {
	return &countingRWMutex{inner: l, excl: excl, shared: shared}
}

// Interface conformance checks.
var (
	_ RWExecutor   = execRWMutex{}
	_ ExecCombiner = execRWMutex{}
	_ ReadSharer   = execRWMutex{}
	_ RWMutex      = (*countingRWMutex)(nil)
	_ ReadSharer   = (*countingRWMutex)(nil)
)
