package locks_test

import (
	"testing"

	"repro/internal/locks"
	"repro/internal/locktest"
	"repro/internal/numa"
)

func TestRWPerClusterOverMCS(t *testing.T) {
	topo := numa.New(4, 16)
	l := locks.NewRWPerCluster(topo, locks.NewMCS(topo))
	locktest.CheckRW(t, topo, l, 8, 4, 200)
}

func TestRWPerClusterOverCNA(t *testing.T) {
	topo := numa.New(4, 16)
	l := locks.NewRWPerCluster(topo, locks.NewCNA(topo))
	locktest.CheckRW(t, topo, l, 8, 4, 200)
}

// TestRWFromMutexIsExclusive verifies the adapter is a correct RWMutex
// (CheckRW skips the coexistence phase for it) and reports itself as
// not sharing reads.
func TestRWFromMutexIsExclusive(t *testing.T) {
	topo := numa.New(4, 16)
	l := locks.RWFromMutex(locks.NewMCS(topo))
	if locks.SharesReads(l) {
		t.Fatal("RWFromMutex adapter claims shared reads")
	}
	locktest.CheckRW(t, topo, l, 8, 4, 200)
}

// TestSharesReadsDefault: a genuine RW lock (no ReadSharer method)
// reports shared reads.
func TestSharesReadsDefault(t *testing.T) {
	topo := numa.New(2, 4)
	if !locks.SharesReads(locks.NewRWPerCluster(topo, locks.NewMCS(topo))) {
		t.Fatal("RWPerCluster should report shared reads")
	}
}

// TestRWPerClusterDrains: after heavy mixed traffic the reader
// accounting returns to zero.
func TestRWPerClusterDrains(t *testing.T) {
	topo := numa.New(2, 4)
	l := locks.NewRWPerCluster(topo, locks.NewMCS(topo))
	p := topo.Proc(0)
	for i := 0; i < 1000; i++ {
		l.RLock(p)
		l.RUnlock(p)
		l.Lock(p)
		l.Unlock(p)
	}
	if n := l.ActiveReaders(); n != 0 {
		t.Fatalf("ActiveReaders = %d after drain", n)
	}
}
