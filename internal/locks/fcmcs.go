package locks

import (
	"sync/atomic"

	"repro/internal/numa"
	"repro/internal/spin"
)

// Publication-slot states for FC-MCS.
const (
	fcIdle     int32 = 0 // no outstanding request
	fcRequest  int32 = 1 // posted, waiting to be enlisted
	fcEnqueued int32 = 2 // combiner placed the node in the queue
)

// fcSlot is a per-proc publication record scanned by the combiner.
type fcSlot struct {
	state atomic.Int32
	_     numa.Pad
}

// combinerGate is a padded per-cluster TATAS lock electing the
// flat-combining combiner.
type combinerGate struct {
	held atomic.Int32
	_    numa.Pad
}

// FCMCS is the flat-combining MCS lock of Dice, Marathe and Shavit
// (SPAA 2011), the strongest prior NUMA-aware lock in the paper's
// comparison. Threads publish acquisition requests in a per-cluster
// publication array; a combiner — elected with a cluster-local TATAS
// gate — harvests posted requests into an MCS chain and splices the
// chain into a single global MCS queue. Grants then flow down the
// chain exactly as in HCLH.
//
// Deviation (documented in DESIGN.md): the publication list is a fixed
// per-proc slot array rather than a dynamic list with aging, and the
// combiner makes a fixed number of harvest passes. Batching behaviour
// and the combiner-election cost — what the evaluation exercises — are
// preserved.
type FCMCS struct {
	gtail atomic.Pointer[qNode]
	_     numa.Pad
	gates []combinerGate
	slots []fcSlot
	nodes []qNode
	// members lists the proc ids of each cluster, the combiner's scan
	// order.
	members [][]int
	// passes is how many harvest sweeps a combiner makes over its
	// cluster's slots.
	passes int
}

// DefaultFCPasses is the default number of combiner harvest passes.
const DefaultFCPasses = 2

// NewFCMCS returns an FC-MCS lock for the given topology.
func NewFCMCS(topo *numa.Topology) *FCMCS {
	return NewFCMCSPasses(topo, DefaultFCPasses)
}

// NewFCMCSPasses is NewFCMCS with an explicit combiner pass count.
func NewFCMCSPasses(topo *numa.Topology, passes int) *FCMCS {
	if passes < 1 {
		passes = 1
	}
	l := &FCMCS{
		gates:   make([]combinerGate, topo.Clusters()),
		slots:   make([]fcSlot, topo.MaxProcs()),
		nodes:   make([]qNode, topo.MaxProcs()),
		members: make([][]int, topo.Clusters()),
		passes:  passes,
	}
	for i := range l.nodes {
		l.nodes[i].parker = spin.MakeParker()
	}
	for id := 0; id < topo.MaxProcs(); id++ {
		c := topo.ClusterOf(id)
		l.members[c] = append(l.members[c], id)
	}
	return l
}

// electAfter is how long a requester lingers on its publication slot
// before trying to become the combiner itself. Flat combining lives on
// this patience: arrivals inside the window ride an existing (or
// about-to-be-elected) combiner's harvest instead of each splicing a
// batch of one.
const electAfter = 512

// Lock publishes a request and waits for a grant, becoming the
// cluster's combiner only after a patience window.
func (l *FCMCS) Lock(p *numa.Proc) {
	id := p.ID()
	slot := &l.slots[id]
	node := &l.nodes[id]
	slot.state.Store(fcRequest)

	gate := &l.gates[p.Cluster()]
	for i := 0; slot.state.Load() == fcRequest; i++ {
		// Bypass at low contention (the optimization the paper credits
		// FC-MCS with, §4.1.3): when the global queue is empty there is
		// no batch to wait for, so elect immediately.
		eager := l.gtail.Load() == nil
		if (eager || i >= electAfter) && gate.held.Load() == 0 && gate.held.CompareAndSwap(0, 1) {
			if slot.state.Load() == fcRequest {
				l.combine(p.Cluster())
			}
			gate.held.Store(0)
			break // combine always enlists the combiner's own request
		}
		spin.Poll(i)
	}
	node.parker.Wait(func() bool { return node.status.Load() != qWait })
}

// combinePassPause is the wait between combiner harvest passes, in
// pause units: long enough for in-flight requests to publish, so
// batches form even at moderate per-cluster occupancy.
const combinePassPause = 512

// combine harvests posted requests from the cluster into a chain and
// splices it into the global queue. Called with the cluster gate held.
func (l *FCMCS) combine(cluster int) {
	var head, tail *qNode
	for pass := 0; pass < l.passes; pass++ {
		if pass > 0 {
			spin.Pause(combinePassPause)
		}
		for _, id := range l.members[cluster] {
			s := &l.slots[id]
			if s.state.Load() != fcRequest {
				continue
			}
			nd := &l.nodes[id]
			nd.next.Store(nil)
			nd.status.Store(qWait)
			if head == nil {
				head = nd
			} else {
				tail.next.Store(nd)
			}
			tail = nd
			s.state.Store(fcEnqueued)
		}
	}
	if head == nil {
		return
	}
	gpred := l.gtail.Swap(tail)
	if gpred == nil {
		head.status.Store(qGranted)
		head.parker.Wake()
		return
	}
	gpred.next.Store(head)
}

// Unlock passes the lock down the global chain, or empties it.
func (l *FCMCS) Unlock(p *numa.Proc) {
	id := p.ID()
	n := &l.nodes[id]
	next := n.next.Load()
	if next == nil {
		if l.gtail.CompareAndSwap(n, nil) {
			l.slots[id].state.Store(fcIdle)
			return
		}
		for i := 0; ; i++ {
			if next = n.next.Load(); next != nil {
				break
			}
			spin.Poll(i)
		}
	}
	l.slots[id].state.Store(fcIdle)
	next.status.Store(qGranted)
	next.parker.Wake()
}
