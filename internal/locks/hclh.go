package locks

import (
	"sync/atomic"

	"repro/internal/numa"
	"repro/internal/spin"
)

// Queue-node grant states shared by the hierarchical queue locks.
const (
	qWait    int32 = 0
	qGranted int32 = 1
)

// qNode is a queue record used by HCLH and FC-MCS: an explicit
// successor link plus a grant flag the owner spins on. One node per
// (lock, proc); standard MCS reuse rules apply.
type qNode struct {
	next   atomic.Pointer[qNode]
	status atomic.Int32
	parker spin.Parker
	_      numa.Pad
}

// localTail is a padded per-cluster collection-queue tail.
type localTail struct {
	ptr atomic.Pointer[qNode]
	_   numa.Pad
}

// HCLH is the hierarchical CLH lock of Luchangco, Nussbaum and Shavit:
// requests gather in a per-cluster queue; the thread at the head of a
// cluster queue (the "master") waits a combining window, closes the
// local queue, and splices the whole batch into a single global queue,
// where grants proceed in FIFO order.
//
// Deviation from the original (documented in DESIGN.md): batch chains
// use explicit MCS-style next links rather than CLH implicit links and
// tagged pointers. The properties the paper's evaluation exercises —
// batch formation per cluster, the SWAP contention bottleneck on the
// local tail, the master's wait-vs-short-batch tension, and
// FIFO-after-splice ordering — are preserved.
type HCLH struct {
	gtail  atomic.Pointer[qNode]
	_      numa.Pad
	ltails []localTail
	nodes  []qNode
	// window is how long (in pause units) a master lingers before
	// closing its cluster's queue, the HCLH merge tradeoff.
	window int
}

// DefaultHCLHWindow is the default master combining window, in pause
// units — long enough (~several µs) that arrivals inside the window
// join the master's batch. The paper calls out exactly this tension:
// the master "must either wait for a long period or globally merge an
// unacceptably short local queue".
const DefaultHCLHWindow = 2048

// NewHCLH returns an HCLH lock for the given topology.
func NewHCLH(topo *numa.Topology) *HCLH {
	return NewHCLHWindow(topo, DefaultHCLHWindow)
}

// NewHCLHWindow is NewHCLH with an explicit combining window.
func NewHCLHWindow(topo *numa.Topology, window int) *HCLH {
	if window < 0 {
		window = 0
	}
	l := &HCLH{
		ltails: make([]localTail, topo.Clusters()),
		nodes:  make([]qNode, topo.MaxProcs()),
		window: window,
	}
	for i := range l.nodes {
		l.nodes[i].parker = spin.MakeParker()
	}
	return l
}

// Lock enqueues into the cluster queue; the cluster master splices the
// batch into the global queue.
func (l *HCLH) Lock(p *numa.Proc) {
	n := &l.nodes[p.ID()]
	n.next.Store(nil)
	n.status.Store(qWait)

	lt := &l.ltails[p.Cluster()]
	pred := lt.ptr.Swap(n)
	if pred != nil {
		// Mid-batch: link in and wait to be granted (the grant arrives
		// after our batch is spliced and our predecessor finishes).
		pred.next.Store(n)
		n.parker.Wait(func() bool { return n.status.Load() != qWait })
		return
	}

	// We are the cluster master. Linger to let the batch grow, then
	// close the local queue and splice the chain [n..end] globally.
	if l.window > 0 {
		spin.Pause(l.window)
	}
	end := lt.ptr.Swap(nil)
	// end is the last node that swapped in; ensure the chain's links
	// are all published before handing the chain to the global queue.
	for cur := n; cur != end; {
		var nxt *qNode
		for i := 0; ; i++ {
			if nxt = cur.next.Load(); nxt != nil {
				break
			}
			spin.Poll(i)
		}
		cur = nxt
	}

	gpred := l.gtail.Swap(end)
	if gpred == nil {
		return // global queue was empty: the master owns the lock
	}
	gpred.next.Store(n)
	n.parker.Wait(func() bool { return n.status.Load() != qWait })
}

// Unlock passes the lock down the spliced global chain, or empties it.
func (l *HCLH) Unlock(p *numa.Proc) {
	n := &l.nodes[p.ID()]
	next := n.next.Load()
	if next == nil {
		if l.gtail.CompareAndSwap(n, nil) {
			return
		}
		for i := 0; ; i++ {
			if next = n.next.Load(); next != nil {
				break
			}
			spin.Poll(i)
		}
	}
	next.status.Store(qGranted)
	next.parker.Wake()
}
