package locks

import (
	"sync/atomic"

	"repro/internal/numa"
	"repro/internal/spin"
)

// DefaultCNAStreak bounds consecutive same-cluster hand-offs before a
// CNA lock must serve a deferred remote waiter — the same fairness
// knob the cohort locks expose as their may-pass-local limit.
const DefaultCNAStreak = 64

// cnaNode is one thread's record in the CNA queue. Like MCS, each
// (lock, proc) pair owns a dedicated padded node, reused across
// acquisitions. Beyond the MCS fields it carries the secondary-list
// plumbing: sec is the head of the deferred remote-waiter list handed
// to this node along with the lock, and secTail (meaningful only on a
// secondary-list head) is that list's last node.
type cnaNode struct {
	next    atomic.Pointer[cnaNode]
	granted atomic.Int32 // 1 once the lock has been passed to this node
	sec     atomic.Pointer[cnaNode]
	secTail atomic.Pointer[cnaNode]
	parker  spin.Parker
	cluster int
	_       numa.Pad
}

// CNA is the compact NUMA-aware queue lock of Dice and Kogan
// (EuroSys 2019): a single MCS-shaped queue whose releaser scans for a
// successor from its own cluster, moving the remote waiters it skips
// onto a secondary list. Ownership thus circulates within one cluster
// — cohort-style locality from one queue and constant memory — until
// the local streak reaches its bound or the cluster runs out of
// waiters, at which point the secondary list is spliced back ahead of
// the main queue so deferred clusters are served oldest-first.
type CNA struct {
	tail atomic.Pointer[cnaNode]
	_    numa.Pad
	// streak counts consecutive same-cluster hand-offs. It is written
	// only by the lock holder; successive holders are ordered by the
	// grant and tail atomics.
	streak int64
	limit  int64
	nodes  []cnaNode // indexed by proc id
}

// NewCNA returns a CNA lock sized for the topology's processors, with
// the default local-streak bound.
func NewCNA(topo *numa.Topology) *CNA {
	return NewCNAStreak(topo, DefaultCNAStreak)
}

// NewCNAStreak is NewCNA with an explicit bound on consecutive local
// hand-offs. Zero selects DefaultCNAStreak; a negative value removes
// the bound entirely — remote waiters are then served only when the
// holder's cluster has no waiter, the deeply unfair variant.
func NewCNAStreak(topo *numa.Topology, limit int64) *CNA {
	if limit == 0 {
		limit = DefaultCNAStreak
	}
	l := &CNA{limit: limit, nodes: make([]cnaNode, topo.MaxProcs())}
	for i := range l.nodes {
		l.nodes[i].parker = spin.MakeParker()
		l.nodes[i].cluster = topo.ClusterOf(i)
	}
	return l
}

// Lock enqueues the caller on the main queue and spins on its own
// node, exactly like MCS; NUMA-awareness lives entirely in Unlock.
func (l *CNA) Lock(p *numa.Proc) {
	n := &l.nodes[p.ID()]
	n.next.Store(nil)
	n.sec.Store(nil)
	n.secTail.Store(nil)
	n.granted.Store(0)
	pred := l.tail.Swap(n)
	if pred == nil {
		return
	}
	pred.next.Store(n)
	n.parker.Wait(func() bool { return n.granted.Load() == 1 })
}

// Unlock passes the lock to the first same-cluster waiter while the
// streak budget lasts, deferring the remote waiters it skips onto the
// secondary list; otherwise it serves the oldest deferred waiter (or
// the main-queue head) and resets the streak.
func (l *CNA) Unlock(p *numa.Proc) {
	n := &l.nodes[p.ID()]
	next := n.next.Load()
	if next == nil {
		if sec := n.sec.Load(); sec == nil {
			if l.tail.CompareAndSwap(n, nil) {
				return
			}
		} else if l.tail.CompareAndSwap(n, sec.secTail.Load()) {
			// Main queue drained: the deferred waiters become the whole
			// queue, their internal next links already in place.
			l.streak = 0
			l.grant(sec, nil)
			return
		}
		// A successor swapped in but has not linked yet; wait for it.
		for i := 0; ; i++ {
			if next = n.next.Load(); next != nil {
				break
			}
			spin.Poll(i)
		}
	}
	if l.limit < 0 || l.streak < l.limit {
		if succ := l.findLocal(n, next); succ != nil {
			l.streak++
			l.grant(succ, n.sec.Load())
			return
		}
	}
	// Streak exhausted or no same-cluster waiter: splice the secondary
	// list ahead of the main queue so its oldest waiter runs next.
	l.streak = 0
	if sec := n.sec.Load(); sec != nil {
		sec.secTail.Load().next.Store(next)
		l.grant(sec, nil)
	} else {
		l.grant(next, nil)
	}
}

// grant hands the lock (and the current secondary list) to succ. The
// sec store must precede the granted store: the waiter reads its own
// sec field only after observing granted.
func (l *CNA) grant(succ, sec *cnaNode) {
	succ.sec.Store(sec)
	succ.granted.Store(1)
	succ.parker.Wake()
}

// findLocal returns the first waiter from the holder's cluster, moving
// the fully-linked remote prefix before it onto the secondary list. It
// returns nil — and defers nothing — if no linked same-cluster waiter
// exists, so an unlinked straggler costs at most one remote hand-off.
func (l *CNA) findLocal(n, head *cnaNode) *cnaNode {
	if head.cluster == n.cluster {
		return head
	}
	last := head
	for {
		nxt := last.next.Load()
		if nxt == nil {
			return nil
		}
		if nxt.cluster == n.cluster {
			l.deferRemote(n, head, last)
			return nxt
		}
		last = nxt
	}
}

// deferRemote appends the remote run [head..last] to the holder's
// secondary list. Every node in the run has a linked successor, so
// overwriting last.next cannot race a tail-swapping arrival (only the
// queue tail's next is ever written by arrivals).
func (l *CNA) deferRemote(n, head, last *cnaNode) {
	last.next.Store(nil) // sever the run from the found successor
	if sec := n.sec.Load(); sec != nil {
		sec.secTail.Load().next.Store(head)
		sec.secTail.Store(last)
	} else {
		head.secTail.Store(last)
		n.sec.Store(head)
	}
}
