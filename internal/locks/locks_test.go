package locks_test

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/locks"
	"repro/internal/locktest"
	"repro/internal/numa"
)

// testTopo is shared by most tests: 4 clusters, enough procs for
// oversubscription beyond GOMAXPROCS.
func testTopo() *numa.Topology { return numa.New(4, 64) }

// stressProcs picks a proc count that exercises both true parallelism
// and goroutine oversubscription.
func stressProcs() int {
	n := runtime.GOMAXPROCS(0) * 2
	if n > 64 {
		n = 64
	}
	if n < 4 {
		n = 4
	}
	return n
}

// factories enumerates every blocking lock in the package.
func factories() map[string]func(topo *numa.Topology) locks.Mutex {
	return map[string]func(topo *numa.Topology) locks.Mutex{
		"bo":      func(*numa.Topology) locks.Mutex { return locks.NewBO(locks.DefaultBOConfig()) },
		"fib-bo":  func(*numa.Topology) locks.Mutex { return locks.NewBO(locks.FibBOConfig()) },
		"ticket":  func(topo *numa.Topology) locks.Mutex { return locks.NewTicket(topo) },
		"mcs":     func(topo *numa.Topology) locks.Mutex { return locks.NewMCS(topo) },
		"clh":     func(topo *numa.Topology) locks.Mutex { return locks.NewCLH(topo) },
		"hbo":     func(*numa.Topology) locks.Mutex { return locks.NewHBO(locks.LBenchHBOConfig()) },
		"hclh":    func(topo *numa.Topology) locks.Mutex { return locks.NewHCLH(topo) },
		"cna":     func(topo *numa.Topology) locks.Mutex { return locks.NewCNA(topo) },
		"fc-mcs":  func(topo *numa.Topology) locks.Mutex { return locks.NewFCMCS(topo) },
		"pthread": func(*numa.Topology) locks.Mutex { return locks.NewPthread() },
		"a-clh":   func(topo *numa.Topology) locks.Mutex { return locks.NewACLH(topo) },
	}
}

func TestMutualExclusionAllLocks(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			topo := testTopo()
			locktest.CheckMutex(t, topo, mk(topo), stressProcs(), 300)
		})
	}
}

func TestSingleThreadedReacquire(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			topo := testTopo()
			m := mk(topo)
			p := topo.Proc(0)
			for i := 0; i < 100; i++ {
				m.Lock(p)
				m.Unlock(p)
			}
		})
	}
}

func TestTwoProcHandoffAllLocks(t *testing.T) {
	for name, mk := range factories() {
		t.Run(name, func(t *testing.T) {
			topo := testTopo()
			locktest.CheckHandoff(t, topo, mk(topo), 500)
		})
	}
}

func TestOversubscribedStress(t *testing.T) {
	// More goroutines than GOMAXPROCS forces the Poll/Gosched
	// escalation paths; queue locks deadlock here if spins never yield.
	for _, name := range []string{"mcs", "clh", "hclh", "fc-mcs", "ticket"} {
		mk := factories()[name]
		t.Run(name, func(t *testing.T) {
			topo := numa.New(4, 64)
			locktest.CheckMutex(t, topo, mk(topo), 64, 100)
		})
	}
}

func TestTicketFIFOOrder(t *testing.T) {
	topo := testTopo()
	l := locks.NewTicket(topo)
	p := topo.Proc(0)
	for i := 0; i < 5; i++ {
		l.Lock(p)
		req, grant := l.Holders()
		if req != uint64(i+1) || grant != uint64(i) {
			t.Fatalf("iteration %d: counters (req=%d, grant=%d)", i, req, grant)
		}
		l.Unlock(p)
	}
}

func TestBOTryLockForTimesOut(t *testing.T) {
	topo := testTopo()
	l := locks.NewBO(locks.DefaultBOConfig())
	p0, p1 := topo.Proc(0), topo.Proc(1)
	l.Lock(p0)
	start := time.Now()
	if l.TryLockFor(p1, 5*time.Millisecond) {
		t.Fatal("TryLockFor succeeded while lock held")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("TryLockFor waited far beyond its patience")
	}
	l.Unlock(p0)
	if !l.TryLockFor(p1, time.Second) {
		t.Fatal("TryLockFor failed on a free lock")
	}
	l.Unlock(p1)
}

func TestHBOTracksOwnerCluster(t *testing.T) {
	topo := testTopo()
	l := locks.NewHBO(locks.LBenchHBOConfig())
	if l.OwnerCluster() != -1 {
		t.Fatal("fresh HBO should be free")
	}
	p := topo.Proc(2) // cluster 2
	l.Lock(p)
	if got := l.OwnerCluster(); got != 2 {
		t.Fatalf("OwnerCluster = %d, want 2", got)
	}
	l.Unlock(p)
	if l.OwnerCluster() != -1 {
		t.Fatal("HBO should be free after unlock")
	}
}

func TestHBOTryLockAborts(t *testing.T) {
	topo := testTopo()
	l := locks.NewHBO(locks.AppHBOConfig())
	p0, p1 := topo.Proc(0), topo.Proc(1)
	l.Lock(p0)
	if l.TryLockFor(p1, time.Millisecond) {
		t.Fatal("A-HBO acquired a held lock")
	}
	l.Unlock(p0)
	if !l.TryLockFor(p1, time.Millisecond) {
		t.Fatal("A-HBO failed on a free lock")
	}
	l.Unlock(p1)
}

func TestACLHAbortThenReacquire(t *testing.T) {
	topo := testTopo()
	l := locks.NewACLH(topo)
	p0, p1, p2 := topo.Proc(0), topo.Proc(1), topo.Proc(2)
	l.Lock(p0)
	// p1 aborts, leaving its node in the queue.
	if l.TryLockFor(p1, 2*time.Millisecond) {
		t.Fatal("p1 acquired a held lock")
	}
	// p2 enqueues behind p1's abandoned node, then p0 releases; p2 must
	// skip the aborted node and acquire.
	acquired := make(chan struct{})
	go func() {
		l.Lock(p2)
		close(acquired)
	}()
	time.Sleep(5 * time.Millisecond)
	l.Unlock(p0)
	select {
	case <-acquired:
	case <-time.After(10 * time.Second):
		t.Fatal("p2 never acquired past the aborted node")
	}
	l.Unlock(p2)
	// The aborter itself must be able to come back.
	if !l.TryLockFor(p1, time.Second) {
		t.Fatal("aborter could not reacquire a free lock")
	}
	l.Unlock(p1)
}

func TestACLHChainOfAborts(t *testing.T) {
	topo := testTopo()
	l := locks.NewACLH(topo)
	p0 := topo.Proc(0)
	l.Lock(p0)
	// Several waiters abort in sequence, each stacking an abandoned
	// node onto the queue.
	for i := 1; i <= 4; i++ {
		if l.TryLockFor(topo.Proc(i), time.Millisecond) {
			t.Fatalf("proc %d acquired a held lock", i)
		}
	}
	l.Unlock(p0)
	// A fresh thread must traverse all four aborted nodes.
	if !l.TryLockFor(topo.Proc(5), 5*time.Second) {
		t.Fatal("could not acquire past a chain of aborted nodes")
	}
	l.Unlock(topo.Proc(5))
}

func TestACLHConcurrentAborts(t *testing.T) {
	topo := numa.New(4, 32)
	l := locks.NewACLH(topo)
	successes, aborts := locktest.CheckTryMutex(t, topo, l, 32, 200, 200*time.Microsecond)
	t.Logf("A-CLH stress: %d successes, %d aborts", successes, aborts)
}

func TestHBOConcurrentAborts(t *testing.T) {
	topo := numa.New(4, 32)
	l := locks.NewHBO(locks.LBenchHBOConfig())
	successes, aborts := locktest.CheckTryMutex(t, topo, l, 32, 200, 200*time.Microsecond)
	t.Logf("A-HBO stress: %d successes, %d aborts", successes, aborts)
}

func TestBOConcurrentAborts(t *testing.T) {
	topo := numa.New(4, 32)
	l := locks.NewBO(locks.DefaultBOConfig())
	successes, aborts := locktest.CheckTryMutex(t, topo, l, 32, 200, 200*time.Microsecond)
	t.Logf("A-BO stress: %d successes, %d aborts", successes, aborts)
}

func TestHCLHWindowValidation(t *testing.T) {
	topo := testTopo()
	l := locks.NewHCLHWindow(topo, -5) // clamps, must not panic
	locktest.CheckMutex(t, topo, l, 8, 50)
}

func TestFCMCSPassesValidation(t *testing.T) {
	topo := testTopo()
	l := locks.NewFCMCSPasses(topo, 0) // clamps to 1
	locktest.CheckMutex(t, topo, l, 8, 50)
}

func TestFCMCSSingleClusterBatches(t *testing.T) {
	// All threads on one cluster: a single combiner should service
	// everyone; checks the publication-list path thoroughly.
	topo := numa.New(1, 16)
	l := locks.NewFCMCS(topo)
	locktest.CheckMutex(t, topo, l, 16, 300)
}

func TestHCLHSingleProcPerCluster(t *testing.T) {
	// Degenerate batches of size 1: every thread is its own master.
	topo := numa.New(4, 4)
	l := locks.NewHCLH(topo)
	locktest.CheckMutex(t, topo, l, 4, 300)
}

func TestCLHNodeRecyclingManyIterations(t *testing.T) {
	// CLH rotates nodes between threads; many iterations over few
	// procs exercises recycling.
	topo := numa.New(2, 4)
	l := locks.NewCLH(topo)
	locktest.CheckMutex(t, topo, l, 4, 2000)
}

func TestMCSUnlockWaitsForLaggingSuccessor(t *testing.T) {
	// Covered implicitly by stress, but verify the specific interleave:
	// successor swaps tail, then holder unlocks before the link is set.
	topo := testTopo()
	l := locks.NewMCS(topo)
	locktest.CheckHandoff(t, topo, l, 2000)
}
