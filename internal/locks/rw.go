package locks

import (
	"sync/atomic"

	"repro/internal/numa"
	"repro/internal/spin"
)

// RWMutex is a reader-writer lock operating on Proc handles: Lock and
// Unlock acquire and release exclusive (write) mode exactly as Mutex
// does, RLock and RUnlock acquire and release shared (read) mode. Any
// number of readers may hold shared mode together; exclusive mode
// excludes readers and writers alike.
//
// Every Mutex slots into the interface through RWFromMutex, which maps
// shared mode onto exclusive mode — correct, just not concurrent — so
// code written against RWMutex degrades gracefully to the whole
// existing lock family.
type RWMutex interface {
	Mutex
	RLock(p *numa.Proc)
	RUnlock(p *numa.Proc)
}

// ReadSharer is the optional introspection interface RW-aware callers
// use to learn whether a lock's shared mode actually admits concurrent
// readers. RWFromMutex adapters report false; genuine reader-writer
// locks either omit the method or report true.
type ReadSharer interface {
	SharedReads() bool
}

// SharesReads reports whether l's shared mode can genuinely run
// readers concurrently. Locks that do not implement ReadSharer are
// assumed to be real reader-writer locks.
func SharesReads(l RWMutex) bool {
	if s, ok := l.(ReadSharer); ok {
		return s.SharedReads()
	}
	return true
}

// rwExclusive adapts a Mutex to RWMutex by taking every acquisition in
// exclusive mode.
type rwExclusive struct {
	Mutex
}

func (l rwExclusive) RLock(p *numa.Proc)   { l.Lock(p) }
func (l rwExclusive) RUnlock(p *numa.Proc) { l.Unlock(p) }

// SharedReads reports false: the adapter serializes readers.
func (l rwExclusive) SharedReads() bool { return false }

// RWFromMutex adapts any mutual-exclusion lock to the RWMutex
// interface: shared mode is exclusive mode. The adapter reports
// SharedReads() == false so read paths that can exploit genuine
// sharing (the kvstore's Get) know to keep their exclusive-mode
// behavior byte-identical to the unwrapped lock.
func RWFromMutex(m Mutex) RWMutex {
	return rwExclusive{Mutex: m}
}

// rwReaderSlot is one cluster's reader count, padded so clusters never
// share a line.
type rwReaderSlot struct {
	n atomic.Int64
	_ numa.Pad
}

// RWPerCluster is the generic NUMA-aware reader-writer construction:
// per-cluster reader counters over an arbitrary writer lock. It is the
// cohort papers' reader-writer transformation with the writer medium
// left pluggable — hand it a cohort lock and you get the classic
// cohort RW lock, hand it a CNA lock and writers keep CNA's
// single-queue locality, hand it a plain MCS lock and only the readers
// are NUMA-aware.
//
// Readers touch exactly one line: their own cluster's counter, so
// concurrent readers on different clusters never exchange cache
// traffic. Writers serialize through the writer lock (inheriting its
// hand-off and locality policy), then raise a writer flag and drain
// every cluster's counter.
//
// The protocol is writer-preference with reader back-off:
//
//   - A reader increments its cluster's counter, then checks the
//     writer flag. If a writer is active, it backs out, waits for the
//     flag to clear, and retries — so arriving readers cannot starve a
//     writer that has already claimed the lock.
//   - A writer acquires the writer lock (mutual exclusion among
//     writers), raises the flag, and waits for every cluster's reader
//     count to drain.
//
// The flag is raised only while holding the writer lock, so at most
// one writer toggles it at a time.
type RWPerCluster struct {
	writers Mutex
	wflag   atomic.Int32
	_       numa.Pad
	readers []rwReaderSlot
}

// NewRWPerCluster builds the reader-writer construction over the given
// writer lock, which must be fresh (not shared with other users).
func NewRWPerCluster(topo *numa.Topology, writers Mutex) *RWPerCluster {
	return &RWPerCluster{
		writers: writers,
		readers: make([]rwReaderSlot, topo.Clusters()),
	}
}

// RLock acquires the lock in shared mode.
func (l *RWPerCluster) RLock(p *numa.Proc) {
	slot := &l.readers[p.Cluster()]
	for {
		slot.n.Add(1)
		if l.wflag.Load() == 0 {
			return // no writer: read section is open
		}
		// A writer is active or draining readers: back out and wait.
		slot.n.Add(-1)
		for i := 0; l.wflag.Load() != 0; i++ {
			spin.Poll(i)
		}
	}
}

// RUnlock releases shared mode.
func (l *RWPerCluster) RUnlock(p *numa.Proc) {
	l.readers[p.Cluster()].n.Add(-1)
}

// Lock acquires the lock in exclusive mode.
func (l *RWPerCluster) Lock(p *numa.Proc) {
	l.writers.Lock(p)
	l.wflag.Store(1)
	// Wait for in-flight readers, cluster by cluster. New readers see
	// the flag and back out.
	for c := range l.readers {
		for i := 0; l.readers[c].n.Load() != 0; i++ {
			spin.Poll(i)
		}
	}
}

// Unlock releases exclusive mode.
func (l *RWPerCluster) Unlock(p *numa.Proc) {
	l.wflag.Store(0)
	l.writers.Unlock(p)
}

// ActiveReaders reports the current reader count (racy; diagnostics
// and tests only).
func (l *RWPerCluster) ActiveReaders() int64 {
	var n int64
	for c := range l.readers {
		n += l.readers[c].n.Load()
	}
	return n
}

// Interface conformance checks.
var (
	_ RWMutex    = rwExclusive{}
	_ RWMutex    = (*RWPerCluster)(nil)
	_ ReadSharer = rwExclusive{}
)
