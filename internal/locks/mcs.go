package locks

import (
	"sync/atomic"

	"repro/internal/numa"
	"repro/internal/spin"
)

// mcsNode is one thread's record in the MCS queue. Each (lock, proc)
// pair owns a dedicated padded node, so nodes are reused across
// acquisitions without allocation — safe because standard MCS
// guarantees a node is unreferenced once its owner's Unlock returns.
type mcsNode struct {
	next   atomic.Pointer[mcsNode]
	locked atomic.Int32 // 1 while waiting
	parker spin.Parker
	_      numa.Pad
}

// MCS is the queue lock of Mellor-Crummey and Scott: arrivals swap
// themselves onto a tail pointer and spin locally on their own node
// until their predecessor hands the lock over. It is the paper's
// NUMA-oblivious baseline: perfectly fair, hence migration-heavy.
type MCS struct {
	tail  atomic.Pointer[mcsNode]
	_     numa.Pad
	nodes []mcsNode // indexed by proc id
}

// NewMCS returns an MCS lock sized for the topology's processors.
func NewMCS(topo *numa.Topology) *MCS {
	l := &MCS{nodes: make([]mcsNode, topo.MaxProcs())}
	for i := range l.nodes {
		l.nodes[i].parker = spin.MakeParker()
	}
	return l
}

// Lock enqueues the caller and spins on its own node.
func (l *MCS) Lock(p *numa.Proc) {
	n := &l.nodes[p.ID()]
	n.next.Store(nil)
	n.locked.Store(1)
	pred := l.tail.Swap(n)
	if pred == nil {
		return
	}
	pred.next.Store(n)
	n.parker.Wait(func() bool { return n.locked.Load() == 0 })
}

// Unlock hands the lock to the successor, or empties the queue.
func (l *MCS) Unlock(p *numa.Proc) {
	n := &l.nodes[p.ID()]
	next := n.next.Load()
	if next == nil {
		if l.tail.CompareAndSwap(n, nil) {
			return
		}
		// A successor swapped in but has not linked yet; wait for it.
		for i := 0; ; i++ {
			if next = n.next.Load(); next != nil {
				break
			}
			spin.Poll(i)
		}
	}
	next.locked.Store(0)
	next.parker.Wake()
}
