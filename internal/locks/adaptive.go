package locks

import (
	"sync/atomic"

	"repro/internal/numa"
	"repro/internal/spin"
)

// occSlot is one cluster's posted-request count, padded so clusters
// never share a line. It is the GCR-style occupancy signal: how many
// procs of this cluster currently have a request in flight through the
// executor. Incremented before a slot is posted and decremented after
// the closure completes, so it over-approximates the posted-slot count
// by at most the requests in their brief post/return windows — exactly
// the cheap, slightly-stale estimate an admission policy wants.
type occSlot struct {
	n atomic.Int32
	_ numa.Pad
}

// OccupancyEstimator is the optional introspection interface adaptive
// executors use to report their load estimate: the number of requests
// currently in flight, summed over clusters. Fixed-policy executors
// omit it.
type OccupancyEstimator interface {
	OccupancyEstimate() int
}

// EstimateOccupancy reports x's current in-flight request estimate and
// whether x tracks one at all.
func EstimateOccupancy(x Executor) (int, bool) {
	if e, ok := x.(OccupancyEstimator); ok {
		return e.OccupancyEstimate(), true
	}
	return 0, false
}

// Adaptive policy bounds. The patience window scales linearly with the
// cluster's occupancy (more peers posted -> more worth waiting to be
// harvested) up to adaptivePatienceCap multiples of the base window;
// harvest passes grow logarithmically up to DefaultAdaptiveMaxPasses.
const (
	adaptivePatienceCap = 8
	// DefaultAdaptiveMaxPasses caps how many harvest sweeps an
	// adaptive combiner makes per acquisition, however high the
	// occupancy estimate climbs: each extra pass adds a full
	// combinePassPause of lock hold time, so unbounded growth would
	// trade everyone's latency for marginal batch length.
	DefaultAdaptiveMaxPasses = 4
)

// CombiningAdaptive is NewCombining with the two fixed policy
// constants — the election patience window and the harvest pass count
// — replaced by functions of a per-cluster occupancy estimate.
//
// The fixed combiner is mistuned at both ends of the load curve: when
// the executor is idle, its second harvest pass (and the pause before
// it) stretches every solo operation for batches that cannot form; at
// high occupancy, its one-size patience window makes waiters give up
// and compete for the gate just as a long batch was about to pay off.
// The adaptive executor reads its cluster's posted-request count — the
// same cheap occupancy signal GCR uses for admission — and scales both
// knobs with it:
//
//   - Patience: a poster lingers occupancy x the base window (capped)
//     before trying to elect itself, so the more peers have requests in
//     flight, the longer it waits to ride their combiner's harvest.
//   - Passes: the combiner makes 1 + log2(occupancy) sweeps (capped),
//     so a lone request runs lock-run-unlock with no harvest pause at
//     all — the eager-bypass fast path — while a saturated cluster gets
//     long, locality-preserving batches.
//
// The estimate is maintained with one padded per-cluster counter
// touched only by same-cluster procs, so reading it costs a local
// cache hit, never cross-socket traffic.
type CombiningAdaptive struct {
	m Mutex
	// active counts running combiners, exactly as in Combining: posters
	// elect eagerly while it is zero (no batch anywhere to ride).
	active  atomic.Int32
	ops     atomic.Uint64 // closures executed
	batches atomic.Uint64 // acquisitions of the underlying lock
	_       numa.Pad
	occ     []occSlot
	gates   []combinerGate
	slots   []combSlot
	// members lists the proc ids of each cluster, the combiner's scan
	// order.
	members [][]int
	// maxPasses caps the occupancy-scaled harvest pass count.
	maxPasses int
}

// NewCombiningAdaptive returns a load-adaptive combining executor over
// m for the topology. The underlying lock must be fresh (not shared
// with direct Lock/Unlock users): the executor owns its exclusion
// domain.
func NewCombiningAdaptive(topo *numa.Topology, m Mutex) *CombiningAdaptive {
	c := &CombiningAdaptive{
		m:         m,
		occ:       make([]occSlot, topo.Clusters()),
		gates:     make([]combinerGate, topo.Clusters()),
		slots:     make([]combSlot, topo.MaxProcs()),
		members:   make([][]int, topo.Clusters()),
		maxPasses: DefaultAdaptiveMaxPasses,
	}
	for i := range c.slots {
		c.slots[i].parker = spin.MakeParker()
	}
	for id := 0; id < topo.MaxProcs(); id++ {
		cl := topo.ClusterOf(id)
		c.members[cl] = append(c.members[cl], id)
	}
	return c
}

// CombinesExec reports true: ops amortize over lock acquisitions.
func (c *CombiningAdaptive) CombinesExec() bool { return true }

// patience is the election patience window for the given cluster
// occupancy: the base window scaled by how many same-cluster peers
// have requests in flight, capped.
func patience(occ int32) int {
	if occ < 1 {
		occ = 1
	}
	if occ > adaptivePatienceCap {
		occ = adaptivePatienceCap
	}
	return int(occ) * electAfter
}

// passesFor is the harvest pass count for the given occupancy:
// 1 + log2(occ), capped at max. Occupancy 1 — only the combiner's own
// request — makes a single sweep with no inter-pass pause.
func passesFor(occ int32, max int) int {
	p := 1
	for o := occ; o > 1; o >>= 1 {
		p++
	}
	if p > max {
		p = max
	}
	return p
}

// Exec publishes fn and waits until a combiner (possibly this proc)
// has run it.
func (c *CombiningAdaptive) Exec(p *numa.Proc, fn func()) {
	oc := &c.occ[p.Cluster()]
	oc.n.Add(1)
	slot := &c.slots[p.ID()]
	slot.fn = fn
	slot.state.Store(combPosted)

	gate := &c.gates[p.Cluster()]
	for i := 0; slot.state.Load() == combPosted; i++ {
		// Bypass the patience window when no combiner is running
		// anywhere: there is no batch to ride, so elect immediately
		// (the low-contention fast path costs one gate CAS).
		eager := c.active.Load() == 0
		if (eager || i >= patience(oc.n.Load())) && gate.held.Load() == 0 && gate.held.CompareAndSwap(0, 1) {
			if slot.state.Load() == combPosted {
				c.combine(p)
			}
			gate.held.Store(0)
			break // combine always runs the combiner's own closure
		}
		spin.Poll(i)
	}
	slot.parker.Wait(func() bool { return slot.state.Load() == combDone })
	slot.state.Store(combIdle)
	oc.n.Add(-1)
}

// combine runs the cluster's posted closures — the combiner's own
// among them — under one acquisition of the underlying lock, making an
// occupancy-scaled number of harvest passes. Called with the cluster
// gate held.
func (c *CombiningAdaptive) combine(p *numa.Proc) {
	cl := p.Cluster()
	c.active.Add(1)
	c.m.Lock(p)
	// Sample occupancy once per acquisition: the estimate drifting
	// mid-batch only mis-sizes this batch's tail, never correctness.
	passes := passesFor(c.occ[cl].n.Load(), c.maxPasses)
	ran := uint64(0)
	for pass := 0; pass < passes; pass++ {
		if pass > 0 {
			// Let in-flight requests publish, so batches form even at
			// moderate per-cluster occupancy (same rationale as the
			// FC-MCS harvest pause).
			spin.Pause(combinePassPause)
		}
		for _, id := range c.members[cl] {
			s := &c.slots[id]
			if s.state.Load() != combPosted {
				continue
			}
			fn := s.fn
			s.fn = nil
			fn()
			s.state.Store(combDone)
			s.parker.Wake()
			ran++
		}
	}
	// Rescue sweep for clusters with no elected combiner, exactly as
	// in Combining.combine: harvesting is serialized by m, so remote
	// slots are as safe to scan as local ones, and the sweep keeps
	// orphaned clusters live when spinning workers outnumber
	// GOMAXPROCS and a cluster's members never win an election.
	for rc := range c.members {
		if rc == cl || c.gates[rc].held.Load() != 0 {
			continue
		}
		for _, id := range c.members[rc] {
			s := &c.slots[id]
			if s.state.Load() != combPosted {
				continue
			}
			fn := s.fn
			s.fn = nil
			fn()
			s.state.Store(combDone)
			s.parker.Wake()
			ran++
		}
	}
	c.m.Unlock(p)
	c.batches.Add(1)
	c.ops.Add(ran)
	c.active.Add(-1)
	// Hand the processor around at batch boundaries when oversubscribed,
	// as Combining.combine does.
	spin.Yield()
}

// Ops reports the number of closures executed so far; read it while
// posters are quiescent.
func (c *CombiningAdaptive) Ops() uint64 { return c.ops.Load() }

// Batches reports the number of underlying-lock acquisitions so far;
// Ops/Batches is the amortization factor the construction buys.
func (c *CombiningAdaptive) Batches() uint64 { return c.batches.Load() }

// Occupancy reports cluster's current in-flight request estimate
// (racy; diagnostics, tools and tests only).
func (c *CombiningAdaptive) Occupancy(cluster int) int {
	return int(c.occ[cluster].n.Load())
}

// OccupancyEstimate reports the in-flight request estimate summed over
// clusters (racy; diagnostics, tools and tests only).
func (c *CombiningAdaptive) OccupancyEstimate() int {
	n := 0
	for i := range c.occ {
		n += int(c.occ[i].n.Load())
	}
	return n
}

// Interface conformance checks.
var (
	_ Executor           = (*CombiningAdaptive)(nil)
	_ ExecCombiner       = (*CombiningAdaptive)(nil)
	_ OccupancyEstimator = (*CombiningAdaptive)(nil)
)
