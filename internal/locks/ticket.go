package locks

import (
	"sync/atomic"

	"repro/internal/numa"
	"repro/internal/spin"
)

// Ticket is the classic two-counter ticket lock: acquirers take a
// ticket from request and wait for grant to reach it; the releaser
// increments grant. FIFO-fair, and trivially thread-oblivious (any
// thread may perform the grant increment), which the paper exploits
// when using it as a cohort global lock.
//
// Waiters park per-ticket: slot ticket%len(parkers) can host at most
// one waiter because at most MaxProcs threads wait concurrently, so
// the releaser's targeted wake is exact.
type Ticket struct {
	request atomic.Uint64
	_       numa.Pad
	grant   atomic.Uint64
	_pad2   numa.Pad
	parkers []parkSlot
}

type parkSlot struct {
	p spin.Parker
	_ numa.Pad
}

// NewTicket returns an unlocked ticket lock sized for topo's
// processors.
func NewTicket(topo *numa.Topology) *Ticket {
	l := &Ticket{parkers: make([]parkSlot, topo.MaxProcs())}
	for i := range l.parkers {
		l.parkers[i].p = spin.MakeParker()
	}
	return l
}

// Lock takes a ticket and waits until it is granted.
func (l *Ticket) Lock(_ *numa.Proc) {
	t := l.request.Add(1) - 1
	if l.grant.Load() == t {
		return
	}
	l.parkers[t%uint64(len(l.parkers))].p.Wait(func() bool { return l.grant.Load() == t })
}

// Unlock grants the next ticket and wakes exactly its holder.
func (l *Ticket) Unlock(_ *numa.Proc) {
	g := l.grant.Add(1)
	l.parkers[g%uint64(len(l.parkers))].p.Wake()
}

// Holders reports the (request, grant) counters, for tests.
func (l *Ticket) Holders() (request, grant uint64) {
	return l.request.Load(), l.grant.Load()
}
