package locks_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/locks"
	"repro/internal/locktest"
	"repro/internal/numa"
)

func TestCNAMutualExclusion(t *testing.T) {
	topo := testTopo()
	locktest.CheckMutex(t, topo, locks.NewCNA(topo), stressProcs(), 300)
}

func TestCNASingleThreadedReacquire(t *testing.T) {
	topo := testTopo()
	l := locks.NewCNA(topo)
	p := topo.Proc(0)
	for i := 0; i < 100; i++ {
		l.Lock(p)
		l.Unlock(p)
	}
}

func TestCNAHandoff(t *testing.T) {
	topo := testTopo()
	locktest.CheckHandoff(t, topo, locks.NewCNA(topo), 2000)
}

func TestCNAOversubscribedStress(t *testing.T) {
	topo := numa.New(4, 64)
	locktest.CheckMutex(t, topo, locks.NewCNA(topo), 64, 100)
}

func TestCNASingleClusterDegeneratesToMCS(t *testing.T) {
	// One cluster: every waiter is local, the secondary list is never
	// used, and the lock must behave exactly like MCS.
	topo := numa.New(1, 16)
	locktest.CheckMutex(t, topo, locks.NewCNA(topo), 16, 300)
}

func TestCNAStreakValidation(t *testing.T) {
	topo := testTopo()
	if l := locks.NewCNAStreak(topo, 0); l == nil { // 0 selects the default
		t.Fatal("nil lock")
	}
	l := locks.NewCNAStreak(topo, -1) // unbounded streak must still exclude
	locktest.CheckMutex(t, topo, l, 8, 200)
}

func TestCNAFairnessUnderContention(t *testing.T) {
	topo := testTopo()
	locktest.CheckFairness(t, topo, locks.NewCNA(topo), 16, 300)
}

// enqueueWaiters acquires l on p0, then starts one waiter goroutine
// per listed proc id, pausing between starts so queue order matches
// the list. Each waiter records its id on acquisition and unlocks.
// It returns the recorded order after all waiters finish.
func enqueueWaiters(t *testing.T, l locks.Mutex, topo *numa.Topology, ids []int) []int {
	t.Helper()
	p0 := topo.Proc(0)
	l.Lock(p0)
	var (
		mu    sync.Mutex
		order []int
		wg    sync.WaitGroup
	)
	for _, id := range ids {
		wg.Add(1)
		go func(p *numa.Proc) {
			defer wg.Done()
			l.Lock(p)
			mu.Lock()
			order = append(order, p.ID())
			mu.Unlock()
			l.Unlock(p)
		}(topo.Proc(id))
		time.Sleep(20 * time.Millisecond) // let the waiter enqueue
	}
	l.Unlock(p0)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("waiters never drained: lost hand-off")
	}
	return order
}

func TestCNADefersRemoteWaiters(t *testing.T) {
	// 4 clusters: procs 0,4,8 are cluster 0; proc 1 is cluster 1.
	// Holder is cluster 0 and the queue is [1, 4]: CNA must skip the
	// remote waiter and grant its cluster mate first.
	topo := testTopo()
	order := enqueueWaiters(t, locks.NewCNA(topo), topo, []int{1, 4})
	want := []int{4, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("acquisition order %v, want %v (remote waiter not deferred)", order, want)
		}
	}
}

func TestCNAStreakBoundServesDeferred(t *testing.T) {
	// Streak bound 1 and queue [1, 4, 8]: the first unlock grants proc 4
	// (local, deferring proc 1); proc 4's unlock has exhausted the
	// streak, so the deferred remote waiter must run before proc 8.
	topo := testTopo()
	order := enqueueWaiters(t, locks.NewCNAStreak(topo, 1), topo, []int{1, 4, 8})
	want := []int{4, 1, 8}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("acquisition order %v, want %v (streak bound not honored)", order, want)
		}
	}
}

func TestCNAEmptyMainQueueServesSecondary(t *testing.T) {
	// Queue [1, 4] with an unbounded streak: proc 4 is granted first and
	// proc 1 sits on the secondary list with the main queue empty; proc
	// 4's unlock must install the secondary list as the queue.
	topo := testTopo()
	order := enqueueWaiters(t, locks.NewCNAStreak(topo, -1), topo, []int{1, 4})
	want := []int{4, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("acquisition order %v, want %v (secondary list dropped)", order, want)
		}
	}
}
