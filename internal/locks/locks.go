// Package locks implements the classic and prior-art lock algorithms
// the paper builds on and compares against: the test-and-test-and-set
// backoff lock (BO, including the Fibonacci-backoff variant), the
// ticket lock, the MCS and CLH queue locks, Scott's abortable CLH
// (A-CLH), the hierarchical backoff lock (HBO) of Radović and
// Hagersten with an abortable variant, the hierarchical CLH lock
// (HCLH) of Luchangco et al., the flat-combining MCS lock (FC-MCS) of
// Dice et al., and a pthread-style blocking mutex.
//
// All locks share the Mutex interface, which threads per-thread
// context (*numa.Proc) explicitly: queue locks need a stable identity
// for their queue nodes, and NUMA-aware locks need the cluster id.
package locks

import (
	"time"

	"repro/internal/numa"
)

// Mutex is a mutual-exclusion lock whose operations carry the calling
// thread's processor handle. Lock blocks until the lock is held;
// Unlock must be called by the holder (except where an implementation
// documents thread-obliviousness).
type Mutex interface {
	Lock(p *numa.Proc)
	Unlock(p *numa.Proc)
}

// TryMutex is an abortable mutual-exclusion lock in the sense of Scott
// and Scherer: a thread may abandon its acquisition attempt after a
// patience interval. TryLockFor reports whether the lock was acquired;
// on false, the thread holds nothing and owes nothing.
type TryMutex interface {
	TryLockFor(p *numa.Proc, patience time.Duration) bool
	Unlock(p *numa.Proc)
}
