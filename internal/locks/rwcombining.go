package locks

import (
	"sync/atomic"

	"repro/internal/numa"
	"repro/internal/spin"
)

// readCombiner is the shared-mode half of the combining RWExecutor:
// the Combining publication/election machinery pointed at RLock
// instead of Lock. Readers post closures in padded per-proc slots, one
// reader per cluster elects itself combiner through the cluster gate,
// and the combiner runs its cluster's whole harvested batch under a
// SINGLE shared acquisition — harvested reads execute serially on the
// combiner thread, but the batch coexists with every other cluster's
// reader-combiner (and with single-closure bypassers), because they
// all hold the underlying lock in shared mode.
//
// The per-cluster occupancy counter doubles as the single-closure
// bypass condition: a reader that increments it to exactly 1 has no
// same-cluster peer with a shared request in flight, so there is no
// batch to form and it brackets its closure with RLock/RUnlock
// directly — the idle path costs the same as ExecFromRWMutex and
// keeps batches == ops while uncontended.
type readCombiner struct {
	l RWMutex
	// active counts running reader-combiners; posters elect eagerly
	// while it is zero (no batch anywhere to ride) and otherwise
	// linger the patience window to be harvested instead of competing.
	active  atomic.Int32
	ops     atomic.Uint64 // shared closures executed
	batches atomic.Uint64 // shared acquisitions of the underlying lock
	_       numa.Pad
	occ     []occSlot
	gates   []combinerGate
	slots   []combSlot
	// members lists the proc ids of each cluster, the combiner's scan
	// order.
	members [][]int
	// adaptive selects the occupancy-scaled patience window and pass
	// count (the CombiningAdaptive policy) over the fixed constants.
	adaptive bool
	// passes is the fixed harvest sweep count; maxPasses caps the
	// occupancy-scaled count when adaptive.
	passes    int
	maxPasses int
}

func (r *readCombiner) init(topo *numa.Topology, l RWMutex, adaptive bool) {
	r.l = l
	r.adaptive = adaptive
	r.occ = make([]occSlot, topo.Clusters())
	r.gates = make([]combinerGate, topo.Clusters())
	r.slots = make([]combSlot, topo.MaxProcs())
	r.members = make([][]int, topo.Clusters())
	r.passes = DefaultFCPasses
	r.maxPasses = DefaultAdaptiveMaxPasses
	for i := range r.slots {
		r.slots[i].parker = spin.MakeParker()
	}
	for id := 0; id < topo.MaxProcs(); id++ {
		cl := topo.ClusterOf(id)
		r.members[cl] = append(r.members[cl], id)
	}
}

// execShared publishes fn and waits until a reader-combiner (possibly
// this proc) has run it, or runs it directly on the bypass path.
func (r *readCombiner) execShared(p *numa.Proc, fn func()) {
	oc := &r.occ[p.Cluster()]
	if oc.n.Add(1) == 1 {
		// Single-closure bypass: no same-cluster peer has a shared
		// request in flight (peers decrement only after their slot is
		// idle again), so no batch can form around this closure.
		r.l.RLock(p)
		fn()
		r.l.RUnlock(p)
		r.batches.Add(1)
		r.ops.Add(1)
		oc.n.Add(-1)
		return
	}
	slot := &r.slots[p.ID()]
	slot.fn = fn
	slot.state.Store(combPosted)

	gate := &r.gates[p.Cluster()]
	for i := 0; slot.state.Load() == combPosted; i++ {
		// Bypass the patience window when no reader-combiner is
		// running anywhere: there is no batch to ride, so elect
		// immediately (the low-contention path costs one gate CAS).
		eager := r.active.Load() == 0
		if (eager || i >= r.patienceFor(oc)) && gate.held.Load() == 0 && gate.held.CompareAndSwap(0, 1) {
			if slot.state.Load() == combPosted {
				r.combine(p)
			}
			gate.held.Store(0)
			break // combine always runs the combiner's own closure
		}
		spin.Poll(i)
	}
	slot.parker.Wait(func() bool { return slot.state.Load() == combDone })
	slot.state.Store(combIdle)
	oc.n.Add(-1)
}

// patienceFor is the election patience window: the fixed FC-MCS base
// window, or occupancy-scaled under the adaptive policy.
func (r *readCombiner) patienceFor(oc *occSlot) int {
	if r.adaptive {
		return patience(oc.n.Load())
	}
	return electAfter
}

// combine runs the cluster's posted shared closures — the combiner's
// own among them — under one shared acquisition of the underlying
// lock. Called with the cluster gate held.
func (r *readCombiner) combine(p *numa.Proc) {
	cl := p.Cluster()
	r.active.Add(1)
	r.l.RLock(p)
	passes := r.passes
	if r.adaptive {
		// Sample occupancy once per acquisition, as CombiningAdaptive
		// does: drift mid-batch only mis-sizes this batch's tail.
		passes = passesFor(r.occ[cl].n.Load(), r.maxPasses)
	}
	ran := uint64(0)
	for pass := 0; pass < passes; pass++ {
		if pass > 0 {
			// Let in-flight requests publish, so batches form even at
			// moderate per-cluster occupancy (same rationale as the
			// FC-MCS harvest pause).
			spin.Pause(combinePassPause)
		}
		for _, id := range r.members[cl] {
			s := &r.slots[id]
			if s.state.Load() != combPosted {
				continue
			}
			fn := s.fn
			s.fn = nil
			fn()
			s.state.Store(combDone)
			s.parker.Wake()
			ran++
		}
	}
	// Rescue sweep for clusters with no elected reader-combiner — the
	// shared-mode analogue of the exclusive combiners' sweep, keeping
	// orphaned clusters live when spinning workers outnumber
	// GOMAXPROCS. Unlike the exclusive side, reader-combiners run
	// CONCURRENTLY (each under its own shared acquisition), so the
	// cluster gate is what serializes a cluster's slot harvest: a
	// remote cluster may only be swept after winning its gate. The
	// try-lock never blocks, so two sweepers cannot deadlock, and a
	// cluster whose own combiner holds the gate is skipped — it is
	// already being served with full locality.
	for rc := range r.members {
		if rc == cl {
			continue
		}
		g := &r.gates[rc]
		if g.held.Load() != 0 || !g.held.CompareAndSwap(0, 1) {
			continue
		}
		for _, id := range r.members[rc] {
			s := &r.slots[id]
			if s.state.Load() != combPosted {
				continue
			}
			fn := s.fn
			s.fn = nil
			fn()
			s.state.Store(combDone)
			s.parker.Wake()
			ran++
		}
		g.held.Store(0)
	}
	r.l.RUnlock(p)
	r.batches.Add(1)
	r.ops.Add(ran)
	r.active.Add(-1)
	// Hand the processor around at batch boundaries when oversubscribed,
	// as Combining.combine does.
	spin.Yield()
}

// RWCombining turns any RWMutex into a combining reader-writer
// executor: exclusive closures go through the standard Combining
// machinery over the lock's exclusive face (one Lock per same-cluster
// batch), and shared closures go through the read-side twin — a
// per-cluster reader-combiner takes ONE RLock and runs the whole
// harvested batch under it, so N concurrent same-cluster readers cost
// one shared acquisition instead of N. Harvested reads run serially on
// the combiner thread, but reader-combiners on different clusters (and
// single-closure bypassers) still coexist: they all hold shared mode.
//
// The underlying lock must be fresh (not shared with direct users):
// the executor owns its exclusion domain. Exclusive-side amortization
// is reported by Ops/Batches, shared-side by SharedOps/SharedBatches;
// while uncontended every shared closure takes the bypass and the two
// shared counters advance in lockstep.
type RWCombining struct {
	*Combining
	reads readCombiner
}

// NewRWCombining returns a combining reader-writer executor over l for
// the topology, with the default harvest pass count on both sides.
func NewRWCombining(topo *numa.Topology, l RWMutex) *RWCombining {
	c := &RWCombining{Combining: NewCombining(topo, l)}
	c.reads.init(topo, l, false)
	return c
}

// ExecShared publishes fn in shared mode and waits until it has run.
func (c *RWCombining) ExecShared(p *numa.Proc, fn func()) {
	c.reads.execShared(p, fn)
}

// SharedOps reports the number of shared closures executed so far;
// read it while posters are quiescent.
func (c *RWCombining) SharedOps() uint64 { return c.reads.ops.Load() }

// SharedBatches reports the number of shared acquisitions of the
// underlying lock so far; SharedOps/SharedBatches is the read-side
// amortization factor.
func (c *RWCombining) SharedBatches() uint64 { return c.reads.batches.Load() }

// SharedReads passes the underlying lock's sharing property through:
// over an RWFromMutex-adapted exclusive lock the harvested "shared"
// batches still serialize, and consumers should know.
func (c *RWCombining) SharedReads() bool { return SharesReads(c.reads.l) }

// RWCombiningAdaptive is NewRWCombining with both sides running the
// occupancy-adaptive policy: exclusive closures through
// CombiningAdaptive, shared closures through a read-combiner whose
// patience window and harvest pass count scale with the cluster's
// in-flight shared-request count.
type RWCombiningAdaptive struct {
	*CombiningAdaptive
	reads readCombiner
}

// NewRWCombiningAdaptive returns a load-adaptive combining
// reader-writer executor over l for the topology. The underlying lock
// must be fresh (not shared with direct users).
func NewRWCombiningAdaptive(topo *numa.Topology, l RWMutex) *RWCombiningAdaptive {
	c := &RWCombiningAdaptive{CombiningAdaptive: NewCombiningAdaptive(topo, l)}
	c.reads.init(topo, l, true)
	return c
}

// ExecShared publishes fn in shared mode and waits until it has run.
func (c *RWCombiningAdaptive) ExecShared(p *numa.Proc, fn func()) {
	c.reads.execShared(p, fn)
}

// SharedOps reports the number of shared closures executed so far;
// read it while posters are quiescent.
func (c *RWCombiningAdaptive) SharedOps() uint64 { return c.reads.ops.Load() }

// SharedBatches reports the number of shared acquisitions of the
// underlying lock so far; SharedOps/SharedBatches is the read-side
// amortization factor.
func (c *RWCombiningAdaptive) SharedBatches() uint64 { return c.reads.batches.Load() }

// SharedReads passes the underlying lock's sharing property through,
// exactly as RWCombining does.
func (c *RWCombiningAdaptive) SharedReads() bool { return SharesReads(c.reads.l) }

// Occupancy reports cluster's current in-flight request estimate,
// exclusive and shared requests summed (racy; diagnostics, tools and
// tests only).
func (c *RWCombiningAdaptive) Occupancy(cluster int) int {
	return c.CombiningAdaptive.Occupancy(cluster) + int(c.reads.occ[cluster].n.Load())
}

// OccupancyEstimate reports the in-flight request estimate summed over
// clusters and over both modes (racy; diagnostics, tools and tests
// only).
func (c *RWCombiningAdaptive) OccupancyEstimate() int {
	n := c.CombiningAdaptive.OccupancyEstimate()
	for i := range c.reads.occ {
		n += int(c.reads.occ[i].n.Load())
	}
	return n
}

// Interface conformance checks.
var (
	_ RWExecutor         = (*RWCombining)(nil)
	_ RWExecutor         = (*RWCombiningAdaptive)(nil)
	_ ExecCombiner       = (*RWCombining)(nil)
	_ ExecCombiner       = (*RWCombiningAdaptive)(nil)
	_ ReadSharer         = (*RWCombining)(nil)
	_ ReadSharer         = (*RWCombiningAdaptive)(nil)
	_ OccupancyEstimator = (*RWCombiningAdaptive)(nil)
)
