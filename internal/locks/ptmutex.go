package locks

import (
	"sync"

	"repro/internal/numa"
)

// Pthread adapts Go's blocking sync.Mutex to the Mutex interface. It
// plays the role of the paper's pthread_mutex baseline: an
// OS-arbitrated blocking lock with no NUMA awareness, the default that
// memcached and the Solaris allocator are measured with.
type Pthread struct {
	mu sync.Mutex
}

// NewPthread returns an unlocked blocking mutex.
func NewPthread() *Pthread { return &Pthread{} }

// Lock blocks until the mutex is held.
func (l *Pthread) Lock(_ *numa.Proc) { l.mu.Lock() }

// Unlock releases the mutex.
func (l *Pthread) Unlock(_ *numa.Proc) { l.mu.Unlock() }
