package locks

import (
	"sync/atomic"

	"repro/internal/numa"
	"repro/internal/spin"
)

// clhNode is one CLH queue record. Unlike MCS, a waiter spins on its
// predecessor's node; releasing stores into one's own node. Nodes
// therefore rotate between threads: an acquirer adopts its
// predecessor's released node for its own next acquisition.
type clhNode struct {
	locked atomic.Int32 // 1 while the owning thread holds or waits for the lock
	// parker wakes whichever thread watches this node (the node
	// owner's queue successor).
	parker spin.Parker
	_      numa.Pad
}

func newCLHNode() *clhNode {
	return &clhNode{parker: spin.MakeParker()}
}

// CLH is the queue lock of Craig, Landin and Hagersten. It underlies
// the HCLH baseline and, in its abortable form (A-CLH), the paper's
// A-C-BO-CLH construction.
type CLH struct {
	tail atomic.Pointer[clhNode]
	_    numa.Pad
	// my and pred are per-proc slots recording the node a thread
	// enqueued and the predecessor node it must recycle on release.
	my   []*clhNode
	pred []*clhNode
}

// NewCLH returns an unlocked CLH lock sized for topo's processors.
func NewCLH(topo *numa.Topology) *CLH {
	l := &CLH{
		my:   make([]*clhNode, topo.MaxProcs()),
		pred: make([]*clhNode, topo.MaxProcs()),
	}
	for i := range l.my {
		l.my[i] = newCLHNode()
	}
	dummy := newCLHNode() // unlocked sentinel: the queue is never empty
	l.tail.Store(dummy)
	return l
}

// Lock enqueues the caller's node and spins on the predecessor.
func (l *CLH) Lock(p *numa.Proc) {
	n := l.my[p.ID()]
	n.locked.Store(1)
	pred := l.tail.Swap(n)
	l.pred[p.ID()] = pred
	pred.parker.Wait(func() bool { return pred.locked.Load() == 0 })
}

// Unlock releases by clearing the caller's node and adopting the
// predecessor's (now unreferenced) node for reuse.
func (l *CLH) Unlock(p *numa.Proc) {
	id := p.ID()
	n := l.my[id]
	l.my[id] = l.pred[id]
	l.pred[id] = nil
	n.locked.Store(0)
	n.parker.Wake()
}
