package locks

import (
	"sync/atomic"
	"time"

	"repro/internal/numa"
	"repro/internal/spin"
)

// BOConfig parameterizes the backoff behaviour of a BO lock.
type BOConfig struct {
	Policy   spin.Policy // delay progression between attempts
	MinPause int64       // initial delay bound, in pause units
	MaxPause int64       // delay cap, in pause units
}

// DefaultBOConfig is an exponential backoff tuned for moderate
// contention; the classic "test-and-test-and-set with backoff" lock
// the paper calls BO.
func DefaultBOConfig() BOConfig {
	return BOConfig{Policy: spin.PolicyExponential, MinPause: 32, MaxPause: 4096}
}

// FibBOConfig is the Fibonacci-backoff variant used as the "Fib-BO"
// column in the paper's memcached and malloc tables.
func FibBOConfig() BOConfig {
	return BOConfig{Policy: spin.PolicyFibonacci, MinPause: 16, MaxPause: 8192}
}

// BO is a test-and-test-and-set lock with configurable backoff. It is
// trivially thread-oblivious (any thread may store the release) and
// abortable (a waiter simply stops trying), which is why the paper
// uses it as the global lock of most cohort constructions.
type BO struct {
	state atomic.Int32 // 0 free, 1 held
	_     numa.Pad
	cfg   BOConfig
}

// NewBO returns a BO lock with the given backoff configuration.
func NewBO(cfg BOConfig) *BO {
	if cfg.MinPause < 1 {
		cfg.MinPause = 1
	}
	if cfg.MaxPause < cfg.MinPause {
		cfg.MaxPause = cfg.MinPause
	}
	return &BO{cfg: cfg}
}

// Lock acquires the lock, backing off between failed attempts.
func (l *BO) Lock(p *numa.Proc) {
	if l.state.Load() == 0 && l.state.CompareAndSwap(0, 1) {
		return
	}
	b := spin.NewBackoff(l.cfg.Policy, l.cfg.MinPause, l.cfg.MaxPause, p.Rand())
	for {
		for l.state.Load() != 0 {
			b.Wait()
		}
		if l.state.CompareAndSwap(0, 1) {
			return
		}
		b.Wait()
	}
}

// TryLockFor attempts acquisition until patience expires.
func (l *BO) TryLockFor(p *numa.Proc, patience time.Duration) bool {
	if l.state.Load() == 0 && l.state.CompareAndSwap(0, 1) {
		return true
	}
	deadline := spin.Deadline(patience)
	b := spin.NewBackoff(l.cfg.Policy, l.cfg.MinPause, l.cfg.MaxPause, p.Rand())
	for {
		for l.state.Load() != 0 {
			if spin.Expired(deadline) {
				return false
			}
			b.Wait()
		}
		if l.state.CompareAndSwap(0, 1) {
			return true
		}
		if spin.Expired(deadline) {
			return false
		}
		b.Wait()
	}
}

// Unlock releases the lock. Any thread may release; the paper relies
// on this thread-obliviousness.
func (l *BO) Unlock(_ *numa.Proc) {
	l.state.Store(0)
}
