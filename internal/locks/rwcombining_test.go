package locks_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/locks"
	"repro/internal/locktest"
	"repro/internal/numa"
)

func TestRWCombiningOverRWPerCluster(t *testing.T) {
	topo := numa.New(2, 16)
	x := locks.NewRWCombining(topo, locks.NewRWPerCluster(topo, locks.NewMCS(topo)))
	locktest.CheckRWExec(t, topo, x, 8, 4, 200)
}

func TestRWCombiningAdaptiveOverRWPerCluster(t *testing.T) {
	topo := numa.New(2, 16)
	x := locks.NewRWCombiningAdaptive(topo, locks.NewRWPerCluster(topo, locks.NewMCS(topo)))
	locktest.CheckRWExec(t, topo, x, 8, 4, 200)
}

func TestRWCombiningOverExclusiveAdapter(t *testing.T) {
	// Over an RWFromMutex-adapted exclusive lock the harvested "shared"
	// batches serialize; the construction must still be a correct
	// RWExecutor (the harness skips the coexistence phase) and must
	// pass the adapter's non-sharing property through.
	topo := numa.New(2, 16)
	x := locks.NewRWCombining(topo, locks.RWFromMutex(locks.NewMCS(topo)))
	if locks.SharesExecReads(x) {
		t.Fatal("RWCombining over RWFromMutex claims shared reads")
	}
	locktest.CheckRWExec(t, topo, x, 8, 4, 200)
}

func TestRWCombiningIntrospection(t *testing.T) {
	topo := numa.New(2, 4)
	rw := func() locks.RWMutex { return locks.NewRWPerCluster(topo, locks.NewMCS(topo)) }
	if x := locks.NewRWCombining(topo, rw()); !locks.Combines(x) {
		t.Error("RWCombining does not claim to combine")
	}
	if x := locks.NewRWCombining(topo, rw()); !locks.SharesExecReads(x) {
		t.Error("RWCombining over a genuine RW lock does not claim shared reads")
	}
	if x := locks.NewRWCombiningAdaptive(topo, rw()); !locks.Combines(x) || !locks.SharesExecReads(x) {
		t.Error("RWCombiningAdaptive drops an introspection property")
	}
	if x := locks.ExecFromRWMutex(rw()); locks.Combines(x) {
		t.Error("ExecFromRWMutex adapter claims to combine")
	}
}

func TestRWCombiningSingleProcBypass(t *testing.T) {
	// The uncontended fast path: with no same-cluster peer in flight,
	// every shared closure takes the single-closure bypass — exactly
	// one RLock per op, so the two shared counters stay in lockstep and
	// the exclusive side never fires.
	topo := numa.New(2, 4)
	var excl, shared atomic.Uint64
	inner := locks.CountRWAcquisitions(locks.NewRWPerCluster(topo, locks.NewMCS(topo)), &excl, &shared)
	x := locks.NewRWCombining(topo, inner)
	p := topo.Proc(0)
	n := 0
	for i := 0; i < 100; i++ {
		x.ExecShared(p, func() { n++ })
	}
	if n != 100 {
		t.Fatalf("ran %d closures, want 100", n)
	}
	if ops, b := x.SharedOps(), x.SharedBatches(); ops != 100 || b != 100 {
		t.Fatalf("SharedOps() = %d, SharedBatches() = %d, want 100 and 100 (bypass every op)", ops, b)
	}
	if got := shared.Load(); got != 100 {
		t.Fatalf("inner lock saw %d RLock acquisitions, want 100", got)
	}
	if got := excl.Load(); got != 0 {
		t.Fatalf("inner lock saw %d exclusive acquisitions, want 0", got)
	}
}

func TestRWCombiningExclusiveSideIndependent(t *testing.T) {
	// One construction serves both modes: exclusive closures go through
	// the embedded combining executor and advance Ops/Batches only,
	// shared closures advance SharedOps/SharedBatches only.
	topo := numa.New(2, 4)
	x := locks.NewRWCombining(topo, locks.NewRWPerCluster(topo, locks.NewMCS(topo)))
	p := topo.Proc(0)
	n := 0
	for i := 0; i < 50; i++ {
		x.Exec(p, func() { n++ })
		x.ExecShared(p, func() { n++ })
	}
	if n != 100 {
		t.Fatalf("ran %d closures, want 100", n)
	}
	if ops := x.Ops(); ops != 50 {
		t.Fatalf("Ops() = %d, want 50 (exclusive closures only)", ops)
	}
	if ops := x.SharedOps(); ops != 50 {
		t.Fatalf("SharedOps() = %d, want 50 (shared closures only)", ops)
	}
}

// sharedPileUp drives the deterministic read-side amortization
// scenario: the inner lock is held exclusively (from outside the
// executor), so the first shared poster bypasses into a blocked RLock
// and one elected reader-combiner blocks inside its single shared
// acquisition while every other same-cluster poster publishes.
// Releasing the writer must drain the whole pile in far fewer shared
// acquisitions than ops.
func sharedPileUp(t *testing.T, build func(topo *numa.Topology, l locks.RWMutex) locks.RWExecutor) {
	t.Helper()
	topo := numa.New(2, 16)
	inner := locks.NewRWPerCluster(topo, locks.NewMCS(topo))
	var excl, shared atomic.Uint64
	x := build(topo, locks.CountRWAcquisitions(inner, &excl, &shared))

	holder := topo.Proc(15)
	inner.Lock(holder)

	// Eight workers, all on cluster 0 (even proc ids).
	const workers = 8
	ran := make([]int, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := topo.Proc(2 * w)
			x.ExecShared(p, func() { ran[w]++ })
		}(i)
	}
	// Let every worker publish (the bypasser and the elected combiner
	// are parked inside RLock against the held writer; the rest spin on
	// their slots).
	time.Sleep(50 * time.Millisecond)
	inner.Unlock(holder)
	wg.Wait()

	for w, n := range ran {
		if n != 1 {
			t.Fatalf("worker %d ran %d times, want 1", w, n)
		}
	}
	sb, so := shared.Load(), uint64(workers)
	if sb >= workers/2 {
		t.Fatalf("no read-side amortization: %d shared acquisitions for %d piled-up read ops", sb, workers)
	}
	if e := excl.Load(); e != 0 {
		t.Fatalf("read pile-up took %d exclusive acquisitions, want 0", e)
	}
	t.Logf("shared amortization: %d read ops over %d RLock acquisitions", so, sb)
}

func TestRWCombiningSharedBatchesPileUp(t *testing.T) {
	sharedPileUp(t, func(topo *numa.Topology, l locks.RWMutex) locks.RWExecutor {
		return locks.NewRWCombining(topo, l)
	})
}

func TestRWCombiningAdaptiveSharedBatchesPileUp(t *testing.T) {
	sharedPileUp(t, func(topo *numa.Topology, l locks.RWMutex) locks.RWExecutor {
		return locks.NewRWCombiningAdaptive(topo, l)
	})
}

func TestRWCombiningAdaptiveOccupancyCountsReads(t *testing.T) {
	// The adaptive twin's occupancy estimate must include in-flight
	// shared requests: a closure that reads the estimate from inside
	// the executor sees at least itself.
	topo := numa.New(2, 4)
	x := locks.NewRWCombiningAdaptive(topo, locks.NewRWPerCluster(topo, locks.NewMCS(topo)))
	p := topo.Proc(0)
	seen := 0
	x.ExecShared(p, func() { seen = x.OccupancyEstimate() })
	if seen < 1 {
		t.Fatalf("OccupancyEstimate() = %d from inside a shared closure, want >= 1", seen)
	}
	if got := x.OccupancyEstimate(); got != 0 {
		t.Fatalf("OccupancyEstimate() = %d after drain, want 0", got)
	}
	if got := x.Occupancy(0); got != 0 {
		t.Fatalf("Occupancy(0) = %d after drain, want 0", got)
	}
}
