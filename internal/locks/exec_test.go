package locks_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/locks"
	"repro/internal/locktest"
	"repro/internal/numa"
)

func TestCombiningOverMCS(t *testing.T) {
	topo := testTopo()
	x := locks.NewCombining(topo, locks.NewMCS(topo))
	locktest.CheckExec(t, topo, x, 16, 300)
}

func TestCombiningOverPthread(t *testing.T) {
	topo := testTopo()
	x := locks.NewCombining(topo, locks.NewPthread())
	locktest.CheckExec(t, topo, x, 16, 300)
}

func TestCombiningOverFCMCS(t *testing.T) {
	// Combining over a lock that itself batches hand-offs: the two
	// batching layers must compose without losing wakeups.
	topo := testTopo()
	x := locks.NewCombining(topo, locks.NewFCMCS(topo))
	locktest.CheckExec(t, topo, x, 12, 200)
}

func TestCombiningSinglePass(t *testing.T) {
	topo := numa.New(2, 8)
	x := locks.NewCombiningPasses(topo, locks.NewMCS(topo), 1)
	locktest.CheckExec(t, topo, x, 8, 300)
}

func TestExecFromMutex(t *testing.T) {
	topo := numa.New(2, 8)
	x := locks.ExecFromMutex(locks.NewMCS(topo))
	locktest.CheckExec(t, topo, x, 8, 300)
}

func TestCombinesIntrospection(t *testing.T) {
	topo := numa.New(2, 4)
	if x := locks.ExecFromMutex(locks.NewMCS(topo)); locks.Combines(x) {
		t.Error("ExecFromMutex adapter claims to combine")
	}
	if x := locks.NewCombining(topo, locks.NewMCS(topo)); !locks.Combines(x) {
		t.Error("Combining executor does not claim to combine")
	}
}

func TestCombiningSingleProc(t *testing.T) {
	// The uncontended fast path: eager election, batch of one.
	topo := numa.New(2, 4)
	x := locks.NewCombining(topo, locks.NewMCS(topo))
	p := topo.Proc(0)
	n := 0
	for i := 0; i < 100; i++ {
		x.Exec(p, func() { n++ })
	}
	if n != 100 {
		t.Fatalf("ran %d closures, want 100", n)
	}
	if ops := x.Ops(); ops != 100 {
		t.Fatalf("Ops() = %d, want 100", ops)
	}
	if b := x.Batches(); b == 0 || b > 100 {
		t.Fatalf("Batches() = %d, want in [1,100]", b)
	}
}

func TestCombiningAmortizesAcquisitions(t *testing.T) {
	// The construction's whole point: under contention, closures must
	// outnumber underlying-lock acquisitions. Count acquisitions with a
	// wrapper and drive enough concurrent posters that batches form.
	topo := numa.New(2, 16)
	var acquisitions atomic.Uint64
	x := locks.NewCombining(topo, locks.CountAcquisitions(locks.NewMCS(topo), &acquisitions))

	const procs, iters = 16, 400
	var wg sync.WaitGroup
	var total [procs]int
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := topo.Proc(id)
			for k := 0; k < iters; k++ {
				x.Exec(p, func() { total[id]++ })
			}
		}(i)
	}
	wg.Wait()
	for id := range total {
		if total[id] != iters {
			t.Fatalf("proc %d ran %d closures, want %d", id, total[id], iters)
		}
	}
	ops, batches := x.Ops(), x.Batches()
	if ops != procs*iters {
		t.Fatalf("Ops() = %d, want %d", ops, procs*iters)
	}
	if batches != acquisitions.Load() {
		t.Fatalf("Batches() = %d but inner lock saw %d acquisitions", batches, acquisitions.Load())
	}
	if batches > ops {
		t.Fatalf("more acquisitions (%d) than ops (%d)", batches, ops)
	}
	// Batch formation needs genuine parallelism (a single-CPU run
	// serializes posters, so every op is its own batch); the guaranteed
	// amortization property is asserted by TestCombiningBatchesPileUp.
	t.Logf("amortization: %d ops over %d acquisitions (%.1f ops/acq)",
		ops, batches, float64(ops)/float64(batches))
}

func TestCombiningBatchesPileUp(t *testing.T) {
	// Deterministic amortization, independent of CPU count: the test
	// holds the inner lock, so the first poster to elect itself blocks
	// inside its one acquisition while every other same-cluster poster
	// publishes. Releasing the lock must let that single acquisition
	// execute the whole pile.
	topo := numa.New(2, 16)
	inner := locks.NewMCS(topo)
	x := locks.NewCombining(topo, inner)

	holder := topo.Proc(15)
	inner.Lock(holder)

	// Eight workers, all on cluster 0 (even proc ids).
	const workers = 8
	ran := make([]int, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := topo.Proc(2 * w)
			x.Exec(p, func() { ran[w]++ })
		}(i)
	}
	// Let every worker publish (the elected combiner is parked inside
	// the held inner lock; the rest spin on their slots).
	time.Sleep(50 * time.Millisecond)
	inner.Unlock(holder)
	wg.Wait()

	for w, n := range ran {
		if n != 1 {
			t.Fatalf("worker %d ran %d times, want 1", w, n)
		}
	}
	if ops := x.Ops(); ops != workers {
		t.Fatalf("Ops() = %d, want %d", ops, workers)
	}
	// The pile drains in far fewer acquisitions than ops; typically one,
	// but a straggler that published after the combiner's last harvest
	// pass legitimately elects itself.
	if b := x.Batches(); b >= workers/2 {
		t.Fatalf("no amortization: %d acquisitions for %d piled-up ops", b, workers)
	}
}
