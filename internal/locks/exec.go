package locks

import (
	"sync/atomic"

	"repro/internal/numa"
	"repro/internal/spin"
)

// Executor is delegated mutual exclusion: Exec runs fn inside the
// executor's exclusion domain and returns once fn has run. It is the
// seam that lets a data structure hand its critical sections to the
// lock instead of holding the lock across them — the flat-combining
// idea FC-MCS derives from, generalized over any underlying Mutex.
//
// The contract mirrors Lock/Unlock: at most one closure runs at a
// time across all procs, every submitted closure runs exactly once,
// and the closure's effects happen-before Exec's return. fn must not
// call back into the same executor (or block waiting on another
// proc's Exec): closures may be executed by a combiner thread that is
// serving many procs' requests, so a nested submission deadlocks the
// batch.
type Executor interface {
	Exec(p *numa.Proc, fn func())
}

// ExecCombiner is the optional introspection interface executors use
// to report whether they genuinely batch closures (many ops per
// acquisition of the underlying lock). ExecFromMutex adapters report
// false; NewCombining reports true.
type ExecCombiner interface {
	CombinesExec() bool
}

// Combines reports whether x actually amortizes lock acquisitions
// over batches of closures. Executors that do not implement
// ExecCombiner are assumed not to combine.
func Combines(x Executor) bool {
	if c, ok := x.(ExecCombiner); ok {
		return c.CombinesExec()
	}
	return false
}

// execMutex adapts a Mutex to the Executor interface: lock, run,
// unlock — one acquisition per closure, the non-combining baseline.
type execMutex struct {
	m Mutex
}

func (e execMutex) Exec(p *numa.Proc, fn func()) {
	e.m.Lock(p)
	fn()
	e.m.Unlock(p)
}

// CombinesExec reports false: the adapter pays one acquisition per op.
func (e execMutex) CombinesExec() bool { return false }

// ExecFromMutex adapts any mutual-exclusion lock to the Executor
// interface by bracketing each closure with Lock/Unlock. Correct, not
// amortized; Combines reports false so callers that only profit from
// genuine batching can keep their direct locking path.
func ExecFromMutex(m Mutex) Executor {
	return execMutex{m: m}
}

// countingMutex is the CountAcquisitions wrapper.
type countingMutex struct {
	inner Mutex
	n     *atomic.Uint64
}

func (c *countingMutex) Lock(p *numa.Proc) {
	c.n.Add(1)
	c.inner.Lock(p)
}

func (c *countingMutex) Unlock(p *numa.Proc) { c.inner.Unlock(p) }

// CountAcquisitions returns m instrumented to add one to n on every
// Lock call — the measurement seam behind the amortization exhibits.
// n may be shared across instances (a sharded store's locks summing
// into one counter); interposed beneath a Combining executor, a
// combined batch counts as the single acquisition it is.
func CountAcquisitions(m Mutex, n *atomic.Uint64) Mutex {
	return &countingMutex{inner: m, n: n}
}

// Publication-slot states for the combining executor.
const (
	combIdle   int32 = 0 // no outstanding request
	combPosted int32 = 1 // closure published, waiting to run
	combDone   int32 = 2 // closure has run; poster may return
)

// combSlot is one proc's publication record: the posted closure and
// its state, padded so posters on different procs never share a line.
// fn is written by the owning proc before the posted store and read
// by the cluster's combiner after observing posted, so the atomic
// state carries all the ordering.
type combSlot struct {
	state  atomic.Int32
	fn     func()
	parker spin.Parker
	_      numa.Pad
}

// Combining turns any Mutex into a combining lock: procs publish
// closures in per-proc slots, one proc per cluster elects itself
// combiner through the cluster's gate (the FC-MCS election machinery,
// same patience window), and the combiner runs its cluster's whole
// batch of posted closures under a single acquisition of the
// underlying lock. Same-cluster critical sections therefore execute
// back to back on one thread — the strongest possible locality, since
// the data the sections touch never leaves the combiner's cache — and
// the underlying lock is acquired once per batch instead of once per
// operation.
//
// The underlying lock must be fresh (not shared with direct Lock/
// Unlock users): the executor owns its exclusion domain.
type Combining struct {
	m Mutex
	// active counts running combiners; posters elect eagerly while it
	// is zero (no batch anywhere to ride) and otherwise linger the
	// patience window to be harvested instead of competing.
	active  atomic.Int32
	ops     atomic.Uint64 // closures executed
	batches atomic.Uint64 // acquisitions of the underlying lock
	_       numa.Pad
	gates   []combinerGate
	slots   []combSlot
	// members lists the proc ids of each cluster, the combiner's scan
	// order.
	members [][]int
	// passes is how many harvest sweeps a combiner makes over its
	// cluster's slots per acquisition.
	passes int
}

// NewCombining returns a combining executor over m for the topology,
// with the default harvest pass count.
func NewCombining(topo *numa.Topology, m Mutex) *Combining {
	return NewCombiningPasses(topo, m, DefaultFCPasses)
}

// NewCombiningPasses is NewCombining with an explicit combiner pass
// count: more passes form longer batches (arrivals during the batch
// join it) at the cost of longer lock hold times.
func NewCombiningPasses(topo *numa.Topology, m Mutex, passes int) *Combining {
	if passes < 1 {
		passes = 1
	}
	c := &Combining{
		m:       m,
		gates:   make([]combinerGate, topo.Clusters()),
		slots:   make([]combSlot, topo.MaxProcs()),
		members: make([][]int, topo.Clusters()),
		passes:  passes,
	}
	for i := range c.slots {
		c.slots[i].parker = spin.MakeParker()
	}
	for id := 0; id < topo.MaxProcs(); id++ {
		cl := topo.ClusterOf(id)
		c.members[cl] = append(c.members[cl], id)
	}
	return c
}

// CombinesExec reports true: ops amortize over lock acquisitions.
func (c *Combining) CombinesExec() bool { return true }

// Exec publishes fn and waits until a combiner (possibly this proc)
// has run it.
func (c *Combining) Exec(p *numa.Proc, fn func()) {
	slot := &c.slots[p.ID()]
	slot.fn = fn
	slot.state.Store(combPosted)

	gate := &c.gates[p.Cluster()]
	for i := 0; slot.state.Load() == combPosted; i++ {
		// Bypass the patience window when no combiner is running
		// anywhere: there is no batch to ride, so elect immediately
		// (the low-contention fast path costs one gate CAS).
		eager := c.active.Load() == 0
		if (eager || i >= electAfter) && gate.held.Load() == 0 && gate.held.CompareAndSwap(0, 1) {
			if slot.state.Load() == combPosted {
				c.combine(p)
			}
			gate.held.Store(0)
			break // combine always runs the combiner's own closure
		}
		spin.Poll(i)
	}
	slot.parker.Wait(func() bool { return slot.state.Load() == combDone })
	slot.state.Store(combIdle)
}

// combine runs the cluster's posted closures — the combiner's own
// among them — under one acquisition of the underlying lock. Called
// with the cluster gate held.
func (c *Combining) combine(p *numa.Proc) {
	c.active.Add(1)
	c.m.Lock(p)
	ran := uint64(0)
	for pass := 0; pass < c.passes; pass++ {
		if pass > 0 {
			// Let in-flight requests publish, so batches form even at
			// moderate per-cluster occupancy (same rationale as the
			// FC-MCS harvest pause).
			spin.Pause(combinePassPause)
		}
		for _, id := range c.members[p.Cluster()] {
			s := &c.slots[id]
			if s.state.Load() != combPosted {
				continue
			}
			fn := s.fn
			s.fn = nil
			fn()
			s.state.Store(combDone)
			s.parker.Wake()
			ran++
		}
	}
	// Rescue sweep: serve posters on clusters that have no combiner of
	// their own. Cluster-local batching is a locality preference, not a
	// correctness boundary — every harvest runs under m, so scanning a
	// remote cluster's slots is exactly as safe as scanning ours. The
	// sweep matters for liveness when spinning workers outnumber
	// GOMAXPROCS: a cluster whose members are all starved of processor
	// time may never win an election, and without it their posted
	// closures would wait unboundedly while other clusters' combiners
	// cycle the lock. Clusters with an elected combiner are skipped —
	// that combiner is already queued on m and will serve them with
	// full locality next.
	for rc := range c.members {
		if rc == p.Cluster() || c.gates[rc].held.Load() != 0 {
			continue
		}
		for _, id := range c.members[rc] {
			s := &c.slots[id]
			if s.state.Load() != combPosted {
				continue
			}
			fn := s.fn
			s.fn = nil
			fn()
			s.state.Store(combDone)
			s.parker.Wake()
			ran++
		}
	}
	c.m.Unlock(p)
	c.batches.Add(1)
	c.ops.Add(ran)
	c.active.Add(-1)
	// A combiner never blocks — it serves a batch and immediately cycles
	// into its next request — so on an oversubscribed machine it must
	// hand the processor around at batch boundaries or the posters it
	// just woke wait a full preemption quantum to consume their results.
	spin.Yield()
}

// Ops reports the number of closures executed so far; read it while
// posters are quiescent.
func (c *Combining) Ops() uint64 { return c.ops.Load() }

// Batches reports the number of underlying-lock acquisitions so far;
// Ops/Batches is the amortization factor the construction buys.
func (c *Combining) Batches() uint64 { return c.batches.Load() }

// Interface conformance checks.
var (
	_ Executor     = execMutex{}
	_ Executor     = (*Combining)(nil)
	_ ExecCombiner = execMutex{}
	_ ExecCombiner = (*Combining)(nil)
)
