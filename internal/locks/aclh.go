package locks

import (
	"sync/atomic"
	"time"

	"repro/internal/numa"
	"repro/internal/spin"
)

// aclhNode is an abortable-CLH queue record. Its prev field encodes
// the node's state:
//
//	nil          — the owning thread holds the lock or is still waiting
//	&aclhAvail   — released: the successor becomes the owner
//	other node   — aborted: the successor adopts that node as its
//	               predecessor and recycles this one
type aclhNode struct {
	prev atomic.Pointer[aclhNode]
	_    numa.Pad
}

// aclhAvail is the distinguished "released" sentinel.
var aclhAvail = &aclhNode{}

// ACLH is Scott's abortable CLH queue lock (PODC 2002), the paper's
// state-of-the-art abortable baseline (Figure 6). Aborting threads
// leave their node behind with an explicit predecessor pointer; the
// spinning successor unlinks it lazily and reclaims it.
type ACLH struct {
	tail atomic.Pointer[aclhNode]
	_    numa.Pad
	// holder records, per proc, the node enqueued by its current
	// acquisition, so Unlock can find it.
	holder []*aclhNode
	// pools are per-proc free lists. Only the owning proc touches its
	// pool: aborted/released nodes are reclaimed by the successor that
	// observed them, into the successor's own pool. (Scott returns
	// them to the original owner's pool; nodes are interchangeable, so
	// keeping them locally preserves behaviour without cross-thread
	// free lists.)
	pools [][]*aclhNode
}

// NewACLH returns an unlocked abortable CLH lock.
func NewACLH(topo *numa.Topology) *ACLH {
	l := &ACLH{
		holder: make([]*aclhNode, topo.MaxProcs()),
		pools:  make([][]*aclhNode, topo.MaxProcs()),
	}
	dummy := &aclhNode{}
	dummy.prev.Store(aclhAvail)
	l.tail.Store(dummy)
	return l
}

func (l *ACLH) getNode(p *numa.Proc) *aclhNode {
	pool := l.pools[p.ID()]
	if n := len(pool); n > 0 {
		nd := pool[n-1]
		l.pools[p.ID()] = pool[:n-1]
		nd.prev.Store(nil)
		return nd
	}
	return &aclhNode{}
}

func (l *ACLH) putNode(p *numa.Proc, nd *aclhNode) {
	l.pools[p.ID()] = append(l.pools[p.ID()], nd)
}

// Lock acquires with unbounded patience.
func (l *ACLH) Lock(p *numa.Proc) {
	l.tryLock(p, 0, false)
}

// TryLockFor attempts acquisition, aborting after patience. On abort
// the caller's node remains in the queue for the successor to unlink.
func (l *ACLH) TryLockFor(p *numa.Proc, patience time.Duration) bool {
	return l.tryLock(p, spin.Deadline(patience), true)
}

func (l *ACLH) tryLock(p *numa.Proc, deadline int64, abortable bool) bool {
	n := l.getNode(p)
	pred := l.tail.Swap(n)
	for i := 0; ; i++ {
		pp := pred.prev.Load()
		if pp == aclhAvail {
			// Predecessor released: we own the lock and recycle its node.
			l.putNode(p, pred)
			l.holder[p.ID()] = n
			return true
		}
		if pp != nil {
			// Predecessor aborted: adopt its predecessor, reclaim it.
			l.putNode(p, pred)
			pred = pp
			continue
		}
		if abortable && spin.Expired(deadline) {
			// Publish our predecessor so our successor can skip us;
			// the node now belongs to that successor.
			n.prev.Store(pred)
			return false
		}
		spin.Poll(i)
	}
}

// Unlock releases the lock; the successor (or a future arrival)
// observes the released node and reclaims it.
func (l *ACLH) Unlock(p *numa.Proc) {
	n := l.holder[p.ID()]
	l.holder[p.ID()] = nil
	n.prev.Store(aclhAvail)
}
