package spin

// Parker augments a queue-lock node with spin-then-park waiting for
// oversubscribed deployments. The paper's machine dedicates a hardware
// context to every thread, so queue waiters spin; under the Go
// runtime, once goroutines outnumber GOMAXPROCS, a FIFO hand-off to a
// descheduled waiter costs a full scheduler round-trip (tens of
// microseconds), collapsing every queue lock. A Parker lets the waiter
// block in the runtime and lets the releaser wake exactly its
// successor — the spin-then-block adaptation the paper notes the
// cohorting transformation accommodates (§1, §2.1).
//
// Protocol: the releaser makes the waiter's condition true (an atomic
// store) and then calls Wake, which deposits a token in a one-slot
// channel without ever blocking. The waiter re-checks its condition
// immediately before blocking on the channel, so a wake between check
// and block is caught by the buffered token. A token left over from a
// hand-off that the waiter observed by spinning (a "stale" token) at
// worst causes one spurious re-check in a later wait; it can never
// absorb a needed wake, because Wake-after-condition always finds
// either an empty buffer (send succeeds) or a stale token the waiter
// is about to consume.
type Parker struct {
	ch chan struct{}
}

// MakeParker returns a ready Parker. Lock constructors call this once
// per queue node; the zero Parker is not usable.
func MakeParker() Parker {
	return Parker{ch: make(chan struct{}, 1)}
}

// Wait blocks until cond() is true. With dedicated processors it spins
// exactly like Poll; when oversubscribed it spins a hot window and
// then parks, relying on the releaser's Wake.
func (pk *Parker) Wait(cond func() bool) {
	for i := 0; ; i++ {
		if cond() {
			return
		}
		if i < hotSpinIters {
			Pause(16)
			continue
		}
		if !oversubscribed.Load() {
			Pause(64)
			continue
		}
		select {
		case <-pk.ch:
			// Token (possibly stale): loop to re-check the condition.
		default:
			if cond() {
				return
			}
			<-pk.ch
		}
	}
}

// Wake deposits a wake token; it never blocks. Call only after the
// waiter's condition has been made visible (the condition store must
// precede Wake in program order).
func (pk *Parker) Wake() {
	select {
	case pk.ch <- struct{}{}:
	default:
	}
}
