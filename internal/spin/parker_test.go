package spin

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestParkerImmediateCondition(t *testing.T) {
	pk := MakeParker()
	done := atomic.Bool{}
	done.Store(true)
	finished := make(chan struct{})
	go func() {
		pk.Wait(done.Load)
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not return for an already-true condition")
	}
}

func TestParkerWakesParkedWaiter(t *testing.T) {
	prev := Oversubscribed()
	defer SetOversubscribed(prev)
	SetOversubscribed(true) // force the park path

	pk := MakeParker()
	var flag atomic.Int32
	finished := make(chan struct{})
	go func() {
		pk.Wait(func() bool { return flag.Load() == 1 })
		close(finished)
	}()
	// Give the waiter time to burn its hot window and park.
	time.Sleep(20 * time.Millisecond)
	flag.Store(1)
	pk.Wake()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("parked waiter never woke")
	}
}

func TestParkerStaleTokenHarmless(t *testing.T) {
	prev := Oversubscribed()
	defer SetOversubscribed(prev)
	SetOversubscribed(true)

	pk := MakeParker()
	pk.Wake() // stale token from a hand-off observed by spinning
	pk.Wake() // second wake drops harmlessly (buffer of one)

	var flag atomic.Int32
	finished := make(chan struct{})
	go func() {
		pk.Wait(func() bool { return flag.Load() == 1 })
		close(finished)
	}()
	time.Sleep(20 * time.Millisecond)
	flag.Store(1)
	pk.Wake()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("waiter lost a wake due to a stale token")
	}
}

func TestParkerHandoffChain(t *testing.T) {
	// A ring of waiters passing a baton through parkers: stresses the
	// check-then-park race from both sides.
	prev := Oversubscribed()
	defer SetOversubscribed(prev)
	SetOversubscribed(true)

	const workers = 8
	const rounds = 200
	parkers := make([]Parker, workers)
	turns := make([]atomic.Int64, workers)
	for i := range parkers {
		parkers[i] = MakeParker()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				want := int64(r)
				parkers[id].Wait(func() bool { return turns[id].Load() == want+1 })
				next := (id + 1) % workers
				turns[next].Add(1)
				parkers[next].Wake()
			}
		}(w)
	}
	// Start the baton.
	turns[0].Add(1)
	parkers[0].Wake()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("baton ring deadlocked: lost wakeup in Parker protocol")
	}
}
