package spin

import (
	"testing"
	"testing/quick"
	"time"
)

func TestPauseNonNegative(t *testing.T) {
	// Must not hang or panic for edge inputs.
	Pause(0)
	Pause(-5)
	Pause(1)
	Pause(1 << 12)
}

func TestCalibrateProducesRate(t *testing.T) {
	Calibrate()
	if got := UnitsPerMicro(); got < 1 {
		t.Fatalf("UnitsPerMicro() = %d, want >= 1", got)
	}
}

func TestWaitNsApproximatesDuration(t *testing.T) {
	Calibrate()
	const target = 200 * time.Microsecond
	start := time.Now()
	WaitNs(int64(target))
	elapsed := time.Since(start)
	// Calibration is coarse; accept a generous band but catch order-of-
	// magnitude errors (e.g. units-vs-nanos confusion).
	if elapsed < target/8 {
		t.Errorf("WaitNs(%v) returned after %v, far too fast", target, elapsed)
	}
	if elapsed > target*64 {
		t.Errorf("WaitNs(%v) took %v, far too slow", target, elapsed)
	}
}

func TestWaitNsNonPositive(t *testing.T) {
	start := time.Now()
	WaitNs(0)
	WaitNs(-100)
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("WaitNs with non-positive input should return immediately")
	}
}

func TestNowMonotonic(t *testing.T) {
	a := Now()
	time.Sleep(time.Millisecond)
	b := Now()
	if b <= a {
		t.Fatalf("Now not monotonic: %d then %d", a, b)
	}
}

func TestDeadlineExpiry(t *testing.T) {
	d := Deadline(50 * time.Millisecond)
	if Expired(d) {
		t.Fatal("fresh deadline already expired")
	}
	if !Expired(Deadline(-time.Millisecond)) {
		t.Fatal("negative patience should be pre-expired")
	}
	time.Sleep(60 * time.Millisecond)
	if !Expired(d) {
		t.Fatal("deadline did not expire after its patience elapsed")
	}
}

func TestXorShiftNonZeroAndDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for id := uint64(0); id < 64; id++ {
		g := NewXorShift(id)
		v := g.Next()
		if v == 0 {
			t.Fatalf("generator %d produced 0", id)
		}
		if seen[v] {
			t.Fatalf("generator %d repeated first output %d", id, v)
		}
		seen[v] = true
	}
}

func TestXorShiftIntNRange(t *testing.T) {
	f := func(seed uint64, n int64) bool {
		if n <= 0 {
			n = 1
		}
		g := NewXorShift(seed)
		for i := 0; i < 50; i++ {
			v := g.IntN(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBackoffExponentialGrowsAndCaps(t *testing.T) {
	b := NewBackoff(PolicyExponential, 4, 64, 1)
	var prev int64
	for i := 0; i < 10; i++ {
		cur := b.Cur()
		if cur < prev {
			t.Fatalf("exponential backoff shrank: %d -> %d", prev, cur)
		}
		if cur > 64 {
			t.Fatalf("exponential backoff exceeded cap: %d", cur)
		}
		prev = cur
		b.Wait()
	}
	if b.Cur() != 64 {
		t.Fatalf("after 10 waits, bound = %d, want capped at 64", b.Cur())
	}
}

func TestBackoffFibonacciSequence(t *testing.T) {
	b := NewBackoff(PolicyFibonacci, 1, 1000, 1)
	want := []int64{1, 1, 2, 3, 5, 8, 13, 21}
	for i, w := range want {
		if b.Cur() != w {
			t.Fatalf("fib step %d: bound = %d, want %d", i, b.Cur(), w)
		}
		b.Wait()
	}
}

func TestBackoffNonePolicyFixed(t *testing.T) {
	b := NewBackoff(PolicyNone, 8, 512, 1)
	for i := 0; i < 5; i++ {
		b.Wait()
	}
	if b.Cur() != 8 {
		t.Fatalf("PolicyNone bound = %d, want fixed 8", b.Cur())
	}
}

func TestBackoffReset(t *testing.T) {
	b := NewBackoff(PolicyExponential, 2, 1024, 1)
	for i := 0; i < 8; i++ {
		b.Wait()
	}
	b.Reset()
	if b.Cur() != 2 {
		t.Fatalf("after Reset bound = %d, want 2", b.Cur())
	}
}

func TestBackoffClampsInvalidBounds(t *testing.T) {
	b := NewBackoff(PolicyExponential, -10, -20, 1)
	if b.Cur() < 1 {
		t.Fatalf("bound = %d, want >= 1 after clamping", b.Cur())
	}
	b.Wait() // must not panic
}

func TestPollDisciplines(t *testing.T) {
	prev := Oversubscribed()
	defer SetOversubscribed(prev)
	// Not oversubscribed: Poll never deschedules, regardless of i.
	SetOversubscribed(false)
	for i := 0; i < 4096; i++ {
		Poll(i)
	}
	// Oversubscribed: Poll must not hang when driven far past the hot
	// window (Gosched path).
	SetOversubscribed(true)
	for i := 0; i < 4096; i++ {
		Poll(i)
	}
}

func TestOversubscriptionFlag(t *testing.T) {
	prev := Oversubscribed()
	defer SetOversubscribed(prev)
	SetOversubscribed(false)
	if Oversubscribed() {
		t.Fatal("flag did not clear")
	}
	got := AutoOversubscribe(1 << 20) // absurdly many workers
	if got {
		t.Fatal("AutoOversubscribe returned wrong previous value")
	}
	if !Oversubscribed() {
		t.Fatal("huge worker count did not set oversubscription")
	}
	AutoOversubscribe(1) // one worker never oversubscribes
	if Oversubscribed() {
		t.Fatal("single worker marked oversubscribed")
	}
}

func TestBackoffWaitYieldsOnlyWhenOversubscribed(t *testing.T) {
	prev := Oversubscribed()
	defer SetOversubscribed(prev)
	old := yield
	defer func() { yield = old }()
	yields := 0
	yield = func() { yields++ }

	SetOversubscribed(true)
	b := NewBackoff(PolicyExponential, 1, 2, 1)
	for i := 0; i < 64; i++ {
		b.Wait()
	}
	if yields == 0 {
		t.Fatal("Backoff.Wait never yielded over 64 oversubscribed attempts")
	}

	yields = 0
	SetOversubscribed(false)
	b.Reset()
	for i := 0; i < 64; i++ {
		b.Wait()
	}
	if yields != 0 {
		t.Fatalf("Backoff.Wait yielded %d times with dedicated processors", yields)
	}
}
