// Package spin provides the low-level busy-waiting primitives shared by
// every spin lock in this repository: processor-friendly pause loops,
// oversubscription-safe polling, bounded exponential and Fibonacci
// backoff, a calibrated nanosecond busy-wait, and a cheap monotonic
// clock for abort deadlines.
//
// The Go runtime multiplexes goroutines onto a bounded set of OS
// threads, so a naive spin loop can starve the very goroutine it is
// waiting for when workers outnumber GOMAXPROCS. Poll therefore
// escalates from cheap pauses to runtime.Gosched so that spinning
// remains safe even for the paper's 255-thread configurations.
package spin

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// sink defeats dead-code elimination of pause loops. It is written at
// most once per program run, behind a condition that is never true in
// practice, through an atomic to stay race-detector clean.
var sink atomic.Uint64

// Pause busy-spins for approximately n trivial loop iterations. It
// never yields the processor; use Poll inside unbounded spin loops.
func Pause(n int) {
	var x uint64
	for i := 0; i < n; i++ {
		x += uint64(i) | 1
	}
	if x == 0 { // never true: every term is odd-or-greater, n>=1 sums >0; n<=0 skips
		sink.Store(x)
	}
}

// oversubscribed selects between two spin disciplines. The paper's
// machine gives every thread a hardware context, so waiters spin
// freely; under the Go runtime that discipline is only safe (and only
// fast) while workers do not exceed GOMAXPROCS — a descheduled waiter
// takes tens of microseconds to run again, which would tax every
// hand-off. Harnesses therefore declare oversubscription explicitly:
// when set, spin loops go hot briefly and then yield on every
// iteration so waiting goroutines cannot monopolize the processors.
// The conservative default is on.
var oversubscribed atomic.Bool

func init() { oversubscribed.Store(true) }

// SetOversubscribed declares whether spinning goroutines may outnumber
// GOMAXPROCS. Harnesses call it before a run (workers+bookkeeping vs
// GOMAXPROCS); it may be changed between runs but not during one.
func SetOversubscribed(b bool) { oversubscribed.Store(b) }

// Oversubscribed reports the current spin discipline.
func Oversubscribed() bool { return oversubscribed.Load() }

// AutoOversubscribe sets the discipline from a worker count and
// reports the previous value. A single worker never contends with
// anyone for a processor, so it never oversubscribes — even when
// GOMAXPROCS is 1.
func AutoOversubscribe(workers int) bool {
	prev := oversubscribed.Load()
	oversubscribed.Store(workers > 1 && workers >= runtime.GOMAXPROCS(0))
	return prev
}

// Yield deschedules the caller when workers may outnumber GOMAXPROCS,
// and is free otherwise. Combiner-style hot paths call it at batch
// boundaries: a goroutine that serves others' requests and immediately
// starts its next cycle never blocks, so on an oversubscribed machine
// it would monopolize its processor and the posters it just served
// (and those still waiting to post) could starve behind it. One yield
// per batch hands the processor around at batch frequency instead of
// the runtime's coarse preemption interval.
func Yield() {
	if oversubscribed.Load() {
		runtime.Gosched()
	}
}

// hotSpinIters is the spin-then-yield threshold of Poll when
// oversubscribed: roughly 5 µs of pure spinning before every iteration
// yields.
const hotSpinIters = 1024

// Poll performs the i-th iteration of an unbounded spin-wait. With
// dedicated processors (not oversubscribed) it pauses briefly and
// never deschedules, like the paper's hardware threads; when
// oversubscribed it spins hot briefly, then yields every iteration so
// the lock holder always gets processor time.
func Poll(i int) {
	if i < hotSpinIters {
		Pause(16)
		return
	}
	if oversubscribed.Load() {
		runtime.Gosched()
		return
	}
	Pause(64)
}

// calibration state for WaitNs: pauseUnitsPerMicro is the number of
// Pause(1) iterations that consume roughly one microsecond.
var (
	calOnce            sync.Once
	pauseUnitsPerMicro atomic.Int64
)

// Calibrate measures the cost of Pause iterations and stores the
// iterations-per-microsecond rate used by WaitNs. It is invoked
// automatically on first use; tests may call it eagerly.
func Calibrate() {
	calOnce.Do(func() {
		const batch = 4096
		// Warm up once so the loop is resident.
		Pause(batch)
		var iters int64
		start := time.Now()
		for time.Since(start) < 2*time.Millisecond {
			Pause(batch)
			iters += batch
		}
		elapsed := time.Since(start).Microseconds()
		if elapsed < 1 {
			elapsed = 1
		}
		rate := iters / elapsed
		if rate < 1 {
			rate = 1
		}
		pauseUnitsPerMicro.Store(rate)
	})
}

// UnitsPerMicro reports the calibrated number of Pause(1) iterations
// per microsecond.
func UnitsPerMicro() int64 {
	Calibrate()
	return pauseUnitsPerMicro.Load()
}

// WaitNs busy-waits for approximately ns nanoseconds without sleeping.
// Long waits (> 4 µs) periodically yield so oversubscribed workloads
// make progress. Non-positive durations return immediately.
func WaitNs(ns int64) {
	if ns <= 0 {
		return
	}
	units := ns * UnitsPerMicro() / 1000
	if units <= 0 {
		units = 1
	}
	// Yield only on long waits (chunk ≈ 9 µs) and only when
	// oversubscribed: short waits — like LBench's 4 µs non-critical
	// idle — must not pay descheduling latency, or the emulated delay
	// balloons.
	const chunk = 1 << 15
	for units > chunk {
		Pause(chunk)
		units -= chunk
		if oversubscribed.Load() {
			runtime.Gosched()
		}
	}
	Pause(int(units))
}

// programStart anchors the cheap monotonic clock exposed by Now.
var programStart = time.Now()

// Now returns nanoseconds elapsed since program start using the
// monotonic clock. It is the time base for abort deadlines: a deadline
// is spin.Now()+patience, checked with Expired.
func Now() int64 {
	return int64(time.Since(programStart))
}

// Deadline converts a patience duration into an absolute deadline for
// TryLock-style operations. A non-positive patience yields a deadline
// that is already expired.
func Deadline(patience time.Duration) int64 {
	return Now() + int64(patience)
}

// Expired reports whether the deadline produced by Deadline has passed.
func Expired(deadline int64) bool {
	return Now() >= deadline
}
