package spin

// XorShift is a tiny per-thread pseudo-random number generator used to
// jitter backoff delays. The zero value is invalid; seed with NewXorShift.
type XorShift uint64

// NewXorShift returns a generator seeded from id; distinct ids yield
// distinct, non-zero states.
func NewXorShift(id uint64) XorShift {
	s := id*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return XorShift(s)
}

// Next advances the generator and returns the next 64-bit value.
func (x *XorShift) Next() uint64 {
	s := uint64(*x)
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	*x = XorShift(s)
	return s
}

// IntN returns a uniformly distributed value in [0, n). n must be > 0.
func (x *XorShift) IntN(n int64) int64 {
	return int64(x.Next() % uint64(n))
}

// Policy selects the delay progression of a Backoff.
type Policy int

const (
	// PolicyExponential doubles the bound after every failed attempt.
	PolicyExponential Policy = iota
	// PolicyFibonacci grows the bound along the Fibonacci sequence,
	// the progression used by the paper's Fib-BO lock.
	PolicyFibonacci
	// PolicyNone waits a fixed minimal amount; used by cohort global
	// BO locks, which the paper runs with no backoff at all.
	PolicyNone
)

// Backoff produces a bounded, randomized sequence of spin delays. It is
// not safe for concurrent use; each spinning thread owns one instance.
type Backoff struct {
	policy   Policy
	min, max int64
	cur      int64
	fibPrev  int64
	rng      XorShift
	attempts int
}

// NewBackoff returns a backoff generator with delays jittered in
// [0, cur) pause units, where cur starts at min and grows per policy up
// to max. min and max are clamped to be at least 1.
func NewBackoff(policy Policy, min, max int64, seed uint64) Backoff {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	return Backoff{
		policy:  policy,
		min:     min,
		max:     max,
		cur:     min,
		fibPrev: 0,
		rng:     NewXorShift(seed),
	}
}

// hotAttempts is Wait's spin-then-yield threshold, mirroring Poll's:
// early attempts never deschedule (hand-offs must stay cheap when
// cores are available), later ones always yield so oversubscribed
// spinners cannot starve the lock holder.
const hotAttempts = 32

// Wait blocks for the next delay in the sequence and advances it.
func (b *Backoff) Wait() {
	d := b.cur
	if d > 1 {
		d = d/2 + b.rng.IntN(d/2+1) // jitter in [d/2, d]
	}
	Pause(int(d))
	b.attempts++
	if b.attempts > hotAttempts && oversubscribed.Load() {
		yield()
	}
	switch b.policy {
	case PolicyExponential:
		b.cur *= 2
	case PolicyFibonacci:
		b.cur, b.fibPrev = b.cur+b.fibPrev, b.cur
	case PolicyNone:
		// fixed delay
	}
	if b.cur > b.max {
		b.cur = b.max
	}
}

// Reset restores the delay to its minimum; call after a successful
// acquisition.
func (b *Backoff) Reset() {
	b.cur = b.min
	b.fibPrev = 0
	b.attempts = 0
}

// Cur exposes the current delay bound, for tests.
func (b *Backoff) Cur() int64 { return b.cur }
