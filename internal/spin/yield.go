package spin

import "runtime"

// yield is an indirection point so tests can count scheduler yields.
var yield = runtime.Gosched
