package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/numa"
	"repro/internal/spin"
)

// localUnderTest unifies the three non-abortable local locks for
// table-driven semantics tests.
func localsUnderTest(topo *numa.Topology) map[string]Local {
	return map[string]Local{
		"local-bo":     NewLocalBO(LocalBOBackoff()),
		"local-ticket": NewLocalTicket(topo),
		"local-mcs":    NewLocalMCS(topo),
		"local-clh":    NewLocalCLH(topo),
	}
}

func TestLocalFreshLockIsGlobalRelease(t *testing.T) {
	topo := numa.New(1, 8)
	for name, l := range localsUnderTest(topo) {
		t.Run(name, func(t *testing.T) {
			p := topo.Proc(0)
			if got := l.Lock(p); got != ReleaseGlobal {
				t.Fatalf("fresh lock returned %v, want release-global", got)
			}
			l.Unlock(p, ReleaseGlobal)
		})
	}
}

func TestLocalReleaseStateRoundTrips(t *testing.T) {
	topo := numa.New(1, 8)
	for name, l := range localsUnderTest(topo) {
		t.Run(name, func(t *testing.T) {
			p0, p1 := topo.Proc(0), topo.Proc(1)
			// p1 waits while p0 holds; p0 releases locally; p1 must
			// observe release-local.
			r := l.Lock(p0)
			if r != ReleaseGlobal {
				t.Fatalf("unexpected initial state %v", r)
			}
			got := make(chan Release, 1)
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				got <- l.Lock(p1)
			}()
			// Wait until the waiter registers (Alone flips false).
			for i := 0; l.Alone(p0); i++ {
				spin.Poll(i)
				if i > 1<<22 {
					t.Fatal("waiter never became visible to Alone")
				}
			}
			l.Unlock(p0, ReleaseLocal)
			wg.Wait()
			if r := <-got; r != ReleaseLocal {
				t.Fatalf("waiter observed %v, want release-local", r)
			}
			l.Unlock(p1, ReleaseGlobal)
			// After a global release, the next acquirer sees it.
			if r := l.Lock(p0); r != ReleaseGlobal {
				t.Fatalf("after global release, Lock returned %v", r)
			}
			l.Unlock(p0, ReleaseGlobal)
		})
	}
}

func TestLocalAloneWhenUncontended(t *testing.T) {
	topo := numa.New(1, 8)
	for name, l := range localsUnderTest(topo) {
		t.Run(name, func(t *testing.T) {
			p := topo.Proc(0)
			l.Lock(p)
			if !l.Alone(p) {
				t.Fatal("Alone() = false with no waiters (false negative: deadlock risk)")
			}
			l.Unlock(p, ReleaseGlobal)
		})
	}
}

func TestABOLocalAloneTracksAbortingWaiters(t *testing.T) {
	l := NewABOLocal(LocalBOBackoff())
	topo := numa.New(1, 8)
	p0, p1 := topo.Proc(0), topo.Proc(1)
	r, ok := l.TryLock(p0, spin.Deadline(time.Second))
	if !ok || r != ReleaseGlobal {
		t.Fatalf("TryLock = (%v,%v)", r, ok)
	}
	if !l.Alone(p0) {
		t.Fatal("Alone false with no waiters")
	}
	// A waiter that aborts must clear successor-exists again.
	if _, ok := l.TryLock(p1, spin.Deadline(time.Millisecond)); ok {
		t.Fatal("waiter acquired held lock")
	}
	if !l.Alone(p0) {
		t.Fatal("Alone false after the only waiter aborted")
	}
	// Releasing wantLocal with no viable successor must fall back to a
	// global release.
	released := false
	l.Unlock(p0, true, func() { released = true })
	if !released {
		t.Fatal("release-local to an empty cohort did not release the global lock")
	}
	// Lock must be reacquirable in global-release state.
	r, ok = l.TryLock(p1, spin.Deadline(time.Second))
	if !ok || r != ReleaseGlobal {
		t.Fatalf("reacquire = (%v,%v), want (release-global,true)", r, ok)
	}
	l.Unlock(p1, false, func() {})
}

func TestACLHLocalAbortChainAndViableHandoff(t *testing.T) {
	topo := numa.New(1, 8)
	l := NewACLHLocal(topo)
	p0 := topo.Proc(0)
	r, ok := l.TryLock(p0, spin.Deadline(time.Second))
	if !ok || r != ReleaseGlobal {
		t.Fatalf("TryLock = (%v,%v)", r, ok)
	}
	if !l.Alone(p0) {
		t.Fatal("Alone false with empty queue")
	}
	// Two waiters abort in sequence; each marks its predecessor.
	for i := 1; i <= 2; i++ {
		if _, ok := l.TryLock(topo.Proc(i), spin.Deadline(time.Millisecond)); ok {
			t.Fatalf("waiter %d acquired held lock", i)
		}
	}
	if l.Alone(p0) {
		t.Fatal("Alone true despite enqueued (aborted) nodes — acceptable only if tail reverted, which A-CLH never does")
	}
	// wantLocal release must detect the aborted successor and release
	// globally instead of stranding a hand-off.
	released := false
	l.Unlock(p0, true, func() { released = true })
	if !released {
		t.Fatal("release to an all-aborted cohort did not release the global lock")
	}
	// A fresh arrival walks the aborted chain and acquires globally.
	r, ok = l.TryLock(topo.Proc(3), spin.Deadline(time.Second))
	if !ok || r != ReleaseGlobal {
		t.Fatalf("post-abort acquire = (%v,%v)", r, ok)
	}
	l.Unlock(topo.Proc(3), false, func() {})
}

func TestACLHLocalLiveSuccessorGetsLocalHandoff(t *testing.T) {
	topo := numa.New(1, 8)
	l := NewACLHLocal(topo)
	p0, p1 := topo.Proc(0), topo.Proc(1)
	if _, ok := l.TryLock(p0, spin.Deadline(time.Second)); !ok {
		t.Fatal("initial acquire failed")
	}
	type res struct {
		r  Release
		ok bool
	}
	got := make(chan res, 1)
	go func() {
		r, ok := l.TryLock(p1, spin.Deadline(10*time.Second))
		got <- res{r, ok}
	}()
	for i := 0; l.Alone(p0); i++ {
		spin.Poll(i)
		if i > 1<<22 {
			t.Fatal("successor never enqueued")
		}
	}
	l.Unlock(p0, true, func() { t.Error("global released despite viable successor") })
	r := <-got
	if !r.ok || r.r != ReleaseLocal {
		t.Fatalf("successor got (%v,%v), want (release-local,true)", r.r, r.ok)
	}
	l.Unlock(p1, false, func() {})
}

func TestACLHLocalNodePoolingBounded(t *testing.T) {
	topo := numa.New(1, 4)
	l := NewACLHLocal(topo)
	p := topo.Proc(0)
	for i := 0; i < 10000; i++ {
		if _, ok := l.TryLock(p, spin.Deadline(time.Second)); !ok {
			t.Fatal("uncontended acquire failed")
		}
		l.Unlock(p, false, func() {})
	}
	// Uncontended lock/unlock recycles through the pool: allocation
	// must stay tiny rather than growing with iterations.
	if n := l.Allocated(); n > 16 {
		t.Fatalf("allocated %d arena nodes over 10k uncontended cycles, want a handful", n)
	}
}

func TestACLHLocalRescueWinsOrAborts(t *testing.T) {
	// Hammer the hand-off/abort race: one holder repeatedly tries to
	// hand off locally while a waiter with tiny patience aborts. Every
	// outcome must keep the lock usable.
	topo := numa.New(1, 8)
	l := NewACLHLocal(topo)
	p0, p1 := topo.Proc(0), topo.Proc(1)
	globalHeld := true // emulate cluster owning the global lock
	for round := 0; round < 200; round++ {
		if !globalHeld {
			// reacquire: cohort framework would do this
			globalHeld = true
		}
		if _, ok := l.TryLock(p0, spin.Deadline(time.Second)); !ok {
			t.Fatal("holder failed to acquire")
		}
		done := make(chan bool, 1)
		go func() {
			_, ok := l.TryLock(p1, spin.Deadline(time.Duration(round%3)*time.Microsecond))
			done <- ok
		}()
		l.Unlock(p0, true, func() { globalHeld = false })
		if <-done {
			// Waiter (late-)acquired: it owns the lock in some state;
			// release it globally to reset for the next round.
			l.Unlock(p1, false, func() { globalHeld = false })
		}
		if !globalHeld {
			continue
		}
		// Hand-off succeeded but acquirer may have been the aborting
		// waiter (success path) — handled above. If the waiter aborted
		// after the hand-off CAS lost, the lock word holds RL with no
		// claimant only if the rescue also failed, which cannot
		// happen; drain defensively with a fresh proc.
		r, ok := l.TryLock(topo.Proc(2), spin.Deadline(100*time.Millisecond))
		if !ok {
			t.Fatal("lock stranded: no thread can acquire")
		}
		if r == ReleaseLocal {
			l.Unlock(topo.Proc(2), false, func() { globalHeld = false })
		} else {
			l.Unlock(topo.Proc(2), false, func() {})
		}
	}
}

func TestPatienceHelper(t *testing.T) {
	d := Patience(time.Hour)
	if spin.Expired(d) {
		t.Fatal("hour-long patience already expired")
	}
	if !spin.Expired(Patience(-time.Second)) {
		t.Fatal("negative patience should be expired")
	}
}
