package core

import (
	"sync/atomic"

	"repro/internal/numa"
	"repro/internal/spin"
)

// GlobalBO is the thread-oblivious global test-and-test-and-set lock
// used by the C-BO-* constructions. Per the paper (§4.1.1), cohort
// global locks are expected to be lightly contended — one contender
// per cluster at most — so waiters spin continuously without backoff,
// like a "bare bones" test-and-test-and-set lock. It also implements
// AbortableGlobal (a BO lock is trivially abortable: a waiter just
// stops trying).
type GlobalBO struct {
	state atomic.Int32
	_     numa.Pad
}

// NewGlobalBO returns an unlocked global BO lock.
func NewGlobalBO() *GlobalBO { return &GlobalBO{} }

// Lock spins until the lock is acquired.
func (l *GlobalBO) Lock(_ *numa.Proc) {
	for i := 0; ; i++ {
		if l.state.Load() == 0 && l.state.CompareAndSwap(0, 1) {
			return
		}
		spin.Poll(i)
	}
}

// TryLock spins until acquisition or the deadline.
func (l *GlobalBO) TryLock(_ *numa.Proc, deadline int64) bool {
	for i := 0; ; i++ {
		if l.state.Load() == 0 && l.state.CompareAndSwap(0, 1) {
			return true
		}
		if i&31 == 31 && spin.Expired(deadline) {
			return false
		}
		spin.Poll(i)
	}
}

// Unlock releases the lock; any thread may call it.
func (l *GlobalBO) Unlock(_ *numa.Proc) {
	l.state.Store(0)
}

// gmcsNode is a queue record of the thread-oblivious global MCS lock.
// Unlike plain MCS nodes, these circulate through per-proc pools: the
// cohort thread that finally releases the global lock is usually not
// the thread that enqueued, so it returns the node to the enqueuer's
// pool (paper §3.4).
type gmcsNode struct {
	next   atomic.Pointer[gmcsNode]
	locked atomic.Int32
	pfree  atomic.Pointer[gmcsNode] // free-list link
	owner  int32                    // proc whose pool this node belongs to
	parker spin.Parker
	_      numa.Pad
}

// gmcsPool is a per-proc Treiber free list. Any proc may push (the
// releaser returning a node); only the owner pops, so the classic ABA
// hazard cannot arise.
type gmcsPool struct {
	head atomic.Pointer[gmcsNode]
	_    numa.Pad
}

func (pl *gmcsPool) push(n *gmcsNode) {
	for {
		h := pl.head.Load()
		n.pfree.Store(h)
		if pl.head.CompareAndSwap(h, n) {
			return
		}
	}
}

func (pl *gmcsPool) pop() *gmcsNode {
	for {
		h := pl.head.Load()
		if h == nil {
			return nil
		}
		next := h.pfree.Load()
		if pl.head.CompareAndSwap(h, next) {
			return h
		}
	}
}

// GlobalMCS is the thread-oblivious MCS lock of the C-MCS-MCS
// construction. The queue node posted at Lock must survive until some
// (possibly different) cohort thread performs the matching Unlock, so
// nodes come from per-proc pools and are returned to their owner's
// pool at release (paper §3.4: "this circulation of MCS queue nodes
// can be done very efficiently").
type GlobalMCS struct {
	tail atomic.Pointer[gmcsNode]
	_    numa.Pad
	// holder is the node of the current lock holder. It is written by
	// the acquiring thread and read by the (possibly different)
	// releasing thread; both hold the enclosing cohort lock, and every
	// hand-off between them passes through the local lock's atomics,
	// so plain accesses are correctly ordered.
	holder *gmcsNode
	_pad2  numa.Pad
	pools  []gmcsPool
}

// NewGlobalMCS returns an unlocked thread-oblivious MCS lock.
func NewGlobalMCS(topo *numa.Topology) *GlobalMCS {
	return &GlobalMCS{pools: make([]gmcsPool, topo.MaxProcs())}
}

// Lock enqueues a pooled node and spins on it.
func (l *GlobalMCS) Lock(p *numa.Proc) {
	n := l.pools[p.ID()].pop()
	if n == nil {
		n = &gmcsNode{owner: int32(p.ID()), parker: spin.MakeParker()}
	}
	n.next.Store(nil)
	n.locked.Store(1)
	pred := l.tail.Swap(n)
	if pred != nil {
		pred.next.Store(n)
		n.parker.Wait(func() bool { return n.locked.Load() == 0 })
	}
	l.holder = n
}

// Unlock releases on behalf of whichever thread enqueued, then returns
// the node to the enqueuer's pool.
func (l *GlobalMCS) Unlock(_ *numa.Proc) {
	n := l.holder
	l.holder = nil
	next := n.next.Load()
	if next == nil {
		if l.tail.CompareAndSwap(n, nil) {
			l.pools[n.owner].push(n)
			return
		}
		for i := 0; ; i++ {
			if next = n.next.Load(); next != nil {
				break
			}
			spin.Poll(i)
		}
	}
	next.locked.Store(0)
	next.parker.Wake()
	l.pools[n.owner].push(n)
}
