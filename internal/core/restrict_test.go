package core_test

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/locktest"
	"repro/internal/numa"
)

// restrictInners enumerates representative inner locks for the
// wrapper: a plain queue lock, a blocking mutex, a cohort lock and the
// CNA extension — GCR must compose with all of them.
func restrictInners() map[string]func(topo *numa.Topology) locks.Mutex {
	return map[string]func(topo *numa.Topology) locks.Mutex{
		"mcs":      func(topo *numa.Topology) locks.Mutex { return locks.NewMCS(topo) },
		"pthread":  func(*numa.Topology) locks.Mutex { return locks.NewPthread() },
		"c-bo-mcs": func(topo *numa.Topology) locks.Mutex { return core.NewCBOMCS(topo) },
		"cna":      func(topo *numa.Topology) locks.Mutex { return locks.NewCNA(topo) },
	}
}

func TestRestrictedMutualExclusion(t *testing.T) {
	for name, mk := range restrictInners() {
		t.Run(name, func(t *testing.T) {
			topo := numa.New(4, 32)
			l := core.NewRestricted(topo, mk(topo), 2)
			locktest.CheckMutex(t, topo, l, 32, 200)
		})
	}
}

func TestRestrictedSingleThreadedReacquire(t *testing.T) {
	topo := numa.New(4, 8)
	l := core.NewRestricted(topo, locks.NewMCS(topo), 1)
	p := topo.Proc(0)
	for i := 0; i < 200; i++ {
		l.Lock(p)
		l.Unlock(p)
	}
}

func TestRestrictedOversubscribedStress(t *testing.T) {
	// More goroutines than GOMAXPROCS: the parked surplus must not
	// deadlock the admitted set, and promotions must keep flowing.
	topo := numa.New(4, 64)
	l := core.NewRestricted(topo, locks.NewMCS(topo), 2)
	locktest.CheckMutex(t, topo, l, 64, 100)
}

func TestRestrictedDefaultLimit(t *testing.T) {
	topo := numa.New(4, 16)
	l := core.NewRestricted(topo, locks.NewMCS(topo), 0)
	if l.ActivePerCluster() < 1 {
		t.Fatalf("default admission bound %d, want >= 1", l.ActivePerCluster())
	}
	if want := core.DefaultActivePerCluster(topo); l.ActivePerCluster() != want {
		t.Fatalf("default admission bound %d, want %d", l.ActivePerCluster(), want)
	}
	locktest.CheckMutex(t, topo, l, 16, 200)
}

func TestRestrictedFairness(t *testing.T) {
	// K=1 per cluster is the harshest setting: all throughput flows
	// through promotions, so any lost wakeup or ticket skew starves a
	// proc within the window.
	topo := numa.New(2, 16)
	l := core.NewRestricted(topo, locks.NewMCS(topo), 1)
	locktest.CheckFairness(t, topo, l, 16, 300)
}

// gaugeMutex counts concurrent Lock..Unlock occupants per cluster and
// records the high-water mark; Restricted only calls into the inner
// lock after admission, so the mark must respect the admission bound.
type gaugeMutex struct {
	inner  locks.Mutex
	in     []atomic.Int64
	peak   []atomic.Int64
	topo   *numa.Topology
	bounds int64
	bad    atomic.Int64
}

func (g *gaugeMutex) Lock(p *numa.Proc) {
	n := g.in[p.Cluster()].Add(1)
	// Yield while inside the window so other admitted threads get
	// scheduled and the peak is actually observed even on GOMAXPROCS=1.
	runtime.Gosched()
	if n > g.bounds {
		g.bad.Add(1)
	} else {
		for {
			old := g.peak[p.Cluster()].Load()
			if n <= old || g.peak[p.Cluster()].CompareAndSwap(old, n) {
				break
			}
		}
	}
	g.inner.Lock(p)
}

func (g *gaugeMutex) Unlock(p *numa.Proc) {
	g.inner.Unlock(p)
	g.in[p.Cluster()].Add(-1)
}

func TestRestrictedBoundsActiveWaitersPerCluster(t *testing.T) {
	const k = 2
	topo := numa.New(4, 32)
	g := &gaugeMutex{
		inner:  locks.NewMCS(topo),
		in:     make([]atomic.Int64, topo.Clusters()),
		peak:   make([]atomic.Int64, topo.Clusters()),
		topo:   topo,
		bounds: k,
	}
	l := core.NewRestricted(topo, g, k)
	locktest.CheckMutex(t, topo, l, 32, 300)
	if n := g.bad.Load(); n != 0 {
		t.Fatalf("admission bound exceeded %d times: >%d same-cluster threads inside the inner lock", n, k)
	}
	// With 8 procs per cluster all contending, the bound should
	// actually be reached, or the wrapper is throttling harder than
	// configured.
	for c := 0; c < topo.Clusters(); c++ {
		if p := g.peak[c].Load(); p != k {
			t.Errorf("cluster %d peak concurrency %d, want %d", c, p, k)
		}
	}
}

func TestRestrictedWaitingGauge(t *testing.T) {
	topo := numa.New(1, 4)
	l := core.NewRestricted(topo, locks.NewMCS(topo), 1)
	if w := l.Waiting(0); w != 0 {
		t.Fatalf("idle lock reports %d waiting", w)
	}
	p0 := topo.Proc(0)
	l.Lock(p0)
	acquired := make(chan struct{})
	go func() {
		p1 := topo.Proc(1)
		l.Lock(p1)
		close(acquired)
		l.Unlock(p1)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for l.Waiting(0) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("throttled waiter never counted")
		}
		time.Sleep(time.Millisecond)
	}
	l.Unlock(p0)
	select {
	case <-acquired:
	case <-time.After(10 * time.Second):
		t.Fatal("throttled waiter never promoted")
	}
}
