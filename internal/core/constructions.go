package core

import (
	"repro/internal/locks"
	"repro/internal/numa"
)

// This file assembles the paper's seven named cohort locks (§3). Each
// is just a composition through NewCohortLock/NewAbortableCohortLock —
// the point of the transformation is that no further code is needed.

// LocalBOBackoff is the default waiter backoff for cluster-local BO
// locks. Local waiters share a cache domain, so short windows suffice;
// only the local parameters need tuning (paper §4.1.1), unlike HBO's
// four-parameter space.
func LocalBOBackoff() locks.BOConfig {
	return locks.BOConfig{Policy: locks.DefaultBOConfig().Policy, MinPause: 16, MaxPause: 1024}
}

// NewCBOBO builds the C-BO-BO lock (paper §3.1): a global BO lock over
// per-cluster BO locks augmented with the successor-exists flag.
func NewCBOBO(topo *numa.Topology, opts ...Option) *CohortLock {
	return NewCohortLock(topo, NewGlobalBO(), func(int) Local {
		return NewLocalBO(LocalBOBackoff())
	}, opts...)
}

// NewCTKTTKT builds the C-TKT-TKT lock (paper §3.2): ticket locks at
// both levels, with the local ticket carrying the top-granted flag.
func NewCTKTTKT(topo *numa.Topology, opts ...Option) *CohortLock {
	return NewCohortLock(topo, locks.NewTicket(topo), func(int) Local {
		return NewLocalTicket(topo)
	}, opts...)
}

// NewCBOMCS builds the C-BO-MCS lock (paper §3.3, Figure 1): a global
// BO lock over per-cluster MCS locks with three-state release. The
// paper's best scaler (60% over FC-MCS).
func NewCBOMCS(topo *numa.Topology, opts ...Option) *CohortLock {
	return NewCohortLock(topo, NewGlobalBO(), func(int) Local {
		return NewLocalMCS(topo)
	}, opts...)
}

// NewCTKTMCS builds the C-TKT-MCS lock (paper §3.5): a global ticket
// lock (no queue-node circulation) over local MCS locks (retaining
// local spinning) — the paper's "best of both" combination.
func NewCTKTMCS(topo *numa.Topology, opts ...Option) *CohortLock {
	return NewCohortLock(topo, locks.NewTicket(topo), func(int) Local {
		return NewLocalMCS(topo)
	}, opts...)
}

// NewCMCSMCS builds the C-MCS-MCS lock (paper §3.4): MCS at both
// levels, with the global MCS made thread-oblivious by circulating
// queue nodes through per-proc pools.
func NewCMCSMCS(topo *numa.Topology, opts ...Option) *CohortLock {
	return NewCohortLock(topo, NewGlobalMCS(topo), func(int) Local {
		return NewLocalMCS(topo)
	}, opts...)
}

// NewCBOCLH builds a C-BO-CLH lock: a global BO lock over
// cohort-detecting CLH locks. Not one of the paper's seven named
// constructions, but a direct instance of its claim that "most locks
// can be used in the cohort locking transformation" (§3) — CLH offers
// the same local spinning as MCS with release states carried on the
// releaser's node.
func NewCBOCLH(topo *numa.Topology, opts ...Option) *CohortLock {
	return NewCohortLock(topo, NewGlobalBO(), func(int) Local {
		return NewLocalCLH(topo)
	}, opts...)
}

// NewACBOBO builds the abortable A-C-BO-BO lock (paper §3.6.1): an
// abortable global BO lock over abortable local BO locks whose
// releasers double-check successor-exists against aborting waiters.
func NewACBOBO(topo *numa.Topology, opts ...Option) *AbortableCohortLock {
	return NewAbortableCohortLock(topo, NewGlobalBO(), func(int) AbortableLocal {
		return NewABOLocal(LocalBOBackoff())
	}, opts...)
}

// NewACBOCLH builds the abortable A-C-BO-CLH lock (paper §3.6.2): an
// abortable global BO lock over abortable CLH locks whose queue nodes
// colocate the predecessor state with the successor-aborted flag. The
// paper's first NUMA-aware abortable queue lock, and its fastest.
func NewACBOCLH(topo *numa.Topology, opts ...Option) *AbortableCohortLock {
	return NewAbortableCohortLock(topo, NewGlobalBO(), func(int) AbortableLocal {
		return NewACLHLocal(topo)
	}, opts...)
}
