package core

import (
	"repro/internal/locks"
	"repro/internal/numa"
)

// RWCohortLock is a NUMA-aware reader-writer lock built on the
// cohorting transformation — the extension the paper's line of work
// leads to (cohort read-write locks are the authors' immediate
// follow-up). Writers serialize through an ordinary cohort lock, so
// consecutive same-cluster writers enjoy cohort hand-offs; readers
// only touch a per-cluster reader counter, so concurrent readers on
// different clusters never exchange cache lines.
//
// The reader-counter protocol itself is generic over the writer
// medium and lives in locks.RWPerCluster (writer-preference with
// reader back-off; see that type for the exact rules). RWCohortLock is
// that construction specialized to a cohort writer lock.
type RWCohortLock struct {
	*locks.RWPerCluster
}

// NewRWCohort wraps a cohort lock into a reader-writer cohort lock.
// The cohort lock must be fresh (not shared with other users).
func NewRWCohort(topo *numa.Topology, writers *CohortLock) *RWCohortLock {
	return &RWCohortLock{RWPerCluster: locks.NewRWPerCluster(topo, writers)}
}

// NewRWCBOMCS is the default reader-writer construction: writers go
// through a C-BO-MCS cohort lock.
func NewRWCBOMCS(topo *numa.Topology, opts ...Option) *RWCohortLock {
	return NewRWCohort(topo, NewCBOMCS(topo, opts...))
}

// Interface conformance check: the cohort RW lock is a full RWMutex.
var _ locks.RWMutex = (*RWCohortLock)(nil)
