package core

import (
	"sync/atomic"

	"repro/internal/numa"
	"repro/internal/spin"
)

// RWCohortLock is a NUMA-aware reader-writer lock built on the
// cohorting transformation — the extension the paper's line of work
// leads to (cohort read-write locks are the authors' immediate
// follow-up). Writers serialize through an ordinary cohort lock, so
// consecutive same-cluster writers enjoy cohort hand-offs; readers
// only touch a per-cluster reader counter, so concurrent readers on
// different clusters never exchange cache lines.
//
// The protocol is writer-preference with reader back-off:
//
//   - A reader increments its cluster's counter, then checks the
//     writer flag. If a writer is active, it backs out, waits for the
//     flag to clear, and retries — so arriving readers cannot starve a
//     writer that has already claimed the lock.
//   - A writer acquires the internal cohort lock (mutual exclusion
//     among writers, cohort hand-offs included), raises the writer
//     flag, and waits for every cluster's reader count to drain.
//
// The flag is raised only while holding the cohort lock, so at most
// one writer toggles it at a time.
type RWCohortLock struct {
	writers *CohortLock
	wflag   atomic.Int32
	_       numa.Pad
	readers []readerSlot
}

type readerSlot struct {
	n atomic.Int64
	_ numa.Pad
}

// NewRWCohort wraps a cohort lock into a reader-writer cohort lock.
// The cohort lock must be fresh (not shared with other users).
func NewRWCohort(topo *numa.Topology, writers *CohortLock) *RWCohortLock {
	return &RWCohortLock{
		writers: writers,
		readers: make([]readerSlot, topo.Clusters()),
	}
}

// NewRWCBOMCS is the default reader-writer construction: writers go
// through a C-BO-MCS cohort lock.
func NewRWCBOMCS(topo *numa.Topology, opts ...Option) *RWCohortLock {
	return NewRWCohort(topo, NewCBOMCS(topo, opts...))
}

// RLock acquires the lock in shared mode.
func (l *RWCohortLock) RLock(p *numa.Proc) {
	slot := &l.readers[p.Cluster()]
	for {
		slot.n.Add(1)
		if l.wflag.Load() == 0 {
			return // no writer: read section is open
		}
		// A writer is active or draining readers: back out and wait.
		slot.n.Add(-1)
		for i := 0; l.wflag.Load() != 0; i++ {
			spin.Poll(i)
		}
	}
}

// RUnlock releases shared mode.
func (l *RWCohortLock) RUnlock(p *numa.Proc) {
	l.readers[p.Cluster()].n.Add(-1)
}

// Lock acquires the lock in exclusive mode.
func (l *RWCohortLock) Lock(p *numa.Proc) {
	l.writers.Lock(p)
	l.wflag.Store(1)
	// Wait for in-flight readers, cluster by cluster. New readers see
	// the flag and back out.
	for c := range l.readers {
		for i := 0; l.readers[c].n.Load() != 0; i++ {
			spin.Poll(i)
		}
	}
}

// Unlock releases exclusive mode.
func (l *RWCohortLock) Unlock(p *numa.Proc) {
	l.wflag.Store(0)
	l.writers.Unlock(p)
}

// ActiveReaders reports the current reader count (racy; diagnostics
// and tests only).
func (l *RWCohortLock) ActiveReaders() int64 {
	var n int64
	for c := range l.readers {
		n += l.readers[c].n.Load()
	}
	return n
}
