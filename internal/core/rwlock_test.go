package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/numa"
)

func TestRWWriterExclusion(t *testing.T) {
	topo := numa.New(4, 16)
	l := NewRWCBOMCS(topo)
	var inCS atomic.Int32
	var violations atomic.Int32
	var counter int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := topo.Proc(id)
			for k := 0; k < 300; k++ {
				l.Lock(p)
				if inCS.Add(1) != 1 {
					violations.Add(1)
				}
				counter++
				inCS.Add(-1)
				l.Unlock(p)
			}
		}(i)
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("writer exclusion violated %d times", violations.Load())
	}
	if counter != 8*300 {
		t.Fatalf("counter = %d, want %d", counter, 8*300)
	}
}

func TestRWReadersCoexist(t *testing.T) {
	topo := numa.New(4, 16)
	l := NewRWCBOMCS(topo)
	const readers = 8
	var concurrent atomic.Int32
	var peak atomic.Int32
	barrier := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := topo.Proc(id)
			l.RLock(p)
			n := concurrent.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			<-barrier // hold the read lock until everyone's in
			concurrent.Add(-1)
			l.RUnlock(p)
		}(i)
	}
	// Wait for all readers to be inside, then release them.
	for i := 0; peak.Load() < readers; i++ {
		time.Sleep(time.Millisecond)
		if i > 10000 {
			t.Fatal("readers never all entered concurrently")
		}
	}
	close(barrier)
	wg.Wait()
	if peak.Load() != readers {
		t.Fatalf("peak concurrent readers = %d, want %d", peak.Load(), readers)
	}
}

func TestRWWriterExcludesReaders(t *testing.T) {
	topo := numa.New(4, 16)
	l := NewRWCBOMCS(topo)
	var data [2]int64 // writer keeps data[0]==data[1]; readers verify
	var torn atomic.Int32
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := topo.Proc(id)
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.RLock(p)
				if data[0] != data[1] {
					torn.Add(1)
				}
				l.RUnlock(p)
			}
		}(i)
	}
	for i := 6; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := topo.Proc(id)
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.Lock(p)
				data[0]++
				// Window for readers to observe a torn pair if the
				// writer were not exclusive.
				for s := 0; s < 50; s++ {
					_ = s
				}
				data[1]++
				l.Unlock(p)
			}
		}(i)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	if torn.Load() != 0 {
		t.Fatalf("readers observed %d torn writes", torn.Load())
	}
	if data[0] != data[1] {
		t.Fatal("final state torn")
	}
}

func TestRWWriterNotStarvedByReaders(t *testing.T) {
	topo := numa.New(4, 16)
	l := NewRWCBOMCS(topo)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Constant reader churn.
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := topo.Proc(id)
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.RLock(p)
				l.RUnlock(p)
			}
		}(i)
	}
	// The writer must get through promptly despite the churn.
	p := topo.Proc(7)
	done := make(chan struct{})
	go func() {
		for k := 0; k < 100; k++ {
			l.Lock(p)
			l.Unlock(p)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("writer starved by reader churn")
	}
	close(stop)
	wg.Wait()
	if l.ActiveReaders() != 0 {
		t.Fatalf("ActiveReaders = %d after drain", l.ActiveReaders())
	}
}

func TestRWUncontendedLatency(t *testing.T) {
	topo := numa.New(2, 4)
	l := NewRWCBOMCS(topo)
	p := topo.Proc(0)
	for i := 0; i < 1000; i++ {
		l.RLock(p)
		l.RUnlock(p)
		l.Lock(p)
		l.Unlock(p)
	}
	if l.ActiveReaders() != 0 {
		t.Fatal("reader accounting leaked")
	}
}
