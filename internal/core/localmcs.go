package core

import (
	"sync/atomic"

	"repro/internal/numa"
	"repro/internal/spin"
)

// Local MCS node states: the classic busy/released pair widened to
// carry the cohort release state (paper §3.3).
const (
	lmcsBusy   int32 = 0
	lmcsLocal  int32 = 1
	lmcsGlobal int32 = 2
)

func lmcsToRelease(s int32) Release {
	if s == lmcsLocal {
		return ReleaseLocal
	}
	return ReleaseGlobal
}

func lmcsFromRelease(r Release) int32 {
	if r == ReleaseLocal {
		return lmcsLocal
	}
	return lmcsGlobal
}

// lmcsNode is one thread's record in the local MCS queue.
type lmcsNode struct {
	next   atomic.Pointer[lmcsNode]
	state  atomic.Int32
	parker spin.Parker
	_      numa.Pad
}

// LocalMCS is the cohort-detecting MCS lock used by C-BO-MCS,
// C-TKT-MCS and C-MCS-MCS (paper §3.3). MCS provides cohort detection
// by design — the alone? predicate is a null check on the successor
// pointer — and retains local spinning: each waiter spins only on its
// own queue node, the property that makes the MCS-local cohort locks
// scale best in the paper.
type LocalMCS struct {
	tail  atomic.Pointer[lmcsNode]
	_     numa.Pad
	nodes []lmcsNode // one per proc; sized for the whole topology
}

// NewLocalMCS returns a cohort-detecting MCS lock. Nodes are indexed
// by proc id, so the lock accepts any proc of the topology even though
// only one cluster's procs normally use it.
func NewLocalMCS(topo *numa.Topology) *LocalMCS {
	l := &LocalMCS{nodes: make([]lmcsNode, topo.MaxProcs())}
	for i := range l.nodes {
		l.nodes[i].parker = spin.MakeParker()
	}
	return l
}

// Lock enqueues and spins on the caller's own node. A thread that
// finds the tail empty has no predecessor to inherit from and is in
// global-release state by definition.
func (l *LocalMCS) Lock(p *numa.Proc) Release {
	n := &l.nodes[p.ID()]
	n.next.Store(nil)
	n.state.Store(lmcsBusy)
	pred := l.tail.Swap(n)
	if pred == nil {
		return ReleaseGlobal
	}
	pred.next.Store(n)
	n.parker.Wait(func() bool { return n.state.Load() != lmcsBusy })
	return lmcsToRelease(n.state.Load())
}

// Unlock hands the release state to the successor, or empties the
// queue. If a successor linked after the caller's Alone check, it
// simply receives whatever state the caller decided — at worst an
// unnecessary global-release.
func (l *LocalMCS) Unlock(p *numa.Proc, r Release) {
	n := &l.nodes[p.ID()]
	next := n.next.Load()
	if next == nil {
		if l.tail.CompareAndSwap(n, nil) {
			return
		}
		for i := 0; ; i++ {
			if next = n.next.Load(); next != nil {
				break
			}
			spin.Poll(i)
		}
	}
	next.state.Store(lmcsFromRelease(r))
	next.parker.Wake()
}

// Alone reports whether the caller's node has no linked successor.
// False positives are possible (a successor swapped the tail but has
// not linked yet), which the protocol tolerates.
func (l *LocalMCS) Alone(p *numa.Proc) bool {
	return l.nodes[p.ID()].next.Load() == nil
}
