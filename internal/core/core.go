// Package core implements the paper's contribution: the lock cohorting
// transformation (Dice, Marathe, Shavit; PPoPP 2012).
//
// A cohort lock composes one thread-oblivious global lock G with one
// cohort-detecting local lock S_i per NUMA cluster. A thread acquires
// its cluster's S_i; the state S_i was released in tells it whether the
// cluster already owns G (local release — enter the critical section
// immediately) or whether it must acquire G itself (global release). A
// releasing thread that detects waiting cohort threads — and has not
// exhausted the may-pass-local hand-off budget — releases S_i in local
// release state without touching G, passing global ownership within
// the cluster at the cost of a purely cluster-local operation.
//
// The package provides the generic transformation (CohortLock and, for
// timeout-capable locks, AbortableCohortLock), cohort-detecting local
// adaptations of the BO, ticket, MCS and A-CLH locks, thread-oblivious
// global BO, ticket and MCS locks, and the paper's seven named
// constructions (C-BO-BO, C-TKT-TKT, C-BO-MCS, C-TKT-MCS, C-MCS-MCS,
// A-C-BO-BO, A-C-BO-CLH).
package core

import (
	"time"

	"repro/internal/numa"
)

// Release is the state a cohort local lock is released in. It is the
// signal that makes cohorting work: it tells the next local acquirer
// whether its cluster still holds the global lock.
type Release int32

const (
	// ReleaseGlobal means the global lock was released alongside the
	// local lock: the next local owner must acquire the global lock
	// before entering the critical section. This is also the state of
	// a fresh (never held) lock.
	ReleaseGlobal Release = iota
	// ReleaseLocal means the releasing thread kept the global lock on
	// behalf of the cluster: the next local owner inherits it and may
	// enter the critical section directly.
	ReleaseLocal
)

// String implements fmt.Stringer for diagnostics.
func (r Release) String() string {
	switch r {
	case ReleaseGlobal:
		return "release-global"
	case ReleaseLocal:
		return "release-local"
	default:
		return "release-invalid"
	}
}

// Global is a thread-oblivious mutual-exclusion lock: in any execution
// the unlock matching a lock call may be performed by a different
// thread. The paper's definition, §2.1.
type Global interface {
	Lock(p *numa.Proc)
	Unlock(p *numa.Proc)
}

// Local is a cohort-detecting mutual-exclusion lock. Lock returns the
// release state the previous owner left (ReleaseGlobal for a fresh
// lock); Unlock releases in the given state. Alone corresponds to the
// paper's alone? predicate: if no other thread is concurrently
// executing Lock, it returns true. False positives (reporting alone
// while a waiter exists) are permitted — they cost an unnecessary
// global release; false negatives would deadlock and are forbidden.
type Local interface {
	Lock(p *numa.Proc) Release
	Unlock(p *numa.Proc, r Release)
	Alone(p *numa.Proc) bool
}

// AbortableGlobal is a thread-oblivious lock supporting bounded-
// patience acquisition. TryLock returns false if the deadline (a
// spin.Now-based timestamp) passes first.
type AbortableGlobal interface {
	TryLock(p *numa.Proc, deadline int64) bool
	Unlock(p *numa.Proc)
}

// AbortableLocal is a cohort-detecting lock whose waiters may abort.
// The cohort-detection property is strengthened (paper §3.6): a local
// release may only hand the global lock to a *viable* successor — one
// that can no longer abort. Because closing that race is intrinsic to
// each lock's representation, Unlock owns the whole release protocol:
//
//   - If wantLocal is true and a viable successor exists, Unlock
//     releases in local-release state and returns without invoking
//     releaseGlobal.
//   - Otherwise Unlock invokes releaseGlobal exactly once and leaves
//     the lock in global-release state (a no-op releaseGlobal lets a
//     thread that never held the global lock abandon the local lock).
//
// TryLock returns (state, true) on acquisition — which may occur even
// after the deadline if a hand-off wins the race against the abort, as
// in Scott's A-CLH — and (0, false) if the attempt was abandoned.
type AbortableLocal interface {
	TryLock(p *numa.Proc, deadline int64) (Release, bool)
	Unlock(p *numa.Proc, wantLocal bool, releaseGlobal func())
	Alone(p *numa.Proc) bool
}

// DefaultHandoffLimit is the paper's bound on consecutive local
// hand-offs (may-pass-local): after 64 in-cluster transfers the global
// lock must be released to keep long-term fairness.
const DefaultHandoffLimit = 64

// Options configures a cohort lock.
type Options struct {
	// HandoffLimit bounds consecutive local hand-offs. Zero selects
	// DefaultHandoffLimit; a negative value removes the bound entirely
	// (the "deeply unfair" variant the paper ablates, ~10% faster
	// under high contention at the price of starvation).
	HandoffLimit int64
}

// Option mutates Options; see WithHandoffLimit.
type Option func(*Options)

// WithHandoffLimit sets Options.HandoffLimit.
func WithHandoffLimit(n int64) Option {
	return func(o *Options) { o.HandoffLimit = n }
}

func buildOptions(opts []Option) Options {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	if o.HandoffLimit == 0 {
		o.HandoffLimit = DefaultHandoffLimit
	}
	return o
}

// clusterState is per-cluster bookkeeping, touched only while the
// cohort lock is held by a thread of that cluster (mutual exclusion
// plus the local lock's acquire/release atomics order these plain
// accesses).
type clusterState struct {
	passes int64 // consecutive local hand-offs since last global release
	_      numa.Pad
}

// Patience converts a TryLockFor-style duration into the deadline
// representation used by the abortable interfaces. Exposed for callers
// composing their own abortable locks.
func Patience(d time.Duration) int64 {
	return deadlineFrom(d)
}
