package core

import (
	"testing"

	"repro/internal/numa"
)

// fakeGlobal is a single-threaded protocol probe for the global slot.
type fakeGlobal struct {
	held    bool
	locks   int
	unlocks int
	t       *testing.T
}

func (g *fakeGlobal) Lock(_ *numa.Proc) {
	if g.held {
		g.t.Fatal("global lock acquired while already held")
	}
	g.held = true
	g.locks++
}

func (g *fakeGlobal) Unlock(_ *numa.Proc) {
	if !g.held {
		g.t.Fatal("global lock released while not held")
	}
	g.held = false
	g.unlocks++
}

func (g *fakeGlobal) TryLock(_ *numa.Proc, _ int64) bool {
	if g.held {
		return false
	}
	g.held = true
	g.locks++
	return true
}

// fakeLocal is a single-threaded protocol probe for the local slot.
type fakeLocal struct {
	state   Release // state the next Lock returns
	held    bool
	waiter  bool // drives Alone
	history []Release
	t       *testing.T
}

func (l *fakeLocal) Lock(_ *numa.Proc) Release {
	if l.held {
		l.t.Fatal("local lock acquired while already held")
	}
	l.held = true
	return l.state
}

func (l *fakeLocal) Unlock(_ *numa.Proc, r Release) {
	if !l.held {
		l.t.Fatal("local lock released while not held")
	}
	l.held = false
	l.state = r
	l.history = append(l.history, r)
}

func (l *fakeLocal) Alone(_ *numa.Proc) bool { return !l.waiter }

func oneClusterTopo() *numa.Topology { return numa.New(1, 4) }

func TestCohortProtocolGlobalAcquiredOnGlobalRelease(t *testing.T) {
	topo := oneClusterTopo()
	fg := &fakeGlobal{t: t}
	fl := &fakeLocal{t: t}
	c := NewCohortLock(topo, fg, func(int) Local { return fl })
	p := topo.Proc(0)

	c.Lock(p)
	if fg.locks != 1 {
		t.Fatalf("global locks = %d, want 1 (fresh lock is global-release)", fg.locks)
	}
	c.Unlock(p) // no waiter: must release globally
	if fg.unlocks != 1 {
		t.Fatalf("global unlocks = %d, want 1", fg.unlocks)
	}
	if got := fl.history[len(fl.history)-1]; got != ReleaseGlobal {
		t.Fatalf("local release state = %v, want release-global", got)
	}
}

func TestCohortProtocolLocalHandoffSkipsGlobal(t *testing.T) {
	topo := oneClusterTopo()
	fg := &fakeGlobal{t: t}
	fl := &fakeLocal{t: t, waiter: true}
	c := NewCohortLock(topo, fg, func(int) Local { return fl })
	p := topo.Proc(0)

	c.Lock(p) // global acquired
	c.Unlock(p)
	if fg.unlocks != 0 {
		t.Fatal("global lock released despite a waiting cohort")
	}
	if got := fl.history[len(fl.history)-1]; got != ReleaseLocal {
		t.Fatalf("local release state = %v, want release-local", got)
	}

	// The next local acquisition inherits the global lock.
	c.Lock(p)
	if fg.locks != 1 {
		t.Fatalf("global locks = %d, want still 1 (inherited)", fg.locks)
	}
	fl.waiter = false
	c.Unlock(p)
	if fg.unlocks != 1 {
		t.Fatal("global lock not released once the cohort emptied")
	}
}

func TestCohortProtocolHandoffLimit(t *testing.T) {
	topo := oneClusterTopo()
	fg := &fakeGlobal{t: t}
	fl := &fakeLocal{t: t, waiter: true} // perpetual waiter
	c := NewCohortLock(topo, fg, func(int) Local { return fl }, WithHandoffLimit(3))
	p := topo.Proc(0)

	for i := 0; i < 4; i++ {
		c.Lock(p)
		c.Unlock(p)
	}
	// Hand-offs 1..3 local, 4th must release the global lock.
	if fg.unlocks != 1 {
		t.Fatalf("global unlocks = %d, want 1 after limit exhausted", fg.unlocks)
	}
	wantStates := []Release{ReleaseLocal, ReleaseLocal, ReleaseLocal, ReleaseGlobal}
	for i, want := range wantStates {
		if fl.history[i] != want {
			t.Fatalf("release %d = %v, want %v", i, fl.history[i], want)
		}
	}
	// Budget must reset after a global release.
	c.Lock(p)
	c.Unlock(p)
	if got := fl.history[len(fl.history)-1]; got != ReleaseLocal {
		t.Fatalf("post-reset release = %v, want release-local", got)
	}
}

func TestCohortProtocolUnboundedHandoffs(t *testing.T) {
	topo := oneClusterTopo()
	fg := &fakeGlobal{t: t}
	fl := &fakeLocal{t: t, waiter: true}
	c := NewCohortLock(topo, fg, func(int) Local { return fl }, WithHandoffLimit(-1))
	p := topo.Proc(0)

	for i := 0; i < 500; i++ {
		c.Lock(p)
		c.Unlock(p)
	}
	if fg.unlocks != 0 {
		t.Fatalf("unbounded cohort released the global lock %d times", fg.unlocks)
	}
}

func TestDefaultHandoffLimitApplied(t *testing.T) {
	topo := oneClusterTopo()
	c := NewCBOMCS(topo)
	if got := c.HandoffLimit(); got != DefaultHandoffLimit {
		t.Fatalf("HandoffLimit = %d, want %d", got, DefaultHandoffLimit)
	}
	a := NewACBOCLH(topo, WithHandoffLimit(7))
	if got := a.HandoffLimit(); got != 7 {
		t.Fatalf("abortable HandoffLimit = %d, want 7", got)
	}
}

func TestReleaseString(t *testing.T) {
	if ReleaseGlobal.String() != "release-global" ||
		ReleaseLocal.String() != "release-local" ||
		Release(9).String() != "release-invalid" {
		t.Fatal("Release.String mismatch")
	}
}
