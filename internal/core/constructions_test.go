package core_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/locktest"
	"repro/internal/numa"
)

func testTopo() *numa.Topology { return numa.New(4, 64) }

func stressProcs() int {
	n := runtime.GOMAXPROCS(0) * 2
	if n > 64 {
		n = 64
	}
	if n < 4 {
		n = 4
	}
	return n
}

func cohortFactories() map[string]func(topo *numa.Topology) locks.Mutex {
	return map[string]func(topo *numa.Topology) locks.Mutex{
		"c-bo-bo":   func(t *numa.Topology) locks.Mutex { return core.NewCBOBO(t) },
		"c-tkt-tkt": func(t *numa.Topology) locks.Mutex { return core.NewCTKTTKT(t) },
		"c-bo-mcs":  func(t *numa.Topology) locks.Mutex { return core.NewCBOMCS(t) },
		"c-tkt-mcs": func(t *numa.Topology) locks.Mutex { return core.NewCTKTMCS(t) },
		"c-mcs-mcs": func(t *numa.Topology) locks.Mutex { return core.NewCMCSMCS(t) },
		"c-bo-clh":  func(t *numa.Topology) locks.Mutex { return core.NewCBOCLH(t) },
	}
}

func abortableFactories() map[string]func(topo *numa.Topology) locks.TryMutex {
	return map[string]func(topo *numa.Topology) locks.TryMutex{
		"a-c-bo-bo":  func(t *numa.Topology) locks.TryMutex { return core.NewACBOBO(t) },
		"a-c-bo-clh": func(t *numa.Topology) locks.TryMutex { return core.NewACBOCLH(t) },
	}
}

func TestCohortMutualExclusion(t *testing.T) {
	for name, mk := range cohortFactories() {
		t.Run(name, func(t *testing.T) {
			topo := testTopo()
			locktest.CheckMutex(t, topo, mk(topo), stressProcs(), 300)
		})
	}
}

func TestCohortSingleThreaded(t *testing.T) {
	for name, mk := range cohortFactories() {
		t.Run(name, func(t *testing.T) {
			topo := testTopo()
			m := mk(topo)
			p := topo.Proc(0)
			for i := 0; i < 200; i++ {
				m.Lock(p)
				m.Unlock(p)
			}
		})
	}
}

func TestCohortCrossClusterHandoff(t *testing.T) {
	// Procs 0 and 1 are on different clusters under round-robin, so
	// every transfer exercises the global release path.
	for name, mk := range cohortFactories() {
		t.Run(name, func(t *testing.T) {
			topo := testTopo()
			locktest.CheckHandoff(t, topo, mk(topo), 500)
		})
	}
}

func TestCohortSameClusterPair(t *testing.T) {
	// Two procs on one cluster: the common case is local hand-off.
	for name, mk := range cohortFactories() {
		t.Run(name, func(t *testing.T) {
			topo := numa.New(1, 8)
			locktest.CheckMutex(t, topo, mk(topo), 2, 2000)
		})
	}
}

func TestCohortOversubscribed(t *testing.T) {
	for name, mk := range cohortFactories() {
		t.Run(name, func(t *testing.T) {
			topo := numa.New(4, 64)
			locktest.CheckMutex(t, topo, mk(topo), 64, 100)
		})
	}
}

func TestCohortUnboundedHandoffStress(t *testing.T) {
	// The deeply unfair variant must still be correct.
	for name, mk := range map[string]func(topo *numa.Topology) locks.Mutex{
		"c-bo-mcs":  func(tp *numa.Topology) locks.Mutex { return core.NewCBOMCS(tp, core.WithHandoffLimit(-1)) },
		"c-tkt-tkt": func(tp *numa.Topology) locks.Mutex { return core.NewCTKTTKT(tp, core.WithHandoffLimit(-1)) },
	} {
		t.Run(name, func(t *testing.T) {
			topo := testTopo()
			locktest.CheckMutex(t, topo, mk(topo), stressProcs(), 200)
		})
	}
}

func TestCohortTinyHandoffLimitStress(t *testing.T) {
	// Limit 1 forces a global release nearly every operation,
	// hammering the global-path state machine.
	for name, mk := range map[string]func(topo *numa.Topology) locks.Mutex{
		"c-bo-bo":   func(tp *numa.Topology) locks.Mutex { return core.NewCBOBO(tp, core.WithHandoffLimit(1)) },
		"c-mcs-mcs": func(tp *numa.Topology) locks.Mutex { return core.NewCMCSMCS(tp, core.WithHandoffLimit(1)) },
	} {
		t.Run(name, func(t *testing.T) {
			topo := testTopo()
			locktest.CheckMutex(t, topo, mk(topo), stressProcs(), 200)
		})
	}
}

func TestAbortableCohortExclusionAndAborts(t *testing.T) {
	for name, mk := range abortableFactories() {
		t.Run(name, func(t *testing.T) {
			topo := numa.New(4, 32)
			s, a := locktest.CheckTryMutex(t, topo, mk(topo), 32, 200, 200*time.Microsecond)
			t.Logf("%s: %d successes, %d aborts", name, s, a)
		})
	}
}

func TestAbortableCohortGenerousPatienceNeverAborts(t *testing.T) {
	for name, mk := range abortableFactories() {
		t.Run(name, func(t *testing.T) {
			topo := numa.New(4, 16)
			m := mk(topo)
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					p := topo.Proc(id)
					for k := 0; k < 100; k++ {
						if !m.TryLockFor(p, time.Minute) {
							t.Errorf("aborted despite one-minute patience")
							return
						}
						m.Unlock(p)
					}
				}(i)
			}
			wg.Wait()
		})
	}
}

func TestAbortableCohortHeldLockTimesOut(t *testing.T) {
	for name, mk := range abortableFactories() {
		t.Run(name, func(t *testing.T) {
			topo := testTopo()
			m := mk(topo)
			p0, p1 := topo.Proc(0), topo.Proc(1)
			if !m.TryLockFor(p0, time.Second) {
				t.Fatal("could not acquire free lock")
			}
			if m.TryLockFor(p1, 2*time.Millisecond) {
				t.Fatal("acquired a held lock")
			}
			m.Unlock(p0)
			if !m.TryLockFor(p1, time.Second) {
				t.Fatal("could not acquire after release")
			}
			m.Unlock(p1)
		})
	}
}

func TestAbortableCohortSameClusterAbortChurn(t *testing.T) {
	// All contention inside one cluster maximizes local hand-off and
	// abort interleavings — the hard part of §3.6.
	for name, mk := range abortableFactories() {
		t.Run(name, func(t *testing.T) {
			topo := numa.New(1, 16)
			s, a := locktest.CheckTryMutex(t, topo, mk(topo), 16, 300, 100*time.Microsecond)
			t.Logf("%s same-cluster churn: %d successes, %d aborts", name, s, a)
		})
	}
}

func TestAbortableCohortZeroPatience(t *testing.T) {
	// Zero patience may only succeed on an uncontended fast path; it
	// must never hang or corrupt state.
	for name, mk := range abortableFactories() {
		t.Run(name, func(t *testing.T) {
			topo := numa.New(4, 32)
			locktest.CheckTryMutex(t, topo, mk(topo), 16, 200, 0)
		})
	}
}
