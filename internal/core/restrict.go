package core

import (
	"runtime"
	"sync/atomic"

	"repro/internal/locks"
	"repro/internal/numa"
	"repro/internal/spin"
)

// This file implements generic concurrency restriction (GCR) after
// Dice and Kogan, "Avoiding Scalability Collapse by Restricting
// Concurrency" (2019): past saturation, adding threads to a lock only
// adds hand-off latency, cache pressure and — under the Go runtime —
// scheduler round-trips, so admission control around *any* lock beats
// letting everyone compete. Restricted wraps an arbitrary locks.Mutex
// and admits at most K waiters per NUMA cluster into competition for
// it; surplus arrivals park in per-cluster FIFO ticket order via
// internal/spin's parker.
//
// Admission is a ticket semaphore: an arrival takes the next ticket t
// of its cluster and may compete once fewer than K earlier tickets
// remain unretired (t - exits < K). Every release retires one ticket
// and wakes exactly the newly admitted waiter — that slow-path
// promotion is what makes parked waiters starvation-free: admission is
// strictly ticket order, so a parked waiter is promoted after at most
// K-1 retirements once it reaches the front, no matter how eagerly the
// admitted set re-arrives (re-arrivals queue behind it).

// gcrWaiter is one proc's registration record for one Restricted
// lock: the ticket it is currently throttled on (-1 when none) and
// the parker a promotion wakes. Only the owning proc ever writes
// ticket, which is what makes the wake protocol loss-free: a
// registration cannot be overwritten by other threads, so a
// releaser's scan finds it no matter how late the releaser runs.
type gcrWaiter struct {
	ticket atomic.Int64
	parker spin.Parker
	_      numa.Pad
}

// gcrCluster is one cluster's admission state. tickets and exits are
// hammered by different populations (arrivals vs releasers), so they
// live on separate cache lines.
type gcrCluster struct {
	tickets atomic.Int64
	_       numa.Pad
	exits   atomic.Int64
	_       numa.Pad
	// waiters holds the registration records of this cluster's procs;
	// a releaser scans it for the one ticket its exit admitted.
	waiters []*gcrWaiter
}

// Restricted is a concurrency-restriction wrapper around an inner
// lock. It is itself a locks.Mutex, so it composes with everything the
// registry can build, including cohort locks and CNA.
type Restricted struct {
	inner locks.Mutex
	limit int64
	cls   []gcrCluster
	procs []gcrWaiter // indexed by proc id
}

// DefaultActivePerCluster is the admission bound NewRestricted applies
// when given a non-positive limit: enough competitors per cluster to
// fill the host's processors and no more, the point past which the
// restriction paper shows extra waiters only slow the lock down.
func DefaultActivePerCluster(topo *numa.Topology) int {
	k := runtime.GOMAXPROCS(0) / topo.Clusters()
	if k < 1 {
		k = 1
	}
	return k
}

// NewRestricted wraps inner with per-cluster admission control. At
// most perCluster waiters per cluster compete for inner at once; a
// non-positive perCluster selects DefaultActivePerCluster.
func NewRestricted(topo *numa.Topology, inner locks.Mutex, perCluster int) *Restricted {
	if perCluster <= 0 {
		perCluster = DefaultActivePerCluster(topo)
	}
	l := &Restricted{
		inner: inner,
		limit: int64(perCluster),
		cls:   make([]gcrCluster, topo.Clusters()),
		procs: make([]gcrWaiter, topo.MaxProcs()),
	}
	for i := range l.procs {
		l.procs[i].parker = spin.MakeParker()
		l.procs[i].ticket.Store(-1)
		c := &l.cls[topo.ClusterOf(i)]
		c.waiters = append(c.waiters, &l.procs[i])
	}
	return l
}

// ActivePerCluster reports the admission bound.
func (l *Restricted) ActivePerCluster() int { return int(l.limit) }

// Waiting reports how many procs of cluster c are currently throttled
// (ticketed but not yet admitted). Monitoring only; racy by nature.
func (l *Restricted) Waiting(c int) int {
	q := l.cls[c].tickets.Load() - l.cls[c].exits.Load() - l.limit
	if q < 0 {
		q = 0
	}
	return int(q)
}

// Lock admits the caller — immediately if its cluster has a free
// admission slot, otherwise after parking until its ticket is reached
// — and then acquires the inner lock.
func (l *Restricted) Lock(p *numa.Proc) {
	c := &l.cls[p.Cluster()]
	t := c.tickets.Add(1) - 1
	if t-c.exits.Load() >= l.limit {
		w := &l.procs[p.ID()]
		// Publish the ticket before the admission check inside Wait: a
		// releaser that scans before this store has not yet retired the
		// ticket we would be waiting on, so the re-check sees the new
		// exit count before the waiter can park. The registration is
		// left in place — tickets are unique and increasing, so a past
		// value can never equal a future exit's target and needs no
		// reset.
		w.ticket.Store(t)
		w.parker.Wait(func() bool { return t-c.exits.Load() < l.limit })
	}
	l.inner.Lock(p)
}

// Unlock releases the inner lock, retires the caller's ticket, and
// promotes the newly admitted waiter, if any.
func (l *Restricted) Unlock(p *numa.Proc) {
	l.inner.Unlock(p)
	c := &l.cls[p.Cluster()]
	e := c.exits.Add(1)
	// Tickets below e+limit are now admitted; adm = e+limit-1 is the
	// one this exit freed. Scan the cluster's registrations for it —
	// only on the throttled path (tickets beyond adm exist), so the
	// uncontended cost is two loads. The scan may run arbitrarily late,
	// but the registration it looks for is owner-written and therefore
	// still present if the waiter is still parked: a promotion can be
	// slow, never lost.
	adm := e + l.limit - 1
	if c.tickets.Load() > adm {
		for _, w := range c.waiters {
			if w.ticket.Load() == adm {
				w.parker.Wake()
				break
			}
		}
	}
}
