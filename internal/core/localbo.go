package core

import (
	"sync/atomic"

	"repro/internal/locks"
	"repro/internal/numa"
	"repro/internal/spin"
)

// Local BO lock word states. ReleaseGlobal deliberately maps to the
// free state of a fresh lock.
const (
	boGlobal int32 = 0 // free; next owner must acquire the global lock
	boBusy   int32 = 1 // held
	boLocal  int32 = 2 // free; next owner inherits the global lock
)

func boToRelease(w int32) Release {
	if w == boLocal {
		return ReleaseLocal
	}
	return ReleaseGlobal
}

func boFromRelease(r Release) int32 {
	if r == ReleaseLocal {
		return boLocal
	}
	return boGlobal
}

// LocalBO is the cohort-detecting test-and-test-and-set lock of
// C-BO-BO (paper §3.1). Cohort detection uses a successor-exists flag:
// an arriving thread sets it immediately before attempting the
// acquisition CAS; the CAS winner resets it; spinning waiters
// re-assert it if they see it reset, so an incorrect-false — allowed,
// but causing a needless global release — is short-lived.
type LocalBO struct {
	word atomic.Int32
	_    numa.Pad
	succ atomic.Int32 // successor-exists
	_pb  numa.Pad
	cfg  locks.BOConfig
}

// NewLocalBO returns a cohort-detecting BO lock with the given waiter
// backoff configuration.
func NewLocalBO(cfg locks.BOConfig) *LocalBO {
	if cfg.MinPause < 1 {
		cfg.MinPause = 1
	}
	if cfg.MaxPause < cfg.MinPause {
		cfg.MaxPause = cfg.MinPause
	}
	return &LocalBO{cfg: cfg}
}

// Lock acquires the local lock and reports the inherited release state.
func (l *LocalBO) Lock(p *numa.Proc) Release {
	b := spin.NewBackoff(l.cfg.Policy, l.cfg.MinPause, l.cfg.MaxPause, p.Rand())
	for {
		w := l.word.Load()
		if w != boBusy {
			l.succ.Store(1)
			if l.word.CompareAndSwap(w, boBusy) {
				l.succ.Store(0)
				return boToRelease(w)
			}
		} else if l.succ.Load() == 0 {
			// The current owner's post-acquisition reset erased our
			// (or another waiter's) assertion; restore it. This write
			// is off the lock's critical path (paper §3.1).
			l.succ.Store(1)
		}
		b.Wait()
	}
}

// Unlock releases in the given state.
func (l *LocalBO) Unlock(_ *numa.Proc, r Release) {
	l.word.Store(boFromRelease(r))
}

// Alone reports the complement of successor-exists.
func (l *LocalBO) Alone(_ *numa.Proc) bool {
	return l.succ.Load() == 0
}

// ABOLocal is the abortable cohort-detecting BO lock of A-C-BO-BO
// (paper §3.6.1). It extends LocalBO with the abort protocol: aborting
// waiters clear successor-exists, and the releaser double-checks the
// flag after a local release, reclaiming the hand-off (and releasing
// the global lock) if every waiter may have vanished.
type ABOLocal struct {
	word atomic.Int32
	_    numa.Pad
	succ atomic.Int32
	_pb  numa.Pad
	cfg  locks.BOConfig
}

// NewABOLocal returns an abortable cohort-detecting BO lock.
func NewABOLocal(cfg locks.BOConfig) *ABOLocal {
	if cfg.MinPause < 1 {
		cfg.MinPause = 1
	}
	if cfg.MaxPause < cfg.MinPause {
		cfg.MaxPause = cfg.MinPause
	}
	return &ABOLocal{cfg: cfg}
}

// TryLock attempts acquisition until the deadline. An aborting waiter
// clears successor-exists and then performs one rescue check: if the
// lock word shows an unclaimed local release, the waiter takes it
// (reporting success) rather than strand the cluster's claim on the
// global lock.
func (l *ABOLocal) TryLock(p *numa.Proc, deadline int64) (Release, bool) {
	b := spin.NewBackoff(l.cfg.Policy, l.cfg.MinPause, l.cfg.MaxPause, p.Rand())
	for {
		w := l.word.Load()
		if w != boBusy {
			l.succ.Store(1)
			if l.word.CompareAndSwap(w, boBusy) {
				l.succ.Store(0)
				return boToRelease(w), true
			}
		} else if l.succ.Load() == 0 {
			l.succ.Store(1)
		}
		if spin.Expired(deadline) {
			// Abort: withdraw the successor assertion so the releaser
			// does not hand the global lock to a ghost.
			l.succ.Store(0)
			// Rescue: a release-local hand-off may already be posted
			// with every other waiter gone; claiming it is the only
			// deadlock-free option (and counts as a late success).
			if l.word.Load() == boLocal && l.word.CompareAndSwap(boLocal, boBusy) {
				return ReleaseLocal, true
			}
			return ReleaseGlobal, false
		}
		b.Wait()
	}
}

// Unlock implements the paper's double-checked release. With wantLocal
// it posts a local release, then re-reads successor-exists: if the
// flag was cleared by an aborting waiter, it attempts to reclaim the
// hand-off with a CAS (release-local → release-global); success means
// no waiter took the lock, so the global lock must be released too.
// Failure of that CAS means some thread already claimed the hand-off —
// a viable successor after all.
func (l *ABOLocal) Unlock(_ *numa.Proc, wantLocal bool, releaseGlobal func()) {
	if wantLocal {
		l.word.Store(boLocal)
		if l.succ.Load() == 0 {
			if l.word.CompareAndSwap(boLocal, boGlobal) {
				releaseGlobal()
			}
		}
		return
	}
	releaseGlobal()
	l.word.Store(boGlobal)
}

// Alone reports the complement of successor-exists.
func (l *ABOLocal) Alone(_ *numa.Proc) bool {
	return l.succ.Load() == 0
}
