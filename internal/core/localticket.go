package core

import (
	"sync/atomic"

	"repro/internal/numa"
	"repro/internal/spin"
)

// LocalTicket is the cohort-detecting ticket lock of C-TKT-TKT (paper
// §3.2). Cohort detection is free: waiters exist exactly when the
// request counter is ahead of the holder's ticket. Local hand-off uses
// the top-granted flag: the releaser sets it before incrementing
// grant, telling the next ticket holder it inherited the global lock;
// that thread resets the flag on observing it.
type LocalTicket struct {
	request atomic.Uint64
	_       numa.Pad
	grant   atomic.Uint64
	_pg     numa.Pad
	// topGranted is written by the releaser strictly before the grant
	// increment and read by the next owner strictly after it observes
	// that increment.
	topGranted atomic.Int32
	_pt        numa.Pad
	parkers    []localTicketSlot
}

type localTicketSlot struct {
	p spin.Parker
	_ numa.Pad
}

// NewLocalTicket returns a cohort-detecting ticket lock sized for
// topo's processors (per-ticket parker slots, as in locks.Ticket).
func NewLocalTicket(topo *numa.Topology) *LocalTicket {
	l := &LocalTicket{parkers: make([]localTicketSlot, topo.MaxProcs())}
	for i := range l.parkers {
		l.parkers[i].p = spin.MakeParker()
	}
	return l
}

// Lock takes a ticket, waits for its grant, and consumes the
// top-granted flag to learn the release state.
func (l *LocalTicket) Lock(_ *numa.Proc) Release {
	t := l.request.Add(1) - 1
	if l.grant.Load() != t {
		l.parkers[t%uint64(len(l.parkers))].p.Wait(func() bool { return l.grant.Load() == t })
	}
	if l.topGranted.Load() == 1 {
		l.topGranted.Store(0)
		return ReleaseLocal
	}
	return ReleaseGlobal
}

// Unlock releases, posting top-granted first on a local release, and
// wakes the next ticket holder.
func (l *LocalTicket) Unlock(_ *numa.Proc, r Release) {
	if r == ReleaseLocal {
		l.topGranted.Store(1)
	}
	g := l.grant.Add(1)
	l.parkers[g%uint64(len(l.parkers))].p.Wake()
}

// Alone reports whether no later ticket has been requested. The holder
// of ticket t observes grant == t and request >= t+1; waiters exist
// exactly when request > t+1.
func (l *LocalTicket) Alone(_ *numa.Proc) bool {
	return l.request.Load() == l.grant.Load()+1
}
