package core

import (
	"time"

	"repro/internal/numa"
	"repro/internal/spin"
)

func deadlineFrom(d time.Duration) int64 { return spin.Deadline(d) }

// CohortLock is the generic (non-abortable) lock cohorting
// transformation: one thread-oblivious global lock plus one
// cohort-detecting local lock per cluster. It implements the paper's
// lock/unlock protocol of §2.1 verbatim and satisfies locks.Mutex.
type CohortLock struct {
	global Global
	local  []Local
	state  []clusterState
	limit  int64
}

// NewCohortLock assembles a cohort lock over topo. newLocal is invoked
// once per cluster to build that cluster's local lock; global is the
// shared thread-oblivious lock. This is the user-facing composition
// point: any pair of locks with the required properties may be
// combined (see the named constructions for the paper's seven).
func NewCohortLock(topo *numa.Topology, global Global, newLocal func(cluster int) Local, opts ...Option) *CohortLock {
	o := buildOptions(opts)
	l := &CohortLock{
		global: global,
		local:  make([]Local, topo.Clusters()),
		state:  make([]clusterState, topo.Clusters()),
		limit:  o.HandoffLimit,
	}
	for c := range l.local {
		l.local[c] = newLocal(c)
	}
	return l
}

// Lock acquires the cohort lock: local lock first, then — only if the
// local release state demands it — the global lock.
func (l *CohortLock) Lock(p *numa.Proc) {
	c := p.Cluster()
	if l.local[c].Lock(p) == ReleaseGlobal {
		l.global.Lock(p)
		l.state[c].passes = 0
	}
}

// Unlock releases the cohort lock. If a cohort thread is waiting and
// the hand-off budget permits, only the local lock is released (in
// local-release state), keeping the global lock cluster-resident;
// otherwise the global lock is released first and the local lock is
// left in global-release state.
func (l *CohortLock) Unlock(p *numa.Proc) {
	c := p.Cluster()
	st := &l.state[c]
	s := l.local[c]
	if (l.limit < 0 || st.passes < l.limit) && !s.Alone(p) {
		st.passes++
		s.Unlock(p, ReleaseLocal)
		return
	}
	st.passes = 0
	l.global.Unlock(p)
	s.Unlock(p, ReleaseGlobal)
}

// HandoffLimit reports the configured may-pass-local bound.
func (l *CohortLock) HandoffLimit() int64 { return l.limit }

// AbortableCohortLock is the abortable lock cohorting transformation
// (paper §3.6): global and local components support bounded patience,
// and local release only hands the global lock to viable successors.
// It satisfies locks.TryMutex.
type AbortableCohortLock struct {
	global AbortableGlobal
	local  []AbortableLocal
	state  []clusterState
	limit  int64
}

// NewAbortableCohortLock assembles an abortable cohort lock; see
// NewCohortLock for the composition contract.
func NewAbortableCohortLock(topo *numa.Topology, global AbortableGlobal, newLocal func(cluster int) AbortableLocal, opts ...Option) *AbortableCohortLock {
	o := buildOptions(opts)
	l := &AbortableCohortLock{
		global: global,
		local:  make([]AbortableLocal, topo.Clusters()),
		state:  make([]clusterState, topo.Clusters()),
		limit:  o.HandoffLimit,
	}
	for c := range l.local {
		l.local[c] = newLocal(c)
	}
	return l
}

// TryLockFor attempts to acquire the cohort lock, abandoning after
// patience. A thread that wins the local lock in global-release state
// but times out on the global lock re-releases the local lock in
// global-release state (it never held the global lock, so this cannot
// strand it) and reports failure.
func (l *AbortableCohortLock) TryLockFor(p *numa.Proc, patience time.Duration) bool {
	deadline := deadlineFrom(patience)
	c := p.Cluster()
	r, ok := l.local[c].TryLock(p, deadline)
	if !ok {
		return false
	}
	if r == ReleaseGlobal {
		if !l.global.TryLock(p, deadline) {
			l.local[c].Unlock(p, false, func() {})
			return false
		}
		l.state[c].passes = 0
	}
	return true
}

// Unlock releases the cohort lock, delegating the viable-successor
// race to the local lock (see AbortableLocal).
func (l *AbortableCohortLock) Unlock(p *numa.Proc) {
	c := p.Cluster()
	st := &l.state[c]
	s := l.local[c]
	wantLocal := (l.limit < 0 || st.passes < l.limit) && !s.Alone(p)
	if wantLocal {
		st.passes++
	}
	// The pass-count reset must precede the global release inside the
	// callback: once the global lock drops, a new holder may write the
	// counter, and the global lock's acquire/release atomics are what
	// order the two accesses.
	s.Unlock(p, wantLocal, func() {
		st.passes = 0
		l.global.Unlock(p)
	})
}

// HandoffLimit reports the configured may-pass-local bound.
func (l *AbortableCohortLock) HandoffLimit() int64 { return l.limit }
