package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/numa"
	"repro/internal/spin"
)

// The A-C-BO-CLH local lock (paper §3.6.2) needs a queue-node "prev"
// field and a successor-aborted flag that are read and modified as one
// atomic unit: the owner's local hand-off CAS and the successor's
// abort CAS must exclude each other. Go cannot pack a pointer and a
// flag into one word without unsafe, so nodes live in a chunked arena
// and are addressed by index. A node's state is a single uint64:
//
//	bit 63      — successor-aborted flag
//	bits 0..62  — code: 0 busy, 1 release-local, 2 release-global,
//	              k+3 = explicit predecessor with node index k (the
//	              node's owner aborted; spin on node k instead)
const (
	acBusy      uint64 = 0
	acRL        uint64 = 1
	acRG        uint64 = 2
	acPredBase  uint64 = 3
	acAbortFlag uint64 = 1 << 63
	acCodeMask  uint64 = acAbortFlag - 1
)

func acEncodePred(idx int64) uint64 { return uint64(idx) + acPredBase }

// acNode is one abortable-CLH queue record.
type acNode struct {
	word atomic.Uint64
	_    numa.Pad
}

// Arena geometry: chunks are installed once and never move, so a node
// index remains valid for the lock's lifetime while the arena grows
// without copying.
const (
	acChunkShift = 8
	acChunkSize  = 1 << acChunkShift
	acChunkMask  = acChunkSize - 1
	acMaxChunks  = 1 << 12
)

type acChunk [acChunkSize]acNode

// acArena is a grow-only chunked node store.
type acArena struct {
	mu     sync.Mutex
	next   atomic.Int64
	chunks [acMaxChunks]atomic.Pointer[acChunk]
}

func (a *acArena) alloc() int64 {
	i := a.next.Add(1) - 1
	ci := i >> acChunkShift
	if ci >= acMaxChunks {
		panic(fmt.Sprintf("core: A-CLH arena exhausted (%d nodes)", i))
	}
	if a.chunks[ci].Load() == nil {
		a.mu.Lock()
		if a.chunks[ci].Load() == nil {
			a.chunks[ci].Store(new(acChunk))
		}
		a.mu.Unlock()
	}
	return i
}

func (a *acArena) node(i int64) *acNode {
	return &a.chunks[i>>acChunkShift].Load()[i&acChunkMask]
}

// acProcState is per-proc bookkeeping: the node held by the current
// acquisition and a free-node pool. Only the owning proc touches it.
type acProcState struct {
	holder int64
	pool   []int64
	_      numa.Pad
}

// ACLHLocal is the abortable cohort-detecting CLH lock of A-C-BO-CLH
// (paper §3.6.2). Waiters spin on their predecessor's node (CLH-style
// implicit predecessors). An aborting waiter atomically sets its
// predecessor's successor-aborted flag — the same word the owner's
// release-local CAS targets — then publishes its predecessor in its
// own node for its successor to adopt. The single-word CAS makes
// "hand off locally" and "successor aborts" mutually exclusive, which
// is exactly the strengthened cohort-detection property abortability
// requires.
//
// Deviation (documented in DESIGN.md): reclaimed nodes go to the pool
// of the proc that unlinked them rather than their original owner's;
// nodes are interchangeable, so behaviour is unchanged.
type ACLHLocal struct {
	arena acArena
	tail  atomic.Int64
	_     numa.Pad
	procs []acProcState
}

// NewACLHLocal returns an abortable cohort-detecting CLH lock.
func NewACLHLocal(topo *numa.Topology) *ACLHLocal {
	l := &ACLHLocal{procs: make([]acProcState, topo.MaxProcs())}
	dummy := l.arena.alloc()
	l.arena.node(dummy).word.Store(acRG)
	l.tail.Store(dummy)
	return l
}

func (l *ACLHLocal) getNode(p *numa.Proc) int64 {
	st := &l.procs[p.ID()]
	if n := len(st.pool); n > 0 {
		idx := st.pool[n-1]
		st.pool = st.pool[:n-1]
		l.arena.node(idx).word.Store(acBusy)
		return idx
	}
	idx := l.arena.alloc()
	l.arena.node(idx).word.Store(acBusy)
	return idx
}

func (l *ACLHLocal) putNode(p *numa.Proc, idx int64) {
	st := &l.procs[p.ID()]
	st.pool = append(st.pool, idx)
}

// TryLock enqueues and spins on the predecessor until granted, the
// predecessor chain resolves to a release, or the deadline passes.
//
// Abort rules (all resolved through the predecessor's single word):
//   - predecessor busy, flag clear: CAS in the successor-aborted flag;
//     on success publish our explicit predecessor and leave.
//   - predecessor busy, flag already set (by a previously aborted
//     sibling): no hand-off can reach us, so publish and leave.
//   - release observed after the deadline: we have become the local
//     owner and report (late) success; for release-global the caller's
//     global acquisition will itself time out and abandon via
//     Unlock(p, false, noop), which re-releases the node in
//     global-release state without stranding anything.
func (l *ACLHLocal) TryLock(p *numa.Proc, deadline int64) (Release, bool) {
	n := l.getNode(p)
	pred := l.tail.Swap(n)
	for i := 0; ; i++ {
		w := l.arena.node(pred).word.Load()
		code := w & acCodeMask
		switch {
		case code == acRL:
			l.putNode(p, pred)
			l.procs[p.ID()].holder = n
			return ReleaseLocal, true
		case code == acRG:
			l.putNode(p, pred)
			l.procs[p.ID()].holder = n
			return ReleaseGlobal, true
		case code >= acPredBase:
			// Predecessor aborted: adopt its predecessor, reclaim it.
			l.putNode(p, pred)
			pred = int64(code - acPredBase)
			continue
		}
		// Predecessor is busy.
		if spin.Expired(deadline) {
			if w&acAbortFlag != 0 ||
				l.arena.node(pred).word.CompareAndSwap(acBusy, acBusy|acAbortFlag) {
				l.arena.node(n).word.Store(acEncodePred(pred))
				return ReleaseGlobal, false
			}
			// The CAS lost a race with a release or an abort
			// publication; loop to resolve the new state.
			continue
		}
		spin.Poll(i)
	}
}

// Unlock implements the paper's release protocol: a local hand-off is
// a CAS of the holder's word from (busy, not-aborted) to
// release-local; the colocated flag guarantees the successor is
// viable. If the CAS fails (successor aborted) or no local hand-off is
// wanted, the global lock is released first and the node is then
// marked release-global.
func (l *ACLHLocal) Unlock(p *numa.Proc, wantLocal bool, releaseGlobal func()) {
	n := l.procs[p.ID()].holder
	nd := l.arena.node(n)
	if wantLocal && nd.word.CompareAndSwap(acBusy, acRL) {
		return
	}
	releaseGlobal()
	nd.word.Store(acRG)
}

// Alone reports whether the holder's node is still the queue tail,
// i.e. no later request has been posted (paper §3.6.2). Waiters that
// enqueued and aborted make this a false negative, which the release
// CAS then corrects.
func (l *ACLHLocal) Alone(p *numa.Proc) bool {
	return l.tail.Load() == l.procs[p.ID()].holder
}

// Allocated reports how many arena nodes this lock has ever created;
// tests use it to verify pooling keeps allocation bounded.
func (l *ACLHLocal) Allocated() int64 { return l.arena.next.Load() }
