package core

import (
	"sync/atomic"

	"repro/internal/numa"
	"repro/internal/spin"
)

// lclhNode is one record of the cohort-detecting CLH lock. The waiter
// spins on its predecessor's node; the release state is therefore
// carried on the releaser's own node rather than the successor's (the
// mirror image of LocalMCS).
type lclhNode struct {
	state  atomic.Int32 // lmcsBusy / lmcsLocal / lmcsGlobal
	parker spin.Parker  // wakes whichever thread watches this node
	_      numa.Pad
}

// LocalCLH is a cohort-detecting CLH queue lock: the non-abortable
// sibling of ACLHLocal. The paper presents MCS-based locals (§3.3) and
// notes that "most locks can be used in the cohort locking
// transformation"; CLH qualifies exactly like MCS — implicit-
// predecessor spinning keeps waiting local, release states widen to
// {busy, release-local, release-global}, and cohort detection is a
// tail check. Composing it under a global BO lock yields C-BO-CLH
// (see NewCBOCLH), an additional construction beyond the paper's
// seven.
type LocalCLH struct {
	tail atomic.Pointer[lclhNode]
	_    numa.Pad
	// Per-proc slots: the node currently enqueued (holder, for Alone
	// and Unlock), the predecessor node to recycle, and the node to
	// use for the next acquisition.
	holder []*lclhNode
	pred   []*lclhNode
	next   []*lclhNode
}

// NewLocalCLH returns a cohort-detecting CLH lock.
func NewLocalCLH(topo *numa.Topology) *LocalCLH {
	l := &LocalCLH{
		holder: make([]*lclhNode, topo.MaxProcs()),
		pred:   make([]*lclhNode, topo.MaxProcs()),
		next:   make([]*lclhNode, topo.MaxProcs()),
	}
	for i := range l.next {
		l.next[i] = &lclhNode{parker: spin.MakeParker()}
	}
	dummy := &lclhNode{parker: spin.MakeParker()}
	dummy.state.Store(lmcsGlobal) // fresh lock: next owner acquires G
	l.tail.Store(dummy)
	return l
}

// Lock enqueues and waits on the predecessor's node; the predecessor's
// release state is the inherited state. The predecessor's node is
// adopted for this proc's next acquisition (standard CLH rotation).
func (l *LocalCLH) Lock(p *numa.Proc) Release {
	id := p.ID()
	n := l.next[id]
	n.state.Store(lmcsBusy)
	pred := l.tail.Swap(n)
	pred.parker.Wait(func() bool { return pred.state.Load() != lmcsBusy })
	r := lmcsToRelease(pred.state.Load())
	l.holder[id] = n
	l.pred[id] = pred
	return r
}

// Unlock publishes the release state on the holder's node and recycles
// the predecessor's node.
func (l *LocalCLH) Unlock(p *numa.Proc, r Release) {
	id := p.ID()
	n := l.holder[id]
	l.holder[id] = nil
	l.next[id] = l.pred[id]
	l.pred[id] = nil
	n.state.Store(lmcsFromRelease(r))
	n.parker.Wake()
}

// Alone reports whether the holder's node is still the tail: no later
// request has been posted. Unlike MCS there is no link to lag, so no
// false positives occur — only benign false negatives are impossible
// too (the tail moves exactly when a request enqueues, and CLH waiters
// cannot abort).
func (l *LocalCLH) Alone(p *numa.Proc) bool {
	return l.tail.Load() == l.holder[p.ID()]
}
