package core

import (
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/numa"
	"repro/internal/spin"
)

func TestGlobalBOLockUnlock(t *testing.T) {
	topo := numa.New(2, 4)
	l := NewGlobalBO()
	p := topo.Proc(0)
	for i := 0; i < 100; i++ {
		l.Lock(p)
		l.Unlock(p)
	}
}

func TestGlobalBOTryLockDeadline(t *testing.T) {
	topo := numa.New(2, 4)
	l := NewGlobalBO()
	p0, p1 := topo.Proc(0), topo.Proc(1)
	l.Lock(p0)
	if l.TryLock(p1, spin.Deadline(2*time.Millisecond)) {
		t.Fatal("TryLock succeeded on a held lock")
	}
	l.Unlock(p0)
	if !l.TryLock(p1, spin.Deadline(time.Second)) {
		t.Fatal("TryLock failed on a free lock")
	}
	l.Unlock(p1)
}

// TestGlobalBOThreadOblivious verifies the defining property: the
// unlock may be performed by a different thread than the lock.
func TestGlobalBOThreadOblivious(t *testing.T) {
	topo := numa.New(2, 4)
	l := NewGlobalBO()
	l.Lock(topo.Proc(0))
	done := make(chan struct{})
	go func() {
		l.Unlock(topo.Proc(1)) // different thread releases
		close(done)
	}()
	<-done
	l.Lock(topo.Proc(2)) // must be acquirable again
	l.Unlock(topo.Proc(2))
}

// TestGlobalMCSThreadOblivious exercises the §3.4 machinery: the
// thread that enqueued the global MCS node is not the thread that
// releases, so the node must circulate through the owner's pool.
func TestGlobalMCSThreadOblivious(t *testing.T) {
	topo := numa.New(2, 8)
	l := NewGlobalMCS(topo)

	// Proc 0's goroutine acquires; proc 1's goroutine releases.
	// Repeat enough times that pool recycling must work.
	for round := 0; round < 200; round++ {
		acquired := make(chan struct{})
		released := make(chan struct{})
		go func() {
			l.Lock(topo.Proc(0))
			close(acquired)
		}()
		go func() {
			<-acquired
			l.Unlock(topo.Proc(1))
			close(released)
		}()
		select {
		case <-released:
		case <-time.After(30 * time.Second):
			t.Fatal("cross-thread release stalled")
		}
	}
}

func TestGlobalMCSContention(t *testing.T) {
	topo := numa.New(4, 16)
	l := NewGlobalMCS(topo)
	var counter int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			p := topo.Proc(id)
			for k := 0; k < 500; k++ {
				l.Lock(p)
				counter++
				l.Unlock(p)
			}
		}(i)
	}
	wg.Wait()
	if counter != 16*500 {
		t.Fatalf("counter = %d, want %d", counter, 16*500)
	}
}

// TestGlobalMCSPoolRecycles verifies nodes return to their owner's
// pool rather than leaking: repeated lock/unlock by the same proc must
// reuse one node.
func TestGlobalMCSPoolRecycles(t *testing.T) {
	topo := numa.New(2, 4)
	l := NewGlobalMCS(topo)
	p := topo.Proc(0)
	l.Lock(p)
	l.Unlock(p)
	first := l.pools[0].pop()
	if first == nil {
		t.Fatal("node not returned to pool after release")
	}
	l.pools[0].push(first)
	l.Lock(p)
	l.Unlock(p)
	second := l.pools[0].pop()
	if second != first {
		t.Fatal("pool did not recycle the same node")
	}
}

// Property: LocalTicket's Alone is exactly "no later request", derived
// from the counters.
func TestLocalTicketAloneProperty(t *testing.T) {
	topo := numa.New(1, 8)
	f := func(waiters uint8) bool {
		n := int(waiters%6) + 1 // 1..6 extra requesters
		l := NewLocalTicket(topo)
		p := topo.Proc(0)
		if l.Lock(p) != ReleaseGlobal {
			return false
		}
		if !l.Alone(p) {
			return false
		}
		var wg sync.WaitGroup
		acquired := make(chan Release, n)
		for i := 1; i <= n; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				acquired <- l.Lock(topo.Proc(id))
			}(i)
		}
		// Wait until all requests are posted.
		for i := 0; l.Alone(p) || int(l.request.Load()) != n+1; i++ {
			spin.Poll(i)
		}
		if l.Alone(p) {
			return false // waiters posted but Alone still true
		}
		// Drain: hand off locally down the chain.
		l.Unlock(p, ReleaseLocal)
		for i := 0; i < n; i++ {
			r := <-acquired
			if r != ReleaseLocal {
				return false
			}
			// Each successive holder passes on locally; the last
			// releases globally.
			holder := topo.Proc(0) // ticket lock ignores proc identity
			if i < n-1 {
				l.Unlock(holder, ReleaseLocal)
			} else {
				l.Unlock(holder, ReleaseGlobal)
			}
		}
		wg.Wait()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// The ABO local lock's rescue path: a releaser posts a local hand-off,
// the only waiter aborts concurrently; either the waiter rescues the
// hand-off (late success) or the releaser reclaims it (global release),
// but the lock can never strand. Hammered to cover both interleavings.
func TestABOLocalHandoffAbortRace(t *testing.T) {
	topo := numa.New(1, 8)
	for round := 0; round < 300; round++ {
		l := NewABOLocal(LocalBOBackoff())
		p0, p1 := topo.Proc(0), topo.Proc(1)
		if _, ok := l.TryLock(p0, spin.Deadline(time.Second)); !ok {
			t.Fatal("setup acquire failed")
		}
		got := make(chan bool, 1)
		go func() {
			// Tiny patience: the abort races the hand-off below.
			_, ok := l.TryLock(p1, spin.Deadline(time.Duration(round%5)*time.Microsecond))
			got <- ok
		}()
		globalReleased := false
		l.Unlock(p0, true, func() { globalReleased = true })
		waiterGotIt := <-got
		if waiterGotIt {
			// Lock is held by the waiter; it must release cleanly.
			l.Unlock(p1, false, func() { globalReleased = true })
		}
		if !globalReleased {
			// Hand-off stood but nobody holds it only if the waiter
			// acquired; otherwise the releaser must have reclaimed.
			if !waiterGotIt {
				t.Fatalf("round %d: hand-off stranded: no waiter, global kept", round)
			}
		}
		// Lock must be reacquirable afterwards.
		r, ok := l.TryLock(topo.Proc(2), spin.Deadline(time.Second))
		if !ok {
			t.Fatalf("round %d: lock unusable after race", round)
		}
		l.Unlock(topo.Proc(2), false, func() {})
		_ = r
	}
}
