// Package cohort is a Go implementation of lock cohorting, the general
// technique for building NUMA-aware locks of Dice, Marathe and Shavit
// (PPoPP 2012), together with the seven cohort locks the paper
// presents: C-BO-BO, C-TKT-TKT, C-BO-MCS, C-TKT-MCS, C-MCS-MCS and the
// abortable A-C-BO-BO and A-C-BO-CLH.
//
// Beyond the paper it carries four extensions from the same design
// lineage: the compact NUMA-aware lock (NewCNA), which gets cohort-
// style locality out of a single queue; generic concurrency
// restriction (NewRestricted), which wraps any lock with per-cluster
// admission control so saturation cannot collapse throughput;
// reader-writer cohorting (NewRWCohort, NewRWPerCluster) — the
// authors' PPoPP'13 follow-up — which adds per-cluster reader counters
// over any writer lock so read-mostly workloads scale across clusters;
// and combining execution (NewCombining), flat-combining-style
// delegated critical sections that run same-cluster batches under a
// single acquisition of any underlying lock — including a
// load-adaptive variant (NewCombiningAdaptive) whose patience and
// harvest depth track a per-cluster occupancy estimate, and a
// shared-mode executor face (ExecFromRWLock) that batches read-only
// sections under one shared acquisition — with NewRWCombining (and
// NewRWCombiningAdaptive) going further: an elected per-cluster
// reader-combiner harvests same-cluster read closures and runs the
// whole batch under a single shared acquisition.
//
// # Model
//
// A cohort lock composes a thread-oblivious global lock with one
// cohort-detecting local lock per NUMA cluster. Threads acquire their
// cluster's local lock and, only when the hand-off state requires it,
// the global lock; a releaser that detects waiting same-cluster
// threads passes ownership within the cluster without touching the
// global lock. Long runs of same-cluster critical sections keep both
// lock metadata and the data the critical section touches in the
// cluster's cache, which is where the scalability comes from.
//
// Because Go's runtime hides OS threads, cluster identity is explicit:
// a Topology declares the cluster layout, and each worker goroutine
// holds a *Proc handle that fixes its cluster and supplies the
// per-thread state queue locks need. All lock operations take the
// Proc. One goroutine per Proc at a time; Procs are reusable after a
// goroutine finishes.
//
// # Quick start
//
//	topo := cohort.NewTopology(4, 16) // 4 clusters, up to 16 workers
//	lock := cohort.NewCBOMCS(topo)
//	for i := 0; i < 16; i++ {
//	    go func(p *cohort.Proc) {
//	        lock.Lock(p)
//	        // critical section
//	        lock.Unlock(p)
//	    }(topo.Proc(i))
//	}
//
// # Building custom cohort locks
//
// The transformation is generic: any lock satisfying GlobalLock
// (thread-oblivious) can be combined with per-cluster locks satisfying
// LocalLock (cohort-detecting) via New; abortable variants compose via
// NewAbortable. See examples/custom for a complete program.
package cohort

import (
	"time"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/numa"
)

// Topology describes the simulated NUMA machine: a number of symmetric
// clusters and a bound on concurrent workers.
type Topology = numa.Topology

// Proc is one logical processor handle; every lock operation requires
// the calling goroutine's Proc.
type Proc = numa.Proc

// NewTopology returns a topology with the given cluster count and
// maximum worker count, assigning procs to clusters round-robin.
func NewTopology(clusters, maxProcs int) *Topology {
	return numa.New(clusters, maxProcs)
}

// Lock is a mutual-exclusion lock operating on Proc handles.
type Lock interface {
	Lock(p *Proc)
	Unlock(p *Proc)
}

// TryLock is an abortable lock: TryLockFor gives up (returning false)
// once patience expires.
type TryLock interface {
	TryLockFor(p *Proc, patience time.Duration) bool
	Unlock(p *Proc)
}

// Release is the hand-off state a cohort local lock is released in;
// see the package documentation of the transformation.
type Release = core.Release

// Hand-off states.
const (
	// ReleaseGlobal: the global lock was released; the next local
	// owner must acquire it.
	ReleaseGlobal = core.ReleaseGlobal
	// ReleaseLocal: the next local owner inherits the global lock.
	ReleaseLocal = core.ReleaseLocal
)

// GlobalLock is the contract for the global component of a cohort
// lock: mutual exclusion whose unlock may run on a different thread
// than the matching lock.
type GlobalLock = core.Global

// LocalLock is the contract for the per-cluster component: Lock
// reports the inherited release state, Unlock releases in a given
// state, and Alone implements the paper's cohort-detection predicate
// (false positives allowed, false negatives forbidden).
type LocalLock = core.Local

// AbortableGlobalLock and AbortableLocalLock are the strengthened
// contracts for abortable cohort locks (paper §3.6); see
// internal/core documentation for the exact viable-successor rules.
type (
	AbortableGlobalLock = core.AbortableGlobal
	AbortableLocalLock  = core.AbortableLocal
)

// CohortLock is the generic cohort lock; it satisfies Lock.
type CohortLock = core.CohortLock

// AbortableCohortLock is the generic abortable cohort lock; it
// satisfies TryLock.
type AbortableCohortLock = core.AbortableCohortLock

// Option configures a cohort lock.
type Option = core.Option

// DefaultHandoffLimit is the paper's bound (64) on consecutive local
// hand-offs before the global lock must be released for fairness.
const DefaultHandoffLimit = core.DefaultHandoffLimit

// WithHandoffLimit overrides the hand-off bound: n > 0 sets the bound,
// n < 0 removes it (maximum throughput, unbounded unfairness).
func WithHandoffLimit(n int64) Option { return core.WithHandoffLimit(n) }

// New assembles a cohort lock from a thread-oblivious global lock and
// a per-cluster local lock factory — the paper's transformation,
// directly. newLocal is called once per cluster.
func New(topo *Topology, global GlobalLock, newLocal func(cluster int) LocalLock, opts ...Option) *CohortLock {
	return core.NewCohortLock(topo, global, newLocal, opts...)
}

// NewAbortable assembles an abortable cohort lock; see New.
func NewAbortable(topo *Topology, global AbortableGlobalLock, newLocal func(cluster int) AbortableLocalLock, opts ...Option) *AbortableCohortLock {
	return core.NewAbortableCohortLock(topo, global, newLocal, opts...)
}

// NewCBOBO returns the paper's C-BO-BO lock: global backoff lock over
// per-cluster backoff locks (§3.1).
func NewCBOBO(topo *Topology, opts ...Option) *CohortLock {
	return core.NewCBOBO(topo, opts...)
}

// NewCTKTTKT returns the paper's C-TKT-TKT lock: ticket locks at both
// levels (§3.2). FIFO-fair within its hand-off budget.
func NewCTKTTKT(topo *Topology, opts ...Option) *CohortLock {
	return core.NewCTKTTKT(topo, opts...)
}

// NewCBOMCS returns the paper's C-BO-MCS lock: global backoff lock
// over per-cluster MCS queue locks (§3.3) — the best scaling
// construction in the paper's evaluation.
func NewCBOMCS(topo *Topology, opts ...Option) *CohortLock {
	return core.NewCBOMCS(topo, opts...)
}

// NewCTKTMCS returns the paper's C-TKT-MCS lock: global ticket lock
// over per-cluster MCS locks (§3.5).
func NewCTKTMCS(topo *Topology, opts ...Option) *CohortLock {
	return core.NewCTKTMCS(topo, opts...)
}

// NewCMCSMCS returns the paper's C-MCS-MCS lock: MCS at both levels,
// with global queue nodes circulating through per-proc pools (§3.4).
func NewCMCSMCS(topo *Topology, opts ...Option) *CohortLock {
	return core.NewCMCSMCS(topo, opts...)
}

// NewCBOCLH returns the C-BO-CLH lock: global backoff lock over
// cohort-detecting CLH locks — an additional construction beyond the
// paper's seven, enabled by the generality of the transformation.
func NewCBOCLH(topo *Topology, opts ...Option) *CohortLock {
	return core.NewCBOCLH(topo, opts...)
}

// RWLock is a reader-writer lock operating on Proc handles: Lock and
// Unlock take exclusive mode, RLock and RUnlock take shared mode (any
// number of concurrent readers).
type RWLock = locks.RWMutex

// RWCohortLock is a NUMA-aware reader-writer lock whose writers
// serialize through a cohort lock and whose readers use per-cluster
// counters; see internal/core for the protocol.
type RWCohortLock = core.RWCohortLock

// NewRWCBOMCS returns a reader-writer cohort lock over C-BO-MCS.
func NewRWCBOMCS(topo *Topology, opts ...Option) *RWCohortLock {
	return core.NewRWCBOMCS(topo, opts...)
}

// NewRWCohort wraps any fresh cohort lock into a reader-writer cohort
// lock: per-cluster reader counters over cohort-ordered writers.
func NewRWCohort(topo *Topology, writers *CohortLock) *RWCohortLock {
	return core.NewRWCohort(topo, writers)
}

// RWPerClusterLock is the generic reader-writer construction: padded
// per-cluster reader counters over an arbitrary writer lock, so
// readers on different clusters never exchange cache lines.
type RWPerClusterLock = locks.RWPerCluster

// NewRWPerCluster builds the reader-writer construction over any
// writer lock (a cohort lock, a CNA lock, a plain MCS — the writer
// medium is pluggable). The writer lock must be fresh.
func NewRWPerCluster(topo *Topology, writers Lock) *RWPerClusterLock {
	return locks.NewRWPerCluster(topo, writers)
}

// RWFromLock adapts any Lock to the RWLock interface by taking shared
// mode exclusively — correct, just not concurrent — so exclusive locks
// slot into reader-writer-shaped code unchanged.
func RWFromLock(m Lock) RWLock { return locks.RWFromMutex(m) }

// NewACBOBO returns the paper's abortable A-C-BO-BO lock (§3.6.1).
func NewACBOBO(topo *Topology, opts ...Option) *AbortableCohortLock {
	return core.NewACBOBO(topo, opts...)
}

// NewACBOCLH returns the paper's abortable A-C-BO-CLH lock (§3.6.2),
// the first NUMA-aware abortable queue lock.
func NewACBOCLH(topo *Topology, opts ...Option) *AbortableCohortLock {
	return core.NewACBOCLH(topo, opts...)
}

// NewGlobalBO returns a thread-oblivious test-and-test-and-set lock
// suitable as the global component of custom compositions (it also
// satisfies AbortableGlobalLock).
func NewGlobalBO() *core.GlobalBO { return core.NewGlobalBO() }

// NewLocalMCS returns a cohort-detecting MCS lock suitable as the
// local component of custom compositions.
func NewLocalMCS(topo *Topology) LocalLock { return core.NewLocalMCS(topo) }

// NewLocalCLH returns a cohort-detecting CLH lock suitable as the
// local component of custom compositions.
func NewLocalCLH(topo *Topology) LocalLock { return core.NewLocalCLH(topo) }

// CNALock is the compact NUMA-aware queue lock of Dice and Kogan
// (EuroSys 2019): cohort-style locality from a single MCS-shaped queue
// with constant memory. See NewCNA.
type CNALock = locks.CNA

// NewCNA returns a compact NUMA-aware lock for the topology: one
// queue, with remote-cluster waiters deferred onto a secondary list up
// to a bounded same-cluster streak (the cohort locks' fairness knob).
func NewCNA(topo *Topology) *CNALock { return locks.NewCNA(topo) }

// NewCNAStreak is NewCNA with an explicit local-streak bound; zero
// selects the default, negative removes the bound.
func NewCNAStreak(topo *Topology, limit int64) *CNALock {
	return locks.NewCNAStreak(topo, limit)
}

// Executor is delegated mutual exclusion: Exec runs the closure
// inside the executor's exclusion domain — at most one closure at a
// time, each exactly once — and returns when it has run. See
// NewCombining for why a lock would execute your critical section
// instead of letting you hold it.
type Executor = locks.Executor

// CombiningLock turns any Lock into a combining lock: procs post
// closures to per-proc publication slots, and an elected per-cluster
// combiner runs whole same-cluster batches under a single acquisition
// of the underlying lock — flat-combining-style delegated execution,
// the technique FC-MCS derives from, over any lock in the family.
type CombiningLock = locks.Combining

// NewCombining builds a combining executor over a fresh underlying
// lock (the executor owns it; do not Lock/Unlock it directly).
func NewCombining(topo *Topology, underlying Lock) *CombiningLock {
	return locks.NewCombining(topo, underlying)
}

// ExecFromLock adapts any Lock to the Executor interface — one
// acquisition per closure, no combining — so executor-shaped code
// degrades gracefully to the whole lock family.
func ExecFromLock(m Lock) Executor { return locks.ExecFromMutex(m) }

// AdaptiveCombiningLock is CombiningLock with the election patience
// window and harvest pass count driven by a per-cluster occupancy
// estimate (posted requests in flight) instead of fixed constants:
// idle collapses to an eager one-pass bypass, contention grows both
// knobs for longer locality-preserving batches. The estimate is
// exposed through Occupancy / OccupancyEstimate.
type AdaptiveCombiningLock = locks.CombiningAdaptive

// NewCombiningAdaptive builds a load-adaptive combining executor over
// a fresh underlying lock (the executor owns it; do not Lock/Unlock it
// directly).
func NewCombiningAdaptive(topo *Topology, underlying Lock) *AdaptiveCombiningLock {
	return locks.NewCombiningAdaptive(topo, underlying)
}

// RWExecutor is delegated execution with a shared mode: ExecShared
// closures may run concurrently with one another but never with an
// Exec closure — the seam a read-mostly structure uses to hand whole
// batches of read-only critical sections to the lock in one shared
// acquisition.
type RWExecutor = locks.RWExecutor

// ExecFromRWLock adapts any RWLock to the RWExecutor interface — one
// acquisition per closure, shared closures under shared mode — so
// shared-executor-shaped code runs over the whole reader-writer
// family.
func ExecFromRWLock(l RWLock) RWExecutor { return locks.ExecFromRWMutex(l) }

// RWCombiningLock is the read-side combining executor: exclusive
// closures run through a CombiningLock over the underlying lock, and
// shared closures are posted to per-cluster publication slots where
// an elected reader-combiner runs whole harvested same-cluster
// batches under ONE shared acquisition — N overlapping same-cluster
// reads cost one RLock instead of N. A lone reader bypasses the
// machinery (its own RLock, no election), so idle read traffic pays
// nothing; SharedOps/SharedBatches report the amortization alongside
// the exclusive side's Ops/Batches.
type RWCombiningLock = locks.RWCombining

// NewRWCombining builds a read-side combining executor over a fresh
// reader-writer lock (the executor owns it; do not lock it directly).
func NewRWCombining(topo *Topology, underlying RWLock) *RWCombiningLock {
	return locks.NewRWCombining(topo, underlying)
}

// AdaptiveRWCombiningLock is RWCombiningLock with the occupancy-
// adaptive election policy of AdaptiveCombiningLock on both modes:
// patience and harvest depth track per-cluster posted-closure
// occupancy, and the estimate (exclusive + shared) is exposed through
// Occupancy / OccupancyEstimate.
type AdaptiveRWCombiningLock = locks.RWCombiningAdaptive

// NewRWCombiningAdaptive builds a load-adaptive read-side combining
// executor over a fresh reader-writer lock (the executor owns it; do
// not lock it directly).
func NewRWCombiningAdaptive(topo *Topology, underlying RWLock) *AdaptiveRWCombiningLock {
	return locks.NewRWCombiningAdaptive(topo, underlying)
}

// RestrictedLock wraps any Lock with generic concurrency restriction
// (Dice & Kogan, 2019): at most K waiters per cluster compete for the
// inner lock, the surplus parks FIFO. See NewRestricted.
type RestrictedLock = core.Restricted

// NewRestricted applies admission control around inner: at most
// perCluster waiters per cluster compete at once (non-positive selects
// a GOMAXPROCS-derived default). Under saturation this keeps
// throughput flat instead of collapsing as threads are added.
func NewRestricted(topo *Topology, inner Lock, perCluster int) *RestrictedLock {
	return core.NewRestricted(topo, inner, perCluster)
}

// Interface conformance checks.
var (
	_ Lock       = (*CohortLock)(nil)
	_ TryLock    = (*AbortableCohortLock)(nil)
	_ Lock       = (*CNALock)(nil)
	_ Lock       = (*RestrictedLock)(nil)
	_ RWLock     = (*RWCohortLock)(nil)
	_ RWLock     = (*RWPerClusterLock)(nil)
	_ Executor   = (*CombiningLock)(nil)
	_ Executor   = (*AdaptiveCombiningLock)(nil)
	_ RWExecutor = (*RWCombiningLock)(nil)
	_ RWExecutor = (*AdaptiveRWCombiningLock)(nil)
)
