// Command kvbench regenerates the paper's Table 1: memcached-style
// key-value store scalability under every lock, for read-heavy
// (90% get), mixed (50%) and write-heavy (10% get) workloads. Each
// cell is the speedup over the single-threaded pthread-lock run of the
// same mix, exactly as the paper normalizes.
//
// The default lock columns are the paper's Table 1 set plus the
// extension locks (CNA and GCR-restricted variants), so the standard
// tables track the growing lock family; -locks overrides the list.
//
// Beyond the paper, -shards sweeps the sharded store: one lock
// instance per shard (built from the registry's factories), with
// -placement choosing how shards are homed on clusters and -affinity
// biasing each worker's keys toward its own cluster's shards. Multiple
// shard counts additionally emit a shard-scaling table, and -json
// emits every measured cell as a JSON record for trajectory tooling.
//
// -reads switches to the reader-writer read-path table: a read-mostly
// mix at the given fraction (e.g. -reads=0.99), with two columns per
// reader-writer lock — shared-mode Gets against the same lock driven
// through its exclusive path (`<name>/x`) — across every -shards
// count. This is the Table-1-style exhibit for the cohort line's RW
// follow-up: on read-mostly traffic shared mode should pull away from
// every exclusive column. The default column set also includes the
// comb-rw-*/comb-a-rw-* read-combining twins: each runs Gets as read
// closures through the reader-combining executor over its base RW
// lock, with the underlying lock's shared acquisitions counted
// (WrapRWExec interposition), so a second table reports shared ops
// per shared acquisition — the read-side amortization the combiner
// buys on top of shared mode. Their JSON records carry read_combiner
// ("fixed" or "adaptive"); plain RW records omit the field, so older
// envelopes keep comparing.
//
// -batch switches to the batched-pipeline table: workers issue
// MGet/MSet batches of the given size, and every lock column is
// instrumented with an acquisition counter, so alongside the usual
// speedup table an ops-per-acquisition table shows how much work each
// lock amortizes per critical section. comb-* columns (the combining
// executor over the base lock) batch across procs on top of the batch
// APIs' per-call grouping; comb-a-* columns run the load-adaptive
// combiner; rw-* columns run MGet chunks in shared mode; plain columns
// amortize only within each call. comb-* and comb-a-* names are also
// valid in the standard tables, where they run the single-op path
// through delegated execution.
//
// -adaptive emits the adaptive-hot-path exhibit: per shard count,
// (1) fixed vs adaptive combining columns (comb-<l> / comb-a-<l>) with
// speedup and ops-per-acquisition tables, (2) shared vs exclusive
// batched MGet columns for the reader-writer family at a read-mostly
// mix, and (3) a fixed vs adaptive client batch pair (kvload's
// hill-climbing batch sizer against the same ceiling). The tables run
// at one get/set mix — an explicit single -mix, or 50% when -mix is
// left at "all". JSON records carry the new knobs (combiner,
// batch_mode, avg_batch).
//
// -valuemem switches the store's value backend for any table: "heap"
// (the default: values are GC-managed []byte) or "arena" (values live
// in per-shard explicit-free arenas homed on the shard's cluster, off
// the GC heap). Arena cells carry a value_memory knob in their JSON
// records; heap records are unchanged, so pre-arena envelopes stay
// comparable.
//
// -indexmem switches the store's shard-metadata backend for any
// table: "pointer" (the default: items are individual GC allocations
// linked by Go pointers) or "compact" (items live in per-shard
// pointer-free slabs with uint32 index links, so the hash table and
// LRU are off the GC scan path). Compact cells carry an index_memory
// knob in their JSON records; pointer records are unchanged, so
// pre-compact envelopes stay comparable.
//
// -churn emits the memory-backend exhibit directly: per lock, a
// column per value-memory × index-memory combination (heap/arena ×
// pointer/compact; an explicit -indexmem restricts to that index
// mode) on a write-heavy mix with values drawn from [64,512] bytes —
// the overwrite churn that makes heap mode allocate on most sets —
// with four tables: speedup, Go heap allocs per operation, total GC
// pause, and GC mark-assist CPU time. JSON records carry
// allocs_per_op, gc_pause_ms, gc_assist_ms and arena_spills, and
// -compare gates on allocs_per_op or gc_pause_ms rising just as it
// gates on ops_per_sec dropping.
//
// -shardstats prints a per-shard counter table after each standard or
// churn cell: gets, sets, evictions, arena spills, and the maximum
// combining-executor occupancy estimate sampled while the load ran
// (comb-a-* columns only; other locks have no estimator and show "-").
//
// -compare old.json new.json leaves measurement entirely: it diffs two
// kvbench JSON envelopes (the -json output, CI's uploaded artifact)
// cell by cell through internal/benchfmt and exits nonzero when any
// matching cell's throughput regressed by more than
// -regress-threshold — the perf-trajectory gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/cli"
	"repro/internal/kvload"
	"repro/internal/kvstore"
	"repro/internal/locks"
	"repro/internal/numa"
	"repro/internal/registry"
	"repro/internal/stats"
)

type options struct {
	mixes      []int
	threads    []int
	locks      []string
	shards     []int
	clusters   int
	duration   time.Duration
	keyspace   uint64
	affinity   float64
	reads      float64
	batch      int
	adaptive   bool
	churn      bool
	capacity   int
	arenaBytes int
	valueMem   kvstore.ValueMemory
	indexMem   kvstore.IndexMemory
	// indexMemSet records an explicit -indexmem: the churn exhibit
	// sweeps both index modes when the flag is left unset and restricts
	// to the requested one otherwise.
	indexMemSet bool
	shardStat   bool
	placement   kvstore.Placement
	csv         bool
	jsonOut     bool
}

// vmLabel is the records' value_memory identity field: empty for the
// default heap mode, so heap envelopes stay byte-identical to the
// pre-arena format and keep comparing against older artifacts.
func (o options) vmLabel() string {
	if o.valueMem == kvstore.ValueHeap {
		return ""
	}
	return o.valueMem.String()
}

// imLabel is the records' index_memory identity field, same contract
// as vmLabel: empty for the default pointer mode, so pointer
// envelopes stay byte-identical to the pre-compact format.
func imLabel(im kvstore.IndexMemory) string {
	if im == kvstore.IndexPointer {
		return ""
	}
	return im.String()
}

func (o options) imLabel() string { return imLabel(o.indexMem) }

// record is one measured cell, emitted under -json.
type record struct {
	Mix       int     `json:"mix_get_pct"`
	Lock      string  `json:"lock"`
	Threads   int     `json:"threads"`
	Shards    int     `json:"shards"`
	Placement string  `json:"placement"`
	Affinity  float64 `json:"affinity"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Speedup   float64 `json:"speedup_vs_pthread1"`
	// Reads and ReadPath are populated by -reads (RW read-path) runs:
	// the exact read fraction and whether Gets ran in shared or
	// exclusive mode.
	Reads    float64 `json:"read_fraction,omitempty"`
	ReadPath string  `json:"read_path,omitempty"`
	// Batch and OpsPerAcq are populated by -batch runs: the pipeline's
	// batch size and how many operations each acquisition of the
	// underlying lock amortized.
	Batch     int     `json:"batch,omitempty"`
	OpsPerAcq float64 `json:"ops_per_acq,omitempty"`
	// Combiner distinguishes the combining policy of -adaptive runs'
	// executor columns: "fixed" (comb-*) or "adaptive" (comb-a-*).
	Combiner string `json:"combiner,omitempty"`
	// ReadCombiner marks -reads cells whose Gets ran as read closures
	// through a reader-combining executor (comb-rw-* / comb-a-rw-*
	// columns): "fixed" or "adaptive". Plain RW cells omit it, so
	// pre-combining envelopes keep matching. Those cells reuse
	// OpsPerAcq for shared ops per shared acquisition of the base
	// lock.
	ReadCombiner string `json:"read_combiner,omitempty"`
	// BatchMode is the client batching policy of -adaptive runs'
	// pipeline pair: "fixed" issues Batch keys every round, "adaptive"
	// hill-climbs within [1,Batch]; AvgBatch is the average batch the
	// adaptive client actually issued.
	BatchMode string  `json:"batch_mode,omitempty"`
	AvgBatch  float64 `json:"avg_batch,omitempty"`
	// ValueMemory is the value backend knob: "arena" for arena-backed
	// cells, empty (omitted) for the default heap mode so pre-arena
	// envelopes keep matching. -churn cells always set it — both
	// "heap" and "arena" — so the exhibit's heap half never collides
	// with a standard-table cell of the same lock and mix.
	ValueMemory string `json:"value_memory,omitempty"`
	// IndexMemory is the shard-metadata knob: "compact" for slab-index
	// cells, empty (omitted) for the default pointer mode so
	// pre-compact envelopes keep matching.
	IndexMemory string `json:"index_memory,omitempty"`
	// AllocsPerOp and GCPauseMs are populated by -churn cells:
	// Go heap allocations per operation and total stop-the-world GC
	// pause over the window. Pointers, because an arena cell's genuine
	// 0.00 must still be emitted where omitempty would drop it.
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	GCPauseMs   *float64 `json:"gc_pause_ms,omitempty"`
	// GCAssistMs is -churn's GC mark-assist CPU time over the window:
	// concurrent mark work stolen from the worker goroutines, the cost
	// that scales with pointer-mode metadata even when pauses stay
	// short.
	GCAssistMs *float64 `json:"gc_assist_ms,omitempty"`
	// Spills counts values that fell back to the GC heap because a
	// shard's arena was exhausted (arena cells only).
	Spills uint64 `json:"arena_spills,omitempty"`
}

func main() {
	var (
		mixFlag       = flag.String("mix", "all", "get percentage: 90, 50, 10 or all")
		threadsFlag   = flag.String("threads", "1,4,8,16,32,64,96,128", "comma-separated thread counts (paper's rows)")
		locksFlag     = flag.String("locks", "", "override lock list (default: the paper's Table 1 columns)")
		shardsFlag    = flag.String("shards", "1", "comma-separated shard counts; 1 reproduces the paper's single cache lock")
		placementFlag = flag.String("placement", "affine", "shard placement: hashmod or affine")
		affinityFlag  = flag.Float64("affinity", 0, "probability a worker's keys target its own cluster's shards [0,1]")
		readsFlag     = flag.Float64("reads", 0, "read fraction for the RW read-path table (e.g. 0.99); >0 replaces -mix and compares shared vs exclusive Gets")
		batchFlag     = flag.Int("batch", 0, "batch size for the batched-pipeline table (e.g. 16); >0 drives MGet/MSet batches and adds an ops-per-acquisition table")
		adaptiveFlag  = flag.Bool("adaptive", false, "emit the adaptive-hot-path tables: fixed vs adaptive combining, shared vs exclusive batched MGet, fixed vs adaptive client batch (one mix: -mix, defaulting to 50)")
		churnFlag     = flag.Bool("churn", false, "emit the value-memory churn tables: heap vs arena columns per lock on varying-size overwrites, with allocs/op and GC-pause tables (one mix: -mix, defaulting to 10)")
		valuememFlag  = flag.String("valuemem", "heap", "value backend for the store: heap or arena")
		indexmemFlag  = flag.String("indexmem", "", "shard-metadata backend: pointer or compact (default pointer; -churn left unset measures both)")
		shardsatFlag  = flag.Bool("shardstats", false, "print per-shard counters (gets/sets/evictions/spills and sampled max combiner occupancy) after each standard or churn cell")
		compareFlag   = flag.Bool("compare", false, "compare two kvbench JSON envelopes (args: old.json new.json) and exit nonzero on throughput regressions")
		regressFlag   = flag.Float64("regress-threshold", benchfmt.DefaultRegressionThreshold, "fractional ops/s drop -compare flags as a regression")
		clustersFlag  = flag.Int("clusters", 4, "NUMA clusters to simulate")
		durationFlag  = flag.Duration("duration", 300*time.Millisecond, "measurement window per cell")
		keysFlag      = flag.Uint64("keys", 50_000, "distinct keys (pre-populated)")
		capFlag       = flag.Int("capacity", 0, "store item capacity override (0 = the tables' defaults; size above -keys to keep the whole keyspace resident)")
		arenaFlag     = flag.Int("arenabytes", 0, "arena value-memory size override in bytes (0 = the store's default; size at keys*maxval to keep large keyspaces spill-free)")
		csvFlag       = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonFlag      = flag.Bool("json", false, "emit every measured cell as JSON records instead of tables")
	)
	flag.Parse()

	if *compareFlag {
		if flag.NArg() != 2 {
			fmt.Fprintf(os.Stderr, "kvbench: -compare takes exactly two arguments: old.json new.json\n")
			os.Exit(2)
		}
		os.Exit(compareEnvelopes(flag.Arg(0), flag.Arg(1), *regressFlag))
	}

	const tool = "kvbench"
	opt := options{
		clusters:   *clustersFlag,
		duration:   *durationFlag,
		keyspace:   *keysFlag,
		capacity:   *capFlag,
		arenaBytes: *arenaFlag,
		affinity:   *affinityFlag,
		reads:      *readsFlag,
		batch:      *batchFlag,
		adaptive:   *adaptiveFlag,
		churn:      *churnFlag,
		shardStat:  *shardsatFlag,
		csv:        *csvFlag,
		jsonOut:    *jsonFlag,
	}
	lockNames, err := cli.Locks(*locksFlag)
	if err != nil {
		cli.Die(tool, err)
	}
	opt.locks = lockNames
	vm, err := cli.ValueMemory(*valuememFlag)
	if err != nil {
		cli.Die(tool, err)
	}
	opt.valueMem = vm
	if *indexmemFlag != "" {
		im, err := cli.IndexMemory(*indexmemFlag)
		if err != nil {
			cli.Die(tool, err)
		}
		opt.indexMem = im
		opt.indexMemSet = true
	}
	switch *mixFlag {
	case "all":
		opt.mixes = []int{90, 50, 10}
	case "90", "50", "10":
		opt.mixes = []int{atoi(*mixFlag)}
	default:
		cli.Dief(tool, "-mix must be 90, 50, 10 or all")
	}
	threads, err := cli.ParseIntList(*threadsFlag)
	if err != nil {
		cli.Dief(tool, "bad -threads: %v", err)
	}
	opt.threads = threads
	shards, err := cli.ParseIntList(*shardsFlag)
	if err != nil {
		cli.Dief(tool, "bad -shards: %v", err)
	}
	opt.shards = shards
	opt.placement, err = cli.Placement(*placementFlag)
	if err != nil {
		cli.Die(tool, err)
	}
	if err := cli.Fraction("affinity", opt.affinity); err != nil {
		cli.Die(tool, err)
	}
	if err := cli.Fraction("reads", opt.reads); err != nil {
		cli.Die(tool, err)
	}
	if opt.batch < 0 {
		cli.Dief(tool, "negative -batch %d", opt.batch)
	}
	if opt.batch > 0 && opt.reads > 0 && !opt.adaptive {
		cli.Dief(tool, "-batch and -reads select different tables; pick one (or -adaptive, which uses both)")
	}
	if (opt.batch > 0 || opt.adaptive) && opt.affinity > 0 {
		cli.Dief(tool, "-affinity is a per-operation knob; unsupported with batched pipelines")
	}
	if opt.churn {
		if opt.batch > 0 || opt.reads > 0 || opt.adaptive {
			cli.Dief(tool, "-churn selects its own table; it combines with none of -batch, -reads, -adaptive")
		}
		if opt.valueMem != kvstore.ValueHeap {
			cli.Dief(tool, "-churn measures both value-memory modes itself; -valuemem applies to the other tables")
		}
		// The churn tables run at a single mix, defaulting to the
		// write-heavy workload where value turnover actually happens.
		if *mixFlag == "all" {
			opt.mixes = []int{10}
		}
	}
	if opt.adaptive {
		// The adaptive tables pick their own defaults for the knobs the
		// user left unset: a 16-key pipeline and a 90% read mix. The
		// client-batch table needs a ceiling the sizer can move within,
		// so a degenerate pipeline is rejected up front rather than
		// after the first tables have already burned their windows.
		if opt.batch == 0 {
			opt.batch = 16
		}
		if opt.batch < 2 {
			cli.Dief(tool, "-adaptive needs -batch > 1 (the adaptive client sizes batches within [1,batch])")
		}
		if opt.reads == 0 {
			opt.reads = 0.9
		}
		// The adaptive tables run at a single mix; the -mix=all default
		// would silently mean "just the first", so it resolves to the
		// mixed workload instead. An explicit single -mix is honored.
		if *mixFlag == "all" {
			opt.mixes = []int{50}
		}
	}
	if len(opt.locks) == 0 {
		if opt.churn {
			// The churn exhibit doubles every lock into a heap/arena
			// column pair; a compact headline set keeps the table legible.
			opt.locks = []string{"mcs", "c-bo-mcs", "cna"}
		} else if opt.adaptive {
			// Base locks whose comb-/comb-a- twins the combining tables
			// race; the shared-read table uses the rw-* family.
			opt.locks = []string{"mcs", "c-bo-mcs", "cna"}
		} else if opt.batch > 0 {
			// The batched table races each headline lock against its
			// combining twin, so amortization-from-batching and
			// amortization-from-combining land side by side.
			opt.locks = []string{"mcs", "comb-mcs", "c-bo-mcs", "comb-c-bo-mcs", "cna", "comb-cna"}
		} else if opt.reads > 0 {
			// The RW table defaults to the native reader-writer family —
			// each gets a shared and an exclusive column — plus the
			// read-combining twins (shared-only columns with a shared
			// ops-per-acquisition metric).
			opt.locks = append(registry.RWNames(), registry.RWCombiningNames()...)
		} else {
			// The paper's Table 1 columns plus the headline extension locks,
			// so the standard tables track the growing family. (mallocbench
			// keeps the bare paper set for Table 2.)
			opt.locks = append(registry.TableNames(), "cna", "gcr-mcs")
		}
	}
	if err := run(opt); err != nil {
		fmt.Fprintf(os.Stderr, "kvbench: %v\n", err)
		os.Exit(1)
	}
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	return n
}

func run(opt options) error {
	maxThreads := 0
	for _, t := range opt.threads {
		if t > maxThreads {
			maxThreads = t
		}
	}
	topo := numa.New(opt.clusters, maxThreads)

	var records []record
	switch {
	case opt.churn:
		for _, mix := range opt.mixes {
			recs, err := runChurn(opt, topo, mix)
			if err != nil {
				return err
			}
			records = append(records, recs...)
		}
	case opt.adaptive:
		recs, err := runAdaptive(opt, topo)
		if err != nil {
			return err
		}
		records = recs
	case opt.reads > 0:
		recs, err := runRW(opt, topo)
		if err != nil {
			return err
		}
		records = recs
	case opt.batch > 0:
		for _, mix := range opt.mixes {
			recs, err := runBatchMix(opt, topo, mix)
			if err != nil {
				return err
			}
			records = append(records, recs...)
		}
	default:
		for _, mix := range opt.mixes {
			recs, err := runMix(opt, topo, mix)
			if err != nil {
				return err
			}
			records = append(records, recs...)
		}
	}
	if opt.jsonOut {
		return benchfmt.Write(os.Stdout, records)
	}
	return nil
}

// applyCapacity applies the -capacity and -arenabytes overrides after
// any sizing: an explicit capacity also resizes the bucket arrays
// (half the item count — ~2-deep chains at full residency), since the
// tables' default 2^15 buckets would hash a million-key store into
// 30-long chains and measure chain walks, not locks.
func applyCapacity(cfg *kvstore.Config, opt options) {
	if opt.capacity > 0 {
		cfg.Capacity = opt.capacity
		cfg.Buckets = opt.capacity / 2
	}
	if opt.arenaBytes > 0 {
		cfg.ArenaBytes = opt.arenaBytes
	}
}

// sizeShards configures the multi-shard slice of cfg. It keeps the
// comparison against the single-shard cell apples-to-apples: every
// keyspace view gets at least the single-shard default capacity and
// bucket count. Under ClusterAffine each cluster's view spans only its
// home-shard group, so size per shard from the smallest group; views
// with more home shards get proportional slack. Parity is exact when
// -shards divides evenly by -clusters and is a power of two (the store
// rounds per-shard buckets up to a power of two).
func sizeShards(cfg *kvstore.Config, opt options, topo *numa.Topology, shards int) {
	cfg.Shards = shards
	cfg.Placement = opt.placement
	cfg.Capacity = 1 << 16
	cfg.Buckets = 1 << 15
	if opt.placement == kvstore.ClusterAffine {
		minGroup := shards / topo.Clusters()
		if minGroup < 1 {
			minGroup = 1
		}
		cfg.Capacity = shards * (1 << 16) / minGroup
		cfg.Buckets = shards * (1 << 15) / minGroup
	}
}

// newStore builds one cell's store: a combining executor per shard
// for comb-* entries, a single pre-built lock on the pre-sharding
// path, one lock instance per shard from the registry factory
// otherwise.
func newStore(opt options, topo *numa.Topology, e registry.Entry, shards int) *kvstore.Store {
	cfg := kvstore.Config{Topo: topo, ValueMemory: opt.valueMem, IndexMemory: opt.indexMem}
	if e.NewExec != nil {
		cfg.NewExec = e.ExecFactory(topo)
		if shards > 1 {
			sizeShards(&cfg, opt, topo, shards)
		}
		applyCapacity(&cfg, opt)
		return kvstore.New(cfg)
	}
	if shards <= 1 {
		cfg.Lock = e.NewMutex(topo)
		applyCapacity(&cfg, opt)
		return kvstore.New(cfg)
	}
	cfg.NewLock = e.MutexFactory(topo)
	sizeShards(&cfg, opt, topo, shards)
	applyCapacity(&cfg, opt)
	return kvstore.New(cfg)
}

// newStoreRW builds one RW-table cell's store. shared selects the
// genuine shared read path; exclusive cells run the same lock
// construction with every Get through exclusive mode (RWFromMutex),
// so the two columns differ only in the read protocol.
func newStoreRW(opt options, topo *numa.Topology, e registry.Entry, shards int, shared bool) *kvstore.Store {
	f := e.RWFactory(topo)
	if !shared {
		inner := f
		f = func() locks.RWMutex { return locks.RWFromMutex(inner()) }
	}
	// MaxBatch tracks the pipeline's batch size when one is set (the
	// -adaptive shared-read table), so a shard group of a client batch
	// is one critical section and the "batch=N" caption describes what
	// actually ran; plain -reads runs keep the store default.
	cfg := kvstore.Config{Topo: topo, MaxBatch: opt.batch, ValueMemory: opt.valueMem, IndexMemory: opt.indexMem}
	if shards <= 1 {
		cfg.RWLock = f()
	} else {
		cfg.NewRWLock = f
		sizeShards(&cfg, opt, topo, shards)
	}
	applyCapacity(&cfg, opt)
	return kvstore.New(cfg)
}

// measureBatch runs one batched-pipeline cell: kvload MGet/MSet
// batches of opt.batch against a fresh store whose every lock
// instance carries an acquisition counter. Population acquisitions
// are excluded; the returned amortization covers only the measured
// window. Combining entries (comb-*, comb-a-*) rebuild through
// WrapExec so the counter sits between the combiner and the base lock
// — a combined batch counts as the single acquisition it is; rw-*
// entries count exclusive and shared acquisitions into the same total
// and run MGet chunks through the shared-mode group path.
// adaptiveClient runs kvload's hill-climbing batch sizer against the
// opt.batch ceiling instead of a fixed size; avgBatch reports what it
// actually issued.
func measureBatch(opt options, topo *numa.Topology, e registry.Entry, threads, getPct, shards int, adaptiveClient bool) (tp, opsPerAcq, avgBatch float64, err error) {
	// Every shard's lock sums into one acquisition counter; under a
	// comb-* column the counter sits between the combiner and the base
	// lock, so combined batches count as the single acquisition they
	// are.
	var acquisitions atomic.Uint64
	cfg := kvstore.Config{Topo: topo, MaxBatch: opt.batch, ValueMemory: opt.valueMem, IndexMemory: opt.indexMem}
	switch {
	case e.NewExec != nil:
		// Derived combining entry: rebuild it through WrapExec (the
		// entry's own construction, fixed or adaptive) to interpose the
		// counter on the base lock.
		base := registry.MustLookup(e.Base)
		newMutex := base.MutexFactory(topo)
		cfg.NewExec = func() locks.Executor {
			return e.WrapExec(topo, locks.CountAcquisitions(newMutex(), &acquisitions))
		}
	case e.NewRW != nil:
		newRW := e.NewRW
		cfg.NewRWLock = func() locks.RWMutex {
			return locks.CountRWAcquisitions(newRW(topo), &acquisitions, &acquisitions)
		}
	case e.NewMutex != nil:
		newMutex := e.MutexFactory(topo)
		cfg.NewLock = func() locks.Mutex {
			return locks.CountAcquisitions(newMutex(), &acquisitions)
		}
	default:
		return 0, 0, 0, fmt.Errorf("lock %q cannot guard the store", e.Name)
	}
	if shards > 1 {
		sizeShards(&cfg, opt, topo, shards)
	}
	applyCapacity(&cfg, opt)
	store := kvstore.New(cfg)
	kvload.PopulateClusters(store, topo, opt.keyspace, 128)
	runtime.GC() // population litters the heap; keep GC out of the window
	before := acquisitions.Load()
	lcfg := kvload.DefaultConfig(topo, threads, getPct)
	lcfg.Duration = opt.duration
	lcfg.Keyspace = opt.keyspace
	lcfg.BatchSize = opt.batch
	lcfg.BatchAdaptive = adaptiveClient
	res, err := kvload.Run(lcfg, store)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("%s @%d x%d shards (batch=%d): %w", e.Name, threads, shards, opt.batch, err)
	}
	if acq := acquisitions.Load() - before; acq > 0 {
		opsPerAcq = float64(res.Ops) / float64(acq)
	}
	return res.Throughput(), opsPerAcq, res.AvgBatch(), nil
}

// runBatchMix emits the batched-pipeline tables for one mix: per
// shard count, a speedup table (normalized to batched pthread@1 on
// one shard) and an ops-per-acquisition table over the same cells.
func runBatchMix(opt options, topo *numa.Topology, getPct int) ([]record, error) {
	base, _, _, err := measureBatch(opt, topo, registry.MustLookup("pthread"), 1, getPct, 1, false)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "batch=%d mix %d%% gets: pthread@1 baseline %.0f ops/s\n", opt.batch, getPct, base)

	entries := make([]registry.Entry, 0, len(opt.locks))
	for _, name := range opt.locks {
		e, err := registry.Find(name)
		if err != nil {
			return nil, err
		}
		if e.NewMutex == nil && e.NewExec == nil && e.NewRW == nil {
			return nil, fmt.Errorf("lock %q is abortable-only and cannot guard the store", name)
		}
		entries = append(entries, e)
	}

	var records []record
	for _, shards := range opt.shards {
		title := fmt.Sprintf("Batched pipeline (batch=%d, %d%% gets): speedup over pthread@1", opt.batch, getPct)
		amortTitle := fmt.Sprintf("Batched pipeline (batch=%d, %d%% gets): ops per lock acquisition", opt.batch, getPct)
		if shards > 1 {
			suffix := fmt.Sprintf(" [%d shards, %s placement]", shards, opt.placement)
			title += suffix
			amortTitle += suffix
		}
		headers := append([]string{"threads"}, opt.locks...)
		tb := stats.NewTable(title, headers...)
		ab := stats.NewTable(amortTitle, headers...)
		for _, n := range opt.threads {
			row := []string{fmt.Sprint(n)}
			amortRow := []string{fmt.Sprint(n)}
			for _, e := range entries {
				tp, opsPerAcq, _, err := measureBatch(opt, topo, e, n, getPct, shards, false)
				if err != nil {
					return nil, err
				}
				placement := opt.placement.String()
				if shards <= 1 {
					placement = "single"
				}
				records = append(records, record{
					Mix: getPct, Lock: e.Name, Threads: n, Shards: shards,
					Placement: placement,
					OpsPerSec: tp, Speedup: stats.Speedup(base, tp),
					Batch: opt.batch, OpsPerAcq: opsPerAcq,
					ValueMemory: opt.vmLabel(), IndexMemory: opt.imLabel(),
				})
				row = append(row, stats.F(stats.Speedup(base, tp), 2))
				amortRow = append(amortRow, stats.F(opsPerAcq, 1))
				fmt.Fprintf(os.Stderr, "ran batch=%d mix=%d%% %-16s threads=%-4d shards=%-3d %.0f ops/s %.1f ops/acq\n",
					opt.batch, getPct, e.Name, n, shards, tp, opsPerAcq)
			}
			tb.AddRow(row...)
			ab.AddRow(amortRow...)
		}
		if !opt.jsonOut {
			fmt.Print(cli.Emit(tb, opt.csv))
			fmt.Println()
			fmt.Print(cli.Emit(ab, opt.csv))
			fmt.Println()
		}
	}
	return records, nil
}

// compareEnvelopes is the -compare mode: diff two kvbench JSON
// envelopes through benchfmt and report regressions. Returns the
// process exit code: 0 clean, 1 regressions flagged, 2 operational
// error.
func compareEnvelopes(oldPath, newPath string, threshold float64) int {
	oldJSON, err := os.ReadFile(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvbench: %v\n", err)
		return 2
	}
	newJSON, err := os.ReadFile(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvbench: %v\n", err)
		return 2
	}
	regs, compared, err := benchfmt.Diff(oldJSON, newJSON, threshold)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvbench: %v\n", err)
		return 2
	}
	fmt.Printf("kvbench compare: %d matching cells, threshold %.0f%%: %d regression(s)\n",
		compared, threshold*100, len(regs))
	for _, r := range regs {
		fmt.Println("  " + r.String())
	}
	if len(regs) > 0 {
		return 1
	}
	return 0
}

// runAdaptive emits the adaptive-hot-path exhibit: per shard count,
// fixed vs adaptive combining (speedup and ops-per-acquisition, the
// comb-<l> / comb-a-<l> twins of each base lock), shared vs exclusive
// batched MGet over the reader-writer family at the -reads fraction,
// and a fixed vs adaptive client batch pair driving the first base
// lock's adaptive combiner. Everything is normalized to the batched
// pthread@1 single-shard baseline, like the -batch tables.
func runAdaptive(opt options, topo *numa.Topology) ([]record, error) {
	getPct := opt.mixes[0]
	base, _, _, err := measureBatch(opt, topo, registry.MustLookup("pthread"), 1, getPct, 1, false)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "adaptive batch=%d mix %d%% gets: pthread@1 baseline %.0f ops/s\n",
		opt.batch, getPct, base)

	// Resolve each named lock to its base entry (comb-*/comb-a-* names
	// are accepted and stripped back), then to its two combining twins.
	type pair struct {
		fixed, adaptive registry.Entry
	}
	var pairs []pair
	for _, name := range opt.locks {
		e, err := registry.Find(name)
		if err != nil {
			return nil, err
		}
		if e.Base != "" {
			e = registry.MustLookup(e.Base)
		}
		if e.NewMutex == nil {
			return nil, fmt.Errorf("lock %q has no blocking face; the combining comparison needs a base lock", name)
		}
		pairs = append(pairs, pair{
			fixed:    registry.MustLookup("comb-" + e.Name),
			adaptive: registry.MustLookup("comb-a-" + e.Name),
		})
	}
	rwEntries := registry.RW()

	var records []record
	for _, shards := range opt.shards {
		placement := opt.placement.String()
		if shards <= 1 {
			placement = "single"
		}
		suffix := ""
		if shards > 1 {
			suffix = fmt.Sprintf(" [%d shards, %s placement]", shards, opt.placement)
		}

		// Table 1: fixed vs adaptive combining, speedup + ops/acq.
		headers := []string{"threads"}
		for _, pr := range pairs {
			headers = append(headers, pr.fixed.Name, pr.adaptive.Name)
		}
		tb := stats.NewTable(fmt.Sprintf("Adaptive combining (batch=%d, %d%% gets): speedup over pthread@1%s", opt.batch, getPct, suffix), headers...)
		ab := stats.NewTable(fmt.Sprintf("Adaptive combining (batch=%d, %d%% gets): ops per lock acquisition%s", opt.batch, getPct, suffix), headers...)
		for _, n := range opt.threads {
			row := []string{fmt.Sprint(n)}
			amortRow := []string{fmt.Sprint(n)}
			for _, pr := range pairs {
				for ci, e := range []registry.Entry{pr.fixed, pr.adaptive} {
					tp, opsPerAcq, _, err := measureBatch(opt, topo, e, n, getPct, shards, false)
					if err != nil {
						return nil, err
					}
					combiner := "fixed"
					if ci == 1 {
						combiner = "adaptive"
					}
					records = append(records, record{
						Mix: getPct, Lock: e.Name, Threads: n, Shards: shards,
						Placement: placement,
						OpsPerSec: tp, Speedup: stats.Speedup(base, tp),
						Batch: opt.batch, OpsPerAcq: opsPerAcq, Combiner: combiner,
						ValueMemory: opt.vmLabel(), IndexMemory: opt.imLabel(),
					})
					row = append(row, stats.F(stats.Speedup(base, tp), 2))
					amortRow = append(amortRow, stats.F(opsPerAcq, 1))
					fmt.Fprintf(os.Stderr, "ran adaptive comb=%-8s %-20s threads=%-4d shards=%-3d %.0f ops/s %.1f ops/acq\n",
						combiner, e.Name, n, shards, tp, opsPerAcq)
				}
			}
			tb.AddRow(row...)
			ab.AddRow(amortRow...)
		}
		if !opt.jsonOut {
			fmt.Print(cli.Emit(tb, opt.csv))
			fmt.Println()
			fmt.Print(cli.Emit(ab, opt.csv))
			fmt.Println()
		}

		// Table 2: shared vs exclusive batched MGet, rw-* family.
		headers = []string{"threads"}
		for _, e := range rwEntries {
			headers = append(headers, e.Name, e.Name+"/x")
		}
		rb := stats.NewTable(fmt.Sprintf("Shared-mode batched reads (batch=%d, %.4g%% gets): speedup over pthread@1%s", opt.batch, opt.reads*100, suffix), headers...)
		for _, n := range opt.threads {
			row := []string{fmt.Sprint(n)}
			for _, e := range rwEntries {
				for _, sharedMode := range []bool{true, false} {
					tp, err := measureRW(opt, topo, e, n, shards, sharedMode)
					if err != nil {
						return nil, err
					}
					path := "exclusive"
					if sharedMode {
						path = "shared"
					}
					records = append(records, record{
						Mix: int(opt.reads*100 + 0.5), Lock: e.Name, Threads: n, Shards: shards,
						Placement: placement,
						OpsPerSec: tp, Speedup: stats.Speedup(base, tp),
						Reads: opt.reads, ReadPath: path, Batch: opt.batch,
						ValueMemory: opt.vmLabel(), IndexMemory: opt.imLabel(),
					})
					row = append(row, stats.F(stats.Speedup(base, tp), 2))
					fmt.Fprintf(os.Stderr, "ran adaptive reads=%g %-14s %-9s threads=%-4d shards=%-3d %.0f ops/s\n",
						opt.reads, e.Name, path, n, shards, tp)
				}
			}
			rb.AddRow(row...)
		}
		if !opt.jsonOut {
			fmt.Print(cli.Emit(rb, opt.csv))
			fmt.Println()
		}

		// Table 3: fixed vs adaptive client batch, driving the first
		// base lock's adaptive combiner — the whole adaptive hot path
		// end to end.
		clientLock := pairs[0].adaptive
		cb := stats.NewTable(fmt.Sprintf("Adaptive client batch over %s (ceiling %d, %d%% gets): speedup over pthread@1%s", clientLock.Name, opt.batch, getPct, suffix),
			"threads", fmt.Sprintf("fixed/b=%d", opt.batch), fmt.Sprintf("adaptive/b<=%d", opt.batch), "avg batch")
		for _, n := range opt.threads {
			row := []string{fmt.Sprint(n)}
			var avg float64
			for _, mode := range []string{"fixed", "adaptive"} {
				tp, _, avgBatch, err := measureBatch(opt, topo, clientLock, n, getPct, shards, mode == "adaptive")
				if err != nil {
					return nil, err
				}
				records = append(records, record{
					Mix: getPct, Lock: clientLock.Name, Threads: n, Shards: shards,
					Placement: placement,
					OpsPerSec: tp, Speedup: stats.Speedup(base, tp),
					Batch: opt.batch, Combiner: "adaptive",
					BatchMode: mode, AvgBatch: avgBatch,
					ValueMemory: opt.vmLabel(), IndexMemory: opt.imLabel(),
				})
				row = append(row, stats.F(stats.Speedup(base, tp), 2))
				if mode == "adaptive" {
					avg = avgBatch
				}
				fmt.Fprintf(os.Stderr, "ran adaptive client=%-8s %-20s threads=%-4d shards=%-3d %.0f ops/s avg batch %.1f\n",
					mode, clientLock.Name, n, shards, tp, avgBatch)
			}
			cb.AddRow(append(row, stats.F(avg, 1))...)
		}
		if !opt.jsonOut {
			fmt.Print(cli.Emit(cb, opt.csv))
			fmt.Println()
		}
	}
	return records, nil
}

// measure runs one (lock, threads, mix, shards) cell against a fresh
// store.
func measure(opt options, topo *numa.Topology, lockName string, threads, getPct, shards int) (float64, error) {
	e, err := registry.Find(lockName)
	if err != nil {
		return 0, err
	}
	if e.NewMutex == nil && e.NewExec == nil {
		return 0, fmt.Errorf("lock %q is abortable-only and cannot guard the store", lockName)
	}
	store := newStore(opt, topo, e, shards)
	kvload.PopulateClusters(store, topo, opt.keyspace, 128)
	runtime.GC() // population litters the heap; keep GC out of the window
	cfg := kvload.DefaultConfig(topo, threads, getPct)
	cfg.Duration = opt.duration
	cfg.Keyspace = opt.keyspace
	cfg.Affinity = opt.affinity
	label := fmt.Sprintf("%s mix=%d%% threads=%d shards=%d", lockName, getPct, threads, shards)
	res, err := runLoad(opt, store, cfg, label)
	if err != nil {
		return 0, fmt.Errorf("%s @%d x%d shards: %w", lockName, threads, shards, err)
	}
	return res.Throughput(), nil
}

// runLoad runs one cell's load, sampling combining-executor occupancy
// and printing the per-shard counter table when -shardstats is set.
func runLoad(opt options, store *kvstore.Store, cfg kvload.Config, label string) (kvload.Result, error) {
	var (
		stop  chan struct{}
		occCh chan []int
		pre   []kvstore.Stats
	)
	if opt.shardStat {
		// Pre-run snapshots make the table cover only the measured
		// window; population would otherwise dwarf its counters.
		pre = make([]kvstore.Stats, store.NumShards())
		for i := range pre {
			pre[i] = store.ShardSnapshot(i)
		}
		stop, occCh = make(chan struct{}), make(chan []int, 1)
		go sampleOccupancy(store, stop, occCh)
	}
	res, err := kvload.Run(cfg, store)
	if opt.shardStat {
		close(stop)
		occ := <-occCh
		if err == nil {
			printShardStats(opt, store, pre, occ, label)
		}
	}
	return res, err
}

// sampleOccupancy polls every shard's combining-executor occupancy
// estimate (locks.EstimateOccupancy behind Store.ShardOccupancy) until
// stop closes, keeping the per-shard maximum. Shards whose lock has no
// estimator — everything but the comb-a-* columns — stay at -1.
func sampleOccupancy(store *kvstore.Store, stop <-chan struct{}, done chan<- []int) {
	max := make([]int, store.NumShards())
	for i := range max {
		max[i] = -1
	}
	for {
		select {
		case <-stop:
			done <- max
			return
		default:
		}
		for i := range max {
			if occ, ok := store.ShardOccupancy(i); ok && occ > max[i] {
				max[i] = occ
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// printShardStats renders one cell's per-shard counters over the
// measured window (pre holds each shard's pre-run snapshot). Under
// -json the table goes to stderr so the envelope on stdout stays
// parseable.
func printShardStats(opt options, store *kvstore.Store, pre []kvstore.Stats, occ []int, label string) {
	tb := stats.NewTable("Shard stats: "+label,
		"shard", "home", "gets", "sets", "evictions", "spills", "max occ")
	for i := 0; i < store.NumShards(); i++ {
		st := store.ShardSnapshot(i)
		occStr := "-"
		if occ[i] >= 0 {
			occStr = fmt.Sprint(occ[i])
		}
		tb.AddRow(fmt.Sprint(i), fmt.Sprint(store.ShardHome(i)),
			fmt.Sprint(st.Gets-pre[i].Gets), fmt.Sprint(st.Sets-pre[i].Sets),
			fmt.Sprint(st.Evictions-pre[i].Evictions), fmt.Sprint(st.Spills-pre[i].Spills), occStr)
	}
	out := os.Stdout
	if opt.jsonOut {
		out = os.Stderr
	}
	fmt.Fprint(out, cli.Emit(tb, opt.csv))
	fmt.Fprintln(out)
}

// Churn workload shape: a write-heavy mix whose set sizes are drawn
// uniformly from [churnValueSize, churnMaxValueSize]. The size spread
// is what makes the exhibit honest — fixed-size overwrites reuse the
// existing buffer in both modes and neither allocates.
const (
	churnValueSize    = 64
	churnMaxValueSize = 512
)

// measureChurn runs one memory-backend cell: the churn workload
// against a fresh store with the given value and index backends,
// returning the load result (allocs/op, GC pause, mark assist) and
// the store's counters (spills).
func measureChurn(opt options, topo *numa.Topology, e registry.Entry, threads, getPct, shards int, mem kvstore.ValueMemory, im kvstore.IndexMemory) (kvload.Result, kvstore.Stats, error) {
	o := opt
	o.valueMem = mem
	o.indexMem = im
	store := newStore(o, topo, e, shards)
	kvload.PopulateClusters(store, topo, opt.keyspace, 128)
	runtime.GC() // population litters the heap; keep GC out of the window
	cfg := kvload.DefaultConfig(topo, threads, getPct)
	cfg.Duration = opt.duration
	cfg.Keyspace = opt.keyspace
	cfg.Affinity = opt.affinity
	cfg.ValueSize = churnValueSize
	cfg.MaxValueSize = churnMaxValueSize
	label := fmt.Sprintf("%s/%s/%s mix=%d%% threads=%d shards=%d", e.Name, mem, im, getPct, threads, shards)
	res, err := runLoad(opt, store, cfg, label)
	if err != nil {
		return res, kvstore.Stats{}, fmt.Errorf("%s/%s/%s @%d x%d shards: %w", e.Name, mem, im, threads, shards, err)
	}
	return res, store.Snapshot(), nil
}

// runChurn emits the memory-backend exhibit for one mix: per shard
// count, a column per lock × value-memory × index-memory combination
// with four tables — speedup over the heap/pointer pthread@1
// baseline, Go heap allocations per operation, total GC pause over
// the window, and GC mark-assist CPU time. An explicit -indexmem
// restricts the index-mode sweep to that mode; by default both
// pointer and compact run, which is the pointer-vs-compact GC
// exhibit the compact layout is judged by.
func runChurn(opt options, topo *numa.Topology, getPct int) ([]record, error) {
	baseRes, _, err := measureChurn(opt, topo, registry.MustLookup("pthread"), 1, getPct, 1, kvstore.ValueHeap, kvstore.IndexPointer)
	if err != nil {
		return nil, err
	}
	base := baseRes.Throughput()
	fmt.Fprintf(os.Stderr, "churn mix %d%% gets, values %d..%dB: pthread@1 heap/pointer baseline %.0f ops/s, %.2f allocs/op\n",
		getPct, churnValueSize, churnMaxValueSize, base, baseRes.AllocsPerOp())

	entries := make([]registry.Entry, 0, len(opt.locks))
	for _, name := range opt.locks {
		e, err := registry.Find(name)
		if err != nil {
			return nil, err
		}
		if e.NewMutex == nil && e.NewExec == nil {
			return nil, fmt.Errorf("lock %q is abortable-only and cannot guard the store", name)
		}
		entries = append(entries, e)
	}
	modes := []kvstore.ValueMemory{kvstore.ValueHeap, kvstore.ValueArena}
	imodes := []kvstore.IndexMemory{kvstore.IndexPointer, kvstore.IndexCompact}
	if opt.indexMemSet {
		imodes = []kvstore.IndexMemory{opt.indexMem}
	}
	// Column label per (value, index) combination: pointer columns keep
	// the pre-compact "/heap" "/arena" names, compact columns append
	// "+c" — "mcs/heap+c" — so old and new table layouts line up.
	colSuffix := func(mem kvstore.ValueMemory, im kvstore.IndexMemory) string {
		s := "/" + mem.String()
		if im == kvstore.IndexCompact {
			s += "+c"
		}
		return s
	}

	var records []record
	for _, shards := range opt.shards {
		suffix := ""
		if shards > 1 {
			suffix = fmt.Sprintf(" [%d shards, %s placement]", shards, opt.placement)
		}
		caption := fmt.Sprintf("(%d%% gets, values %d..%dB)", getPct, churnValueSize, churnMaxValueSize)
		headers := []string{"threads"}
		for _, e := range entries {
			for _, mem := range modes {
				for _, im := range imodes {
					headers = append(headers, e.Name+colSuffix(mem, im))
				}
			}
		}
		tb := stats.NewTable(fmt.Sprintf("Value churn %s: speedup over pthread@1 heap%s", caption, suffix), headers...)
		ab := stats.NewTable(fmt.Sprintf("Value churn %s: Go heap allocs per op%s", caption, suffix), headers...)
		gb := stats.NewTable(fmt.Sprintf("Value churn %s: total GC pause ms%s", caption, suffix), headers...)
		xb := stats.NewTable(fmt.Sprintf("Value churn %s: GC mark-assist CPU ms%s", caption, suffix), headers...)
		for _, n := range opt.threads {
			row := []string{fmt.Sprint(n)}
			aRow := []string{fmt.Sprint(n)}
			gRow := []string{fmt.Sprint(n)}
			xRow := []string{fmt.Sprint(n)}
			for _, e := range entries {
				for _, mem := range modes {
					for _, im := range imodes {
						res, st, err := measureChurn(opt, topo, e, n, getPct, shards, mem, im)
						if err != nil {
							return nil, err
						}
						placement := opt.placement.String()
						if shards <= 1 {
							placement = "single"
						}
						tp := res.Throughput()
						allocs := res.AllocsPerOp()
						pause := float64(res.GCPauseNs) / 1e6
						assist := float64(res.GCAssistNs) / 1e6
						records = append(records, record{
							Mix: getPct, Lock: e.Name, Threads: n, Shards: shards,
							Placement: placement,
							OpsPerSec: tp, Speedup: stats.Speedup(base, tp),
							ValueMemory: mem.String(), IndexMemory: imLabel(im),
							AllocsPerOp: &allocs, GCPauseMs: &pause, GCAssistMs: &assist,
							Spills: st.Spills,
						})
						row = append(row, stats.F(stats.Speedup(base, tp), 2))
						aRow = append(aRow, stats.F(allocs, 2))
						gRow = append(gRow, stats.F(pause, 2))
						xRow = append(xRow, stats.F(assist, 2))
						fmt.Fprintf(os.Stderr, "ran churn mix=%d%% %-10s %-5s %-7s threads=%-4d shards=%-3d %.0f ops/s %.2f allocs/op %.2fms gc %.2fms assist (%d spills)\n",
							getPct, e.Name, mem, im, n, shards, tp, allocs, pause, assist, st.Spills)
					}
				}
			}
			tb.AddRow(row...)
			ab.AddRow(aRow...)
			gb.AddRow(gRow...)
			xb.AddRow(xRow...)
		}
		if !opt.jsonOut {
			fmt.Print(cli.Emit(tb, opt.csv))
			fmt.Println()
			fmt.Print(cli.Emit(ab, opt.csv))
			fmt.Println()
			fmt.Print(cli.Emit(gb, opt.csv))
			fmt.Println()
			fmt.Print(cli.Emit(xb, opt.csv))
			fmt.Println()
		}
	}
	return records, nil
}

// measureRW runs one RW-table cell: the -reads fraction against a
// fresh store whose Gets — MGet chunks included — run shared or
// exclusive. opt.batch > 0 (the -adaptive shared-read table) drives
// the batched pipeline; plain -reads runs keep the per-op loop
// (opt.batch is 0 there, and batching excludes affinity biasing).
func measureRW(opt options, topo *numa.Topology, e registry.Entry, threads, shards int, shared bool) (float64, error) {
	store := newStoreRW(opt, topo, e, shards, shared)
	kvload.PopulateClusters(store, topo, opt.keyspace, 128)
	runtime.GC() // population litters the heap; keep GC out of the window
	cfg := kvload.DefaultConfig(topo, threads, int(opt.reads*100))
	cfg.Duration = opt.duration
	cfg.Keyspace = opt.keyspace
	cfg.Affinity = opt.affinity
	cfg.ReadFraction = opt.reads
	cfg.BatchSize = opt.batch
	res, err := kvload.Run(cfg, store)
	if err != nil {
		return 0, fmt.Errorf("%s @%d x%d shards (reads=%g batch=%d): %w", e.Name, threads, shards, opt.reads, opt.batch, err)
	}
	return res.Throughput(), nil
}

// measureRWComb runs one read-combining cell of the RW table: a
// comb-rw-* / comb-a-rw-* entry rebuilt through WrapRWExec so a
// CountRWAcquisitions counter sits between the reader-combiner and
// the base RW lock — a combined read batch counts as the single
// shared acquisition it is. Alongside throughput it reports shared
// ops per shared acquisition over the measured window: how many read
// closures each RLock of the base lock amortized (1.0 means every
// read paid its own RLock, i.e. the uncontended bypass; higher means
// the combiner folded concurrent same-cluster reads together).
func measureRWComb(opt options, topo *numa.Topology, e registry.Entry, threads, shards int) (tp, sharedOpsPerAcq float64, err error) {
	var excl, shared atomic.Uint64
	base := registry.MustLookup(e.Base)
	newRW := base.NewRW
	var execs []locks.RWExecutor
	cfg := kvstore.Config{Topo: topo, MaxBatch: opt.batch, ValueMemory: opt.valueMem, IndexMemory: opt.indexMem}
	cfg.NewExec = func() locks.Executor {
		x := e.WrapRWExec(topo, locks.CountRWAcquisitions(newRW(topo), &excl, &shared))
		execs = append(execs, x)
		return x
	}
	if shards > 1 {
		sizeShards(&cfg, opt, topo, shards)
	}
	applyCapacity(&cfg, opt)
	store := kvstore.New(cfg)
	kvload.PopulateClusters(store, topo, opt.keyspace, 128)
	runtime.GC() // population litters the heap; keep GC out of the window
	opsBefore, acqBefore := sharedOpsSum(execs), shared.Load()
	cfg2 := kvload.DefaultConfig(topo, threads, int(opt.reads*100))
	cfg2.Duration = opt.duration
	cfg2.Keyspace = opt.keyspace
	cfg2.Affinity = opt.affinity
	cfg2.ReadFraction = opt.reads
	cfg2.BatchSize = opt.batch
	res, err := kvload.Run(cfg2, store)
	if err != nil {
		return 0, 0, fmt.Errorf("%s @%d x%d shards (reads=%g): %w", e.Name, threads, shards, opt.reads, err)
	}
	if acq := shared.Load() - acqBefore; acq > 0 {
		sharedOpsPerAcq = float64(sharedOpsSum(execs)-opsBefore) / float64(acq)
	}
	return res.Throughput(), sharedOpsPerAcq, nil
}

// sharedOpsSum totals the read closures the given executors have run
// (every shard's executor of one read-combining cell).
func sharedOpsSum(execs []locks.RWExecutor) uint64 {
	type sharedOps interface{ SharedOps() uint64 }
	var n uint64
	for _, x := range execs {
		if s, ok := x.(sharedOps); ok {
			n += s.SharedOps()
		}
	}
	return n
}

// readCombinerLabel names a comb-rw-* entry's policy for the
// read_combiner record field and the stderr trace.
func readCombinerLabel(name string) string {
	if strings.HasPrefix(name, "comb-a-") {
		return "adaptive"
	}
	return "fixed"
}

// runRW emits the reader-writer read-path tables: per shard count, one
// column pair per lock — shared-mode Gets vs the same construction
// driven exclusively (`<name>/x`) — at the -reads fraction, normalized
// like Table 1 to pthread at one thread on one shard. Read-combining
// entries (comb-rw-*, comb-a-rw-*) contribute a single shared column
// (their writes already run combined; an exclusive-read variant would
// measure a different executor, not a different read protocol) and
// feed a second table: shared ops per shared acquisition of the base
// lock, the combiner's read-side amortization.
func runRW(opt options, topo *numa.Topology) ([]record, error) {
	base, err := measureRW(opt, topo, registry.MustLookup("pthread"), 1, 1, false)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "reads=%g: pthread@1 baseline %.0f ops/s\n", opt.reads, base)

	type column struct {
		name   string
		entry  registry.Entry
		shared bool
		comb   bool
	}
	var cols []column
	haveComb := false
	for _, name := range opt.locks {
		e, err := registry.Find(name)
		if err != nil {
			return nil, err
		}
		if e.NewRWExec != nil {
			cols = append(cols, column{e.Name, e, true, true})
			haveComb = true
			continue
		}
		if e.NewMutex == nil && e.NewRW == nil {
			if e.NewExec != nil {
				return nil, fmt.Errorf("lock %q is a combining executor with no reader-writer face; use it with -batch or the standard tables", name)
			}
			return nil, fmt.Errorf("lock %q is abortable-only and cannot guard the store", name)
		}
		if e.NewRW != nil {
			cols = append(cols, column{e.Name, e, true, false})
		}
		cols = append(cols, column{e.Name + "/x", e, false, false})
	}

	var records []record
	for _, shards := range opt.shards {
		title := fmt.Sprintf("RW read path (%.4g%% gets): speedup over pthread@1", opt.reads*100)
		amortTitle := fmt.Sprintf("RW read path (%.4g%% gets): shared ops per shared acquisition", opt.reads*100)
		if shards > 1 {
			suffix := fmt.Sprintf(" [%d shards, %s placement]", shards, opt.placement)
			title += suffix
			amortTitle += suffix
		}
		headers := []string{"threads"}
		for _, c := range cols {
			headers = append(headers, c.name)
		}
		tb := stats.NewTable(title, headers...)
		ab := stats.NewTable(amortTitle, headers...)
		for _, n := range opt.threads {
			row := []string{fmt.Sprint(n)}
			amortRow := []string{fmt.Sprint(n)}
			for _, c := range cols {
				var (
					tp, opsPerAcq float64
					err           error
					combiner      string
				)
				if c.comb {
					tp, opsPerAcq, err = measureRWComb(opt, topo, c.entry, n, shards)
					combiner = readCombinerLabel(c.entry.Name)
				} else {
					tp, err = measureRW(opt, topo, c.entry, n, shards, c.shared)
				}
				if err != nil {
					return nil, err
				}
				placement, affinity := opt.placement.String(), opt.affinity
				if shards <= 1 {
					placement, affinity = "single", 0
				}
				path := "exclusive"
				if c.shared {
					path = "shared"
				}
				records = append(records, record{
					Mix: int(opt.reads*100 + 0.5), Lock: c.entry.Name, Threads: n, Shards: shards,
					Placement: placement, Affinity: affinity,
					OpsPerSec: tp, Speedup: stats.Speedup(base, tp),
					Reads: opt.reads, ReadPath: path,
					OpsPerAcq: opsPerAcq, ReadCombiner: combiner,
					ValueMemory: opt.vmLabel(), IndexMemory: opt.imLabel(),
				})
				row = append(row, stats.F(stats.Speedup(base, tp), 2))
				if c.comb {
					amortRow = append(amortRow, stats.F(opsPerAcq, 2))
					fmt.Fprintf(os.Stderr, "ran reads=%g %-16s threads=%-4d shards=%-3d %.0f ops/s %.2f shared ops/acq\n",
						opt.reads, c.name, n, shards, tp, opsPerAcq)
				} else {
					amortRow = append(amortRow, "-")
					fmt.Fprintf(os.Stderr, "ran reads=%g %-16s threads=%-4d shards=%-3d %.0f ops/s\n",
						opt.reads, c.name, n, shards, tp)
				}
			}
			tb.AddRow(row...)
			if haveComb {
				ab.AddRow(amortRow...)
			}
		}
		if !opt.jsonOut {
			fmt.Print(cli.Emit(tb, opt.csv))
			fmt.Println()
			if haveComb {
				fmt.Print(cli.Emit(ab, opt.csv))
				fmt.Println()
			}
		}
	}
	return records, nil
}

func runMix(opt options, topo *numa.Topology, getPct int) ([]record, error) {
	// Baseline: pthread at one thread on one shard, the paper's
	// normalization unit.
	base, err := measure(opt, topo, "pthread", 1, getPct, 1)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "mix %d%% gets: pthread@1 baseline %.0f ops/s\n", getPct, base)

	var records []record
	for _, shards := range opt.shards {
		title := fmt.Sprintf("Table 1 (%d%% gets / %d%% sets): speedup over pthread@1",
			getPct, 100-getPct)
		if shards > 1 {
			title = fmt.Sprintf("%s [%d shards, %s placement]", title, shards, opt.placement)
		}
		headers := append([]string{"threads"}, opt.locks...)
		tb := stats.NewTable(title, headers...)
		for _, n := range opt.threads {
			row := []string{fmt.Sprint(n)}
			for _, name := range opt.locks {
				tp, err := measure(opt, topo, name, n, getPct, shards)
				if err != nil {
					return nil, err
				}
				// Single-shard cells ignore placement and affinity;
				// label the records with what actually ran.
				placement, affinity := opt.placement.String(), opt.affinity
				if shards <= 1 {
					placement, affinity = "single", 0
				}
				records = append(records, record{
					Mix: getPct, Lock: name, Threads: n, Shards: shards,
					Placement: placement, Affinity: affinity,
					OpsPerSec: tp, Speedup: stats.Speedup(base, tp),
					ValueMemory: opt.vmLabel(), IndexMemory: opt.imLabel(),
				})
				row = append(row, stats.F(stats.Speedup(base, tp), 2))
				fmt.Fprintf(os.Stderr, "ran mix=%d%% %-10s threads=%-4d shards=%-3d %.0f ops/s\n",
					getPct, name, n, shards, tp)
			}
			tb.AddRow(row...)
		}
		if !opt.jsonOut {
			fmt.Print(cli.Emit(tb, opt.csv))
			fmt.Println()
		}
	}
	if len(opt.shards) > 1 && !opt.jsonOut {
		fmt.Print(cli.Emit(scalingTable(opt, records, getPct), opt.csv))
		fmt.Println()
	}
	return records, nil
}

// scalingTable condenses the sweep into shard scaling at the highest
// thread count: each cell is that lock's aggregate throughput relative
// to its own run at the first listed shard count.
func scalingTable(opt options, records []record, getPct int) *stats.Table {
	maxThreads := 0
	for _, t := range opt.threads {
		if t > maxThreads {
			maxThreads = t
		}
	}
	tp := map[string]map[int]float64{} // lock -> shards -> ops/s
	for _, r := range records {
		if r.Mix != getPct || r.Threads != maxThreads {
			continue
		}
		if tp[r.Lock] == nil {
			tp[r.Lock] = map[int]float64{}
		}
		tp[r.Lock][r.Shards] = r.OpsPerSec
	}
	baseShards := opt.shards[0]
	title := fmt.Sprintf("Shard scaling (%d%% gets, %d threads, %s placement): throughput vs %d shard(s)",
		getPct, maxThreads, opt.placement, baseShards)
	headers := append([]string{"shards"}, opt.locks...)
	tb := stats.NewTable(title, headers...)
	for _, shards := range opt.shards {
		row := []string{fmt.Sprint(shards)}
		for _, name := range opt.locks {
			row = append(row, stats.F(stats.Speedup(tp[name][baseShards], tp[name][shards]), 2))
		}
		tb.AddRow(row...)
	}
	return tb
}
