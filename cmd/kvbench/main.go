// Command kvbench regenerates the paper's Table 1: memcached-style
// key-value store scalability under every lock, for read-heavy
// (90% get), mixed (50%) and write-heavy (10% get) workloads. Each
// cell is the speedup over the single-threaded pthread-lock run of the
// same mix, exactly as the paper normalizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/cli"
	"repro/internal/kvload"
	"repro/internal/kvstore"
	"repro/internal/numa"
	"repro/internal/registry"
	"repro/internal/stats"
)

type options struct {
	mixes    []int
	threads  []int
	locks    []string
	clusters int
	duration time.Duration
	keyspace uint64
	csv      bool
}

func main() {
	var (
		mixFlag      = flag.String("mix", "all", "get percentage: 90, 50, 10 or all")
		threadsFlag  = flag.String("threads", "1,4,8,16,32,64,96,128", "comma-separated thread counts (paper's rows)")
		locksFlag    = flag.String("locks", "", "override lock list (default: the paper's Table 1 columns)")
		clustersFlag = flag.Int("clusters", 4, "NUMA clusters to simulate")
		durationFlag = flag.Duration("duration", 300*time.Millisecond, "measurement window per cell")
		keysFlag     = flag.Uint64("keys", 50_000, "distinct keys (pre-populated)")
		csvFlag      = flag.Bool("csv", false, "emit CSV instead of aligned text")
	)
	flag.Parse()

	opt := options{
		clusters: *clustersFlag,
		duration: *durationFlag,
		keyspace: *keysFlag,
		csv:      *csvFlag,
		locks:    cli.ParseNameList(*locksFlag),
	}
	switch *mixFlag {
	case "all":
		opt.mixes = []int{90, 50, 10}
	case "90", "50", "10":
		opt.mixes = []int{atoi(*mixFlag)}
	default:
		fmt.Fprintf(os.Stderr, "kvbench: -mix must be 90, 50, 10 or all\n")
		os.Exit(2)
	}
	threads, err := cli.ParseIntList(*threadsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvbench: bad -threads: %v\n", err)
		os.Exit(2)
	}
	opt.threads = threads
	if len(opt.locks) == 0 {
		opt.locks = registry.TableNames()
	}
	if err := run(opt); err != nil {
		fmt.Fprintf(os.Stderr, "kvbench: %v\n", err)
		os.Exit(1)
	}
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	return n
}

func run(opt options) error {
	maxThreads := 0
	for _, t := range opt.threads {
		if t > maxThreads {
			maxThreads = t
		}
	}
	topo := numa.New(opt.clusters, maxThreads)

	for _, mix := range opt.mixes {
		if err := runMix(opt, topo, mix); err != nil {
			return err
		}
	}
	return nil
}

// measure runs one (lock, threads, mix) cell against a fresh store.
func measure(opt options, topo *numa.Topology, lockName string, threads, getPct int) (float64, error) {
	e, ok := registry.Lookup(lockName)
	if !ok || e.NewMutex == nil {
		return 0, fmt.Errorf("unknown or non-blocking lock %q", lockName)
	}
	store := kvstore.New(kvstore.Config{
		Topo: topo,
		Lock: e.NewMutex(topo),
	})
	kvload.Populate(store, topo.Proc(0), opt.keyspace, 128)
	runtime.GC() // population litters the heap; keep GC out of the window
	cfg := kvload.DefaultConfig(topo, threads, getPct)
	cfg.Duration = opt.duration
	cfg.Keyspace = opt.keyspace
	res, err := kvload.Run(cfg, store)
	if err != nil {
		return 0, fmt.Errorf("%s @%d: %w", lockName, threads, err)
	}
	return res.Throughput(), nil
}

func runMix(opt options, topo *numa.Topology, getPct int) error {
	// Baseline: pthread at one thread, the paper's normalization unit.
	base, err := measure(opt, topo, "pthread", 1, getPct)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mix %d%% gets: pthread@1 baseline %.0f ops/s\n", getPct, base)

	title := fmt.Sprintf("Table 1 (%d%% gets / %d%% sets): speedup over pthread@1",
		getPct, 100-getPct)
	headers := append([]string{"threads"}, opt.locks...)
	tb := stats.NewTable(title, headers...)
	for _, n := range opt.threads {
		row := []string{fmt.Sprint(n)}
		for _, name := range opt.locks {
			tp, err := measure(opt, topo, name, n, getPct)
			if err != nil {
				return err
			}
			row = append(row, stats.F(stats.Speedup(base, tp), 2))
			fmt.Fprintf(os.Stderr, "ran mix=%d%% %-10s threads=%-4d %.0f ops/s\n", getPct, name, n, tp)
		}
		tb.AddRow(row...)
	}
	fmt.Print(cli.Emit(tb, opt.csv))
	fmt.Println()
	return nil
}
