// Command kvsoak drives a kvserver (or any memcached text server)
// over a real TCP socket: a sustained mixed get/set load at a target
// rate and concurrency, reporting achieved ops/sec and error counts.
//
// Every connection owns a disjoint key slice and pipelines -pipeline
// operations per socket write, so the soak exercises exactly the
// server's batched decode path. Because ops within a connection are
// ordered, each worker verifies get responses against the last value
// it wrote to that key: a wrong payload counts as an error (and fails
// the run), a miss is legal (the server's LRU may evict under
// pressure). Connections cut mid-burst — a draining server's goodbye —
// count their unanswered operations as dropped, not as errors.
//
// -json emits the result record, including the client's own collector
// pressure (allocs per op, GC pause total and cycle count, MemStats
// bracketed around the soak window) and an optional -indexmem label
// naming the server's shard-metadata backend, so soak artifacts next
// to kvbench's carry the same memory-pressure shape.
//
// -check replaces the soak with a scripted byte-exact session (set,
// get, gets, multi-key pipelined get, delete, version) asserting every
// response byte; CI uses it as the protocol conformance gate. -check
// retries the first dial briefly so it can race a just-started server.
//
// Exit status: 0 on a clean run, 1 on any verification error, 2 on
// operational failure (bad flags, cannot connect).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cli"
	"repro/internal/server"
)

type options struct {
	addr     string
	conns    int
	rps      int
	duration time.Duration
	mix      int
	keys     int
	valSize  int
	pipeline int
	indexMem string
	jsonOut  bool
}

func main() {
	var (
		addrFlag     = flag.String("addr", "127.0.0.1:11211", "server address")
		connsFlag    = flag.Int("conns", 4, "concurrent connections")
		rpsFlag      = flag.Int("rps", 0, "target operations per second across all connections (0 = unthrottled)")
		durationFlag = flag.Duration("duration", 2*time.Second, "soak duration")
		mixFlag      = flag.Int("mix", 90, "get percentage of the operation mix")
		keysFlag     = flag.Int("keys", 1000, "distinct keys per connection")
		valsizeFlag  = flag.Int("valsize", 64, "value size in bytes")
		pipeFlag     = flag.Int("pipeline", 8, "operations pipelined per socket write")
		checkFlag    = flag.Bool("check", false, "run the scripted byte-exact protocol session instead of the soak")
		indexmemFlag = flag.String("indexmem", "", "shard-metadata backend of the server under test (pointer or compact); labels the -json result")
		jsonFlag     = flag.Bool("json", false, "emit the result as JSON")
	)
	flag.Parse()
	const tool = "kvsoak"

	if *checkFlag {
		if err := runCheck(*addrFlag); err != nil {
			fmt.Fprintf(os.Stderr, "kvsoak: check failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("kvsoak: protocol check passed")
		return
	}

	opt := options{
		addr:     *addrFlag,
		conns:    *connsFlag,
		rps:      *rpsFlag,
		duration: *durationFlag,
		mix:      *mixFlag,
		keys:     *keysFlag,
		valSize:  *valsizeFlag,
		pipeline: *pipeFlag,
		jsonOut:  *jsonFlag,
	}
	if *indexmemFlag != "" {
		// The soak never builds a store itself; the flag validates
		// through the same parser as the server tools and labels the
		// JSON result with the backend of the server under test.
		im, err := cli.IndexMemory(*indexmemFlag)
		if err != nil {
			cli.Die(tool, err)
		}
		opt.indexMem = im.String()
	}
	for name, v := range map[string]int{
		"conns": opt.conns, "keys": opt.keys, "valsize": opt.valSize, "pipeline": opt.pipeline,
	} {
		if err := cli.Positive(name, v); err != nil {
			cli.Die(tool, err)
		}
	}
	if opt.mix < 0 || opt.mix > 100 {
		cli.Dief(tool, "-mix %d outside [0,100]", opt.mix)
	}
	if opt.rps < 0 {
		cli.Dief(tool, "negative -rps %d", opt.rps)
	}
	res, err := runSoak(opt)
	if err != nil {
		cli.Die(tool, err)
	}
	if opt.jsonOut {
		json.NewEncoder(os.Stdout).Encode(res)
	} else {
		fmt.Printf("kvsoak: %d conns %.1fs: %d ops (%d gets, %d hits, %d sets) %.0f ops/s, %d errors, %d dropped\n",
			opt.conns, res.Seconds, res.Ops, res.Gets, res.Hits, res.Sets, res.OpsPerSec, res.Errors, res.Dropped)
	}
	if res.Errors > 0 {
		os.Exit(1)
	}
}

// result is the soak's summary, also the -json shape. The collector
// fields are client-side MemStats brackets around the soak window —
// the same allocs_per_op / gc_pause_ms shape kvload records — so a
// socket soak exposes the *client's* GC pressure end to end; the
// server's sits in its own process and is measured by kvbench.
type result struct {
	Ops       uint64  `json:"ops"`
	Gets      uint64  `json:"gets"`
	Hits      uint64  `json:"hits"`
	Sets      uint64  `json:"sets"`
	Errors    uint64  `json:"errors"`
	Dropped   uint64  `json:"dropped"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// AllocsPerOp is Go heap allocations per completed operation over
	// the window; GCPauseMs and GCCycles are the total stop-the-world
	// pause and collection count the window absorbed.
	AllocsPerOp float64 `json:"allocs_per_op"`
	GCPauseMs   float64 `json:"gc_pause_ms"`
	GCCycles    uint32  `json:"gc_cycles"`
	// IndexMemory labels which shard-metadata backend the server under
	// test ran (-indexmem); empty when unspecified.
	IndexMemory string `json:"index_memory,omitempty"`
}

// dial connects with brief retries, so soak and check runs can race a
// server that is still binding its listener.
func dial(addr string) (net.Conn, error) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("connecting to %s: %w", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func runSoak(opt options) (result, error) {
	conns := make([]net.Conn, opt.conns)
	for i := range conns {
		c, err := dial(opt.addr)
		if err != nil {
			return result{}, err
		}
		defer c.Close()
		conns[i] = c
	}

	var ops, gets, hits, sets, errs, dropped atomic.Uint64
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	began := time.Now()
	stop := began.Add(opt.duration)
	var wg sync.WaitGroup
	for w, c := range conns {
		wg.Add(1)
		go func(w int, c net.Conn) {
			defer wg.Done()
			r := soakWorker(opt, w, c, stop)
			ops.Add(r.Ops)
			gets.Add(r.Gets)
			hits.Add(r.Hits)
			sets.Add(r.Sets)
			errs.Add(r.Errors)
			dropped.Add(r.Dropped)
		}(w, c)
	}
	wg.Wait()
	elapsed := time.Since(began).Seconds()
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	res := result{
		Ops: ops.Load(), Gets: gets.Load(), Hits: hits.Load(), Sets: sets.Load(),
		Errors: errs.Load(), Dropped: dropped.Load(), Seconds: elapsed,
		GCPauseMs:   float64(msAfter.PauseTotalNs-msBefore.PauseTotalNs) / 1e6,
		GCCycles:    msAfter.NumGC - msBefore.NumGC,
		IndexMemory: opt.indexMem,
	}
	if res.Ops > 0 {
		res.AllocsPerOp = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(res.Ops)
	}
	if elapsed > 0 {
		res.OpsPerSec = float64(res.Ops) / elapsed
	}
	return res, nil
}

// value renders the deterministic payload for (worker, key, seq):
// verification just re-renders and compares.
func value(buf []byte, w, key int, seq uint64, size int) []byte {
	buf = buf[:0]
	buf = append(buf, fmt.Sprintf("w%d-k%d-s%d-", w, key, seq)...)
	for len(buf) < size {
		buf = append(buf, 'x')
	}
	return buf[:size]
}

// soakWorker runs one connection's load until the stop time: bursts of
// pipelined operations, then their responses in order. The op sequence
// is a cheap deterministic LCG, so runs are reproducible.
func soakWorker(opt options, w int, c net.Conn, stop time.Time) result {
	var res result
	rd := bufio.NewReaderSize(c, 64<<10)
	seqs := make([]uint64, opt.keys) // last value written per key, 0 = never
	rng := uint64(w)*2654435761 + 1
	next := func() uint64 { rng = rng*6364136223846793005 + 1442695040888963407; return rng >> 33 }

	type op struct {
		key int
		get bool
		seq uint64
	}
	burst := make([]op, 0, opt.pipeline)
	var buf []byte
	valBuf := make([]byte, 0, opt.valSize)
	wantBuf := make([]byte, 0, opt.valSize)
	var seq uint64

	// Pacing: each burst is opt.pipeline ops; at a target per-worker
	// rate the next burst is due one interval after the previous one.
	var interval time.Duration
	if opt.rps > 0 {
		perWorker := float64(opt.rps) / float64(opt.conns)
		interval = time.Duration(float64(opt.pipeline) / perWorker * float64(time.Second))
	}
	due := time.Now()

	for time.Now().Before(stop) {
		if interval > 0 {
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
			due = due.Add(interval)
		}
		// Build and send one pipelined burst.
		burst = burst[:0]
		buf = buf[:0]
		for i := 0; i < opt.pipeline; i++ {
			key := int(next()) % opt.keys
			if int(next())%100 < opt.mix && seqs[key] > 0 {
				burst = append(burst, op{key: key, get: true})
				buf = append(buf, fmt.Sprintf("get w%dk%d\r\n", w, key)...)
			} else {
				seq++
				burst = append(burst, op{key: key, seq: seq})
				valBuf = value(valBuf, w, key, seq, opt.valSize)
				buf = append(buf, fmt.Sprintf("set w%dk%d 0 0 %d\r\n", w, key, opt.valSize)...)
				buf = append(buf, valBuf...)
				buf = append(buf, "\r\n"...)
			}
		}
		c.SetWriteDeadline(time.Now().Add(5 * time.Second))
		if _, err := c.Write(buf); err != nil {
			res.Dropped += uint64(len(burst))
			return res
		}
		// Collect the burst's responses in order. A set is acknowledged
		// before its seq becomes the key's expected value; an op whose
		// response never arrives is dropped, not wrong.
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		for i, o := range burst {
			ok, err := readResponse(rd, opt, w, o.key, seqs, wantBuf, &res)
			if err != nil {
				res.Dropped += uint64(len(burst) - i)
				return res
			}
			res.Ops++
			if o.get {
				res.Gets++
				if ok {
					res.Hits++
				}
			} else {
				res.Sets++
				seqs[o.key] = o.seq
			}
		}
	}
	return res
}

// readResponse consumes one operation's response. For gets, ok reports
// a hit; a hit's payload must be the value of some set this worker
// already issued for the key (the connection orders them), else it
// counts an error.
func readResponse(rd *bufio.Reader, opt options, w, key int, seqs []uint64, wantBuf []byte, res *result) (ok bool, err error) {
	line, err := rd.ReadString('\n')
	if err != nil {
		return false, err
	}
	line = strings.TrimRight(line, "\r\n")
	switch {
	case line == "STORED":
		return true, nil
	case line == "END": // miss: legal under eviction
		return false, nil
	case strings.HasPrefix(line, "VALUE "):
		var k string
		var flags, size uint64
		if _, err := fmt.Sscanf(line, "VALUE %s %d %d", &k, &flags, &size); err != nil || size > uint64(opt.valSize) {
			res.Errors++
			return false, fmt.Errorf("bad VALUE line %q", line)
		}
		data := make([]byte, size+2)
		if _, err := io.ReadFull(rd, data); err != nil {
			return false, err
		}
		end, err := rd.ReadString('\n')
		if err != nil {
			return false, err
		}
		if strings.TrimRight(end, "\r\n") != "END" {
			res.Errors++
			return false, fmt.Errorf("missing END after VALUE, got %q", end)
		}
		want := value(wantBuf, w, key, seqs[key], opt.valSize)
		if string(data[:size]) != string(want) {
			res.Errors++
			return true, nil
		}
		return true, nil
	default:
		res.Errors++
		return false, fmt.Errorf("unexpected response %q", line)
	}
}

// runCheck is the scripted byte-exact protocol session: each exchange
// must come back byte for byte, including the multi-key pipelined get
// and the per-request END framing. It is the conformance gate CI runs
// against a freshly started server.
func runCheck(addr string) error {
	c, err := dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()

	exchange := func(send, want string) error {
		c.SetDeadline(time.Now().Add(5 * time.Second))
		if _, err := c.Write([]byte(send)); err != nil {
			return fmt.Errorf("write %q: %w", send, err)
		}
		got := make([]byte, len(want))
		if _, err := io.ReadFull(c, got); err != nil {
			return fmt.Errorf("response to %q: %w (got %q)", send, err, got)
		}
		if string(got) != want {
			return fmt.Errorf("response to %q:\n got  %q\n want %q", send, got, want)
		}
		return nil
	}

	cas := server.PseudoCAS([]byte("hello"))
	steps := []struct{ send, want string }{
		{"version\r\n", "VERSION " + server.DefaultVersion + "\r\n"},
		{"set chk:a 7 0 5\r\nhello\r\n", "STORED\r\n"},
		{"get chk:a\r\n", "VALUE chk:a 7 5\r\nhello\r\nEND\r\n"},
		{"gets chk:a\r\n", fmt.Sprintf("VALUE chk:a 7 5 %d\r\nhello\r\nEND\r\n", cas)},
		{"set chk:b 0 0 2\r\nbb\r\n", "STORED\r\n"},
		// Multi-key pipelined burst in one write: responses in request
		// order, per-request END framing.
		{"get chk:a chk:b chk:miss\r\nget chk:b\r\ndelete chk:b\r\nget chk:b\r\n",
			"VALUE chk:a 7 5\r\nhello\r\nVALUE chk:b 0 2\r\nbb\r\nEND\r\n" +
				"VALUE chk:b 0 2\r\nbb\r\nEND\r\n" +
				"DELETED\r\n" +
				"END\r\n"},
		{"delete chk:b\r\n", "NOT_FOUND\r\n"},
		{"set chk:a 0 0 3 noreply\r\nnew\r\nget chk:a\r\n", "VALUE chk:a 0 3\r\nnew\r\nEND\r\n"},
		{"bogus\r\n", "ERROR\r\n"},
		{"get chk:a\r\n", "VALUE chk:a 0 3\r\nnew\r\nEND\r\n"},
		{"delete chk:a\r\n", "DELETED\r\n"},
	}
	for _, s := range steps {
		if err := exchange(s.send, s.want); err != nil {
			return err
		}
	}
	// quit must answer EOF, not an error line.
	if _, err := c.Write([]byte("quit\r\n")); err != nil {
		return err
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if n, err := c.Read(make([]byte, 1)); err != io.EOF {
		return fmt.Errorf("after quit: %d bytes, err %v; want EOF", n, err)
	}
	return nil
}
