// Command kvsoak drives a kvserver (or any memcached text server)
// over a real TCP socket: a sustained mixed get/set load at a target
// rate and concurrency, reporting achieved ops/sec and error counts.
// The engine is internal/soak; this command is flags, JSON, and the
// client-side GC bracket.
//
// Every connection owns a disjoint key slice and pipelines -pipeline
// operations per socket write, so the soak exercises exactly the
// server's batched decode path. Each worker verifies get responses
// against its own issue history: a payload that was never issued, or
// one OLDER than a set the server acknowledged, fails the run (the
// latter is a lost acked write — the violation no drain, shed, or
// fault may cause). Misses stay legal: the server's LRU may evict.
//
// Workers survive connection cuts: reconnect with capped exponential
// backoff plus jitter, retrying only idempotent operations (gets);
// sets whose ack never arrived are recorded as indeterminate and never
// double-counted. "SERVER_ERROR busy" answers — the server shedding
// load — are counted, never treated as corruption.
//
// -chaos interposes an internal/faultnet TCP proxy and runs the storm
// schedule (latency, short reads/writes, mid-frame resets, stalls) for
// 60% of the duration, then clears the faults for the recovery tail,
// and finally polls the server's stats verb for its own accounting.
// With -expect-shed the run additionally fails unless the server's
// overload defenses demonstrably engaged AND recovered: shedding
// observed, admission cap shrunk below its configured value and grown
// back off its low-water mark. -chaos-seed reproduces a fault
// placement.
//
// -json emits the result record: op/verification counts, the new
// retries / indeterminate_ops / shed_responses / lost_acked_writes
// fields, injected-fault counters, the server's stats dump, and the
// client's own collector pressure (allocs per op, GC pause total and
// cycle count bracketed around the soak window).
//
// -check replaces the soak with a scripted byte-exact session (set,
// get, gets, multi-key pipelined get, delete, version) asserting every
// response byte; CI uses it as the protocol conformance gate. -check
// retries the first dial briefly so it can race a just-started server.
//
// Exit status: 0 on a clean run, 1 on any verification error or failed
// -expect-shed assertion, 2 on operational failure (bad flags, cannot
// connect).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"time"

	"repro/internal/cli"
	"repro/internal/server"
	"repro/internal/soak"
)

func main() {
	var (
		addrFlag     = flag.String("addr", "127.0.0.1:11211", "server address")
		connsFlag    = flag.Int("conns", 4, "concurrent connections")
		rpsFlag      = flag.Int("rps", 0, "target operations per second across all connections (0 = unthrottled)")
		durationFlag = flag.Duration("duration", 2*time.Second, "soak duration")
		mixFlag      = flag.Int("mix", 90, "get percentage of the operation mix")
		keysFlag     = flag.Int("keys", 1000, "distinct keys per connection")
		valsizeFlag  = flag.Int("valsize", 64, "value size in bytes (minimum 48: payloads embed a verification header)")
		pipeFlag     = flag.Int("pipeline", 8, "operations pipelined per socket write")
		checkFlag    = flag.Bool("check", false, "run the scripted byte-exact protocol session instead of the soak")
		chaosFlag    = flag.Bool("chaos", false, "run the load through a fault-injecting proxy: storm phase then recovery, asserting no acked write is lost")
		chaosSeed    = flag.Int64("chaos-seed", 1, "seed for the chaos fault schedule (reproduces a fault placement)")
		expectShed   = flag.Bool("expect-shed", false, "with -chaos: fail unless the server's shedding engaged and its admission cap shrank and recovered")
		indexmemFlag = flag.String("indexmem", "", "shard-metadata backend of the server under test (pointer or compact); labels the -json result")
		jsonFlag     = flag.Bool("json", false, "emit the result as JSON")
	)
	flag.Parse()
	const tool = "kvsoak"

	if *checkFlag {
		if err := runCheck(*addrFlag); err != nil {
			fmt.Fprintf(os.Stderr, "kvsoak: check failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("kvsoak: protocol check passed")
		return
	}

	opt := soak.Options{
		Addr:     *addrFlag,
		Conns:    *connsFlag,
		RPS:      *rpsFlag,
		Duration: *durationFlag,
		Mix:      *mixFlag,
		Keys:     *keysFlag,
		ValSize:  *valsizeFlag,
		Pipeline: *pipeFlag,
		Seed:     *chaosSeed,
		Chaos:    *chaosFlag,
	}
	if !*jsonFlag {
		opt.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "kvsoak: "+format+"\n", args...)
		}
	}
	if *expectShed && !*chaosFlag {
		cli.Dief(tool, "-expect-shed requires -chaos")
	}
	indexMem := ""
	if *indexmemFlag != "" {
		// The soak never builds a store itself; the flag validates
		// through the same parser as the server tools and labels the
		// JSON result with the backend of the server under test.
		im, err := cli.IndexMemory(*indexmemFlag)
		if err != nil {
			cli.Die(tool, err)
		}
		indexMem = im.String()
	}

	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	res, err := soak.Run(opt)
	if err != nil {
		cli.Die(tool, err)
	}
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	out := result{
		Result:      res,
		GCPauseMs:   float64(msAfter.PauseTotalNs-msBefore.PauseTotalNs) / 1e6,
		GCCycles:    msAfter.NumGC - msBefore.NumGC,
		IndexMemory: indexMem,
	}
	if res.Ops > 0 {
		out.AllocsPerOp = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(res.Ops)
	}

	problems := res.Problems(*expectShed)
	if *jsonFlag {
		json.NewEncoder(os.Stdout).Encode(out)
	} else {
		fmt.Printf("kvsoak: %d conns %.1fs: %d ops (%d gets, %d hits, %d sets) %.0f ops/s, %d errors, %d dropped\n",
			opt.Conns, res.Seconds, res.Ops, res.Gets, res.Hits, res.Sets, res.OpsPerSec, res.Errors, res.Dropped)
		if *chaosFlag {
			fmt.Printf("kvsoak: chaos: %d resets, %d reconnects, %d retries, %d indeterminate, %d shed responses, %d lost acked writes\n",
				res.Faults.Resets, res.Reconnects, res.Retries, res.IndeterminateOps, res.ShedResponses, res.LostAckedWrites)
			if res.Server != nil && res.Server.HasAdmission {
				fmt.Printf("kvsoak: server: admission cap %d/%d (low-water %d), %d shedded ops, %d evicted conns, %d client-gone\n",
					res.Server.AdmissionCap, res.Server.AdmissionCapFull, res.Server.AdmissionCapLow,
					res.Server.SheddedOps, res.Server.EvictedConns, res.Server.ClientGone)
			}
		}
	}
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "kvsoak: FAIL: %s\n", p)
	}
	if len(problems) > 0 {
		os.Exit(1)
	}
}

// result is the -json shape: the soak engine's record plus the
// client-side MemStats bracket — the same allocs_per_op / gc_pause_ms
// shape kvload records — so a socket soak exposes the *client's* GC
// pressure end to end; the server's sits in its own process and is
// measured by kvbench.
type result struct {
	soak.Result
	// AllocsPerOp is Go heap allocations per completed operation over
	// the window; GCPauseMs and GCCycles are the total stop-the-world
	// pause and collection count the window absorbed.
	AllocsPerOp float64 `json:"allocs_per_op"`
	GCPauseMs   float64 `json:"gc_pause_ms"`
	GCCycles    uint32  `json:"gc_cycles"`
	// IndexMemory labels which shard-metadata backend the server under
	// test ran (-indexmem); empty when unspecified.
	IndexMemory string `json:"index_memory,omitempty"`
}

// dial connects with brief retries, so check runs can race a server
// that is still binding its listener.
func dial(addr string) (net.Conn, error) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("connecting to %s: %w", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// runCheck is the scripted byte-exact protocol session: each exchange
// must come back byte for byte, including the multi-key pipelined get
// and the per-request END framing. It is the conformance gate CI runs
// against a freshly started server.
func runCheck(addr string) error {
	c, err := dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()

	exchange := func(send, want string) error {
		c.SetDeadline(time.Now().Add(5 * time.Second))
		if _, err := c.Write([]byte(send)); err != nil {
			return fmt.Errorf("write %q: %w", send, err)
		}
		got := make([]byte, len(want))
		if _, err := io.ReadFull(c, got); err != nil {
			return fmt.Errorf("response to %q: %w (got %q)", send, err, got)
		}
		if string(got) != want {
			return fmt.Errorf("response to %q:\n got  %q\n want %q", send, got, want)
		}
		return nil
	}

	cas := server.PseudoCAS([]byte("hello"))
	steps := []struct{ send, want string }{
		{"version\r\n", "VERSION " + server.DefaultVersion + "\r\n"},
		{"set chk:a 7 0 5\r\nhello\r\n", "STORED\r\n"},
		{"get chk:a\r\n", "VALUE chk:a 7 5\r\nhello\r\nEND\r\n"},
		{"gets chk:a\r\n", fmt.Sprintf("VALUE chk:a 7 5 %d\r\nhello\r\nEND\r\n", cas)},
		{"set chk:b 0 0 2\r\nbb\r\n", "STORED\r\n"},
		// Multi-key pipelined burst in one write: responses in request
		// order, per-request END framing.
		{"get chk:a chk:b chk:miss\r\nget chk:b\r\ndelete chk:b\r\nget chk:b\r\n",
			"VALUE chk:a 7 5\r\nhello\r\nVALUE chk:b 0 2\r\nbb\r\nEND\r\n" +
				"VALUE chk:b 0 2\r\nbb\r\nEND\r\n" +
				"DELETED\r\n" +
				"END\r\n"},
		{"delete chk:b\r\n", "NOT_FOUND\r\n"},
		{"set chk:a 0 0 3 noreply\r\nnew\r\nget chk:a\r\n", "VALUE chk:a 0 3\r\nnew\r\nEND\r\n"},
		{"bogus\r\n", "ERROR\r\n"},
		{"get chk:a\r\n", "VALUE chk:a 0 3\r\nnew\r\nEND\r\n"},
		{"delete chk:a\r\n", "DELETED\r\n"},
	}
	for _, s := range steps {
		if err := exchange(s.send, s.want); err != nil {
			return err
		}
	}
	// The stats verb must answer STAT lines then END (values vary).
	if _, err := c.Write([]byte("stats\r\n")); err != nil {
		return err
	}
	if err := readStatsDump(c); err != nil {
		return err
	}
	// quit must answer EOF, not an error line.
	if _, err := c.Write([]byte("quit\r\n")); err != nil {
		return err
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if n, err := c.Read(make([]byte, 1)); err != io.EOF {
		return fmt.Errorf("after quit: %d bytes, err %v; want EOF", n, err)
	}
	return nil
}

// readStatsDump consumes one stats response, checking only its shape.
func readStatsDump(c net.Conn) error {
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	var line []byte
	lines := 0
	for {
		if _, err := c.Read(buf); err != nil {
			return fmt.Errorf("reading stats dump: %w", err)
		}
		if buf[0] != '\n' {
			line = append(line, buf[0])
			continue
		}
		s := string(line)
		line = line[:0]
		if len(s) > 0 && s[len(s)-1] == '\r' {
			s = s[:len(s)-1]
		}
		if s == "END" {
			if lines == 0 {
				return fmt.Errorf("stats dump had no STAT lines")
			}
			return nil
		}
		if len(s) < 5 || s[:5] != "STAT " {
			return fmt.Errorf("unexpected stats line %q", s)
		}
		lines++
	}
}
