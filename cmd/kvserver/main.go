// Command kvserver serves the store over a pipelined memcached text
// protocol (get/gets multi-key, set, delete, version, quit) — the
// paper's workload shape driven over a real socket instead of an
// in-process load generator.
//
// The engine underneath is the full stack the previous exhibits
// measured: a sharded store guarded by any registry lock (-lock takes
// the same names as kvbench, combining comb-* executors included),
// cluster-affine shard placement, arena or heap value memory, pointer
// or compact (slab-index) shard metadata, and the batched
// MGet/MSet/MDelete APIs. Under an adaptive-combining lock
// (comb-a-*) a background sampler tracks peak per-shard combiner
// occupancy, reported in the final stats line. One accept loop runs per simulated
// NUMA cluster; every admitted connection owns one of that cluster's
// proc handles for its lifetime, so a connection's pipelined requests
// flush into the store as batches costing ceil(N/MaxBatch) shard
// acquisitions. -conns-per-cluster caps admission per cluster (the
// concurrency-restriction idea applied at the front door: excess
// clients wait in the listen backlog, not in the lock queue).
//
// -adaptive-admission makes that cap track the sampled occupancy with
// hysteresis: sustained overload past -busy-threshold halves the
// effective cap, acute overload at twice the threshold sheds flushes
// with "SERVER_ERROR busy" and escalates per-op deadlines against
// stalled clients, and sustained clearance restores the cap one step
// at a time (DESIGN.md §8). The stats verb exposes the cap, its
// low-water mark, and the shed/eviction counters on the wire.
//
// SIGINT/SIGTERM drains gracefully: stop accepting, let every
// connection answer the requests it has already read, flush in-flight
// batches, then close. -drain-timeout bounds the wait; connections
// still open after it are force-closed and the exit status is nonzero.
// No acknowledged write is lost at any drain point — responses are
// only written after the store call returns.
//
// Drive it with cmd/kvsoak (or any memcached text client).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/kvstore"
	"repro/internal/numa"
	"repro/internal/server"
)

func main() {
	var (
		addrFlag     = flag.String("addr", "127.0.0.1:11211", "TCP listen address")
		lockFlag     = flag.String("lock", "c-bo-mcs", "shard lock from the registry (same names as kvbench -locks)")
		shardsFlag   = flag.Int("shards", 8, "store shards")
		placeFlag    = flag.String("placement", "affine", "shard placement: hashmod or affine")
		clustersFlag = flag.Int("clusters", 4, "NUMA clusters to simulate")
		procsFlag    = flag.Int("procs", runtime.GOMAXPROCS(0), "proc handles in the topology (bounds total admitted connections)")
		connsFlag    = flag.Int("conns-per-cluster", 0, "admitted connections per cluster (default: the cluster's proc count)")
		capFlag      = flag.Int("capacity", 1<<20, "store item capacity (LRU evicts beyond it)")
		maxvalFlag   = flag.Int("maxval", server.DefaultMaxValueBytes, "largest accepted value in bytes")
		maxbatchFlag = flag.Int("maxbatch", 0, "ops per critical section for pipelined flushes (default: the store's MaxBatch)")
		valuememFlag = flag.String("valuemem", "heap", "value backend: heap or arena")
		indexmemFlag = flag.String("indexmem", "pointer", "shard-metadata backend: pointer or compact (slab-resident items off the GC scan path)")
		readTOFlag   = flag.Duration("read-timeout", 0, "per-request read deadline (default 2m)")
		writeTOFlag  = flag.Duration("write-timeout", 0, "per-flush write deadline (default 30s)")
		drainFlag    = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown bound before force-closing connections")
		adaptiveFlag = flag.Bool("adaptive-admission", false, "track the per-cluster admission cap against sampled combining occupancy, shedding ops under acute overload (needs a comb-a-* -lock)")
		busyFlag     = flag.Int("busy-threshold", 0, "sampled per-shard occupancy counted as overload (default: half the proc count, minimum 2)")
	)
	flag.Parse()
	const tool = "kvserver"

	if err := cli.Positive("shards", *shardsFlag); err != nil {
		cli.Die(tool, err)
	}
	if err := cli.Positive("clusters", *clustersFlag); err != nil {
		cli.Die(tool, err)
	}
	if *procsFlag < *clustersFlag {
		cli.Dief(tool, "-procs %d below -clusters %d: every cluster needs a proc to serve connections", *procsFlag, *clustersFlag)
	}
	placement, err := cli.Placement(*placeFlag)
	if err != nil {
		cli.Die(tool, err)
	}
	valueMem, err := cli.ValueMemory(*valuememFlag)
	if err != nil {
		cli.Die(tool, err)
	}
	indexMem, err := cli.IndexMemory(*indexmemFlag)
	if err != nil {
		cli.Die(tool, err)
	}

	topo := numa.New(*clustersFlag, *procsFlag)
	locking, err := kvstore.FromRegistry(topo, *lockFlag)
	if err != nil {
		cli.Die(tool, err)
	}
	store := kvstore.New(kvstore.Config{
		Topo:        topo,
		Locking:     locking,
		Shards:      *shardsFlag,
		Placement:   placement,
		Capacity:    *capFlag,
		MaxBatch:    *maxbatchFlag,
		ValueMemory: valueMem,
		IndexMemory: indexMem,
	})
	srv, err := server.New(server.Config{
		Topo:              topo,
		Store:             store,
		ConnsPerCluster:   *connsFlag,
		MaxBatch:          *maxbatchFlag,
		MaxValueBytes:     *maxvalFlag,
		ReadTimeout:       *readTOFlag,
		WriteTimeout:      *writeTOFlag,
		AdaptiveAdmission: *adaptiveFlag,
		BusyThreshold:     *busyFlag,
	})
	if err != nil {
		cli.Die(tool, err)
	}
	if *adaptiveFlag && !srv.OccupancyTracked() {
		fmt.Fprintf(os.Stderr, "kvserver: warning: -adaptive-admission is inert under -lock %s — no occupancy estimator; use an adaptive combining lock (comb-a-*)\n", *lockFlag)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	shutdownErr := make(chan error, 1)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "kvserver: %v — draining (timeout %v)\n", s, *drainFlag)
		shutdownErr <- srv.Shutdown(*drainFlag)
	}()

	connsPerCluster := *connsFlag
	if connsPerCluster <= 0 || connsPerCluster > *procsFlag / *clustersFlag {
		connsPerCluster = *procsFlag / *clustersFlag
	}
	fmt.Fprintf(os.Stderr, "kvserver: %s on %s — lock=%s shards=%d placement=%s clusters=%d conns/cluster<=%d valuemem=%s indexmem=%s\n",
		server.DefaultVersion, *addrFlag, *lockFlag, *shardsFlag, placement, *clustersFlag, connsPerCluster, valueMem, indexMem)
	serveErr := srv.ListenAndServe(*addrFlag)

	st := srv.Snapshot()
	// Occupancy only exists for adaptive-combining locks; "-" keeps the
	// line shape stable for everything else.
	occ := "-"
	if st.MaxOccupancy >= 0 {
		occ = fmt.Sprint(st.MaxOccupancy)
	}
	fmt.Fprintf(os.Stderr, "kvserver: served %d connections, %d gets (%d hits), %d sets, %d deletes, %d flushes, %d bad requests, peak occupancy %s\n",
		st.Accepted, st.Gets, st.Hits, st.Sets, st.Deletes, st.Flushes, st.BadRequests, occ)
	fmt.Fprintf(os.Stderr, "kvserver: resilience: %d shedded ops, %d evicted conns, %d client-gone, admission cap %d/%d (low-water %d)\n",
		st.SheddedOps, st.EvictedConns, st.ClientGone, st.AdmissionCap, st.AdmissionCapFull, st.AdmissionCapLow)

	if serveErr != nil {
		fmt.Fprintf(os.Stderr, "kvserver: %v\n", serveErr)
		os.Exit(1)
	}
	// Serve returned nil: a drain finished. Its verdict (clean vs
	// force-closed stragglers) is the exit status.
	if err := <-shutdownErr; err != nil {
		fmt.Fprintf(os.Stderr, "kvserver: %v\n", err)
		os.Exit(1)
	}
}
