// Command mallocbench regenerates the paper's Table 2: the mmicro
// allocator stress benchmark (64-byte malloc + initialize + free with
// ~4 µs delays) against the single-lock splay-tree allocator, for
// every lock column of the paper. Cells are malloc-free pairs per
// millisecond, Table 2's unit.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/cli"
	"repro/internal/mmicro"
	"repro/internal/numa"
	"repro/internal/registry"
	"repro/internal/stats"
)

func main() {
	var (
		threadsFlag  = flag.String("threads", "1,2,4,8,16,32,64,128,255", "comma-separated thread counts (paper's rows)")
		locksFlag    = flag.String("locks", "", "override lock list (default: the paper's Table 2 columns)")
		clustersFlag = flag.Int("clusters", 4, "NUMA clusters to simulate")
		durationFlag = flag.Duration("duration", 300*time.Millisecond, "measurement window per cell (paper: 10s)")
		delayFlag    = flag.Duration("delay", 4*time.Microsecond, "artificial delay after each malloc and free")
		csvFlag      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		reuseFlag    = flag.Bool("reuse", false, "also print the remote block-reuse table (the Table 2 mechanism)")
	)
	flag.Parse()

	threads, err := cli.ParseIntList(*threadsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mallocbench: bad -threads: %v\n", err)
		os.Exit(2)
	}
	lockNames := cli.ParseNameList(*locksFlag)
	if len(lockNames) == 0 {
		lockNames = registry.TableNames()
	}
	maxThreads := 0
	for _, t := range threads {
		if t > maxThreads {
			maxThreads = t
		}
	}
	topo := numa.New(*clustersFlag, maxThreads)

	headers := append([]string{"threads"}, lockNames...)
	tb := stats.NewTable("Table 2: malloc-free pairs per millisecond (mmicro)", headers...)
	var reuse *stats.Table
	if *reuseFlag {
		reuse = stats.NewTable("Table 2 mechanism: % block reuses crossing clusters", headers...)
	}
	for _, n := range threads {
		row := []string{fmt.Sprint(n)}
		reuseRow := []string{fmt.Sprint(n)}
		for _, name := range lockNames {
			e, ok := registry.Lookup(name)
			if !ok || e.NewMutex == nil {
				fmt.Fprintf(os.Stderr, "mallocbench: unknown or non-blocking lock %q\n", name)
				os.Exit(2)
			}
			runtime.GC() // previous cell's arena is garbage; collect outside the window
			cfg := mmicro.DefaultConfig(topo, n)
			cfg.Duration = *durationFlag
			cfg.DelayNs = int64(*delayFlag)
			res, err := mmicro.Run(cfg, e.NewMutex(topo))
			if err != nil {
				fmt.Fprintf(os.Stderr, "mallocbench: %s @%d: %v\n", name, n, err)
				os.Exit(1)
			}
			row = append(row, stats.F(res.PairsPerMs(), 0))
			reuseRow = append(reuseRow, stats.F(100*res.RemoteReuseRate(), 1))
			fmt.Fprintf(os.Stderr, "ran %-10s threads=%-4d %.0f pairs/ms\n", name, n, res.PairsPerMs())
		}
		tb.AddRow(row...)
		if reuse != nil {
			reuse.AddRow(reuseRow...)
		}
	}
	fmt.Print(cli.Emit(tb, *csvFlag))
	if reuse != nil {
		fmt.Println()
		fmt.Print(cli.Emit(reuse, *csvFlag))
	}
}
