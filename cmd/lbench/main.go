// Command lbench regenerates the paper's microbenchmark figures:
//
//	Figure 2 — throughput vs thread count (-fig 2)
//	Figure 3 — L2 coherence misses per critical section (-fig 3)
//	Figure 4 — low-contention zoom of Figure 2 (-fig 4)
//	Figure 5 — fairness: stddev %% of per-thread throughput (-fig 5)
//	Figure 6 — abortable lock throughput and abort rates (-fig 6)
//	batching — avg same-cluster batch length and migrations (-fig batch)
//
// plus the hand-off bound ablation discussed in §4.1.1
// (-ablation handoff). "-fig all" runs everything. Figures 2/3/4/5 and
// the batching table come from one shared sweep per invocation.
//
// -json replaces the tables with one JSON record per measured
// (lock, threads) point — the same record-array shape kvbench emits,
// so both CLIs feed the same trajectory tooling (CI uploads kvbench's
// as a build artifact; lbench's slots into the same pipeline).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/lbench"
	"repro/internal/numa"
	"repro/internal/registry"
	"repro/internal/stats"
)

type options struct {
	fig      string
	ablation string
	threads  []int
	locks    []string
	clusters int
	duration time.Duration
	patience time.Duration
	csv      bool
	jsonOut  bool
}

// record is one measured (lock, threads) point, emitted under -json.
// Every figure's metric is a projection of the same sweep, so one
// record carries them all.
type record struct {
	Kind              string  `json:"kind"` // "blocking" or "abortable"
	Lock              string  `json:"lock"`
	Threads           int     `json:"threads"`
	PairsPerSec       float64 `json:"pairs_per_sec"`
	MissesPerCS       float64 `json:"misses_per_cs"`
	FairnessStdDevPct float64 `json:"fairness_stddev_pct"`
	AvgBatch          float64 `json:"avg_batch"`
	AbortPct          float64 `json:"abort_pct,omitempty"`
}

func main() {
	var (
		figFlag      = flag.String("fig", "all", "figure to regenerate: 2,3,4,5,6,batch,all")
		ablationFlag = flag.String("ablation", "", "ablation to run: handoff")
		threadsFlag  = flag.String("threads", "1,2,4,8,16,32,64,128", "comma-separated thread counts")
		locksFlag    = flag.String("locks", "", "override lock list (default: the figure's paper set; extension locks like cna and gcr-mcs are valid here)")
		clustersFlag = flag.Int("clusters", 4, "NUMA clusters to simulate (paper: 4 sockets)")
		durationFlag = flag.Duration("duration", 300*time.Millisecond, "measurement window per point (paper: 60s)")
		patienceFlag = flag.Duration("patience", lbench.DefaultPatience, "acquisition patience for Figure 6")
		csvFlag      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonFlag     = flag.Bool("json", false, "emit every measured point as JSON records instead of tables")
	)
	flag.Parse()

	const tool = "lbench"
	threads, err := cli.ParseIntList(*threadsFlag)
	if err != nil {
		cli.Dief(tool, "bad -threads: %v", err)
	}
	lockNames, err := cli.Locks(*locksFlag)
	if err != nil {
		cli.Die(tool, err)
	}
	opt := options{
		fig:      *figFlag,
		ablation: *ablationFlag,
		threads:  threads,
		locks:    lockNames,
		clusters: *clustersFlag,
		duration: *durationFlag,
		patience: *patienceFlag,
		csv:      *csvFlag,
		jsonOut:  *jsonFlag,
	}
	if err := run(opt); err != nil {
		fmt.Fprintf(os.Stderr, "lbench: %v\n", err)
		os.Exit(1)
	}
}

func run(opt options) error {
	maxThreads := 0
	for _, t := range opt.threads {
		if t > maxThreads {
			maxThreads = t
		}
	}
	topo := numa.New(opt.clusters, maxThreads)

	if opt.ablation == "handoff" {
		return runHandoffAblation(opt, topo)
	}
	if opt.ablation != "" {
		return fmt.Errorf("unknown ablation %q", opt.ablation)
	}

	wantBlocking := strings.ContainsAny(opt.fig, "2345b") || opt.fig == "all" || opt.fig == "batch"
	wantAbortable := opt.fig == "6" || opt.fig == "all"

	var records []record
	if wantBlocking {
		names := opt.locks
		if len(names) == 0 {
			names = registry.Figure2Names()
		}
		results, err := sweepBlocking(opt, topo, names)
		if err != nil {
			return err
		}
		if opt.jsonOut {
			records = append(records, collectRecords("blocking", opt, names, results)...)
		} else {
			emitBlocking(opt, names, results)
		}
	}
	if wantAbortable {
		names := opt.locks
		if len(names) == 0 {
			names = registry.Figure6Names()
		}
		results, err := sweepAbortable(opt, topo, names)
		if err != nil {
			return err
		}
		if opt.jsonOut {
			records = append(records, collectRecords("abortable", opt, names, results)...)
		} else {
			emitFigure6(opt, names, results)
		}
	}
	if opt.jsonOut {
		return benchfmt.Write(os.Stdout, records)
	}
	return nil
}

// collectRecords flattens a sweep into JSON records, one per measured
// point, in lock-then-threads order.
func collectRecords(kind string, opt options, names []string, results map[string][]lbench.Result) []record {
	var out []record
	for _, name := range names {
		for i, n := range opt.threads {
			res := results[name][i]
			out = append(out, record{
				Kind:              kind,
				Lock:              name,
				Threads:           n,
				PairsPerSec:       res.Throughput(),
				MissesPerCS:       res.MissesPerCS(),
				FairnessStdDevPct: res.FairnessStdDevPct(),
				AvgBatch:          res.AvgBatch(),
				AbortPct:          100 * res.AbortRate(),
			})
		}
	}
	return out
}

// sweepBlocking runs every (lock, threads) point once; Figures 2-5 and
// the batching table are different projections of the same data.
func sweepBlocking(opt options, topo *numa.Topology, names []string) (map[string][]lbench.Result, error) {
	results := make(map[string][]lbench.Result, len(names))
	for _, name := range names {
		e, err := registry.Find(name)
		if err != nil {
			return nil, err
		}
		if e.NewMutex == nil {
			return nil, fmt.Errorf("lock %q is abortable-only; use it with -fig 6", name)
		}
		for _, n := range opt.threads {
			runtime.GC() // keep collector work out of the window
			cfg := lbench.DefaultConfig(topo, n)
			cfg.Duration = opt.duration
			lock := e.NewMutex(topo) // fresh instance per point
			res, err := lbench.Run(cfg, lock)
			if err != nil {
				return nil, fmt.Errorf("%s @%d: %w", name, n, err)
			}
			results[name] = append(results[name], res)
			fmt.Fprintf(os.Stderr, "ran %-10s threads=%-4d ops=%d\n", name, n, res.Ops)
		}
	}
	return results, nil
}

func sweepAbortable(opt options, topo *numa.Topology, names []string) (map[string][]lbench.Result, error) {
	results := make(map[string][]lbench.Result, len(names))
	for _, name := range names {
		e, err := registry.Find(name)
		if err != nil {
			return nil, err
		}
		if e.NewTry == nil {
			return nil, fmt.Errorf("lock %q is not abortable; Figure 6 needs a TryMutex", name)
		}
		for _, n := range opt.threads {
			runtime.GC()
			cfg := lbench.DefaultConfig(topo, n)
			cfg.Duration = opt.duration
			cfg.Patience = opt.patience
			res, err := lbench.RunAbortable(cfg, e.NewTry(topo))
			if err != nil {
				return nil, fmt.Errorf("%s @%d: %w", name, n, err)
			}
			results[name] = append(results[name], res)
			fmt.Fprintf(os.Stderr, "ran %-10s threads=%-4d ops=%d abort%%=%.2f\n",
				name, n, res.Ops, 100*res.AbortRate())
		}
	}
	return results, nil
}

func metricTable(title, metric string, opt options, names []string,
	results map[string][]lbench.Result, get func(lbench.Result) float64, decimals int) *stats.Table {
	headers := append([]string{"threads"}, names...)
	tb := stats.NewTable(fmt.Sprintf("%s (%s)", title, metric), headers...)
	for i, n := range opt.threads {
		row := []string{fmt.Sprint(n)}
		for _, name := range names {
			row = append(row, stats.F(get(results[name][i]), decimals))
		}
		tb.AddRow(row...)
	}
	return tb
}

func emitBlocking(opt options, names []string, results map[string][]lbench.Result) {
	show := func(fig string) bool { return opt.fig == "all" || opt.fig == fig }
	if show("2") {
		fmt.Print(cli.Emit(metricTable("Figure 2: LBench scalability", "pairs/sec",
			opt, names, results, lbench.Result.Throughput, 0), opt.csv))
		fmt.Println()
	}
	if show("3") {
		fmt.Print(cli.Emit(metricTable("Figure 3: locality of reference", "simulated L2 coherence misses per CS",
			opt, names, results, lbench.Result.MissesPerCS, 3), opt.csv))
		fmt.Println()
	}
	if show("4") {
		zoom := options{fig: opt.fig, threads: nil, csv: opt.csv}
		var idx []int
		for i, n := range opt.threads {
			if n <= 16 {
				zoom.threads = append(zoom.threads, n)
				idx = append(idx, i)
			}
		}
		zoomed := make(map[string][]lbench.Result, len(names))
		for _, name := range names {
			for _, i := range idx {
				zoomed[name] = append(zoomed[name], results[name][i])
			}
		}
		if len(zoom.threads) > 0 {
			fmt.Print(cli.Emit(metricTable("Figure 4: low contention (zoom of Figure 2)", "pairs/sec",
				zoom, names, zoomed, lbench.Result.Throughput, 0), opt.csv))
			fmt.Println()
		}
	}
	if show("5") {
		fmt.Print(cli.Emit(metricTable("Figure 5: fairness", "stddev % of per-thread throughput",
			opt, names, results, lbench.Result.FairnessStdDevPct, 1), opt.csv))
		fmt.Println()
	}
	if show("batch") {
		fmt.Print(cli.Emit(metricTable("Batching: dynamic cohort growth (§4.1.2)", "avg same-cluster batch length",
			opt, names, results, lbench.Result.AvgBatch, 1), opt.csv))
		fmt.Println()
	}
}

func emitFigure6(opt options, names []string, results map[string][]lbench.Result) {
	fmt.Print(cli.Emit(metricTable("Figure 6: abortable locks", "pairs/sec",
		opt, names, results, lbench.Result.Throughput, 0), opt.csv))
	fmt.Println()
	fmt.Print(cli.Emit(metricTable("Figure 6 companion: abort rates (§4.1.5 reports <1%)", "abort %",
		opt, names, results, func(r lbench.Result) float64 { return 100 * r.AbortRate() }, 2), opt.csv))
	fmt.Println()
}

// runHandoffAblation measures the §4.1.1 claim: removing the 64
// hand-off bound buys ~10% throughput at high contention, at the price
// of unbounded unfairness.
func runHandoffAblation(opt options, topo *numa.Topology) error {
	limits := []int64{1, 16, 64, 256, -1}
	limitName := func(l int64) string {
		if l < 0 {
			return "unbounded"
		}
		return fmt.Sprint(l)
	}
	headers := []string{"threads"}
	for _, l := range limits {
		headers = append(headers, "tp@"+limitName(l), "fair%@"+limitName(l))
	}
	tb := stats.NewTable("Ablation: may-pass-local hand-off bound, C-BO-MCS (§4.1.1)", headers...)
	for _, n := range opt.threads {
		row := []string{fmt.Sprint(n)}
		for _, limit := range limits {
			cfg := lbench.DefaultConfig(topo, n)
			cfg.Duration = opt.duration
			lock := core.NewCBOMCS(topo, core.WithHandoffLimit(limit))
			res, err := lbench.Run(cfg, lock)
			if err != nil {
				return err
			}
			row = append(row, stats.F(res.Throughput(), 0), stats.F(res.FairnessStdDevPct(), 1))
			fmt.Fprintf(os.Stderr, "ran handoff=%s threads=%d\n", limitName(limit), n)
		}
		tb.AddRow(row...)
	}
	fmt.Print(cli.Emit(tb, opt.csv))
	return nil
}
